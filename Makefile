# fastinvert — reproduction of Wei & JaJa, "A Fast Algorithm for
# Constructing Inverted Files on Heterogeneous Platforms" (IPDPS 2011).

GO ?= go

.PHONY: all build test race check lint smoke trace-serve bench bench-smoke codec-bench rank-bench rank-bench-smoke microbench fuzz differential differential-live experiments merge-bench tools clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Formatting + static analysis: gofmt, go vet, and staticcheck when it
# is on PATH (optional — nothing is vendored for it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not on PATH; skipped"; fi

# Telemetry smoke: build a tiny corpus with tracing and metrics armed,
# then gate the JSONL trace on schema shape and the >=90% busy+stall
# wall-clock coverage invariant, and the Prometheus snapshot on its
# summary gauge.
smoke:
	@tmp=$$(mktemp -d); rc=0; \
	{ $(GO) run ./cmd/hetindex -files 2 -scale 0.25 -concurrent \
		-out $$tmp/index -trace $$tmp/trace.jsonl -metrics $$tmp/metrics.prom >/dev/null \
	&& $(GO) run ./cmd/tracecheck -min-coverage 0.9 $$tmp/trace.jsonl \
	&& grep -q '^fastinvert_build_wall_seconds ' $$tmp/metrics.prom \
	&& echo "smoke OK"; } || rc=1; \
	rm -rf $$tmp; exit $$rc

# Serving-trace smoke: run hetserve -live under full request tracing
# (sample everything, slow-log everything) against its built-in seeded
# load generator, then gate the JSONL request-trace stream on schema
# shape, the child-span-sum <= parent-wall invariant, and >=5 distinct
# query stages (dict, cache, pread, decode, merge/memtable) appearing
# in one trace.
trace-serve:
	@tmp=$$(mktemp -d); rc=0; \
	{ $(GO) run ./cmd/hetserve -live -index $$tmp/seg -positional \
		-selfcheck -sample 1 -slow-ms -1 -trace-requests $$tmp/req.jsonl \
	&& $(GO) run ./cmd/tracecheck -requests -min-stages 5 -min-traces 50 $$tmp/req.jsonl \
	&& echo "trace-serve OK"; } || rc=1; \
	rm -rf $$tmp; exit $$rc

# Everything CI runs (.github/workflows/ci.yml): lint, build, the full
# race-enabled test suite, and the telemetry smoke gate.
check: lint
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) smoke

# Build hot-path benchmark suite (tokenizer, parser, IndexRun,
# end-to-end build, merge): full-scale corpus, JSON to stdout. Redirect
# to BENCH_PR5.json (with -baseline for deltas) to refresh the
# committed reference.
bench:
	$(GO) run ./cmd/benchrunner -buildbench -benchout -

# CI-sized buildbench gated against the committed reference: fails when
# quick-mode end-to-end throughput drops more than 20% or allocs/op
# grow more than 30% (alloc counts are stable on noisy runners, so the
# tighter-feeling bound holds in practice).
bench-smoke:
	$(GO) run ./cmd/benchrunner -buildbench -quick \
		-benchout bench-smoke.json -compare BENCH_PR5.json \
		-tolerance 0.2 -alloc-tolerance 0.3

# Postings-codec ablation (bytes/posting, compression ratio,
# encode/decode speed per codec and list class). Redirect to
# BENCH_PR6.json to refresh the committed reference.
codec-bench:
	$(GO) run ./cmd/benchrunner -codecbench -benchout -

# Block-max top-k retrieval benchmark (exhaustive vs MaxScore vs
# Block-Max-WAND with skipped/decoded block counters, plus the
# warm-dictionary IndexRun recovery number). Full-scale corpus; this is
# how the committed BENCH_PR10.json reference is refreshed.
rank-bench:
	$(GO) run ./cmd/benchrunner -rankbench \
		-benchout BENCH_PR10.json -baseline BENCH_PR5.json

# CI-sized rankbench gated against the committed reference: fails when
# Block-Max-WAND at k=10 is less than 3x faster than the exhaustive
# scorer in the same run (machine-relative, so noisy runners don't
# flake it), when its pruning counters show no skipped blocks, or when
# its allocs/op grow more than 30% over BENCH_PR10.json.
rank-bench-smoke:
	$(GO) run ./cmd/benchrunner -rankbench -quick \
		-benchout rank-bench-smoke.json -compare BENCH_PR10.json \
		-min-speedup 3.0 -alloc-tolerance 0.3

# One pass over every go-test microbenchmark with allocation metrics.
microbench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over every byte-level decoder.
fuzz:
	$(GO) test ./internal/encoding/ -fuzz FuzzUvarByte -fuzztime 30s
	$(GO) test ./internal/encoding/ -fuzz FuzzDecodePostings -fuzztime 30s
	$(GO) test ./internal/encoding/ -fuzz FuzzBitGammaGolomb -fuzztime 30s
	$(GO) test ./internal/encoding/ -fuzz FuzzCodecRoundTrip -fuzztime 30s
	$(GO) test ./internal/parser/ -fuzz FuzzParseDoc -fuzztime 30s
	$(GO) test ./internal/parser/ -fuzz FuzzGroupForEach -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzParseRun -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzReadDictionary -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzParseDocLens -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzParseDocTable -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzParseDocMap -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzBlockedList -fuzztime 30s
	$(GO) test ./internal/search/ -fuzz FuzzSearchQueries -fuzztime 30s
	$(GO) test ./internal/segment/ -fuzz FuzzSegmentManifest -fuzztime 30s
	$(GO) test ./internal/segment/ -fuzz FuzzTombstoneBitmap -fuzztime 30s

# Tier-2 differential correctness sweep: the pipelined build vs the
# reference indexer and all four baselines across 10 seeded corpora —
# including the merged-file parity comparison (every index is merged
# and re-read through merged.post, which must match the per-run path
# term for term) — plus the fault-injection matrix (with merged-file
# truncation/bit-flip faults), under the race detector. Any failure
# prints its seed; reproduce with:
#   go test ./internal/verify/ -run 'TestDifferential/seedN' -args -seeds 10
differential:
	$(GO) test ./internal/verify/ -race -count=1 -args -seeds 10
	$(GO) run ./cmd/hetverify -seeds 10 -chaos

# Interleaved live-index differential sweep: seeded insert/delete/
# query/seal/compact schedules against the LSM segment manager, diffed
# term-for-term against a serial from-scratch rebuild at every seal and
# compaction boundary (plus end-of-schedule and close/reopen), with the
# segment package's own concurrency tests under the race detector.
differential-live:
	$(GO) test ./internal/segment/ -race -count=1
	$(GO) test ./internal/verify/ -race -count=1 -run 'TestRunLive'
	$(GO) run ./cmd/hetverify -live -seeds 10
	$(GO) run ./cmd/hetverify -live -seeds 5 -positional

# Query-latency comparison before/after the post-processing merge
# (§III.F): sweeps every dictionary term through per-run assembly, then
# through merged.post, with the decoded-list cache disabled.
merge-bench:
	$(GO) run ./cmd/benchrunner -mergebench -files 8 -scale 0.5

# Paper-style tables and figures (EXPERIMENTS.md reference data).
experiments:
	$(GO) run ./cmd/benchrunner -all -files 16 -scale 1 -trials 3

tools:
	$(GO) build -o bin/hetindex ./cmd/hetindex
	$(GO) build -o bin/corpusgen ./cmd/corpusgen
	$(GO) build -o bin/indexquery ./cmd/indexquery
	$(GO) build -o bin/benchrunner ./cmd/benchrunner
	$(GO) build -o bin/hetserve ./cmd/hetserve
	$(GO) build -o bin/hetverify ./cmd/hetverify
	$(GO) build -o bin/tracecheck ./cmd/tracecheck

clean:
	rm -rf bin
