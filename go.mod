module fastinvert

go 1.22
