// Baselines scenario: build the same Library-of-Congress-like
// collection with the pipelined engine and with every §II baseline
// (Ivory MapReduce, Single-Pass MapReduce, SPIMI, sort-based
// inversion), verify all five produce identical postings, and compare
// their measured serial costs — the ground truth behind Fig. 12.
package main

import (
	"fmt"
	"log"
	"os"

	"fastinvert"
	"fastinvert/internal/baselines"
	"fastinvert/internal/reference"
)

func main() {
	log.SetFlags(0)
	src := fastinvert.GenerateCorpus(fastinvert.LibraryOfCongressProfile(1), 6)

	ref, err := reference.BuildFromSource(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d docs, %d terms\n", ref.Docs, ref.Terms())

	// The pipelined engine, verified through its persisted output.
	dir, err := os.MkdirTemp("", "fastinvert-baselines-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := fastinvert.DefaultOptions()
	opts.OutDir = dir
	b, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := b.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := fastinvert.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	if idx.Terms() != ref.Terms() {
		log.Fatalf("engine dictionary has %d terms, reference %d", idx.Terms(), ref.Terms())
	}
	fmt.Printf("%-22s terms=%d  ok=dictionary matches reference\n", "pipelined engine", rep.Terms)

	type build struct {
		name string
		run  func() (*baselines.Result, error)
	}
	for _, bl := range []build{
		{"Ivory MapReduce", func() (*baselines.Result, error) { return baselines.IvoryMR(src, 4) }},
		{"Single-Pass MR", func() (*baselines.Result, error) { return baselines.SinglePassMR(src, 4) }},
		{"SPIMI", func() (*baselines.Result, error) { return baselines.SPIMI(src, 1<<20) }},
		{"Sort-based", func() (*baselines.Result, error) { return baselines.SortBased(src, 1<<20) }},
	} {
		res, err := bl.run()
		if err != nil {
			log.Fatal(err)
		}
		ok, diff := ref.Equal(res.Lists)
		if !ok {
			log.Fatalf("%s diverges from reference at %q", bl.name, diff)
		}
		fmt.Printf("%-22s terms=%d  serial=%.3fs  ok=postings identical\n",
			bl.name, res.Terms(), res.Stats.SerialSec)
	}
	fmt.Println("\nall five implementations produce identical inverted files")
}
