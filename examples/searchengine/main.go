// Searchengine scenario: the inverted files as a downstream user
// consumes them — build an index over a mixed collection, then run
// Boolean and TF-IDF ranked queries through the search layer.
package main

import (
	"fmt"
	"log"
	"os"

	"fastinvert"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "fastinvert-search-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	src := fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(1), 10)
	opts := fastinvert.DefaultOptions()
	opts.OutDir = dir
	opts.Concurrent = true // real goroutine pipeline
	opts.Positional = true // record token positions for phrase queries
	builder, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := builder.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d docs, %d terms (concurrent pipeline)\n\n", rep.Docs, rep.Terms)

	idx, err := fastinvert.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	s := fastinvert.NewSearcher(idx)

	// Boolean retrieval.
	and, err := s.And("water", "people")
	if err != nil {
		log.Fatal(err)
	}
	or, err := s.Or("water", "people")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("water AND people: %4d documents\n", len(and))
	fmt.Printf("water OR  people: %4d documents\n", len(or))

	// Ranked retrieval.
	top, err := s.TopK(5, "parallel", "indexing", "documents")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 for {parallel indexing documents} (TF-IDF):")
	for i, r := range top {
		fmt.Printf("  %d. doc %-6d score %.3f\n", i+1, r.Doc, r.Score)
	}

	// Phrase retrieval over the positional index.
	phrase, err := s.Phrase("time", "people")
	if err != nil {
		log.Fatal(err)
	}
	both, _ := s.And("time", "people")
	fmt.Printf("\nphrase \"time people\": %d documents (vs %d containing both words anywhere)\n",
		len(phrase), len(both))

	// Dictionary prefix matching (auto-complete style).
	fmt.Printf("terms with prefix \"par\": %v\n", s.MatchPrefix("par", 5))

	// Stop words vanish at normalization, exactly as at indexing time.
	if term, stop := s.Normalize("The"); stop {
		fmt.Printf("(%q is a stop word: never indexed, never matched)\n", term)
	}
}
