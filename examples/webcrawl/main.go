// Webcrawl scenario: index a compressed web crawl from disk the way
// the paper indexes ClueWeb09 — container files are written to a
// directory first, the engine streams them through the serialized
// read scheduler, and the per-run output format is then used for a
// docID-range-restricted query, the format's headline benefit
// (§III.F).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fastinvert"
)

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "fastinvert-webcrawl-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	corpusDir := filepath.Join(work, "crawl")
	indexDir := filepath.Join(work, "index")

	// Materialize the crawl on disk (gzip files, like ClueWeb09's
	// 1,492 compressed containers).
	stored, err := fastinvert.WriteCorpus(fastinvert.ClueWeb09Profile(1), 12, corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl on disk: 12 compressed files, %.2f MB stored\n",
		float64(stored)/(1<<20))

	src, err := fastinvert.OpenCorpusDir(corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	opts := fastinvert.DefaultOptions()
	opts.OutDir = indexDir
	builder, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	report, err := builder.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %.2f MB uncompressed at %.1f MB/s (modeled)\n",
		float64(report.UncompressedBytes)/(1<<20), report.ThroughputMBps)

	idx, err := fastinvert.Open(indexDir)
	if err != nil {
		log.Fatal(err)
	}
	// One run file per container: the doc map tells which files hold
	// which docID ranges.
	fmt.Printf("index has %d runs:\n", len(idx.Runs()))
	for _, r := range idx.Runs()[:3] {
		fmt.Printf("  %s docs [%d,%d] %d lists\n", r.File, r.FirstDoc, r.LastDoc, r.Lists)
	}
	fmt.Println("  ...")

	// Range-restricted retrieval fetches only overlapping runs.
	term := fastinvert.NormalizeTerm("documents")
	full, err := idx.Postings(term)
	if err != nil {
		log.Fatal(err)
	}
	half, err := idx.PostingsRange(term, 0, uint32(report.Docs/2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("term %q: %d postings total, %d in the first half of the crawl\n",
		term, full.Len(), half.Len())

	// The optional post-processing merge produces a monolithic file and
	// switches the reader to one-pread-per-term lookups.
	merged, err := idx.Merge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged postings file: %d lists, %.2f MB from %d runs\n",
		merged.Lists, float64(merged.Bytes)/(1<<20), merged.Runs)
}
