// Scaling scenario: sweep the pipeline shape over a Wikipedia-like
// text collection — the paper's Fig. 10 experiment in miniature —
// showing how parser count and indexer mix trade off, and where the
// GPU acceleration pays.
package main

import (
	"fmt"
	"log"

	"fastinvert"
)

func main() {
	log.SetFlags(0)
	src := fastinvert.GenerateCorpus(fastinvert.WikipediaProfile(1), 10)

	fmt.Println("pipeline shape sweep (Wikipedia-like, modeled times):")
	fmt.Printf("%8s %6s %6s | %12s %12s %10s\n",
		"parsers", "cpu", "gpu", "parsers(s)", "indexers(s)", "MB/s")

	type shape struct{ p, c, g int }
	shapes := []shape{
		{1, 7, 0}, {2, 6, 0}, {4, 4, 0}, {6, 2, 0}, {7, 1, 0},
		{6, 2, 2}, {6, 0, 2},
	}
	var best shape
	bestTput := 0.0
	for _, s := range shapes {
		opts := fastinvert.DefaultOptions()
		opts.Parsers = s.p
		opts.CPUIndexers = s.c
		opts.GPUs = s.g
		b, err := fastinvert.NewBuilder(opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := b.Build(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %6d %6d | %12.4f %12.4f %10.2f\n",
			s.p, s.c, s.g, rep.ParsersSpanSec, rep.IndexersSpanSec, rep.ThroughputMBps)
		if rep.ThroughputMBps > bestTput {
			bestTput, best = rep.ThroughputMBps, s
		}
	}
	fmt.Printf("\nbest shape: %d parsers + %d CPU + %d GPU indexers (%.2f MB/s)\n",
		best.p, best.c, best.g, bestTput)
	fmt.Println("(the paper lands on 6 parsers + 2 CPU + 2 GPU on its 8-core node)")
}
