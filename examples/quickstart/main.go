// Quickstart: generate a small synthetic web collection, build
// inverted files with the paper's pipelined CPU+GPU engine, persist
// the index, and run a few queries against it.
package main

import (
	"fmt"
	"log"
	"os"

	"fastinvert"
)

func main() {
	log.SetFlags(0)

	// A ClueWeb09-like collection: 8 gzip container files of
	// HTML-ish documents with Zipf-distributed vocabulary.
	src := fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(1), 8)

	dir, err := os.MkdirTemp("", "fastinvert-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The paper's best configuration: six parsers, two CPU indexers,
	// two (simulated) Tesla C1060 GPUs.
	opts := fastinvert.DefaultOptions()
	opts.OutDir = dir
	builder, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	report, err := builder.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents (%d tokens, %d distinct terms)\n",
		report.Docs, report.Tokens, report.Terms)
	fmt.Printf("modeled pipeline time %.3fs -> %.1f MB/s\n",
		report.TotalSec, report.ThroughputMBps)
	fmt.Printf("CPU indexers took the Zipf head (%d tokens, %d terms); "+
		"GPUs took the tail (%d tokens, %d terms)\n",
		report.CPUTokens, report.CPUTerms, report.GPUTokens, report.GPUTerms)

	// Query the persisted index. Queries are normalized exactly like
	// indexed text: lowercased and Porter-stemmed.
	idx, err := fastinvert.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []string{"parallelized", "water", "documents", "zzznope"} {
		term := fastinvert.NormalizeTerm(q)
		list, err := idx.Postings(term)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-14q (stem %-10q): %d matching documents\n",
			q, term, list.Len())
	}
}
