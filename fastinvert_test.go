package fastinvert_test

import (
	"path/filepath"
	"testing"

	"fastinvert"
	"fastinvert/internal/gpu"
)

func smallOptions() fastinvert.Options {
	opts := fastinvert.DefaultOptions()
	opts.Parsers = 2
	opts.CPUIndexers = 1
	opts.GPUs = 1
	g := gpu.TeslaC1060()
	g.SMs = 4
	g.DeviceMemBytes = 64 << 20
	opts.GPU = g
	opts.GPUThreadBlocks = 16
	opts.Sampling.Ratio = 0.2
	return opts
}

func smallProfile() fastinvert.Profile {
	p := fastinvert.ClueWeb09Profile(1)
	p.VocabSize = 4000
	p.DocsPerFile = 8
	p.MeanDocTokens = 60
	return p
}

func TestPublicAPIEndToEnd(t *testing.T) {
	src := fastinvert.GenerateCorpus(smallProfile(), 3)
	opts := smallOptions()
	opts.OutDir = filepath.Join(t.TempDir(), "idx")
	b, err := fastinvert.NewBuilder(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Docs != 24 || rep.Terms == 0 {
		t.Fatalf("report: docs=%d terms=%d", rep.Docs, rep.Terms)
	}

	idx, err := fastinvert.Open(opts.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Terms() != int(rep.Terms) {
		t.Errorf("index terms %d, report %d", idx.Terms(), rep.Terms)
	}
	// The Zipf head guarantees "the"-like stems appear; look up the
	// most common dictionary entry round-tripped through Postings.
	var anyTerm string
	for _, e := range idx.Dictionary() {
		anyTerm = e.Term
		break
	}
	l, err := idx.Postings(anyTerm)
	if err != nil || l.Len() == 0 {
		t.Fatalf("Postings(%q): %v len=%d", anyTerm, err, l.Len())
	}
}

func TestNormalizeTerm(t *testing.T) {
	cases := map[string]string{
		"Parallelized": "parallel",
		"INDEXING":     "index",
		"the":          "the",
	}
	for in, want := range cases {
		if got := fastinvert.NormalizeTerm(in); got != want {
			t.Errorf("NormalizeTerm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTrieIndexExposed(t *testing.T) {
	if fastinvert.NumTrieCollections != 17613 {
		t.Fatal("trie table size")
	}
	if fastinvert.TrieIndex("application") == fastinvert.TrieIndex("zebra") {
		t.Error("distinct prefixes must map to distinct collections")
	}
}

func TestWriteAndOpenCorpusDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	n, err := fastinvert.WriteCorpus(smallProfile(), 2, dir)
	if err != nil || n <= 0 {
		t.Fatalf("WriteCorpus: %v (%d)", err, n)
	}
	src, err := fastinvert.OpenCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumFiles() != 2 {
		t.Errorf("NumFiles = %d", src.NumFiles())
	}
}

func TestParseOnlyPublic(t *testing.T) {
	b, err := fastinvert.NewBuilder(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.ParseOnly(fastinvert.GenerateCorpus(smallProfile(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSec <= 0 {
		t.Error("parse-only timing missing")
	}
}
