package encoding

import "testing"

// FuzzUvarByte checks the variable-byte decoder never panics and that
// successfully decoded values re-encode to a decodable form.
func FuzzUvarByte(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x7f})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n := UvarByte(data)
		if n <= 0 {
			return
		}
		buf := PutUvarByte(nil, v)
		back, m := UvarByte(buf)
		if m != len(buf) || back != v {
			t.Fatalf("re-encode of %d failed", v)
		}
		// Canonical encodings are minimal.
		if len(buf) > n {
			t.Fatalf("canonical encoding (%d bytes) longer than input (%d)", len(buf), n)
		}
	})
}

// FuzzDecodePostings hardens the postings decoder.
func FuzzDecodePostings(f *testing.F) {
	good, _ := EncodePostings(nil, []uint32{1, 5, 9}, []uint32{2, 1, 3})
	f.Add(good, 3)
	f.Add([]byte{}, 1)
	f.Add([]byte{0x80}, 1)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		docIDs, tfs, _, err := DecodePostings(data, count)
		if err != nil {
			return
		}
		// Decoded postings must be re-encodable (strictly ascending)
		// unless a zero gap slipped in, which EncodePostings rejects.
		asc := true
		for i := 1; i < len(docIDs); i++ {
			if docIDs[i] <= docIDs[i-1] {
				asc = false
				break
			}
		}
		if asc {
			if _, err := EncodePostings(nil, docIDs, tfs); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}

// FuzzBitGammaGolomb checks the bit-level decoders against arbitrary
// streams.
func FuzzBitGammaGolomb(f *testing.F) {
	f.Add([]byte{0xAA, 0x55}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, bRaw uint8) {
		r := NewBitReader(data)
		for {
			if _, ok := Gamma(r); !ok {
				break
			}
		}
		b := uint64(bRaw)%64 + 1
		r = NewBitReader(data)
		for {
			if _, ok := Golomb(r, b); !ok {
				break
			}
		}
	})
}
