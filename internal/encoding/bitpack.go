package encoding

import (
	"errors"
	"math/bits"
)

// Bit-packed fixed-width blocks (PForDelta's frame-of-reference core,
// without exceptions): docID gaps and term frequencies are split into
// blocks of up to 128 values, and each block stores one width byte w
// followed by its values packed w bits each, little-endian within a
// uint64 accumulator. Dense Zipf-head lists, whose gaps are almost all
// 1-8, pack at 1-3 bits per docID; the accumulator moves whole bytes
// per iteration, building on the byte-at-a-time fast paths the aligned
// BitWriter uses.
//
// Wire format:
//
//	varbyte(docIDs[0])                             first docID, absolute
//	ceil((n-1)/128) gap blocks over gaps[1..n-1]   each: w byte + packed
//	ceil(n/128)     tf  blocks over tfs[0..n-1]
//	positional only: per posting, tf varbyte position gaps
//	                 (first position absolute)

// bitPackBlockLen is the fixed block size; the last block of a section
// is shorter when the value count is not a multiple.
const bitPackBlockLen = 128

type bitPackCodec struct{}

func (bitPackCodec) ID() CodecID  { return CodecBitPack }
func (bitPackCodec) Name() string { return "bitpack" }

// MinBytes: one byte for the absolute first docID, one width byte per
// block, and at least one bit per gap (gaps are >= 1, so w >= 1; tf
// blocks can legitimately pack at w = 0).
func (bitPackCodec) MinBytes(count int) int {
	if count <= 0 {
		return 0
	}
	gapBlocks := (count - 1 + bitPackBlockLen - 1) / bitPackBlockLen
	tfBlocks := (count + bitPackBlockLen - 1) / bitPackBlockLen
	return 1 + gapBlocks + (count-1+7)/8 + tfBlocks
}

func (bitPackCodec) Encode(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error) {
	if err := checkList(docIDs, tfs, positions); err != nil {
		return nil, err
	}
	n := len(docIDs)
	if n == 0 {
		return dst, nil
	}
	dst = PutUvarByte(dst, uint64(docIDs[0]))
	// Gap-transform into a scratch block so the input stays untouched.
	var block [bitPackBlockLen]uint32
	for lo := 1; lo < n; lo += bitPackBlockLen {
		hi := lo + bitPackBlockLen
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			block[i-lo] = docIDs[i] - docIDs[i-1]
		}
		dst = packBlock(dst, block[:hi-lo])
	}
	for lo := 0; lo < n; lo += bitPackBlockLen {
		hi := lo + bitPackBlockLen
		if hi > n {
			hi = n
		}
		dst = packBlock(dst, tfs[lo:hi])
	}
	if positions != nil {
		for _, ps := range positions {
			prev := uint32(0)
			for _, p := range ps {
				dst = PutUvarByte(dst, uint64(p-prev))
				prev = p
			}
		}
	}
	return dst, nil
}

func (c bitPackCodec) Decode(src []byte, count int, positional bool) (docIDs, tfs []uint32, positions [][]uint32, err error) {
	if count < 0 || c.MinBytes(count) > len(src) {
		return nil, nil, nil, errors.New("encoding: bitpack: count exceeds input")
	}
	if count == 0 {
		return nil, nil, nil, nil
	}
	first, m := UvarByte(src)
	if m <= 0 {
		return nil, nil, nil, errors.New("encoding: bitpack: truncated first docID")
	}
	pos := m
	docIDs = make([]uint32, count)
	docIDs[0] = uint32(first)
	for lo := 1; lo < count; lo += bitPackBlockLen {
		hi := lo + bitPackBlockLen
		if hi > count {
			hi = count
		}
		m, err := unpackBlock(src[pos:], docIDs[lo:hi])
		if err != nil {
			return nil, nil, nil, err
		}
		pos += m
	}
	for i := 1; i < count; i++ {
		docIDs[i] += docIDs[i-1]
	}
	tfs = make([]uint32, count)
	for lo := 0; lo < count; lo += bitPackBlockLen {
		hi := lo + bitPackBlockLen
		if hi > count {
			hi = count
		}
		m, err := unpackBlock(src[pos:], tfs[lo:hi])
		if err != nil {
			return nil, nil, nil, err
		}
		pos += m
	}
	if positional {
		positions = make([][]uint32, count)
		for i := 0; i < count; i++ {
			tf := tfs[i]
			if uint64(tf) > uint64(len(src)-pos) {
				// Positions take at least one byte each.
				return nil, nil, nil, errors.New("encoding: bitpack: tf exceeds remaining input")
			}
			ps := make([]uint32, tf)
			var cur uint32
			for j := range ps {
				pg, m := UvarByte(src[pos:])
				if m <= 0 {
					return nil, nil, nil, errors.New("encoding: bitpack: truncated position")
				}
				pos += m
				cur += uint32(pg)
				ps[j] = cur
			}
			positions[i] = ps
		}
	}
	return docIDs, tfs, positions, nil
}

// packBlock appends one block: the max bit width of vals as a single
// byte, then every value packed at that width, LSB-first through a
// uint64 accumulator (at most one append per produced byte).
func packBlock(dst []byte, vals []uint32) []byte {
	var w uint
	for _, v := range vals {
		if l := uint(bits.Len32(v)); l > w {
			w = l
		}
	}
	dst = append(dst, byte(w))
	var acc uint64
	var nbits uint
	for _, v := range vals {
		acc |= uint64(v) << nbits
		nbits += w
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackBlock reads one block produced by packBlock into out,
// returning the bytes consumed.
func unpackBlock(src []byte, out []uint32) (int, error) {
	if len(src) == 0 {
		return 0, errors.New("encoding: bitpack: missing block width")
	}
	w := uint(src[0])
	if w > 32 {
		return 0, errors.New("encoding: bitpack: block width exceeds 32")
	}
	need := 1 + (len(out)*int(w)+7)/8
	if need > len(src) {
		return 0, errors.New("encoding: bitpack: truncated block")
	}
	if w == 0 {
		clear(out)
		return 1, nil
	}
	mask := uint64(1)<<w - 1
	var acc uint64
	var nbits uint
	pos := 1
	for i := range out {
		for nbits < w {
			acc |= uint64(src[pos]) << nbits
			pos++
			nbits += 8
		}
		out[i] = uint32(acc & mask)
		acc >>= w
		nbits -= w
	}
	return need, nil
}
