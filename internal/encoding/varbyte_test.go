package encoding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUvarByteKnownValues(t *testing.T) {
	cases := []struct {
		v    uint64
		want []byte
	}{
		{0, []byte{0x00}},
		{1, []byte{0x01}},
		{127, []byte{0x7f}},
		{128, []byte{0x80, 0x01}},
		{300, []byte{0xac, 0x02}},
		{16383, []byte{0xff, 0x7f}},
		{16384, []byte{0x80, 0x80, 0x01}},
		{math.MaxUint64, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
	}
	for _, c := range cases {
		got := PutUvarByte(nil, c.v)
		if string(got) != string(c.want) {
			t.Errorf("PutUvarByte(%d) = %x, want %x", c.v, got, c.want)
		}
		back, n := UvarByte(got)
		if back != c.v || n != len(got) {
			t.Errorf("UvarByte(%x) = %d,%d want %d,%d", got, back, n, c.v, len(got))
		}
		if l := VarByteLen(c.v); l != len(got) {
			t.Errorf("VarByteLen(%d) = %d, want %d", c.v, l, len(got))
		}
	}
}

func TestUvarByteRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		buf := PutUvarByte(nil, v)
		back, n := UvarByte(buf)
		return back == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarByteTruncated(t *testing.T) {
	if _, n := UvarByte(nil); n != 0 {
		t.Errorf("UvarByte(nil) n = %d, want 0", n)
	}
	if _, n := UvarByte([]byte{0x80}); n != 0 {
		t.Errorf("UvarByte(incomplete) n = %d, want 0", n)
	}
	if _, n := UvarByte([]byte{0x80, 0x80}); n != 0 {
		t.Errorf("UvarByte(incomplete 2) n = %d, want 0", n)
	}
}

func TestUvarByteOverflow(t *testing.T) {
	// Eleven continuation bytes overflow a 64-bit value.
	over := make([]byte, 11)
	for i := range over {
		over[i] = 0x80
	}
	over = append(over, 0x01)
	if _, n := UvarByte(over); n >= 0 {
		t.Errorf("UvarByte(overflow) n = %d, want negative", n)
	}
	// Ten bytes where the last exceeds the single remaining payload bit.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}
	if _, n := UvarByte(bad); n >= 0 {
		t.Errorf("UvarByte(top-byte overflow) n = %d, want negative", n)
	}
}

func TestUvarByteAll(t *testing.T) {
	vs := []uint64{0, 5, 1 << 20, 77, math.MaxUint32}
	buf := AppendUvarByteAll(nil, vs)
	got, n := UvarByteAll(buf, len(vs))
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Errorf("value %d: got %d, want %d", i, got[i], vs[i])
		}
	}
	if _, n := UvarByteAll(buf[:len(buf)-1], len(vs)); n != 0 {
		t.Error("UvarByteAll on truncated input should fail")
	}
}
