package encoding

import "math/bits"

// Elias gamma coding of strictly positive integers: the value's bit
// length in unary, then the value without its leading one bit.

// PutGamma appends the gamma code of v (which must be >= 1) to w.
func PutGamma(w *BitWriter, v uint64) {
	if v == 0 {
		panic("encoding: gamma code undefined for 0")
	}
	n := uint(bits.Len64(v)) // >= 1
	w.WriteUnary(uint64(n - 1))
	w.WriteBits(v, n-1) // drop the implicit leading 1
}

// Gamma decodes one gamma-coded value from r.
func Gamma(r *BitReader) (v uint64, ok bool) {
	n, ok := r.ReadUnary()
	if !ok || n > 63 {
		return 0, false
	}
	rest, ok := r.ReadBits(uint(n))
	if !ok {
		return 0, false
	}
	return 1<<n | rest, true
}

// GammaLen reports the bit length of the gamma code of v >= 1.
func GammaLen(v uint64) int {
	n := bits.Len64(v)
	return 2*n - 1
}

// EncodeGammaAll gamma-codes each value+1 of vs (so zero is
// representable) and returns the packed bytes.
func EncodeGammaAll(vs []uint64) []byte {
	w := NewBitWriter(nil)
	for _, v := range vs {
		PutGamma(w, v+1)
	}
	return w.Bytes()
}

// DecodeGammaAll decodes count values produced by EncodeGammaAll.
func DecodeGammaAll(buf []byte, count int) ([]uint64, bool) {
	r := NewBitReader(buf)
	vs := make([]uint64, count)
	for i := range vs {
		v, ok := Gamma(r)
		if !ok || v == 0 {
			return nil, false
		}
		vs[i] = v - 1
	}
	return vs, true
}
