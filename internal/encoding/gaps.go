package encoding

import (
	"errors"
	"fmt"
)

// ErrNotSorted reports a docID sequence that is not strictly increasing,
// which the gap transform requires.
var ErrNotSorted = errors.New("encoding: docIDs not strictly increasing")

// Gaps converts a strictly increasing docID sequence into first-value +
// successive differences, in place, and returns it. The first element
// is kept absolute; each later element becomes ids[i] - ids[i-1].
func Gaps(ids []uint64) ([]uint64, error) {
	prev := uint64(0)
	for i, id := range ids {
		if i > 0 && id <= prev {
			return nil, ErrNotSorted
		}
		ids[i] = id - prev
		prev = id
	}
	return ids, nil
}

// Ungaps reverses Gaps in place and returns the absolute sequence.
func Ungaps(gaps []uint64) []uint64 {
	var acc uint64
	for i, g := range gaps {
		acc += g
		gaps[i] = acc
	}
	return gaps
}

// EncodePostings compresses a postings list of parallel docIDs and term
// frequencies: docIDs are gap-transformed and each (gap, tf) pair is
// variable-byte coded, the paper's output format. The input slices are
// not modified.
func EncodePostings(dst []byte, docIDs, tfs []uint32) ([]byte, error) {
	if len(docIDs) != len(tfs) {
		return nil, errors.New("encoding: docID/tf length mismatch")
	}
	prev := uint32(0)
	for i, id := range docIDs {
		if i > 0 && id <= prev {
			return nil, ErrNotSorted
		}
		dst = PutUvarByte(dst, uint64(id-prev))
		dst = PutUvarByte(dst, uint64(tfs[i]))
		prev = id
	}
	return dst, nil
}

// EncodePositionalPostings compresses a positional postings list: per
// posting the docID gap, the term frequency, then the tf in-document
// position gaps (first position absolute), all variable-byte coded.
func EncodePositionalPostings(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error) {
	if len(docIDs) != len(tfs) || len(docIDs) != len(positions) {
		return nil, errors.New("encoding: positional list length mismatch")
	}
	prev := uint32(0)
	for i, id := range docIDs {
		if i > 0 && id <= prev {
			return nil, ErrNotSorted
		}
		if int(tfs[i]) != len(positions[i]) {
			return nil, fmt.Errorf("encoding: tf %d but %d positions", tfs[i], len(positions[i]))
		}
		dst = PutUvarByte(dst, uint64(id-prev))
		dst = PutUvarByte(dst, uint64(tfs[i]))
		prevPos := uint32(0)
		for j, p := range positions[i] {
			if j > 0 && p <= prevPos {
				return nil, fmt.Errorf("encoding: positions not ascending in doc %d", id)
			}
			dst = PutUvarByte(dst, uint64(p-prevPos))
			prevPos = p
		}
		prev = id
	}
	return dst, nil
}

// DecodePositionalPostings reverses EncodePositionalPostings.
func DecodePositionalPostings(src []byte, count int) (docIDs, tfs []uint32, positions [][]uint32, n int, err error) {
	if count < 0 || count > len(src)/2 {
		// Each posting needs at least a gap and a tf byte; reject
		// counts the input cannot possibly hold before allocating.
		return nil, nil, nil, 0, errors.New("encoding: positional count exceeds input")
	}
	docIDs = make([]uint32, count)
	tfs = make([]uint32, count)
	positions = make([][]uint32, count)
	var prev uint32
	for i := 0; i < count; i++ {
		gap, m := UvarByte(src[n:])
		if m <= 0 {
			return nil, nil, nil, 0, errors.New("encoding: truncated positional gap")
		}
		n += m
		tf, m := UvarByte(src[n:])
		if m <= 0 {
			return nil, nil, nil, 0, errors.New("encoding: truncated positional tf")
		}
		n += m
		prev += uint32(gap)
		docIDs[i] = prev
		tfs[i] = uint32(tf)
		if tf > uint64(len(src)-n) {
			// Positions take at least one byte each.
			return nil, nil, nil, 0, errors.New("encoding: tf exceeds remaining input")
		}
		ps := make([]uint32, tf)
		var cur uint32
		for j := range ps {
			pg, m := UvarByte(src[n:])
			if m <= 0 {
				return nil, nil, nil, 0, errors.New("encoding: truncated position")
			}
			n += m
			cur += uint32(pg)
			ps[j] = cur
		}
		positions[i] = ps
	}
	return docIDs, tfs, positions, n, nil
}

// DecodePostings reverses EncodePostings, reading exactly count
// postings and returning the bytes consumed.
func DecodePostings(src []byte, count int) (docIDs, tfs []uint32, n int, err error) {
	if count < 0 || count > len(src)/2 {
		return nil, nil, 0, errors.New("encoding: postings count exceeds input")
	}
	docIDs = make([]uint32, count)
	tfs = make([]uint32, count)
	var prev uint32
	for i := 0; i < count; i++ {
		gap, m := UvarByte(src[n:])
		if m <= 0 {
			return nil, nil, 0, errors.New("encoding: truncated postings gap")
		}
		n += m
		tf, m := UvarByte(src[n:])
		if m <= 0 {
			return nil, nil, 0, errors.New("encoding: truncated postings tf")
		}
		n += m
		prev += uint32(gap)
		docIDs[i] = prev
		tfs[i] = uint32(tf)
	}
	return docIDs, tfs, n, nil
}
