package encoding

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestGapsRoundTrip(t *testing.T) {
	ids := []uint64{3, 7, 8, 20, 100}
	gaps, err := Gaps(append([]uint64(nil), ids...))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 4, 1, 12, 80}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %d, want %d", i, gaps[i], want[i])
		}
	}
	back := Ungaps(gaps)
	for i := range ids {
		if back[i] != ids[i] {
			t.Errorf("ungap %d = %d, want %d", i, back[i], ids[i])
		}
	}
}

func TestGapsRejectsUnsorted(t *testing.T) {
	if _, err := Gaps([]uint64{5, 5}); err != ErrNotSorted {
		t.Errorf("duplicate ids: err = %v, want ErrNotSorted", err)
	}
	if _, err := Gaps([]uint64{5, 3}); err != ErrNotSorted {
		t.Errorf("descending ids: err = %v, want ErrNotSorted", err)
	}
}

func TestGapsEmptyAndSingle(t *testing.T) {
	if g, err := Gaps(nil); err != nil || len(g) != 0 {
		t.Errorf("Gaps(nil) = %v, %v", g, err)
	}
	g, err := Gaps([]uint64{42})
	if err != nil || g[0] != 42 {
		t.Errorf("Gaps([42]) = %v, %v", g, err)
	}
}

func TestGapsQuickSortedSets(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := map[uint64]bool{}
		for len(set) < int(n%50)+1 {
			set[uint64(rng.Intn(100000))] = true
		}
		ids := make([]uint64, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		orig := append([]uint64(nil), ids...)
		gaps, err := Gaps(ids)
		if err != nil {
			return false
		}
		back := Ungaps(gaps)
		for i := range orig {
			if back[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodePostings(t *testing.T) {
	docIDs := []uint32{1, 4, 9, 1000, 1001}
	tfs := []uint32{3, 1, 7, 2, 90}
	buf, err := EncodePostings(nil, docIDs, tfs)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotTFs, n, err := DecodePostings(buf, len(docIDs))
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v, want n=%d", n, err, len(buf))
	}
	for i := range docIDs {
		if gotIDs[i] != docIDs[i] || gotTFs[i] != tfs[i] {
			t.Errorf("posting %d: got (%d,%d), want (%d,%d)",
				i, gotIDs[i], gotTFs[i], docIDs[i], tfs[i])
		}
	}
}

func TestEncodePostingsErrors(t *testing.T) {
	if _, err := EncodePostings(nil, []uint32{1, 2}, []uint32{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := EncodePostings(nil, []uint32{2, 2}, []uint32{1, 1}); err != ErrNotSorted {
		t.Errorf("unsorted docIDs: err = %v, want ErrNotSorted", err)
	}
	if _, _, _, err := DecodePostings([]byte{0x80}, 1); err == nil {
		t.Error("truncated postings should error")
	}
}

func TestEncodePostingsQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		docIDs := make([]uint32, count)
		tfs := make([]uint32, count)
		cur := uint32(0)
		for i := range docIDs {
			cur += uint32(rng.Intn(1000)) + 1
			docIDs[i] = cur
			tfs[i] = uint32(rng.Intn(500))
		}
		buf, err := EncodePostings(nil, docIDs, tfs)
		if err != nil {
			return false
		}
		gotIDs, gotTFs, consumed, err := DecodePostings(buf, count)
		if err != nil || consumed != len(buf) {
			return false
		}
		for i := range docIDs {
			if gotIDs[i] != docIDs[i] || gotTFs[i] != tfs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
