package encoding

import (
	"testing"
	"testing/quick"
)

func TestGolombRoundTripVariousB(t *testing.T) {
	for _, b := range []uint64{1, 2, 3, 5, 7, 8, 10, 16, 100, 1 << 20} {
		for _, v := range []uint64{0, 1, 2, 3, 4, 5, 9, 10, 63, 64, 100, 12345} {
			w := NewBitWriter(nil)
			PutGolomb(w, v, b)
			r := NewBitReader(w.Bytes())
			got, ok := Golomb(r, b)
			if !ok || got != v {
				t.Errorf("golomb b=%d v=%d: got %d,%v", b, v, got, ok)
			}
		}
	}
}

func TestGolombRoundTripQuick(t *testing.T) {
	f := func(v uint64, bRaw uint16) bool {
		v %= 1 << 30 // keep unary part bounded
		b := uint64(bRaw)%1024 + 1
		w := NewBitWriter(nil)
		PutGolomb(w, v, b)
		r := NewBitReader(w.Bytes())
		got, ok := Golomb(r, b)
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGolombSequenceRoundTrip(t *testing.T) {
	vs := []uint64{4, 0, 7, 7, 1023, 2, 0, 0, 55}
	for _, b := range []uint64{1, 3, 6, 8} {
		buf := EncodeGolombAll(vs, b)
		back, ok := DecodeGolombAll(buf, len(vs), b)
		if !ok {
			t.Fatalf("b=%d: decode failed", b)
		}
		for i := range vs {
			if back[i] != vs[i] {
				t.Errorf("b=%d idx=%d: got %d want %d", b, i, back[i], vs[i])
			}
		}
	}
}

func TestGolombZeroBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutGolomb with b=0 should panic")
		}
	}()
	PutGolomb(NewBitWriter(nil), 1, 0)
}

func TestGolombParam(t *testing.T) {
	if got := GolombParam(0, 0); got != 1 {
		t.Errorf("GolombParam(0,0) = %d, want 1", got)
	}
	if got := GolombParam(100, 100); got != 1 {
		t.Errorf("dense list: got %d, want 1", got)
	}
	// Sparse list: mean gap 1000 -> parameter near 690.
	got := GolombParam(1_000_000, 1000)
	if got < 600 || got > 800 {
		t.Errorf("GolombParam(1e6,1e3) = %d, want ~690", got)
	}
}

func TestRiceSpecialCase(t *testing.T) {
	// b = 8 (power of two) must use exactly 3 remainder bits.
	w := NewBitWriter(nil)
	PutGolomb(w, 5, 8) // q=0 -> "0", remainder 5 -> "101"
	if w.BitLen() != 4 {
		t.Errorf("rice(5,8) bit length = %d, want 4", w.BitLen())
	}
}
