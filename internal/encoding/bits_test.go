package encoding

import (
	"testing"
	"testing/quick"
)

func TestBitWriterSingleBits(t *testing.T) {
	w := NewBitWriter(nil)
	for _, b := range []uint{1, 0, 1, 1, 0, 0, 1, 0, 1} {
		w.WriteBit(b)
	}
	got := w.Bytes()
	want := []byte{0xb2, 0x80} // 10110010 1(0000000)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %x, want %x", got, want)
	}
}

func TestBitRoundTripBits(t *testing.T) {
	f := func(v uint64, width uint8) bool {
		n := uint(width%64) + 1
		v &= 1<<n - 1
		w := NewBitWriter(nil)
		w.WriteBits(v, n)
		r := NewBitReader(w.Bytes())
		back, ok := r.ReadBits(n)
		return ok && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewBitWriter(nil)
	vals := []uint64{0, 1, 7, 13, 0, 2}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewBitReader(w.Bytes())
	for i, v := range vals {
		got, ok := r.ReadUnary()
		if !ok || got != v {
			t.Fatalf("value %d: got %d,%v want %d", i, got, ok, v)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, ok := r.ReadBits(9); ok {
		t.Error("ReadBits past end should fail")
	}
	r = NewBitReader([]byte{0xff})
	if _, ok := r.ReadUnary(); ok {
		t.Error("ReadUnary with no terminator should fail")
	}
}

func TestAlignByte(t *testing.T) {
	r := NewBitReader([]byte{0xff, 0x0f})
	r.ReadBits(3)
	r.AlignByte()
	if r.BitPos() != 8 {
		t.Errorf("BitPos = %d, want 8", r.BitPos())
	}
	r.AlignByte() // already aligned: no-op
	if r.BitPos() != 8 {
		t.Errorf("BitPos after second align = %d, want 8", r.BitPos())
	}
	v, ok := r.ReadBits(8)
	if !ok || v != 0x0f {
		t.Errorf("ReadBits(8) = %x,%v want 0x0f", v, ok)
	}
}

func TestBitLen(t *testing.T) {
	w := NewBitWriter(nil)
	w.WriteBits(0x7, 3)
	if w.BitLen() != 3 {
		t.Errorf("BitLen = %d, want 3", w.BitLen())
	}
	w.WriteBits(0xff, 8)
	if w.BitLen() != 11 {
		t.Errorf("BitLen = %d, want 11", w.BitLen())
	}
}
