package encoding

import (
	"testing"
	"testing/quick"
)

func TestBitWriterSingleBits(t *testing.T) {
	w := NewBitWriter(nil)
	for _, b := range []uint{1, 0, 1, 1, 0, 0, 1, 0, 1} {
		w.WriteBit(b)
	}
	got := w.Bytes()
	want := []byte{0xb2, 0x80} // 10110010 1(0000000)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %x, want %x", got, want)
	}
}

func TestBitRoundTripBits(t *testing.T) {
	f := func(v uint64, width uint8) bool {
		n := uint(width%64) + 1
		v &= 1<<n - 1
		w := NewBitWriter(nil)
		w.WriteBits(v, n)
		r := NewBitReader(w.Bytes())
		back, ok := r.ReadBits(n)
		return ok && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewBitWriter(nil)
	vals := []uint64{0, 1, 7, 13, 0, 2}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewBitReader(w.Bytes())
	for i, v := range vals {
		got, ok := r.ReadUnary()
		if !ok || got != v {
			t.Fatalf("value %d: got %d,%v want %d", i, got, ok, v)
		}
	}
}

// bitAtATimeWrite is the pre-optimization reference implementation:
// every bit through WriteBit. The byte-at-a-time WriteBits/WriteUnary
// must produce identical bytes for any interleaving.
func bitAtATimeWrite(ops []bitOp) []byte {
	w := NewBitWriter(nil)
	for _, op := range ops {
		if op.unary {
			for i := uint64(0); i < op.v; i++ {
				w.WriteBit(1)
			}
			w.WriteBit(0)
		} else {
			for i := int(op.n) - 1; i >= 0; i-- {
				w.WriteBit(uint(op.v >> uint(i) & 1))
			}
		}
	}
	return w.Bytes()
}

type bitOp struct {
	unary bool
	v     uint64
	n     uint
}

func TestByteAtATimeMatchesBitAtATime(t *testing.T) {
	f := func(seed []uint64) bool {
		ops := make([]bitOp, 0, len(seed))
		for i, s := range seed {
			if i%2 == 0 {
				ops = append(ops, bitOp{unary: true, v: s % 131})
			} else {
				ops = append(ops, bitOp{v: s, n: uint(s%64) + 1})
			}
		}
		w := NewBitWriter(nil)
		for _, op := range ops {
			if op.unary {
				w.WriteUnary(op.v)
			} else {
				w.WriteBits(op.v&(1<<op.n-1), op.n)
			}
		}
		got := w.Bytes()
		want := bitAtATimeWrite(ops)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewBitWriter(make([]byte, 0, 1<<16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.buf = w.buf[:0]
		w.cur, w.nbit = 0, 0
		for j := 0; j < 1024; j++ {
			w.WriteBits(uint64(j)*2654435761, uint(j%33)+1)
		}
	}
}

func BenchmarkWriteUnary(b *testing.B) {
	w := NewBitWriter(make([]byte, 0, 1<<16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.buf = w.buf[:0]
		w.cur, w.nbit = 0, 0
		for j := 0; j < 1024; j++ {
			w.WriteUnary(uint64(j % 97))
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, ok := r.ReadBits(9); ok {
		t.Error("ReadBits past end should fail")
	}
	r = NewBitReader([]byte{0xff})
	if _, ok := r.ReadUnary(); ok {
		t.Error("ReadUnary with no terminator should fail")
	}
}

func TestAlignByte(t *testing.T) {
	r := NewBitReader([]byte{0xff, 0x0f})
	r.ReadBits(3)
	r.AlignByte()
	if r.BitPos() != 8 {
		t.Errorf("BitPos = %d, want 8", r.BitPos())
	}
	r.AlignByte() // already aligned: no-op
	if r.BitPos() != 8 {
		t.Errorf("BitPos after second align = %d, want 8", r.BitPos())
	}
	v, ok := r.ReadBits(8)
	if !ok || v != 0x0f {
		t.Errorf("ReadBits(8) = %x,%v want 0x0f", v, ok)
	}
}

func TestBitLen(t *testing.T) {
	w := NewBitWriter(nil)
	w.WriteBits(0x7, 3)
	if w.BitLen() != 3 {
		t.Errorf("BitLen = %d, want 3", w.BitLen())
	}
	w.WriteBits(0xff, 8)
	if w.BitLen() != 11 {
		t.Errorf("BitLen = %d, want 11", w.BitLen())
	}
}
