package encoding

import (
	"testing"
	"testing/quick"
)

func TestGammaKnownCodes(t *testing.T) {
	// gamma(1) = "0", gamma(2) = "100", gamma(3) = "101",
	// gamma(4) = "11000", gamma(9) = "1110001".
	cases := []struct {
		v       uint64
		bits    string
		bitsLen int
	}{
		{1, "0", 1},
		{2, "100", 3},
		{3, "101", 3},
		{4, "11000", 5},
		{9, "1110001", 7},
	}
	for _, c := range cases {
		w := NewBitWriter(nil)
		PutGamma(w, c.v)
		if w.BitLen() != c.bitsLen || GammaLen(c.v) != c.bitsLen {
			t.Errorf("gamma(%d) length = %d (GammaLen %d), want %d", c.v, w.BitLen(), GammaLen(c.v), c.bitsLen)
		}
		r := NewBitReader(w.Bytes())
		got := ""
		for i := 0; i < c.bitsLen; i++ {
			b, _ := r.ReadBit()
			got += string(rune('0' + b))
		}
		if got != c.bits {
			t.Errorf("gamma(%d) = %s, want %s", c.v, got, c.bits)
		}
	}
}

func TestGammaRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		w := NewBitWriter(nil)
		PutGamma(w, v)
		r := NewBitReader(w.Bytes())
		back, ok := Gamma(r)
		return ok && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutGamma(0) should panic")
		}
	}()
	PutGamma(NewBitWriter(nil), 0)
}

func TestGammaAllRoundTrip(t *testing.T) {
	f := func(vs []uint64) bool {
		buf := EncodeGammaAll(vs)
		back, ok := DecodeGammaAll(buf, len(vs))
		if !ok {
			return false
		}
		for i := range vs {
			if back[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaTruncated(t *testing.T) {
	buf := EncodeGammaAll([]uint64{1 << 30})
	if _, ok := DecodeGammaAll(buf[:1], 1); ok {
		t.Error("decoding truncated gamma stream should fail")
	}
}
