package encoding

import "testing"

// FuzzCodecRoundTrip drives every registered codec's Decode with
// adversarial bytes: it must never panic or allocate unboundedly, and
// whatever it accepts must survive a re-encode/re-decode cycle with
// identical values (decoders and encoders agree on the wire format).
func FuzzCodecRoundTrip(f *testing.F) {
	docs := []uint32{1, 5, 130, 1 << 20}
	tfs := []uint32{2, 1, 7, 3}
	pos := [][]uint32{{0, 9}, {4}, {1, 2, 3, 4, 5, 6, 7}, {10, 20, 30}}
	for _, c := range Codecs() {
		if buf, err := c.Encode(nil, docs, tfs, nil); err == nil {
			f.Add(buf, uint16(len(docs)), uint8(c.ID()), false)
		}
		if buf, err := c.Encode(nil, docs, tfs, pos); err == nil {
			f.Add(buf, uint16(len(docs)), uint8(c.ID()), true)
		}
	}
	f.Add([]byte{0xff, 0xff, 0xff}, uint16(9), uint8(3), false)
	f.Add([]byte{}, uint16(0), uint8(4), true)

	eq := func(a, b []uint32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	f.Fuzz(func(t *testing.T, data []byte, count uint16, codecID uint8, positional bool) {
		c, err := Lookup(CodecID(codecID % NumCodecs))
		if err != nil {
			t.Fatal(err)
		}
		gotDocs, gotTFs, gotPos, err := c.Decode(data, int(count), positional)
		if err != nil {
			return // malformed input rejected: exactly the contract
		}
		if len(gotDocs) != int(count) || len(gotTFs) != int(count) {
			t.Fatalf("%s: decoded %d/%d values for count %d",
				c.Name(), len(gotDocs), len(gotTFs), count)
		}
		if !positional && gotPos != nil {
			t.Fatalf("%s: non-positional decode returned positions", c.Name())
		}
		// Accepted bytes may still decode to lists that violate the
		// encoder's invariants (unsorted docIDs from zero gaps etc.);
		// those cannot round-trip and Encode must reject them.
		enc, err := c.Encode(nil, gotDocs, gotTFs, gotPos)
		if err != nil {
			return
		}
		d2, t2, p2, err := c.Decode(enc, int(count), positional)
		if err != nil {
			t.Fatalf("%s: re-decode of own encoding failed: %v", c.Name(), err)
		}
		if !eq(d2, gotDocs) || !eq(t2, gotTFs) || len(p2) != len(gotPos) {
			t.Fatalf("%s: re-encode round-trip mismatch", c.Name())
		}
		for i := range p2 {
			if !eq(p2[i], gotPos[i]) {
				t.Fatalf("%s: re-encode positions mismatch at %d", c.Name(), i)
			}
		}
	})
}
