package encoding

import (
	"errors"
	"fmt"
)

// CodecID is the stable on-disk identifier of a postings codec. IDs are
// recorded per list in run-file entry tables (format version 4), so
// they must never be renumbered. CodecVarByte is zero on purpose:
// version-3 entries carry no codec bits, and a zero ID decodes them as
// the historical gap+varbyte format unchanged.
type CodecID uint8

const (
	CodecVarByte   CodecID = 0 // gap + variable-byte, the paper's output format
	CodecGamma     CodecID = 1 // Elias gamma bitstream
	CodecGolomb    CodecID = 2 // Golomb/Rice with a per-list parameter header
	CodecBitPack   CodecID = 3 // fixed-width bit-packed 128-gap blocks
	CodecEliasFano CodecID = 4 // quasi-succinct Elias-Fano for sparse lists

	// NumCodecs bounds the registry; IDs at or past it are unknown.
	NumCodecs = 5
)

// ErrUnknownCodec reports a codec ID or name outside the registry.
var ErrUnknownCodec = errors.New("encoding: unknown codec")

// Codec encodes and decodes one postings list. Encode appends to dst
// and returns the extended slice; docIDs must be strictly increasing
// and parallel to tfs. positions is nil for non-positional lists;
// when non-nil it is parallel to docIDs with len(positions[i]) ==
// tfs[i] and strictly ascending in-document positions. Decode reverses
// Encode for exactly count postings, returning nil positions for
// positional == false. Every codec is self-contained: any parameters
// it needs (Golomb b, Elias-Fano universe) travel in its own header
// bytes, so a list decodes from (bytes, count, positional) alone.
type Codec interface {
	ID() CodecID
	Name() string
	Encode(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error)
	Decode(src []byte, count int, positional bool) (docIDs, tfs []uint32, positions [][]uint32, err error)

	// MinBytes is a lower bound on the encoded size of any valid
	// count-posting list. Readers check untrusted entry tables against
	// it before allocating anything proportional to the claimed count,
	// so it must never exceed a real encoding's size.
	MinBytes(count int) int
}

// codecs is the fixed registry, indexed by CodecID. There is no
// dynamic registration: the set of codecs is part of the on-disk
// format, and a new one means a new ID and a deliberate format bump.
var codecs = [NumCodecs]Codec{
	CodecVarByte:   VarByteCodec,
	CodecGamma:     GammaCodec,
	CodecGolomb:    GolombCodec,
	CodecBitPack:   BitPackCodec,
	CodecEliasFano: EliasFanoCodec,
}

// Lookup resolves a codec ID read from an entry table.
func Lookup(id CodecID) (Codec, error) {
	if int(id) >= len(codecs) {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
	}
	return codecs[id], nil
}

// ByName resolves a codec by its registry name.
func ByName(name string) (Codec, error) {
	for _, c := range codecs {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
}

// Codecs returns every registered codec in ID order.
func Codecs() []Codec {
	out := make([]Codec, len(codecs))
	copy(out, codecs[:])
	return out
}

// Selector picks the codec for one list from its shape: posting count,
// absolute first and last docIDs, and whether positions are carried.
// Selection MUST be a pure function of these arguments — the sharded
// merge relies on it to produce byte-identical output for any worker
// count.
type Selector func(n int, first, last uint32, positional bool) Codec

// AutoSelect is the default per-list self-tuning heuristic:
//
//   - Short lists (n < 32) stay varbyte: byte-aligned decode is fastest
//     and per-list codec headers would dominate the size.
//   - Dense lists (average docID gap <= 8 — the Zipf head, where almost
//     every document carries the term) bit-pack: gaps of 1-8 fit 1-3
//     bits per posting in fixed-width blocks.
//   - Everything else (the sparse tail) uses Elias-Fano, whose
//     ~2 + log2(universe/n) bits per docID tracks the information-
//     theoretic bound as lists get sparser.
func AutoSelect(n int, first, last uint32, positional bool) Codec {
	if n < 32 {
		return VarByteCodec
	}
	span := uint64(last-first) + 1
	if span/uint64(n) <= 8 {
		return BitPackCodec
	}
	return EliasFanoCodec
}

// ForceSelect returns a Selector that always picks c.
func ForceSelect(c Codec) Selector {
	return func(int, uint32, uint32, bool) Codec { return c }
}

// SelectorFor resolves a selection policy by name: "auto" is
// AutoSelect, any registry codec name forces that codec.
func SelectorFor(name string) (Selector, error) {
	if name == "auto" {
		return AutoSelect, nil
	}
	c, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return ForceSelect(c), nil
}

// checkList validates Encode's shared preconditions.
func checkList(docIDs, tfs []uint32, positions [][]uint32) error {
	if len(docIDs) != len(tfs) {
		return errors.New("encoding: docID/tf length mismatch")
	}
	if positions != nil && len(positions) != len(docIDs) {
		return errors.New("encoding: positional list length mismatch")
	}
	for i := 1; i < len(docIDs); i++ {
		if docIDs[i] <= docIDs[i-1] {
			return ErrNotSorted
		}
	}
	if positions != nil {
		for i, ps := range positions {
			if len(ps) != int(tfs[i]) {
				return fmt.Errorf("encoding: tf %d but %d positions", tfs[i], len(ps))
			}
			for j := 1; j < len(ps); j++ {
				if ps[j] <= ps[j-1] {
					return fmt.Errorf("encoding: positions not ascending in doc %d", docIDs[i])
				}
			}
		}
	}
	return nil
}
