package encoding

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// codecLists covers the shapes that have bitten decoders before: doc 0,
// single posting, dense gap-1 runs, sparse jumps, max uint32, and tf
// spreads from 1 to large.
func codecLists() [][3][]uint32 {
	// Each case: docIDs, tfs (positions derived for positional tests).
	mk := func(docs, tfs []uint32) [3][]uint32 { return [3][]uint32{docs, tfs, nil} }
	cases := [][3][]uint32{
		mk([]uint32{0}, []uint32{1}),
		mk([]uint32{0, 1}, []uint32{1, 1}),
		mk([]uint32{5}, []uint32{300}),
		mk([]uint32{1, 5, 130}, []uint32{2, 1, 7}),
		mk([]uint32{0, 1, 2, 3, 4, 5, 6, 7}, []uint32{1, 2, 3, 4, 5, 6, 7, 8}),
		mk([]uint32{100, 1 << 20, 1 << 30, ^uint32(0)}, []uint32{1, 9, 1, 65000}),
		mk([]uint32{^uint32(0) - 1, ^uint32(0)}, []uint32{1, 1}),
	}
	// A dense Zipf-head-like list and a sparse tail list, both long
	// enough to exercise multiple bit-pack blocks.
	r := rand.New(rand.NewSource(7))
	var dense, sparse, dtf, stf []uint32
	d, s := uint32(0), uint32(0)
	for i := 0; i < 300; i++ {
		d += 1 + uint32(r.Intn(3))
		s += 1 + uint32(r.Intn(100000))
		dense = append(dense, d)
		sparse = append(sparse, s)
		dtf = append(dtf, 1+uint32(r.Intn(4)))
		stf = append(stf, 1+uint32(r.Intn(2)))
	}
	cases = append(cases, mk(dense, dtf), mk(sparse, stf))
	return cases
}

// testPositions derives a valid strictly-ascending position set for
// each posting's tf.
func testPositions(tfs []uint32) [][]uint32 {
	out := make([][]uint32, len(tfs))
	for i, tf := range tfs {
		ps := make([]uint32, tf)
		p := uint32(i % 3)
		for j := range ps {
			ps[j] = p
			p += 1 + uint32(j%5)
		}
		out[i] = ps
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	for _, c := range Codecs() {
		for ci, tc := range codecLists() {
			docs, tfs := tc[0], tc[1]
			// Plain.
			buf, err := c.Encode(nil, docs, tfs, nil)
			if err != nil {
				t.Fatalf("%s case %d: encode: %v", c.Name(), ci, err)
			}
			if len(buf) < c.MinBytes(len(docs)) {
				t.Fatalf("%s case %d: encoded %d bytes below MinBytes %d",
					c.Name(), ci, len(buf), c.MinBytes(len(docs)))
			}
			gd, gt, gp, err := c.Decode(buf, len(docs), false)
			if err != nil {
				t.Fatalf("%s case %d: decode: %v", c.Name(), ci, err)
			}
			if !reflect.DeepEqual(gd, docs) || !reflect.DeepEqual(gt, tfs) || gp != nil {
				t.Fatalf("%s case %d: round-trip mismatch", c.Name(), ci)
			}
			// Positional.
			pos := testPositions(tfs)
			buf, err = c.Encode(nil, docs, tfs, pos)
			if err != nil {
				t.Fatalf("%s case %d: positional encode: %v", c.Name(), ci, err)
			}
			if len(buf) < c.MinBytes(len(docs)) {
				t.Fatalf("%s case %d: positional encoded %d bytes below MinBytes %d",
					c.Name(), ci, len(buf), c.MinBytes(len(docs)))
			}
			gd, gt, gp, err = c.Decode(buf, len(docs), true)
			if err != nil {
				t.Fatalf("%s case %d: positional decode: %v", c.Name(), ci, err)
			}
			if !reflect.DeepEqual(gd, docs) || !reflect.DeepEqual(gt, tfs) || !reflect.DeepEqual(gp, pos) {
				t.Fatalf("%s case %d: positional round-trip mismatch", c.Name(), ci)
			}
		}
	}
}

// TestCodecVarByteWireCompat pins VarByteCodec to the historical wire
// format: version-3 run files must decode through the registry
// unchanged.
func TestCodecVarByteWireCompat(t *testing.T) {
	docs := []uint32{1, 5, 130}
	tfs := []uint32{2, 1, 7}
	want, err := EncodePostings(nil, docs, tfs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VarByteCodec.Encode(nil, docs, tfs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("VarByteCodec output % x, legacy % x", got, want)
	}
	pos := [][]uint32{{0, 128}, {4}, {1, 2, 3, 4, 5, 6, 7}}
	want, err = EncodePositionalPostings(nil, docs, tfs, pos)
	if err != nil {
		t.Fatal(err)
	}
	got, err = VarByteCodec.Encode(nil, docs, tfs, pos)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("positional VarByteCodec output % x, legacy % x", got, want)
	}
}

func TestCodecRegistry(t *testing.T) {
	for id := CodecID(0); id < NumCodecs; id++ {
		c, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", id, err)
		}
		if c.ID() != id {
			t.Fatalf("codec %q registered at %d reports ID %d", c.Name(), id, c.ID())
		}
		byName, err := ByName(c.Name())
		if err != nil || byName.ID() != id {
			t.Fatalf("ByName(%q) = %v, %v", c.Name(), byName, err)
		}
	}
	if _, err := Lookup(NumCodecs); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("Lookup(out of range) = %v, want ErrUnknownCodec", err)
	}
	if _, err := ByName("zstd"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("ByName(unknown) = %v, want ErrUnknownCodec", err)
	}
	if CodecVarByte != 0 {
		t.Fatal("CodecVarByte must be 0: version-3 entries carry zero codec bits")
	}
}

func TestCodecSelectors(t *testing.T) {
	if c := AutoSelect(10, 0, 1000, false); c.ID() != CodecVarByte {
		t.Fatalf("short list selected %s", c.Name())
	}
	if c := AutoSelect(128, 0, 255, false); c.ID() != CodecBitPack {
		t.Fatalf("dense list selected %s", c.Name())
	}
	if c := AutoSelect(128, 0, 1<<24, false); c.ID() != CodecEliasFano {
		t.Fatalf("sparse list selected %s", c.Name())
	}
	sel, err := SelectorFor("auto")
	if err != nil || sel == nil {
		t.Fatalf("SelectorFor(auto): %v", err)
	}
	sel, err = SelectorFor("golomb")
	if err != nil {
		t.Fatal(err)
	}
	if c := sel(1<<20, 0, ^uint32(0), true); c.ID() != CodecGolomb {
		t.Fatalf("forced selector picked %s", c.Name())
	}
	if _, err := SelectorFor("lz4"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("SelectorFor(unknown) = %v", err)
	}
	if _, err := SelectorFor(""); err == nil {
		t.Fatal("SelectorFor(\"\") must error; defaults are the caller's choice")
	}
}

// TestCodecEncodeRejectsBadInput: every codec enforces the shared list
// invariants instead of silently corrupting.
func TestCodecEncodeRejectsBadInput(t *testing.T) {
	for _, c := range Codecs() {
		if _, err := c.Encode(nil, []uint32{5, 5}, []uint32{1, 1}, nil); !errors.Is(err, ErrNotSorted) {
			t.Fatalf("%s: duplicate docIDs: %v", c.Name(), err)
		}
		if _, err := c.Encode(nil, []uint32{5, 2}, []uint32{1, 1}, nil); !errors.Is(err, ErrNotSorted) {
			t.Fatalf("%s: descending docIDs: %v", c.Name(), err)
		}
		if _, err := c.Encode(nil, []uint32{1, 2}, []uint32{1}, nil); err == nil {
			t.Fatalf("%s: accepted docID/tf length mismatch", c.Name())
		}
		if _, err := c.Encode(nil, []uint32{1}, []uint32{2}, [][]uint32{{3}}); err == nil {
			t.Fatalf("%s: accepted tf/positions mismatch", c.Name())
		}
		if _, err := c.Encode(nil, []uint32{1}, []uint32{2}, [][]uint32{{3, 3}}); err == nil {
			t.Fatalf("%s: accepted non-ascending positions", c.Name())
		}
	}
}

// TestCodecDecodeBoundsCount: an absurd count against a tiny buffer
// must fail before allocating, for every codec.
func TestCodecDecodeBoundsCount(t *testing.T) {
	buf := []byte{1, 2, 3, 4}
	for _, c := range Codecs() {
		for _, positional := range []bool{false, true} {
			if _, _, _, err := c.Decode(buf, 1<<30, positional); err == nil {
				t.Fatalf("%s (positional=%v): accepted count 1<<30 for 4 bytes", c.Name(), positional)
			}
		}
	}
}

// TestCodecSizesOnClasses documents the selection heuristic's payoff:
// on a dense gap-1..3 list bitpack beats varbyte, on a sparse list
// Elias-Fano beats varbyte.
func TestCodecSizesOnClasses(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	size := func(c Codec, docs, tfs []uint32) int {
		buf, err := c.Encode(nil, docs, tfs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return len(buf)
	}
	var dense, sparse, tfs []uint32
	d, s := uint32(0), uint32(0)
	for i := 0; i < 1024; i++ {
		d += 1 + uint32(r.Intn(3))
		s += 1000 + uint32(r.Intn(100000))
		dense = append(dense, d)
		sparse = append(sparse, s)
		tfs = append(tfs, 1+uint32(r.Intn(3)))
	}
	if bp, vb := size(BitPackCodec, dense, tfs), size(VarByteCodec, dense, tfs); bp >= vb {
		t.Errorf("dense list: bitpack %d bytes not below varbyte %d", bp, vb)
	}
	if ef, vb := size(EliasFanoCodec, sparse, tfs), size(VarByteCodec, sparse, tfs); ef >= vb {
		t.Errorf("sparse list: eliasfano %d bytes not below varbyte %d", ef, vb)
	}
}
