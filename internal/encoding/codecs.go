package encoding

import "errors"

// The three codecs the paper cites (§II), refitted onto the Codec
// interface. VarByteCodec's wire format is byte-for-byte the historical
// EncodePostings/EncodePositionalPostings output, so version-3 run
// files decode through the registry unchanged.

// Registered codec singletons.
var (
	VarByteCodec   Codec = varByteCodec{}
	GammaCodec     Codec = gammaCodec{}
	GolombCodec    Codec = golombCodec{}
	BitPackCodec   Codec = bitPackCodec{}
	EliasFanoCodec Codec = eliasFanoCodec{}
)

// ---------------------------------------------------------------- varbyte

type varByteCodec struct{}

func (varByteCodec) ID() CodecID  { return CodecVarByte }
func (varByteCodec) Name() string { return "varbyte" }

// MinBytes: every posting costs at least one gap byte and one tf byte.
func (varByteCodec) MinBytes(count int) int { return 2 * count }

func (varByteCodec) Encode(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error) {
	if positions != nil {
		return EncodePositionalPostings(dst, docIDs, tfs, positions)
	}
	return EncodePostings(dst, docIDs, tfs)
}

func (varByteCodec) Decode(src []byte, count int, positional bool) (docIDs, tfs []uint32, positions [][]uint32, err error) {
	if positional {
		docIDs, tfs, positions, _, err = DecodePositionalPostings(src, count)
		return docIDs, tfs, positions, err
	}
	docIDs, tfs, _, err = DecodePostings(src, count)
	return docIDs, tfs, nil, err
}

// ---------------------------------------------------------------- gamma

// gammaCodec is a pure Elias-gamma bitstream: per posting
// gamma(docGap+1), gamma(tf+1), then for positional lists the tf
// position gaps as gamma(posGap+1). The first docID and the first
// position of each document are absolute; +1 makes zero encodable
// (gamma is undefined for 0).
type gammaCodec struct{}

func (gammaCodec) ID() CodecID  { return CodecGamma }
func (gammaCodec) Name() string { return "gamma" }

// MinBytes: at least one gamma bit for the gap and one for the tf.
func (gammaCodec) MinBytes(count int) int { return (2*count + 7) / 8 }

func (gammaCodec) Encode(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error) {
	if err := checkList(docIDs, tfs, positions); err != nil {
		return nil, err
	}
	w := NewBitWriter(dst)
	prev := uint32(0)
	for i, id := range docIDs {
		PutGamma(w, uint64(id-prev)+1)
		PutGamma(w, uint64(tfs[i])+1)
		if positions != nil {
			writeGammaPositions(w, positions[i])
		}
		prev = id
	}
	return w.Bytes(), nil
}

func (gammaCodec) Decode(src []byte, count int, positional bool) (docIDs, tfs []uint32, positions [][]uint32, err error) {
	if err := checkBitCount(src, count); err != nil {
		return nil, nil, nil, err
	}
	r := NewBitReader(src)
	docIDs = make([]uint32, count)
	tfs = make([]uint32, count)
	if positional {
		positions = make([][]uint32, count)
	}
	var prev uint32
	for i := 0; i < count; i++ {
		gap, ok := Gamma(r)
		if !ok || gap == 0 {
			return nil, nil, nil, errors.New("encoding: gamma: truncated gap")
		}
		tf, ok := Gamma(r)
		if !ok || tf == 0 {
			return nil, nil, nil, errors.New("encoding: gamma: truncated tf")
		}
		prev += uint32(gap - 1)
		docIDs[i] = prev
		tfs[i] = uint32(tf - 1)
		if positional {
			ps, err := readGammaPositions(r, tf-1, len(src))
			if err != nil {
				return nil, nil, nil, err
			}
			positions[i] = ps
		}
	}
	return docIDs, tfs, positions, nil
}

// writeGammaPositions emits one document's position gaps (first
// absolute) as gamma(v+1).
func writeGammaPositions(w *BitWriter, ps []uint32) {
	prev := uint32(0)
	for _, p := range ps {
		PutGamma(w, uint64(p-prev)+1)
		prev = p
	}
}

// readGammaPositions reads tf gamma-coded position gaps. tf is
// untrusted: every position costs at least one bit, so it is bounded
// by the total input size before allocating.
func readGammaPositions(r *BitReader, tf uint64, srcLen int) ([]uint32, error) {
	if tf > uint64(srcLen)*8 {
		return nil, errors.New("encoding: gamma: tf exceeds input")
	}
	ps := make([]uint32, tf)
	var cur uint32
	for j := range ps {
		pg, ok := Gamma(r)
		if !ok || pg == 0 {
			return nil, errors.New("encoding: gamma: truncated position")
		}
		cur += uint32(pg - 1)
		ps[j] = cur
	}
	return ps, nil
}

// checkBitCount rejects counts the bitstream cannot possibly hold
// (>= 2 bits per posting) before allocating count-sized slices.
func checkBitCount(src []byte, count int) error {
	if count < 0 || uint64(count)*2 > uint64(len(src))*8 {
		return errors.New("encoding: postings count exceeds input")
	}
	return nil
}

// ---------------------------------------------------------------- golomb

// golombCodec stores the per-list Golomb parameter b as a varbyte
// header (so decode is self-contained), then per posting
// golomb(docGap, b), gamma(tf+1), and positional gaps as gamma. b is
// the textbook-optimal parameter for the list's density, derived from
// its last docID and count.
type golombCodec struct{}

func (golombCodec) ID() CodecID  { return CodecGolomb }
func (golombCodec) Name() string { return "golomb" }

// MinBytes: the b header byte plus >= 2 bits per posting (one unary
// gap bit, one tf bit).
func (golombCodec) MinBytes(count int) int { return 1 + (2*count+7)/8 }

func (golombCodec) Encode(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error) {
	if err := checkList(docIDs, tfs, positions); err != nil {
		return nil, err
	}
	b := uint64(1)
	if n := len(docIDs); n > 0 {
		b = GolombParam(uint64(docIDs[n-1])+1, uint64(n))
	}
	dst = PutUvarByte(dst, b)
	w := NewBitWriter(dst)
	prev := uint32(0)
	for i, id := range docIDs {
		PutGolomb(w, uint64(id-prev), b)
		PutGamma(w, uint64(tfs[i])+1)
		if positions != nil {
			writeGammaPositions(w, positions[i])
		}
		prev = id
	}
	return w.Bytes(), nil
}

func (golombCodec) Decode(src []byte, count int, positional bool) (docIDs, tfs []uint32, positions [][]uint32, err error) {
	b, m := UvarByte(src)
	if m <= 0 || b == 0 {
		return nil, nil, nil, errors.New("encoding: golomb: bad parameter header")
	}
	src = src[m:]
	if err := checkBitCount(src, count); err != nil {
		return nil, nil, nil, err
	}
	r := NewBitReader(src)
	docIDs = make([]uint32, count)
	tfs = make([]uint32, count)
	if positional {
		positions = make([][]uint32, count)
	}
	var prev uint32
	for i := 0; i < count; i++ {
		gap, ok := Golomb(r, b)
		if !ok {
			return nil, nil, nil, errors.New("encoding: golomb: truncated gap")
		}
		tf, ok := Gamma(r)
		if !ok || tf == 0 {
			return nil, nil, nil, errors.New("encoding: golomb: truncated tf")
		}
		prev += uint32(gap)
		docIDs[i] = prev
		tfs[i] = uint32(tf - 1)
		if positional {
			ps, err := readGammaPositions(r, tf-1, len(src))
			if err != nil {
				return nil, nil, nil, err
			}
			positions[i] = ps
		}
	}
	return docIDs, tfs, positions, nil
}
