// Package encoding implements the postings-list compression codecs used
// by the indexer: variable-byte coding, Elias gamma coding, Golomb/Rice
// coding, and document-ID gap transforms.
//
// All of the paper's output postings lists are gap-transformed and then
// variable-byte encoded (§II, final paragraph); gamma and Golomb are
// provided as the alternatives the paper cites so they can be compared
// in the ablation benches.
package encoding

// PutUvarByte appends the variable-byte encoding of v to dst and
// returns the extended slice. The encoding stores 7 payload bits per
// byte, least-significant group first; the high bit is set on every
// byte except the last, mirroring the classical IR "vbyte" scheme.
func PutUvarByte(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// UvarByte decodes a variable-byte value from src, returning the value
// and the number of bytes consumed. It returns n == 0 when src is
// truncated and n < 0 when the encoding overflows 64 bits.
func UvarByte(src []byte) (v uint64, n int) {
	var shift uint
	for i, b := range src {
		if shift >= 64 {
			return 0, -(i + 1)
		}
		if b < 0x80 {
			if shift == 63 && b > 1 {
				return 0, -(i + 1)
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// VarByteLen reports the encoded size of v in bytes without encoding it.
func VarByteLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendUvarByteAll encodes every value of vs in order.
func AppendUvarByteAll(dst []byte, vs []uint64) []byte {
	for _, v := range vs {
		dst = PutUvarByte(dst, v)
	}
	return dst
}

// UvarByteAll decodes exactly count values from src. It returns the
// decoded values and the number of bytes consumed, or n == 0 if src
// does not contain count well-formed values.
func UvarByteAll(src []byte, count int) (vs []uint64, n int) {
	vs = make([]uint64, 0, count)
	for len(vs) < count {
		v, m := UvarByte(src[n:])
		if m <= 0 {
			return nil, 0
		}
		vs = append(vs, v)
		n += m
	}
	return vs, n
}
