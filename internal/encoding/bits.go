package encoding

// BitWriter accumulates bits most-significant-first into a byte slice.
// It backs the gamma and Golomb coders, which are bit- rather than
// byte-aligned.
type BitWriter struct {
	buf  []byte
	cur  byte
	nbit uint // bits used in cur, 0..7
}

// NewBitWriter returns a writer that appends to buf (which may be nil).
func NewBitWriter(buf []byte) *BitWriter {
	return &BitWriter{buf: buf}
}

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(bit uint) {
	w.cur = w.cur<<1 | byte(bit&1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, most-significant-first.
// n must be <= 64. Bits are moved a byte at a time: each iteration
// fills the current partial byte (or emits a whole one), so the cost
// is O(n/8) rather than O(n).
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for n > 0 {
		take := 8 - w.nbit
		if take > n {
			take = n
		}
		chunk := byte(v>>(n-take)) & byte(1<<take-1)
		w.cur = w.cur<<take | chunk
		w.nbit += take
		n -= take
		if w.nbit == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nbit = 0, 0
		}
	}
}

// WriteUnary appends v in unary: v one-bits followed by a zero bit.
// Runs of ones are emitted as whole 0xff bytes once the writer is
// byte-aligned, so long unary codes cost O(v/8) appends.
func (w *BitWriter) WriteUnary(v uint64) {
	// Top up the current partial byte first.
	if w.nbit > 0 {
		take := 8 - w.nbit
		if uint64(take) > v {
			take = uint(v)
		}
		w.cur = w.cur<<take | byte(1<<take-1)
		w.nbit += take
		v -= uint64(take)
		if w.nbit == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nbit = 0, 0
		}
	}
	for v >= 8 {
		w.buf = append(w.buf, 0xff)
		v -= 8
	}
	// Remaining ones (< 8) plus the terminating zero bit.
	w.cur = w.cur<<(v+1) | byte(1<<v-1)<<1
	w.nbit += uint(v) + 1
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

// Bytes flushes any partial byte (padding with zero bits) and returns
// the accumulated buffer. The writer remains usable; further writes
// continue after the padding.
func (w *BitWriter) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nbit))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// BitLen reports the total number of bits written so far, excluding
// flush padding.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// BitReader consumes bits most-significant-first from a byte slice.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// ReadBit returns the next bit, or ok == false at end of input.
func (r *BitReader) ReadBit() (bit uint, ok bool) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, false
	}
	shift := 7 - uint(r.pos&7)
	r.pos++
	return uint(r.buf[byteIdx]>>shift) & 1, true
}

// ReadBits reads n bits into the low bits of the result,
// most-significant-first. ok is false if input ends early.
func (r *BitReader) ReadBits(n uint) (v uint64, ok bool) {
	for i := uint(0); i < n; i++ {
		bit, ok := r.ReadBit()
		if !ok {
			return 0, false
		}
		v = v<<1 | uint64(bit)
	}
	return v, true
}

// ReadUnary reads a unary-coded value (count of one-bits before the
// terminating zero). ok is false if input ends before the terminator.
func (r *BitReader) ReadUnary() (v uint64, ok bool) {
	for {
		bit, ok := r.ReadBit()
		if !ok {
			return 0, false
		}
		if bit == 0 {
			return v, true
		}
		v++
	}
}

// BitPos reports the current bit offset from the start of the buffer.
func (r *BitReader) BitPos() int { return r.pos }

// AlignByte advances the reader to the next byte boundary.
func (r *BitReader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}
