package encoding

import (
	"errors"
	"math/bits"
)

// Elias-Fano coding of the docID sequence (Pibiri & Venturini's survey
// is the reference): each absolute docID is split into l low bits,
// stored verbatim, and a high part whose successive deltas are unary
// coded. With l = floor(log2(u/n)) the docIDs cost at most
// 2 + ceil(log2(u/n)) bits each — within half a bit per element of the
// information-theoretic minimum for an n-subset of [0, u], which is
// what makes it the sparse-tail choice.
//
// Wire format:
//
//	varbyte(u)            u = last (largest) docID, absolute
//	then one bitstream, per posting i:
//	  unary(high_i - high_{i-1})   high_i = docIDs[i] >> l
//	  l low bits of docIDs[i]
//	  gamma(tf_i + 1)
//	  positional only: tf_i position gaps as gamma(posGap+1),
//	                   first position absolute
//
// l is recomputed at decode from (u, count), so the list is
// self-contained. Interleaving tf (and positions) keeps one sequential
// stream — the store decodes whole lists, never random-accesses into
// them, so the classical split high/low arrays would buy nothing here.
type eliasFanoCodec struct{}

func (eliasFanoCodec) ID() CodecID  { return CodecEliasFano }
func (eliasFanoCodec) Name() string { return "eliasfano" }

// MinBytes: the universe header byte plus >= 2 bits per posting (the
// unary terminator of the high delta and one tf bit; l may be 0).
func (eliasFanoCodec) MinBytes(count int) int { return 1 + (2*count+7)/8 }

// efLowBits derives the low-bit width from the universe and count —
// identical at encode and decode by construction.
func efLowBits(u uint64, n int) uint {
	if n <= 0 {
		return 0
	}
	q := (u + 1) / uint64(n)
	if q <= 1 {
		return 0
	}
	return uint(bits.Len64(q) - 1)
}

func (eliasFanoCodec) Encode(dst []byte, docIDs, tfs []uint32, positions [][]uint32) ([]byte, error) {
	if err := checkList(docIDs, tfs, positions); err != nil {
		return nil, err
	}
	n := len(docIDs)
	if n == 0 {
		return dst, nil
	}
	u := uint64(docIDs[n-1])
	dst = PutUvarByte(dst, u)
	l := efLowBits(u, n)
	w := NewBitWriter(dst)
	prevHigh := uint64(0)
	for i, id := range docIDs {
		high := uint64(id) >> l
		w.WriteUnary(high - prevHigh)
		prevHigh = high
		if l > 0 {
			w.WriteBits(uint64(id), l)
		}
		PutGamma(w, uint64(tfs[i])+1)
		if positions != nil {
			writeGammaPositions(w, positions[i])
		}
	}
	return w.Bytes(), nil
}

func (eliasFanoCodec) Decode(src []byte, count int, positional bool) (docIDs, tfs []uint32, positions [][]uint32, err error) {
	if count == 0 {
		return nil, nil, nil, nil
	}
	u, m := UvarByte(src)
	if m <= 0 {
		return nil, nil, nil, errors.New("encoding: eliasfano: truncated universe")
	}
	src = src[m:]
	if err := checkBitCount(src, count); err != nil {
		return nil, nil, nil, err
	}
	l := efLowBits(u, count)
	r := NewBitReader(src)
	docIDs = make([]uint32, count)
	tfs = make([]uint32, count)
	if positional {
		positions = make([][]uint32, count)
	}
	var high uint64
	for i := 0; i < count; i++ {
		delta, ok := r.ReadUnary()
		if !ok {
			return nil, nil, nil, errors.New("encoding: eliasfano: truncated high bits")
		}
		high += delta
		low, ok := r.ReadBits(l)
		if !ok {
			return nil, nil, nil, errors.New("encoding: eliasfano: truncated low bits")
		}
		docIDs[i] = uint32(high<<l | low)
		tf, ok := Gamma(r)
		if !ok || tf == 0 {
			return nil, nil, nil, errors.New("encoding: eliasfano: truncated tf")
		}
		tfs[i] = uint32(tf - 1)
		if positional {
			ps, err := readGammaPositions(r, tf-1, len(src))
			if err != nil {
				return nil, nil, nil, err
			}
			positions[i] = ps
		}
	}
	return docIDs, tfs, positions, nil
}
