package encoding

import "math/bits"

// Golomb coding with parameter b: v is split into quotient q = v / b
// (unary) and remainder r = v mod b (truncated binary). When b is a
// power of two this is Rice coding and the remainder is a fixed-width
// field.

// PutGolomb appends the Golomb code of v with parameter b >= 1.
func PutGolomb(w *BitWriter, v, b uint64) {
	if b == 0 {
		panic("encoding: golomb parameter must be >= 1")
	}
	q := v / b
	r := v % b
	w.WriteUnary(q)
	if b == 1 {
		return
	}
	k := uint(bits.Len64(b - 1)) // ceil(log2 b)
	cutoff := uint64(1)<<k - b   // number of short (k-1 bit) codes
	if r < cutoff {
		w.WriteBits(r, k-1)
	} else {
		w.WriteBits(r+cutoff, k)
	}
}

// Golomb decodes one Golomb-coded value with parameter b from r.
func Golomb(r *BitReader, b uint64) (v uint64, ok bool) {
	q, ok := r.ReadUnary()
	if !ok {
		return 0, false
	}
	if b == 1 {
		return q, true
	}
	k := uint(bits.Len64(b - 1))
	cutoff := uint64(1)<<k - b
	rem, ok := r.ReadBits(k - 1)
	if !ok {
		return 0, false
	}
	if rem >= cutoff {
		bit, ok := r.ReadBit()
		if !ok {
			return 0, false
		}
		rem = rem<<1 | uint64(bit) - cutoff
	}
	return q*b + rem, true
}

// GolombParam returns the textbook-optimal Golomb parameter for gaps
// drawn from a geometric distribution where p = termPostings/totalDocs:
// b = ceil(ln 2 / p) approximated as 0.69 * mean gap, clamped to >= 1.
func GolombParam(totalDocs, termPostings uint64) uint64 {
	if termPostings == 0 || totalDocs == 0 {
		return 1
	}
	b := (totalDocs*69 + termPostings*50) / (termPostings * 100) // ~0.69 * mean, rounded
	if b < 1 {
		b = 1
	}
	return b
}

// EncodeGolombAll Golomb-codes each value of vs with parameter b.
func EncodeGolombAll(vs []uint64, b uint64) []byte {
	w := NewBitWriter(nil)
	for _, v := range vs {
		PutGolomb(w, v, b)
	}
	return w.Bytes()
}

// DecodeGolombAll decodes count values produced by EncodeGolombAll.
func DecodeGolombAll(buf []byte, count int, b uint64) ([]uint64, bool) {
	r := NewBitReader(buf)
	vs := make([]uint64, count)
	for i := range vs {
		v, ok := Golomb(r, b)
		if !ok {
			return nil, false
		}
		vs[i] = v
	}
	return vs, true
}
