package btree

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"unsafe"
)

// TestNodeLayout512 pins the Table II layout: a node is exactly 512
// bytes and every field sits at its documented offset.
func TestNodeLayout512(t *testing.T) {
	if s := unsafe.Sizeof(Node{}); s != NodeSize {
		t.Fatalf("sizeof(Node) = %d, want %d", s, NodeSize)
	}
	var n Node
	base := uintptr(unsafe.Pointer(&n))
	checks := []struct {
		name string
		off  uintptr
		want int
	}{
		{"ValidCount", uintptr(unsafe.Pointer(&n.ValidCount)) - base, OffValidCount},
		{"StringPtr", uintptr(unsafe.Pointer(&n.StringPtr)) - base, OffStringPtr},
		{"Leaf", uintptr(unsafe.Pointer(&n.Leaf)) - base, OffLeaf},
		{"PostingsPtr", uintptr(unsafe.Pointer(&n.PostingsPtr)) - base, OffPostingsPtr},
		{"Children", uintptr(unsafe.Pointer(&n.Children)) - base, OffChildren},
		{"Cache", uintptr(unsafe.Pointer(&n.Cache)) - base, OffCache},
		{"Padding", uintptr(unsafe.Pointer(&n.Padding)) - base, OffPadding},
	}
	for _, c := range checks {
		if int(c.off) != c.want {
			t.Errorf("offset of %s = %d, want %d", c.name, c.off, c.want)
		}
	}
	if OffPadding+4 != NodeSize {
		t.Errorf("layout does not fill 512 bytes: padding ends at %d", OffPadding+4)
	}
}

func TestNodeMarshalRoundTrip(t *testing.T) {
	var n Node
	n.ValidCount = 7
	n.Leaf = 1
	for i := 0; i < MaxKeys; i++ {
		n.StringPtr[i] = int32(i * 3)
		n.PostingsPtr[i] = int32(i * 5)
		copy(n.Cache[i][:], fmt.Sprintf("%04d", i))
	}
	for i := 0; i < MaxChildren; i++ {
		n.Children[i] = int32(i) - 1
	}
	buf := make([]byte, NodeSize)
	n.Marshal(buf)
	var m Node
	m.Unmarshal(buf)
	if m != n {
		t.Error("marshal/unmarshal round trip changed node")
	}
}

func TestInsertLookupBasic(t *testing.T) {
	tr := New()
	slot, created := tr.Insert([]byte("lication"))
	if !created || slot != 0 {
		t.Fatalf("first insert: slot=%d created=%v", slot, created)
	}
	slot2, created2 := tr.Insert([]byte("lication"))
	if created2 || slot2 != slot {
		t.Fatalf("duplicate insert: slot=%d created=%v", slot2, created2)
	}
	if got := tr.Lookup([]byte("lication")); got != slot {
		t.Fatalf("Lookup = %d, want %d", got, slot)
	}
	if got := tr.Lookup([]byte("missing")); got != -1 {
		t.Fatalf("Lookup(missing) = %d, want -1", got)
	}
}

func TestShortAndEmptyKeys(t *testing.T) {
	tr := New()
	keys := []string{"", "a", "ab", "abc", "abcd", "abcde", "b"}
	slots := map[string]int32{}
	for _, k := range keys {
		s, created := tr.Insert([]byte(k))
		if !created {
			t.Fatalf("key %q not created", k)
		}
		slots[k] = s
	}
	for _, k := range keys {
		if got := tr.Lookup([]byte(k)); got != slots[k] {
			t.Errorf("Lookup(%q) = %d, want %d", k, got, slots[k])
		}
	}
	if tr.Terms() != len(keys) {
		t.Errorf("Terms = %d, want %d", tr.Terms(), len(keys))
	}
}

// TestCachePrefixDiscrimination exercises keys that agree on the 4-byte
// cache and differ only in the arena remainder.
func TestCachePrefixDiscrimination(t *testing.T) {
	tr := New()
	keys := []string{"licationally", "lication", "licationism", "lica", "licb"}
	for _, k := range keys {
		tr.Insert([]byte(k))
	}
	for _, k := range keys {
		if tr.Lookup([]byte(k)) < 0 {
			t.Errorf("lost key %q", k)
		}
	}
	var walked []string
	tr.Walk(func(key []byte, _ int32) bool {
		walked = append(walked, string(key))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(walked) != len(want) {
		t.Fatalf("walked %d keys, want %d", len(walked), len(want))
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q", i, walked[i], want[i])
		}
	}
}

func insertMany(t *testing.T, tr *Tree, n int, seed int64) map[string]int32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	slots := map[string]int32{}
	for len(slots) < n {
		k := make([]byte, 1+rng.Intn(12))
		for i := range k {
			k[i] = byte('a' + rng.Intn(26))
		}
		slot, created := tr.Insert(k)
		if prev, seen := slots[string(k)]; seen {
			if created || slot != prev {
				t.Fatalf("key %q: duplicate insert returned slot=%d created=%v, want %d,false",
					k, slot, created, prev)
			}
		} else {
			if !created {
				t.Fatalf("key %q: first insert not created", k)
			}
			slots[string(k)] = slot
		}
	}
	return slots
}

func TestLargeInsertSortedWalk(t *testing.T) {
	tr := New()
	slots := insertMany(t, tr, 5000, 1)
	var keys []string
	prev := ""
	first := true
	tr.Walk(func(key []byte, slot int32) bool {
		k := string(key)
		if !first && k <= prev {
			t.Fatalf("walk out of order: %q after %q", k, prev)
		}
		if want, ok := slots[k]; !ok || want != slot {
			t.Fatalf("walk key %q slot %d, want %d (present %v)", k, slot, want, ok)
		}
		prev, first = k, false
		keys = append(keys, k)
		return true
	})
	if len(keys) != len(slots) {
		t.Fatalf("walk visited %d keys, want %d", len(keys), len(slots))
	}
}

func TestHeightBound(t *testing.T) {
	tr := New()
	n := 20000
	insertMany(t, tr, n, 2)
	// Paper §III.B: height of an n-key B-tree is at most
	// 1 + log_t((n+1)/2).
	bound := 1 + int(math.Ceil(math.Log(float64(n+1)/2)/math.Log(Degree)))
	if h := tr.Height(); h > bound {
		t.Errorf("height %d exceeds bound %d for %d keys", h, bound, n)
	}
}

// TestNodeOccupancyInvariant checks the B-tree structural invariants:
// every non-root node holds >= MinKeys keys, all hold <= MaxKeys, and
// all leaves sit at the same depth.
func TestNodeOccupancyInvariant(t *testing.T) {
	tr := New()
	insertMany(t, tr, 8000, 3)
	leafDepth := -1
	var check func(idx int32, depth int)
	check = func(idx int32, depth int) {
		n := tr.NodeAt(idx)
		if int(n.ValidCount) > MaxKeys {
			t.Fatalf("node %d overfull: %d", idx, n.ValidCount)
		}
		if idx != tr.Root() && int(n.ValidCount) < MinKeys {
			t.Fatalf("node %d underfull: %d", idx, n.ValidCount)
		}
		if n.Leaf == 1 {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			return
		}
		for i := 0; i <= int(n.ValidCount); i++ {
			if n.Children[i] == NilPtr {
				t.Fatalf("internal node %d missing child %d", idx, i)
			}
			check(n.Children[i], depth+1)
		}
	}
	check(tr.Root(), 0)
}

func TestSlotsAreDense(t *testing.T) {
	tr := New()
	slots := insertMany(t, tr, 3000, 4)
	seen := make([]bool, len(slots))
	for _, s := range slots {
		if int(s) >= len(seen) || seen[s] {
			t.Fatalf("slot %d out of range or duplicated", s)
		}
		seen[s] = true
	}
}

func TestQuickRandomSetMatchesMap(t *testing.T) {
	f := func(raw [][]byte) bool {
		tr := New()
		ref := map[string]int32{}
		for _, rk := range raw {
			k := make([]byte, 0, len(rk)%16)
			for _, c := range rk {
				if len(k) >= 16 {
					break
				}
				k = append(k, 'a'+c%26)
			}
			slot, created := tr.Insert(k)
			if prev, ok := ref[string(k)]; ok {
				if created || slot != prev {
					return false
				}
			} else {
				if !created {
					return false
				}
				ref[string(k)] = slot
			}
		}
		for k, want := range ref {
			if tr.Lookup([]byte(k)) != want {
				return false
			}
		}
		return tr.Terms() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNoCacheTreeEquivalence(t *testing.T) {
	a, b := New(), NewNoCache()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		k := make([]byte, 1+rng.Intn(10))
		for j := range k {
			k[j] = byte('a' + rng.Intn(4)) // heavy prefix collisions
		}
		sa, ca := a.Insert(k)
		sb, cb := b.Insert(k)
		if sa != sb || ca != cb {
			t.Fatalf("divergence on %q: (%d,%v) vs (%d,%v)", k, sa, ca, sb, cb)
		}
	}
	var ka, kb []string
	a.Walk(func(key []byte, _ int32) bool { ka = append(ka, string(key)); return true })
	b.Walk(func(key []byte, _ int32) bool { kb = append(kb, string(key)); return true })
	if len(ka) != len(kb) {
		t.Fatalf("walk lengths differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("walk[%d]: %q vs %q", i, ka[i], kb[i])
		}
	}
}

func TestLongKeyTruncation(t *testing.T) {
	// Keys longer than 255+4 bytes are truncated in the arena per the
	// paper's 1-byte-length assumption; lookup of the same long key
	// still succeeds.
	tr := New()
	long := bytes.Repeat([]byte("x"), 400)
	slot, created := tr.Insert(long)
	if !created {
		t.Fatal("long key not created")
	}
	if got := tr.Lookup(long); got != slot {
		t.Fatalf("Lookup(long) = %d, want %d", got, slot)
	}
}

func TestMemoryAccounting(t *testing.T) {
	tr := New()
	if tr.MemoryBytes() != NodeSize {
		t.Errorf("empty tree memory = %d, want %d", tr.MemoryBytes(), NodeSize)
	}
	tr.Insert([]byte("abcdefgh"))
	want := tr.Nodes()*NodeSize + tr.ArenaBytes()
	if tr.MemoryBytes() != want {
		t.Errorf("memory = %d, want %d", tr.MemoryBytes(), want)
	}
	if tr.ArenaBytes() != 1+4 { // length byte + "efgh"
		t.Errorf("arena = %d bytes, want 5", tr.ArenaBytes())
	}
}

func BenchmarkInsertDistinct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 1<<16)
	for i := range keys {
		k := make([]byte, 4+rng.Intn(8))
		for j := range k {
			k[j] = byte('a' + rng.Intn(26))
		}
		keys[i] = k
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i&(1<<16-1)])
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(2))
	keys := make([][]byte, 1<<14)
	for i := range keys {
		k := make([]byte, 4+rng.Intn(8))
		for j := range k {
			k[j] = byte('a' + rng.Intn(26))
		}
		keys[i] = k
		tr.Insert(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(keys[i&(1<<14-1)])
	}
}

func BenchmarkInsertNoCacheAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([][]byte, 1<<16)
	for i := range keys {
		k := make([]byte, 8+rng.Intn(8))
		for j := range k {
			k[j] = byte('a' + rng.Intn(26))
		}
		keys[i] = k
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr := NewNoCache()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i&(1<<16-1)])
	}
}
