// Package btree implements the paper's dictionary B-tree (§III.B.2,
// Table II): degree-16 nodes holding up to 31 terms, sized to exactly
// 512 bytes so one node is a single coalesced 128-word device-memory
// transaction on the GPU, with a 4-byte string cache per key that makes
// most comparisons resolve without chasing the term-string pointer.
//
// Term strings are stored stripped of their trie prefix: the first
// four stripped bytes live in the node cache and any remaining bytes
// live in a string arena, length-prefixed per Fig. 6. The tree only
// supports insert and lookup — the indexing workload never deletes.
package btree

import "unsafe"

// Degree is the B-tree minimum degree t (Table II): nodes hold between
// Degree-1 and 2*Degree-1 keys (the root may hold fewer), "selected to
// match the CUDA warp size".
const (
	Degree      = 16
	MaxKeys     = 2*Degree - 1 // 31
	MinKeys     = Degree - 1   // 15
	MaxChildren = 2 * Degree   // 32
	CacheBytes  = 4
)

// NodeSize is the exact byte size of one serialized node (Table II).
const NodeSize = 512

// Byte offsets of each Table II field within a serialized node. The
// GPU indexer operates on raw node images in device memory using these
// offsets; the CPU indexer uses the Node struct, and the two layouts
// are asserted identical by tests.
const (
	OffValidCount  = 0                    // 1 x int32
	OffStringPtr   = 4                    // 31 x int32
	OffLeaf        = OffStringPtr + 124   // 1 x int32
	OffPostingsPtr = OffLeaf + 4          // 31 x int32
	OffChildren    = OffPostingsPtr + 124 // 32 x int32
	OffCache       = OffChildren + 128    // 31 x 4 bytes
	OffPadding     = OffCache + 124       // 1 x int32
)

// NilPtr marks an absent string pointer (key fully held in the cache)
// or an absent child.
const NilPtr = int32(-1)

// Node is the in-memory form of one 512-byte B-tree node. Field order
// mirrors Table II; all indices are int32 so the struct's size equals
// NodeSize exactly.
type Node struct {
	ValidCount  int32                     // number of live keys
	StringPtr   [MaxKeys]int32            // arena offset of bytes beyond the cache, or NilPtr
	Leaf        int32                     // 1 if leaf
	PostingsPtr [MaxKeys]int32            // postings-list slot per key
	Children    [MaxChildren]int32        // node indices, NilPtr when absent
	Cache       [MaxKeys][CacheBytes]byte // first 4 stripped bytes, zero-padded
	Padding     int32                     // Table II's explicit pad to 512
}

// compile-time guarantee that the struct matches the paper layout.
var _ [NodeSize]byte = [unsafe.Sizeof(Node{})]byte{}

// Marshal serializes the node into dst (little-endian int32s), which
// must be at least NodeSize bytes. This is the device-memory image the
// GPU indexer consumes.
func (n *Node) Marshal(dst []byte) {
	_ = dst[NodeSize-1]
	putI32(dst[OffValidCount:], n.ValidCount)
	for i := 0; i < MaxKeys; i++ {
		putI32(dst[OffStringPtr+4*i:], n.StringPtr[i])
	}
	putI32(dst[OffLeaf:], n.Leaf)
	for i := 0; i < MaxKeys; i++ {
		putI32(dst[OffPostingsPtr+4*i:], n.PostingsPtr[i])
	}
	for i := 0; i < MaxChildren; i++ {
		putI32(dst[OffChildren+4*i:], n.Children[i])
	}
	for i := 0; i < MaxKeys; i++ {
		copy(dst[OffCache+CacheBytes*i:OffCache+CacheBytes*(i+1)], n.Cache[i][:])
	}
	putI32(dst[OffPadding:], n.Padding)
}

// Unmarshal fills the node from a NodeSize-byte image.
func (n *Node) Unmarshal(src []byte) {
	_ = src[NodeSize-1]
	n.ValidCount = getI32(src[OffValidCount:])
	for i := 0; i < MaxKeys; i++ {
		n.StringPtr[i] = getI32(src[OffStringPtr+4*i:])
	}
	n.Leaf = getI32(src[OffLeaf:])
	for i := 0; i < MaxKeys; i++ {
		n.PostingsPtr[i] = getI32(src[OffPostingsPtr+4*i:])
	}
	for i := 0; i < MaxChildren; i++ {
		n.Children[i] = getI32(src[OffChildren+4*i:])
	}
	for i := 0; i < MaxKeys; i++ {
		copy(n.Cache[i][:], src[OffCache+CacheBytes*i:])
	}
	n.Padding = getI32(src[OffPadding:])
}

func putI32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getI32(b []byte) int32 {
	return int32(b[0]) | int32(b[1])<<8 | int32(b[2])<<16 | int32(b[3])<<24
}
