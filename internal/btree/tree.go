package btree

import "bytes"

// Tree is one dictionary B-tree, covering a single trie collection.
// Keys are trie-stripped term byte strings; each key owns a postings
// slot assigned sequentially in insertion order of first appearance.
//
// A Tree is confined to one indexer thread (§III.E: "every indexer
// keeps an independent and exclusive part of the global dictionary"),
// so it performs no locking.
type Tree struct {
	nodes []Node
	arena arena
	root  int32
	terms int32 // number of distinct keys == next postings slot

	// cacheOnly disables the string arena fast path for the
	// string-cache ablation bench: when true every key comparison
	// goes through the arena even if the cache could decide it.
	disableCache bool
}

// arena stores the "remaining" bytes of each key (beyond the 4-byte
// node cache) as 1-byte-length-prefixed records (Fig. 6).
type arena struct {
	buf []byte
}

func (a *arena) add(rest []byte) int32 {
	if len(rest) > 255 {
		// The paper assumes no term exceeds 255 bytes; tokenizer
		// enforces this, so arena callers never see longer rests.
		rest = rest[:255]
	}
	off := int32(len(a.buf))
	a.buf = append(a.buf, byte(len(rest)))
	a.buf = append(a.buf, rest...)
	return off
}

func (a *arena) get(off int32) []byte {
	n := int(a.buf[off])
	return a.buf[off+1 : off+1+int32(n)]
}

// New returns an empty tree with a preallocated single-leaf root.
func New() *Tree {
	t := &Tree{root: 0}
	t.nodes = append(t.nodes, Node{Leaf: 1})
	initChildren(&t.nodes[0])
	return t
}

// NewNoCache returns a tree whose comparisons always dereference the
// string arena, for the string-cache ablation.
func NewNoCache() *Tree {
	t := New()
	t.disableCache = true
	return t
}

func initChildren(n *Node) {
	for i := range n.Children {
		n.Children[i] = NilPtr
	}
	for i := range n.StringPtr {
		n.StringPtr[i] = NilPtr
	}
	for i := range n.PostingsPtr {
		n.PostingsPtr[i] = NilPtr
	}
}

// Terms reports the number of distinct keys inserted.
func (t *Tree) Terms() int { return int(t.terms) }

// Nodes reports the number of allocated nodes.
func (t *Tree) Nodes() int { return len(t.nodes) }

// ArenaBytes reports the size of the string arena.
func (t *Tree) ArenaBytes() int { return len(t.arena.buf) }

// cacheKey builds the zero-padded 4-byte cache image of a key.
func cacheKey(key []byte) (c [CacheBytes]byte) {
	copy(c[:], key)
	return c
}

// splitKey returns the cache image and the arena "rest" of a key.
func splitKey(key []byte) (c [CacheBytes]byte, rest []byte) {
	copy(c[:], key)
	if len(key) > CacheBytes {
		rest = key[CacheBytes:]
	}
	return c, rest
}

// compareAt orders key against the i-th key of node n: negative when
// key sorts before it, zero on equality. The 4-byte cache resolves the
// comparison whenever the caches differ or both keys fit entirely in
// the cache; only a cache tie on long keys touches the arena
// (§III.B.2: "it is a rare case that two arbitrary terms share the
// same long prefix").
func (t *Tree) compareAt(key []byte, n *Node, i int) int {
	if !t.disableCache {
		kc := cacheKey(key)
		if c := bytes.Compare(kc[:], n.Cache[i][:]); c != 0 {
			return c
		}
		// Caches equal: decide on the remainders.
		var keyRest []byte
		if len(key) > CacheBytes {
			keyRest = key[CacheBytes:]
		}
		var nodeRest []byte
		if n.StringPtr[i] != NilPtr {
			nodeRest = t.arena.get(n.StringPtr[i])
		}
		return bytes.Compare(keyRest, nodeRest)
	}
	// Ablation path: reconstruct the stored key and compare fully.
	stored := make([]byte, 0, 32)
	stored = append(stored, n.Cache[i][:]...)
	for len(stored) > 0 && stored[len(stored)-1] == 0 {
		stored = stored[:len(stored)-1]
	}
	if n.StringPtr[i] != NilPtr {
		stored = append(stored, t.arena.get(n.StringPtr[i])...)
	}
	return bytes.Compare(key, stored)
}

// findInNode locates key within node n: found reports an exact match
// at position pos; otherwise pos is the child index to descend into
// (equivalently, the insert position among the node's keys).
func (t *Tree) findInNode(key []byte, n *Node) (pos int, found bool) {
	lo, hi := 0, int(n.ValidCount)
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := t.compareAt(key, n, mid); {
		case c == 0:
			return mid, true
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// MaxKeyLen is the longest representable key: 4 cache bytes plus a
// 255-byte arena remainder (the paper's 1-byte length field, Fig. 6).
// Longer keys are truncated consistently on insert and lookup.
const MaxKeyLen = CacheBytes + 255

func clampKey(key []byte) []byte {
	if len(key) > MaxKeyLen {
		return key[:MaxKeyLen]
	}
	return key
}

// Lookup returns the postings slot of key, or -1 when absent.
func (t *Tree) Lookup(key []byte) int32 {
	key = clampKey(key)
	idx := t.root
	for {
		n := &t.nodes[idx]
		pos, found := t.findInNode(key, n)
		if found {
			return n.PostingsPtr[pos]
		}
		if n.Leaf == 1 {
			return -1
		}
		idx = n.Children[pos]
	}
}

// Insert finds or creates the key and returns its postings slot along
// with whether the key was newly created. The key must not contain NUL
// bytes (the tokenizer guarantees this) and is copied, so the caller
// may reuse the buffer.
func (t *Tree) Insert(key []byte) (slot int32, created bool) {
	key = clampKey(key)
	if t.nodes[t.root].ValidCount == MaxKeys {
		// Grow upward: new root, old root becomes child 0 and splits.
		oldRoot := t.root
		t.nodes = append(t.nodes, Node{Leaf: 0})
		newRoot := int32(len(t.nodes) - 1)
		initChildren(&t.nodes[newRoot])
		t.nodes[newRoot].Children[0] = oldRoot
		t.root = newRoot
		t.splitChild(newRoot, 0)
	}
	return t.insertNonFull(t.root, key)
}

// splitChild splits the full child at childPos of node parentIdx into
// two Degree-1-key nodes, hoisting the median key (the paper's
// "Splitting" operation).
func (t *Tree) splitChild(parentIdx int32, childPos int) {
	childIdx := t.nodes[parentIdx].Children[childPos]
	t.nodes = append(t.nodes, Node{})
	rightIdx := int32(len(t.nodes) - 1)
	right := &t.nodes[rightIdx]
	initChildren(right)
	child := &t.nodes[childIdx] // reacquire: append may have moved the slice
	parent := &t.nodes[parentIdx]

	right.Leaf = child.Leaf
	right.ValidCount = Degree - 1
	for i := 0; i < Degree-1; i++ {
		right.Cache[i] = child.Cache[Degree+i]
		right.StringPtr[i] = child.StringPtr[Degree+i]
		right.PostingsPtr[i] = child.PostingsPtr[Degree+i]
	}
	if child.Leaf == 0 {
		for i := 0; i < Degree; i++ {
			right.Children[i] = child.Children[Degree+i]
			child.Children[Degree+i] = NilPtr
		}
	}
	child.ValidCount = Degree - 1

	// Shift the parent's keys/children right to open slot childPos.
	for i := int(parent.ValidCount); i > childPos; i-- {
		parent.Cache[i] = parent.Cache[i-1]
		parent.StringPtr[i] = parent.StringPtr[i-1]
		parent.PostingsPtr[i] = parent.PostingsPtr[i-1]
		parent.Children[i+1] = parent.Children[i]
	}
	parent.Cache[childPos] = child.Cache[Degree-1]
	parent.StringPtr[childPos] = child.StringPtr[Degree-1]
	parent.PostingsPtr[childPos] = child.PostingsPtr[Degree-1]
	parent.Children[childPos+1] = rightIdx
	parent.ValidCount++

	// Scrub the moved-out half of the child for determinism.
	for i := Degree - 1; i < MaxKeys; i++ {
		child.Cache[i] = [CacheBytes]byte{}
		child.StringPtr[i] = NilPtr
		child.PostingsPtr[i] = NilPtr
	}
}

// insertNonFull inserts key under node idx, which is guaranteed not
// full; full children are split before descending (the paper splits
// "before accessing a B-tree node").
func (t *Tree) insertNonFull(idx int32, key []byte) (slot int32, created bool) {
	for {
		n := &t.nodes[idx]
		pos, found := t.findInNode(key, n)
		if found {
			return n.PostingsPtr[pos], false
		}
		if n.Leaf == 1 {
			// The paper's "Inserting": shift larger keys right, then
			// place the new key with its cache and arena remainder.
			for i := int(n.ValidCount); i > pos; i-- {
				n.Cache[i] = n.Cache[i-1]
				n.StringPtr[i] = n.StringPtr[i-1]
				n.PostingsPtr[i] = n.PostingsPtr[i-1]
			}
			c, rest := splitKey(key)
			n.Cache[pos] = c
			if rest != nil {
				sp := t.arena.add(rest)
				n = &t.nodes[idx] // arena append cannot move nodes, but stay uniform
				n.StringPtr[pos] = sp
			} else {
				n.StringPtr[pos] = NilPtr
			}
			slot = t.terms
			t.terms++
			n.PostingsPtr[pos] = slot
			n.ValidCount++
			return slot, true
		}
		childIdx := n.Children[pos]
		if t.nodes[childIdx].ValidCount == MaxKeys {
			t.splitChild(idx, pos)
			// The hoisted median may equal or precede the key; redo
			// the position scan on this node.
			continue
		}
		idx = childIdx
	}
}

// Key reconstructs the i-th stored key of node n (stripped form).
func (t *Tree) key(n *Node, i int) []byte {
	out := make([]byte, 0, 16)
	for _, b := range n.Cache[i] {
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	if n.StringPtr[i] != NilPtr {
		out = append(out, t.arena.get(n.StringPtr[i])...)
	}
	return out
}

// Walk visits every (strippedKey, postingsSlot) pair in ascending key
// order. Returning false from fn stops the walk.
func (t *Tree) Walk(fn func(key []byte, slot int32) bool) {
	t.walk(t.root, fn)
}

func (t *Tree) walk(idx int32, fn func(key []byte, slot int32) bool) bool {
	n := &t.nodes[idx]
	for i := 0; i < int(n.ValidCount); i++ {
		if n.Leaf == 0 {
			if !t.walk(n.Children[i], fn) {
				return false
			}
		}
		if !fn(t.key(n, i), n.PostingsPtr[i]) {
			return false
		}
	}
	if n.Leaf == 0 && n.ValidCount > 0 {
		return t.walk(n.Children[n.ValidCount], fn)
	}
	return true
}

// WalkRange visits keys in [lo, hi) in ascending order (nil lo means
// from the start, nil hi means to the end). Returning false stops the
// walk. Used for dictionary range scans and prefix queries.
func (t *Tree) WalkRange(lo, hi []byte, fn func(key []byte, slot int32) bool) {
	t.walkRange(t.root, lo, hi, fn)
}

func (t *Tree) walkRange(idx int32, lo, hi []byte, fn func(key []byte, slot int32) bool) bool {
	n := &t.nodes[idx]
	// First key position >= lo; earlier keys and their left subtrees
	// are entirely below the range.
	start := 0
	if lo != nil {
		var found bool
		start, found = t.findInNode(lo, n)
		if found {
			// Inclusive lower bound: emit the exact match (its left
			// subtree is all < lo), then continue unbounded below.
			key := t.key(n, start)
			if hi != nil && bytes.Compare(key, hi) >= 0 {
				return false
			}
			if !fn(key, n.PostingsPtr[start]) {
				return false
			}
			return t.walkTail(n, start+1, hi, fn)
		}
	}
	for i := start; i < int(n.ValidCount); i++ {
		if n.Leaf == 0 {
			if !t.walkRange(n.Children[i], lo, hi, fn) {
				return false
			}
			lo = nil
		}
		key := t.key(n, i)
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			return false
		}
		if !fn(key, n.PostingsPtr[i]) {
			return false
		}
		lo = nil
	}
	if n.Leaf == 0 && n.ValidCount > 0 {
		return t.walkRange(n.Children[n.ValidCount], lo, hi, fn)
	}
	return true
}

// walkTail visits keys and subtrees of n from position start onward
// with no lower bound.
func (t *Tree) walkTail(n *Node, start int, hi []byte, fn func(key []byte, slot int32) bool) bool {
	for i := start; i < int(n.ValidCount); i++ {
		if n.Leaf == 0 {
			if !t.walkRange(n.Children[i], nil, hi, fn) {
				return false
			}
		}
		key := t.key(n, i)
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			return false
		}
		if !fn(key, n.PostingsPtr[i]) {
			return false
		}
	}
	if n.Leaf == 0 && n.ValidCount > 0 {
		return t.walkRange(n.Children[n.ValidCount], nil, hi, fn)
	}
	return true
}

// Height reports the tree height (root-only tree has height 1).
func (t *Tree) Height() int {
	h := 1
	idx := t.root
	for t.nodes[idx].Leaf == 0 {
		idx = t.nodes[idx].Children[0]
		h++
	}
	return h
}

// MemoryBytes estimates the dictionary memory footprint: node storage
// plus the string arena.
func (t *Tree) MemoryBytes() int {
	return len(t.nodes)*NodeSize + len(t.arena.buf)
}

// Root returns the root node index (for serialization and the GPU
// image export).
func (t *Tree) Root() int32 { return t.root }

// NodeAt exposes node i read-only for export and invariant checks.
func (t *Tree) NodeAt(i int32) *Node { return &t.nodes[i] }

// ArenaSnapshot returns the raw arena bytes (read-only).
func (t *Tree) ArenaSnapshot() []byte { return t.arena.buf }
