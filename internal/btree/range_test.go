package btree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// TestWalkRangeMatchesFilteredWalk compares WalkRange against a
// filtered full walk over many random key sets and bounds.
func TestWalkRangeMatchesFilteredWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		tr := New()
		nKeys := 50 + rng.Intn(2000)
		keys := map[string]bool{}
		for len(keys) < nKeys {
			k := make([]byte, 1+rng.Intn(8))
			for i := range k {
				k[i] = byte('a' + rng.Intn(6))
			}
			keys[string(k)] = true
			tr.Insert(k)
		}
		mkBound := func() []byte {
			if rng.Intn(4) == 0 {
				return nil
			}
			k := make([]byte, 1+rng.Intn(8))
			for i := range k {
				k[i] = byte('a' + rng.Intn(6))
			}
			return k
		}
		lo, hi := mkBound(), mkBound()
		if lo != nil && hi != nil && bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}

		var want []string
		tr.Walk(func(key []byte, _ int32) bool {
			if lo != nil && bytes.Compare(key, lo) < 0 {
				return true
			}
			if hi != nil && bytes.Compare(key, hi) >= 0 {
				return true
			}
			want = append(want, string(key))
			return true
		})
		var got []string
		tr.WalkRange(lo, hi, func(key []byte, _ int32) bool {
			got = append(got, string(key))
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d [%q,%q): got %d keys, want %d",
				trial, lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d: %q vs %q", trial, i, got[i], want[i])
			}
		}
		if !sort.StringsAreSorted(got) {
			t.Fatalf("trial %d: range walk unsorted", trial)
		}
	}
}

func TestWalkRangeBounds(t *testing.T) {
	tr := New()
	for _, k := range []string{"apple", "banana", "cherry", "date", "fig"} {
		tr.Insert([]byte(k))
	}
	collect := func(lo, hi []byte) []string {
		var out []string
		tr.WalkRange(lo, hi, func(key []byte, _ int32) bool {
			out = append(out, string(key))
			return true
		})
		return out
	}
	// Inclusive lower, exclusive upper.
	got := collect([]byte("banana"), []byte("date"))
	if len(got) != 2 || got[0] != "banana" || got[1] != "cherry" {
		t.Errorf("range [banana,date) = %v", got)
	}
	// Full range.
	if got := collect(nil, nil); len(got) != 5 {
		t.Errorf("full range = %v", got)
	}
	// Empty range.
	if got := collect([]byte("x"), nil); got != nil {
		t.Errorf("empty range = %v", got)
	}
	// Early stop.
	count := 0
	tr.WalkRange(nil, nil, func([]byte, int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}
