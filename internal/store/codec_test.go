package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/trie"
)

// bigList returns a list long enough (>= 32) for AutoSelect to leave
// the varbyte floor; gapRange controls density.
func bigList(n int, gapRange int, seed int64) (docs, tfs []uint32) {
	r := rand.New(rand.NewSource(seed))
	d := uint32(0)
	for i := 0; i < n; i++ {
		d += 1 + uint32(r.Intn(gapRange))
		docs = append(docs, d)
		tfs = append(tfs, 1+uint32(r.Intn(3)))
	}
	return docs, tfs
}

// TestRunBuilderCodecVersioning: a selector that only ever picks
// varbyte yields byte-identical version-3 files; a non-varbyte pick
// flips the file to version 4 and round-trips through ParseRun.
func TestRunBuilderCodecVersioning(t *testing.T) {
	docs, tfs := bigList(200, 3, 1)

	legacy := NewRunBuilder()
	forced := NewRunBuilderCodec(encoding.ForceSelect(encoding.VarByteCodec))
	for _, b := range []*RunBuilder{legacy, forced} {
		if err := b.AddList(0, 0, docs, tfs); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(legacy.Finalize(0, 1000), forced.Finalize(0, 1000)) {
		t.Fatal("forced-varbyte builder output differs from legacy builder")
	}

	auto := NewRunBuilderCodec(encoding.AutoSelect)
	if err := auto.AddList(0, 0, docs, tfs); err != nil {
		t.Fatal(err)
	}
	data := auto.Finalize(0, 1000)
	if v := binary.LittleEndian.Uint32(data[4:]); v != runVersionCodec {
		t.Fatalf("dense 200-posting run has version %d, want %d", v, runVersionCodec)
	}
	run, err := ParseRun(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Entries[0].Codec(); got != encoding.CodecBitPack {
		t.Fatalf("dense list stored with codec %d, want bitpack", got)
	}
	gd, gt, ok, err := run.List(0, 0)
	if err != nil || !ok {
		t.Fatalf("List: ok=%v err=%v", ok, err)
	}
	for i := range docs {
		if gd[i] != docs[i] || gt[i] != tfs[i] {
			t.Fatalf("posting %d = (%d,%d), want (%d,%d)", i, gd[i], gt[i], docs[i], tfs[i])
		}
	}
}

// TestRunRejectsCodecCorruption: codec bits in a version-3 entry,
// unknown codec IDs, counts the codec cannot hold, and future run
// versions must all surface ErrCorruptRun (wrapping ErrCorruptIndex)
// from both the eager and the lazy parser.
func TestRunRejectsCodecCorruption(t *testing.T) {
	docs, tfs := bigList(64, 3, 2)
	b := NewRunBuilder()
	if err := b.AddList(0, 0, docs, tfs); err != nil {
		t.Fatal(err)
	}
	base := b.Finalize(0, 1000)

	// Flags live at entry offset 24; the entry table starts at the
	// header boundary.
	flagsOff := runHdrSize + 24
	reseal := func(data []byte) []byte {
		binary.LittleEndian.PutUint32(data[20:], crc32.ChecksumIEEE(data[runHdrSize:]))
		return data
	}
	mutate := func(f func(data []byte)) []byte {
		data := append([]byte(nil), base...)
		f(data)
		return reseal(data)
	}

	cases := map[string][]byte{
		"codec bits in v3 entry": mutate(func(d []byte) {
			binary.LittleEndian.PutUint32(d[flagsOff:], codecFlags(encoding.CodecGamma))
		}),
		"unknown codec in v4 entry": mutate(func(d []byte) {
			binary.LittleEndian.PutUint32(d[4:], runVersionCodec)
			binary.LittleEndian.PutUint32(d[flagsOff:], codecFlags(200))
		}),
		"count exceeds codec minimum": mutate(func(d []byte) {
			binary.LittleEndian.PutUint32(d[4:], runVersionCodec)
			binary.LittleEndian.PutUint32(d[flagsOff:], codecFlags(encoding.CodecGamma))
			// 64 gamma postings cost >= 16 bytes; claim far more.
			binary.LittleEndian.PutUint32(d[runHdrSize+20:], 1<<20)
		}),
		"future run version": mutate(func(d []byte) {
			binary.LittleEndian.PutUint32(d[4:], runVersionBlocks+1)
		}),
		"block flag in v4 entry": mutate(func(d []byte) {
			binary.LittleEndian.PutUint32(d[4:], runVersionCodec)
			binary.LittleEndian.PutUint32(d[flagsOff:], FlagBlocks)
		}),
	}
	dir := t.TempDir()
	for name, data := range cases {
		if _, err := ParseRun(data); !errors.Is(err, ErrCorruptRun) || !errors.Is(err, ErrCorruptIndex) {
			t.Errorf("ParseRun(%s) = %v, want ErrCorruptRun", name, err)
		}
		path := filepath.Join(dir, "bad.post")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openRunReader(path); !errors.Is(err, ErrCorruptRun) {
			t.Errorf("openRunReader(%s) = %v, want ErrCorruptRun", name, err)
		}
	}
}

// buildBigMergedDir writes an index whose lists are long enough for
// the self-tuning selector to pick non-varbyte codecs: a dense list
// (bitpack territory), a sparse list (Elias-Fano) and a short one
// (varbyte floor), plus a positional list.
func buildBigMergedDir(t testing.TB) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	w, err := NewIndexWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	dense, denseTF := bigList(400, 3, 3)
	sparse, sparseTF := bigList(200, 50000, 4)
	terms := []string{"dense", "sparse", "tiny", "posit"}
	var dict []DictEntry
	for slot, term := range terms {
		dict = append(dict, DictEntry{
			Term:       term,
			Collection: int32(trie.IndexString(term)),
			Slot:       int32(slot),
		})
	}
	half := func(docs, tfs []uint32, lo, hi uint32) (d, f []uint32) {
		for i := range docs {
			if docs[i] >= lo && docs[i] <= hi {
				d = append(d, docs[i])
				f = append(f, tfs[i])
			}
		}
		return d, f
	}
	maxDoc := sparse[len(sparse)-1]
	mid := maxDoc / 2
	ranges := [][2]uint32{{0, mid}, {mid + 1, maxDoc}}
	for _, rg := range ranges {
		b := NewRunBuilder()
		for slot, term := range terms {
			coll := trie.IndexString(term)
			var docs, tfs []uint32
			switch term {
			case "dense":
				docs, tfs = half(dense, denseTF, rg[0], rg[1])
			case "sparse":
				docs, tfs = half(sparse, sparseTF, rg[0], rg[1])
			case "tiny":
				if rg[0] == 0 {
					docs, tfs = []uint32{3, 9}, []uint32{1, 2}
				}
			case "posit":
				if rg[0] == 0 {
					pd, pt := []uint32{1, 2, 7}, []uint32{1, 2, 1}
					if err := b.AddPositionalList(coll, int32(slot), pd, pt,
						[][]uint32{{0}, {3, 8}, {2}}); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if len(docs) == 0 {
				continue
			}
			if err := b.AddList(coll, int32(slot), docs, tfs); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteRun(b, rg[0], rg[1]); err != nil {
			t.Fatal(err)
		}
	}
	SortDictEntries(dict)
	if err := w.Finish(dict); err != nil {
		t.Fatal(err)
	}
	return dir, terms
}

// TestMergeSelfTuningCodecs is the end-to-end v2 path: an auto merge
// over long lists writes a version-4 merged file with a version-2
// sidecar, chooses at least two codecs, serves identical postings to
// a forced-varbyte merge of the same runs, and passes Verify.
func TestMergeSelfTuningCodecs(t *testing.T) {
	dir, terms := buildBigMergedDir(t)

	// Reference: forced-varbyte merge (v1-compatible output).
	vb, err := OpenIndexWith(dir, ReaderOptions{MergeCodec: "varbyte"})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := vb.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Codecs["varbyte"] != stats.Lists {
		t.Fatalf("forced varbyte merge codecs = %v", stats.Codecs)
	}
	assertMergedVersions(t, dir, runVersion, mergedSidecarVersion)
	want := map[string]*postings.List{}
	for _, term := range terms {
		l, err := vb.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		want[term] = l
	}
	vb.Close()

	// A pre-codec build must still open this file: its version is 3 and
	// no entry carries codec bits (checked above); now the self-tuned
	// re-merge.
	auto, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = auto.Merge()
	if err != nil {
		t.Fatal(err)
	}
	auto.Close()
	if stats.Codecs["bitpack"] == 0 || stats.Codecs["eliasfano"] == 0 || stats.Codecs["varbyte"] == 0 {
		t.Fatalf("self-tuning merge codecs = %v, want bitpack+eliasfano+varbyte", stats.Codecs)
	}
	// The long lists cross the blocking threshold, so the self-tuned
	// merge now carries skip tables: run format 5, sidecar version 3.
	if stats.Blocked == 0 {
		t.Fatalf("self-tuning merge wrote no blocked lists: %+v", stats)
	}
	assertMergedVersions(t, dir, runVersionBlocks, mergedSidecarVersionBlocks)

	post, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Close()
	if !post.MergedActive() {
		t.Fatal("v4 merged file not active")
	}
	for _, term := range terms {
		got, err := post.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		assertSameList(t, term, got, want[term])
	}
	st := post.Stats()
	if st.CodecDecodes["bitpack"] == 0 || st.CodecDecodes["eliasfano"] == 0 {
		t.Fatalf("codec decode telemetry = %v", st.CodecDecodes)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify after self-tuned merge: %v", err)
	}
	if rep.MergedCodecs["bitpack"] == 0 || rep.MergedCodecs["eliasfano"] == 0 {
		t.Fatalf("Verify merged codecs = %v", rep.MergedCodecs)
	}
}

// assertMergedVersions checks the on-disk run-format version of
// merged.post and the sidecar version of merged.json.
func assertMergedVersions(t *testing.T, dir string, wantRun uint32, wantSidecar int) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, mergedFileName))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != wantRun {
		t.Fatalf("merged.post version %d, want %d", v, wantRun)
	}
	raw, err := os.ReadFile(filepath.Join(dir, mergedSidecarName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version": `+string(rune('0'+wantSidecar))) {
		t.Fatalf("merged.json version not %d: %s", wantSidecar, raw)
	}
}

// TestMergeCodecDeterminism: the merged bytes are identical for any
// worker count even when the selector mixes codecs.
func TestMergeCodecDeterminism(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 3, 8} {
		dir, _ := buildBigMergedDir(t)
		r, err := OpenIndexWith(dir, ReaderOptions{MergeWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Merge(); err != nil {
			t.Fatal(err)
		}
		r.Close()
		data, err := os.ReadFile(filepath.Join(dir, mergedFileName))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = data
		} else if !bytes.Equal(want, data) {
			t.Fatalf("merged bytes differ with %d workers", workers)
		}
	}
}

// TestOpenIndexRejectsUnknownMergeCodec: a typo'd codec name fails at
// open, not at merge time.
func TestOpenIndexRejectsUnknownMergeCodec(t *testing.T) {
	dir, _ := buildMergedTestDir(t)
	if _, err := OpenIndexWith(dir, ReaderOptions{MergeCodec: "zstd"}); !errors.Is(err, encoding.ErrUnknownCodec) {
		t.Fatalf("OpenIndexWith(zstd) = %v, want ErrUnknownCodec", err)
	}
}

// TestCrc32Combine pins the GF(2) splice against the straightforward
// one-pass checksum over random split points.
func TestCrc32Combine(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	buf := make([]byte, 1<<16)
	r.Read(buf)
	want := crc32.ChecksumIEEE(buf)
	for _, split := range []int{0, 1, 7, 64, 4096, len(buf) - 1, len(buf)} {
		a, b := buf[:split], buf[split:]
		got := crc32Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b)))
		if got != want {
			t.Fatalf("split %d: combine = %08x, want %08x", split, got, want)
		}
	}
}
