package store

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"fastinvert/internal/trie"
)

func crc32ChecksumForTest(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func putU32At(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func TestRunRoundTrip(t *testing.T) {
	b := NewRunBuilder()
	if err := b.AddList(5, 0, []uint32{1, 7, 9}, []uint32{2, 1, 5}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddList(5, 1, []uint32{3}, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddList(17612, 9, []uint32{100, 200}, []uint32{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddList(6, 0, nil, nil); err != nil {
		t.Fatal(err) // empty list: skipped silently
	}
	if b.Lists() != 3 {
		t.Fatalf("Lists = %d, want 3", b.Lists())
	}
	data := b.Finalize(1, 200)
	run, err := ParseRun(data)
	if err != nil {
		t.Fatal(err)
	}
	if run.FirstDoc != 1 || run.LastDoc != 200 {
		t.Errorf("doc range = [%d,%d]", run.FirstDoc, run.LastDoc)
	}
	docIDs, tfs, ok, err := run.List(5, 0)
	if err != nil || !ok {
		t.Fatalf("List(5,0): %v ok=%v", err, ok)
	}
	if len(docIDs) != 3 || docIDs[2] != 9 || tfs[2] != 5 {
		t.Errorf("List(5,0) = %v/%v", docIDs, tfs)
	}
	if _, _, ok, _ := run.List(6, 0); ok {
		t.Error("empty list should be absent")
	}
	if _, _, ok, _ := run.List(99, 99); ok {
		t.Error("unknown list should be absent")
	}
}

func TestRunRejectsCorruption(t *testing.T) {
	b := NewRunBuilder()
	b.AddList(1, 0, []uint32{1}, []uint32{1})
	data := b.Finalize(1, 1)
	if _, err := ParseRun(data[:10]); err == nil {
		t.Error("truncated header must fail")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ParseRun(bad); err == nil {
		t.Error("bad magic must fail")
	}
	short := append([]byte(nil), data[:len(data)-1]...)
	if _, err := ParseRun(short); err == nil {
		t.Error("truncated blob must fail")
	}
}

// TestHostileHeadersDoNotAllocate covers the fuzzer-found
// denial-of-service inputs: headers declaring absurd counts must be
// rejected before any proportional allocation.
func TestHostileHeadersDoNotAllocate(t *testing.T) {
	// Run file claiming 4 billion entries in 24 bytes of data.
	hostile := make([]byte, runHdrSize)
	putU32 := func(off int, v uint32) {
		hostile[off] = byte(v)
		hostile[off+1] = byte(v >> 8)
		hostile[off+2] = byte(v >> 16)
		hostile[off+3] = byte(v >> 24)
	}
	putU32(0, runMagic)
	putU32(4, runVersion)
	putU32(8, 0xFFFFFFFF) // entry count
	if _, err := ParseRun(hostile); err == nil {
		t.Error("hostile run header must be rejected")
	}

	// Entry whose Count is impossible for its Length.
	b := NewRunBuilder()
	b.AddList(1, 0, []uint32{1}, []uint32{1})
	data := b.Finalize(0, 1)
	// Count field of entry 0 lives at runHdrSize+20.
	data[runHdrSize+20] = 0xFF
	data[runHdrSize+21] = 0xFF
	// Recompute CRC so only the count check can reject.
	crc := crc32ChecksumForTest(data[runHdrSize:])
	putU32At(data, 20, crc)
	if _, err := ParseRun(data); err == nil {
		t.Error("impossible Count must be rejected")
	}
}

func TestRunBuilderRejectsUnsorted(t *testing.T) {
	b := NewRunBuilder()
	if err := b.AddList(1, 0, []uint32{5, 5}, []uint32{1, 1}); err == nil {
		t.Error("unsorted docIDs must fail")
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	entries := []DictEntry{
		{"-80", 0, 0},
		{"0195", 1, 0},
		{"apple", 11, 3},
		{"applic", 37 + 0*676 + 15*26 + 15, 0}, // "app"-prefixed
		{"parallel", trieIdx("parallel"), 7},
		{"paralleliz", trieIdx("paralleliz"), 8},
	}
	SortDictEntries(entries)
	var buf bytes.Buffer
	if err := WriteDictionary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	if got := FrontCodedSize(entries); got != buf.Len() {
		t.Errorf("FrontCodedSize = %d, actual %d", got, buf.Len())
	}
	back, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("read %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, back[i], entries[i])
		}
	}
}

func trieIdx(s string) int32 { return int32(trie.IndexString(s)) }

// TestHostileDictionaryHeader covers the fuzzer-found OOM: a
// dictionary header claiming billions of terms over a few bytes.
func TestHostileDictionaryHeader(t *testing.T) {
	hostile := []byte("CDIF\x01\x00\x00\x00\x05apple\v\xef\x04\x03\xef")
	if _, err := ReadDictionary(bytes.NewReader(hostile)); err == nil {
		t.Error("hostile dictionary must be rejected")
	}
}

func TestDictionaryOrderEnforced(t *testing.T) {
	entries := []DictEntry{{"zebra", 5, 0}, {"apple", 5, 1}}
	var buf bytes.Buffer
	if err := WriteDictionary(&buf, entries); err == nil {
		t.Error("out-of-order dictionary must be rejected")
	}
}

func TestDictionaryFrontCodingCompresses(t *testing.T) {
	// Terms sharing long prefixes should compress well.
	var entries []DictEntry
	raw := 0
	for i := 0; i < 200; i++ {
		term := "paralleliz" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		entries = append(entries, DictEntry{term, trieIdx(term), int32(i)})
		raw += len(term)
	}
	SortDictEntries(entries)
	size := FrontCodedSize(entries)
	if size >= raw {
		t.Errorf("front-coded %d >= raw %d", size, raw)
	}
}

func TestDictionaryQuickRoundTrip(t *testing.T) {
	f := func(words [][]byte) bool {
		seen := map[string]bool{}
		var entries []DictEntry
		for i, w := range words {
			term := make([]byte, 0, len(w))
			for _, c := range w {
				term = append(term, 'a'+c%26)
			}
			if len(term) == 0 || seen[string(term)] {
				continue
			}
			seen[string(term)] = true
			entries = append(entries, DictEntry{string(term), trieIdx(string(term)), int32(i)})
		}
		SortDictEntries(entries)
		var buf bytes.Buffer
		if err := WriteDictionary(&buf, entries); err != nil {
			return false
		}
		back, err := ReadDictionary(&buf)
		if err != nil || len(back) != len(entries) {
			return false
		}
		for i := range entries {
			if back[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIndexWriterReaderEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	w, err := NewIndexWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	termColl := trieIdx("zebra")

	// Run 0: docs 0-9; run 1: docs 10-19.
	b0 := NewRunBuilder()
	b0.AddList(int(termColl), 4, []uint32{1, 5}, []uint32{2, 1})
	if err := w.WriteRun(b0, 0, 9); err != nil {
		t.Fatal(err)
	}
	b1 := NewRunBuilder()
	b1.AddList(int(termColl), 4, []uint32{12, 19}, []uint32{1, 3})
	if err := w.WriteRun(b1, 10, 19); err != nil {
		t.Fatal(err)
	}
	dict := []DictEntry{{"zebra", termColl, 4}}
	SortDictEntries(dict)
	if err := w.Finish(dict); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(dict); err == nil {
		t.Error("double Finish must fail")
	}

	r, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Terms() != 1 || len(r.Runs()) != 2 {
		t.Fatalf("Terms=%d Runs=%d", r.Terms(), len(r.Runs()))
	}
	l, err := r.Postings("zebra")
	if err != nil {
		t.Fatal(err)
	}
	wantDocs := []uint32{1, 5, 12, 19}
	if l.Len() != 4 {
		t.Fatalf("postings = %v", l.DocIDs)
	}
	for i, d := range wantDocs {
		if l.DocIDs[i] != d {
			t.Errorf("doc[%d] = %d, want %d", i, l.DocIDs[i], d)
		}
	}
	// Range query touching only run 1.
	lr, err := r.PostingsRange("zebra", 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Len() != 2 || lr.DocIDs[0] != 12 {
		t.Errorf("range postings = %v", lr.DocIDs)
	}
	// Unknown term: empty, no error.
	empty, err := r.Postings("nosuchterm")
	if err != nil || empty.Len() != 0 {
		t.Errorf("unknown term: %v len=%d", err, empty.Len())
	}

	// Merge produces a single list with all four postings and switches
	// the reader onto the merged path.
	stats, err := r.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lists != 1 || stats.Runs != 2 || stats.FirstDoc != 1 || stats.LastDoc != 19 {
		t.Fatalf("merge stats = %+v", stats)
	}
	if !r.MergedActive() {
		t.Fatal("reader did not activate merged file after Merge")
	}
	ml, err := r.Postings("zebra")
	if err != nil {
		t.Fatal(err)
	}
	if ml.Len() != 4 || ml.TFs[3] != 3 {
		t.Fatalf("merged postings = %v/%v", ml.DocIDs, ml.TFs)
	}
	if got := r.Stats(); got.MergedHits == 0 {
		t.Fatalf("merged lookup not counted: %+v", got)
	}
	// A fresh reader trusts the sidecar and serves merged immediately.
	r2, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !r2.MergedActive() {
		t.Fatal("fresh reader did not pick up merged sidecar")
	}
	l2, err := r2.PostingsRange("zebra", 10, 19)
	if err != nil || l2.Len() != 2 || l2.DocIDs[0] != 12 {
		t.Fatalf("merged range postings = %v err=%v", l2, err)
	}
}

func TestPositionalRunRoundTrip(t *testing.T) {
	b := NewRunBuilder()
	docs := []uint32{2, 7, 9}
	tfs := []uint32{2, 1, 3}
	positions := [][]uint32{{4, 9}, {0}, {1, 5, 700}}
	if err := b.AddPositionalList(40, 3, docs, tfs, positions); err != nil {
		t.Fatal(err)
	}
	if err := b.AddList(41, 0, []uint32{1}, []uint32{1}); err != nil {
		t.Fatal(err) // mixed runs are legal
	}
	run, err := ParseRun(b.Finalize(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	gd, gt, gp, ok, err := run.PositionalList(40, 3)
	if err != nil || !ok {
		t.Fatalf("PositionalList: %v ok=%v", err, ok)
	}
	for i := range docs {
		if gd[i] != docs[i] || gt[i] != tfs[i] {
			t.Fatalf("posting %d mismatch", i)
		}
		for j := range positions[i] {
			if gp[i][j] != positions[i][j] {
				t.Fatalf("position [%d][%d] = %d, want %d", i, j, gp[i][j], positions[i][j])
			}
		}
	}
	// Plain entry has nil positions; List() works on both.
	_, _, pp, ok, err := run.PositionalList(41, 0)
	if err != nil || !ok || pp != nil {
		t.Fatalf("plain entry: %v ok=%v positions=%v", err, ok, pp)
	}
	if _, _, ok, _ := run.List(40, 3); !ok {
		t.Fatal("List must decode positional entries too")
	}
	// tf/position mismatch is rejected.
	bad := NewRunBuilder()
	if err := bad.AddPositionalList(1, 0, []uint32{1}, []uint32{2}, [][]uint32{{3}}); err == nil {
		t.Error("tf/positions mismatch must fail")
	}
}

func TestRunQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nLists uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewRunBuilder()
		type ref struct {
			coll int
			slot int32
			docs []uint32
			tfs  []uint32
		}
		var refs []ref
		used := map[uint64]bool{}
		for i := 0; i < int(nLists%20)+1; i++ {
			coll := rng.Intn(trie.NumCollections)
			slot := int32(rng.Intn(100))
			k := uint64(coll)<<32 | uint64(slot)
			if used[k] {
				continue
			}
			used[k] = true
			n := rng.Intn(30) + 1
			docs := make([]uint32, n)
			tfs := make([]uint32, n)
			cur := uint32(0)
			for j := 0; j < n; j++ {
				cur += uint32(rng.Intn(50)) + 1
				docs[j] = cur
				tfs[j] = uint32(rng.Intn(9)) + 1
			}
			if err := b.AddList(coll, slot, docs, tfs); err != nil {
				return false
			}
			refs = append(refs, ref{coll, slot, docs, tfs})
		}
		run, err := ParseRun(b.Finalize(0, 1<<30))
		if err != nil {
			return false
		}
		for _, rf := range refs {
			docs, tfs, ok, err := run.List(rf.coll, rf.slot)
			if err != nil || !ok || len(docs) != len(rf.docs) {
				return false
			}
			for j := range docs {
				if docs[j] != rf.docs[j] || tfs[j] != rf.tfs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
