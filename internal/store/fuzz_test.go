package store

import (
	"bytes"
	"testing"
)

// FuzzParseRun hardens the run-file parser against arbitrary bytes:
// it must reject or parse, never panic, and any parsed run must
// decode its lists without panicking.
func FuzzParseRun(f *testing.F) {
	b := NewRunBuilder()
	b.AddList(5, 0, []uint32{1, 7}, []uint32{2, 1})
	b.AddList(17612, 3, []uint32{9}, []uint32{4})
	f.Add(b.Finalize(1, 9))
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x49, 0x52, 0x46, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := ParseRun(data)
		if err != nil {
			return
		}
		for _, e := range run.Entries {
			run.List(int(e.Collection), int32(e.Slot)) //nolint:errcheck
		}
	})
}

// FuzzReadDictionary hardens the front-coded dictionary reader.
func FuzzReadDictionary(f *testing.F) {
	entries := []DictEntry{{"apple", 11, 0}, {"applied", 37, 1}}
	SortDictEntries(entries)
	var buf bytes.Buffer
	WriteDictionary(&buf, entries)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDictionary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed dictionaries round-trip through the writer when
		// already canonically ordered.
		ordered := true
		for i := 1; i < len(got); i++ {
			p, c := got[i-1], got[i]
			if c.Collection < p.Collection ||
				(c.Collection == p.Collection && c.Term < p.Term) {
				ordered = false
				break
			}
		}
		if !ordered {
			return
		}
		var out bytes.Buffer
		if err := WriteDictionary(&out, got); err != nil {
			t.Fatalf("re-encode of parsed dictionary failed: %v", err)
		}
		back, err := ReadDictionary(&out)
		if err != nil || len(back) != len(got) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(back), len(got))
		}
	})
}
