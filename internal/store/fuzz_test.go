package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"fastinvert/internal/encoding"
)

// FuzzParseRun hardens the run-file parser against arbitrary bytes:
// it must reject or parse, never panic, and any parsed run must
// decode its lists without panicking.
func FuzzParseRun(f *testing.F) {
	b := NewRunBuilder()
	b.AddList(5, 0, []uint32{1, 7}, []uint32{2, 1})
	b.AddList(17612, 3, []uint32{9}, []uint32{4})
	f.Add(b.Finalize(1, 9))
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x49, 0x52, 0x46, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := ParseRun(data)
		if err != nil {
			return
		}
		for _, e := range run.Entries {
			run.List(int(e.Collection), int32(e.Slot)) //nolint:errcheck
		}
	})
}

// FuzzReadDictionary hardens the front-coded dictionary reader.
func FuzzReadDictionary(f *testing.F) {
	entries := []DictEntry{{"apple", 11, 0}, {"applied", 37, 1}}
	SortDictEntries(entries)
	var buf bytes.Buffer
	WriteDictionary(&buf, entries)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDictionary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed dictionaries round-trip through the writer when
		// already canonically ordered.
		ordered := true
		for i := 1; i < len(got); i++ {
			p, c := got[i-1], got[i]
			if c.Collection < p.Collection ||
				(c.Collection == p.Collection && c.Term < p.Term) {
				ordered = false
				break
			}
		}
		if !ordered {
			return
		}
		var out bytes.Buffer
		if err := WriteDictionary(&out, got); err != nil {
			t.Fatalf("re-encode of parsed dictionary failed: %v", err)
		}
		back, err := ReadDictionary(&out)
		if err != nil || len(back) != len(got) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(back), len(got))
		}
	})
}

// FuzzParseDocLens hardens the doclens.bin parser: arbitrary bytes
// must parse or fail typed, never panic or over-allocate from a
// corrupt header count.
func FuzzParseDocLens(f *testing.F) {
	valid := make([]byte, 8)
	putU32At(valid, 0, docLensMagic)
	putU32At(valid, 4, 2)
	valid = append(valid, 3, 200)
	f.Add(valid)
	f.Add([]byte{})
	huge := make([]byte, 8)
	putU32At(huge, 0, docLensMagic)
	putU32At(huge, 4, 0xFFFFFFFF)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		lens, err := parseDocLens(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if len(lens) > len(data) {
			t.Fatalf("%d entries parsed from %d bytes", len(lens), len(data))
		}
	})
}

// FuzzParseDocTable hardens the doctable.bin parser the same way.
func FuzzParseDocTable(f *testing.F) {
	valid := make([]byte, 12)
	putU32At(valid, 0, docTableMagic)
	putU32At(valid, 4, 1)
	putU32At(valid, 8, 1)
	valid = append(valid, 3, 'a', 'b', 'c') // one name
	valid = append(valid, 0, 0, 5)          // one (file, off, len) row
	f.Add(valid)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		names, locs, err := parseDocTable(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if len(names) > len(data) || len(locs) > len(data) {
			t.Fatalf("%d names / %d locs parsed from %d bytes", len(names), len(locs), len(data))
		}
		for _, l := range locs {
			if int(l.FileIdx) >= len(names) {
				t.Fatalf("loc references name %d of %d", l.FileIdx, len(names))
			}
		}
	})
}

// FuzzParseDocMap hardens docmap.json validation: parsed rows must
// never escape the index directory or carry inverted ranges.
func FuzzParseDocMap(f *testing.F) {
	f.Add([]byte(`[{"file":"run-00000.post","first_doc":0,"last_doc":9,"lists":1,"bytes":64}]`))
	f.Add([]byte(`[{"file":"../evil","first_doc":0,"last_doc":9}]`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		runs, err := parseDocMap(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		for _, rm := range runs {
			if rm.File == "" || rm.File != filepath.Base(rm.File) {
				t.Fatalf("unsafe run file name %q accepted", rm.File)
			}
			if rm.LastDoc < rm.FirstDoc {
				t.Fatalf("inverted doc range accepted: %+v", rm)
			}
		}
	})
}

// FuzzBlockedList hardens the blocked-blob parser: arbitrary bytes
// must be rejected with the typed corruption error or parse into a
// skip table whose blocks all decode within their declared shapes —
// never a panic, never an allocation driven by unvalidated counts.
func FuzzBlockedList(f *testing.F) {
	docs := make([]uint32, 600)
	tfs := make([]uint32, 600)
	for i := range docs {
		docs[i] = uint32(3 * i)
		tfs[i] = uint32(i%7 + 1)
	}
	sel, err := encoding.SelectorFor("auto")
	if err != nil {
		f.Fatal(err)
	}
	b := NewRunBuilderCodec(sel)
	b.EnableBlocks()
	b.AddList(2, 0, docs, tfs)
	run, err := ParseRun(b.Finalize(0, docs[len(docs)-1]))
	if err != nil {
		f.Fatal(err)
	}
	e := run.Entries[0]
	blob := run.blob[e.Offset : e.Offset+uint64(e.Length)]
	f.Add(blob, e.Count, e.Flags)
	f.Add([]byte{}, uint32(0), e.Flags)
	f.Add([]byte{1, 1, 1, 1, 1, 0}, uint32(1), e.Flags)
	f.Fuzz(func(t *testing.T, data []byte, count, flags uint32) {
		fe := RunEntry{Length: uint32(len(data)), Count: count, Flags: flags | FlagBlocks}
		bl, err := parseBlockedBlob(data, fe)
		if err != nil {
			if !errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		total := 0
		for i := 0; i < bl.NumBlocks(); i++ {
			sk := bl.Skip(i)
			ds, ts, err := bl.DecodeBlock(i)
			if err != nil {
				if !errors.Is(err, ErrCorruptIndex) {
					t.Fatalf("untyped decode error: %v", err)
				}
				continue
			}
			if len(ds) != int(sk.Count) || len(ts) != len(ds) {
				t.Fatalf("block %d decoded %d/%d postings, skip says %d", i, len(ds), len(ts), sk.Count)
			}
			total += len(ds)
		}
		if total > int(count) {
			t.Fatalf("decoded %d postings from an entry claiming %d", total, count)
		}
	})
}
