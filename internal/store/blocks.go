package store

// Block-max postings blocks (run format version 5, PR 10).
//
// Long non-positional lists are split into fixed-size blocks so the
// ranked path can skip most of a Zipf-head list: each block carries a
// skip entry (lastDocID, count, byteLen, maxTF) and an independently
// decodable codec body. The impact bound itself is NOT stored — only
// the raw maximum term frequency — because BM25 impacts depend on
// collection statistics (avgdl, N) that drift under live indexing;
// the searcher derives a monotone upper bound from maxTF and its own
// statistics at query time, which stays valid however the collection
// has grown since the block was sealed.
//
// Blocked blob layout (self-contained inside the entry's blob bytes,
// selected by FlagBlocks in the entry flags):
//
//	uvarbyte nBlocks
//	nBlocks x { uvarbyte lastDocDelta   first block absolute, then
//	                                    the gap from the previous
//	                                    block's lastDoc (>= 1)
//	            uvarbyte count          postings in the block (>= 1)
//	            uvarbyte byteLen        codec body bytes
//	            uvarbyte maxTF          max term frequency in block }
//	concatenated per-block codec bodies (entry codec, first docID of
//	every block encoded absolute, which every registered codec does)

import (
	"fmt"
	"math"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
)

const (
	// blockLen is the number of postings per block (the last block of
	// a list is shorter when the count is not a multiple).
	blockLen = 128

	// blockMinPostings is the blocking threshold: shorter lists gain
	// nothing from skip data and stay in the unblocked layout.
	blockMinPostings = 256
)

// BlockSkip is one block's skip entry.
type BlockSkip struct {
	LastDoc uint32 // last docID in the block
	Count   uint32 // postings in the block
	MaxTF   uint32 // maximum term frequency in the block
}

// BlockList is the block-at-a-time view of one postings list: the
// parsed skip table plus the undecoded codec bodies. Decode cost is
// paid per block, on demand. A BlockList may also wrap an
// already-decoded list (memtable portions, cache hits) as a single
// exact pseudo-block, so evaluators see one shape everywhere.
type BlockList struct {
	skips  []BlockSkip
	starts []uint32 // len(skips)+1 prefix offsets into body
	body   []byte
	codec  encoding.Codec
	count  int

	mem *postings.List // pseudo-block: decoded list, body == nil
}

// NumBlocks reports the number of blocks.
func (b *BlockList) NumBlocks() int { return len(b.skips) }

// Count reports the total postings across blocks.
func (b *BlockList) Count() int { return b.count }

// Skip returns block i's skip entry without decoding anything.
func (b *BlockList) Skip(i int) BlockSkip { return b.skips[i] }

// MaxTF reports the maximum term frequency across all blocks — the
// list-level impact bound input.
func (b *BlockList) MaxTF() uint32 {
	var m uint32
	for _, s := range b.skips {
		if s.MaxTF > m {
			m = s.MaxTF
		}
	}
	return m
}

// DecodeBlock decodes block i's body into parallel docID/tf slices.
// Freshly allocated for disk-backed lists; pseudo-blocks return the
// wrapped slices directly (callers must not mutate them).
func (b *BlockList) DecodeBlock(i int) (docIDs, tfs []uint32, err error) {
	if b.mem != nil {
		return b.mem.DocIDs, b.mem.TFs, nil
	}
	s := b.skips[i]
	body := b.body[b.starts[i]:b.starts[i+1]]
	docIDs, tfs, _, err = b.codec.Decode(body, int(s.Count), false)
	if err != nil {
		// Codec failures on a body the skip table vouched for are index
		// corruption; fold them under the typed sentinel.
		return nil, nil, fmt.Errorf("%w: block %d: %v", ErrCorruptRun, i, err)
	}
	if n := len(docIDs); n == 0 || docIDs[n-1] != s.LastDoc {
		return nil, nil, fmt.Errorf("%w: block %d lastDoc mismatch", ErrCorruptRun, i)
	}
	return docIDs, tfs, nil
}

// BlockListFromList wraps an already-decoded list as one exact
// pseudo-block (nil for empty lists). The skip entry is computed from
// the actual postings, so bounds derived from it are exact.
func BlockListFromList(l *postings.List) *BlockList {
	n := l.Len()
	if n == 0 {
		return nil
	}
	var maxTF uint32
	for _, tf := range l.TFs {
		if tf > maxTF {
			maxTF = tf
		}
	}
	return &BlockList{
		skips: []BlockSkip{{LastDoc: l.DocIDs[n-1], Count: uint32(n), MaxTF: maxTF}},
		count: n,
		mem:   l,
	}
}

// TermBlocks is one term's complete block view: one BlockList per
// source (merged file, or per live segment plus the memtable), in
// ascending disjoint docID-range order.
type TermBlocks struct {
	Lists []*BlockList
}

// Len reports the term's total postings (its document frequency —
// exact, because blocked sources are only offered when no tombstones
// hide postings).
func (t *TermBlocks) Len() int {
	n := 0
	for _, l := range t.Lists {
		n += l.count
	}
	return n
}

// blockable reports whether a list qualifies for the blocked layout.
func blockable(blockMin, n int, positional bool) bool {
	return blockMin > 0 && n >= blockMin && !positional
}

// appendBlockedList encodes (docIDs, tfs) as a blocked blob appended
// to dst: skip header first, then the per-block codec bodies. Each
// block is encoded independently (all registered codecs store the
// first docID absolute), so decode cost is per block.
func appendBlockedList(dst []byte, codec encoding.Codec, docIDs, tfs []uint32) ([]byte, error) {
	n := len(docIDs)
	nBlocks := (n + blockLen - 1) / blockLen
	var bodies []byte
	bodyStarts := make([]uint32, 0, nBlocks+1)
	bodyStarts = append(bodyStarts, 0)

	dst = encoding.PutUvarByte(dst, uint64(nBlocks))
	prevLast := uint32(0)
	for lo := 0; lo < n; lo += blockLen {
		hi := lo + blockLen
		if hi > n {
			hi = n
		}
		var err error
		bodies, err = codec.Encode(bodies, docIDs[lo:hi], tfs[lo:hi], nil)
		if err != nil {
			return nil, err
		}
		var maxTF uint32
		for _, tf := range tfs[lo:hi] {
			if tf > maxTF {
				maxTF = tf
			}
		}
		last := docIDs[hi-1]
		dst = encoding.PutUvarByte(dst, uint64(last-prevLast))
		dst = encoding.PutUvarByte(dst, uint64(hi-lo))
		dst = encoding.PutUvarByte(dst, uint64(len(bodies))-uint64(bodyStarts[len(bodyStarts)-1]))
		dst = encoding.PutUvarByte(dst, uint64(maxTF))
		bodyStarts = append(bodyStarts, uint32(len(bodies)))
		prevLast = last
	}
	return append(dst, bodies...), nil
}

// parseBlockedBlob validates and parses a blocked blob against its
// (untrusted) entry. Every structural failure wraps ErrCorruptRun;
// nothing proportional to claimed counts is allocated before the
// claim is bounded by the bytes present.
func parseBlockedBlob(blob []byte, e RunEntry) (*BlockList, error) {
	codec, err := encoding.Lookup(e.Codec())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptRun, err)
	}
	nb, m := encoding.UvarByte(blob)
	if m <= 0 || nb == 0 {
		return nil, fmt.Errorf("%w: blocked blob: bad block count", ErrCorruptRun)
	}
	// Bound nBlocks before allocating the skip table: every block costs
	// at least 4 header bytes (four uvarbytes) plus one body byte, and
	// at least one posting.
	if nb > uint64(len(blob))/5 || nb > uint64(e.Count) {
		return nil, fmt.Errorf("%w: blocked blob: block count exceeds input", ErrCorruptRun)
	}
	rest := blob[m:]
	nBlocks := int(nb)
	bl := &BlockList{
		skips:  make([]BlockSkip, nBlocks),
		starts: make([]uint32, nBlocks+1),
		codec:  codec,
	}
	var prevLast uint64
	var sumCount, sumBytes uint64
	for i := 0; i < nBlocks; i++ {
		var v [4]uint64
		for j := range v {
			var k int
			v[j], k = encoding.UvarByte(rest)
			if k <= 0 {
				return nil, fmt.Errorf("%w: blocked blob: truncated skip entry", ErrCorruptRun)
			}
			rest = rest[k:]
		}
		delta, count, byteLen, maxTF := v[0], v[1], v[2], v[3]
		if i > 0 && delta == 0 {
			return nil, fmt.Errorf("%w: blocked blob: non-ascending block lastDoc", ErrCorruptRun)
		}
		last := prevLast + delta
		if last > math.MaxUint32 || count == 0 || maxTF > math.MaxUint32 {
			return nil, fmt.Errorf("%w: blocked blob: skip entry out of range", ErrCorruptRun)
		}
		sumCount += count
		sumBytes += byteLen
		if sumCount > uint64(e.Count) || sumBytes > uint64(len(blob)) {
			return nil, fmt.Errorf("%w: blocked blob: skip totals exceed entry", ErrCorruptRun)
		}
		if uint64(codec.MinBytes(int(count))) > byteLen {
			return nil, fmt.Errorf("%w: blocked blob: block count exceeds body bytes", ErrCorruptRun)
		}
		bl.skips[i] = BlockSkip{LastDoc: uint32(last), Count: uint32(count), MaxTF: uint32(maxTF)}
		bl.starts[i+1] = bl.starts[i] + uint32(byteLen)
		prevLast = last
	}
	if sumCount != uint64(e.Count) {
		return nil, fmt.Errorf("%w: blocked blob: block counts disagree with entry count", ErrCorruptRun)
	}
	if sumBytes != uint64(len(rest)) {
		return nil, fmt.Errorf("%w: blocked blob: block bytes disagree with body", ErrCorruptRun)
	}
	bl.body = rest
	bl.count = int(sumCount)
	return bl, nil
}

// decodeBlockedEntry decodes a blocked blob back into one whole
// postings list, for readers that want the classic shape (term
// lookups, merges of blocked segments, differential read-backs).
func decodeBlockedEntry(blob []byte, e RunEntry) (*postings.List, error) {
	bl, err := parseBlockedBlob(blob, e)
	if err != nil {
		return nil, err
	}
	l := &postings.List{
		DocIDs: make([]uint32, 0, bl.count),
		TFs:    make([]uint32, 0, bl.count),
	}
	for i := 0; i < bl.NumBlocks(); i++ {
		docIDs, tfs, err := bl.DecodeBlock(i)
		if err != nil {
			return nil, err
		}
		l.DocIDs = append(l.DocIDs, docIDs...)
		l.TFs = append(l.TFs, tfs...)
	}
	return l, nil
}
