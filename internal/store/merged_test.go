package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastinvert/internal/postings"
	"fastinvert/internal/trie"
)

// buildMergedTestDir writes a small multi-run index (one positional
// list included) and returns its directory and terms.
func buildMergedTestDir(t testing.TB) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	w, err := NewIndexWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	terms := []string{"alpha", "beta", "gamma", "delta"}
	var dict []DictEntry
	for slot, term := range terms {
		dict = append(dict, DictEntry{
			Term:       term,
			Collection: int32(trie.IndexString(term)),
			Slot:       int32(slot),
		})
	}
	for r := 0; r < 3; r++ {
		b := NewRunBuilder()
		base := uint32(r * 100)
		for slot, term := range terms {
			docs := []uint32{base + uint32(slot), base + uint32(slot) + 10}
			tfs := []uint32{1, 2}
			if slot == 3 {
				// One positional list per run exercises the positional
				// merge path.
				if err := b.AddPositionalList(trie.IndexString(term), int32(slot),
					docs, tfs, [][]uint32{{1}, {2, 5}}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := b.AddList(trie.IndexString(term), int32(slot), docs, tfs); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteRun(b, base, base+99); err != nil {
			t.Fatal(err)
		}
	}
	SortDictEntries(dict)
	if err := w.Finish(dict); err != nil {
		t.Fatal(err)
	}
	return dir, terms
}

// mergeDir merges an index directory and closes the merging reader.
func mergeDir(t testing.TB, dir string) *MergeStats {
	t.Helper()
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	stats, err := idx.Merge()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestMergedMatchesRuns is the store-level parity check: every term
// answers identically from per-run assembly and from the merged file,
// for full fetches and narrowed ranges.
func TestMergedMatchesRuns(t *testing.T) {
	dir, terms := buildMergedTestDir(t)

	want := map[string]*postings.List{}
	pre, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range terms {
		l, err := pre.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		want[term] = l
	}
	pre.Close()

	mergeDir(t, dir)
	post, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Close()
	if !post.MergedActive() {
		t.Fatal("merged file not active after merge")
	}
	for _, term := range terms {
		got, err := post.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		assertSameList(t, term, got, want[term])
		// Range narrowed to the middle run.
		gr, err := post.PostingsRange(term, 100, 199)
		if err != nil {
			t.Fatal(err)
		}
		wr := sliceRange(want[term], 100, 199)
		assertSameList(t, term+"[100,199]", gr, wr)
	}
	st := post.Stats()
	if st.MergedHits == 0 || st.RunFallbacks != 0 {
		t.Fatalf("merged reader stats = %+v, want only merged hits", st)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify of merged index: %v", err)
	}
}

func assertSameList(t *testing.T, label string, got, want *postings.List) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d postings, want %d", label, got.Len(), want.Len())
	}
	for i := range want.DocIDs {
		if got.DocIDs[i] != want.DocIDs[i] || got.TFs[i] != want.TFs[i] {
			t.Fatalf("%s: posting %d = (%d,%d), want (%d,%d)", label, i,
				got.DocIDs[i], got.TFs[i], want.DocIDs[i], want.TFs[i])
		}
	}
	if want.Positional() != got.Positional() {
		t.Fatalf("%s: positional mismatch", label)
	}
	for i := range want.Positions {
		if len(got.Positions[i]) != len(want.Positions[i]) {
			t.Fatalf("%s: positions %d mismatch", label, i)
		}
	}
}

// TestMergeLeavesNoTempFiles: the atomic write must not leave temp
// files behind on success.
// TestMergeWorkersDeterministic merges identical indexes with several
// worker counts and requires bit-identical merged files: the sharded
// parallel merge must never let scheduling reach the output bytes.
func TestMergeWorkersDeterministic(t *testing.T) {
	mergeWith := func(workers int) ([]byte, []byte) {
		dir, _ := buildMergedTestDir(t)
		idx, err := OpenIndexWith(dir, ReaderOptions{MergeWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.Merge(); err != nil {
			t.Fatal(err)
		}
		idx.Close()
		post, err := os.ReadFile(filepath.Join(dir, mergedFileName))
		if err != nil {
			t.Fatal(err)
		}
		side, err := os.ReadFile(filepath.Join(dir, mergedSidecarName))
		if err != nil {
			t.Fatal(err)
		}
		return post, side
	}
	wantPost, wantSide := mergeWith(1)
	for _, workers := range []int{2, 3, 8} {
		gotPost, gotSide := mergeWith(workers)
		if !bytes.Equal(gotPost, wantPost) {
			t.Fatalf("merged.post differs between 1 and %d workers", workers)
		}
		if !bytes.Equal(gotSide, wantSide) {
			t.Fatalf("merged.json differs between 1 and %d workers", workers)
		}
	}
}

func TestMergeLeavesNoTempFiles(t *testing.T) {
	dir, _ := buildMergedTestDir(t)
	mergeDir(t, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, mergedSidecarName)); err != nil {
		t.Fatalf("sidecar missing: %v", err)
	}
}

// TestTruncatedMergedFallsBack is the standalone regression for the
// torn-write bug: a truncated merged.post (as a crashed non-atomic
// write would leave) must surface a typed error from Verify and must
// NOT be served — queries fall back to per-run assembly with correct
// results.
func TestTruncatedMergedFallsBack(t *testing.T) {
	dir, terms := buildMergedTestDir(t)
	mergeDir(t, dir)

	mp := filepath.Join(dir, mergedFileName)
	st, err := os.Stat(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(mp, st.Size()/2); err != nil {
		t.Fatal(err)
	}

	if _, err := Verify(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("Verify of truncated merged = %v, want ErrCorruptIndex", err)
	}
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.MergedActive() {
		t.Fatal("truncated merged file must not be active")
	}
	if err := idx.MergedErr(); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("MergedErr = %v, want ErrCorruptIndex", err)
	}
	for _, term := range terms {
		l, err := idx.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		if l.Len() != 6 { // 2 postings x 3 runs
			t.Fatalf("fallback postings for %q = %v", term, l.DocIDs)
		}
	}
	if st := idx.Stats(); st.RunFallbacks == 0 || st.MergedHits != 0 {
		t.Fatalf("stats after fallback = %+v", st)
	}
}

// TestBitFlippedMergedFallsBack: single-byte corruption anywhere past
// the header fails the CRC and the reader degrades gracefully.
func TestBitFlippedMergedFallsBack(t *testing.T) {
	dir, terms := buildMergedTestDir(t)
	mergeDir(t, dir)

	mp := filepath.Join(dir, mergedFileName)
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(mp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Verify(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("Verify of bit-flipped merged = %v, want ErrCorruptIndex", err)
	}
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.MergedActive() {
		t.Fatal("bit-flipped merged file must not be active")
	}
	l, err := idx.Postings(terms[0])
	if err != nil || l.Len() != 6 {
		t.Fatalf("fallback postings = %v err=%v", l, err)
	}
}

// TestMergedWithoutSidecarIgnored: a bare merged.post with no sidecar
// (e.g. written by a pre-sidecar version) is not trusted and not an
// error.
func TestMergedWithoutSidecarIgnored(t *testing.T) {
	dir, terms := buildMergedTestDir(t)
	mergeDir(t, dir)
	if err := os.Remove(filepath.Join(dir, mergedSidecarName)); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.MergedActive() {
		t.Fatal("merged file without sidecar must not be trusted")
	}
	if err := idx.MergedErr(); err != nil {
		t.Fatalf("missing sidecar is not corruption, got %v", err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if l, err := idx.Postings(terms[0]); err != nil || l.Len() != 6 {
		t.Fatalf("postings = %v err=%v", l, err)
	}
}

// TestMergedSidecarVersionGating: an unknown future sidecar version is
// ignored, not treated as corruption.
func TestMergedSidecarVersionGating(t *testing.T) {
	dir, _ := buildMergedTestDir(t)
	mergeDir(t, dir)
	scPath := filepath.Join(dir, mergedSidecarName)
	raw, err := os.ReadFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1)
	if bumped == string(raw) {
		t.Fatalf("sidecar version field not found in %s", raw)
	}
	if err := os.WriteFile(scPath, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.MergedActive() {
		t.Fatal("future-versioned sidecar must not be trusted")
	}
	if err := idx.MergedErr(); err != nil {
		t.Fatalf("future version is not corruption, got %v", err)
	}
}

// TestRemergeIsIdempotent: merging an already-merged index rewrites
// the file and keeps serving correct results.
func TestRemergeIsIdempotent(t *testing.T) {
	dir, terms := buildMergedTestDir(t)
	s1 := mergeDir(t, dir)
	s2 := mergeDir(t, dir)
	if s1.Lists != s2.Lists || s1.Bytes != s2.Bytes {
		t.Fatalf("re-merge changed output: %+v vs %+v", s1, s2)
	}
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if l, err := idx.Postings(terms[1]); err != nil || l.Len() != 6 {
		t.Fatalf("postings after re-merge = %v err=%v", l, err)
	}
}

// TestListCacheEviction drives the reader cache with a budget smaller
// than the working set and checks the byte bound holds while queries
// stay correct.
func TestListCacheEviction(t *testing.T) {
	dir, terms := buildMergedTestDir(t)
	const budget = 400 // a couple of decoded lists
	idx, err := OpenIndexWith(dir, ReaderOptions{CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for round := 0; round < 4; round++ {
		for _, term := range terms {
			l, err := idx.Postings(term)
			if err != nil {
				t.Fatal(err)
			}
			if l.Len() != 6 {
				t.Fatalf("postings for %q = %v", term, l.DocIDs)
			}
		}
	}
	st := idx.Stats()
	if st.CacheBytes > budget {
		t.Fatalf("cache holds %d bytes, budget %d", st.CacheBytes, budget)
	}
	if st.CacheEvictions == 0 {
		t.Fatalf("expected evictions under budget pressure: %+v", st)
	}
	if st.ListBytesRead == 0 {
		t.Fatal("list bytes read not counted")
	}
}

// TestListCacheUnit exercises the LRU directly: budget enforcement,
// hit/miss accounting, oversized rejection, purge.
func TestListCacheUnit(t *testing.T) {
	c := newListCache(300)
	mk := func(n int) *postings.List {
		l := &postings.List{}
		for i := 0; i < n; i++ {
			l.DocIDs = append(l.DocIDs, uint32(i))
			l.TFs = append(l.TFs, 1)
		}
		return l
	}
	k := func(i int) listKey { return listKey{file: "f", coll: 1, slot: uint32(i)} }

	if _, ok := c.get(k(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k(0), mk(10)) // 72+80 = 152 bytes
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("miss after put")
	}
	c.put(k(1), mk(10)) // 304 total > 300: evicts k(0)
	if _, ok := c.get(k(0)); ok {
		t.Fatal("k0 should have been evicted")
	}
	if c.evictions.Load() == 0 {
		t.Fatal("eviction not counted")
	}
	c.put(k(2), mk(1000)) // larger than the whole budget: rejected
	if _, ok := c.get(k(2)); ok {
		t.Fatal("oversized list must not be admitted")
	}
	bytes, entries := c.occupancy()
	if bytes > 300 || entries != 1 {
		t.Fatalf("occupancy = %d bytes / %d entries", bytes, entries)
	}
	c.purge()
	if bytes, entries := c.occupancy(); bytes != 0 || entries != 0 {
		t.Fatalf("purge left %d bytes / %d entries", bytes, entries)
	}
}

// TestCorruptCountsDoNotOverAllocate is the regression for the
// over-allocation bug: tiny files whose headers claim huge element
// counts must fail typed, not allocate gigabytes.
func TestCorruptCountsDoNotOverAllocate(t *testing.T) {
	// doclens: 8-byte file claiming 2^32-1 entries.
	lens := make([]byte, 8)
	putU32At(lens, 0, docLensMagic)
	putU32At(lens, 4, 0xFFFFFFFF)
	if _, err := parseDocLens(lens); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("parseDocLens huge count = %v, want ErrCorruptIndex", err)
	}

	// doctable: 12-byte file claiming 2^31 docs.
	table := make([]byte, 12)
	putU32At(table, 0, docTableMagic)
	putU32At(table, 4, 0)
	putU32At(table, 8, 1<<31)
	if _, _, err := parseDocTable(table); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("parseDocTable huge count = %v, want ErrCorruptIndex", err)
	}
	putU32At(table, 4, 0xFFFFFFF0)
	putU32At(table, 8, 0)
	if _, _, err := parseDocTable(table); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("parseDocTable huge names = %v, want ErrCorruptIndex", err)
	}

	// run file: header claiming more table entries than the file holds.
	b := NewRunBuilder()
	b.AddList(1, 0, []uint32{1}, []uint32{1})
	data := b.Finalize(1, 1)
	putU32At(data, 8, 0x40000000)
	if _, err := ParseRun(data); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("ParseRun huge nLists = %v, want ErrCorruptIndex", err)
	}
}

// TestDocMapValidation: hostile docmap rows (path traversal, absolute
// paths, inverted ranges) are rejected typed.
func TestDocMapValidation(t *testing.T) {
	cases := []string{
		`[{"file":"../../etc/passwd","first_doc":0,"last_doc":1,"lists":1,"bytes":1}]`,
		`[{"file":"/etc/passwd","first_doc":0,"last_doc":1,"lists":1,"bytes":1}]`,
		`[{"file":"","first_doc":0,"last_doc":1,"lists":1,"bytes":1}]`,
		`[{"file":"run-00000.post","first_doc":9,"last_doc":3,"lists":1,"bytes":1}]`,
		`[{"file":"run-00000.post","first_doc":0,"last_doc":1,"lists":-4,"bytes":1}]`,
		`{not json`,
	}
	for _, c := range cases {
		if _, err := parseDocMap([]byte(c)); !errors.Is(err, ErrCorruptIndex) {
			t.Errorf("parseDocMap(%s) = %v, want ErrCorruptIndex", c, err)
		}
	}
	good := `[{"file":"run-00000.post","first_doc":0,"last_doc":9,"lists":2,"bytes":100}]`
	if _, err := parseDocMap([]byte(good)); err != nil {
		t.Errorf("parseDocMap(valid) = %v", err)
	}
}
