package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fastinvert/internal/trie"
)

func trieIndexForTest(term string) int { return trie.IndexString(term) }

// buildTestIndex writes a small multi-run index and opens it.
func buildTestIndex(t testing.TB) (*IndexReader, []string) {
	t.Helper()
	dir := t.TempDir()
	w, err := NewIndexWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	terms := []string{"alpha", "beta", "gamma", "delta"}
	var dict []DictEntry
	for slot, term := range terms {
		dict = append(dict, DictEntry{
			Term:       term,
			Collection: int32(trieIndexForTest(term)),
			Slot:       int32(slot),
		})
	}
	// Three runs, each holding every term over a disjoint doc range.
	for r := 0; r < 3; r++ {
		b := NewRunBuilder()
		base := uint32(r * 100)
		for slot := range terms {
			docs := []uint32{base + uint32(slot), base + uint32(slot) + 10}
			tfs := []uint32{1, 2}
			if err := b.AddList(trieIndexForTest(terms[slot]), int32(slot), docs, tfs); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteRun(b, base, base+99); err != nil {
			t.Fatal(err)
		}
	}
	SortDictEntries(dict)
	if err := w.Finish(dict); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	return idx, terms
}

// TestReaderConcurrentAccess hammers one IndexReader from 16
// goroutines mixing full fetches, range fetches and metadata reads —
// the first touches of each run file race on the lazy cache (run with
// -race).
func TestReaderConcurrentAccess(t *testing.T) {
	idx, terms := buildTestIndex(t)
	defer idx.Close()

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				term := terms[(g+i)%len(terms)]
				switch i % 3 {
				case 0:
					l, err := idx.Postings(term)
					if err != nil {
						errCh <- err
						return
					}
					if l.Len() != 6 { // 2 postings per run x 3 runs
						errCh <- errors.New("short postings under concurrency")
						return
					}
				case 1:
					l, err := idx.PostingsRange(term, 100, 199)
					if err != nil {
						errCh <- err
						return
					}
					if l.Len() != 2 {
						errCh <- errors.New("bad range postings under concurrency")
						return
					}
				case 2:
					if _, err := idx.LookupTerm(term); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestReaderClose(t *testing.T) {
	idx, terms := buildTestIndex(t)
	if _, err := idx.Postings(terms[0]); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if _, err := idx.Postings(terms[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Postings after Close = %v, want ErrClosed", err)
	}
	if _, err := idx.LookupTerm(terms[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("LookupTerm after Close = %v, want ErrClosed", err)
	}
	if _, err := idx.Merge(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Merge after Close = %v, want ErrClosed", err)
	}
}

// TestReaderCloseDuringQueries races Close against readers: every
// query must either succeed or fail with ErrClosed, nothing else.
func TestReaderCloseDuringQueries(t *testing.T) {
	idx, terms := buildTestIndex(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, err := idx.Postings(terms[(g+i)%len(terms)])
				if err != nil && !errors.Is(err, ErrClosed) {
					errCh <- err
					return
				}
			}
		}(g)
	}
	idx.Close()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestLookupTermNotFound(t *testing.T) {
	idx, _ := buildTestIndex(t)
	defer idx.Close()
	_, err := idx.LookupTerm("nosuchterm")
	if !errors.Is(err, ErrTermNotFound) {
		t.Fatalf("LookupTerm = %v, want ErrTermNotFound", err)
	}
}

// TestCorruptionErrorsAreTyped checks every corrupt-bytes path is
// matchable via the ErrCorruptIndex sentinel.
func TestCorruptionErrorsAreTyped(t *testing.T) {
	b := NewRunBuilder()
	b.AddList(1, 0, []uint32{1}, []uint32{1})
	data := b.Finalize(1, 1)
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ParseRun(bad); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("ParseRun bad magic = %v, want ErrCorruptIndex", err)
	}
	if !errors.Is(ErrCorruptRun, ErrCorruptIndex) {
		t.Fatal("ErrCorruptRun must wrap ErrCorruptIndex")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "doclens.bin"), []byte("garbage!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readDocLens(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("readDocLens = %v, want ErrCorruptIndex", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "doctable.bin"), []byte("garbage!!!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readDocTable(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("readDocTable = %v, want ErrCorruptIndex", err)
	}
}

// TestCloseRacesMergeAndQueries hammers Close against concurrent
// Merge and PostingsRange calls (run with -race): every call must
// either complete or return ErrClosed, and no file handle or goroutine
// may leak past Close.
func TestCloseRacesMergeAndQueries(t *testing.T) {
	for round := 0; round < 8; round++ {
		idx, terms := buildTestIndex(t)
		var wg sync.WaitGroup
		errCh := make(chan error, 32)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_, err := idx.PostingsRange(terms[(g+i)%len(terms)], 0, 250)
					if err != nil && !errors.Is(err, ErrClosed) {
						errCh <- err
						return
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := idx.Merge()
				if err != nil && !errors.Is(err, ErrClosed) {
					errCh <- err
					return
				}
			}
		}()
		idx.Close()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
}

// TestConcurrentQueriesOnMergedReader checks the merged read path and
// its cache under 16-goroutine load.
func TestConcurrentQueriesOnMergedReader(t *testing.T) {
	idx, terms := buildTestIndex(t)
	defer idx.Close()
	if _, err := idx.Merge(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l, err := idx.Postings(terms[(g+i)%len(terms)])
				if err != nil {
					errCh <- err
					return
				}
				if l.Len() != 6 {
					errCh <- errors.New("short postings from merged path")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := idx.Stats(); !st.MergedActive || st.MergedHits == 0 {
		t.Fatalf("merged path not exercised: %+v", st)
	}
}
