package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestRunFormatGolden pins the on-disk run format: any change to the
// layout (header, entry size, flags, codec) must be deliberate — it
// breaks every existing index — and shows up here as a hash change.
func TestRunFormatGolden(t *testing.T) {
	b := NewRunBuilder()
	if err := b.AddList(37, 0, []uint32{1, 5, 130}, []uint32{2, 1, 7}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPositionalList(442, 3,
		[]uint32{9, 300}, []uint32{2, 1}, [][]uint32{{0, 128}, {4}}); err != nil {
		t.Fatal(err)
	}
	data := b.Finalize(1, 300)
	sum := sha256.Sum256(data)
	const want = "549628fac6fa6c3965779c96499ae725eecea455d8c560de1cb912579c0efbb8"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("run format changed: sha256 = %s, want %s (update deliberately)", got, want)
	}
}

// TestDictFormatGolden pins the front-coded dictionary format.
func TestDictFormatGolden(t *testing.T) {
	entries := []DictEntry{
		{"0195", 1, 0},
		{"apple", 11, 2},
		{"application", 442, 0},
		{"applied", 442, 1},
	}
	SortDictEntries(entries)
	var buf bytes.Buffer
	if err := WriteDictionary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	const want = "452b9d02782e0db03d485b315ef05933ce9b474a6339e6d97a41b444d4844126"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("dictionary format changed: sha256 = %s, want %s", got, want)
	}
}

// TestRunMagicGolden pins the magic bytes themselves. The u32 constant
// 0x4652494e spells "FRIN" — a historic transposition of the intended
// 'FIRN' — and is little-endian on disk, so the first four file bytes
// are 4e 49 52 46. Every existing index starts with these bytes; they
// are the format, typo and all.
func TestRunMagicGolden(t *testing.T) {
	b := NewRunBuilder()
	b.AddList(1, 0, []uint32{1}, []uint32{1})
	data := b.Finalize(1, 1)
	want := []byte{0x4e, 0x49, 0x52, 0x46}
	if !bytes.Equal(data[:4], want) {
		t.Errorf("run magic bytes = % x, want % x", data[:4], want)
	}
	if runMagic != 0x4652494e {
		t.Errorf("runMagic = %#x, want 0x4652494e (FRIN)", runMagic)
	}
}
