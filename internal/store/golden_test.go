package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestRunFormatGolden pins the on-disk run format: any change to the
// layout (header, entry size, flags, codec) must be deliberate — it
// breaks every existing index — and shows up here as a hash change.
func TestRunFormatGolden(t *testing.T) {
	b := NewRunBuilder()
	if err := b.AddList(37, 0, []uint32{1, 5, 130}, []uint32{2, 1, 7}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPositionalList(442, 3,
		[]uint32{9, 300}, []uint32{2, 1}, [][]uint32{{0, 128}, {4}}); err != nil {
		t.Fatal(err)
	}
	data := b.Finalize(1, 300)
	sum := sha256.Sum256(data)
	const want = "549628fac6fa6c3965779c96499ae725eecea455d8c560de1cb912579c0efbb8"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("run format changed: sha256 = %s, want %s (update deliberately)", got, want)
	}
}

// TestDictFormatGolden pins the front-coded dictionary format.
func TestDictFormatGolden(t *testing.T) {
	entries := []DictEntry{
		{"0195", 1, 0},
		{"apple", 11, 2},
		{"application", 442, 0},
		{"applied", 442, 1},
	}
	SortDictEntries(entries)
	var buf bytes.Buffer
	if err := WriteDictionary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	const want = "452b9d02782e0db03d485b315ef05933ce9b474a6339e6d97a41b444d4844126"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("dictionary format changed: sha256 = %s, want %s", got, want)
	}
}
