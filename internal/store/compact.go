package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/telemetry"
)

// This file holds the shared sharded k-way merge core behind both
// IndexReader.Merge (the paper's post-processing merge into
// merged.post) and CompactRuns (LSM segment compaction): the sorted
// key space is partitioned into contiguous shards merged by concurrent
// workers, and a single writer drains shards strictly in key order so
// the output bytes never depend on scheduling. Compaction additionally
// remaps segment-local dictionary slots into a union slot space and
// drops tombstoned documents, which can leave keys with no surviving
// postings — the reserved table is shrunk in place when that happens.

// merger is one merge invocation's configuration: read-only cursors
// over the input files, the output codec selector, and optional hooks
// for tombstone filtering and reader telemetry.
type merger struct {
	cursors  []*mergeCursor
	sel      encoding.Selector
	blockMin int                   // blocked-layout threshold; 0 disables blocking
	drop     func(doc uint32) bool // nil keeps every posting
	onBytes  func(n uint64)        // compressed bytes read, nil → unobserved
	decode   func([]byte, RunEntry) (*postings.List, error)
	readErr  func(name string, err error) error
}

func (m *merger) decodeList(blob []byte, e RunEntry) (*postings.List, error) {
	if m.decode != nil {
		return m.decode(blob, e)
	}
	return decodeEntry(blob, e)
}

func (m *merger) wrapReadErr(name string, err error) error {
	if m.readErr != nil {
		return m.readErr(name, err)
	}
	return fmt.Errorf("store: %s: %w", name, err)
}

// mergeCursor is one run's entries in merge-key order. It is read-only
// during the merge: each shard worker keeps its own position per run,
// so the same cursors serve every shard concurrently. keys carries the
// merge key of every entry — (collection<<32 | slot) after any slot
// remap — and ordered sorts entry indexes by it. Remapped keys need
// their own sort because union slots are assigned in term order while
// segment-local slots follow first-appearance order.
type mergeCursor struct {
	rr      *runReader
	keys    []uint64
	ordered []int
}

// keyAt returns the merge key of the i-th entry in key order.
func (c *mergeCursor) keyAt(i int) uint64 { return c.keys[c.ordered[i]] }

// newMergeCursor builds a cursor over rr; a nil remap is the identity.
// Every entry must resolve through the remap — a list the remap does
// not know indicates a dictionary/run mismatch, reported as corruption.
func newMergeCursor(rr *runReader, remap func(coll, slot uint32) (uint32, bool)) (*mergeCursor, error) {
	c := &mergeCursor{
		rr:      rr,
		keys:    make([]uint64, len(rr.entries)),
		ordered: make([]int, len(rr.entries)),
	}
	for i, e := range rr.entries {
		slot := e.Slot
		if remap != nil {
			ns, ok := remap(e.Collection, e.Slot)
			if !ok {
				return nil, fmt.Errorf("store: %s: list (%d,%d) missing from slot remap: %w",
					rr.name, e.Collection, e.Slot, ErrCorruptIndex)
			}
			slot = ns
		}
		c.keys[i] = uint64(e.Collection)<<32 | uint64(slot)
		c.ordered[i] = i
	}
	sort.Slice(c.ordered, func(a, b int) bool { return c.keys[c.ordered[a]] < c.keys[c.ordered[b]] })
	return c, nil
}

// runSpan is one run's contiguous blob range covering a shard's keys,
// read with a single positioned read. base is the blob offset of
// buf[0]; entries slice into it by (Offset - base).
type runSpan struct {
	buf  []byte
	base uint64
}

// shardResult is one shard's merged output: the encoded blob for the
// shard's contiguous key range, table entries with offsets relative to
// the shard blob (the writer rebases them), and the shard's doc range.
type shardResult struct {
	entries []RunEntry
	blob    []byte
	first   uint32
	last    uint32
	hasDocs bool
	err     error
}

// mergeShard performs the k-way merge for one contiguous slice of the
// global key list: for each key it reads the partial lists from every
// run holding it (positioned reads are concurrency-safe), concatenates,
// drops tombstoned documents, re-encodes and appends to the shard
// blob. keys must be non-empty.
func (m *merger) mergeShard(keys []uint64) shardResult {
	res := shardResult{first: ^uint32(0)}
	cursors := m.cursors
	// Per-run position of the first entry at or past the shard's key
	// range; from there each run is walked sequentially, exactly as the
	// serial merge walked it across the whole key space.
	pos := make([]int, len(cursors))
	end := make([]int, len(cursors))
	spans := make([]runSpan, len(cursors))
	lastKey := keys[len(keys)-1]
	for ci, c := range cursors {
		pos[ci] = sort.Search(len(c.ordered), func(i int) bool {
			return c.keyAt(i) >= keys[0]
		})
		end[ci] = pos[ci] + sort.Search(len(c.ordered)-pos[ci], func(i int) bool {
			return c.keyAt(pos[ci]+i) > lastKey
		})
		// Indexers emit lists in key order, so the shard's entries in
		// this run are (near-)contiguous in the blob: read the whole
		// span with one positioned read instead of one read per list.
		// A sparse span (hand-built or reordered run) falls back to
		// per-list reads rather than dragging in unrelated bytes.
		var minOff, maxEnd, sum uint64
		for _, idx := range c.ordered[pos[ci]:end[ci]] {
			e := c.rr.entries[idx]
			if e.Length == 0 {
				continue
			}
			if sum == 0 || e.Offset < minOff {
				minOff = e.Offset
			}
			if e.Offset+uint64(e.Length) > maxEnd {
				maxEnd = e.Offset + uint64(e.Length)
			}
			sum += uint64(e.Length)
		}
		if sum > 0 && maxEnd-minOff <= sum+sum/2+(64<<10) {
			buf := make([]byte, maxEnd-minOff)
			if err := c.rr.readBlobRange(minOff, buf); err != nil {
				res.err = m.wrapReadErr(c.rr.name, err)
				return res
			}
			spans[ci] = runSpan{buf: buf, base: minOff}
		}
	}
	var (
		acc     postings.List
		partBuf []byte // reused compressed-bytes buffer (decode copies out)
	)
	for _, key := range keys {
		coll, slot := uint32(key>>32), uint32(key)
		// Reuse docID/tf capacity across keys; Positions stays nil so
		// the plain-vs-positional bookkeeping in Concat is untouched.
		acc = postings.List{DocIDs: acc.DocIDs[:0], TFs: acc.TFs[:0]}
		flags := uint32(0)
		for ci, c := range cursors {
			if pos[ci] >= len(c.ordered) || c.keyAt(pos[ci]) != key {
				continue
			}
			e := c.rr.entries[c.ordered[pos[ci]]]
			pos[ci]++
			var partBlob []byte
			if s := spans[ci]; s.buf != nil && e.Length > 0 {
				partBlob = s.buf[e.Offset-s.base : e.Offset-s.base+uint64(e.Length)]
			} else if e.Length > 0 {
				var err error
				partBlob, err = c.rr.readBlobInto(e, partBuf)
				if err != nil {
					res.err = m.wrapReadErr(c.rr.name, err)
					return res
				}
				partBuf = partBlob // keep the grown buffer for the next read
			}
			if m.onBytes != nil {
				m.onBytes(uint64(e.Length))
			}
			part, err := m.decodeList(partBlob, e)
			if err != nil {
				res.err = fmt.Errorf("store: %s: %w", c.rr.name, err)
				return res
			}
			if err := postings.Concat(&acc, part); err != nil {
				res.err = fmt.Errorf("store: merge (%d,%d): %w", coll, slot, err)
				return res
			}
		}
		if m.drop != nil {
			dropPostings(&acc, m.drop)
		}
		if acc.Len() == 0 {
			continue
		}
		// Encode straight into the shard blob: the list's start offset
		// is the blob length before the append, so no per-list scratch
		// copy is needed. The codec choice is a pure function of the
		// list's shape, so every worker count yields identical bytes.
		n := acc.Len()
		codec := encoding.VarByteCodec
		if m.sel != nil {
			codec = m.sel(n, acc.DocIDs[0], acc.DocIDs[n-1], acc.Positional())
		}
		var accPos [][]uint32
		if acc.Positional() {
			flags = FlagPositional
			accPos = acc.Positions
		}
		flags |= codecFlags(codec.ID())
		start := len(res.blob)
		var err error
		// Long non-positional lists get the blocked layout: same codec,
		// split into skip-indexed blocks so the ranked path can prune.
		// Blocking is a pure function of the list's shape, preserving
		// worker-count-independent output bytes.
		if blockable(m.blockMin, n, acc.Positional()) {
			res.blob, err = appendBlockedList(res.blob, codec, acc.DocIDs, acc.TFs)
			flags |= FlagBlocks
		} else {
			res.blob, err = codec.Encode(res.blob, acc.DocIDs, acc.TFs, accPos)
		}
		if err != nil {
			res.err = fmt.Errorf("store: merge (%d,%d): %w", coll, slot, err)
			return res
		}
		res.entries = append(res.entries, RunEntry{
			Collection: coll,
			Slot:       slot,
			Offset:     uint64(start),
			Length:     uint32(len(res.blob) - start),
			Count:      uint32(acc.Len()),
			Flags:      flags,
		})
		res.hasDocs = true
		if acc.DocIDs[0] < res.first {
			res.first = acc.DocIDs[0]
		}
		if acc.DocIDs[acc.Len()-1] > res.last {
			res.last = acc.DocIDs[acc.Len()-1]
		}
	}
	return res
}

// dropPostings removes postings whose document the filter rejects,
// compacting the list in place.
func dropPostings(l *postings.List, drop func(uint32) bool) {
	k := 0
	for i, doc := range l.DocIDs {
		if drop(doc) {
			continue
		}
		l.DocIDs[k] = doc
		l.TFs[k] = l.TFs[i]
		if l.Positions != nil {
			l.Positions[k] = l.Positions[i]
		}
		k++
	}
	l.DocIDs = l.DocIDs[:k]
	l.TFs = l.TFs[:k]
	if l.Positions != nil {
		l.Positions = l.Positions[:k]
	}
}

// writeMergedFile runs the sharded merge over m's cursors and writes a
// complete run-format file at path, atomically (temp + fsync +
// rename). ctx cancels in-flight shards; a cancelled merge removes the
// temp file and leaves path untouched. Returns the stats and the file
// CRC (table + blob) for sidecar use.
func (m *merger) writeMergedFile(ctx context.Context, path string, workers int) (*MergeStats, uint32, error) {
	// Distinct merged keys, known before any blob is read: the table
	// region can be sized and reserved up front.
	nLists := 0
	for _, c := range m.cursors {
		nLists += len(c.rr.entries)
	}
	keys := make([]uint64, 0, nLists)
	for _, c := range m.cursors {
		keys = append(keys, c.keys...)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	keys = dedupeSorted(keys)

	tmpPath := path + ".tmp"
	f, err := os.Create(tmpPath)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmpPath)
		}
	}()

	// Reserve header + table, stream the blob behind them, then patch
	// the table and CRC once every offset is known.
	tableSize := len(keys) * entrySize
	if _, err := f.Write(make([]byte, runHdrSize+tableSize)); err != nil {
		return nil, 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	var (
		entries = make([]RunEntry, 0, len(keys))
		blobOff uint64
		first   = ^uint32(0)
		last    uint32
		// blobCRC accumulates while the blob streams out; combined with
		// the table CRC below, it avoids a second full read of the
		// output just to checksum it.
		blobCRC = crc32.NewIEEE()
	)
	if len(keys) > 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(keys) {
			workers = len(keys)
		}
		// A few shards per worker for load balance; the writer drains
		// them strictly in key order so the file bytes never depend on
		// scheduling.
		nShards := workers * 4
		if nShards > len(keys) {
			nShards = len(keys)
		}
		resCh := make([]chan shardResult, nShards)
		for i := range resCh {
			resCh[i] = make(chan shardResult, 1)
		}
		// The semaphore bounds shard blobs in flight to workers+1.
		// Tokens are acquired before a shard index is claimed, so the
		// lowest undrained shard is always either claimed by a
		// token-holding worker or claimable — no deadlock.
		sem := make(chan struct{}, workers+1)
		var nextShard atomic.Int64
		var aborted atomic.Bool
		for w := 0; w < workers; w++ {
			go func() {
				for {
					sem <- struct{}{}
					s := int(nextShard.Add(1)) - 1
					if s >= nShards {
						<-sem
						return
					}
					if aborted.Load() || ctx.Err() != nil {
						resCh[s] <- shardResult{err: ctx.Err()}
						continue
					}
					lo, hi := s*len(keys)/nShards, (s+1)*len(keys)/nShards
					resCh[s] <- m.mergeShard(keys[lo:hi])
				}
			}()
		}
		var workerErr error
		for s := 0; s < nShards; s++ {
			res := <-resCh[s]
			<-sem
			if workerErr != nil {
				continue
			}
			if res.err != nil {
				workerErr = res.err
				aborted.Store(true)
				continue
			}
			if _, err := bw.Write(res.blob); err != nil {
				workerErr = err
				aborted.Store(true)
				continue
			}
			blobCRC.Write(res.blob) //nolint:errcheck // hash writes cannot fail
			for _, e := range res.entries {
				e.Offset += blobOff
				entries = append(entries, e)
			}
			blobOff += uint64(len(res.blob))
			if res.hasDocs {
				if res.first < first {
					first = res.first
				}
				if res.last > last {
					last = res.last
				}
			}
		}
		if workerErr != nil {
			return nil, 0, workerErr
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, 0, err
	}
	if first == ^uint32(0) {
		first = 0
	}

	// Tombstone purges can erase every surviving posting of a key, so
	// fewer entries than reserved table rows is a legal outcome (it
	// cannot happen on the Merge path — AddList skips empty lists).
	// Slide the blob left over the unused reservation and truncate.
	if len(entries) != len(keys) {
		oldStart := int64(runHdrSize + tableSize)
		tableSize = len(entries) * entrySize
		newStart := int64(runHdrSize + tableSize)
		if err := slideDown(f, oldStart, newStart, int64(blobOff)); err != nil {
			return nil, 0, err
		}
		if err := f.Truncate(newStart + int64(blobOff)); err != nil {
			return nil, 0, err
		}
	}

	// Codec histogram decides the format version: any non-varbyte list
	// forces run format 4, any blocked list forces format 5; an
	// all-varbyte unblocked output stays byte-compatible with pre-codec
	// readers.
	codecCounts := make(map[string]int)
	hasCodec := false
	blocked := 0
	for _, e := range entries {
		c, err := encoding.Lookup(e.Codec())
		if err != nil {
			return nil, 0, fmt.Errorf("store: merge: %w", err)
		}
		codecCounts[c.Name()]++
		if c.ID() != encoding.CodecVarByte {
			hasCodec = true
		}
		if e.Flags&FlagBlocks != 0 {
			blocked++
		}
	}
	ver := uint32(runVersion)
	if hasCodec {
		ver = runVersionCodec
	}
	if blocked > 0 {
		ver = runVersionBlocks
	}
	hdrTable := make([]byte, runHdrSize+tableSize)
	binary.LittleEndian.PutUint32(hdrTable[0:], runMagic)
	binary.LittleEndian.PutUint32(hdrTable[4:], ver)
	binary.LittleEndian.PutUint32(hdrTable[8:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(hdrTable[12:], first)
	binary.LittleEndian.PutUint32(hdrTable[16:], last)
	// CRC patched below once the table bytes are final.
	for i, e := range entries {
		off := runHdrSize + i*entrySize
		binary.LittleEndian.PutUint32(hdrTable[off:], e.Collection)
		binary.LittleEndian.PutUint32(hdrTable[off+4:], e.Slot)
		binary.LittleEndian.PutUint64(hdrTable[off+8:], e.Offset)
		binary.LittleEndian.PutUint32(hdrTable[off+16:], e.Length)
		binary.LittleEndian.PutUint32(hdrTable[off+20:], e.Count)
		binary.LittleEndian.PutUint32(hdrTable[off+24:], e.Flags)
	}
	if _, err := f.WriteAt(hdrTable, 0); err != nil {
		return nil, 0, err
	}
	size := int64(len(hdrTable)) + int64(blobOff)
	// The file CRC covers table + blob. The blob half accumulated while
	// streaming; crc32Combine splices the table CRC in front of it
	// without re-reading a byte of the output.
	fileCRC := crc32Combine(crc32.ChecksumIEEE(hdrTable[runHdrSize:]), blobCRC.Sum32(), int64(blobOff))
	var crcBytes [4]byte
	binary.LittleEndian.PutUint32(crcBytes[:], fileCRC)
	if _, err := f.WriteAt(crcBytes[:], 20); err != nil {
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		return nil, 0, err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmpPath)
		return nil, 0, err
	}
	f = nil // disarm the cleanup defer
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return nil, 0, err
	}
	syncDir(filepath.Dir(path))
	return &MergeStats{
		Lists:    len(entries),
		Blocked:  blocked,
		Bytes:    size,
		FirstDoc: first,
		LastDoc:  last,
		Runs:     len(m.cursors),
		Codecs:   codecCounts,
	}, fileCRC, nil
}

// slideDown moves length bytes from offset src to offset dst (dst <
// src) within f, front to back in bounded chunks so the regions may
// overlap.
func slideDown(f *os.File, src, dst, length int64) error {
	if dst >= src {
		return nil
	}
	buf := make([]byte, 1<<20)
	for moved := int64(0); moved < length; {
		n := int64(len(buf))
		if length-moved < n {
			n = length - moved
		}
		if _, err := f.ReadAt(buf[:n], src+moved); err != nil {
			return err
		}
		if _, err := f.WriteAt(buf[:n], dst+moved); err != nil {
			return err
		}
		moved += n
	}
	return nil
}

// dedupeSorted removes adjacent duplicates in place.
func dedupeSorted(keys []uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

// CompactSource is one input file for CompactRuns: a run-format file
// plus the remap translating its segment-local dictionary slots into
// the output (union) slot space. A nil Remap is the identity, for
// inputs already in the output slot space.
type CompactSource struct {
	Path  string
	Remap func(coll, slot uint32) (newSlot uint32, ok bool)
}

// CompactOptions tunes CompactRuns.
type CompactOptions struct {
	// Codec selects how each output list is encoded: "auto" (default),
	// or a codec name to force one codec for every list.
	Codec string
	// Workers bounds concurrent shard workers (0 = GOMAXPROCS).
	Workers int
	// Drop reports documents to purge (tombstones). Postings of dropped
	// documents are filtered out; terms left with no postings are
	// omitted from the output table entirely. nil keeps everything.
	Drop func(doc uint32) bool
}

// CompactRuns merges several run-format files into one, remapping
// slots, purging dropped documents and re-encoding every surviving
// list — the LSM compaction primitive, built on the same sharded
// parallel core as IndexReader.Merge. Inputs may arrive in any order;
// they are merged in ascending first-doc order and must cover disjoint
// document ranges per term (segment seals guarantee this). The output
// is written atomically at outPath.
func CompactRuns(ctx context.Context, sources []CompactSource, outPath string, opts CompactOptions) (*MergeStats, error) {
	codecName := opts.Codec
	if codecName == "" {
		codecName = "auto"
	}
	sel, err := encoding.SelectorFor(codecName)
	if err != nil {
		return nil, fmt.Errorf("store: compact codec: %w", err)
	}
	cursors := make([]*mergeCursor, 0, len(sources))
	defer func() {
		for _, c := range cursors {
			c.rr.close()
		}
	}()
	for _, src := range sources {
		rr, err := openRunReader(src.Path)
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", filepath.Base(src.Path), err)
		}
		c, err := newMergeCursor(rr, src.Remap)
		if err != nil {
			rr.close()
			return nil, err
		}
		cursors = append(cursors, c)
	}
	// Ascending doc order makes same-key partial lists concatenate into
	// globally sorted postings.
	sort.SliceStable(cursors, func(i, j int) bool { return cursors[i].rr.firstDoc < cursors[j].rr.firstDoc })
	m := &merger{cursors: cursors, sel: sel, drop: opts.Drop}
	// Forced-varbyte compaction is the legacy-compatible mode (the
	// differential harness diffs its bytes against v1 output), so only
	// self-tuned compactions emit blocked lists.
	if codecName != "varbyte" {
		m.blockMin = blockMinPostings
	}
	stats, _, err := m.writeMergedFile(ctx, outPath, opts.Workers)
	if err != nil {
		return nil, err
	}
	stats.Runs = len(sources)
	return stats, nil
}

// RunFile is an exported lazy reader over one run-format file, for
// callers outside IndexReader — the segment layer reads sealed
// segments through it. The header and table are parsed and
// CRC-verified at open; lists are fetched with one positioned read
// each. Safe for concurrent use.
type RunFile struct {
	rr *runReader
}

// OpenRunFile opens and verifies a run-format file. Structural
// failures wrap ErrCorruptIndex.
func OpenRunFile(path string) (*RunFile, error) {
	rr, err := openRunReader(path)
	if err != nil {
		return nil, err
	}
	return &RunFile{rr: rr}, nil
}

// DocRange returns the [first, last] document range the file covers.
func (r *RunFile) DocRange() (first, last uint32) { return r.rr.firstDoc, r.rr.lastDoc }

// NumLists reports the number of postings lists in the file.
func (r *RunFile) NumLists() int { return len(r.rr.entries) }

// Size reports the file size in bytes.
func (r *RunFile) Size() int64 { return r.rr.size }

// Entries exposes the parsed table. Callers must not mutate it.
func (r *RunFile) Entries() []RunEntry { return r.rr.entries }

// Find locates the entry for (collection, slot).
func (r *RunFile) Find(coll, slot uint32) (RunEntry, bool) { return r.rr.find(coll, slot) }

// ReadList fetches and decodes one entry's postings list.
func (r *RunFile) ReadList(e RunEntry) (*postings.List, error) {
	return r.ReadListCtx(context.Background(), e)
}

// ReadListCtx is ReadList attributing the positioned read and the
// codec decode to a telemetry.RequestTrace when ctx carries one — the
// leaf spans of a live-index query. Untraced contexts take the same
// path with inert span handles.
func (r *RunFile) ReadListCtx(ctx context.Context, e RunEntry) (*postings.List, error) {
	tr := telemetry.TraceFrom(ctx)
	psp := tr.StartSpan(telemetry.ReqStagePread)
	blob, err := r.rr.readBlob(e)
	psp.AddBytes(int64(e.Length))
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", r.rr.name, err)
	}
	dsp := tr.StartSpan(telemetry.ReqStageDecode)
	l, err := decodeEntry(blob, e)
	if tr != nil {
		if c, cerr := encoding.Lookup(e.Codec()); cerr == nil {
			dsp.SetNote(c.Name())
		}
	}
	dsp.End()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.rr.name, err)
	}
	return l, nil
}

// ReadBlocksCtx fetches one blocked entry's blob with a single
// positioned read and parses its skip table, leaving the per-block
// codec bodies undecoded — the block-at-a-time cursor feed for the
// ranked path. Entries without FlagBlocks return (nil, nil); callers
// fall back to ReadListCtx for those.
func (r *RunFile) ReadBlocksCtx(ctx context.Context, e RunEntry) (*BlockList, error) {
	if e.Flags&FlagBlocks == 0 {
		return nil, nil
	}
	tr := telemetry.TraceFrom(ctx)
	psp := tr.StartSpan(telemetry.ReqStagePread)
	blob, err := r.rr.readBlob(e)
	psp.AddBytes(int64(e.Length))
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", r.rr.name, err)
	}
	bl, err := parseBlockedBlob(blob, e)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.rr.name, err)
	}
	return bl, nil
}

// Close releases the file handle.
func (r *RunFile) Close() error { return r.rr.close() }
