package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeCompactRun builds one run-format file holding the given lists.
// lists maps (coll, slot) -> docIDs (tf 1 each).
func writeCompactRun(t *testing.T, path string, first, last uint32, lists map[[2]uint32][]uint32) {
	t.Helper()
	b := NewRunBuilder()
	for key, docs := range lists {
		tfs := make([]uint32, len(docs))
		for i := range tfs {
			tfs[i] = 1
		}
		if err := b.AddList(int(key[0]), int32(key[1]), docs, tfs); err != nil {
			t.Fatalf("AddList: %v", err)
		}
	}
	if err := os.WriteFile(path, b.Finalize(first, last), 0o644); err != nil {
		t.Fatalf("write run: %v", err)
	}
}

func TestCompactRunsRemapAndDrop(t *testing.T) {
	dir := t.TempDir()
	// Two segments holding the same two terms under different local
	// slots: term A is (7, 0) in seg1 but (7, 1) in seg2, term B the
	// reverse. The remap sends both onto union slots A->10, B->11.
	seg1 := filepath.Join(dir, "seg1.post")
	seg2 := filepath.Join(dir, "seg2.post")
	writeCompactRun(t, seg1, 0, 9, map[[2]uint32][]uint32{
		{7, 0}: {1, 3, 5}, // A
		{7, 1}: {2, 4},    // B
		{9, 0}: {0, 6, 8}, // C, only in seg1
	})
	writeCompactRun(t, seg2, 10, 19, map[[2]uint32][]uint32{
		{7, 0}: {11, 13}, // B (local slot 0 here)
		{7, 1}: {10, 12}, // A
	})
	remap1 := func(coll, slot uint32) (uint32, bool) {
		switch {
		case coll == 7 && slot == 0:
			return 10, true // A
		case coll == 7 && slot == 1:
			return 11, true // B
		case coll == 9 && slot == 0:
			return 0, true // C
		}
		return 0, false
	}
	remap2 := func(coll, slot uint32) (uint32, bool) {
		switch {
		case coll == 7 && slot == 0:
			return 11, true // B
		case coll == 7 && slot == 1:
			return 10, true // A
		}
		return 0, false
	}
	out := filepath.Join(dir, "out.post")
	deleted := map[uint32]bool{3: true, 12: true}
	stats, err := CompactRuns(context.Background(),
		// Reverse doc order on purpose: CompactRuns must sort by first doc.
		[]CompactSource{{Path: seg2, Remap: remap2}, {Path: seg1, Remap: remap1}},
		out, CompactOptions{Drop: func(d uint32) bool { return deleted[d] }})
	if err != nil {
		t.Fatalf("CompactRuns: %v", err)
	}
	if stats.Lists != 3 || stats.Runs != 2 {
		t.Fatalf("stats = %+v, want 3 lists over 2 runs", stats)
	}
	rf, err := OpenRunFile(out)
	if err != nil {
		t.Fatalf("OpenRunFile: %v", err)
	}
	defer rf.Close()
	want := map[[2]uint32][]uint32{
		{7, 10}: {1, 5, 10},     // A minus doc 3, minus doc 12
		{7, 11}: {2, 4, 11, 13}, // B
		{9, 0}:  {0, 6, 8},      // C
	}
	if rf.NumLists() != len(want) {
		t.Fatalf("NumLists = %d, want %d", rf.NumLists(), len(want))
	}
	for key, docs := range want {
		e, ok := rf.Find(key[0], key[1])
		if !ok {
			t.Fatalf("list (%d,%d) missing", key[0], key[1])
		}
		l, err := rf.ReadList(e)
		if err != nil {
			t.Fatalf("ReadList (%d,%d): %v", key[0], key[1], err)
		}
		if len(l.DocIDs) != len(docs) {
			t.Fatalf("list (%d,%d) docs = %v, want %v", key[0], key[1], l.DocIDs, docs)
		}
		for i, d := range docs {
			if l.DocIDs[i] != d {
				t.Fatalf("list (%d,%d) docs = %v, want %v", key[0], key[1], l.DocIDs, docs)
			}
		}
	}
	if first, last := rf.DocRange(); first != 0 || last != 13 {
		t.Fatalf("doc range = [%d,%d], want [0,13]", first, last)
	}
}

// A term whose every posting is tombstoned must vanish from the output
// table, which exercises the reserved-table shrink path; the shrunken
// file must still pass full CRC validation.
func TestCompactRunsShrinksFullyPurgedTerms(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "seg.post")
	writeCompactRun(t, seg, 0, 5, map[[2]uint32][]uint32{
		{1, 0}: {0, 2},
		{1, 1}: {1, 3}, // fully deleted below
		{2, 0}: {4, 5},
	})
	out := filepath.Join(dir, "out.post")
	stats, err := CompactRuns(context.Background(), []CompactSource{{Path: seg}}, out,
		CompactOptions{Drop: func(d uint32) bool { return d == 1 || d == 3 }})
	if err != nil {
		t.Fatalf("CompactRuns: %v", err)
	}
	if stats.Lists != 2 {
		t.Fatalf("Lists = %d, want 2 (one term fully purged)", stats.Lists)
	}
	rf, err := OpenRunFile(out)
	if err != nil {
		t.Fatalf("OpenRunFile after shrink: %v", err)
	}
	defer rf.Close()
	if _, ok := rf.Find(1, 1); ok {
		t.Fatal("fully purged term still present")
	}
	if _, ok := rf.Find(1, 0); !ok {
		t.Fatal("surviving term lost")
	}
	if st, _ := os.Stat(out); st.Size() != stats.Bytes {
		t.Fatalf("file is %d bytes, stats say %d", st.Size(), stats.Bytes)
	}
}

func TestCompactRunsCancellation(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "seg.post")
	lists := make(map[[2]uint32][]uint32)
	for s := uint32(0); s < 500; s++ {
		lists[[2]uint32{1, s}] = []uint32{s, s + 1000}
	}
	writeCompactRun(t, seg, 0, 1499, lists)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := filepath.Join(dir, "out.post")
	if _, err := CompactRuns(ctx, []CompactSource{{Path: seg}}, out, CompactOptions{}); err == nil {
		t.Fatal("cancelled compaction succeeded")
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("cancelled compaction left an output file")
	}
	if _, err := os.Stat(out + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("cancelled compaction left a temp file")
	}
}

func TestCompactRunsRejectsUnknownSlot(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "seg.post")
	writeCompactRun(t, seg, 0, 1, map[[2]uint32][]uint32{{1, 0}: {0}})
	_, err := CompactRuns(context.Background(),
		[]CompactSource{{Path: seg, Remap: func(_, _ uint32) (uint32, bool) { return 0, false }}},
		filepath.Join(dir, "out.post"), CompactOptions{})
	if !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("err = %v, want ErrCorruptIndex", err)
	}
}

func TestPostingsEncodedReportsCompressedBytes(t *testing.T) {
	dir := t.TempDir()
	w, err := NewIndexWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := NewRunBuilder()
	docs := []uint32{1, 2, 3, 4, 5}
	tfs := []uint32{1, 1, 1, 1, 1}
	if err := b.AddList(11, 0, docs, tfs); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRun(b, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish([]DictEntry{{Term: "abc", Collection: 11, Slot: 0}}); err != nil {
		t.Fatal(err)
	}
	r, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	l, enc, err := r.PostingsEncoded("abc")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("got %d postings, want 5", l.Len())
	}
	// Five (gap,tf) varbyte pairs = 10 bytes: far below the decoded
	// in-memory estimate, which is the point of charging encoded size.
	if enc != 10 {
		t.Fatalf("encoded size = %d, want 10", enc)
	}
	// A cache hit must report the same size.
	if _, enc2, err := r.PostingsEncoded("abc"); err != nil || enc2 != enc {
		t.Fatalf("cache-hit encoded size = %d (%v), want %d", enc2, err, enc)
	}
	if _, enc3, err := r.PostingsEncoded("missing"); err != nil || enc3 != 0 {
		t.Fatalf("missing term encoded size = %d (%v), want 0", enc3, err)
	}
}
