package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"fastinvert/internal/encoding"
)

// DictEntry is one dictionary record: a full (restored) term and the
// (collection, slot) pointer that locates its postings lists in the
// run files' mapping tables.
type DictEntry struct {
	Term       string
	Collection int32
	Slot       int32
}

// Dictionary-file layout:
//
//	magic   u32 'FIDC'
//	ver     u32
//	nTerms  u32
//	entries nTerms x { prefixLen uvarbyte, suffixLen uvarbyte,
//	                   suffix bytes, collection uvarbyte, slot uvarbyte }
//
// Entries are sorted by (collection, term): terms of one trie
// collection share their trie prefix, so front-coding against the
// previous term compresses exactly the way Heinz & Zobel's
// lexicographic processing does (§II).
const (
	dictMagic   = 0x46494443 // "FIDC"
	dictVersion = 1
)

// SortDictEntries puts entries into the canonical (collection, term)
// order required by WriteDictionary.
func SortDictEntries(entries []DictEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Collection != entries[j].Collection {
			return entries[i].Collection < entries[j].Collection
		}
		return entries[i].Term < entries[j].Term
	})
}

// WriteDictionary writes the front-coded dictionary. Entries must be
// in canonical order (SortDictEntries).
func WriteDictionary(w io.Writer, entries []DictEntry) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], dictMagic)
	binary.LittleEndian.PutUint32(hdr[4:], dictVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var scratch []byte
	prev := ""
	for i, e := range entries {
		if i > 0 {
			p := &entries[i-1]
			if e.Collection < p.Collection ||
				(e.Collection == p.Collection && e.Term < p.Term) {
				return fmt.Errorf("store: dictionary entries out of order at %d", i)
			}
		}
		pl := commonPrefix(prev, e.Term)
		scratch = scratch[:0]
		scratch = encoding.PutUvarByte(scratch, uint64(pl))
		scratch = encoding.PutUvarByte(scratch, uint64(len(e.Term)-pl))
		scratch = append(scratch, e.Term[pl:]...)
		scratch = encoding.PutUvarByte(scratch, uint64(uint32(e.Collection)))
		scratch = encoding.PutUvarByte(scratch, uint64(uint32(e.Slot)))
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
		prev = e.Term
	}
	return bw.Flush()
}

// ErrCorruptDict reports a malformed dictionary file. It wraps
// ErrCorruptIndex, so either sentinel matches via errors.Is — a
// truncated or bit-flipped dictionary surfaces as index corruption to
// callers that only know the public sentinel.
var ErrCorruptDict = fmt.Errorf("corrupt dictionary: %w", ErrCorruptIndex)

// ReadDictionary parses a dictionary file.
func ReadDictionary(r io.Reader) ([]DictEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 12 {
		return nil, ErrCorruptDict
	}
	if binary.LittleEndian.Uint32(data) != dictMagic ||
		binary.LittleEndian.Uint32(data[4:]) != dictVersion {
		return nil, ErrCorruptDict
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	// Preallocate conservatively: the count is untrusted input and an
	// entry needs at least two bytes, so cap by the data size.
	capHint := n
	if max := len(data) / 2; capHint > max {
		capHint = max
	}
	entries := make([]DictEntry, 0, capHint)
	pos := 12
	var prev []byte
	read := func() (uint64, bool) {
		v, m := encoding.UvarByte(data[pos:])
		if m <= 0 {
			return 0, false
		}
		pos += m
		return v, true
	}
	for i := 0; i < n; i++ {
		pl, ok1 := read()
		sl, ok2 := read()
		if !ok1 || !ok2 || pl > uint64(len(prev)) || sl > uint64(len(data)-pos) {
			return nil, ErrCorruptDict
		}
		term := make([]byte, 0, int(pl)+int(sl))
		term = append(term, prev[:pl]...)
		term = append(term, data[pos:pos+int(sl)]...)
		pos += int(sl)
		coll, ok3 := read()
		slot, ok4 := read()
		if !ok3 || !ok4 {
			return nil, ErrCorruptDict
		}
		entries = append(entries, DictEntry{
			Term:       string(term),
			Collection: int32(uint32(coll)),
			Slot:       int32(uint32(slot)),
		})
		prev = term
	}
	return entries, nil
}

func commonPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// FrontCodedSize estimates the on-disk dictionary size without
// writing, for memory/size reports.
func FrontCodedSize(entries []DictEntry) int {
	size := 12
	prev := ""
	for _, e := range entries {
		pl := commonPrefix(prev, e.Term)
		size += encoding.VarByteLen(uint64(pl))
		size += encoding.VarByteLen(uint64(len(e.Term) - pl))
		size += len(e.Term) - pl
		size += encoding.VarByteLen(uint64(uint32(e.Collection)))
		size += encoding.VarByteLen(uint64(uint32(e.Slot)))
		prev = e.Term
	}
	return size
}

// Lookup finds a term in a canonically-ordered dictionary given its
// collection, using binary search.
func Lookup(entries []DictEntry, collection int32, term string) (DictEntry, bool) {
	i := sort.Search(len(entries), func(i int) bool {
		if entries[i].Collection != collection {
			return entries[i].Collection >= collection
		}
		return entries[i].Term >= term
	})
	if i < len(entries) && entries[i].Collection == collection && entries[i].Term == term {
		return entries[i], true
	}
	return DictEntry{}, false
}
