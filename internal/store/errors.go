package store

import "errors"

// Sentinel errors for the index read path. Callers match them with
// errors.Is; the root fastinvert package re-exports them so external
// code never needs to import internal/store.
var (
	// ErrTermNotFound reports a dictionary lookup miss. Postings and
	// PostingsRange deliberately do NOT return it — a missing term
	// yields an empty list there, the convenient behavior for Boolean
	// evaluation — but LookupTerm does, for callers that must
	// distinguish "absent" from "present with no postings in range".
	ErrTermNotFound = errors.New("store: term not found")

	// ErrCorruptIndex reports structurally invalid index bytes: a bad
	// magic number, a failed checksum, a truncated table, or an entry
	// pointing outside its blob. ErrCorruptRun wraps it, so
	// errors.Is(err, ErrCorruptIndex) also matches run-file corruption.
	ErrCorruptIndex = errors.New("store: corrupt index")

	// ErrClosed reports use of an IndexReader after Close.
	ErrClosed = errors.New("store: index reader is closed")
)
