package store

import (
	"os"
	"path/filepath"
	"testing"

	"fastinvert/internal/trie"
)

func buildValidIndex(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "idx")
	w, err := NewIndexWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	coll := int32(trie.IndexString("zebra"))
	b0 := NewRunBuilder()
	b0.AddList(int(coll), 0, []uint32{0, 3}, []uint32{1, 2})
	if err := w.WriteRun(b0, 0, 4); err != nil {
		t.Fatal(err)
	}
	b1 := NewRunBuilder()
	b1.AddList(int(coll), 0, []uint32{5, 9}, []uint32{1, 1})
	if err := w.WriteRun(b1, 5, 9); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDocLens([]uint32{4, 1, 0, 2, 1, 1, 0, 0, 0, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDocTable([]string{"f0", "f1"}, make([]DocLocation, 10)); err != nil {
		t.Fatal(err)
	}
	dict := []DictEntry{{"zebra", coll, 0}}
	SortDictEntries(dict)
	if err := w.Finish(dict); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyCleanIndex(t *testing.T) {
	dir := buildValidIndex(t)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 || rep.Lists != 2 || rep.Postings != 4 || rep.Terms != 1 {
		t.Errorf("report = %+v", rep)
	}
	if !rep.HasDocLens || !rep.HasDocTable || rep.Docs != 10 {
		t.Errorf("optional files not detected: %+v", rep)
	}
}

func TestVerifyDetectsOrphanDictionaryEntry(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	w, _ := NewIndexWriter(dir)
	coll := int32(trie.IndexString("zebra"))
	b := NewRunBuilder()
	b.AddList(int(coll), 0, []uint32{1}, []uint32{1})
	w.WriteRun(b, 0, 4)
	dict := []DictEntry{{"zebra", coll, 0}, {"zebrb", coll, 1}} // slot 1 has no postings
	SortDictEntries(dict)
	w.Finish(dict)
	if _, err := Verify(dir); err == nil {
		t.Error("orphan dictionary slot must fail verification")
	}
}

func TestVerifyDetectsCorruptRun(t *testing.T) {
	dir := buildValidIndex(t)
	// Flip a byte in the middle of a run's blob.
	path := filepath.Join(dir, "run-00000.post")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Error("corrupt run blob must fail verification")
	}
}

func TestVerifyDetectsDocLensMismatch(t *testing.T) {
	dir := buildValidIndex(t)
	w := &IndexWriter{dir: dir}
	if err := w.WriteDocLens([]uint32{1, 2}); err != nil { // wrong count vs doc table
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Error("doclens/doctable mismatch must fail verification")
	}
}

func TestVerifyDetectsOutOfRangeDoc(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	w, _ := NewIndexWriter(dir)
	coll := int32(trie.IndexString("zebra"))
	b := NewRunBuilder()
	b.AddList(int(coll), 0, []uint32{50}, []uint32{1}) // doc 50 outside [0,4]
	w.WriteRun(b, 0, 4)
	dict := []DictEntry{{"zebra", coll, 0}}
	w.Finish(dict)
	if _, err := Verify(dir); err == nil {
		t.Error("doc outside run range must fail verification")
	}
}
