package store

// crc32Combine computes the IEEE CRC-32 of the concatenation A||B from
// crc(A), crc(B) and len(B), the zlib crc32_combine construction:
// appending len2 zero bytes to A's message multiplies its CRC state by
// x^(8*len2) in GF(2)[x]/P, and that multiplication is a linear map on
// the 32-bit state, applied here by repeated matrix squaring — O(log
// len2) instead of re-reading either buffer. It lets Merge checksum
// the table and the streamed blob independently and splice them.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd gf2Matrix

	// odd = the operator for one zero bit: a shift-down plus the
	// reflected polynomial on carry-out.
	odd[0] = 0xedb88320
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	even.square(&odd) // two zero bits
	odd.square(&even) // four zero bits

	// Apply x^(8*len2) by squaring through the bits of len2; the first
	// pair of iterations lands back on byte granularity.
	for {
		even.square(&odd)
		if len2&1 != 0 {
			crc1 = even.times(crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		odd.square(&even)
		if len2&1 != 0 {
			crc1 = odd.times(crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// gf2Matrix is a 32x32 bit matrix over GF(2), one uint32 per column.
type gf2Matrix [32]uint32

// times multiplies the matrix by a vector.
func (m *gf2Matrix) times(vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i, vec = i+1, vec>>1 {
		if vec&1 != 0 {
			sum ^= m[i]
		}
	}
	return sum
}

// square sets m to src*src.
func (m *gf2Matrix) square(src *gf2Matrix) {
	for i := range m {
		m[i] = src.times(src[i])
	}
}
