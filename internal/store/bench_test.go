package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"fastinvert/internal/trie"
)

func benchLists(n int) (colls []int, slots []int32, docs [][]uint32, tfs [][]uint32) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		colls = append(colls, rng.Intn(17613))
		slots = append(slots, int32(i))
		m := 1 + rng.Intn(64)
		d := make([]uint32, m)
		f := make([]uint32, m)
		cur := uint32(0)
		for j := 0; j < m; j++ {
			cur += uint32(rng.Intn(100)) + 1
			d[j] = cur
			f[j] = uint32(rng.Intn(8)) + 1
		}
		docs = append(docs, d)
		tfs = append(tfs, f)
	}
	return
}

func BenchmarkRunBuild(b *testing.B) {
	colls, slots, docs, tfs := benchLists(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb := NewRunBuilder()
		for j := range colls {
			if err := rb.AddList(colls[j], slots[j], docs[j], tfs[j]); err != nil {
				b.Fatal(err)
			}
		}
		rb.Finalize(0, 1<<30)
	}
}

func BenchmarkRunParse(b *testing.B) {
	colls, slots, docs, tfs := benchLists(2000)
	rb := NewRunBuilder()
	for j := range colls {
		rb.AddList(colls[j], slots[j], docs[j], tfs[j])
	}
	data := rb.Finalize(0, 1<<30)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRun(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDictionaryWrite(b *testing.B) {
	var entries []DictEntry
	for i := 0; i < 5000; i++ {
		entries = append(entries, DictEntry{
			Term:       fmt.Sprintf("term%06d", i),
			Collection: int32(i % 17613),
			Slot:       int32(i),
		})
	}
	SortDictEntries(entries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteDictionary(&buf, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDictionaryRead(b *testing.B) {
	var entries []DictEntry
	for i := 0; i < 5000; i++ {
		entries = append(entries, DictEntry{
			Term:       fmt.Sprintf("term%06d", i),
			Collection: int32(i % 17613),
			Slot:       int32(i),
		})
	}
	SortDictEntries(entries)
	var buf bytes.Buffer
	WriteDictionary(&buf, entries)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadDictionary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchIndex writes a benchIndex-sized multi-run index to a temp
// dir for read-path benchmarks.
func buildBenchIndex(b *testing.B, nRuns, termsPerRun int) (string, []string) {
	b.Helper()
	dir := b.TempDir()
	w, err := NewIndexWriter(dir)
	if err != nil {
		b.Fatal(err)
	}
	var terms []string
	var dict []DictEntry
	for t := 0; t < termsPerRun; t++ {
		term := fmt.Sprintf("term%04d", t)
		terms = append(terms, term)
		dict = append(dict, DictEntry{Term: term, Collection: int32(trie.IndexString(term)), Slot: int32(t)})
	}
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < nRuns; r++ {
		rb := NewRunBuilder()
		base := uint32(r * 1000)
		for t := 0; t < termsPerRun; t++ {
			n := 1 + rng.Intn(32)
			docs := make([]uint32, n)
			tfs := make([]uint32, n)
			cur := base
			for j := 0; j < n; j++ {
				cur += uint32(rng.Intn(20)) + 1
				docs[j] = cur
				tfs[j] = uint32(rng.Intn(5)) + 1
			}
			if err := rb.AddList(trie.IndexString(terms[t]), int32(t), docs, tfs); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.WriteRun(rb, base, base+999); err != nil {
			b.Fatal(err)
		}
	}
	SortDictEntries(dict)
	if err := w.Finish(dict); err != nil {
		b.Fatal(err)
	}
	return dir, terms
}

// BenchmarkPostingsPerRun measures a term fetch assembled from partial
// lists across run files, caching disabled so each op pays real reads.
func BenchmarkPostingsPerRun(b *testing.B) {
	dir, terms := buildBenchIndex(b, 8, 200)
	idx, err := OpenIndexWith(dir, ReaderOptions{CacheBytes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := idx.Postings(terms[i%len(terms)])
		if err != nil || l.Len() == 0 {
			b.Fatalf("postings: %v len=%d", err, l.Len())
		}
	}
}

// BenchmarkPostingsMerged measures the same fetch from the merged file
// — one binary-searched table hit, one pread, one decode.
func BenchmarkPostingsMerged(b *testing.B) {
	dir, terms := buildBenchIndex(b, 8, 200)
	{
		m, err := OpenIndex(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Merge(); err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
	idx, err := OpenIndexWith(dir, ReaderOptions{CacheBytes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	if !idx.MergedActive() {
		b.Fatal("merged not active")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := idx.Postings(terms[i%len(terms)])
		if err != nil || l.Len() == 0 {
			b.Fatalf("postings: %v len=%d", err, l.Len())
		}
	}
}
