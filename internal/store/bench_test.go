package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func benchLists(n int) (colls []int, slots []int32, docs [][]uint32, tfs [][]uint32) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		colls = append(colls, rng.Intn(17613))
		slots = append(slots, int32(i))
		m := 1 + rng.Intn(64)
		d := make([]uint32, m)
		f := make([]uint32, m)
		cur := uint32(0)
		for j := 0; j < m; j++ {
			cur += uint32(rng.Intn(100)) + 1
			d[j] = cur
			f[j] = uint32(rng.Intn(8)) + 1
		}
		docs = append(docs, d)
		tfs = append(tfs, f)
	}
	return
}

func BenchmarkRunBuild(b *testing.B) {
	colls, slots, docs, tfs := benchLists(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb := NewRunBuilder()
		for j := range colls {
			if err := rb.AddList(colls[j], slots[j], docs[j], tfs[j]); err != nil {
				b.Fatal(err)
			}
		}
		rb.Finalize(0, 1<<30)
	}
}

func BenchmarkRunParse(b *testing.B) {
	colls, slots, docs, tfs := benchLists(2000)
	rb := NewRunBuilder()
	for j := range colls {
		rb.AddList(colls[j], slots[j], docs[j], tfs[j])
	}
	data := rb.Finalize(0, 1<<30)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRun(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDictionaryWrite(b *testing.B) {
	var entries []DictEntry
	for i := 0; i < 5000; i++ {
		entries = append(entries, DictEntry{
			Term:       fmt.Sprintf("term%06d", i),
			Collection: int32(i % 17613),
			Slot:       int32(i),
		})
	}
	SortDictEntries(entries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteDictionary(&buf, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDictionaryRead(b *testing.B) {
	var entries []DictEntry
	for i := 0; i < 5000; i++ {
		entries = append(entries, DictEntry{
			Term:       fmt.Sprintf("term%06d", i),
			Collection: int32(i % 17613),
			Slot:       int32(i),
		})
	}
	SortDictEntries(entries)
	var buf bytes.Buffer
	WriteDictionary(&buf, entries)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadDictionary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
