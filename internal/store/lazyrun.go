package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
)

// runReader is the lazy, handle-based view of one run file (or the
// merged file): the header and mapping table are parsed up front, the
// compressed blob stays on disk and individual lists are fetched with
// one positioned read each. This is what bounds reader memory — the
// old path parsed whole run files into RAM and kept them forever.
type runReader struct {
	name     string // file name, for cache keys and error messages
	f        *os.File
	size     int64
	firstDoc uint32
	lastDoc  uint32
	entries  []RunEntry
	blobOff  int64
	lookup   map[uint64]int // (coll<<32|slot) -> entry index
}

// openRunReader opens path, parses the header and table, verifies the
// whole-file CRC with one streaming pass (bounded memory — nothing is
// retained), and leaves the handle open for per-list positioned reads.
// Every structural failure wraps ErrCorruptIndex.
func openRunReader(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := parseRunReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func parseRunReader(f *os.File) (*runReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < runHdrSize {
		return nil, ErrCorruptRun
	}
	var hdr [runHdrSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: short header read", ErrCorruptRun)
	}
	get32 := func(off int) uint32 { return binary.LittleEndian.Uint32(hdr[off:]) }
	ver := get32(4)
	if get32(0) != runMagic || ver < runVersion || ver > runVersionBlocks {
		return nil, ErrCorruptRun
	}
	n := int(get32(8))
	// The count is untrusted: bound it by the bytes available for the
	// table before allocating anything proportional to it. The division
	// form cannot overflow no matter what the header claims.
	if n < 0 || n > int((size-runHdrSize)/entrySize) {
		return nil, ErrCorruptRun
	}
	table := make([]byte, n*entrySize)
	if _, err := f.ReadAt(table, runHdrSize); err != nil {
		return nil, fmt.Errorf("%w: short table read", ErrCorruptRun)
	}
	// One streaming pass verifies the table+blob checksum without
	// holding the blob: a bit flip anywhere past the header is caught
	// here, exactly as the whole-file parse used to catch it.
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, io.NewSectionReader(f, runHdrSize, size-runHdrSize)); err != nil {
		return nil, fmt.Errorf("%w: crc stream: %v", ErrCorruptRun, err)
	}
	if crc.Sum32() != get32(20) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptRun)
	}
	r := &runReader{
		name:     st.Name(),
		f:        f,
		size:     size,
		firstDoc: get32(12),
		lastDoc:  get32(16),
		entries:  make([]RunEntry, n),
		blobOff:  int64(runHdrSize + n*entrySize),
		lookup:   make(map[uint64]int, n),
	}
	blobLen := uint64(size - r.blobOff)
	for i := 0; i < n; i++ {
		off := i * entrySize
		e := RunEntry{
			Collection: binary.LittleEndian.Uint32(table[off:]),
			Slot:       binary.LittleEndian.Uint32(table[off+4:]),
			Offset:     binary.LittleEndian.Uint64(table[off+8:]),
			Length:     binary.LittleEndian.Uint32(table[off+16:]),
			Count:      binary.LittleEndian.Uint32(table[off+20:]),
			Flags:      binary.LittleEndian.Uint32(table[off+24:]),
		}
		if e.Offset+uint64(e.Length) > blobLen || e.Offset+uint64(e.Length) < e.Offset {
			return nil, ErrCorruptRun
		}
		if err := checkEntryCodec(ver, e); err != nil {
			return nil, err
		}
		r.entries[i] = e
		r.lookup[uint64(e.Collection)<<32|uint64(e.Slot)] = i
	}
	return r, nil
}

// find locates the entry for (collection, slot).
func (r *runReader) find(coll uint32, slot uint32) (RunEntry, bool) {
	i, ok := r.lookup[uint64(coll)<<32|uint64(slot)]
	if !ok {
		return RunEntry{}, false
	}
	return r.entries[i], true
}

// readBlob fetches one entry's compressed bytes with a single
// positioned read.
func (r *runReader) readBlob(e RunEntry) ([]byte, error) {
	return r.readBlobInto(e, nil)
}

// readBlobInto is readBlob reusing buf's capacity when it suffices.
// Positioned reads make it safe to call concurrently with distinct
// buffers. The caller must be done with buf's previous contents.
func (r *runReader) readBlobInto(e RunEntry, buf []byte) ([]byte, error) {
	if e.Length == 0 {
		return nil, nil
	}
	if cap(buf) < int(e.Length) {
		buf = make([]byte, e.Length)
	}
	buf = buf[:e.Length]
	if _, err := r.f.ReadAt(buf, r.blobOff+int64(e.Offset)); err != nil {
		return nil, err
	}
	return buf, nil
}

// readBlobRange fills buf with raw blob bytes starting at blob offset
// off, for batched reads spanning several adjacent entries.
func (r *runReader) readBlobRange(off uint64, buf []byte) error {
	_, err := r.f.ReadAt(buf, r.blobOff+int64(off))
	return err
}

func (r *runReader) close() error { return r.f.Close() }

// decodeEntry decodes one entry's blob bytes into a postings list,
// dispatching on the codec ID carried in the entry flags. Blocked
// entries are decoded block by block and concatenated — the shape
// whole-list readers expect; the ranked path uses parseBlockedBlob
// directly to avoid exactly this cost.
func decodeEntry(blob []byte, e RunEntry) (*postings.List, error) {
	if e.Flags&FlagBlocks != 0 {
		return decodeBlockedEntry(blob, e)
	}
	codec, err := encoding.Lookup(e.Codec())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptRun, err)
	}
	var l postings.List
	l.DocIDs, l.TFs, l.Positions, err = codec.Decode(blob, int(e.Count), e.Flags&FlagPositional != 0)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &l, nil
}
