// Package store implements the paper's output formats (§III.F): one
// postings file per run whose header is a mapping table locating each
// partial postings list, an auxiliary file mapping document-ID ranges
// to run files, a front-coded dictionary written once at the end, and
// the optional post-processing merge that combines partial lists into
// a monolithic postings file.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"fastinvert/internal/encoding"
)

// Run-file layout (little-endian):
//
//	magic  u32  "FRIN" (bytes 4e 49 52 46 on disk — a historic
//	            transposition of the intended 'FIRN'; the golden test
//	            pins these exact bytes, so the constant is the format)
//	ver    u32
//	nLists u32
//	first  u32  first global docID covered by this run
//	last   u32  last global docID covered
//	crc    u32  IEEE CRC-32 of table + blob
//	table  nLists x { coll u32, slot u32, off u64, len u32, count u32,
//	                  flags u32 }
//	blob   gap+varbyte-encoded postings (encoding.EncodePostings, or
//	       encoding.EncodePositionalPostings when FlagPositional)
const (
	runMagic   = 0x4652494e // "FRIN"
	runVersion = 3
	// runVersionCodec marks a run whose entries may carry a non-varbyte
	// codec ID in their flags. Files where every list is varbyte are
	// still written as version 3, byte-identical to pre-codec builds,
	// so old readers only fail (with ErrCorruptRun) on files they truly
	// cannot decode.
	runVersionCodec = 4
	runHdrSize      = 24
	entrySize       = 28
)

// Entry flags. Bits 8-15 hold the list's encoding.CodecID; a zero
// codec field is varbyte, which is why version-3 files (no codec
// bits) parse identically through the registry.
const (
	// FlagPositional marks a list encoded with in-document positions.
	FlagPositional uint32 = 1 << 0

	codecShift        = 8
	codecMask  uint32 = 0xff << codecShift
)

// codecFlags returns the flag bits encoding the codec ID.
func codecFlags(id encoding.CodecID) uint32 { return uint32(id) << codecShift }

// RunEntry locates one partial postings list inside a run file.
type RunEntry struct {
	Collection uint32
	Slot       uint32
	Offset     uint64
	Length     uint32
	Count      uint32
	Flags      uint32
}

// Codec extracts the entry's codec ID from its flags.
func (e RunEntry) Codec() encoding.CodecID {
	return encoding.CodecID((e.Flags & codecMask) >> codecShift)
}

// RunBuilder accumulates one run's partial postings lists.
type RunBuilder struct {
	entries  []RunEntry
	blob     []byte
	sel      encoding.Selector
	hasCodec bool // any entry uses a non-varbyte codec -> version 4
}

// NewRunBuilder returns an empty builder writing the legacy varbyte
// format (version-3 files, byte-identical to pre-codec builds).
func NewRunBuilder() *RunBuilder { return &RunBuilder{} }

// NewRunBuilderCodec returns a builder that picks each list's codec
// with sel. The selector must be a pure function of its arguments so
// concurrent builders make identical choices. A nil sel behaves like
// NewRunBuilder.
func NewRunBuilderCodec(sel encoding.Selector) *RunBuilder {
	return &RunBuilder{sel: sel}
}

// addList is the shared append path: select a codec, encode, record
// the codec ID in the entry flags.
func (b *RunBuilder) addList(collection int, slot int32, docIDs, tfs []uint32, positions [][]uint32) error {
	n := len(docIDs)
	if n == 0 {
		return nil
	}
	codec := encoding.VarByteCodec
	if b.sel != nil {
		codec = b.sel(n, docIDs[0], docIDs[n-1], positions != nil)
	}
	off := uint64(len(b.blob))
	blob, err := codec.Encode(b.blob, docIDs, tfs, positions)
	if err != nil {
		return fmt.Errorf("store: list (%d,%d): %w", collection, slot, err)
	}
	b.blob = blob
	flags := codecFlags(codec.ID())
	if positions != nil {
		flags |= FlagPositional
	}
	if codec.ID() != encoding.CodecVarByte {
		b.hasCodec = true
	}
	b.entries = append(b.entries, RunEntry{
		Collection: uint32(collection),
		Slot:       uint32(slot),
		Offset:     off,
		Length:     uint32(uint64(len(b.blob)) - off),
		Count:      uint32(n),
		Flags:      flags,
	})
	return nil
}

// AddList appends one term's partial list (parallel docID/tf slices,
// strictly ascending docIDs). Empty lists are skipped.
func (b *RunBuilder) AddList(collection int, slot int32, docIDs, tfs []uint32) error {
	return b.addList(collection, slot, docIDs, tfs, nil)
}

// AddPositionalList appends one term's positional partial list.
func (b *RunBuilder) AddPositionalList(collection int, slot int32, docIDs, tfs []uint32, positions [][]uint32) error {
	if len(docIDs) > 0 && positions == nil {
		positions = make([][]uint32, len(docIDs))
	}
	return b.addList(collection, slot, docIDs, tfs, positions)
}

// Lists reports how many lists have been added.
func (b *RunBuilder) Lists() int { return len(b.entries) }

// Finalize serializes the run covering the global docID range
// [firstDoc, lastDoc].
func (b *RunBuilder) Finalize(firstDoc, lastDoc uint32) []byte {
	out := make([]byte, 0, runHdrSize+len(b.entries)*entrySize+len(b.blob))
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		out = append(out, u32[:]...)
	}
	ver := uint32(runVersion)
	if b.hasCodec {
		ver = runVersionCodec
	}
	put32(runMagic)
	put32(ver)
	put32(uint32(len(b.entries)))
	put32(firstDoc)
	put32(lastDoc)
	put32(0) // crc placeholder
	var u64 [8]byte
	for _, e := range b.entries {
		put32(e.Collection)
		put32(e.Slot)
		binary.LittleEndian.PutUint64(u64[:], e.Offset)
		out = append(out, u64[:]...)
		put32(e.Length)
		put32(e.Count)
		put32(e.Flags)
	}
	out = append(out, b.blob...)
	binary.LittleEndian.PutUint32(out[20:], crc32.ChecksumIEEE(out[runHdrSize:]))
	return out
}

// Run is a parsed run file.
type Run struct {
	FirstDoc uint32
	LastDoc  uint32
	Entries  []RunEntry
	blob     []byte

	lookup map[uint64]int // (coll<<32|slot) -> entry index
}

// ErrCorruptRun reports a malformed run file. It wraps
// ErrCorruptIndex, so either sentinel matches via errors.Is.
var ErrCorruptRun = fmt.Errorf("corrupt run file: %w", ErrCorruptIndex)

// ParseRun decodes a run file produced by RunBuilder.Finalize.
func ParseRun(data []byte) (*Run, error) {
	if len(data) < runHdrSize {
		return nil, ErrCorruptRun
	}
	get32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	ver := get32(4)
	if get32(0) != runMagic || (ver != runVersion && ver != runVersionCodec) {
		return nil, ErrCorruptRun
	}
	if crc32.ChecksumIEEE(data[runHdrSize:]) != get32(20) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptRun)
	}
	n := int(get32(8))
	// The count is untrusted: bound it by the bytes available for the
	// table before allocating anything proportional to it.
	if n < 0 || runHdrSize+n*entrySize > len(data) {
		return nil, ErrCorruptRun
	}
	r := &Run{
		FirstDoc: get32(12),
		LastDoc:  get32(16),
		Entries:  make([]RunEntry, n),
		lookup:   make(map[uint64]int, n),
	}
	tableEnd := runHdrSize + n*entrySize
	r.blob = data[tableEnd:]
	for i := 0; i < n; i++ {
		off := runHdrSize + i*entrySize
		e := RunEntry{
			Collection: get32(off),
			Slot:       get32(off + 4),
			Offset:     binary.LittleEndian.Uint64(data[off+8:]),
			Length:     get32(off + 16),
			Count:      get32(off + 20),
			Flags:      get32(off + 24),
		}
		if e.Offset+uint64(e.Length) > uint64(len(r.blob)) {
			return nil, ErrCorruptRun
		}
		if err := checkEntryCodec(ver, e); err != nil {
			return nil, err
		}
		r.Entries[i] = e
		r.lookup[uint64(e.Collection)<<32|uint64(e.Slot)] = i
	}
	return r, nil
}

// List decodes the partial list for (collection, slot); ok is false
// when this run holds no postings for the term. Positions of
// positional lists are decoded and discarded; use PositionalList to
// keep them.
func (r *Run) List(collection int, slot int32) (docIDs, tfs []uint32, ok bool, err error) {
	docIDs, tfs, _, ok, err = r.PositionalList(collection, slot)
	return docIDs, tfs, ok, err
}

// PositionalList decodes the partial list with positions (nil
// positions for non-positional entries).
func (r *Run) PositionalList(collection int, slot int32) (docIDs, tfs []uint32, positions [][]uint32, ok bool, err error) {
	i, found := r.lookup[uint64(uint32(collection))<<32|uint64(uint32(slot))]
	if !found {
		return nil, nil, nil, false, nil
	}
	e := r.Entries[i]
	blob := r.blob[e.Offset : e.Offset+uint64(e.Length)]
	codec, err := encoding.Lookup(e.Codec())
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("%w: %v", ErrCorruptRun, err)
	}
	docIDs, tfs, positions, err = codec.Decode(blob, int(e.Count), e.Flags&FlagPositional != 0)
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("store: %w", err)
	}
	return docIDs, tfs, positions, true, nil
}

// checkEntryCodec validates an untrusted entry's codec bits for the
// given run version: version-3 entries must carry none, the codec must
// be registered, and Count must fit the codec's guaranteed minimum
// bytes-per-posting before any decoder trusts it for allocation.
func checkEntryCodec(ver uint32, e RunEntry) error {
	if ver == runVersion && e.Flags&codecMask != 0 {
		return fmt.Errorf("%w: codec bits in version-3 entry", ErrCorruptRun)
	}
	codec, err := encoding.Lookup(e.Codec())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptRun, err)
	}
	if e.Count > 0 && (e.Length == 0 || codec.MinBytes(int(e.Count)) > int(e.Length)) {
		return fmt.Errorf("%w: count exceeds list bytes", ErrCorruptRun)
	}
	return nil
}

// BlobSize reports the compressed postings bytes in the run.
func (r *Run) BlobSize() int { return len(r.blob) }
