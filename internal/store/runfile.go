// Package store implements the paper's output formats (§III.F): one
// postings file per run whose header is a mapping table locating each
// partial postings list, an auxiliary file mapping document-ID ranges
// to run files, a front-coded dictionary written once at the end, and
// the optional post-processing merge that combines partial lists into
// a monolithic postings file.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"fastinvert/internal/encoding"
)

// Run-file layout (little-endian):
//
//	magic  u32  "FRIN" (bytes 4e 49 52 46 on disk — a historic
//	            transposition of the intended 'FIRN'; the golden test
//	            pins these exact bytes, so the constant is the format)
//	ver    u32
//	nLists u32
//	first  u32  first global docID covered by this run
//	last   u32  last global docID covered
//	crc    u32  IEEE CRC-32 of table + blob
//	table  nLists x { coll u32, slot u32, off u64, len u32, count u32,
//	                  flags u32 }
//	blob   gap+varbyte-encoded postings (encoding.EncodePostings, or
//	       encoding.EncodePositionalPostings when FlagPositional)
const (
	runMagic   = 0x4652494e // "FRIN"
	runVersion = 3
	// runVersionCodec marks a run whose entries may carry a non-varbyte
	// codec ID in their flags. Files where every list is varbyte are
	// still written as version 3, byte-identical to pre-codec builds,
	// so old readers only fail (with ErrCorruptRun) on files they truly
	// cannot decode.
	runVersionCodec = 4
	// runVersionBlocks marks a run where some entries carry FlagBlocks:
	// their blobs hold a skip header plus independently decodable
	// fixed-size blocks (see blocks.go). Files without any blocked list
	// keep the version-3/4 decision, byte-identical to pre-block builds.
	runVersionBlocks = 5
	runHdrSize       = 24
	entrySize        = 28
)

// Entry flags. Bits 8-15 hold the list's encoding.CodecID; a zero
// codec field is varbyte, which is why version-3 files (no codec
// bits) parse identically through the registry.
const (
	// FlagPositional marks a list encoded with in-document positions.
	FlagPositional uint32 = 1 << 0

	// FlagBlocks marks a list stored in the blocked layout of
	// blocks.go: skip header + per-block codec bodies. Never combined
	// with FlagPositional, and only valid in version-5 files.
	FlagBlocks uint32 = 1 << 1

	codecShift        = 8
	codecMask  uint32 = 0xff << codecShift
)

// codecFlags returns the flag bits encoding the codec ID.
func codecFlags(id encoding.CodecID) uint32 { return uint32(id) << codecShift }

// EncodedFlags builds the entry flags for AddEncodedList: the codec ID
// in bits 8-15 plus FlagPositional when the blob carries positions.
func EncodedFlags(id encoding.CodecID, positional bool) uint32 {
	f := codecFlags(id)
	if positional {
		f |= FlagPositional
	}
	return f
}

// RunEntry locates one partial postings list inside a run file.
type RunEntry struct {
	Collection uint32
	Slot       uint32
	Offset     uint64
	Length     uint32
	Count      uint32
	Flags      uint32
}

// Codec extracts the entry's codec ID from its flags.
func (e RunEntry) Codec() encoding.CodecID {
	return encoding.CodecID((e.Flags & codecMask) >> codecShift)
}

// RunBuilder accumulates one run's partial postings lists.
type RunBuilder struct {
	entries   []RunEntry
	blob      []byte
	sel       encoding.Selector
	hasCodec  bool // any entry uses a non-varbyte codec -> version 4
	hasBlocks bool // any entry uses the blocked layout -> version 5
	blockMin  int  // blocking threshold; 0 disables blocking
}

// NewRunBuilder returns an empty builder writing the legacy varbyte
// format (version-3 files, byte-identical to pre-codec builds).
func NewRunBuilder() *RunBuilder { return &RunBuilder{} }

// NewRunBuilderCodec returns a builder that picks each list's codec
// with sel. The selector must be a pure function of its arguments so
// concurrent builders make identical choices. A nil sel behaves like
// NewRunBuilder.
func NewRunBuilderCodec(sel encoding.Selector) *RunBuilder {
	return &RunBuilder{sel: sel}
}

// EnableBlocks turns on the blocked layout for long non-positional
// lists (>= blockMinPostings postings): their blobs gain a per-block
// skip table with maxTF impact bounds, and the file is written as
// version 5. Sealed segments and merges enable this; the build
// pipeline's intermediate runs do not, keeping their bytes stable.
func (b *RunBuilder) EnableBlocks() { b.blockMin = blockMinPostings }

// addList is the shared append path: select a codec, encode, record
// the codec ID in the entry flags.
func (b *RunBuilder) addList(collection int, slot int32, docIDs, tfs []uint32, positions [][]uint32) error {
	n := len(docIDs)
	if n == 0 {
		return nil
	}
	codec := encoding.VarByteCodec
	if b.sel != nil {
		codec = b.sel(n, docIDs[0], docIDs[n-1], positions != nil)
	}
	off := uint64(len(b.blob))
	flags := codecFlags(codec.ID())
	var err error
	if blockable(b.blockMin, n, positions != nil) {
		b.blob, err = appendBlockedList(b.blob, codec, docIDs, tfs)
		flags |= FlagBlocks
		b.hasBlocks = true
	} else {
		b.blob, err = codec.Encode(b.blob, docIDs, tfs, positions)
	}
	if err != nil {
		return fmt.Errorf("store: list (%d,%d): %w", collection, slot, err)
	}
	if positions != nil {
		flags |= FlagPositional
	}
	if codec.ID() != encoding.CodecVarByte {
		b.hasCodec = true
	}
	b.entries = append(b.entries, RunEntry{
		Collection: uint32(collection),
		Slot:       uint32(slot),
		Offset:     off,
		Length:     uint32(uint64(len(b.blob)) - off),
		Count:      uint32(n),
		Flags:      flags,
	})
	return nil
}

// AddList appends one term's partial list (parallel docID/tf slices,
// strictly ascending docIDs). Empty lists are skipped.
func (b *RunBuilder) AddList(collection int, slot int32, docIDs, tfs []uint32) error {
	return b.addList(collection, slot, docIDs, tfs, nil)
}

// AddPositionalList appends one term's positional partial list.
func (b *RunBuilder) AddPositionalList(collection int, slot int32, docIDs, tfs []uint32, positions [][]uint32) error {
	if len(docIDs) > 0 && positions == nil {
		positions = make([][]uint32, len(docIDs))
	}
	return b.addList(collection, slot, docIDs, tfs, positions)
}

// AddEncodedList appends one term's partial list from an already
// codec-encoded blob, for producers that encode on their own substrate
// (the GPU indexer encodes device-side and ships bytes, not postings).
// flags carries the codec ID plus optionally FlagPositional; the
// blocked layout is seal/merge-only and is rejected here. The blob is
// validated against the codec's MinBytes floor — the same bound
// readers enforce — so a malformed producer fails at build time, not
// at query time.
func (b *RunBuilder) AddEncodedList(collection int, slot int32, count uint32, flags uint32, blob []byte) error {
	if count == 0 {
		return nil
	}
	if flags&FlagBlocks != 0 {
		return fmt.Errorf("store: encoded list (%d,%d): blocked layout is writer-internal", collection, slot)
	}
	if flags&^(FlagPositional|codecMask) != 0 {
		return fmt.Errorf("store: encoded list (%d,%d): unknown flag bits %#x", collection, slot, flags)
	}
	id := encoding.CodecID((flags & codecMask) >> codecShift)
	codec, err := encoding.Lookup(id)
	if err != nil {
		return fmt.Errorf("store: encoded list (%d,%d): %w", collection, slot, err)
	}
	if len(blob) < codec.MinBytes(int(count)) {
		return fmt.Errorf("store: encoded list (%d,%d): %d bytes below %s floor for %d postings",
			collection, slot, len(blob), codec.Name(), count)
	}
	if id != encoding.CodecVarByte {
		b.hasCodec = true
	}
	off := uint64(len(b.blob))
	b.blob = append(b.blob, blob...)
	b.entries = append(b.entries, RunEntry{
		Collection: uint32(collection),
		Slot:       uint32(slot),
		Offset:     off,
		Length:     uint32(len(blob)),
		Count:      count,
		Flags:      flags,
	})
	return nil
}

// Lists reports how many lists have been added.
func (b *RunBuilder) Lists() int { return len(b.entries) }

// Finalize serializes the run covering the global docID range
// [firstDoc, lastDoc].
func (b *RunBuilder) Finalize(firstDoc, lastDoc uint32) []byte {
	out := make([]byte, 0, runHdrSize+len(b.entries)*entrySize+len(b.blob))
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		out = append(out, u32[:]...)
	}
	ver := uint32(runVersion)
	if b.hasCodec {
		ver = runVersionCodec
	}
	if b.hasBlocks {
		ver = runVersionBlocks
	}
	put32(runMagic)
	put32(ver)
	put32(uint32(len(b.entries)))
	put32(firstDoc)
	put32(lastDoc)
	put32(0) // crc placeholder
	var u64 [8]byte
	for _, e := range b.entries {
		put32(e.Collection)
		put32(e.Slot)
		binary.LittleEndian.PutUint64(u64[:], e.Offset)
		out = append(out, u64[:]...)
		put32(e.Length)
		put32(e.Count)
		put32(e.Flags)
	}
	out = append(out, b.blob...)
	binary.LittleEndian.PutUint32(out[20:], crc32.ChecksumIEEE(out[runHdrSize:]))
	return out
}

// Run is a parsed run file.
type Run struct {
	FirstDoc uint32
	LastDoc  uint32
	Entries  []RunEntry
	blob     []byte

	lookup map[uint64]int // (coll<<32|slot) -> entry index
}

// ErrCorruptRun reports a malformed run file. It wraps
// ErrCorruptIndex, so either sentinel matches via errors.Is.
var ErrCorruptRun = fmt.Errorf("corrupt run file: %w", ErrCorruptIndex)

// ParseRun decodes a run file produced by RunBuilder.Finalize.
func ParseRun(data []byte) (*Run, error) {
	if len(data) < runHdrSize {
		return nil, ErrCorruptRun
	}
	get32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	ver := get32(4)
	if get32(0) != runMagic || ver < runVersion || ver > runVersionBlocks {
		return nil, ErrCorruptRun
	}
	if crc32.ChecksumIEEE(data[runHdrSize:]) != get32(20) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptRun)
	}
	n := int(get32(8))
	// The count is untrusted: bound it by the bytes available for the
	// table before allocating anything proportional to it.
	if n < 0 || runHdrSize+n*entrySize > len(data) {
		return nil, ErrCorruptRun
	}
	r := &Run{
		FirstDoc: get32(12),
		LastDoc:  get32(16),
		Entries:  make([]RunEntry, n),
		lookup:   make(map[uint64]int, n),
	}
	tableEnd := runHdrSize + n*entrySize
	r.blob = data[tableEnd:]
	for i := 0; i < n; i++ {
		off := runHdrSize + i*entrySize
		e := RunEntry{
			Collection: get32(off),
			Slot:       get32(off + 4),
			Offset:     binary.LittleEndian.Uint64(data[off+8:]),
			Length:     get32(off + 16),
			Count:      get32(off + 20),
			Flags:      get32(off + 24),
		}
		if e.Offset+uint64(e.Length) > uint64(len(r.blob)) {
			return nil, ErrCorruptRun
		}
		if err := checkEntryCodec(ver, e); err != nil {
			return nil, err
		}
		r.Entries[i] = e
		r.lookup[uint64(e.Collection)<<32|uint64(e.Slot)] = i
	}
	return r, nil
}

// List decodes the partial list for (collection, slot); ok is false
// when this run holds no postings for the term. Positions of
// positional lists are decoded and discarded; use PositionalList to
// keep them.
func (r *Run) List(collection int, slot int32) (docIDs, tfs []uint32, ok bool, err error) {
	docIDs, tfs, _, ok, err = r.PositionalList(collection, slot)
	return docIDs, tfs, ok, err
}

// PositionalList decodes the partial list with positions (nil
// positions for non-positional entries).
func (r *Run) PositionalList(collection int, slot int32) (docIDs, tfs []uint32, positions [][]uint32, ok bool, err error) {
	i, found := r.lookup[uint64(uint32(collection))<<32|uint64(uint32(slot))]
	if !found {
		return nil, nil, nil, false, nil
	}
	e := r.Entries[i]
	blob := r.blob[e.Offset : e.Offset+uint64(e.Length)]
	if e.Flags&FlagBlocks != 0 {
		l, err := decodeBlockedEntry(blob, e)
		if err != nil {
			return nil, nil, nil, false, err
		}
		return l.DocIDs, l.TFs, nil, true, nil
	}
	codec, err := encoding.Lookup(e.Codec())
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("%w: %v", ErrCorruptRun, err)
	}
	docIDs, tfs, positions, err = codec.Decode(blob, int(e.Count), e.Flags&FlagPositional != 0)
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("store: %w", err)
	}
	return docIDs, tfs, positions, true, nil
}

// checkEntryCodec validates an untrusted entry's codec and layout
// bits for the given run version: version-3 entries must carry none,
// FlagBlocks is version-5-only (and never positional), the codec must
// be registered, and Count must fit the codec's guaranteed minimum
// bytes-per-posting before any decoder trusts it for allocation. The
// minimum holds for blocked blobs too: every registered codec's
// MinBytes is subadditive, so per-block bodies plus the skip header
// can only cost more than one whole-list encoding.
func checkEntryCodec(ver uint32, e RunEntry) error {
	if ver == runVersion && e.Flags&codecMask != 0 {
		return fmt.Errorf("%w: codec bits in version-3 entry", ErrCorruptRun)
	}
	if e.Flags&FlagBlocks != 0 {
		if ver != runVersionBlocks {
			return fmt.Errorf("%w: block flag in version-%d entry", ErrCorruptRun, ver)
		}
		if e.Flags&FlagPositional != 0 {
			return fmt.Errorf("%w: blocked positional entry", ErrCorruptRun)
		}
	}
	codec, err := encoding.Lookup(e.Codec())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptRun, err)
	}
	if e.Count > 0 && (e.Length == 0 || codec.MinBytes(int(e.Count)) > int(e.Length)) {
		return fmt.Errorf("%w: count exceeds list bytes", ErrCorruptRun)
	}
	return nil
}

// BlobSize reports the compressed postings bytes in the run.
func (r *Run) BlobSize() int { return len(r.blob) }
