package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// Merged-file layout: merged.post reuses the run-file format (header,
// mapping table, blob) with the table sorted by (collection, slot) so
// a term lookup is one binary search, one positioned read and one
// decode. The file is only trusted when the versioned sidecar
// merged.json matches it: the sidecar records the format version, the
// exact byte size and the table+blob CRC, all verified at open. Both
// files are written atomically (temp + fsync + rename), so a crash
// mid-merge leaves the previous index fully intact.
const (
	mergedFileName    = "merged.post"
	mergedSidecarName = "merged.json"
	// mergedSidecarVersion gates trust: a sidecar with a different
	// version is ignored and the reader falls back to per-run assembly.
	mergedSidecarVersion = 1
	// mergedSidecarVersionCodec marks a merged file whose entry table
	// carries per-list codec IDs (run format 4). Written only when at
	// least one list is non-varbyte, so all-varbyte merges keep the v1
	// sidecar and stay readable by pre-codec builds.
	mergedSidecarVersionCodec = 2
	// mergedSidecarVersionBlocks marks a merged file holding blocked
	// lists (run format 5, skip tables with per-block maxTF bounds).
	// Written only when at least one list is blocked, so unblocked
	// merges keep the older sidecar versions.
	mergedSidecarVersionBlocks = 3
)

// mergedSidecar is the on-disk merged.json shape.
type mergedSidecar struct {
	Version  int    `json:"version"`
	File     string `json:"file"`
	Size     int64  `json:"size"`
	CRC32    uint32 `json:"crc32"`
	Lists    int    `json:"lists"`
	FirstDoc uint32 `json:"first_doc"`
	LastDoc  uint32 `json:"last_doc"`
	Runs     int    `json:"runs"`
	// Codecs counts lists per codec name (version >= 2 only).
	Codecs map[string]int `json:"codecs,omitempty"`
	// Blocked counts lists in the blocked layout (version >= 3 only).
	Blocked int `json:"blocked_lists,omitempty"`
}

// mergedGen stamps each loaded merged file so reader-cache keys from a
// superseded merge can never alias a re-merged file's lists.
var mergedGen atomic.Uint64

// mergedState is an open, verified merged file.
type mergedState struct {
	rr  *runReader
	key string // generation-stamped cache-key prefix
}

// loadMerged opens and verifies the merged file of an index directory.
// Returns (nil, nil) when no sidecar exists (the index was never
// merged, or was merged by a pre-sidecar version — either way the
// merged file is not trusted). A sidecar that exists but does not
// match the merged file yields a nil state and an error wrapping
// ErrCorruptIndex: OpenIndex records it and falls back to per-run
// assembly, Verify surfaces it.
func loadMerged(dir string) (*mergedState, error) {
	raw, err := os.ReadFile(filepath.Join(dir, mergedSidecarName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var sc mergedSidecar
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, fmt.Errorf("merged sidecar (%v): %w", err, ErrCorruptIndex)
	}
	if sc.Version < mergedSidecarVersion || sc.Version > mergedSidecarVersionBlocks {
		// A future format we do not understand: not corruption, just
		// not trustable. Fall back silently.
		return nil, nil
	}
	if sc.File != mergedFileName {
		return nil, fmt.Errorf("merged sidecar names %q: %w", sc.File, ErrCorruptIndex)
	}
	path := filepath.Join(dir, mergedFileName)
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("merged file missing (%v): %w", err, ErrCorruptIndex)
	}
	if st.Size() != sc.Size {
		return nil, fmt.Errorf("merged file is %d bytes, sidecar says %d: %w",
			st.Size(), sc.Size, ErrCorruptIndex)
	}
	rr, err := openRunReader(path)
	if err != nil {
		return nil, fmt.Errorf("merged: %w", err)
	}
	hdrCRC, err := readRunCRC(rr.f)
	if err != nil {
		rr.close()
		return nil, err
	}
	if hdrCRC != sc.CRC32 || len(rr.entries) != sc.Lists {
		rr.close()
		return nil, fmt.Errorf("merged file does not match sidecar: %w", ErrCorruptIndex)
	}
	// The binary-searched lookup requires the table sorted by
	// (collection, slot); the writer guarantees it, a tampered file
	// might not.
	for i := 1; i < len(rr.entries); i++ {
		p, c := rr.entries[i-1], rr.entries[i]
		if c.Collection < p.Collection ||
			(c.Collection == p.Collection && c.Slot <= p.Slot) {
			rr.close()
			return nil, fmt.Errorf("merged table disorder at entry %d: %w", i, ErrCorruptIndex)
		}
	}
	return &mergedState{
		rr:  rr,
		key: fmt.Sprintf("%s#%d", mergedFileName, mergedGen.Add(1)),
	}, nil
}

// readRunCRC reads the CRC field of an open run-format file.
func readRunCRC(f *os.File) (uint32, error) {
	var b [4]byte
	if _, err := f.ReadAt(b[:], 20); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// find binary-searches the sorted merged table.
func (m *mergedState) find(coll, slot uint32) (RunEntry, bool) {
	es := m.rr.entries
	i := sort.Search(len(es), func(i int) bool {
		if es[i].Collection != coll {
			return es[i].Collection >= coll
		}
		return es[i].Slot >= slot
	})
	if i < len(es) && es[i].Collection == coll && es[i].Slot == slot {
		return es[i], true
	}
	return RunEntry{}, false
}

// MergeStats summarizes one post-processing merge.
type MergeStats struct {
	Lists    int    // merged postings lists (distinct terms with postings)
	Blocked  int    // lists written in the blocked skip-table layout
	Bytes    int64  // total merged.post size
	FirstDoc uint32 // global doc range covered
	LastDoc  uint32
	Runs     int            // source run files combined
	Codecs   map[string]int // lists per codec the selector chose
}

// Merge combines all partial postings lists into the single monolithic
// merged.post file — the paper's optional post-processing step, priced
// at <10% of build time (§III.F). The sorted key space is partitioned
// into contiguous shards and merged by up to GOMAXPROCS workers
// (ReaderOptions.MergeWorkers overrides the bound): each worker runs
// the k-way merge for its shard — one positioned read per run per
// term, concatenate, re-encode — and a single writer drains shards in
// key order, so the output bytes are identical for any worker count.
// A semaphore keeps at most workers+1 shard blobs in memory, so peak
// memory stays O(workers × shard blob) plus the O(terms) tables —
// never the whole index. The file and its versioned sidecar are
// written atomically; on success this reader switches to serving
// lookups from the merged file.
func (r *IndexReader) Merge() (*MergeStats, error) {
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	if err := r.checkClosed(); err != nil {
		return nil, err
	}

	// Source runs in ascending doc order, so same-key partial lists
	// concatenate into globally sorted postings.
	metas := append([]RunMeta(nil), r.runs...)
	sort.SliceStable(metas, func(i, j int) bool { return metas[i].FirstDoc < metas[j].FirstDoc })
	cursors := make([]*mergeCursor, 0, len(metas))
	for _, rm := range metas {
		rr, err := r.runFile(rm)
		if err != nil {
			return nil, err
		}
		c, err := newMergeCursor(rr, nil)
		if err != nil {
			return nil, err
		}
		cursors = append(cursors, c)
	}
	m := &merger{
		cursors: cursors,
		sel:     r.mergeSelect,
		onBytes: func(n uint64) { r.listBytes.Add(n) },
		decode:  r.decodeEntry,
		readErr: r.readErr,
	}
	// A forced-varbyte merge is the legacy-compatible mode; self-tuned
	// merges emit the blocked layout for long lists.
	if r.mergeCodecName != "varbyte" {
		m.blockMin = blockMinPostings
	}
	stats, fileCRC, err := m.writeMergedFile(context.Background(),
		filepath.Join(r.dir, mergedFileName), r.mergeWorkers)
	if err != nil {
		return nil, err
	}
	// Any non-varbyte list forces sidecar version 2, any blocked list
	// version 3; an all-varbyte unblocked merge stays byte-compatible
	// with pre-codec readers.
	scVer := mergedSidecarVersion
	var scCodecs map[string]int
	for name, cnt := range stats.Codecs {
		if name != "varbyte" && cnt > 0 {
			scVer = mergedSidecarVersionCodec
			scCodecs = stats.Codecs
			break
		}
	}
	if stats.Blocked > 0 {
		scVer = mergedSidecarVersionBlocks
		scCodecs = stats.Codecs
	}
	sc := mergedSidecar{
		Version:  scVer,
		File:     mergedFileName,
		Size:     stats.Bytes,
		CRC32:    fileCRC,
		Lists:    stats.Lists,
		FirstDoc: stats.FirstDoc,
		LastDoc:  stats.LastDoc,
		Runs:     len(metas),
		Codecs:   scCodecs,
		Blocked:  stats.Blocked,
	}
	if err := writeSidecar(r.dir, sc); err != nil {
		return nil, err
	}
	syncDir(r.dir)

	// Switch this reader onto the merged path so subsequent lookups go
	// through it; a fresh OpenIndex picks it up via the sidecar.
	mState, err := loadMerged(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reloading merged file: %w", err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		if mState != nil {
			mState.rr.close()
		}
		return nil, ErrClosed
	}
	old := r.merged
	r.merged, r.mergedErr = mState, nil
	r.mu.Unlock()
	if old != nil {
		old.rr.close()
	}
	return stats, nil
}

// writeSidecar atomically persists merged.json.
func writeSidecar(dir string, sc mergedSidecar) error {
	data, err := json.MarshalIndent(sc, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, mergedSidecarName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, mergedSidecarName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames survive a crash; best-effort
// (some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}
