package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
)

// Merged-file layout: merged.post reuses the run-file format (header,
// mapping table, blob) with the table sorted by (collection, slot) so
// a term lookup is one binary search, one positioned read and one
// decode. The file is only trusted when the versioned sidecar
// merged.json matches it: the sidecar records the format version, the
// exact byte size and the table+blob CRC, all verified at open. Both
// files are written atomically (temp + fsync + rename), so a crash
// mid-merge leaves the previous index fully intact.
const (
	mergedFileName    = "merged.post"
	mergedSidecarName = "merged.json"
	// mergedSidecarVersion gates trust: a sidecar with a different
	// version is ignored and the reader falls back to per-run assembly.
	mergedSidecarVersion = 1
	// mergedSidecarVersionCodec marks a merged file whose entry table
	// carries per-list codec IDs (run format 4). Written only when at
	// least one list is non-varbyte, so all-varbyte merges keep the v1
	// sidecar and stay readable by pre-codec builds.
	mergedSidecarVersionCodec = 2
)

// mergedSidecar is the on-disk merged.json shape.
type mergedSidecar struct {
	Version  int    `json:"version"`
	File     string `json:"file"`
	Size     int64  `json:"size"`
	CRC32    uint32 `json:"crc32"`
	Lists    int    `json:"lists"`
	FirstDoc uint32 `json:"first_doc"`
	LastDoc  uint32 `json:"last_doc"`
	Runs     int    `json:"runs"`
	// Codecs counts lists per codec name (version >= 2 only).
	Codecs map[string]int `json:"codecs,omitempty"`
}

// mergedGen stamps each loaded merged file so reader-cache keys from a
// superseded merge can never alias a re-merged file's lists.
var mergedGen atomic.Uint64

// mergedState is an open, verified merged file.
type mergedState struct {
	rr  *runReader
	key string // generation-stamped cache-key prefix
}

// loadMerged opens and verifies the merged file of an index directory.
// Returns (nil, nil) when no sidecar exists (the index was never
// merged, or was merged by a pre-sidecar version — either way the
// merged file is not trusted). A sidecar that exists but does not
// match the merged file yields a nil state and an error wrapping
// ErrCorruptIndex: OpenIndex records it and falls back to per-run
// assembly, Verify surfaces it.
func loadMerged(dir string) (*mergedState, error) {
	raw, err := os.ReadFile(filepath.Join(dir, mergedSidecarName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var sc mergedSidecar
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, fmt.Errorf("merged sidecar (%v): %w", err, ErrCorruptIndex)
	}
	if sc.Version != mergedSidecarVersion && sc.Version != mergedSidecarVersionCodec {
		// A future format we do not understand: not corruption, just
		// not trustable. Fall back silently.
		return nil, nil
	}
	if sc.File != mergedFileName {
		return nil, fmt.Errorf("merged sidecar names %q: %w", sc.File, ErrCorruptIndex)
	}
	path := filepath.Join(dir, mergedFileName)
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("merged file missing (%v): %w", err, ErrCorruptIndex)
	}
	if st.Size() != sc.Size {
		return nil, fmt.Errorf("merged file is %d bytes, sidecar says %d: %w",
			st.Size(), sc.Size, ErrCorruptIndex)
	}
	rr, err := openRunReader(path)
	if err != nil {
		return nil, fmt.Errorf("merged: %w", err)
	}
	hdrCRC, err := readRunCRC(rr.f)
	if err != nil {
		rr.close()
		return nil, err
	}
	if hdrCRC != sc.CRC32 || len(rr.entries) != sc.Lists {
		rr.close()
		return nil, fmt.Errorf("merged file does not match sidecar: %w", ErrCorruptIndex)
	}
	// The binary-searched lookup requires the table sorted by
	// (collection, slot); the writer guarantees it, a tampered file
	// might not.
	for i := 1; i < len(rr.entries); i++ {
		p, c := rr.entries[i-1], rr.entries[i]
		if c.Collection < p.Collection ||
			(c.Collection == p.Collection && c.Slot <= p.Slot) {
			rr.close()
			return nil, fmt.Errorf("merged table disorder at entry %d: %w", i, ErrCorruptIndex)
		}
	}
	return &mergedState{
		rr:  rr,
		key: fmt.Sprintf("%s#%d", mergedFileName, mergedGen.Add(1)),
	}, nil
}

// readRunCRC reads the CRC field of an open run-format file.
func readRunCRC(f *os.File) (uint32, error) {
	var b [4]byte
	if _, err := f.ReadAt(b[:], 20); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// find binary-searches the sorted merged table.
func (m *mergedState) find(coll, slot uint32) (RunEntry, bool) {
	es := m.rr.entries
	i := sort.Search(len(es), func(i int) bool {
		if es[i].Collection != coll {
			return es[i].Collection >= coll
		}
		return es[i].Slot >= slot
	})
	if i < len(es) && es[i].Collection == coll && es[i].Slot == slot {
		return es[i], true
	}
	return RunEntry{}, false
}

// MergeStats summarizes one post-processing merge.
type MergeStats struct {
	Lists    int    // merged postings lists (distinct terms with postings)
	Bytes    int64  // total merged.post size
	FirstDoc uint32 // global doc range covered
	LastDoc  uint32
	Runs     int            // source run files combined
	Codecs   map[string]int // lists per codec the selector chose
}

// mergeCursor is one run's entries in (collection, slot) order. It is
// read-only during the merge: each shard worker keeps its own position
// per run, so the same cursors serve every shard concurrently.
type mergeCursor struct {
	rr      *runReader
	ordered []int // entry indexes sorted by key
}

// keyAt returns the merge key of the i-th entry in key order.
func (c *mergeCursor) keyAt(i int) uint64 {
	e := c.rr.entries[c.ordered[i]]
	return uint64(e.Collection)<<32 | uint64(e.Slot)
}

// runSpan is one run's contiguous blob range covering a shard's keys,
// read with a single positioned read. base is the blob offset of
// buf[0]; entries slice into it by (Offset - base).
type runSpan struct {
	buf  []byte
	base uint64
}

// shardResult is one shard's merged output: the encoded blob for the
// shard's contiguous key range, table entries with offsets relative to
// the shard blob (the writer rebases them), and the shard's doc range.
type shardResult struct {
	entries []RunEntry
	blob    []byte
	first   uint32
	last    uint32
	hasDocs bool
	err     error
}

// mergeShard performs the k-way merge for one contiguous slice of the
// global key list: for each key it reads the partial lists from every
// run holding it (positioned reads are concurrency-safe), concatenates,
// re-encodes and appends to the shard blob. keys must be non-empty.
func (r *IndexReader) mergeShard(cursors []*mergeCursor, keys []uint64) shardResult {
	res := shardResult{first: ^uint32(0)}
	// Per-run position of the first entry at or past the shard's key
	// range; from there each run is walked sequentially, exactly as the
	// serial merge walked it across the whole key space.
	pos := make([]int, len(cursors))
	end := make([]int, len(cursors))
	spans := make([]runSpan, len(cursors))
	lastKey := keys[len(keys)-1]
	for ci, c := range cursors {
		pos[ci] = sort.Search(len(c.ordered), func(i int) bool {
			return c.keyAt(i) >= keys[0]
		})
		end[ci] = pos[ci] + sort.Search(len(c.ordered)-pos[ci], func(i int) bool {
			return c.keyAt(pos[ci]+i) > lastKey
		})
		// Indexers emit lists in key order, so the shard's entries in
		// this run are (near-)contiguous in the blob: read the whole
		// span with one positioned read instead of one read per list.
		// A sparse span (hand-built or reordered run) falls back to
		// per-list reads rather than dragging in unrelated bytes.
		var minOff, maxEnd, sum uint64
		for _, idx := range c.ordered[pos[ci]:end[ci]] {
			e := c.rr.entries[idx]
			if e.Length == 0 {
				continue
			}
			if sum == 0 || e.Offset < minOff {
				minOff = e.Offset
			}
			if e.Offset+uint64(e.Length) > maxEnd {
				maxEnd = e.Offset + uint64(e.Length)
			}
			sum += uint64(e.Length)
		}
		if sum > 0 && maxEnd-minOff <= sum+sum/2+(64<<10) {
			buf := make([]byte, maxEnd-minOff)
			if err := c.rr.readBlobRange(minOff, buf); err != nil {
				res.err = r.readErr(c.rr.name, err)
				return res
			}
			spans[ci] = runSpan{buf: buf, base: minOff}
		}
	}
	var (
		acc     postings.List
		partBuf []byte // reused compressed-bytes buffer (decode copies out)
	)
	for _, key := range keys {
		coll, slot := uint32(key>>32), uint32(key)
		// Reuse docID/tf capacity across keys; Positions stays nil so
		// the plain-vs-positional bookkeeping in Concat is untouched.
		acc = postings.List{DocIDs: acc.DocIDs[:0], TFs: acc.TFs[:0]}
		flags := uint32(0)
		for ci, c := range cursors {
			if pos[ci] >= len(c.ordered) || c.keyAt(pos[ci]) != key {
				continue
			}
			e := c.rr.entries[c.ordered[pos[ci]]]
			pos[ci]++
			var partBlob []byte
			if s := spans[ci]; s.buf != nil && e.Length > 0 {
				partBlob = s.buf[e.Offset-s.base : e.Offset-s.base+uint64(e.Length)]
			} else if e.Length > 0 {
				var err error
				partBlob, err = c.rr.readBlobInto(e, partBuf)
				if err != nil {
					res.err = r.readErr(c.rr.name, err)
					return res
				}
				partBuf = partBlob // keep the grown buffer for the next read
			}
			r.listBytes.Add(uint64(e.Length))
			part, err := r.decodeEntry(partBlob, e)
			if err != nil {
				res.err = fmt.Errorf("store: %s: %w", c.rr.name, err)
				return res
			}
			if err := postings.Concat(&acc, part); err != nil {
				res.err = fmt.Errorf("store: merge (%d,%d): %w", coll, slot, err)
				return res
			}
		}
		if acc.Len() == 0 {
			continue
		}
		// Encode straight into the shard blob: the list's start offset
		// is the blob length before the append, so no per-list scratch
		// copy is needed. The codec choice is a pure function of the
		// list's shape, so every worker count yields identical bytes.
		n := acc.Len()
		codec := encoding.VarByteCodec
		if r.mergeSelect != nil {
			codec = r.mergeSelect(n, acc.DocIDs[0], acc.DocIDs[n-1], acc.Positional())
		}
		var accPos [][]uint32
		if acc.Positional() {
			flags = FlagPositional
			accPos = acc.Positions
		}
		flags |= codecFlags(codec.ID())
		start := len(res.blob)
		var err error
		res.blob, err = codec.Encode(res.blob, acc.DocIDs, acc.TFs, accPos)
		if err != nil {
			res.err = fmt.Errorf("store: merge (%d,%d): %w", coll, slot, err)
			return res
		}
		res.entries = append(res.entries, RunEntry{
			Collection: coll,
			Slot:       slot,
			Offset:     uint64(start),
			Length:     uint32(len(res.blob) - start),
			Count:      uint32(acc.Len()),
			Flags:      flags,
		})
		res.hasDocs = true
		if acc.DocIDs[0] < res.first {
			res.first = acc.DocIDs[0]
		}
		if acc.DocIDs[acc.Len()-1] > res.last {
			res.last = acc.DocIDs[acc.Len()-1]
		}
	}
	return res
}

// Merge combines all partial postings lists into the single monolithic
// merged.post file — the paper's optional post-processing step, priced
// at <10% of build time (§III.F). The sorted key space is partitioned
// into contiguous shards and merged by up to GOMAXPROCS workers
// (ReaderOptions.MergeWorkers overrides the bound): each worker runs
// the k-way merge for its shard — one positioned read per run per
// term, concatenate, re-encode — and a single writer drains shards in
// key order, so the output bytes are identical for any worker count.
// A semaphore keeps at most workers+1 shard blobs in memory, so peak
// memory stays O(workers × shard blob) plus the O(terms) tables —
// never the whole index. The file and its versioned sidecar are
// written atomically; on success this reader switches to serving
// lookups from the merged file.
func (r *IndexReader) Merge() (*MergeStats, error) {
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	if err := r.checkClosed(); err != nil {
		return nil, err
	}

	// Source runs in ascending doc order, so same-key partial lists
	// concatenate into globally sorted postings.
	metas := append([]RunMeta(nil), r.runs...)
	sort.SliceStable(metas, func(i, j int) bool { return metas[i].FirstDoc < metas[j].FirstDoc })
	cursors := make([]*mergeCursor, 0, len(metas))
	nLists := 0
	for _, rm := range metas {
		rr, err := r.runFile(rm)
		if err != nil {
			return nil, err
		}
		ordered := make([]int, len(rr.entries))
		for i := range ordered {
			ordered[i] = i
		}
		sort.Slice(ordered, func(a, b int) bool {
			ea, eb := rr.entries[ordered[a]], rr.entries[ordered[b]]
			if ea.Collection != eb.Collection {
				return ea.Collection < eb.Collection
			}
			return ea.Slot < eb.Slot
		})
		cursors = append(cursors, &mergeCursor{rr: rr, ordered: ordered})
		nLists += len(rr.entries)
	}
	// Distinct merged keys, known before any blob is read: the table
	// region can be sized and reserved up front.
	keys := make([]uint64, 0, nLists)
	for _, c := range cursors {
		for _, i := range c.ordered {
			e := c.rr.entries[i]
			keys = append(keys, uint64(e.Collection)<<32|uint64(e.Slot))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	keys = dedupeSorted(keys)

	tmpPath := filepath.Join(r.dir, mergedFileName+".tmp")
	f, err := os.Create(tmpPath)
	if err != nil {
		return nil, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmpPath)
		}
	}()

	// Reserve header + table, stream the blob behind them, then patch
	// the table and CRC once every offset is known.
	tableSize := len(keys) * entrySize
	if _, err := f.Write(make([]byte, runHdrSize+tableSize)); err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	var (
		entries = make([]RunEntry, 0, len(keys))
		blobOff uint64
		first   = ^uint32(0)
		last    uint32
		// blobCRC accumulates while the blob streams out; combined with
		// the table CRC below, it replaces the old second full read of
		// merged.post just to checksum it.
		blobCRC = crc32.NewIEEE()
	)
	if len(keys) > 0 {
		workers := r.mergeWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(keys) {
			workers = len(keys)
		}
		// A few shards per worker for load balance; the writer drains
		// them strictly in key order so the file bytes never depend on
		// scheduling.
		nShards := workers * 4
		if nShards > len(keys) {
			nShards = len(keys)
		}
		resCh := make([]chan shardResult, nShards)
		for i := range resCh {
			resCh[i] = make(chan shardResult, 1)
		}
		// The semaphore bounds shard blobs in flight to workers+1.
		// Tokens are acquired before a shard index is claimed, so the
		// lowest undrained shard is always either claimed by a
		// token-holding worker or claimable — no deadlock.
		sem := make(chan struct{}, workers+1)
		var nextShard atomic.Int64
		var aborted atomic.Bool
		for w := 0; w < workers; w++ {
			go func() {
				for {
					sem <- struct{}{}
					s := int(nextShard.Add(1)) - 1
					if s >= nShards {
						<-sem
						return
					}
					if aborted.Load() {
						resCh[s] <- shardResult{}
						continue
					}
					lo, hi := s*len(keys)/nShards, (s+1)*len(keys)/nShards
					resCh[s] <- r.mergeShard(cursors, keys[lo:hi])
				}
			}()
		}
		var workerErr error
		for s := 0; s < nShards; s++ {
			res := <-resCh[s]
			<-sem
			if workerErr != nil {
				continue
			}
			if res.err != nil {
				workerErr = res.err
				aborted.Store(true)
				continue
			}
			if _, err := bw.Write(res.blob); err != nil {
				workerErr = err
				aborted.Store(true)
				continue
			}
			blobCRC.Write(res.blob) //nolint:errcheck // hash writes cannot fail
			for _, e := range res.entries {
				e.Offset += blobOff
				entries = append(entries, e)
			}
			blobOff += uint64(len(res.blob))
			if res.hasDocs {
				if res.first < first {
					first = res.first
				}
				if res.last > last {
					last = res.last
				}
			}
		}
		if workerErr != nil {
			return nil, workerErr
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if first == ^uint32(0) {
		first = 0
	}

	// Patch the header and table in place. Empty keys (present in some
	// run table but holding zero postings) never occur — AddList skips
	// empty lists — so len(entries) == len(keys); assert anyway and
	// shrink the reservation if a key produced nothing.
	if len(entries) != len(keys) {
		if err := f.Truncate(0); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("store: merge produced %d lists for %d keys", len(entries), len(keys))
	}
	// Codec histogram decides the format version: any non-varbyte list
	// forces run format 4 and sidecar version 2; an all-varbyte merge
	// stays byte-compatible with pre-codec readers.
	codecCounts := make(map[string]int)
	hasCodec := false
	for _, e := range entries {
		c, err := encoding.Lookup(e.Codec())
		if err != nil {
			return nil, fmt.Errorf("store: merge: %w", err)
		}
		codecCounts[c.Name()]++
		if c.ID() != encoding.CodecVarByte {
			hasCodec = true
		}
	}
	ver := uint32(runVersion)
	scVer := mergedSidecarVersion
	var scCodecs map[string]int
	if hasCodec {
		ver = runVersionCodec
		scVer = mergedSidecarVersionCodec
		scCodecs = codecCounts
	}
	hdrTable := make([]byte, runHdrSize+tableSize)
	binary.LittleEndian.PutUint32(hdrTable[0:], runMagic)
	binary.LittleEndian.PutUint32(hdrTable[4:], ver)
	binary.LittleEndian.PutUint32(hdrTable[8:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(hdrTable[12:], first)
	binary.LittleEndian.PutUint32(hdrTable[16:], last)
	// CRC patched below once the table bytes are final.
	for i, e := range entries {
		off := runHdrSize + i*entrySize
		binary.LittleEndian.PutUint32(hdrTable[off:], e.Collection)
		binary.LittleEndian.PutUint32(hdrTable[off+4:], e.Slot)
		binary.LittleEndian.PutUint64(hdrTable[off+8:], e.Offset)
		binary.LittleEndian.PutUint32(hdrTable[off+16:], e.Length)
		binary.LittleEndian.PutUint32(hdrTable[off+20:], e.Count)
		binary.LittleEndian.PutUint32(hdrTable[off+24:], e.Flags)
	}
	if _, err := f.WriteAt(hdrTable, 0); err != nil {
		return nil, err
	}
	size := int64(len(hdrTable)) + int64(blobOff)
	// The file CRC covers table + blob. The blob half accumulated while
	// streaming; crc32Combine splices the table CRC in front of it
	// without re-reading a byte of merged.post.
	fileCRC := crc32Combine(crc32.ChecksumIEEE(hdrTable[runHdrSize:]), blobCRC.Sum32(), int64(blobOff))
	var crcBytes [4]byte
	binary.LittleEndian.PutUint32(crcBytes[:], fileCRC)
	if _, err := f.WriteAt(crcBytes[:], 20); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmpPath)
		return nil, err
	}
	f = nil // disarm the cleanup defer
	finalPath := filepath.Join(r.dir, mergedFileName)
	if err := os.Rename(tmpPath, finalPath); err != nil {
		os.Remove(tmpPath)
		return nil, err
	}
	sc := mergedSidecar{
		Version:  scVer,
		File:     mergedFileName,
		Size:     size,
		CRC32:    fileCRC,
		Lists:    len(entries),
		FirstDoc: first,
		LastDoc:  last,
		Runs:     len(metas),
		Codecs:   scCodecs,
	}
	if err := writeSidecar(r.dir, sc); err != nil {
		return nil, err
	}
	syncDir(r.dir)

	// Switch this reader onto the merged path so subsequent lookups go
	// through it; a fresh OpenIndex picks it up via the sidecar.
	stats := &MergeStats{
		Lists:    len(entries),
		Bytes:    size,
		FirstDoc: first,
		LastDoc:  last,
		Runs:     len(metas),
		Codecs:   codecCounts,
	}
	m, err := loadMerged(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reloading merged file: %w", err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		if m != nil {
			m.rr.close()
		}
		return nil, ErrClosed
	}
	old := r.merged
	r.merged, r.mergedErr = m, nil
	r.mu.Unlock()
	if old != nil {
		old.rr.close()
	}
	return stats, nil
}

// writeSidecar atomically persists merged.json.
func writeSidecar(dir string, sc mergedSidecar) error {
	data, err := json.MarshalIndent(sc, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, mergedSidecarName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, mergedSidecarName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames survive a crash; best-effort
// (some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}

// dedupeSorted removes adjacent duplicates in place.
func dedupeSorted(keys []uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}
