package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// VerifyReport summarizes an index integrity check.
type VerifyReport struct {
	Runs          int
	Lists         int
	Postings      int64
	Terms         int
	Docs          int // from the doc table, 0 when absent
	HasDocLens    bool
	HasDocTable   bool
	MergedPresent bool
}

// Verify checks the structural integrity of a built index directory:
// every run file parses, every partial list decodes with strictly
// ascending docIDs inside the run's declared doc range, run doc ranges
// are disjoint and ascending, every dictionary entry's (collection,
// slot) appears in at least one run (unless it only occurred in runs
// that were discarded — impossible for engine-built indexes), the
// dictionary is canonically ordered, and the optional doc-length/
// doc-table files are consistent with each other.
func Verify(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{}
	r, err := OpenIndex(dir)
	if err != nil {
		return nil, err
	}
	rep.Terms = r.Terms()

	// Dictionary order and uniqueness.
	for i := 1; i < len(r.dict); i++ {
		p, c := r.dict[i-1], r.dict[i]
		if c.Collection < p.Collection ||
			(c.Collection == p.Collection && c.Term <= p.Term) {
			return rep, fmt.Errorf("store: dictionary disorder at entry %d (%q)", i, c.Term)
		}
	}
	known := make(map[uint64]bool, len(r.dict))
	for _, e := range r.dict {
		known[uint64(uint32(e.Collection))<<32|uint64(uint32(e.Slot))] = true
	}

	seen := make(map[uint64]bool, len(r.dict))
	var prevLast uint32
	for i, rm := range r.runs {
		if i > 0 && rm.FirstDoc <= prevLast && !(rm.FirstDoc == 0 && prevLast == 0) {
			return rep, fmt.Errorf("store: run %s doc range overlaps previous", rm.File)
		}
		prevLast = rm.LastDoc
		run, err := r.run(rm)
		if err != nil {
			return rep, err
		}
		rep.Runs++
		for _, e := range run.Entries {
			docIDs, _, ok, err := run.List(int(e.Collection), int32(e.Slot))
			if err != nil || !ok {
				return rep, fmt.Errorf("store: %s list (%d,%d): %v", rm.File, e.Collection, e.Slot, err)
			}
			for j, d := range docIDs {
				if j > 0 && d <= docIDs[j-1] {
					return rep, fmt.Errorf("store: %s list (%d,%d) unsorted", rm.File, e.Collection, e.Slot)
				}
				if d < rm.FirstDoc || d > rm.LastDoc {
					return rep, fmt.Errorf("store: %s doc %d outside range [%d,%d]",
						rm.File, d, rm.FirstDoc, rm.LastDoc)
				}
			}
			rep.Lists++
			rep.Postings += int64(len(docIDs))
			seen[uint64(e.Collection)<<32|uint64(e.Slot)] = true
		}
	}
	for key := range known {
		if !seen[key] {
			return rep, fmt.Errorf("store: dictionary slot (%d,%d) has no postings in any run",
				uint32(key>>32), uint32(key))
		}
	}
	for key := range seen {
		if !known[key] {
			return rep, fmt.Errorf("store: postings for unknown slot (%d,%d)",
				uint32(key>>32), uint32(key))
		}
	}

	// Optional files.
	rep.HasDocLens = r.docLens != nil
	rep.HasDocTable = r.docLocs != nil
	rep.Docs = len(r.docLocs)
	if rep.HasDocLens && rep.HasDocTable && len(r.docLens) != len(r.docLocs) {
		return rep, fmt.Errorf("store: doclens (%d) and doctable (%d) disagree",
			len(r.docLens), len(r.docLocs))
	}
	if _, err := os.Stat(filepath.Join(dir, "merged.post")); err == nil {
		rep.MergedPresent = true
	}
	return rep, nil
}
