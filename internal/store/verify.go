package store

import (
	"fmt"

	"fastinvert/internal/encoding"
)

// VerifyReport summarizes an index integrity check.
type VerifyReport struct {
	Runs        int
	Lists       int
	Postings    int64
	Terms       int
	Docs        int // from the doc table, 0 when absent
	HasDocLens  bool
	HasDocTable bool
	// MergedPresent reports a merged file that is recorded by its
	// sidecar AND passed validation (size, CRC, table order). A torn or
	// tampered merged file fails Verify with ErrCorruptIndex instead.
	MergedPresent bool
	MergedLists   int // lists in the validated merged file, 0 when absent
	// MergedCodecs counts merged lists per codec name, nil when no
	// merged file is present.
	MergedCodecs map[string]int
}

// Verify checks the structural integrity of a built index directory:
// every run file parses with a valid checksum, every partial list
// decodes with strictly ascending docIDs inside the run's declared doc
// range, run doc ranges are disjoint and ascending, every dictionary
// entry's (collection, slot) appears in at least one run (unless it
// only occurred in runs that were discarded — impossible for
// engine-built indexes), the dictionary is canonically ordered, and
// the optional doc-length/doc-table files are consistent with each
// other. When a merged sidecar exists the merged file must validate
// and agree with the runs: same keys, same per-key posting counts,
// sorted lists.
func Verify(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{}
	r, err := OpenIndex(dir)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	rep.Terms = r.Terms()

	// A sidecar that exists but whose merged file fails validation is
	// corruption, even though the reader itself degrades to per-run
	// assembly.
	if err := r.MergedErr(); err != nil {
		return rep, err
	}

	// Dictionary order and uniqueness.
	for i := 1; i < len(r.dict); i++ {
		p, c := r.dict[i-1], r.dict[i]
		if c.Collection < p.Collection ||
			(c.Collection == p.Collection && c.Term <= p.Term) {
			return rep, fmt.Errorf("store: dictionary disorder at entry %d (%q)", i, c.Term)
		}
	}
	known := make(map[uint64]bool, len(r.dict))
	for _, e := range r.dict {
		known[uint64(uint32(e.Collection))<<32|uint64(uint32(e.Slot))] = true
	}

	counts := make(map[uint64]int64, len(r.dict)) // per-key postings across runs
	var prevLast uint32
	for i, rm := range r.runs {
		if i > 0 && rm.FirstDoc <= prevLast && !(rm.FirstDoc == 0 && prevLast == 0) {
			return rep, fmt.Errorf("store: run %s doc range overlaps previous", rm.File)
		}
		prevLast = rm.LastDoc
		rr, err := r.runFile(rm)
		if err != nil {
			return rep, err
		}
		rep.Runs++
		for _, e := range rr.entries {
			blob, err := rr.readBlob(e)
			if err != nil {
				return rep, r.readErr(rm.File, err)
			}
			l, err := decodeEntry(blob, e)
			if err != nil {
				return rep, fmt.Errorf("store: %s list (%d,%d): %v", rm.File, e.Collection, e.Slot, err)
			}
			docIDs := l.DocIDs
			for j, d := range docIDs {
				if j > 0 && d <= docIDs[j-1] {
					return rep, fmt.Errorf("store: %s list (%d,%d) unsorted", rm.File, e.Collection, e.Slot)
				}
				if d < rm.FirstDoc || d > rm.LastDoc {
					return rep, fmt.Errorf("store: %s doc %d outside range [%d,%d]",
						rm.File, d, rm.FirstDoc, rm.LastDoc)
				}
			}
			rep.Lists++
			rep.Postings += int64(len(docIDs))
			counts[uint64(e.Collection)<<32|uint64(e.Slot)] += int64(len(docIDs))
		}
	}
	for key := range known {
		if counts[key] == 0 {
			return rep, fmt.Errorf("store: dictionary slot (%d,%d) has no postings in any run",
				uint32(key>>32), uint32(key))
		}
	}
	for key := range counts {
		if !known[key] {
			return rep, fmt.Errorf("store: postings for unknown slot (%d,%d)",
				uint32(key>>32), uint32(key))
		}
	}

	// Merged file: already size/CRC/order-validated at open; check it
	// agrees with the runs list for list.
	if r.MergedActive() {
		r.mu.Lock()
		m := r.merged
		r.mu.Unlock()
		if len(m.rr.entries) != len(counts) {
			return rep, fmt.Errorf("store: merged file has %d lists, runs have %d keys: %w",
				len(m.rr.entries), len(counts), ErrCorruptIndex)
		}
		rep.MergedCodecs = make(map[string]int)
		for _, e := range m.rr.entries {
			key := uint64(e.Collection)<<32 | uint64(e.Slot)
			if counts[key] != int64(e.Count) {
				return rep, fmt.Errorf("store: merged list (%d,%d) has %d postings, runs have %d: %w",
					e.Collection, e.Slot, e.Count, counts[key], ErrCorruptIndex)
			}
			blob, err := m.rr.readBlob(e)
			if err != nil {
				return rep, r.readErr(m.rr.name, err)
			}
			l, err := decodeEntry(blob, e)
			if err != nil {
				return rep, fmt.Errorf("store: merged list (%d,%d): %v", e.Collection, e.Slot, err)
			}
			if c, err := encoding.Lookup(e.Codec()); err == nil {
				rep.MergedCodecs[c.Name()]++
			}
			for j := 1; j < len(l.DocIDs); j++ {
				if l.DocIDs[j] <= l.DocIDs[j-1] {
					return rep, fmt.Errorf("store: merged list (%d,%d) unsorted: %w",
						e.Collection, e.Slot, ErrCorruptIndex)
				}
			}
		}
		rep.MergedPresent = true
		rep.MergedLists = len(m.rr.entries)
	}

	// Optional files.
	rep.HasDocLens = r.docLens != nil
	rep.HasDocTable = r.docLocs != nil
	rep.Docs = len(r.docLocs)
	if rep.HasDocLens && rep.HasDocTable && len(r.docLens) != len(r.docLocs) {
		return rep, fmt.Errorf("store: doclens (%d) and doctable (%d) disagree",
			len(r.docLens), len(r.docLocs))
	}
	return rep, nil
}
