package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fastinvert/internal/postings"
)

// listKey identifies one decoded postings list in the reader cache:
// the blob it was read from (a run file name, or the merged file's
// generation-stamped name) plus the (collection, slot) pair.
type listKey struct {
	file string
	coll uint32
	slot uint32
}

// listCache is the reader-level byte-budgeted LRU of decoded postings
// lists. Together with the lazy per-list reads it bounds the reader's
// resident set: tables are O(terms) metadata, and decoded postings
// never exceed the cache budget plus the single list in flight.
//
// Cached *postings.List values are shared between callers and MUST be
// treated as immutable.
type listCache struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[listKey]*list.Element
	lru     list.List // front = most recently used
	bytes   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type listCacheEntry struct {
	key  listKey
	list *postings.List
	size int64
}

// newListCache builds a cache holding at most maxBytes of decoded
// postings. maxBytes <= 0 selects the 32 MiB default; pass 1 to
// effectively disable caching (every list is larger than the budget).
func newListCache(maxBytes int64) *listCache {
	if maxBytes <= 0 {
		maxBytes = 32 << 20
	}
	return &listCache{
		maxBytes: maxBytes,
		entries:  make(map[listKey]*list.Element),
	}
}

// get returns the cached list, marking it most recently used.
func (c *listCache) get(key listKey) (*postings.List, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	l := el.Value.(*listCacheEntry).list
	c.mu.Unlock()
	c.hits.Add(1)
	return l, true
}

// put inserts (or refreshes) a decoded list, evicting least recently
// used entries until the cache fits its byte budget. Lists larger than
// the whole budget are not admitted.
func (c *listCache) put(key listKey, l *postings.List) {
	size := listSizeBytes(l)
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*listCacheEntry)
		c.bytes += size - e.size
		e.list, e.size = l, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&listCacheEntry{key: key, list: l, size: size})
		c.bytes += size
	}
	evicted := uint64(0)
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		e := back.Value.(*listCacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		evicted++
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// purge drops every entry (Close, or re-merge invalidation).
func (c *listCache) purge() {
	c.mu.Lock()
	c.entries = make(map[listKey]*list.Element)
	c.lru.Init()
	c.bytes = 0
	c.mu.Unlock()
}

// occupancy reports resident bytes and entry count.
func (c *listCache) occupancy() (bytes int64, entries int) {
	c.mu.Lock()
	bytes, entries = c.bytes, len(c.entries)
	c.mu.Unlock()
	return bytes, entries
}

// listSizeBytes estimates the resident size of a decoded list: 4 bytes
// per docID, TF and position, plus slice headers.
func listSizeBytes(l *postings.List) int64 {
	const sliceHdr = 24
	size := int64(3*sliceHdr) + int64(len(l.DocIDs))*4 + int64(len(l.TFs))*4
	for _, ps := range l.Positions {
		size += sliceHdr + int64(len(ps))*4
	}
	return size
}
