package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/telemetry"
	"fastinvert/internal/trie"
)

// IndexWriter manages an output directory: numbered run files, the
// docID-range auxiliary map, and the dictionary written at the end.
type IndexWriter struct {
	dir    string
	runs   []RunMeta
	closed bool
}

// RunMeta is one row of the auxiliary docID -> file map ("an auxiliary
// file containing the mapping of document IDs to output file names",
// §III.F).
type RunMeta struct {
	File     string `json:"file"`
	FirstDoc uint32 `json:"first_doc"`
	LastDoc  uint32 `json:"last_doc"`
	Lists    int    `json:"lists"`
	Bytes    int64  `json:"bytes"`
}

// NewIndexWriter creates (or reuses) an output directory.
func NewIndexWriter(dir string) (*IndexWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &IndexWriter{dir: dir}, nil
}

// Dir returns the output directory.
func (w *IndexWriter) Dir() string { return w.dir }

// WriteRun persists one finalized run and records its doc range.
func (w *IndexWriter) WriteRun(b *RunBuilder, firstDoc, lastDoc uint32) error {
	name := fmt.Sprintf("run-%05d.post", len(w.runs))
	data := b.Finalize(firstDoc, lastDoc)
	if err := os.WriteFile(filepath.Join(w.dir, name), data, 0o644); err != nil {
		return err
	}
	w.runs = append(w.runs, RunMeta{
		File:     name,
		FirstDoc: firstDoc,
		LastDoc:  lastDoc,
		Lists:    b.Lists(),
		Bytes:    int64(len(data)),
	})
	return nil
}

// WriteDocLens persists per-document lengths (surviving tokens per
// docID, dense from 0), enabling BM25 length normalization at query
// time. Call before Finish; the file is optional for readers.
func (w *IndexWriter) WriteDocLens(lens []uint32) error {
	buf := make([]byte, 0, 8+len(lens))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], docLensMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(lens)))
	buf = append(buf, hdr[:]...)
	for _, l := range lens {
		buf = encoding.PutUvarByte(buf, uint64(l))
	}
	return os.WriteFile(filepath.Join(w.dir, "doclens.bin"), buf, 0o644)
}

const docLensMagic = 0x4649444c // "FIDL"

// DocLocation records where a document lives in the source collection
// — the parser Step 1 table of <document ID, document location on
// disk> (§III.C). FileIdx indexes the names table written alongside.
type DocLocation struct {
	FileIdx uint32
	Offset  uint32
	Length  uint32
}

const docTableMagic = 0x46494454 // "FIDT"

// WriteDocTable persists the docID -> source-location table: a file
// name table followed by per-document (file, offset, length) triples,
// dense from docID 0. Call before Finish; optional for readers.
func (w *IndexWriter) WriteDocTable(fileNames []string, locs []DocLocation) error {
	buf := make([]byte, 0, 12+len(locs)*6)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], docTableMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(fileNames)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(locs)))
	buf = append(buf, hdr[:]...)
	for _, name := range fileNames {
		buf = encoding.PutUvarByte(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	for _, l := range locs {
		buf = encoding.PutUvarByte(buf, uint64(l.FileIdx))
		buf = encoding.PutUvarByte(buf, uint64(l.Offset))
		buf = encoding.PutUvarByte(buf, uint64(l.Length))
	}
	return os.WriteFile(filepath.Join(w.dir, "doctable.bin"), buf, 0o644)
}

// parseDocTable decodes doctable.bin bytes. The u32 header counts are
// untrusted: every name costs at least one byte and every doc row at
// least three, so counts are bounded by the remaining file size before
// anything proportional to them is allocated — an 8-byte corrupt file
// must not demand gigabytes.
func parseDocTable(data []byte) (names []string, locs []DocLocation, err error) {
	if len(data) < 12 || binary.LittleEndian.Uint32(data) != docTableMagic {
		return nil, nil, fmt.Errorf("doc table header: %w", ErrCorruptIndex)
	}
	nNames := int(binary.LittleEndian.Uint32(data[4:]))
	nDocs := int(binary.LittleEndian.Uint32(data[8:]))
	rest := len(data) - 12
	if nNames < 0 || nNames > rest {
		return nil, nil, fmt.Errorf("doc table claims %d names in %d bytes: %w", nNames, rest, ErrCorruptIndex)
	}
	if nDocs < 0 || nDocs > rest/3 {
		return nil, nil, fmt.Errorf("doc table claims %d docs in %d bytes: %w", nDocs, rest, ErrCorruptIndex)
	}
	pos := 12
	read := func() (uint64, bool) {
		v, m := encoding.UvarByte(data[pos:])
		if m <= 0 {
			return 0, false
		}
		pos += m
		return v, true
	}
	for i := 0; i < nNames; i++ {
		n, ok := read()
		if !ok || n > uint64(len(data)) || pos+int(n) > len(data) {
			return nil, nil, fmt.Errorf("doc table names: %w", ErrCorruptIndex)
		}
		names = append(names, string(data[pos:pos+int(n)]))
		pos += int(n)
	}
	locs = make([]DocLocation, nDocs)
	for i := 0; i < nDocs; i++ {
		fi, ok1 := read()
		off, ok2 := read()
		ln, ok3 := read()
		if !ok1 || !ok2 || !ok3 || int(fi) >= nNames {
			return nil, nil, fmt.Errorf("doc table rows: %w", ErrCorruptIndex)
		}
		locs[i] = DocLocation{uint32(fi), uint32(off), uint32(ln)}
	}
	return names, locs, nil
}

// readDocTable loads the optional doc table.
func readDocTable(dir string) (names []string, locs []DocLocation, err error) {
	data, err := os.ReadFile(filepath.Join(dir, "doctable.bin"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	return parseDocTable(data)
}

// parseDocLens decodes doclens.bin bytes. Like parseDocTable, the
// header count is checked against the remaining size (one byte per
// entry minimum) before the slice is allocated.
func parseDocLens(data []byte) ([]uint32, error) {
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != docLensMagic {
		return nil, fmt.Errorf("doclens header: %w", ErrCorruptIndex)
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if n < 0 || n > len(data)-8 {
		return nil, fmt.Errorf("doclens claims %d entries in %d bytes: %w", n, len(data)-8, ErrCorruptIndex)
	}
	lens := make([]uint32, n)
	pos := 8
	for i := 0; i < n; i++ {
		v, m := encoding.UvarByte(data[pos:])
		if m <= 0 {
			return nil, fmt.Errorf("doclens entries: %w", ErrCorruptIndex)
		}
		lens[i] = uint32(v)
		pos += m
	}
	return lens, nil
}

// readDocLens loads the optional document-length file.
func readDocLens(dir string) ([]uint32, error) {
	data, err := os.ReadFile(filepath.Join(dir, "doclens.bin"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return parseDocLens(data)
}

// parseDocMap decodes docmap.json bytes and validates each row: run
// file names must be plain names inside the index directory (no
// separators, no traversal), doc ranges must be ordered, counts
// non-negative. A hostile docmap must not make the reader open
// arbitrary paths.
func parseDocMap(raw []byte) ([]RunMeta, error) {
	var runs []RunMeta
	if err := json.Unmarshal(raw, &runs); err != nil {
		return nil, fmt.Errorf("docmap (%v): %w", err, ErrCorruptIndex)
	}
	for i, rm := range runs {
		if rm.File == "" || rm.File == "." || rm.File == ".." || rm.File != filepath.Base(rm.File) {
			return nil, fmt.Errorf("docmap run %d: bad file name %q: %w", i, rm.File, ErrCorruptIndex)
		}
		if rm.LastDoc < rm.FirstDoc {
			return nil, fmt.Errorf("docmap run %d: doc range [%d,%d]: %w", i, rm.FirstDoc, rm.LastDoc, ErrCorruptIndex)
		}
		if rm.Lists < 0 || rm.Bytes < 0 {
			return nil, fmt.Errorf("docmap run %d: negative counts: %w", i, ErrCorruptIndex)
		}
	}
	return runs, nil
}

// Finish writes the dictionary and the auxiliary doc map, completing
// the index.
func (w *IndexWriter) Finish(dict []DictEntry) error {
	if w.closed {
		return fmt.Errorf("store: writer already finished: %w", ErrClosed)
	}
	f, err := os.Create(filepath.Join(w.dir, "dictionary.fidc"))
	if err != nil {
		return err
	}
	if err := WriteDictionary(f, dict); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	docmap, err := json.MarshalIndent(w.runs, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(w.dir, "docmap.json"), docmap, 0o644); err != nil {
		return err
	}
	w.closed = true
	return nil
}

// Runs returns the recorded run metadata.
func (w *IndexWriter) Runs() []RunMeta { return w.runs }

// ReaderOptions tunes an IndexReader.
type ReaderOptions struct {
	// CacheBytes is the decoded-postings cache budget. Zero selects the
	// 32 MiB default; use 1 to effectively disable caching.
	CacheBytes int64

	// MergeWorkers bounds the number of concurrent shard workers Merge
	// uses. Zero selects GOMAXPROCS; 1 forces a serial merge. The merged
	// file bytes are identical for every worker count.
	MergeWorkers int

	// MergeCodec selects how Merge encodes each output list: "auto"
	// (per-list self-tuning from density and length), a codec name
	// ("varbyte", "gamma", "golomb", "bitpack", "eliasfano") to force
	// one codec for every list, or empty for "auto". "varbyte" keeps
	// version-3 files readable by pre-codec builds. Unknown names fail
	// OpenIndexWith.
	MergeCodec string
}

// IndexReader opens a finished index directory for queries.
//
// Memory model: the dictionary, doc map, doc lengths and doc table are
// loaded up front. Postings stay on disk — each run file (and the
// merged file, when present) is held as an open handle plus its parsed
// entry table, and individual lists are fetched with one positioned
// read and decoded on demand. Decoded lists are cached in a
// byte-budgeted LRU, so reader RSS is bounded by O(tables) + the cache
// budget regardless of index size.
//
// Concurrency: an IndexReader is safe for use by any number of
// goroutines after OpenIndex returns. Concurrent first touches of the
// same run file coalesce into a single open+verify. Close may race
// with in-flight readers: each call either completes against the open
// reader or returns ErrClosed, never a torn state.
type IndexReader struct {
	dir     string
	dict    []DictEntry
	runs    []RunMeta
	docLens []uint32 // optional; nil when the index carries no lengths

	docFiles []string      // optional doc table: source file names
	docLocs  []DocLocation // optional doc table: per-doc locations

	cache *listCache

	mergeMu        sync.Mutex        // serializes Merge invocations
	mergeWorkers   int               // shard-worker bound for Merge (0 = GOMAXPROCS)
	mergeSelect    encoding.Selector // per-list codec choice for Merge output
	mergeCodecName string            // resolved MergeCodec ("auto" or a forced codec)

	mu        sync.Mutex
	closed    bool
	runFiles  map[string]*runSlot // lazy run readers, opened on first use
	merged    *mergedState        // non-nil when a trusted merged file is active
	mergedErr error               // sidecar present but merged file unusable

	mergedHits   atomic.Uint64
	runFallbacks atomic.Uint64
	listBytes    atomic.Uint64
	codecDecodes [encoding.NumCodecs]atomic.Uint64 // per-codec list decodes
}

// runSlot coalesces concurrent opens of one run file: the first
// goroutine to claim the slot opens and verifies the file once, later
// arrivals block on it and share the handle.
type runSlot struct {
	once sync.Once
	rr   *runReader
	err  error
}

// OpenIndex reads the dictionary and doc map of a finished index with
// default options.
func OpenIndex(dir string) (*IndexReader, error) {
	return OpenIndexWith(dir, ReaderOptions{})
}

// OpenIndexWith opens a finished index with explicit options. When the
// directory carries a merged file recorded by a trusted sidecar, term
// lookups are served from it with a single positioned read each; a
// sidecar whose merged file fails validation is remembered (see
// Verify) and the reader falls back to per-run assembly.
func OpenIndexWith(dir string, opts ReaderOptions) (*IndexReader, error) {
	codecName := opts.MergeCodec
	if codecName == "" {
		codecName = "auto"
	}
	mergeSelect, err := encoding.SelectorFor(codecName)
	if err != nil {
		return nil, fmt.Errorf("store: merge codec: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, "dictionary.fidc"))
	if err != nil {
		return nil, err
	}
	dict, err := ReadDictionary(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, "docmap.json"))
	if err != nil {
		return nil, err
	}
	runs, err := parseDocMap(raw)
	if err != nil {
		return nil, err
	}
	lens, err := readDocLens(dir)
	if err != nil {
		return nil, err
	}
	names, locs, err := readDocTable(dir)
	if err != nil {
		return nil, err
	}
	merged, mergedErr := loadMerged(dir)
	return &IndexReader{
		dir:            dir,
		dict:           dict,
		runs:           runs,
		docLens:        lens,
		docFiles:       names,
		docLocs:        locs,
		cache:          newListCache(opts.CacheBytes),
		mergeWorkers:   opts.MergeWorkers,
		mergeSelect:    mergeSelect,
		mergeCodecName: codecName,
		runFiles:       make(map[string]*runSlot),
		merged:         merged,
		mergedErr:      mergedErr,
	}, nil
}

// Close releases the reader: every run (and merged) file handle is
// closed, the decoded-list cache is dropped, and every subsequent
// query method returns ErrClosed. Close is idempotent and safe to call
// while queries are in flight — they either complete or observe
// ErrClosed.
func (r *IndexReader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	slots := r.runFiles
	merged := r.merged
	r.runFiles = nil
	r.merged = nil
	r.mu.Unlock()

	for _, slot := range slots {
		// once.Do waits out any in-flight open, so no handle escapes.
		slot.once.Do(func() { slot.err = ErrClosed })
		if slot.rr != nil {
			slot.rr.close()
		}
	}
	if merged != nil {
		merged.rr.close()
	}
	r.cache.purge()
	return nil
}

// checkClosed snapshots the closed flag.
func (r *IndexReader) checkClosed() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	return nil
}

// DocLocation resolves a docID to its source container file, byte
// offset and length; ok is false when the index carries no doc table
// or the docID is out of range.
func (r *IndexReader) DocLocation(doc uint32) (file string, offset, length uint32, ok bool) {
	if int(doc) >= len(r.docLocs) {
		return "", 0, 0, false
	}
	l := r.docLocs[doc]
	return r.docFiles[l.FileIdx], l.Offset, l.Length, true
}

// DocLens returns per-document lengths (tokens per docID) when the
// index was written with them, else nil.
func (r *IndexReader) DocLens() []uint32 { return r.docLens }

// runFile returns the lazy reader for one run file, opening and
// CRC-verifying it on first use. The per-file runSlot serializes the
// open while letting distinct files open concurrently.
func (r *IndexReader) runFile(meta RunMeta) (*runReader, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	slot, ok := r.runFiles[meta.File]
	if !ok {
		slot = &runSlot{}
		r.runFiles[meta.File] = slot
	}
	r.mu.Unlock()
	slot.once.Do(func() {
		rr, err := openRunReader(filepath.Join(r.dir, meta.File))
		if err != nil {
			slot.err = fmt.Errorf("store: %s: %w", meta.File, err)
			return
		}
		slot.rr = rr
	})
	if slot.err != nil {
		if errors.Is(slot.err, ErrClosed) {
			return nil, ErrClosed
		}
		// Do not pin a failed open: drop the slot so a later call can
		// retry (transient I/O errors should not poison the cache).
		r.mu.Lock()
		if r.runFiles != nil && r.runFiles[meta.File] == slot {
			delete(r.runFiles, meta.File)
		}
		r.mu.Unlock()
		return nil, slot.err
	}
	return slot.rr, nil
}

// readErr classifies a positioned-read failure: reads against a closed
// reader surface ErrClosed, truncation mid-file is corruption, and
// anything else passes through with the file name attached.
func (r *IndexReader) readErr(name string, err error) error {
	switch {
	case errors.Is(err, os.ErrClosed):
		return ErrClosed
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("store: %s: truncated read: %w", name, ErrCorruptIndex)
	default:
		return fmt.Errorf("store: %s: %w", name, err)
	}
}

// Terms reports the dictionary size.
func (r *IndexReader) Terms() int { return len(r.dict) }

// Dictionary exposes the loaded dictionary entries (canonical order).
func (r *IndexReader) Dictionary() []DictEntry { return r.dict }

// Runs exposes the doc-range map.
func (r *IndexReader) Runs() []RunMeta { return r.runs }

// MergedActive reports whether term lookups are currently served from
// a validated merged file.
func (r *IndexReader) MergedActive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.merged != nil
}

// MergedErr returns the validation error of a merged sidecar that was
// present but could not be trusted (nil when absent or healthy). The
// reader still serves queries by per-run assembly in that state;
// Verify surfaces the error.
func (r *IndexReader) MergedErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mergedErr
}

// ReaderStats is a point-in-time snapshot of reader activity.
type ReaderStats struct {
	MergedActive  bool
	MergedHits    uint64 // lookups answered from the merged file
	RunFallbacks  uint64 // lookups assembled from per-run partial lists
	ListBytesRead uint64 // compressed list bytes fetched from disk

	// CodecDecodes counts list decodes by codec name, revealing which
	// encodings the self-tuning selection actually serves.
	CodecDecodes map[string]uint64

	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheBytes     int64 // resident decoded-list bytes
	CacheEntries   int
}

// Stats snapshots reader counters.
func (r *IndexReader) Stats() ReaderStats {
	bytes, entries := r.cache.occupancy()
	codecs := make(map[string]uint64, len(r.codecDecodes))
	for _, c := range encoding.Codecs() {
		codecs[c.Name()] = r.codecDecodes[c.ID()].Load()
	}
	return ReaderStats{
		MergedActive:   r.MergedActive(),
		MergedHits:     r.mergedHits.Load(),
		RunFallbacks:   r.runFallbacks.Load(),
		ListBytesRead:  r.listBytes.Load(),
		CodecDecodes:   codecs,
		CacheHits:      r.cache.hits.Load(),
		CacheMisses:    r.cache.misses.Load(),
		CacheEvictions: r.cache.evictions.Load(),
		CacheBytes:     bytes,
		CacheEntries:   entries,
	}
}

// LookupTerm resolves a normalized term to its dictionary entry. A
// miss returns an error wrapping ErrTermNotFound — use this when the
// caller must distinguish "unknown term" from "known term with no
// postings in range"; Postings folds both into an empty list.
func (r *IndexReader) LookupTerm(term string) (DictEntry, error) {
	if err := r.checkClosed(); err != nil {
		return DictEntry{}, err
	}
	coll := trie.IndexString(term)
	e, ok := Lookup(r.dict, int32(coll), term)
	if !ok {
		return DictEntry{}, fmt.Errorf("store: %q: %w", term, ErrTermNotFound)
	}
	return e, nil
}

// Postings returns the full postings list of a term (stemmed, lowercase
// — the caller applies the same normalization as indexing). Missing
// terms yield an empty list. With a merged file active this is one
// binary-searched table hit, one positioned read and one decode;
// otherwise partial lists are assembled across run files in doc order.
func (r *IndexReader) Postings(term string) (*postings.List, error) {
	return r.PostingsRange(term, 0, ^uint32(0))
}

// PostingsCtx is Postings under a context. When ctx carries a
// telemetry.RequestTrace the fetch is attributed span by span
// (dictionary lookup, pread, per-codec decode, per-run merge);
// otherwise it is exactly Postings — the trace probe is a single
// allocation-free context lookup.
func (r *IndexReader) PostingsCtx(ctx context.Context, term string) (*postings.List, error) {
	l, _, err := r.postingsRange(ctx, term, 0, ^uint32(0))
	return l, err
}

// PostingsEncodedCtx is PostingsEncoded under a (possibly traced)
// context.
func (r *IndexReader) PostingsEncodedCtx(ctx context.Context, term string) (*postings.List, int64, error) {
	return r.postingsRange(ctx, term, 0, ^uint32(0))
}

// PostingsRange restricts the fetch to [minDoc, maxDoc]. On the
// per-run path only runs whose doc ranges overlap are touched — the
// paper's "faster search when narrowed down to a range of document
// IDs" benefit of the per-run format; the merged path slices the
// single list by binary search.
func (r *IndexReader) PostingsRange(term string, minDoc, maxDoc uint32) (*postings.List, error) {
	l, _, err := r.postingsRange(context.Background(), term, minDoc, maxDoc)
	return l, err
}

// PostingsEncoded is Postings plus the encoded (on-disk) byte size of
// the entries that produced the list — the compressed footprint the
// codec registry actually achieved, available even on cache hits. The
// serve cache charges this size instead of the decoded estimate, so
// better-compressed lists leave room for more cached entries.
func (r *IndexReader) PostingsEncoded(term string) (*postings.List, int64, error) {
	return r.postingsRange(context.Background(), term, 0, ^uint32(0))
}

func (r *IndexReader) postingsRange(ctx context.Context, term string, minDoc, maxDoc uint32) (*postings.List, int64, error) {
	if err := r.checkClosed(); err != nil {
		return nil, 0, err
	}
	tr := telemetry.TraceFrom(ctx)
	coll := trie.IndexString(term)
	dsp := tr.StartSpan(telemetry.ReqStageDict)
	e, ok := Lookup(r.dict, int32(coll), term)
	dsp.End()
	if !ok {
		return &postings.List{}, 0, nil
	}

	r.mu.Lock()
	m := r.merged
	r.mu.Unlock()
	if m != nil {
		l, enc, err := r.lookupList(tr, m.key, m.rr, uint32(e.Collection), uint32(e.Slot), m.find)
		if err == nil {
			r.mergedHits.Add(1)
			return sliceRange(l, minDoc, maxDoc), enc, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, 0, err
		}
		// Merged read failed under us (e.g. the file vanished or went
		// bad after open): serve from the runs instead of failing the
		// query.
	}

	r.runFallbacks.Add(1)
	msp := tr.StartSpan(telemetry.ReqStageMerge)
	msp.SetNote("run-fallback")
	out := &postings.List{}
	var encoded int64
	for _, rm := range r.runs {
		if rm.LastDoc < minDoc || rm.FirstDoc > maxDoc {
			continue
		}
		rr, err := r.runFile(rm)
		if err != nil {
			msp.End()
			return nil, 0, err
		}
		part, enc, err := r.lookupList(tr, rr.name, rr, uint32(e.Collection), uint32(e.Slot),
			func(c, s uint32) (RunEntry, bool) { return rr.find(c, s) })
		if err != nil {
			msp.End()
			return nil, 0, err
		}
		if part == nil {
			continue
		}
		msp.AddItems(1)
		encoded += enc
		if err := postings.Concat(out, part); err != nil {
			msp.End()
			return nil, 0, fmt.Errorf("store: %s: %w", rm.File, err)
		}
	}
	msp.End()
	// Trim postings the boundary runs carry outside [minDoc, maxDoc] so
	// both paths return the same exact range.
	return sliceRange(out, minDoc, maxDoc), encoded, nil
}

// BlockPostingsCtx returns the block-at-a-time view of a term from the
// merged file: the parsed skip table (per-block lastDoc/count/maxTF)
// with the codec bodies left undecoded, costing one dictionary lookup
// and one positioned read. The ranked path decodes only the blocks
// its pruning bounds cannot skip. Returns (nil, nil) when no merged
// file is active — block evaluation is unavailable and the caller
// falls back to the exhaustive whole-list path. A known term too
// short for the blocked layout is decoded whole (through the cache)
// and wrapped as a single exact pseudo-block, so the availability of
// block evaluation depends only on the merged file, not on any one
// term's length. Missing terms return an empty TermBlocks.
func (r *IndexReader) BlockPostingsCtx(ctx context.Context, term string) (*TermBlocks, error) {
	if err := r.checkClosed(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	m := r.merged
	r.mu.Unlock()
	if m == nil {
		return nil, nil
	}
	tr := telemetry.TraceFrom(ctx)
	coll := trie.IndexString(term)
	dsp := tr.StartSpan(telemetry.ReqStageDict)
	e, ok := Lookup(r.dict, int32(coll), term)
	dsp.End()
	if !ok {
		return &TermBlocks{}, nil
	}
	entry, ok := m.find(uint32(e.Collection), uint32(e.Slot))
	if !ok {
		return &TermBlocks{}, nil
	}
	if entry.Flags&FlagBlocks == 0 {
		l, _, err := r.lookupList(tr, m.key, m.rr, uint32(e.Collection), uint32(e.Slot), m.find)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			// Merged read failed under us: signal unavailability so the
			// caller retries through the exhaustive run-fallback path.
			return nil, nil
		}
		r.mergedHits.Add(1)
		bl := BlockListFromList(l)
		if bl == nil {
			return &TermBlocks{}, nil
		}
		return &TermBlocks{Lists: []*BlockList{bl}}, nil
	}
	psp := tr.StartSpan(telemetry.ReqStagePread)
	blob, err := m.rr.readBlob(entry)
	psp.AddBytes(int64(entry.Length))
	psp.End()
	if err != nil {
		return nil, r.readErr(m.rr.name, err)
	}
	r.listBytes.Add(uint64(entry.Length))
	bl, err := parseBlockedBlob(blob, entry)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.rr.name, err)
	}
	r.mergedHits.Add(1)
	return &TermBlocks{Lists: []*BlockList{bl}}, nil
}

// lookupList fetches one (collection, slot) list from a run-format
// file through the decoded-list cache: a cache hit costs no I/O, a
// miss costs exactly one positioned read plus one decode. The second
// return is the entry's encoded byte length, known before the cache is
// consulted. A list the file does not hold returns (nil, 0, nil).
// Returned lists are shared and must not be mutated.
func (r *IndexReader) lookupList(tr *telemetry.RequestTrace, cacheFile string, rr *runReader, coll, slot uint32,
	find func(uint32, uint32) (RunEntry, bool)) (*postings.List, int64, error) {
	e, ok := find(coll, slot)
	if !ok {
		return nil, 0, nil
	}
	key := listKey{file: cacheFile, coll: coll, slot: slot}
	if l, ok := r.cache.get(key); ok {
		return l, int64(e.Length), nil
	}
	psp := tr.StartSpan(telemetry.ReqStagePread)
	blob, err := rr.readBlob(e)
	psp.AddBytes(int64(e.Length))
	psp.End()
	if err != nil {
		return nil, 0, r.readErr(rr.name, err)
	}
	r.listBytes.Add(uint64(e.Length))
	dsp := tr.StartSpan(telemetry.ReqStageDecode)
	l, err := r.decodeEntry(blob, e)
	if tr != nil {
		if c, cerr := encoding.Lookup(e.Codec()); cerr == nil {
			dsp.SetNote(c.Name())
		}
	}
	dsp.End()
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", rr.name, err)
	}
	r.cache.put(key, l)
	return l, int64(e.Length), nil
}

// decodeEntry is the counted decode path: decodeEntry plus the
// per-codec telemetry the serve metrics export.
func (r *IndexReader) decodeEntry(blob []byte, e RunEntry) (*postings.List, error) {
	if id := e.Codec(); id < encoding.NumCodecs {
		r.codecDecodes[id].Add(1)
	}
	return decodeEntry(blob, e)
}

// sliceRange narrows a sorted postings list to [minDoc, maxDoc]. The
// full range returns the list unchanged (it may be cache-shared);
// narrowed results alias the original's backing arrays, which is safe
// under the lists-are-immutable contract.
func sliceRange(l *postings.List, minDoc, maxDoc uint32) *postings.List {
	if l == nil {
		return &postings.List{}
	}
	lo := 0
	hi := len(l.DocIDs)
	if minDoc > 0 {
		lo = sort.Search(len(l.DocIDs), func(i int) bool { return l.DocIDs[i] >= minDoc })
	}
	if maxDoc < ^uint32(0) {
		hi = sort.Search(len(l.DocIDs), func(i int) bool { return l.DocIDs[i] > maxDoc })
	}
	if lo == 0 && hi == len(l.DocIDs) {
		return l
	}
	out := &postings.List{DocIDs: l.DocIDs[lo:hi], TFs: l.TFs[lo:hi]}
	if l.Positions != nil {
		out.Positions = l.Positions[lo:hi]
	}
	return out
}
