package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/trie"
)

// IndexWriter manages an output directory: numbered run files, the
// docID-range auxiliary map, and the dictionary written at the end.
type IndexWriter struct {
	dir    string
	runs   []RunMeta
	closed bool
}

// RunMeta is one row of the auxiliary docID -> file map ("an auxiliary
// file containing the mapping of document IDs to output file names",
// §III.F).
type RunMeta struct {
	File     string `json:"file"`
	FirstDoc uint32 `json:"first_doc"`
	LastDoc  uint32 `json:"last_doc"`
	Lists    int    `json:"lists"`
	Bytes    int64  `json:"bytes"`
}

// NewIndexWriter creates (or reuses) an output directory.
func NewIndexWriter(dir string) (*IndexWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &IndexWriter{dir: dir}, nil
}

// Dir returns the output directory.
func (w *IndexWriter) Dir() string { return w.dir }

// WriteRun persists one finalized run and records its doc range.
func (w *IndexWriter) WriteRun(b *RunBuilder, firstDoc, lastDoc uint32) error {
	name := fmt.Sprintf("run-%05d.post", len(w.runs))
	data := b.Finalize(firstDoc, lastDoc)
	if err := os.WriteFile(filepath.Join(w.dir, name), data, 0o644); err != nil {
		return err
	}
	w.runs = append(w.runs, RunMeta{
		File:     name,
		FirstDoc: firstDoc,
		LastDoc:  lastDoc,
		Lists:    b.Lists(),
		Bytes:    int64(len(data)),
	})
	return nil
}

// WriteDocLens persists per-document lengths (surviving tokens per
// docID, dense from 0), enabling BM25 length normalization at query
// time. Call before Finish; the file is optional for readers.
func (w *IndexWriter) WriteDocLens(lens []uint32) error {
	buf := make([]byte, 0, 8+len(lens))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], docLensMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(lens)))
	buf = append(buf, hdr[:]...)
	for _, l := range lens {
		buf = encoding.PutUvarByte(buf, uint64(l))
	}
	return os.WriteFile(filepath.Join(w.dir, "doclens.bin"), buf, 0o644)
}

const docLensMagic = 0x4649444c // "FIDL"

// DocLocation records where a document lives in the source collection
// — the parser Step 1 table of <document ID, document location on
// disk> (§III.C). FileIdx indexes the names table written alongside.
type DocLocation struct {
	FileIdx uint32
	Offset  uint32
	Length  uint32
}

const docTableMagic = 0x46494454 // "FIDT"

// WriteDocTable persists the docID -> source-location table: a file
// name table followed by per-document (file, offset, length) triples,
// dense from docID 0. Call before Finish; optional for readers.
func (w *IndexWriter) WriteDocTable(fileNames []string, locs []DocLocation) error {
	buf := make([]byte, 0, 12+len(locs)*6)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], docTableMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(fileNames)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(locs)))
	buf = append(buf, hdr[:]...)
	for _, name := range fileNames {
		buf = encoding.PutUvarByte(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	for _, l := range locs {
		buf = encoding.PutUvarByte(buf, uint64(l.FileIdx))
		buf = encoding.PutUvarByte(buf, uint64(l.Offset))
		buf = encoding.PutUvarByte(buf, uint64(l.Length))
	}
	return os.WriteFile(filepath.Join(w.dir, "doctable.bin"), buf, 0o644)
}

// readDocTable loads the optional doc table.
func readDocTable(dir string) (names []string, locs []DocLocation, err error) {
	data, err := os.ReadFile(filepath.Join(dir, "doctable.bin"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	if len(data) < 12 || binary.LittleEndian.Uint32(data) != docTableMagic {
		return nil, nil, fmt.Errorf("doc table header: %w", ErrCorruptIndex)
	}
	nNames := int(binary.LittleEndian.Uint32(data[4:]))
	nDocs := int(binary.LittleEndian.Uint32(data[8:]))
	pos := 12
	read := func() (uint64, bool) {
		v, m := encoding.UvarByte(data[pos:])
		if m <= 0 {
			return 0, false
		}
		pos += m
		return v, true
	}
	for i := 0; i < nNames; i++ {
		n, ok := read()
		if !ok || pos+int(n) > len(data) {
			return nil, nil, fmt.Errorf("doc table names: %w", ErrCorruptIndex)
		}
		names = append(names, string(data[pos:pos+int(n)]))
		pos += int(n)
	}
	locs = make([]DocLocation, nDocs)
	for i := 0; i < nDocs; i++ {
		fi, ok1 := read()
		off, ok2 := read()
		ln, ok3 := read()
		if !ok1 || !ok2 || !ok3 || int(fi) >= nNames {
			return nil, nil, fmt.Errorf("doc table rows: %w", ErrCorruptIndex)
		}
		locs[i] = DocLocation{uint32(fi), uint32(off), uint32(ln)}
	}
	return names, locs, nil
}

// readDocLens loads the optional document-length file.
func readDocLens(dir string) ([]uint32, error) {
	data, err := os.ReadFile(filepath.Join(dir, "doclens.bin"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != docLensMagic {
		return nil, fmt.Errorf("doclens header: %w", ErrCorruptIndex)
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	lens := make([]uint32, n)
	pos := 8
	for i := 0; i < n; i++ {
		v, m := encoding.UvarByte(data[pos:])
		if m <= 0 {
			return nil, fmt.Errorf("doclens entries: %w", ErrCorruptIndex)
		}
		lens[i] = uint32(v)
		pos += m
	}
	return lens, nil
}

// Finish writes the dictionary and the auxiliary doc map, completing
// the index.
func (w *IndexWriter) Finish(dict []DictEntry) error {
	if w.closed {
		return fmt.Errorf("store: writer already finished: %w", ErrClosed)
	}
	f, err := os.Create(filepath.Join(w.dir, "dictionary.fidc"))
	if err != nil {
		return err
	}
	if err := WriteDictionary(f, dict); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	docmap, err := json.MarshalIndent(w.runs, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(w.dir, "docmap.json"), docmap, 0o644); err != nil {
		return err
	}
	w.closed = true
	return nil
}

// Runs returns the recorded run metadata.
func (w *IndexWriter) Runs() []RunMeta { return w.runs }

// IndexReader opens a finished index directory for queries.
//
// Concurrency: an IndexReader is safe for use by any number of
// goroutines after OpenIndex returns. The dictionary, doc map, doc
// lengths and doc table are immutable once loaded; the lazy run cache
// is synchronized internally, and concurrent first touches of the same
// run file coalesce into a single load. Close may race with in-flight
// readers: each call either completes against the open reader or
// returns ErrClosed, never a torn state.
type IndexReader struct {
	dir     string
	dict    []DictEntry
	runs    []RunMeta
	docLens []uint32 // optional; nil when the index carries no lengths

	docFiles []string      // optional doc table: source file names
	docLocs  []DocLocation // optional doc table: per-doc locations

	mu       sync.Mutex
	closed   bool
	runCache map[string]*runSlot // parsed run files, loaded on first use
}

// runSlot coalesces concurrent loads of one run file: the first
// goroutine to claim the slot parses the file inside once, later
// arrivals block on it and share the result.
type runSlot struct {
	once sync.Once
	run  *Run
	err  error
}

// OpenIndex reads the dictionary and doc map of a finished index.
func OpenIndex(dir string) (*IndexReader, error) {
	f, err := os.Open(filepath.Join(dir, "dictionary.fidc"))
	if err != nil {
		return nil, err
	}
	dict, err := ReadDictionary(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, "docmap.json"))
	if err != nil {
		return nil, err
	}
	var runs []RunMeta
	if err := json.Unmarshal(raw, &runs); err != nil {
		return nil, fmt.Errorf("docmap (%v): %w", err, ErrCorruptIndex)
	}
	lens, err := readDocLens(dir)
	if err != nil {
		return nil, err
	}
	names, locs, err := readDocTable(dir)
	if err != nil {
		return nil, err
	}
	return &IndexReader{
		dir:      dir,
		dict:     dict,
		runs:     runs,
		docLens:  lens,
		docFiles: names,
		docLocs:  locs,
		runCache: make(map[string]*runSlot),
	}, nil
}

// Close releases the reader: the run cache is dropped so parsed
// postings become collectable, and every subsequent query method
// returns ErrClosed. Close is idempotent and safe to call while
// queries are in flight — they either complete or observe ErrClosed.
func (r *IndexReader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.runCache = nil
	return nil
}

// checkClosed snapshots the closed flag.
func (r *IndexReader) checkClosed() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	return nil
}

// DocLocation resolves a docID to its source container file, byte
// offset and length; ok is false when the index carries no doc table
// or the docID is out of range.
func (r *IndexReader) DocLocation(doc uint32) (file string, offset, length uint32, ok bool) {
	if int(doc) >= len(r.docLocs) {
		return "", 0, 0, false
	}
	l := r.docLocs[doc]
	return r.docFiles[l.FileIdx], l.Offset, l.Length, true
}

// DocLens returns per-document lengths (tokens per docID) when the
// index was written with them, else nil.
func (r *IndexReader) DocLens() []uint32 { return r.docLens }

// run returns the parsed run file, loading and caching it on first
// use — queries touching many terms then read each file once. The
// per-file runSlot serializes the load while letting distinct files
// parse concurrently.
func (r *IndexReader) run(meta RunMeta) (*Run, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	slot, ok := r.runCache[meta.File]
	if !ok {
		slot = &runSlot{}
		r.runCache[meta.File] = slot
	}
	r.mu.Unlock()
	slot.once.Do(func() {
		data, err := os.ReadFile(filepath.Join(r.dir, meta.File))
		if err != nil {
			slot.err = err
			return
		}
		run, err := ParseRun(data)
		if err != nil {
			slot.err = fmt.Errorf("store: %s: %w", meta.File, err)
			return
		}
		slot.run = run
	})
	if slot.err != nil {
		// Do not pin a failed load: drop the slot so a later call can
		// retry (transient I/O errors should not poison the cache).
		r.mu.Lock()
		if r.runCache[meta.File] == slot {
			delete(r.runCache, meta.File)
		}
		r.mu.Unlock()
		return nil, slot.err
	}
	return slot.run, nil
}

// Terms reports the dictionary size.
func (r *IndexReader) Terms() int { return len(r.dict) }

// Dictionary exposes the loaded dictionary entries (canonical order).
func (r *IndexReader) Dictionary() []DictEntry { return r.dict }

// Runs exposes the doc-range map.
func (r *IndexReader) Runs() []RunMeta { return r.runs }

// LookupTerm resolves a normalized term to its dictionary entry. A
// miss returns an error wrapping ErrTermNotFound — use this when the
// caller must distinguish "unknown term" from "known term with no
// postings in range"; Postings folds both into an empty list.
func (r *IndexReader) LookupTerm(term string) (DictEntry, error) {
	if err := r.checkClosed(); err != nil {
		return DictEntry{}, err
	}
	coll := trie.IndexString(term)
	e, ok := Lookup(r.dict, int32(coll), term)
	if !ok {
		return DictEntry{}, fmt.Errorf("store: %q: %w", term, ErrTermNotFound)
	}
	return e, nil
}

// Postings returns the full postings list of a term (stemmed, lowercase
// — the caller applies the same normalization as indexing), merging
// the partial lists across run files in doc order. Missing terms yield
// an empty list.
func (r *IndexReader) Postings(term string) (*postings.List, error) {
	return r.PostingsRange(term, 0, ^uint32(0))
}

// PostingsRange fetches only the partial lists whose run doc ranges
// overlap [minDoc, maxDoc] — the paper's "faster search when narrowed
// down to a range of document IDs" benefit of the per-run format.
func (r *IndexReader) PostingsRange(term string, minDoc, maxDoc uint32) (*postings.List, error) {
	if err := r.checkClosed(); err != nil {
		return nil, err
	}
	coll := trie.IndexString(term)
	stripped := string(trie.Strip(coll, []byte(term)))
	_ = stripped // dictionary stores restored terms; lookup by full term
	e, ok := Lookup(r.dict, int32(coll), term)
	if !ok {
		return &postings.List{}, nil
	}
	out := &postings.List{}
	for _, rm := range r.runs {
		if rm.LastDoc < minDoc || rm.FirstDoc > maxDoc {
			continue
		}
		run, err := r.run(rm)
		if err != nil {
			return nil, err
		}
		docIDs, tfs, positions, found, err := run.PositionalList(int(e.Collection), e.Slot)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		part := &postings.List{DocIDs: docIDs, TFs: tfs, Positions: positions}
		if err := postings.Concat(out, part); err != nil {
			return nil, fmt.Errorf("store: %s: %w", rm.File, err)
		}
	}
	return out, nil
}

// Merge combines all partial postings lists into a single monolithic
// file "merged.post" with one list per term, the optional
// post-processing step the paper prices at <10% of total time. It
// returns the merged run for inspection.
func (r *IndexReader) Merge() (*Run, error) {
	if err := r.checkClosed(); err != nil {
		return nil, err
	}
	type key struct {
		coll uint32
		slot uint32
	}
	merged := map[key]*postings.List{}
	var order []key
	for _, rm := range r.runs {
		run, err := r.run(rm)
		if err != nil {
			return nil, err
		}
		for _, e := range run.Entries {
			k := key{e.Collection, e.Slot}
			dst := merged[k]
			if dst == nil {
				dst = &postings.List{}
				merged[k] = dst
				order = append(order, k)
			}
			docIDs, tfs, positions, _, err := run.PositionalList(int(e.Collection), int32(e.Slot))
			if err != nil {
				return nil, err
			}
			part := &postings.List{DocIDs: docIDs, TFs: tfs, Positions: positions}
			if err := postings.Concat(dst, part); err != nil {
				return nil, fmt.Errorf("store: merge (%d,%d): %w", e.Collection, e.Slot, err)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].coll != order[j].coll {
			return order[i].coll < order[j].coll
		}
		return order[i].slot < order[j].slot
	})
	b := NewRunBuilder()
	var first, last uint32
	first = ^uint32(0)
	for _, k := range order {
		l := merged[k]
		var err error
		if l.Positional() {
			err = b.AddPositionalList(int(k.coll), int32(k.slot), l.DocIDs, l.TFs, l.Positions)
		} else {
			err = b.AddList(int(k.coll), int32(k.slot), l.DocIDs, l.TFs)
		}
		if err != nil {
			return nil, err
		}
		if l.Len() > 0 {
			if l.DocIDs[0] < first {
				first = l.DocIDs[0]
			}
			if l.DocIDs[l.Len()-1] > last {
				last = l.DocIDs[l.Len()-1]
			}
		}
	}
	if first == ^uint32(0) {
		first = 0
	}
	data := b.Finalize(first, last)
	if err := os.WriteFile(filepath.Join(r.dir, "merged.post"), data, 0o644); err != nil {
		return nil, err
	}
	return ParseRun(data)
}
