// Package postings implements the in-memory postings lists built by
// the indexers: for each dictionary slot, the list of (document ID,
// term frequency) pairs in ascending document order. The pipeline's
// strict round-robin buffer consumption guarantees documents arrive in
// global order, so appends keep lists sorted with no re-sorting (§III.F).
package postings

import (
	"errors"
	"fmt"
)

// List is the postings list of one term: parallel docID / term
// frequency slices in strictly ascending docID order. Positional
// lists additionally carry each posting's in-document term positions
// (ascending); Positions is nil for non-positional lists.
type List struct {
	DocIDs    []uint32
	TFs       []uint32
	Positions [][]uint32
}

// Add records one occurrence of the term in doc. Occurrences of the
// same document must be contiguous (the parser emits a document's
// terms together); a repeated docID increments the frequency of the
// existing tail posting.
func (l *List) Add(doc uint32) error {
	if n := len(l.DocIDs); n > 0 {
		last := l.DocIDs[n-1]
		if doc == last {
			l.TFs[n-1]++
			return nil
		}
		if doc < last {
			return fmt.Errorf("postings: docID %d after %d breaks order", doc, last)
		}
	}
	l.DocIDs = append(l.DocIDs, doc)
	l.TFs = append(l.TFs, 1)
	return nil
}

// AddPos records one positional occurrence. Positions within a
// document must arrive in ascending order.
func (l *List) AddPos(doc, pos uint32) error {
	if n := len(l.DocIDs); n > 0 && l.DocIDs[n-1] == doc {
		ps := l.Positions[n-1]
		if len(ps) > 0 && pos <= ps[len(ps)-1] {
			return fmt.Errorf("postings: position %d after %d in doc %d breaks order",
				pos, ps[len(ps)-1], doc)
		}
		l.TFs[n-1]++
		l.Positions[n-1] = append(ps, pos)
		return nil
	}
	if err := l.Add(doc); err != nil {
		return err
	}
	l.Positions = append(l.Positions, []uint32{pos})
	return nil
}

// Positional reports whether the list carries positions.
func (l *List) Positional() bool { return l.Positions != nil }

// Len reports the number of postings (distinct documents).
func (l *List) Len() int { return len(l.DocIDs) }

// TotalTF reports the total number of occurrences recorded.
func (l *List) TotalTF() uint64 {
	var sum uint64
	for _, tf := range l.TFs {
		sum += uint64(tf)
	}
	return sum
}

// Reset empties the list, retaining capacity for the next run.
func (l *List) Reset() {
	l.DocIDs = l.DocIDs[:0]
	l.TFs = l.TFs[:0]
	if l.Positions != nil {
		l.Positions = l.Positions[:0]
	}
}

// Store maps dictionary postings slots to lists for one indexer. The
// slot space is dense (B-trees assign slots sequentially), so the store
// is a growable slice rather than a map.
type Store struct {
	lists  []List
	tokens uint64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add records one occurrence of the term owning slot in doc.
func (s *Store) Add(slot int32, doc uint32) error {
	if slot < 0 {
		return errors.New("postings: negative slot")
	}
	for int(slot) >= len(s.lists) {
		s.lists = append(s.lists, List{})
	}
	s.tokens++
	return s.lists[slot].Add(doc)
}

// AddPos records one positional occurrence for slot.
func (s *Store) AddPos(slot int32, doc, pos uint32) error {
	if slot < 0 {
		return errors.New("postings: negative slot")
	}
	for int(slot) >= len(s.lists) {
		s.lists = append(s.lists, List{})
	}
	s.tokens++
	return s.lists[slot].AddPos(doc, pos)
}

// List returns the list for slot, or nil if the slot has no postings.
func (s *Store) List(slot int32) *List {
	if slot < 0 || int(slot) >= len(s.lists) {
		return nil
	}
	return &s.lists[slot]
}

// NumSlots reports the size of the dense slot space seen so far.
func (s *Store) NumSlots() int { return len(s.lists) }

// Tokens reports the total number of occurrences added.
func (s *Store) Tokens() uint64 { return s.tokens }

// ResetRun clears every list at the end of a run while keeping the
// slot space (the dictionary persists across runs; postings are
// flushed per run, §III.E).
func (s *Store) ResetRun() {
	for i := range s.lists {
		s.lists[i].Reset()
	}
}

// Postings reports the total posting count across all slots.
func (s *Store) Postings() int {
	n := 0
	for i := range s.lists {
		n += s.lists[i].Len()
	}
	return n
}

// Concat appends part to dst, validating that part's docIDs all exceed
// dst's tail — the condition run-ordered partial lists satisfy, making
// the final merge a pure concatenation (§III.F's monolithic index).
func Concat(dst *List, part *List) error {
	if part.Len() == 0 {
		return nil
	}
	if dst.Len() > 0 && dst.Positional() != part.Positional() {
		return errors.New("postings: mixing positional and plain partial lists")
	}
	if n := len(dst.DocIDs); n > 0 && part.DocIDs[0] <= dst.DocIDs[n-1] {
		return fmt.Errorf("postings: partial list starts at %d, tail is %d",
			part.DocIDs[0], dst.DocIDs[n-1])
	}
	for i := 1; i < len(part.DocIDs); i++ {
		if part.DocIDs[i] <= part.DocIDs[i-1] {
			return errors.New("postings: partial list not sorted")
		}
	}
	dst.DocIDs = append(dst.DocIDs, part.DocIDs...)
	dst.TFs = append(dst.TFs, part.TFs...)
	if part.Positional() {
		dst.Positions = append(dst.Positions, part.Positions...)
	}
	return nil
}
