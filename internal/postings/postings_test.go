package postings

import (
	"testing"
	"testing/quick"
)

func TestListAddAggregatesTF(t *testing.T) {
	var l List
	for _, doc := range []uint32{1, 1, 1, 2, 5, 5} {
		if err := l.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	wantDocs := []uint32{1, 2, 5}
	wantTFs := []uint32{3, 1, 2}
	for i := range wantDocs {
		if l.DocIDs[i] != wantDocs[i] || l.TFs[i] != wantTFs[i] {
			t.Errorf("posting %d = (%d,%d), want (%d,%d)",
				i, l.DocIDs[i], l.TFs[i], wantDocs[i], wantTFs[i])
		}
	}
	if l.TotalTF() != 6 {
		t.Errorf("TotalTF = %d, want 6", l.TotalTF())
	}
}

func TestListRejectsOutOfOrder(t *testing.T) {
	var l List
	l.Add(5)
	if err := l.Add(3); err == nil {
		t.Error("descending docID must be rejected")
	}
	if err := l.Add(5); err != nil {
		t.Errorf("same docID should aggregate, got %v", err)
	}
}

func TestStoreGrowsDense(t *testing.T) {
	s := NewStore()
	if err := s.Add(10, 1); err != nil {
		t.Fatal(err)
	}
	if s.NumSlots() != 11 {
		t.Fatalf("NumSlots = %d, want 11", s.NumSlots())
	}
	if s.List(10).Len() != 1 || s.List(3).Len() != 0 {
		t.Error("unexpected list contents")
	}
	if s.List(-1) != nil || s.List(99) != nil {
		t.Error("out-of-range slots must return nil")
	}
	if err := s.Add(-1, 1); err == nil {
		t.Error("negative slot must error")
	}
}

func TestStoreResetRunKeepsSlots(t *testing.T) {
	s := NewStore()
	s.Add(0, 1)
	s.Add(1, 1)
	s.Add(1, 2)
	if s.Postings() != 3 {
		t.Fatalf("Postings = %d, want 3", s.Postings())
	}
	s.ResetRun()
	if s.NumSlots() != 2 {
		t.Errorf("slots lost on reset: %d", s.NumSlots())
	}
	if s.Postings() != 0 {
		t.Errorf("postings remain after reset: %d", s.Postings())
	}
	// Next run may start at a lower docID because lists are per run.
	if err := s.Add(1, 1); err != nil {
		t.Errorf("add after reset: %v", err)
	}
	if s.Tokens() != 4 {
		t.Errorf("Tokens = %d, want 4 (cumulative)", s.Tokens())
	}
}

func TestConcatValidates(t *testing.T) {
	a := &List{DocIDs: []uint32{1, 5}, TFs: []uint32{1, 2}}
	b := &List{DocIDs: []uint32{6, 9}, TFs: []uint32{1, 1}}
	if err := Concat(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 || a.DocIDs[3] != 9 {
		t.Error("concat result wrong")
	}
	overlap := &List{DocIDs: []uint32{9}, TFs: []uint32{1}}
	if err := Concat(a, overlap); err == nil {
		t.Error("overlapping concat must fail")
	}
	unsorted := &List{DocIDs: []uint32{100, 50}, TFs: []uint32{1, 1}}
	if err := Concat(a, unsorted); err == nil {
		t.Error("unsorted partial must fail")
	}
	if err := Concat(a, &List{}); err != nil {
		t.Errorf("empty partial should be a no-op, got %v", err)
	}
}

func TestStoreQuickInvariant(t *testing.T) {
	// Property: after any sequence of in-order adds, every list is
	// strictly sorted and token count equals total TF.
	f := func(events []uint16) bool {
		s := NewStore()
		doc := uint32(0)
		for _, e := range events {
			slot := int32(e % 50)
			if e%7 == 0 {
				doc++ // advance document
			}
			if err := s.Add(slot, doc); err != nil {
				return false
			}
		}
		var totalTF uint64
		for i := 0; i < s.NumSlots(); i++ {
			l := s.List(int32(i))
			for j := 1; j < l.Len(); j++ {
				if l.DocIDs[j] <= l.DocIDs[j-1] {
					return false
				}
			}
			totalTF += l.TotalTF()
		}
		return totalTF == uint64(len(events)) && s.Tokens() == uint64(len(events))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkStoreAdd(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(int32(i%1000), uint32(i/7))
	}
}
