package corpus

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"math/rand"
)

// DocDelim separates documents inside a container file. The bytes are
// control characters, which the tokenizer treats as separators, so the
// delimiter can never bleed into token content.
const DocDelim = "\n\x1dDOC\x1e\n"

// SplitDocs splits a container file's uncompressed content into
// documents. Empty segments (e.g. a leading delimiter) are dropped.
func SplitDocs(raw []byte) [][]byte {
	docs, _ := SplitDocsOffsets(raw)
	return docs
}

// SplitDocsOffsets splits like SplitDocs and additionally reports each
// document's byte offset within the uncompressed file — the "document
// location on disk" recorded by the parser's Step 1 doc table
// (§III.C).
func SplitDocsOffsets(raw []byte) (docs [][]byte, offsets []int) {
	return SplitDocsOffsetsAppend(raw, nil, nil)
}

// SplitDocsOffsetsAppend is SplitDocsOffsets appending into caller
// buffers, so the pipeline's per-file scratch can be recycled instead
// of reallocated (pass docs[:0], offsets[:0] to reuse capacity).
func SplitDocsOffsetsAppend(raw []byte, docs [][]byte, offsets []int) ([][]byte, []int) {
	delim := []byte(DocDelim)
	pos := 0
	for pos <= len(raw) {
		next := bytes.Index(raw[pos:], delim)
		var seg []byte
		segStart := pos
		if next < 0 {
			seg = raw[pos:]
			pos = len(raw) + 1
		} else {
			seg = raw[pos : pos+next]
			pos += next + len(delim)
		}
		if len(bytes.TrimSpace(seg)) > 0 {
			docs = append(docs, seg)
			offsets = append(offsets, segStart)
		}
	}
	return docs, offsets
}

// englishPool provides real English tokens (including stop words and
// stemmable forms) so the parser's stemming and stop-word stages see
// realistic traffic. Order matters: Zipf rank 0 is "the".
var englishPool = []string{
	"the", "of", "and", "to", "a", "in", "is", "it", "you", "that",
	"was", "for", "on", "are", "with", "as", "they", "be", "at", "one",
	"have", "this", "from", "or", "had", "by", "word", "but", "what",
	"some", "we", "can", "out", "other", "were", "all", "there", "when",
	"use", "your", "how", "said", "an", "each", "she", "which", "their",
	"time", "will", "way", "about", "many", "then", "them", "would",
	"write", "like", "these", "her", "long", "make", "thing", "see",
	"him", "two", "has", "look", "more", "day", "could", "go", "come",
	"did", "number", "sound", "no", "most", "people", "my", "over",
	"know", "water", "than", "call", "first", "who", "may", "down",
	"side", "been", "now", "find", "any", "new", "work", "part", "take",
	"get", "place", "made", "live", "where", "after", "back", "little",
	"only", "round", "man", "year", "came", "show", "every", "good",
	"give", "our", "under", "name", "very", "through", "just", "form",
	"sentence", "great", "think", "say", "help", "low", "line", "differ",
	"turn", "cause", "much", "mean", "before", "move", "right", "boy",
	"old", "too", "same", "tell", "does", "set", "three", "want", "air",
	"well", "also", "play", "small", "end", "put", "home", "read",
	"hand", "port", "large", "spell", "add", "even", "land", "here",
	"must", "big", "high", "such", "follow", "act", "why", "ask", "men",
	"change", "went", "light", "kind", "off", "need", "house", "picture",
	"try", "us", "again", "animal", "point", "mother", "world", "near",
	"build", "self", "earth", "father", "parallelize", "parallelism",
	"indexing", "computation", "processing", "generations", "optimized",
	"documents", "dictionaries", "throughput", "applications",
}

var markupPool = []string{
	"html", "head", "body", "div", "span", "href", "http", "www", "com",
	"img", "src", "table", "tr", "td", "class", "style", "script", "meta",
	"title", "link", "br", "ul", "li", "font", "center", "nbsp", "amp",
}

// Generator produces the synthetic collection for one profile. Files
// are generated lazily and deterministically: file i's content depends
// only on (profile, i).
type Generator struct {
	p     Profile
	vocab []string
}

// NewGenerator builds the vocabulary for a profile.
func NewGenerator(p Profile) *Generator {
	g := &Generator{p: p}
	rng := rand.New(rand.NewSource(p.Seed))
	g.vocab = make([]string, p.VocabSize)
	var sb bytes.Buffer
	for i := range g.vocab {
		sb.Reset()
		// Syllabic words: realistic prefix sharing and length spread
		// (avg near the paper's 6.6-char stemmed tokens).
		syl := 2 + rng.Intn(3)
		for s := 0; s < syl; s++ {
			sb.WriteByte(consonants[rng.Intn(len(consonants))])
			sb.WriteByte(vowels[rng.Intn(len(vowels))])
			if rng.Intn(3) == 0 {
				sb.WriteByte(consonants[rng.Intn(len(consonants))])
			}
		}
		g.vocab[i] = sb.String()
	}
	return g
}

const (
	consonants = "bcdfghjklmnpqrstvwz"
	vowels     = "aeiou"
)

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// FileName reports the container name of file i.
func (g *Generator) FileName(i int) string {
	ext := ".txt"
	if g.p.Compressed {
		ext = ".txt.gz"
	}
	return fmt.Sprintf("%s-%05d%s", g.p.Name, i, ext)
}

// GenerateFile produces the raw stored bytes of file i (gzip-compressed
// when the profile says so) plus the uncompressed size.
func (g *Generator) GenerateFile(i int) (stored []byte, uncompressed int) {
	plain := g.generatePlain(i)
	if !g.p.Compressed {
		return plain, len(plain)
	}
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	zw.Write(plain)
	zw.Close()
	return buf.Bytes(), len(plain)
}

// GeneratePlain produces the uncompressed content of file i.
func (g *Generator) GeneratePlain(i int) []byte { return g.generatePlain(i) }

func (g *Generator) generatePlain(fileIdx int) []byte {
	rng := rand.New(rand.NewSource(g.p.Seed ^ int64(fileIdx)*0x1E3779B97F4A7C15))
	zipf := rand.NewZipf(rng, g.p.ZipfS, g.p.ZipfV, uint64(g.p.VocabSize-1))
	engZipf := rand.NewZipf(rng, 1.4, 2.0, uint64(len(englishPool)-1))

	var out bytes.Buffer
	for d := 0; d < g.p.DocsPerFile; d++ {
		out.WriteString(DocDelim)
		n := g.docTokens(rng)
		line := 0
		for t := 0; t < n; t++ {
			g.writeToken(&out, rng, zipf, engZipf)
			line++
			if line >= 12 {
				out.WriteByte('\n')
				line = 0
			} else {
				out.WriteByte(' ')
			}
		}
	}
	return out.Bytes()
}

func (g *Generator) docTokens(rng *rand.Rand) int {
	f := math.Exp(rng.NormFloat64() * g.p.DocTokensSpread)
	n := int(float64(g.p.MeanDocTokens) * f)
	if n < 8 {
		n = 8
	}
	if maxN := 64 * g.p.MeanDocTokens; n > maxN {
		n = maxN
	}
	return n
}

func (g *Generator) writeToken(out *bytes.Buffer, rng *rand.Rand, zipf, engZipf *rand.Zipf) {
	r := rng.Float64()
	switch {
	case r < g.p.MarkupRatio:
		out.WriteByte('<')
		out.WriteString(markupPool[rng.Intn(len(markupPool))])
		out.WriteByte('>')
	case r < g.p.MarkupRatio+g.p.NumericRatio:
		fmt.Fprintf(out, "%d", rng.Intn(100000))
	case r < g.p.MarkupRatio+g.p.NumericRatio+g.p.SpecialRatio:
		// Token with a non-ASCII byte (UTF-8 e-acute) somewhere.
		w := g.vocab[zipf.Uint64()]
		cut := rng.Intn(len(w) + 1)
		out.WriteString(w[:cut])
		out.WriteString("\xc3\xa9")
		out.WriteString(w[cut:])
	case r < g.p.MarkupRatio+g.p.NumericRatio+g.p.SpecialRatio+g.p.EnglishRatio:
		out.WriteString(englishPool[engZipf.Uint64()])
	default:
		out.WriteString(g.vocab[zipf.Uint64()])
	}
}
