package corpus

import (
	"fastinvert/internal/parser"
	"fastinvert/internal/trie"
)

// Stats describes a collection the way Table III does.
type Stats struct {
	Name             string
	Files            int
	CompressedSize   int64
	UncompressedSize int64
	Documents        int64
	Terms            int64 // distinct stemmed, stop-filtered terms
	Tokens           int64 // total surviving occurrences
}

// ComputeStats scans a source with the real parsing pipeline and
// reports Table III statistics. Cost is one full parse of the
// collection, which is fine at synthetic scale.
func ComputeStats(src Source) (Stats, error) {
	var st Stats
	st.Files = src.NumFiles()
	p := parser.New(nil)
	seen := make(map[int]map[string]struct{})
	for i := 0; i < src.NumFiles(); i++ {
		stored, compressed, err := src.ReadFile(i)
		if err != nil {
			return st, err
		}
		st.CompressedSize += int64(len(stored))
		plain, err := Decompress(stored, compressed)
		if err != nil {
			return st, err
		}
		st.UncompressedSize += int64(len(plain))
		blk := parser.NewBlock(0)
		for d, doc := range SplitDocs(plain) {
			p.ParseDoc(uint32(d), doc, blk)
			st.Documents++
		}
		st.Tokens += int64(blk.Tokens)
		for idx, g := range blk.Groups {
			m := seen[idx]
			if m == nil {
				m = make(map[string]struct{})
				seen[idx] = m
			}
			err := g.ForEach(func(_ uint32, stripped []byte) error {
				if _, ok := m[string(stripped)]; !ok {
					m[string(stripped)] = struct{}{}
				}
				return nil
			})
			if err != nil {
				return st, err
			}
		}
	}
	for _, m := range seen {
		st.Terms += int64(len(m))
	}
	return st, nil
}

// CollectionSkew summarizes how token mass concentrates in trie
// collections — the property behind the popular/unpopular split. It
// reports the fraction of tokens covered by the top-k collections.
func CollectionSkew(src Source, topK int) (fraction float64, err error) {
	p := parser.New(nil)
	counts := make([]int64, trie.NumCollections)
	var total int64
	for i := 0; i < src.NumFiles(); i++ {
		stored, compressed, err := src.ReadFile(i)
		if err != nil {
			return 0, err
		}
		plain, err := Decompress(stored, compressed)
		if err != nil {
			return 0, err
		}
		blk := parser.NewBlock(0)
		for d, doc := range SplitDocs(plain) {
			p.ParseDoc(uint32(d), doc, blk)
		}
		for idx, g := range blk.Groups {
			counts[idx] += int64(g.Tokens)
			total += int64(g.Tokens)
		}
	}
	if total == 0 {
		return 0, nil
	}
	// Partial selection of the topK largest counts.
	top := make([]int64, 0, topK)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		if len(top) < topK {
			top = append(top, c)
			continue
		}
		minI, minV := 0, top[0]
		for j, v := range top {
			if v < minV {
				minI, minV = j, v
			}
		}
		if c > minV {
			top[minI] = c
		}
	}
	var sum int64
	for _, c := range top {
		sum += c
	}
	return float64(sum) / float64(total), nil
}
