package corpus

import (
	"bytes"
	"path/filepath"
	"testing"
)

func smallProfile() Profile {
	p := ClueWeb09(1)
	p.VocabSize = 5000
	p.DocsPerFile = 12
	p.MeanDocTokens = 60
	return p
}

func TestDeterministicGeneration(t *testing.T) {
	g1 := NewGenerator(smallProfile())
	g2 := NewGenerator(smallProfile())
	for i := 0; i < 3; i++ {
		a, ua := g1.GenerateFile(i)
		b, ub := g2.GenerateFile(i)
		if !bytes.Equal(a, b) || ua != ub {
			t.Fatalf("file %d not deterministic", i)
		}
	}
	a, _ := g1.GenerateFile(0)
	b, _ := g1.GenerateFile(1)
	if bytes.Equal(a, b) {
		t.Error("distinct files should differ")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	g := NewGenerator(smallProfile())
	stored, uncompressed := g.GenerateFile(0)
	if len(stored) >= uncompressed {
		t.Errorf("gzip did not shrink: %d >= %d", len(stored), uncompressed)
	}
	plain, err := Decompress(stored, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != uncompressed {
		t.Errorf("decompressed %d bytes, want %d", len(plain), uncompressed)
	}
	if !bytes.Equal(plain, g.GeneratePlain(0)) {
		t.Error("round trip mismatch")
	}
}

func TestSplitDocsCount(t *testing.T) {
	p := smallProfile()
	g := NewGenerator(p)
	docs := SplitDocs(g.GeneratePlain(0))
	if len(docs) != p.DocsPerFile {
		t.Fatalf("SplitDocs = %d docs, want %d", len(docs), p.DocsPerFile)
	}
	for i, d := range docs {
		if len(bytes.TrimSpace(d)) == 0 {
			t.Errorf("doc %d empty", i)
		}
	}
}

func TestSplitDocsOffsets(t *testing.T) {
	raw := []byte(DocDelim + "alpha beta" + DocDelim + "  " + DocDelim + "gamma")
	docs, offsets := SplitDocsOffsets(raw)
	if len(docs) != 2 || len(offsets) != 2 {
		t.Fatalf("got %d docs, %d offsets", len(docs), len(offsets))
	}
	for i := range docs {
		got := raw[offsets[i] : offsets[i]+len(docs[i])]
		if string(got) != string(docs[i]) {
			t.Errorf("offset %d does not locate doc %d", offsets[i], i)
		}
	}
	// SplitDocs and SplitDocsOffsets agree on generated content.
	g := NewGenerator(smallProfile())
	plain := g.GeneratePlain(0)
	a := SplitDocs(plain)
	b, offs := SplitDocsOffsets(plain)
	if len(a) != len(b) {
		t.Fatalf("doc counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("doc %d differs", i)
		}
		if string(plain[offs[i]:offs[i]+len(b[i])]) != string(b[i]) {
			t.Fatalf("offset %d wrong for doc %d", offs[i], i)
		}
	}
}

func TestSplitDocsEdgeCases(t *testing.T) {
	if got := SplitDocs(nil); len(got) != 0 {
		t.Error("nil input should yield no docs")
	}
	raw := []byte(DocDelim + "alpha" + DocDelim + DocDelim + "beta")
	got := SplitDocs(raw)
	if len(got) != 2 || string(got[0]) != "alpha" || string(got[1]) != "beta" {
		t.Errorf("SplitDocs = %q", got)
	}
}

func TestMemSource(t *testing.T) {
	src := NewMemSource(NewGenerator(smallProfile()), 4)
	if src.NumFiles() != 4 {
		t.Fatal("NumFiles")
	}
	stored, compressed, err := src.ReadFile(0)
	if err != nil || !compressed || len(stored) == 0 {
		t.Fatalf("ReadFile: %v compressed=%v len=%d", err, compressed, len(stored))
	}
	if _, _, err := src.ReadFile(4); err == nil {
		t.Error("out-of-range read must fail")
	}
	if src.FileName(0) == src.FileName(1) {
		t.Error("file names must be distinct")
	}
}

func TestWriteDirAndOpenDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	g := NewGenerator(smallProfile())
	total, err := WriteDir(g, 3, dir)
	if err != nil || total <= 0 {
		t.Fatalf("WriteDir: %v (%d bytes)", err, total)
	}
	src, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumFiles() != 3 {
		t.Fatalf("NumFiles = %d", src.NumFiles())
	}
	stored, compressed, err := src.ReadFile(1)
	if err != nil || !compressed {
		t.Fatalf("ReadFile: %v", err)
	}
	want, _ := g.GenerateFile(1)
	if !bytes.Equal(stored, want) {
		t.Error("disk round trip mismatch")
	}
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Error("empty dir must fail")
	}
}

func TestComputeStatsSanity(t *testing.T) {
	src := NewMemSource(NewGenerator(smallProfile()), 3)
	st, err := ComputeStats(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Documents != 36 {
		t.Errorf("Documents = %d, want 36", st.Documents)
	}
	if st.Tokens <= 0 || st.Terms <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.Terms >= st.Tokens {
		t.Errorf("terms %d must be < tokens %d (Zipf reuse)", st.Terms, st.Tokens)
	}
	if st.CompressedSize >= st.UncompressedSize {
		t.Errorf("compression ineffective: %d vs %d", st.CompressedSize, st.UncompressedSize)
	}
}

func TestZipfSkewConcentratesCollections(t *testing.T) {
	src := NewMemSource(NewGenerator(smallProfile()), 3)
	frac, err := CollectionSkew(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's premise: ~100 popular collections dominate the
	// token mass (Zipf head).
	if frac < 0.5 {
		t.Errorf("top-100 collections cover only %.2f of tokens", frac)
	}
	if frac > 1.0 {
		t.Errorf("fraction %f out of range", frac)
	}
}

func TestProfilesDiffer(t *testing.T) {
	cw := ClueWeb09(1)
	wiki := Wikipedia0107(1)
	loc := LibraryOfCongress(1)
	if cw.MarkupRatio == 0 {
		t.Error("ClueWeb should carry markup")
	}
	if wiki.MarkupRatio != 0 {
		t.Error("Wikipedia profile should be markup-free (tags stripped, §IV.C)")
	}
	if wiki.Compressed {
		t.Error("Wikipedia profile should be uncompressed")
	}
	if !cw.Compressed || !loc.Compressed {
		t.Error("web crawls should be compressed")
	}
	if ClueWeb09(0).MeanDocTokens != ClueWeb09(1).MeanDocTokens {
		t.Error("scale <= 0 must behave as 1")
	}
}

func BenchmarkGenerateFile(b *testing.B) {
	g := NewGenerator(smallProfile())
	b.ReportAllocs()
	var bytesTotal int64
	for i := 0; i < b.N; i++ {
		_, u := g.GenerateFile(i % 8)
		bytesTotal += int64(u)
	}
	b.SetBytes(bytesTotal / int64(b.N))
}
