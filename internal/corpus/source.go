package corpus

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Source is a readable document collection: an ordered set of container
// files, possibly gzip-compressed, each holding DocDelim-separated
// documents. The pipeline's Step 1 (read, decompress, split) consumes
// exactly this interface, whether the collection is generated in
// memory or stored on disk.
type Source interface {
	// NumFiles reports the number of container files.
	NumFiles() int
	// FileName reports file i's name (diagnostics, Fig. 11 x-axis).
	FileName(i int) string
	// ReadFile returns file i's stored bytes and whether they are
	// gzip-compressed.
	ReadFile(i int) (stored []byte, compressed bool, err error)
}

// Decompress returns the uncompressed content of a stored file.
func Decompress(stored []byte, compressed bool) ([]byte, error) {
	if !compressed {
		return stored, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(stored))
	if err != nil {
		return nil, fmt.Errorf("corpus: gzip open: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("corpus: gzip read: %w", err)
	}
	return out, nil
}

// MemSource serves a generated collection lazily from memory.
type MemSource struct {
	gen      *Generator
	numFiles int
}

// NewMemSource wraps a generator as an n-file source.
func NewMemSource(gen *Generator, numFiles int) *MemSource {
	return &MemSource{gen: gen, numFiles: numFiles}
}

// NumFiles implements Source.
func (s *MemSource) NumFiles() int { return s.numFiles }

// FileName implements Source.
func (s *MemSource) FileName(i int) string { return s.gen.FileName(i) }

// ReadFile implements Source.
func (s *MemSource) ReadFile(i int) ([]byte, bool, error) {
	if i < 0 || i >= s.numFiles {
		return nil, false, fmt.Errorf("corpus: file %d out of range", i)
	}
	stored, _ := s.gen.GenerateFile(i)
	return stored, s.gen.Profile().Compressed, nil
}

// Generator returns the underlying generator.
func (s *MemSource) Generator() *Generator { return s.gen }

// DirSource serves container files from a directory (written by
// WriteDir or by any external producer). Files are ordered by name;
// names ending in .gz are treated as compressed.
type DirSource struct {
	dir   string
	names []string
}

// OpenDir scans a directory into a DirSource.
func OpenDir(dir string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".txt") || strings.HasSuffix(e.Name(), ".txt.gz") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("corpus: no .txt/.txt.gz files in %s", dir)
	}
	sort.Strings(names)
	return &DirSource{dir: dir, names: names}, nil
}

// NumFiles implements Source.
func (s *DirSource) NumFiles() int { return len(s.names) }

// FileName implements Source.
func (s *DirSource) FileName(i int) string { return s.names[i] }

// ReadFile implements Source.
func (s *DirSource) ReadFile(i int) ([]byte, bool, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, s.names[i]))
	if err != nil {
		return nil, false, err
	}
	return b, strings.HasSuffix(s.names[i], ".gz"), nil
}

// WriteDir materializes numFiles of a generated collection into dir,
// creating it if needed. It returns the total stored bytes.
func WriteDir(gen *Generator, numFiles int, dir string) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for i := 0; i < numFiles; i++ {
		stored, _ := gen.GenerateFile(i)
		if err := os.WriteFile(filepath.Join(dir, gen.FileName(i)), stored, 0o644); err != nil {
			return total, err
		}
		total += int64(len(stored))
	}
	return total, nil
}
