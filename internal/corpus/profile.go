// Package corpus generates the synthetic document collections that
// stand in for the paper's test data (Table III): the ClueWeb09 first
// English segment, the Wikipedia01-07 dump, and the Library of
// Congress crawl. The real collections are terabyte-scale and not
// redistributable; these generators reproduce the properties the
// algorithm is sensitive to — Zipf-skewed term frequencies (which
// drive the popular/unpopular CPU-GPU split), document length
// distributions, markup density, numeric and special-byte token rates,
// and gzip-compressed container files (which drive the read+decompress
// pipeline stage) — at a configurable scale, fully deterministically.
package corpus

// Profile parameterizes one synthetic collection.
type Profile struct {
	Name string

	// VocabSize is the synthetic vocabulary size (distinct raw words
	// before stemming).
	VocabSize int

	// ZipfS and ZipfV shape the term frequency distribution
	// (rand.Zipf: P(k) proportional to ((v+k)^s)^-1, s > 1).
	ZipfS float64
	ZipfV float64

	// MeanDocTokens and DocTokensSpread shape per-document token
	// counts: length = MeanDocTokens * exp(N(0,1)*DocTokensSpread),
	// clamped to [8, 64*MeanDocTokens].
	MeanDocTokens   int
	DocTokensSpread float64

	// EnglishRatio is the fraction of tokens drawn from a small real
	// English pool (Zipf-weighted), which exercises stop-word removal
	// and stemming exactly as web text does.
	EnglishRatio float64

	// MarkupRatio is the fraction of tokens that are HTML-ish markup
	// (ClueWeb pages carry their tags; the Wikipedia01-07 set had
	// them stripped, §IV.C).
	MarkupRatio float64

	// NumericRatio is the fraction of pure-number tokens.
	NumericRatio float64

	// SpecialRatio is the fraction of tokens carrying a non-ASCII
	// byte (Table I's "special letter" terms).
	SpecialRatio float64

	// DocsPerFile controls container granularity; the paper's
	// ClueWeb09 files hold ~38k pages each (1 GB uncompressed).
	DocsPerFile int

	// Compressed stores files gzip-compressed, as ClueWeb09 and the
	// LoC crawl are (§IV.A's read+decompress discussion).
	Compressed bool

	// Seed makes the whole collection reproducible.
	Seed int64
}

// ClueWeb09 returns a scaled-down profile of the ClueWeb09 first
// English segment: web pages with markup, heavy vocabulary, gzip
// container files. scale=1 yields roughly 4 MB uncompressed across
// 8 files; the ratios, not the absolute size, are what experiments
// depend on.
func ClueWeb09(scale float64) Profile {
	return Profile{
		Name:            "clueweb09-like",
		VocabSize:       120_000,
		ZipfS:           1.22,
		ZipfV:           2.0,
		MeanDocTokens:   int(420 * clampScale(scale)),
		DocTokensSpread: 0.9,
		EnglishRatio:    0.45,
		MarkupRatio:     0.14,
		NumericRatio:    0.035,
		SpecialRatio:    0.02,
		DocsPerFile:     int(64 * clampScale(scale)),
		Compressed:      true,
		Seed:            0x5EED_C1EB,
	}
}

// Wikipedia0107 returns a profile of the Wikipedia01-07 snapshots:
// markup stripped to pure text, smaller vocabulary, uncompressed
// (1/18 the byte volume of ClueWeb09 but a third of its documents —
// short, text-dense articles, §IV.C).
func Wikipedia0107(scale float64) Profile {
	return Profile{
		Name:            "wikipedia01-07-like",
		VocabSize:       60_000,
		ZipfS:           1.18,
		ZipfV:           2.0,
		MeanDocTokens:   int(160 * clampScale(scale)),
		DocTokensSpread: 0.8,
		EnglishRatio:    0.55,
		MarkupRatio:     0,
		NumericRatio:    0.05,
		SpecialRatio:    0.03,
		DocsPerFile:     int(160 * clampScale(scale)),
		Compressed:      false,
		Seed:            0x5EED_A1B2,
	}
}

// LibraryOfCongress returns a profile of the Congressional crawl:
// news/government pages, weekly re-crawled snapshots (lower vocabulary
// growth, high duplication), compressed.
func LibraryOfCongress(scale float64) Profile {
	return Profile{
		Name:            "library-of-congress-like",
		VocabSize:       45_000,
		ZipfS:           1.30,
		ZipfV:           2.0,
		MeanDocTokens:   int(330 * clampScale(scale)),
		DocTokensSpread: 0.7,
		EnglishRatio:    0.55,
		MarkupRatio:     0.12,
		NumericRatio:    0.06,
		SpecialRatio:    0.01,
		DocsPerFile:     int(80 * clampScale(scale)),
		Compressed:      true,
		Seed:            0x5EED_10C5,
	}
}

func clampScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}
