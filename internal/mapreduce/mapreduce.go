// Package mapreduce is an in-process MapReduce runtime (Dean &
// Ghemawat's model, §II) used to implement the paper's comparison
// baselines: Ivory MapReduce [Lin et al. 2009] and Single-Pass
// MapReduce [McCreadie et al. 2009].
//
// The runtime really executes the jobs — mappers emit key/value pairs
// that are partitioned, optionally combined, shuffled, sorted and
// grouped for the reducers — so baseline outputs can be verified
// against the reference indexer. Per-split and per-partition serial
// durations are measured during execution, and ClusterMakespan
// schedules them onto a modeled cluster (map workers, reduce workers,
// shuffle bandwidth), mirroring how the engine's pipesim turns
// measured durations into parallel timings.
package mapreduce

import (
	"fmt"
	"sort"
	"time"
)

// KV is one emitted key/value pair. Keys are byte strings whose
// lexicographic order defines the reduce grouping and ordering —
// Ivory's composite (term, docID) keys rely on this.
type KV struct {
	Key   string
	Value []byte
}

// Mapper processes one document.
type Mapper func(docID uint32, doc []byte, emit func(key string, value []byte)) error

// Reducer processes one key's value group; values arrive in the order
// their keys sorted (stable within equal keys by emission order).
type Reducer func(key string, values [][]byte, emit func(key string, value []byte)) error

// Partitioner routes a key to one of r partitions.
type Partitioner func(key string, r int) int

// Split is one map task's input: a contiguous range of documents.
type Split struct {
	DocBase uint32
	Docs    [][]byte
}

// Config shapes a job.
type Config struct {
	// Reducers is the number of reduce partitions.
	Reducers int

	// Partition defaults to an FNV hash of the whole key.
	Partition Partitioner

	// Combiner optionally pre-reduces each split's output (same
	// contract as Reducer).
	Combiner Reducer
}

// Timing holds measured serial durations for cluster modeling.
type Timing struct {
	MapSec      []float64 // per split: map (+ combine + partition)
	ReduceSec   []float64 // per partition: sort + group + reduce
	ShuffleKV   int64     // pairs crossing the shuffle
	ShuffleB    int64     // bytes crossing the shuffle
	TotalSerial float64
}

// Output is a completed job.
type Output struct {
	// Partitions[r] holds reducer r's emitted pairs in key order.
	Partitions [][]KV
	Timing     Timing
}

// DefaultPartition hashes the full key (FNV-1a).
func DefaultPartition(key string, r int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(r))
}

// Run executes the job to completion.
func Run(cfg Config, splits []Split, m Mapper, r Reducer) (*Output, error) {
	if cfg.Reducers <= 0 {
		cfg.Reducers = 1
	}
	if cfg.Partition == nil {
		cfg.Partition = DefaultPartition
	}
	out := &Output{Partitions: make([][]KV, cfg.Reducers)}
	partitions := make([][]KV, cfg.Reducers)

	// Map phase (per-split measured).
	for si, sp := range splits {
		t0 := time.Now()
		var emitted []KV
		emit := func(key string, value []byte) {
			emitted = append(emitted, KV{key, append([]byte(nil), value...)})
		}
		for d, doc := range sp.Docs {
			if err := m(sp.DocBase+uint32(d), doc, emit); err != nil {
				return nil, fmt.Errorf("mapreduce: map split %d: %w", si, err)
			}
		}
		if cfg.Combiner != nil {
			var err error
			emitted, err = combine(emitted, cfg.Combiner)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: combine split %d: %w", si, err)
			}
		}
		for _, kv := range emitted {
			p := cfg.Partition(kv.Key, cfg.Reducers)
			if p < 0 || p >= cfg.Reducers {
				return nil, fmt.Errorf("mapreduce: partitioner returned %d of %d", p, cfg.Reducers)
			}
			partitions[p] = append(partitions[p], kv)
			out.Timing.ShuffleKV++
			out.Timing.ShuffleB += int64(len(kv.Key) + len(kv.Value) + 8)
		}
		d := time.Since(t0).Seconds()
		out.Timing.MapSec = append(out.Timing.MapSec, d)
		out.Timing.TotalSerial += d
	}

	// Reduce phase (per-partition measured): sort, group, reduce.
	for p := 0; p < cfg.Reducers; p++ {
		t0 := time.Now()
		kvs := partitions[p]
		sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
		emit := func(key string, value []byte) {
			out.Partitions[p] = append(out.Partitions[p], KV{key, append([]byte(nil), value...)})
		}
		for i := 0; i < len(kvs); {
			j := i + 1
			for j < len(kvs) && kvs[j].Key == kvs[i].Key {
				j++
			}
			values := make([][]byte, 0, j-i)
			for k := i; k < j; k++ {
				values = append(values, kvs[k].Value)
			}
			if err := r(kvs[i].Key, values, emit); err != nil {
				return nil, fmt.Errorf("mapreduce: reduce %q: %w", kvs[i].Key, err)
			}
			i = j
		}
		d := time.Since(t0).Seconds()
		out.Timing.ReduceSec = append(out.Timing.ReduceSec, d)
		out.Timing.TotalSerial += d
	}
	return out, nil
}

func combine(kvs []KV, c Reducer) ([]KV, error) {
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	var out []KV
	emit := func(key string, value []byte) {
		out = append(out, KV{key, append([]byte(nil), value...)})
	}
	for i := 0; i < len(kvs); {
		j := i + 1
		for j < len(kvs) && kvs[j].Key == kvs[i].Key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, kvs[k].Value)
		}
		if err := c(kvs[i].Key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// ClusterMakespan schedules the measured durations onto a modeled
// cluster: map tasks LPT-packed onto mapWorkers, a shuffle at
// netBytesPerSec aggregate bandwidth, reduce partitions LPT-packed
// onto reduceWorkers — the batch-synchronous Hadoop execution the
// baselines ran on.
func (t *Timing) ClusterMakespan(mapWorkers, reduceWorkers int, netBytesPerSec float64) float64 {
	span := LPT(t.MapSec, mapWorkers) + LPT(t.ReduceSec, reduceWorkers)
	if netBytesPerSec > 0 {
		span += float64(t.ShuffleB) / netBytesPerSec
	}
	return span
}

// LPT packs task durations onto n workers longest-first and returns
// the makespan.
func LPT(tasks []float64, n int) float64 {
	if n <= 0 {
		n = 1
	}
	sorted := append([]float64(nil), tasks...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	load := make([]float64, n)
	for _, d := range sorted {
		minI := 0
		for i := 1; i < n; i++ {
			if load[i] < load[minI] {
				minI = i
			}
		}
		load[minI] += d
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
