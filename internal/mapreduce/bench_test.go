package mapreduce

import (
	"strconv"
	"strings"
	"testing"
)

func BenchmarkWordCountJob(b *testing.B) {
	doc := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 40))
	splits := make([]Split, 8)
	for i := range splits {
		splits[i] = Split{DocBase: uint32(i * 4), Docs: [][]byte{doc, doc, doc, doc}}
	}
	m := func(_ uint32, doc []byte, emit func(string, []byte)) error {
		for _, w := range strings.Fields(string(doc)) {
			emit(w, []byte("1"))
		}
		return nil
	}
	r := func(key string, values [][]byte, emit func(string, []byte)) error {
		sum := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			sum += n
		}
		emit(key, []byte(strconv.Itoa(sum)))
		return nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Reducers: 4, Combiner: r}, splits, m, r); err != nil {
			b.Fatal(err)
		}
	}
}
