package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// wordCount is the canonical MapReduce smoke test.
func wordCountJob(t *testing.T, cfg Config) map[string]int {
	t.Helper()
	splits := []Split{
		{DocBase: 0, Docs: [][]byte{[]byte("a b a"), []byte("b c")}},
		{DocBase: 2, Docs: [][]byte{[]byte("c c a")}},
	}
	m := func(_ uint32, doc []byte, emit func(string, []byte)) error {
		for _, w := range strings.Fields(string(doc)) {
			emit(w, []byte("1"))
		}
		return nil
	}
	r := func(key string, values [][]byte, emit func(string, []byte)) error {
		sum := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			sum += n
		}
		emit(key, []byte(strconv.Itoa(sum)))
		return nil
	}
	out, err := Run(cfg, splits, m, r)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, part := range out.Partitions {
		prev := ""
		for _, kv := range part {
			if kv.Key < prev {
				t.Errorf("partition output unsorted: %q after %q", kv.Key, prev)
			}
			prev = kv.Key
			n, _ := strconv.Atoi(string(kv.Value))
			got[kv.Key] += n
		}
	}
	return got
}

func TestWordCount(t *testing.T) {
	for _, reducers := range []int{1, 2, 7} {
		got := wordCountJob(t, Config{Reducers: reducers})
		want := map[string]int{"a": 3, "b": 2, "c": 3}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("reducers=%d: count[%q] = %d, want %d", reducers, k, got[k], v)
			}
		}
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	sum := func(key string, values [][]byte, emit func(string, []byte)) error {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	}
	runKV := func(withCombiner bool) int64 {
		cfg := Config{Reducers: 2}
		if withCombiner {
			cfg.Combiner = sum
		}
		splits := []Split{{Docs: [][]byte{[]byte(strings.Repeat("x ", 100))}}}
		m := func(_ uint32, doc []byte, emit func(string, []byte)) error {
			for _, w := range strings.Fields(string(doc)) {
				emit(w, []byte("1"))
			}
			return nil
		}
		out, err := Run(cfg, splits, m, sum)
		if err != nil {
			t.Fatal(err)
		}
		if string(out.Partitions[DefaultPartition("x", 2)][0].Value) != "100" {
			t.Fatal("wrong count")
		}
		return out.Timing.ShuffleKV
	}
	without := runKV(false)
	with := runKV(true)
	if with >= without {
		t.Errorf("combiner did not shrink shuffle: %d vs %d", with, without)
	}
	if with != 1 {
		t.Errorf("combined shuffle = %d pairs, want 1", with)
	}
}

func TestCustomPartitionKeepsTermTogether(t *testing.T) {
	// Ivory-style composite keys: partition on the term prefix only.
	part := func(key string, r int) int {
		term, _, _ := strings.Cut(key, "\x00")
		return DefaultPartition(term, r)
	}
	splits := []Split{{Docs: [][]byte{[]byte("ignored")}}}
	m := func(_ uint32, _ []byte, emit func(string, []byte)) error {
		emit("term\x00doc1", []byte("1"))
		emit("term\x00doc2", []byte("1"))
		emit("other\x00doc1", []byte("1"))
		return nil
	}
	identity := func(key string, values [][]byte, emit func(string, []byte)) error {
		emit(key, values[0])
		return nil
	}
	out, err := Run(Config{Reducers: 4, Partition: part}, splits, m, identity)
	if err != nil {
		t.Fatal(err)
	}
	// Both "term" keys land in the same partition, in docID order.
	p := part("term\x00", 4)
	var terms []string
	for _, kv := range out.Partitions[p] {
		if strings.HasPrefix(kv.Key, "term\x00") {
			terms = append(terms, kv.Key)
		}
	}
	if len(terms) != 2 || terms[0] > terms[1] {
		t.Errorf("composite keys mishandled: %v", terms)
	}
}

func TestPartitionerRangeChecked(t *testing.T) {
	m := func(_ uint32, _ []byte, emit func(string, []byte)) error {
		emit("k", nil)
		return nil
	}
	r := func(key string, _ [][]byte, _ func(string, []byte)) error { return nil }
	bad := func(string, int) int { return 99 }
	_, err := Run(Config{Reducers: 2, Partition: bad},
		[]Split{{Docs: [][]byte{[]byte("x")}}}, m, r)
	if err == nil {
		t.Error("out-of-range partition must error")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	m := func(_ uint32, _ []byte, _ func(string, []byte)) error {
		return fmt.Errorf("boom")
	}
	r := func(string, [][]byte, func(string, []byte)) error { return nil }
	if _, err := Run(Config{}, []Split{{Docs: [][]byte{[]byte("x")}}}, m, r); err == nil {
		t.Error("map error must propagate")
	}
}

func TestTimingAccounting(t *testing.T) {
	got := wordCountJob(t, Config{Reducers: 3})
	if len(got) != 3 {
		t.Fatal("bad word count")
	}
	// Rebuild to inspect timing.
	splits := []Split{{Docs: [][]byte{[]byte("a b")}}, {Docs: [][]byte{[]byte("c")}}}
	m := func(_ uint32, doc []byte, emit func(string, []byte)) error {
		for _, w := range strings.Fields(string(doc)) {
			emit(w, []byte("1"))
		}
		return nil
	}
	r := func(key string, v [][]byte, emit func(string, []byte)) error {
		emit(key, v[0])
		return nil
	}
	out, err := Run(Config{Reducers: 2}, splits, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timing.MapSec) != 2 || len(out.Timing.ReduceSec) != 2 {
		t.Fatalf("timing arrays wrong: %+v", out.Timing)
	}
	if out.Timing.ShuffleKV != 3 || out.Timing.ShuffleB <= 0 {
		t.Errorf("shuffle accounting: %+v", out.Timing)
	}
	if out.Timing.ClusterMakespan(2, 2, 1e9) <= 0 {
		t.Error("makespan must be positive")
	}
}

func TestLPT(t *testing.T) {
	if got := LPT([]float64{4, 3, 2, 1}, 2); got != 5 {
		t.Errorf("LPT = %v, want 5", got)
	}
	if got := LPT([]float64{10}, 4); got != 10 {
		t.Errorf("LPT single = %v, want 10", got)
	}
	if got := LPT(nil, 3); got != 0 {
		t.Errorf("LPT empty = %v, want 0", got)
	}
	if got := LPT([]float64{1, 1}, 0); got != 2 {
		t.Errorf("LPT n=0 treated as 1: %v", got)
	}
}

func TestMoreWorkersNeverSlower(t *testing.T) {
	tasks := []float64{5, 4, 3, 2, 1, 1, 1}
	prev := LPT(tasks, 1)
	for n := 2; n < 10; n++ {
		cur := LPT(tasks, n)
		if cur > prev {
			t.Errorf("LPT(%d) = %v > LPT(%d) = %v", n, cur, n-1, prev)
		}
		prev = cur
	}
}
