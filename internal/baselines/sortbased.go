package baselines

import (
	"sort"
	"time"

	"fastinvert/internal/corpus"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// triple is one (term, document, frequency) record of the sort-based
// method.
type triple struct {
	termID uint32
	doc    uint32
	tf     uint32
}

// SortBased implements Moffat & Bell's sort-based inversion (§II):
// postings accumulate as (termID, docID, tf) triples until the memory
// budget fills, each batch is sorted by (termID, docID) and flushed as
// a run, and the runs are merged into final postings lists.
func SortBased(src corpus.Source, memoryBudget int) (*Result, error) {
	if memoryBudget <= 0 {
		memoryBudget = 8 << 20
	}
	budgetTriples := memoryBudget / 12
	if budgetTriples < 1 {
		budgetTriples = 1
	}
	files, bases, _, err := loadDocs(src)
	if err != nil {
		return nil, err
	}
	p := parser.New(nil)
	res := &Result{Lists: make(map[string]*postings.List)}
	t0 := time.Now()

	termIDs := make(map[string]uint32) // global vocabulary
	var vocab []string
	var buf []triple
	var runs [][]triple

	flush := func() {
		if len(buf) == 0 {
			return
		}
		// Stable keeps docID order within a term: triples were
		// appended in document order.
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].termID < buf[j].termID })
		runs = append(runs, buf)
		buf = nil
		res.Stats.RunsFlushed++
	}

	for fi, docs := range files {
		for d, doc := range docs {
			docID := bases[fi] + uint32(d)
			for _, occ := range parseDocTerms(p, doc) {
				id, ok := termIDs[occ.term]
				if !ok {
					id = uint32(len(vocab))
					termIDs[occ.term] = id
					vocab = append(vocab, occ.term)
				}
				buf = append(buf, triple{id, docID, occ.tf})
				res.Stats.Tokens += int64(occ.tf)
			}
			res.Stats.Docs++
			if len(buf) >= budgetTriples {
				flush()
			}
		}
	}
	flush()

	// Merge runs: runs are in document order, so per-term
	// concatenation across runs preserves docID order.
	for _, run := range runs {
		for _, tr := range run {
			term := vocab[tr.termID]
			l := res.Lists[term]
			if l == nil {
				l = &postings.List{}
				res.Lists[term] = l
			}
			l.DocIDs = append(l.DocIDs, tr.doc)
			l.TFs = append(l.TFs, tr.tf)
		}
	}
	res.Stats.SerialSec = time.Since(t0).Seconds()
	return res, nil
}
