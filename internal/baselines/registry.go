package baselines

import "fastinvert/internal/corpus"

// BuildFunc is the common build interface every baseline satisfies
// once its tuning knobs are bound: a complete index build from a
// corpus source. The differential harness (internal/verify) iterates
// baselines through this seam without knowing their parameters.
type BuildFunc func(src corpus.Source) (*Result, error)

// NamedBuilder pairs a baseline with a stable display name.
type NamedBuilder struct {
	Name  string
	Build BuildFunc
}

// All returns every baseline under its default tuning, plus one
// stressed variant each for the run-based indexers (a tiny memory
// budget forces multi-run merging, the code path where docID order is
// easiest to lose).
func All() []NamedBuilder {
	return []NamedBuilder{
		{"spimi", func(src corpus.Source) (*Result, error) { return SPIMI(src, 0) }},
		{"spimi-tiny", func(src corpus.Source) (*Result, error) { return SPIMI(src, 16<<10) }},
		{"sort-based", func(src corpus.Source) (*Result, error) { return SortBased(src, 0) }},
		{"sort-based-tiny", func(src corpus.Source) (*Result, error) { return SortBased(src, 8<<10) }},
		{"single-pass-mr", func(src corpus.Source) (*Result, error) { return SinglePassMR(src, 3) }},
		{"ivory-mr", func(src corpus.Source) (*Result, error) { return IvoryMR(src, 4) }},
	}
}
