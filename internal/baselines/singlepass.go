package baselines

import (
	"fmt"
	"time"

	"fastinvert/internal/corpus"
	"fastinvert/internal/encoding"
	"fastinvert/internal/mapreduce"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// SinglePassMR implements McCreadie et al.'s single-pass MapReduce
// indexing (§II): each map task indexes its whole split in memory and
// emits <term, partial postings list>, sending each term once per
// split instead of once per posting, which slashes shuffle volume; the
// reducer merges the partial lists in docID order.
func SinglePassMR(src corpus.Source, reducers int) (*Result, error) {
	files, bases, _, err := loadDocs(src)
	if err != nil {
		return nil, err
	}
	splits := make([]mapreduce.Split, len(files))
	for i := range files {
		splits[i] = mapreduce.Split{DocBase: bases[i], Docs: files[i]}
	}

	p := parser.New(nil)
	// Per-split partial index, flushed when the split's last document
	// is mapped. The runtime calls the mapper per document, so the
	// mapper tracks its split via docID bases.
	partial := make(map[string]*postings.List)
	splitEnd := make(map[uint32]bool, len(files)) // docIDs that end a split
	for i := range files {
		if n := len(files[i]); n > 0 {
			splitEnd[bases[i]+uint32(n)-1] = true
		}
	}
	mapper := func(docID uint32, doc []byte, emit func(string, []byte)) error {
		for _, occ := range parseDocTerms(p, doc) {
			l := partial[occ.term]
			if l == nil {
				l = &postings.List{}
				partial[occ.term] = l
			}
			l.DocIDs = append(l.DocIDs, docID)
			l.TFs = append(l.TFs, occ.tf)
		}
		if splitEnd[docID] {
			for term, l := range partial {
				buf := encoding.PutUvarByte(nil, uint64(l.Len()))
				buf, err := encoding.EncodePostings(buf, l.DocIDs, l.TFs)
				if err != nil {
					return fmt.Errorf("singlepass: %q: %w", term, err)
				}
				emit(term, buf)
			}
			partial = make(map[string]*postings.List)
		}
		return nil
	}
	reducer := func(term string, values [][]byte, emit func(string, []byte)) error {
		// Values are partial lists from different splits; they arrive
		// in emission order, which follows split order because the
		// runtime preserves stable order for equal keys.
		merged := &postings.List{}
		for _, v := range values {
			count, n := encoding.UvarByte(v)
			if n <= 0 {
				return fmt.Errorf("singlepass: bad partial header for %q", term)
			}
			docIDs, tfs, _, err := encoding.DecodePostings(v[n:], int(count))
			if err != nil {
				return fmt.Errorf("singlepass: %q: %w", term, err)
			}
			if err := postings.Concat(merged, &postings.List{DocIDs: docIDs, TFs: tfs}); err != nil {
				return fmt.Errorf("singlepass: %q: %w", term, err)
			}
		}
		buf := encoding.PutUvarByte(nil, uint64(merged.Len()))
		buf, err := encoding.EncodePostings(buf, merged.DocIDs, merged.TFs)
		if err != nil {
			return err
		}
		emit(term, buf)
		return nil
	}

	t0 := time.Now()
	out, err := mapreduce.Run(mapreduce.Config{Reducers: reducers}, splits, mapper, reducer)
	if err != nil {
		return nil, err
	}
	res := &Result{Lists: make(map[string]*postings.List)}
	for _, part := range out.Partitions {
		for _, kv := range part {
			count, n := encoding.UvarByte(kv.Value)
			docIDs, tfs, _, err := encoding.DecodePostings(kv.Value[n:], int(count))
			if err != nil {
				return nil, err
			}
			res.Lists[kv.Key] = &postings.List{DocIDs: docIDs, TFs: tfs}
			for _, tf := range tfs {
				res.Stats.Tokens += int64(tf)
			}
		}
	}
	res.Stats.SerialSec = time.Since(t0).Seconds()
	res.Stats.MapSec = out.Timing.MapSec
	res.Stats.ReduceSec = out.Timing.ReduceSec
	res.Stats.ShuffleBytes = out.Timing.ShuffleB
	for _, f := range files {
		res.Stats.Docs += int64(len(f))
	}
	return res, nil
}
