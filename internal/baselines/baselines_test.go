package baselines

import (
	"testing"

	"fastinvert/internal/corpus"
	"fastinvert/internal/reference"
)

func testSource() *corpus.MemSource {
	p := corpus.ClueWeb09(1)
	p.VocabSize = 4000
	p.DocsPerFile = 8
	p.MeanDocTokens = 60
	return corpus.NewMemSource(corpus.NewGenerator(p), 3)
}

// TestAllBaselinesMatchReference pins every baseline's full output
// against the serial reference indexer.
func TestAllBaselinesMatchReference(t *testing.T) {
	src := testSource()
	ref, err := reference.BuildFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	builds := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"ivory-r1", func() (*Result, error) { return IvoryMR(src, 1) }},
		{"ivory-r4", func() (*Result, error) { return IvoryMR(src, 4) }},
		{"singlepass-r1", func() (*Result, error) { return SinglePassMR(src, 1) }},
		{"singlepass-r3", func() (*Result, error) { return SinglePassMR(src, 3) }},
		{"spimi-big", func() (*Result, error) { return SPIMI(src, 64<<20) }},
		{"spimi-tiny", func() (*Result, error) { return SPIMI(src, 16<<10) }},
		{"sortbased-big", func() (*Result, error) { return SortBased(src, 64<<20) }},
		{"sortbased-tiny", func() (*Result, error) { return SortBased(src, 8<<10) }},
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			res, err := b.run()
			if err != nil {
				t.Fatal(err)
			}
			if ok, diff := ref.Equal(res.Lists); !ok {
				t.Fatalf("%s differs from reference at %q", b.name, diff)
			}
			if res.Stats.Docs != ref.Docs {
				t.Errorf("docs = %d, want %d", res.Stats.Docs, ref.Docs)
			}
			if res.Stats.SerialSec <= 0 {
				t.Error("missing timing")
			}
		})
	}
}

func TestTinyBudgetsForceMultipleRuns(t *testing.T) {
	src := testSource()
	spimi, err := SPIMI(src, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if spimi.Stats.RunsFlushed < 2 {
		t.Errorf("SPIMI with tiny budget flushed %d runs", spimi.Stats.RunsFlushed)
	}
	sb, err := SortBased(src, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Stats.RunsFlushed < 2 {
		t.Errorf("SortBased with tiny budget flushed %d runs", sb.Stats.RunsFlushed)
	}
}

// TestSinglePassShufflesLessThanIvory verifies McCreadie's core claim:
// emitting partial lists shrinks shuffle volume versus per-posting
// emission.
func TestSinglePassShufflesLessThanIvory(t *testing.T) {
	src := testSource()
	ivory, err := IvoryMR(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SinglePassMR(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stats.ShuffleBytes >= ivory.Stats.ShuffleBytes {
		t.Errorf("single-pass shuffle %d not below ivory %d",
			sp.Stats.ShuffleBytes, ivory.Stats.ShuffleBytes)
	}
}

func TestMRTimingArrays(t *testing.T) {
	src := testSource()
	res, err := IvoryMR(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.MapSec) != src.NumFiles() {
		t.Errorf("MapSec entries = %d, want %d", len(res.Stats.MapSec), src.NumFiles())
	}
	if len(res.Stats.ReduceSec) != 4 {
		t.Errorf("ReduceSec entries = %d, want 4", len(res.Stats.ReduceSec))
	}
}
