// Package baselines implements the indexers the paper compares against
// or builds upon (§II, §IV.D), all sharing the system's parsing
// pipeline so outputs are directly comparable:
//
//   - IvoryMR: Lin et al.'s MapReduce indexer with <(term, docID), tf>
//     composite keys — one value per key, postings appended in order at
//     the reducer with no post-processing.
//   - SinglePassMR: McCreadie et al.'s MapReduce indexer emitting
//     <term, partial postings list> per map task to cut shuffle volume.
//   - SPIMI: Heinz & Zobel's single-pass in-memory indexing with
//     memory-bounded runs and a final merge.
//   - SortBased: Moffat & Bell's sort-based inversion with temporary
//     sorted runs.
//
// Every baseline returns its complete term -> postings map so tests
// can pin it against the reference indexer, plus measured durations
// for the Fig. 12 throughput comparison.
package baselines

import (
	"sort"

	"fastinvert/internal/corpus"
	"fastinvert/internal/mapreduce"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
	"fastinvert/internal/trie"
)

// Result is a completed baseline build.
type Result struct {
	Lists map[string]*postings.List
	Stats Stats
}

// Stats carries measured work and timing.
type Stats struct {
	Docs   int64
	Tokens int64

	// SerialSec is the total measured single-core execution time.
	SerialSec float64

	// MR jobs: per-split map and per-partition reduce durations plus
	// shuffle volume, for cluster modeling.
	MapSec       []float64
	ReduceSec    []float64
	ShuffleBytes int64

	// Run-based indexers: temporary runs flushed.
	RunsFlushed int
}

// Terms reports the number of distinct terms built.
func (r *Result) Terms() int { return len(r.Lists) }

// ClusterModel parameterizes the modeled Hadoop cluster the MapReduce
// baselines ran on in their papers.
type ClusterModel struct {
	MapWorkers         int
	ReduceWorkers      int
	ShuffleBytesPerSec float64
	// TaskOverheadSec is the per-task constant cost (JVM spin-up,
	// scheduling, HDFS open) that dominates Hadoop at small task
	// sizes — typically 1-3 s per task on the 2009-era clusters the
	// baselines used. It is charged per task wave.
	TaskOverheadSec float64
}

// ClusterMakespan schedules the measured map/reduce durations onto a
// modeled cluster. For non-MapReduce baselines it returns SerialSec.
func (s *Stats) ClusterMakespan(mapWorkers, reduceWorkers int, netBytesPerSec float64) float64 {
	return s.ModelMakespan(ClusterModel{
		MapWorkers:         mapWorkers,
		ReduceWorkers:      reduceWorkers,
		ShuffleBytesPerSec: netBytesPerSec,
	})
}

// ModelMakespan schedules the measured durations onto the cluster:
// LPT-packed map tasks, the shuffle at aggregate bandwidth, LPT-packed
// reduce partitions, plus per-task-wave overhead.
func (s *Stats) ModelMakespan(m ClusterModel) float64 {
	if len(s.MapSec) == 0 && len(s.ReduceSec) == 0 {
		return s.SerialSec
	}
	span := mapreduce.LPT(s.MapSec, m.MapWorkers) + mapreduce.LPT(s.ReduceSec, m.ReduceWorkers)
	if m.ShuffleBytesPerSec > 0 {
		span += float64(s.ShuffleBytes) / m.ShuffleBytesPerSec
	}
	if m.TaskOverheadSec > 0 {
		span += m.TaskOverheadSec * float64(waves(len(s.MapSec), m.MapWorkers))
		span += m.TaskOverheadSec * float64(waves(len(s.ReduceSec), m.ReduceWorkers))
	}
	return span
}

func waves(tasks, workers int) int {
	if tasks == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	return (tasks + workers - 1) / workers
}

// docOccurrence is one (term, tf) for a document, in deterministic
// term order.
type docOccurrence struct {
	term string
	tf   uint32
}

// parseDocTerms runs the standard pipeline (tokenize, stem, stop
// words) on one document and returns its distinct terms with
// frequencies, sorted by term.
func parseDocTerms(p *parser.Parser, doc []byte) []docOccurrence {
	blk := parser.NewBlock(0)
	p.ParseDoc(0, doc, blk)
	m := make(map[string]uint32, 64)
	for gi, g := range blk.Groups {
		g.ForEach(func(_ uint32, stripped []byte) error {
			m[string(trie.Restore(gi, stripped))]++
			return nil
		})
	}
	out := make([]docOccurrence, 0, len(m))
	for term, tf := range m {
		out = append(out, docOccurrence{term, tf})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].term < out[j].term })
	return out
}

// loadDocs materializes a source into per-file document slices with
// their global doc bases.
func loadDocs(src corpus.Source) (files [][][]byte, bases []uint32, totalBytes int64, err error) {
	var docBase uint32
	for i := 0; i < src.NumFiles(); i++ {
		stored, compressed, err := src.ReadFile(i)
		if err != nil {
			return nil, nil, 0, err
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, nil, 0, err
		}
		totalBytes += int64(len(plain))
		docs := corpus.SplitDocs(plain)
		files = append(files, docs)
		bases = append(bases, docBase)
		docBase += uint32(len(docs))
	}
	return files, bases, totalBytes, nil
}
