package baselines

import (
	"fmt"
	"sort"
	"time"

	"fastinvert/internal/corpus"
	"fastinvert/internal/encoding"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// spimiRun is one flushed run: terms in sorted order with their
// serialized partial postings, the on-disk image Heinz & Zobel write
// at the end of each memory-bounded pass.
type spimiRun struct {
	terms  []string
	blobs  [][]byte
	counts []int
}

// SPIMI implements Heinz & Zobel's single-pass in-memory indexing
// (§II): documents stream through an in-memory dictionary until the
// memory budget is exhausted, the run is sorted by term and flushed,
// and all runs merge into the final index at the end.
func SPIMI(src corpus.Source, memoryBudget int) (*Result, error) {
	if memoryBudget <= 0 {
		memoryBudget = 8 << 20
	}
	files, bases, _, err := loadDocs(src)
	if err != nil {
		return nil, err
	}
	p := parser.New(nil)
	res := &Result{Lists: make(map[string]*postings.List)}
	t0 := time.Now()

	dict := make(map[string]*postings.List)
	memUse := 0
	var runs []spimiRun

	flush := func() error {
		if len(dict) == 0 {
			return nil
		}
		run := spimiRun{}
		run.terms = make([]string, 0, len(dict))
		for term := range dict {
			run.terms = append(run.terms, term)
		}
		sort.Strings(run.terms)
		for _, term := range run.terms {
			l := dict[term]
			blob, err := encoding.EncodePostings(nil, l.DocIDs, l.TFs)
			if err != nil {
				return fmt.Errorf("spimi: %q: %w", term, err)
			}
			run.blobs = append(run.blobs, blob)
			run.counts = append(run.counts, l.Len())
		}
		runs = append(runs, run)
		dict = make(map[string]*postings.List)
		memUse = 0
		res.Stats.RunsFlushed++
		return nil
	}

	for fi, docs := range files {
		for d, doc := range docs {
			docID := bases[fi] + uint32(d)
			for _, occ := range parseDocTerms(p, doc) {
				l := dict[occ.term]
				if l == nil {
					l = &postings.List{}
					dict[occ.term] = l
					memUse += len(occ.term) + 48
				}
				l.DocIDs = append(l.DocIDs, docID)
				l.TFs = append(l.TFs, occ.tf)
				memUse += 8
				res.Stats.Tokens += int64(occ.tf)
			}
			res.Stats.Docs++
			if memUse > memoryBudget {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	// Merge: runs were produced in document order, so each term's
	// partial lists concatenate across runs in order.
	for _, run := range runs {
		for i, term := range run.terms {
			docIDs, tfs, _, err := encoding.DecodePostings(run.blobs[i], run.counts[i])
			if err != nil {
				return nil, err
			}
			dst := res.Lists[term]
			if dst == nil {
				dst = &postings.List{}
				res.Lists[term] = dst
			}
			if err := postings.Concat(dst, &postings.List{DocIDs: docIDs, TFs: tfs}); err != nil {
				return nil, fmt.Errorf("spimi merge %q: %w", term, err)
			}
		}
	}
	res.Stats.SerialSec = time.Since(t0).Seconds()
	return res, nil
}
