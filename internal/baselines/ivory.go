package baselines

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"fastinvert/internal/corpus"
	"fastinvert/internal/encoding"
	"fastinvert/internal/mapreduce"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// IvoryMR implements Lin et al.'s scalable MapReduce indexing (§II):
// the map emits <tuple{term, docID}, tf> so each unique key carries at
// most one value, the partitioner routes on the term alone, and the
// MapReduce sort delivers postings to the reducer in docID order —
// each posting is appended to its list immediately, no buffering or
// post-sorting.
func IvoryMR(src corpus.Source, reducers int) (*Result, error) {
	files, bases, _, err := loadDocs(src)
	if err != nil {
		return nil, err
	}
	splits := make([]mapreduce.Split, len(files))
	for i := range files {
		splits[i] = mapreduce.Split{DocBase: bases[i], Docs: files[i]}
	}

	p := parser.New(nil)
	mapper := func(docID uint32, doc []byte, emit func(string, []byte)) error {
		for _, occ := range parseDocTerms(p, doc) {
			var key strings.Builder
			key.WriteString(occ.term)
			key.WriteByte(0)
			var db [4]byte
			binary.BigEndian.PutUint32(db[:], docID) // big-endian: lexicographic == numeric
			key.Write(db[:])
			emit(key.String(), encoding.PutUvarByte(nil, uint64(occ.tf)))
		}
		return nil
	}
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error {
		if len(values) != 1 {
			return fmt.Errorf("ivory: key %q has %d values, want 1", key, len(values))
		}
		emit(key, values[0])
		return nil
	}
	partition := func(key string, r int) int {
		term, _, _ := strings.Cut(key, "\x00")
		return mapreduce.DefaultPartition(term, r)
	}

	t0 := time.Now()
	out, err := mapreduce.Run(mapreduce.Config{
		Reducers:  reducers,
		Partition: partition,
	}, splits, mapper, reducer)
	if err != nil {
		return nil, err
	}

	// Materialize postings: within each partition keys arrive in
	// (term, docID) order, so appends preserve doc order — the
	// algorithm's defining property.
	res := &Result{Lists: make(map[string]*postings.List)}
	for _, part := range out.Partitions {
		for _, kv := range part {
			sep := strings.IndexByte(kv.Key, 0)
			if sep < 0 || len(kv.Key) < sep+5 {
				return nil, fmt.Errorf("ivory: malformed key %q", kv.Key)
			}
			term := kv.Key[:sep]
			doc := binary.BigEndian.Uint32([]byte(kv.Key[sep+1 : sep+5]))
			tf, n := encoding.UvarByte(kv.Value)
			if n <= 0 {
				return nil, fmt.Errorf("ivory: bad tf for %q", term)
			}
			l := res.Lists[term]
			if l == nil {
				l = &postings.List{}
				res.Lists[term] = l
			}
			l.DocIDs = append(l.DocIDs, doc)
			l.TFs = append(l.TFs, uint32(tf))
			res.Stats.Tokens += int64(tf)
		}
	}
	res.Stats.SerialSec = time.Since(t0).Seconds()
	res.Stats.MapSec = out.Timing.MapSec
	res.Stats.ReduceSec = out.Timing.ReduceSec
	res.Stats.ShuffleBytes = out.Timing.ShuffleB
	for _, f := range files {
		res.Stats.Docs += int64(len(f))
	}
	return res, nil
}
