// Package telemetry is the observability layer for the indexing
// pipeline and the query server: a dependency-free metrics registry
// (atomic counters, gauges and bounded histograms with Prometheus text
// exposition) plus a build-trace writer emitting structured span
// events as JSON lines (trace.go) and a Collector that adapts the
// pipeline's stage-observer events onto both (collector.go).
//
// The registry is deliberately small — it implements the subset of the
// Prometheus data model the project needs (counter, gauge, histogram,
// constant label sets, families with HELP/TYPE headers) with no
// third-party dependencies, so every binary can expose /metrics
// without pulling a client library into the build.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// atomicFloat is a float64 updated with compare-and-swap on its bits,
// so hot-path Add is lock-free and allocation-free.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; negative deltas are ignored (counters
// are monotonic by contract).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. All
// methods are lock-free; Observe is a few atomic adds.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan avoids
	// the branch-misprediction cost of binary search on tiny slices.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation within the containing bucket — the same
// estimate Prometheus' histogram_quantile computes server-side.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			if c == 0 {
				return b
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (b-lower)*frac
		}
		cum += c
		lower = b
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// DefBuckets are the default latency buckets in seconds, matching the
// Prometheus client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n buckets starting at start, each factor× the
// previous — handy for byte-size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels     string // rendered {k="v",...} or ""
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	fn         func() float64      // func-backed counter/gauge, read at scrape
	histFn     func() HistSnapshot // func-backed histogram, read at scrape
	histBounds []float64           // bounds for histFn rendering
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label strings in registration order
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration takes a lock; the returned metric
// handles are lock-free. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels formats a sorted, escaped {k="v",...} string.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the series for name+labels,
// enforcing one kind per family.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels).counter
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels).gauge
}

// CounterFunc registers a counter whose value is computed at scrape
// time — for sources that already maintain their own atomic counters
// (e.g. the postings cache), so exposing them adds nothing to the hot
// path.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindCounter, labels).fn = fn
}

// GaugeFunc registers a scrape-time gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGauge, labels).fn = fn
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds (nil selects DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)),
		}
	}
	return s.hist
}

// HistSnapshot is a point-in-time distribution returned by a
// HistogramFunc callback: per-bucket (non-cumulative) counts aligned
// with the registered bounds, the total observation count (including
// the overflow bucket), and the value sum.
type HistSnapshot struct {
	Counts []uint64
	Sum    float64
	Count  uint64
}

// HistogramFunc registers a histogram whose distribution is computed
// at scrape time — for populations that already exist elsewhere (e.g.
// the ages and sizes of resident cache entries), where walking the
// source on scrape beats observing every mutation on the hot path.
func (r *Registry) HistogramFunc(name, help string, bounds []float64, fn func() HistSnapshot, labels ...Label) {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if bounds == nil {
		bounds = DefBuckets
	}
	s.histBounds = append([]float64(nil), bounds...)
	s.histFn = fn
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4), families in registration order, series in
// registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, ls := range f.order {
			s := f.series[ls]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter, kindGauge:
		v := 0.0
		switch {
		case s.fn != nil:
			v = s.fn()
		case s.counter != nil:
			v = s.counter.Value()
		case s.gauge != nil:
			v = s.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(v))
		return err
	default:
		if s.histFn != nil {
			return writeHistSnapshot(w, f, s)
		}
		h := s.hist
		if h == nil {
			return nil
		}
		// Bucket lines carry the cumulative count and the le label
		// merged into any constant labels.
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, mergeLE(s.labels, fmtFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, mergeLE(s.labels, "+Inf"), h.count.Load()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, h.count.Load())
		return err
	}
}

// writeHistSnapshot renders a func-backed histogram from one callback
// invocation.
func writeHistSnapshot(w io.Writer, f *family, s *series) error {
	snap := s.histFn()
	var cum uint64
	for i, b := range s.histBounds {
		if i < len(snap.Counts) {
			cum += snap.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, mergeLE(s.labels, fmtFloat(b)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, mergeLE(s.labels, "+Inf"), snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, snap.Count)
	return err
}

// mergeLE splices le="bound" into a rendered label string.
func mergeLE(labels, bound string) string {
	if labels == "" {
		return `{le="` + bound + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + bound + `"}`
}

// Handler serves the registry at GET /metrics in text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
