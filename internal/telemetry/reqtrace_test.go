package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceSpanTree(t *testing.T) {
	tr := NewRequestTrace("search")
	tr.SetQuery("q=parallel&mode=and")
	tr.SetGeneration(3)

	wait := tr.StartSpan(ReqStageWait)
	time.Sleep(time.Millisecond)
	wait.End()

	cache := tr.StartSpan(ReqStageCache)
	cache.SetNote("miss")
	pread := tr.StartSpan(ReqStagePread)
	pread.AddBytes(4096)
	time.Sleep(time.Millisecond)
	pread.End()
	dec := tr.StartSpan(ReqStageDecode)
	dec.SetNote("varbyte")
	dec.End()
	cache.End()

	merge := tr.StartSpan(ReqStageMerge)
	merge.AddItems(2)
	merge.End()

	d := tr.Finish(200, "")
	if d <= 0 {
		t.Fatalf("Finish duration = %v, want > 0", d)
	}
	rec := tr.Snapshot()
	if rec.Ev != "reqtrace" || rec.Endpoint != "search" || rec.Gen != 3 {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(rec.Spans))
	}
	// Root, then wait/cache/merge as its children; pread+decode under cache.
	if rec.Spans[0].Par != -1 || rec.Spans[0].Stage != ReqStageHandler {
		t.Fatalf("root span = %+v", rec.Spans[0])
	}
	wantPar := []int{-1, 0, 0, 2, 2, 0}
	for i, sp := range rec.Spans {
		if sp.Par != wantPar[i] {
			t.Errorf("span %d (%s): parent %d, want %d", i, sp.Stage, sp.Par, wantPar[i])
		}
	}
	if rec.Spans[3].Bytes != 4096 {
		t.Errorf("pread bytes = %d, want 4096", rec.Spans[3].Bytes)
	}
	if rec.Spans[2].Note != "miss" || rec.Spans[4].Note != "varbyte" {
		t.Errorf("notes = %q %q", rec.Spans[2].Note, rec.Spans[4].Note)
	}

	// The finished record must satisfy its own validator.
	var buf bytes.Buffer
	w := NewReqTraceWriter(&buf)
	w.Write(tr)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateRequestTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Traces != 1 || st.Endpoints["search"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxQueryStages < 5 {
		t.Fatalf("MaxQueryStages = %d, want >= 5", st.MaxQueryStages)
	}
}

func TestRequestTraceNilSafety(t *testing.T) {
	var tr *RequestTrace
	sp := tr.StartSpan(ReqStageDict)
	sp.AddBytes(10)
	sp.AddItems(1)
	sp.SetNote("x")
	sp.End()
	tr.SetQuery("q")
	tr.SetGeneration(1)
	tr.SetAttr("k", 1)
	tr.MarkSlow()
	if d := tr.Finish(200, ""); d != 0 {
		t.Fatalf("nil Finish = %v", d)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(Background) = %v", got)
	}
}

func TestRequestTraceZeroAllocFastPath(t *testing.T) {
	s := NewSampler(1000, 250*time.Millisecond)
	ctx := context.Background()
	var tr *RequestTrace

	s.Sample() // consume the deterministic first-request sample
	if n := testing.AllocsPerRun(200, func() {
		_ = s.Sample() // unsampled for the next 999 calls either way
		tr = TraceFrom(ctx)
		sp := tr.StartSpan(ReqStageCache)
		sp.AddBytes(1)
		sp.End()
	}); n != 0 {
		t.Fatalf("unsampled fast path allocates %.1f/op, want 0", n)
	}
}

func TestRequestTraceLateSpansDropped(t *testing.T) {
	tr := NewRequestTrace("search")
	sp := tr.StartSpan(ReqStagePread)
	tr.Finish(504, "deadline")
	sp.End() // abandoned goroutine ending after Finish
	late := tr.StartSpan(ReqStageDecode)
	late.End()
	rec := tr.Snapshot()
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans after late activity, want 2", len(rec.Spans))
	}
	// The open pread span was closed by Finish within the trace window.
	if rec.Spans[1].StartMs+rec.Spans[1].DurMs > rec.DurMs+spanEps {
		t.Fatalf("span closed outside trace window: %+v vs %.3f", rec.Spans[1], rec.DurMs)
	}
}

func TestRequestTraceConcurrentSpans(t *testing.T) {
	tr := NewRequestTrace("search")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.StartSpan(ReqStagePread)
				sp.AddBytes(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish(200, "")
	rec := tr.Snapshot()
	if len(rec.Spans) != 801 {
		t.Fatalf("got %d spans, want 801", len(rec.Spans))
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(4, 100*time.Millisecond)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampler hit %d/400", hits)
	}
	if !s.Slow(150 * time.Millisecond) {
		t.Error("150ms not slow at 100ms threshold")
	}
	if s.Slow(50 * time.Millisecond) {
		t.Error("50ms slow at 100ms threshold")
	}
	if NewSampler(0, 0).Sample() {
		t.Error("disabled sampler sampled")
	}
	if !NewSampler(1, -1).Sample() {
		t.Error("every=1 sampler skipped")
	}
	if !NewSampler(1, -1).Slow(0) {
		t.Error("negative threshold must treat everything as slow")
	}
	var nilS *Sampler
	if nilS.Sample() || nilS.Slow(time.Hour) || nilS.Enabled() {
		t.Error("nil sampler must be inert")
	}
}

func TestTraceBufferRetention(t *testing.T) {
	b := NewTraceBuffer(4)
	var slowID string
	for i := 0; i < 10; i++ {
		tr := NewRequestTrace("search")
		if i == 2 {
			tr.MarkSlow()
			slowID = tr.ID()
		}
		tr.Finish(200, "")
		b.Add(tr)
	}
	// The slow trace from round 2 was evicted from the recent ring by
	// rounds 3..9 but survives in the pinned slow ring.
	if got := b.Get(slowID); got == nil {
		t.Fatalf("slow trace %s evicted despite pinning", slowID)
	}
	traces := b.Traces()
	if len(traces) != 5 { // 4 recent + 1 pinned slow
		t.Fatalf("Traces() = %d, want 5", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		// Newest-first within the recent window.
		if i < 4 && traces[i].start.After(traces[i-1].start) {
			t.Fatalf("traces out of order at %d", i)
		}
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowLogEntry{Endpoint: "search", DurMs: float64(i)})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
	if got[0].DurMs != 4 || got[2].DurMs != 2 {
		t.Fatalf("wrong order/retention: %+v", got)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
}

func TestValidateRequestTracesRejects(t *testing.T) {
	cases := map[string]string{
		"bad ev":        `{"ev":"span","id":"a","endpoint":"search","dur_ms":1,"spans":[{"stage":"handler","par":-1}]}`,
		"empty id":      `{"ev":"reqtrace","id":"","endpoint":"search","dur_ms":1,"spans":[{"stage":"handler","par":-1}]}`,
		"no spans":      `{"ev":"reqtrace","id":"a","endpoint":"search","dur_ms":1,"spans":[]}`,
		"bad root":      `{"ev":"reqtrace","id":"a","endpoint":"search","dur_ms":1,"spans":[{"stage":"dict","par":-1}]}`,
		"unknown stage": `{"ev":"reqtrace","id":"a","endpoint":"search","dur_ms":1,"spans":[{"stage":"handler","par":-1,"dur_ms":1},{"stage":"teleport","par":0}]}`,
		"fwd parent":    `{"ev":"reqtrace","id":"a","endpoint":"search","dur_ms":1,"spans":[{"stage":"handler","par":-1,"dur_ms":1},{"stage":"dict","par":2},{"stage":"cache","par":0}]}`,
		"outside trace": `{"ev":"reqtrace","id":"a","endpoint":"search","dur_ms":1,"spans":[{"stage":"handler","par":-1,"dur_ms":1},{"stage":"dict","par":0,"start_ms":0.5,"dur_ms":2}]}`,
		"child sum":     `{"ev":"reqtrace","id":"a","endpoint":"search","dur_ms":10,"spans":[{"stage":"handler","par":-1,"dur_ms":2},{"stage":"dict","par":0,"dur_ms":1.5},{"stage":"cache","par":0,"start_ms":1,"dur_ms":1.5}]}`,
	}
	for name, line := range cases {
		if _, err := ValidateRequestTraces(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	if _, err := ValidateRequestTraces(strings.NewReader("")); err == nil {
		t.Error("empty stream validated")
	}
}

func TestRequestTraceJSONRoundTrip(t *testing.T) {
	tr := NewRequestTrace("seal")
	tr.SetAttr("docs", 42)
	sp := tr.StartSpan(ReqStageEncode)
	sp.End()
	w := tr.StartSpan(ReqStageWrite)
	w.End()
	c := tr.StartSpan(ReqStageCommit)
	c.End()
	tr.Finish(0, "")

	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var rec ReqTraceRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Endpoint != "seal" || len(rec.Spans) != 4 || rec.Attrs["docs"] != float64(42) {
		t.Fatalf("round trip lost data: %+v", rec)
	}
	if _, err := ValidateRequestTraces(bytes.NewReader(append(b, '\n'))); err != nil {
		t.Fatalf("op trace failed validation: %v", err)
	}
}

func TestHistogramFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.HistogramFunc("cache_entry_bytes", "resident entry sizes",
		[]float64{64, 256, 1024}, func() HistSnapshot {
			return HistSnapshot{Counts: []uint64{2, 3, 0}, Sum: 900, Count: 6}
		})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cache_entry_bytes histogram",
		`cache_entry_bytes_bucket{le="64"} 2`,
		`cache_entry_bytes_bucket{le="256"} 5`,
		`cache_entry_bytes_bucket{le="1024"} 5`,
		`cache_entry_bytes_bucket{le="+Inf"} 6`,
		"cache_entry_bytes_sum 900",
		"cache_entry_bytes_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
