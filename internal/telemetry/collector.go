package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Observer receives stage-level telemetry from the build pipeline. It
// generalizes the core.Hooks fault-injection seam into a read-only
// observation seam: the engine reports what happened at each stage
// boundary and the observer decides what to do with it. Implementations
// must be safe for concurrent use — spans arrive from parser, disk and
// indexer goroutines in the concurrent executor.
//
// A nil Observer everywhere means zero overhead: the engine guards
// every call site.
type Observer interface {
	// BuildStart opens the observation window. totalFiles sizes ETA
	// math; attrs carries config shape (parsers, cpu, gpu, ...).
	BuildStart(totalFiles int, attrs map[string]any)

	// StageSpan reports one completed busy span of a stage. worker is
	// the parser/indexer index (-1 for singleton stages), file the
	// container file (-1 if n/a). start/dur are real wall-clock, never
	// model-scaled.
	StageSpan(stage string, worker, file int, start time.Time, dur time.Duration,
		bytes, tokens, docs int64)

	// Sample reports a point-in-time measurement, e.g. pipeline buffer
	// occupancy observed by the sequencer.
	Sample(name string, worker int, value float64)

	// Total reports a final named total with labels, e.g. the
	// per-trie-collection token counts split by cpu/gpu ownership.
	Total(name string, labels map[string]string, value float64)

	// BuildEnd closes the window; attrs carries the summary totals.
	BuildEnd(attrs map[string]any)
}

// Collector is the standard Observer: it derives per-worker stall
// spans from the gaps between busy spans, maintains registry metrics
// (stage seconds, span histograms, byte/doc/token totals), forwards
// everything to an optional TraceWriter, and serves live Progress
// snapshots for CLI tickers. Both Registry and Trace may be nil.
type Collector struct {
	reg   *Registry
	trace *TraceWriter

	mu         sync.Mutex
	epoch      time.Time
	started    bool
	totalFiles int
	lastEnd    map[string]float64 // "stage/worker" -> end of last busy/stall span
	stageBusy  map[string]float64 // busy seconds per stage (stalls under "stall:<of>")
	workers    map[string]int     // stage -> max worker index + 1

	filesDone   atomic.Int64
	docs        atomic.Int64
	tokens      atomic.Int64
	readBytes   atomic.Int64
	parsedBytes atomic.Int64
}

// NewCollector wires a collector onto a registry and an optional trace
// writer.
func NewCollector(reg *Registry, trace *TraceWriter) *Collector {
	return &Collector{
		reg:       reg,
		trace:     trace,
		lastEnd:   make(map[string]float64),
		stageBusy: make(map[string]float64),
		workers:   make(map[string]int),
	}
}

// Registry returns the collector's registry (may be nil).
func (c *Collector) Registry() *Registry { return c.reg }

// BuildStart implements Observer.
func (c *Collector) BuildStart(totalFiles int, attrs map[string]any) {
	c.mu.Lock()
	c.epoch = time.Now()
	c.started = true
	c.totalFiles = totalFiles
	c.mu.Unlock()
	if c.reg != nil {
		c.reg.Gauge("fastinvert_build_files_total",
			"Container files in the collection being built.").Set(float64(totalFiles))
	}
	if c.trace != nil {
		c.trace.Meta(attrs)
	}
}

// streamKey identifies one worker's busy/stall timeline.
func streamKey(stage string, worker int) string {
	return fmt.Sprintf("%s/%d", stage, worker)
}

// stalledStages are the stages whose workers get derived stall spans:
// the pipeline's parallel actors, whose idle time is the backpressure
// signal the trace exists to expose.
func stalled(stage string) bool { return stage == StageParse || stage == StageIndex }

// StageSpan implements Observer.
func (c *Collector) StageSpan(stage string, worker, file int, start time.Time,
	dur time.Duration, bytes, tokens, docs int64) {
	c.mu.Lock()
	if !c.started {
		c.epoch = start
		c.started = true
	}
	rel := start.Sub(c.epoch).Seconds()
	if rel < 0 {
		rel = 0
	}
	d := dur.Seconds()
	var stallSpan *Span
	if stalled(stage) {
		key := streamKey(stage, worker)
		if gap := rel - c.lastEnd[key]; gap > 1e-6 {
			stallSpan = &Span{
				Stage: StageStall, Of: stage, Worker: worker, File: -1,
				Start: c.lastEnd[key], Dur: gap,
			}
			c.stageBusy["stall:"+stage] += gap
		}
		if end := rel + d; end > c.lastEnd[key] {
			c.lastEnd[key] = end
		}
		if worker+1 > c.workers[stage] {
			c.workers[stage] = worker + 1
		}
	}
	c.stageBusy[stage] += d
	c.mu.Unlock()

	switch stage {
	case StageRead:
		c.readBytes.Add(bytes)
	case StageParse:
		c.parsedBytes.Add(bytes)
		c.docs.Add(docs)
		c.tokens.Add(tokens)
	case StageFlush:
		c.filesDone.Add(1)
	}

	if c.reg != nil {
		lbl := L("stage", stage)
		c.reg.Counter("fastinvert_build_stage_seconds_total",
			"Busy seconds per pipeline stage (stall rows are derived idle gaps).", lbl).Add(d)
		c.reg.Counter("fastinvert_build_stage_spans_total",
			"Completed spans per pipeline stage.", lbl).Inc()
		c.reg.Histogram("fastinvert_build_span_seconds",
			"Distribution of per-span durations by stage.", DefBuckets, lbl).Observe(d)
		if bytes > 0 {
			c.reg.Counter("fastinvert_build_stage_bytes_total",
				"Input bytes processed per stage.", lbl).Add(float64(bytes))
		}
		if stallSpan != nil {
			c.reg.Counter("fastinvert_build_stage_seconds_total",
				"Busy seconds per pipeline stage (stall rows are derived idle gaps).",
				L("stage", "stall_"+stage)).Add(stallSpan.Dur)
		}
		// Doc/token totals count the parse stage only: index spans carry
		// the same tokens again (each occurrence is parsed once, then
		// indexed once) and must not double the counters.
		if stage == StageParse {
			if docs > 0 {
				c.reg.Counter("fastinvert_build_docs_total",
					"Documents parsed.").Add(float64(docs))
			}
			if tokens > 0 {
				c.reg.Counter("fastinvert_build_tokens_total",
					"Term occurrences parsed (after stop-word removal).").Add(float64(tokens))
			}
		}
		if stage == StageFlush {
			c.reg.Gauge("fastinvert_build_files_done",
				"Container files fully indexed and flushed.").Set(float64(c.filesDone.Load()))
		}
	}
	if c.trace != nil {
		if stallSpan != nil {
			c.trace.Span(*stallSpan)
		}
		c.trace.Span(Span{
			Stage: stage, Worker: worker, File: file,
			Start: rel, Dur: d, Bytes: bytes, Tokens: tokens, Docs: docs,
		})
	}
}

// Sample implements Observer.
func (c *Collector) Sample(name string, worker int, value float64) {
	if c.reg != nil {
		c.reg.Gauge("fastinvert_build_"+name,
			"Point-in-time pipeline sample.", L("worker", fmt.Sprintf("%d", worker))).Set(value)
	}
	if c.trace != nil {
		c.trace.Sample(name, worker, value)
	}
}

// Total implements Observer. The trace keeps the full label set (one
// counter line per trie collection); the registry drops the
// high-cardinality "coll" label and aggregates, so the Prometheus
// snapshot stays a handful of series per total.
func (c *Collector) Total(name string, labels map[string]string, value float64) {
	if c.reg != nil {
		ls := make([]Label, 0, len(labels))
		for k, v := range labels {
			if k == "coll" {
				continue
			}
			ls = append(ls, L(k, v))
		}
		c.reg.Counter("fastinvert_build_"+name, "Final build total.", ls...).Add(value)
	}
	if c.trace != nil {
		c.trace.Counter(name, labels, value)
	}
}

// BuildEnd implements Observer: closes every stalled worker's timeline
// with a tail stall span so busy+stall tiles the whole build window,
// then emits the trace summary.
func (c *Collector) BuildEnd(attrs map[string]any) {
	c.mu.Lock()
	wall := time.Since(c.epoch).Seconds()
	type tail struct {
		stage  string
		worker int
		start  float64
		dur    float64
	}
	var tails []tail
	for stage, n := range c.workers {
		for w := 0; w < n; w++ {
			key := streamKey(stage, w)
			if gap := wall - c.lastEnd[key]; gap > 1e-6 {
				tails = append(tails, tail{stage, w, c.lastEnd[key], gap})
				c.stageBusy["stall:"+stage] += gap
				c.lastEnd[key] = wall
			}
		}
	}
	c.mu.Unlock()
	for _, t := range tails {
		if c.reg != nil {
			c.reg.Counter("fastinvert_build_stage_seconds_total",
				"Busy seconds per pipeline stage (stall rows are derived idle gaps).",
				L("stage", "stall_"+t.stage)).Add(t.dur)
		}
		if c.trace != nil {
			c.trace.Span(Span{Stage: StageStall, Of: t.stage, Worker: t.worker,
				File: -1, Start: t.start, Dur: t.dur})
		}
	}
	if c.reg != nil {
		c.reg.Gauge("fastinvert_build_wall_seconds",
			"Wall-clock seconds of the completed build.").Set(wall)
	}
	if c.trace != nil {
		if attrs == nil {
			attrs = map[string]any{}
		}
		attrs["wall_sec"] = wall
		c.trace.Summary(attrs)
	}
}

// StageSeconds returns the accumulated busy seconds per stage (stall
// time under "stall:<stage>" keys) — the per-stage breakdown exported
// by benchrunner's JSON output.
func (c *Collector) StageSeconds() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.stageBusy))
	for k, v := range c.stageBusy {
		out[k] = v
	}
	return out
}

// Progress is a live snapshot for CLI tickers.
type Progress struct {
	Elapsed     time.Duration
	FilesDone   int
	FilesTotal  int
	Docs        int64
	Tokens      int64
	ReadBytes   int64
	ParsedBytes int64
	DocsPerSec  float64
	MBPerSec    float64 // parsed (uncompressed) MB/s
	ETA         time.Duration
	// StageUtil is busy-seconds / (elapsed × workers) per parallel
	// stage — the live utilization of the parser and indexer banks.
	StageUtil map[string]float64
}

// Progress computes a snapshot; safe to call from a ticker goroutine
// while the build runs.
func (c *Collector) Progress() Progress {
	c.mu.Lock()
	epoch, started, total := c.epoch, c.started, c.totalFiles
	util := make(map[string]float64, len(c.workers))
	elapsed := time.Since(epoch)
	if started && elapsed > 0 {
		for stage, n := range c.workers {
			if n > 0 {
				util[stage] = c.stageBusy[stage] / (elapsed.Seconds() * float64(n))
			}
		}
	}
	c.mu.Unlock()
	if !started {
		return Progress{StageUtil: util}
	}
	p := Progress{
		Elapsed:     elapsed,
		FilesDone:   int(c.filesDone.Load()),
		FilesTotal:  total,
		Docs:        c.docs.Load(),
		Tokens:      c.tokens.Load(),
		ReadBytes:   c.readBytes.Load(),
		ParsedBytes: c.parsedBytes.Load(),
		StageUtil:   util,
	}
	sec := elapsed.Seconds()
	if sec > 0 {
		p.DocsPerSec = float64(p.Docs) / sec
		p.MBPerSec = float64(p.ParsedBytes) / (1 << 20) / sec
		if p.FilesDone > 0 && total > p.FilesDone {
			perFile := sec / float64(p.FilesDone)
			p.ETA = time.Duration(perFile * float64(total-p.FilesDone) * float64(time.Second))
		}
	}
	return p
}
