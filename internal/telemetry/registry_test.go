package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammering drives every metric kind from 16
// goroutines under -race: the counters must not lose updates and the
// histogram's count/sum must match the observation stream exactly.
func TestRegistryConcurrentHammering(t *testing.T) {
	const goroutines = 16
	const perG = 10_000

	reg := NewRegistry()
	c := reg.Counter("hammer_total", "hammered counter")
	g := reg.Gauge("hammer_gauge", "hammered gauge")
	h := reg.Histogram("hammer_seconds", "hammered histogram", []float64{0.25, 0.5, 0.75, 1})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				h.Observe(float64(j%4) * 0.25)
				// Concurrent registration of the same series must
				// return the same handle, not a fresh one.
				if reg.Counter("hammer_total", "hammered counter") != c {
					t.Error("counter identity changed under concurrent registration")
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if got, want := c.Value(), float64(goroutines*perG*3); got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got, want := g.Value(), float64(goroutines*perG); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Each goroutine observes 0, .25, .5, .75 cyclically.
	wantSum := float64(goroutines) * float64(perG/4) * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestPrometheusGolden locks the text exposition format: families in
// registration order, HELP/TYPE headers, label rendering, cumulative
// histogram buckets with the le label, _sum and _count rows.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_requests_total", "Requests served.", L("code", "200")).Add(3)
	reg.Counter("app_requests_total", "Requests served.", L("code", "500")).Inc()
	reg.Gauge("app_temperature_celsius", "Probe temperature.").Set(36.6)
	reg.GaugeFunc("app_up", "Always one.", func() float64 { return 1 })
	h := reg.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(7)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
# HELP app_temperature_celsius Probe temperature.
# TYPE app_temperature_celsius gauge
app_temperature_celsius 36.6
# HELP app_up Always one.
# TYPE app_up gauge
app_up 1
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 2
app_latency_seconds_bucket{le="0.5"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 7.4
app_latency_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %v, want 5 (negative add must be ignored)", c.Value())
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	q := h.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within (1,2]", q)
	}
	if got := (&Histogram{}).Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual_use", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("dual_use", "")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}
