package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Stage names used by the build pipeline's span events. Worker indices
// are per stage: parser p, indexer i, or -1 for singleton stages.
const (
	StageSampling    = "sampling"     // §III.E popularity sample, before the pipeline
	StageRead        = "read"         // serialized container-file read
	StageParse       = "parse"        // decompress + tokenize + regroup
	StageIndex       = "index"        // one indexer consuming its share of a block
	StageFlush       = "flush"        // combine + compress + write one run
	StageDictCombine = "dict_combine" // final dictionary merge
	StageDictWrite   = "dict_write"   // front-coded dictionary write
	StageStall       = "stall"        // a worker waiting for upstream/downstream
)

// Span is one timed stage event. Start is relative to the build (trace)
// start so traces are position-independent; durations are real
// wall-clock seconds, never model-scaled.
type Span struct {
	Stage  string  `json:"stage"`
	Worker int     `json:"worker"`          // parser/indexer index, -1 if n/a
	File   int     `json:"file"`            // container file, -1 if n/a
	Start  float64 `json:"start"`           // seconds since build start
	Dur    float64 `json:"dur"`             // seconds
	Bytes  int64   `json:"bytes,omitempty"` // input bytes processed
	Tokens int64   `json:"tokens,omitempty"`
	Docs   int64   `json:"docs,omitempty"`
	// Of names the stage a stall span was waiting in ("parse",
	// "index"); empty for busy spans.
	Of string `json:"of,omitempty"`
}

// traceEvent is the JSONL envelope: ev selects the payload shape.
type traceEvent struct {
	Ev string  `json:"ev"` // "meta" | "span" | "sample" | "counter" | "summary"
	TS float64 `json:"ts"` // seconds since build start

	// ev=span
	Span *Span `json:"span,omitempty"`

	// ev=sample — a point-in-time measurement (buffer occupancy).
	Name   string  `json:"name,omitempty"`
	Worker int     `json:"worker,omitempty"`
	Value  float64 `json:"value,omitempty"`

	// ev=counter — a final named total (collection token skew).
	Labels map[string]string `json:"labels,omitempty"`

	// ev=meta / ev=summary
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceWriter emits build-trace events as JSON lines. All methods are
// safe for concurrent use; each event is one buffered, mutex-guarded
// encode, cheap enough for per-file (not per-token) granularity.
type TraceWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	c     io.Closer
	start time.Time
	err   error
}

// NewTraceWriter starts a trace on w; the clock starts now.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	t := &TraceWriter{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// CreateTrace opens path for writing and starts a trace on it.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTraceWriter(f), nil
}

// Start returns the trace epoch.
func (t *TraceWriter) Start() time.Time { return t.start }

// Since returns seconds elapsed since the trace epoch.
func (t *TraceWriter) Since() float64 { return time.Since(t.start).Seconds() }

func (t *TraceWriter) emit(ev traceEvent) {
	t.mu.Lock()
	if t.err == nil {
		t.err = t.enc.Encode(ev)
	}
	t.mu.Unlock()
}

// Meta records build-level attributes (config shape, file count) as
// the first line of a trace.
func (t *TraceWriter) Meta(attrs map[string]any) {
	t.emit(traceEvent{Ev: "meta", Attrs: attrs})
}

// Span records one completed stage span.
func (t *TraceWriter) Span(sp Span) {
	t.emit(traceEvent{Ev: "span", TS: sp.Start + sp.Dur, Span: &sp})
}

// Sample records a point-in-time measurement such as buffer occupancy.
func (t *TraceWriter) Sample(name string, worker int, value float64) {
	t.emit(traceEvent{Ev: "sample", TS: t.Since(), Name: name, Worker: worker, Value: value})
}

// Counter records a final named total with labels (e.g. per-collection
// token counts split by cpu/gpu ownership).
func (t *TraceWriter) Counter(name string, labels map[string]string, value float64) {
	t.emit(traceEvent{Ev: "counter", TS: t.Since(), Name: name, Labels: labels, Value: value})
}

// Summary records build-end attributes (wall seconds, totals) as the
// last line of a trace.
func (t *TraceWriter) Summary(attrs map[string]any) {
	t.emit(traceEvent{Ev: "summary", TS: t.Since(), Attrs: attrs})
}

// Close flushes (and closes the underlying file if the writer owns
// one), returning the first error seen over the trace's lifetime.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// TraceStats is ValidateTrace's aggregate view of one build trace.
type TraceStats struct {
	Events   int
	Spans    int
	Samples  int
	Counters int
	WallSec  float64 // from the summary event

	// StageSec sums span durations per stage ("stall" keyed by
	// "stall:<of>").
	StageSec map[string]float64

	// WorkerCoverage maps "stage/worker" -> fraction of that worker's
	// active window [first span start, last span end] covered by its
	// busy+stall spans. Near 1.0 when stalls are traced.
	WorkerCoverage map[string]float64

	// BusyStallSec is the total busy+stall span time across parse and
	// index workers; BusyStallCoverage divides the per-worker average
	// by the wall clock — the ≥0.9 acceptance gate.
	BusyStallSec      float64
	BusyStallCoverage float64
}

// ValidateTrace parses a JSONL build trace, checking schema shape —
// first event meta, last event summary, every span with a known stage,
// non-negative times, per-worker spans non-overlapping (nesting) — and
// returns aggregate stats. A malformed line or violated invariant
// returns an error naming the line.
func ValidateTrace(r io.Reader) (*TraceStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	st := &TraceStats{
		StageSec:       make(map[string]float64),
		WorkerCoverage: make(map[string]float64),
	}
	known := map[string]bool{
		StageSampling: true, StageRead: true, StageParse: true,
		StageIndex: true, StageFlush: true, StageDictCombine: true,
		StageDictWrite: true, StageStall: true,
	}
	type window struct {
		spans []Span
	}
	workers := make(map[string]*window) // "stage/worker" busy+stall streams
	line := 0
	var sawMeta, sawSummary bool
	for sc.Scan() {
		line++
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		st.Events++
		switch ev.Ev {
		case "meta":
			if line != 1 {
				return nil, fmt.Errorf("trace line %d: meta event not first", line)
			}
			sawMeta = true
		case "summary":
			sawSummary = true
			if ws, ok := ev.Attrs["wall_sec"].(float64); ok {
				st.WallSec = ws
			}
		case "span":
			if ev.Span == nil {
				return nil, fmt.Errorf("trace line %d: span event without span", line)
			}
			sp := *ev.Span
			if !known[sp.Stage] {
				return nil, fmt.Errorf("trace line %d: unknown stage %q", line, sp.Stage)
			}
			if sp.Start < 0 || sp.Dur < 0 {
				return nil, fmt.Errorf("trace line %d: negative span time", line)
			}
			st.Spans++
			key := sp.Stage
			if sp.Stage == StageStall {
				key = "stall:" + sp.Of
			}
			st.StageSec[key] += sp.Dur
			// Group busy+stall per worker stream for overlap and
			// coverage checks.
			stream := sp.Stage
			if sp.Stage == StageStall {
				stream = sp.Of
			}
			if stream == StageParse || stream == StageIndex {
				wk := fmt.Sprintf("%s/%d", stream, sp.Worker)
				if workers[wk] == nil {
					workers[wk] = &window{}
				}
				workers[wk].spans = append(workers[wk].spans, sp)
			}
		case "sample":
			st.Samples++
		case "counter":
			st.Counters++
		default:
			return nil, fmt.Errorf("trace line %d: unknown event %q", line, ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawMeta {
		return nil, fmt.Errorf("trace: missing meta event")
	}
	if !sawSummary {
		return nil, fmt.Errorf("trace: missing summary event")
	}

	// Per-worker streams must not overlap (a worker is in one stage at
	// a time), and busy+stall should tile the worker's active window.
	var covSum float64
	var covN int
	for wk, w := range workers {
		sort.Slice(w.spans, func(i, j int) bool { return w.spans[i].Start < w.spans[j].Start })
		var busy, first, last float64
		first = math.Inf(1)
		prevEnd := math.Inf(-1)
		for _, sp := range w.spans {
			// Tolerate sub-millisecond jitter from clock reads taken
			// on different goroutines.
			if sp.Start < prevEnd-1e-3 {
				return nil, fmt.Errorf("trace: worker %s spans overlap at %.6fs", wk, sp.Start)
			}
			if sp.Start < first {
				first = sp.Start
			}
			if end := sp.Start + sp.Dur; end > last {
				last = end
			}
			if end := sp.Start + sp.Dur; end > prevEnd {
				prevEnd = end
			}
			busy += sp.Dur
		}
		st.BusyStallSec += busy
		window := last - first
		if window <= 0 {
			st.WorkerCoverage[wk] = 1
		} else {
			st.WorkerCoverage[wk] = busy / window
		}
		covSum += st.WorkerCoverage[wk]
		covN++
	}
	if covN > 0 && st.WallSec > 0 {
		// Average worker busy+stall time as a fraction of wall clock:
		// with head/tail stalls traced this approaches 1 regardless of
		// executor shape.
		st.BusyStallCoverage = st.BusyStallSec / (float64(covN) * st.WallSec)
	}
	return st, nil
}

// ValidateTraceFile opens and validates a JSONL build trace.
func ValidateTraceFile(path string) (*TraceStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ValidateTrace(f)
}
