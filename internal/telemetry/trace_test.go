package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// writeTrace builds a small synthetic trace through the public writer
// API and returns the JSONL bytes.
func writeTrace(t *testing.T, spans []Span, withMeta, withSummary bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if withMeta {
		tw.Meta(map[string]any{"files": 2, "parsers": 2})
	}
	for _, sp := range spans {
		tw.Span(sp)
	}
	tw.Sample("parser_buffer_depth", 0, 3)
	tw.Counter("collection_tokens", map[string]string{"coll": "t/he", "kind": "gpu"}, 123)
	if withSummary {
		tw.Summary(map[string]any{"wall_sec": 2.0})
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceRoundTrip(t *testing.T) {
	spans := []Span{
		{Stage: StageSampling, Worker: -1, File: -1, Start: 0, Dur: 0.1},
		{Stage: StageRead, Worker: -1, File: 0, Start: 0.1, Dur: 0.2, Bytes: 1024},
		{Stage: StageStall, Of: StageParse, Worker: 0, File: -1, Start: 0, Dur: 0.3},
		{Stage: StageParse, Worker: 0, File: 0, Start: 0.3, Dur: 0.5, Bytes: 4096, Tokens: 900, Docs: 10},
		{Stage: StageStall, Of: StageParse, Worker: 0, File: -1, Start: 0.8, Dur: 1.2},
		{Stage: StageIndex, Worker: 0, File: 0, Start: 0.8, Dur: 0.7, Tokens: 900},
		{Stage: StageStall, Of: StageIndex, Worker: 0, File: -1, Start: 0, Dur: 0.8},
		{Stage: StageStall, Of: StageIndex, Worker: 0, File: -1, Start: 1.5, Dur: 0.5},
		{Stage: StageFlush, Worker: -1, File: 0, Start: 1.5, Dur: 0.3},
	}
	st, err := ValidateTrace(bytes.NewReader(writeTrace(t, spans, true, true)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans != len(spans) {
		t.Errorf("spans = %d, want %d", st.Spans, len(spans))
	}
	if st.Samples != 1 || st.Counters != 1 {
		t.Errorf("samples/counters = %d/%d, want 1/1", st.Samples, st.Counters)
	}
	if st.WallSec != 2.0 {
		t.Errorf("wall = %v, want 2.0", st.WallSec)
	}
	if got := st.StageSec[StageParse]; got != 0.5 {
		t.Errorf("parse seconds = %v, want 0.5", got)
	}
	if got := st.StageSec["stall:"+StageIndex]; got != 1.3 {
		t.Errorf("index stall seconds = %v, want 1.3", got)
	}
	// parse/0: busy 0.5 + stalls 0.3+1.2 tile the window [0, 2.0].
	if cov := st.WorkerCoverage["parse/0"]; cov < 0.999 || cov > 1.001 {
		t.Errorf("parse/0 coverage = %v, want 1.0", cov)
	}
	// Both streams tile [0,2] against wall 2.0 → full coverage.
	if st.BusyStallCoverage < 0.999 {
		t.Errorf("busy+stall coverage = %v, want ~1.0", st.BusyStallCoverage)
	}
}

func TestValidateTraceRejections(t *testing.T) {
	base := []Span{{Stage: StageParse, Worker: 0, File: 0, Start: 0, Dur: 1}}
	cases := []struct {
		name  string
		trace []byte
		want  string
	}{
		{"missing meta", writeTrace(t, base, false, true), "missing meta"},
		{"missing summary", writeTrace(t, base, true, false), "missing summary"},
		{"unknown stage", writeTrace(t, []Span{{Stage: "warp", Start: 0, Dur: 1}}, true, true), "unknown stage"},
		{"negative time", writeTrace(t, []Span{{Stage: StageParse, Start: -1, Dur: 1}}, true, true), "negative span time"},
		{"overlap", writeTrace(t, []Span{
			{Stage: StageIndex, Worker: 3, Start: 0, Dur: 1},
			{Stage: StageIndex, Worker: 3, Start: 0.5, Dur: 1},
		}, true, true), "spans overlap"},
		{"garbage line", []byte("not json\n"), "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateTrace(bytes.NewReader(tc.trace))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestValidateTraceOverlapTolerance: sub-millisecond overlap between a
// worker's consecutive spans is clock jitter, not a nesting violation.
func TestValidateTraceOverlapTolerance(t *testing.T) {
	spans := []Span{
		{Stage: StageIndex, Worker: 0, Start: 0, Dur: 1.0},
		{Stage: StageIndex, Worker: 0, Start: 0.9995, Dur: 0.5},
	}
	if _, err := ValidateTrace(bytes.NewReader(writeTrace(t, spans, true, true))); err != nil {
		t.Errorf("0.5ms overlap should be tolerated, got %v", err)
	}
}
