// Request-scoped tracing for the serving tier. A RequestTrace is a
// span tree carried through context.Context from the HTTP handler down
// to the pread/decode leaves of the store, attributing each request's
// wall time to named stages (dictionary lookup, cache probe, disk
// read, codec decode, list merge, memtable scan, ranking). The same
// machinery traces background seal/compaction operations so slow-query
// spans can be correlated with concurrent maintenance.
//
// Sampling is two-layered: head sampling (1-in-N, Sampler.Sample)
// bounds collection cost, and latency-triggered retention
// (Sampler.Slow) pins slow traces in a separate ring so tail outliers
// survive buffer churn. Unsampled requests never see a trace: every
// entry point is nil-safe and TraceFrom on a context without a trace
// is a map-free, allocation-free lookup, so the hot path cost of a
// disabled or unsampled request is zero allocations.
package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Serving-stage names for request spans. Query stages attribute
// per-request cost; the encode/write/commit stages appear in
// background seal/compaction operation traces.
const (
	ReqStageHandler  = "handler"  // root span: whole HTTP handler
	ReqStageWait     = "wait"     // queued for a worker-pool slot
	ReqStageDict     = "dict"     // dictionary lookup
	ReqStageCache    = "cache"    // postings-cache probe
	ReqStagePread    = "pread"    // disk read of an encoded list
	ReqStageDecode   = "decode"   // codec decode
	ReqStageMerge    = "merge"    // list intersection/union/fan-out
	ReqStageMemtable = "memtable" // live memtable scan
	ReqStageRank     = "rank"     // top-k scoring + heap selection
	ReqStageEncode   = "encode"   // seal: memtable -> run-file bytes
	ReqStageWrite    = "write"    // seal/compact: file writes + fsync
	ReqStageCommit   = "commit"   // seal/compact: manifest + view swap
)

// reqStages is the closed set ValidateRequestTraces accepts.
var reqStages = map[string]bool{
	ReqStageHandler: true, ReqStageWait: true, ReqStageDict: true,
	ReqStageCache: true, ReqStagePread: true, ReqStageDecode: true,
	ReqStageMerge: true, ReqStageMemtable: true, ReqStageRank: true,
	ReqStageEncode: true, ReqStageWrite: true, ReqStageCommit: true,
}

// queryStages are the stages that attribute query-path cost — the set
// the tracecheck -min-stages gate counts distinct members of.
var queryStages = map[string]bool{
	ReqStageDict: true, ReqStageCache: true, ReqStagePread: true,
	ReqStageDecode: true, ReqStageMerge: true, ReqStageMemtable: true,
	ReqStageRank: true, ReqStageWait: true,
}

// ReqSpan is one node of a request's span tree. Par indexes the parent
// span within the same trace (-1 for the root); start/duration are
// milliseconds relative to the trace start.
type ReqSpan struct {
	Stage   string  `json:"stage"`
	Par     int     `json:"par"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
	Bytes   int64   `json:"bytes,omitempty"`
	Items   int64   `json:"items,omitempty"`
	Note    string  `json:"note,omitempty"`
}

// ReqTraceRecord is the JSON form of a finished trace — one line of
// the request-trace JSONL stream and the /debug/trace response body.
type ReqTraceRecord struct {
	Ev          string         `json:"ev"` // always "reqtrace"
	ID          string         `json:"id"`
	Endpoint    string         `json:"endpoint"`
	Query       string         `json:"query,omitempty"`
	Gen         uint64         `json:"gen,omitempty"`
	StartUnixMs int64          `json:"start_unix_ms"`
	DurMs       float64        `json:"dur_ms"`
	Status      int            `json:"status,omitempty"`
	Err         string         `json:"err,omitempty"`
	Slow        bool           `json:"slow,omitempty"`
	Attrs       map[string]any `json:"attrs,omitempty"`
	Spans       []ReqSpan      `json:"spans"`
}

// traceSeq feeds process-unique request IDs; traceEpoch distinguishes
// restarts in long-lived JSONL sinks.
var (
	traceSeq   atomic.Uint64
	traceEpoch = time.Now().UnixMilli()
)

// RequestTrace collects the span tree for one sampled request or one
// background operation. All methods are safe for concurrent use: a
// query abandoned by its deadline may still be running on a pool
// worker and appending spans while the handler finishes the trace —
// Finish flips done, after which late StartSpan/End calls are dropped.
type RequestTrace struct {
	id    string
	start time.Time

	mu       sync.Mutex
	endpoint string
	query    string
	gen      uint64
	status   int
	errMsg   string
	slow     bool
	attrs    map[string]any
	spans    []ReqSpan
	open     []int // indices of started-but-unfinished spans, stack order
	done     bool
	durMs    float64
}

// NewRequestTrace starts a trace for the named endpoint or background
// operation ("search", "seal", ...), with the root span already open.
func NewRequestTrace(endpoint string) *RequestTrace {
	t := &RequestTrace{
		id:       fmt.Sprintf("%x-%x", traceEpoch, traceSeq.Add(1)),
		start:    time.Now(),
		endpoint: endpoint,
		spans:    make([]ReqSpan, 0, 16),
	}
	t.spans = append(t.spans, ReqSpan{Stage: ReqStageHandler, Par: -1})
	t.open = append(t.open, 0)
	return t
}

// ID returns the process-unique trace ID.
func (t *RequestTrace) ID() string { return t.id }

func (t *RequestTrace) sinceMs() float64 {
	return float64(time.Since(t.start)) / float64(time.Millisecond)
}

// SpanRef is a handle to one started span. The zero value (from
// StartSpan on a nil trace) is inert: End and every setter no-op
// without allocating, which is what keeps unsampled requests free.
type SpanRef struct {
	t   *RequestTrace
	idx int32
}

// StartSpan opens a child of the innermost open span. Safe on a nil
// trace (returns an inert ref).
func (t *RequestTrace) StartSpan(stage string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return SpanRef{}
	}
	par := -1
	if n := len(t.open); n > 0 {
		par = t.open[n-1]
	}
	idx := len(t.spans)
	t.spans = append(t.spans, ReqSpan{Stage: stage, Par: par, StartMs: t.sinceMs()})
	t.open = append(t.open, idx)
	t.mu.Unlock()
	return SpanRef{t: t, idx: int32(idx)}
}

// End closes the span. Ending out of stack order is tolerated (the
// span is removed from wherever it sits in the open stack).
func (s SpanRef) End() {
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		sp := &t.spans[s.idx]
		if sp.DurMs == 0 {
			sp.DurMs = t.sinceMs() - sp.StartMs
		}
		for i := len(t.open) - 1; i >= 0; i-- {
			if t.open[i] == int(s.idx) {
				t.open = append(t.open[:i], t.open[i+1:]...)
				break
			}
		}
	}
	t.mu.Unlock()
}

// AddBytes attributes n bytes of I/O or payload to the span.
func (s SpanRef) AddBytes(n int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.done {
		s.t.spans[s.idx].Bytes += n
	}
	s.t.mu.Unlock()
}

// AddItems attributes n logical items (lists, segments, docs).
func (s SpanRef) AddItems(n int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.done {
		s.t.spans[s.idx].Items += n
	}
	s.t.mu.Unlock()
}

// SetNote attaches a short free-form annotation ("hit", codec name).
func (s SpanRef) SetNote(note string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.done {
		s.t.spans[s.idx].Note = note
	}
	s.t.mu.Unlock()
}

// SetQuery records the request's query string. Nil-safe.
func (t *RequestTrace) SetQuery(q string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.query = q
	}
	t.mu.Unlock()
}

// SetGeneration records the index generation the request ran against.
func (t *RequestTrace) SetGeneration(gen uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.gen = gen
	}
	t.mu.Unlock()
}

// SetAttr attaches a named attribute (background ops: docs, segments).
func (t *RequestTrace) SetAttr(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		if t.attrs == nil {
			t.attrs = make(map[string]any, 4)
		}
		t.attrs[key] = value
	}
	t.mu.Unlock()
}

// MarkSlow flags the trace as latency-retained.
func (t *RequestTrace) MarkSlow() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow = true
	t.mu.Unlock()
}

// Finish seals the trace: every still-open span (including the root)
// is closed at the current clock, the total duration is fixed, and
// later span operations from abandoned goroutines become no-ops.
// status is the HTTP status (0 for background operations); errMsg is
// empty on success. Finish is idempotent and nil-safe; it returns the
// total duration.
func (t *RequestTrace) Finish(status int, errMsg string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return time.Duration(t.durMs * float64(time.Millisecond))
	}
	now := t.sinceMs()
	for _, idx := range t.open {
		sp := &t.spans[idx]
		if sp.DurMs == 0 {
			sp.DurMs = now - sp.StartMs
		}
	}
	t.open = nil
	t.durMs = now
	t.status = status
	t.errMsg = errMsg
	t.done = true
	return time.Duration(now * float64(time.Millisecond))
}

// Duration returns the finished trace's wall time (0 before Finish).
func (t *RequestTrace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.durMs * float64(time.Millisecond))
}

// Snapshot renders the trace as a record. Valid after Finish; calling
// it earlier snapshots the in-flight state (used by /debug/trace).
func (t *RequestTrace) Snapshot() ReqTraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := ReqTraceRecord{
		Ev:          "reqtrace",
		ID:          t.id,
		Endpoint:    t.endpoint,
		Query:       t.query,
		Gen:         t.gen,
		StartUnixMs: t.start.UnixMilli(),
		DurMs:       t.durMs,
		Status:      t.status,
		Err:         t.errMsg,
		Slow:        t.slow,
		Spans:       append([]ReqSpan(nil), t.spans...),
	}
	if len(t.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(t.attrs))
		for k, v := range t.attrs {
			rec.Attrs[k] = v
		}
	}
	return rec
}

// StageDurations sums span wall time per stage (excluding the root
// handler span) — the per-stage breakdown slow-log entries carry.
func (t *RequestTrace) StageDurations() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[string]float64, 8)
	for i, sp := range t.spans {
		if i == 0 {
			continue
		}
		m[sp.Stage] += sp.DurMs
	}
	return m
}

// traceKey is the private context key type for RequestTrace.
type traceKey struct{}

// ContextWithTrace attaches a trace to ctx. Only call for sampled
// requests — the attach itself allocates a context node.
func ContextWithTrace(ctx context.Context, t *RequestTrace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil. The nil path —
// every unsampled request — performs no allocation.
func TraceFrom(ctx context.Context) *RequestTrace {
	t, _ := ctx.Value(traceKey{}).(*RequestTrace)
	return t
}

// Sampler decides which requests get a trace. Head sampling picks one
// request in every `every` (deterministically, via an atomic counter,
// so low-rate endpoints still get coverage); the slow threshold
// triggers latency-based retention for requests that already carry a
// trace and slow-log entry for all others. slow < 0 treats every
// request as slow (log everything — used by the CI load generator).
type Sampler struct {
	every uint64
	slow  time.Duration
	ctr   atomic.Uint64
}

// NewSampler builds a sampler tracing 1-in-every requests (0 disables
// tracing entirely) with the given slow-query threshold.
func NewSampler(every int, slow time.Duration) *Sampler {
	if every < 0 {
		every = 0
	}
	return &Sampler{every: uint64(every), slow: slow}
}

// Enabled reports whether any request can be sampled.
func (s *Sampler) Enabled() bool { return s != nil && s.every > 0 }

// Sample returns true for one request in every N. Zero allocations.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.ctr.Add(1)%s.every == 1
}

// Slow reports whether d crosses the latency-retention threshold.
func (s *Sampler) Slow(d time.Duration) bool {
	if s == nil {
		return false
	}
	if s.slow < 0 {
		return true
	}
	return s.slow > 0 && d >= s.slow
}

// SlowThreshold returns the configured threshold (negative = all).
func (s *Sampler) SlowThreshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.slow
}

// TraceBuffer retains recently finished traces for /debug/trace: a
// ring of the most recent sampled traces plus a separate ring pinning
// slow ones, so tail-latency outliers survive the churn of fast
// requests.
type TraceBuffer struct {
	mu     sync.Mutex
	recent []*RequestTrace
	slow   []*RequestTrace
	next   int
	nextSl int
}

// NewTraceBuffer retains up to size recent and size/2 slow traces.
func NewTraceBuffer(size int) *TraceBuffer {
	if size < 4 {
		size = 4
	}
	return &TraceBuffer{
		recent: make([]*RequestTrace, size),
		slow:   make([]*RequestTrace, (size+1)/2),
	}
}

// Add retains a finished trace.
func (b *TraceBuffer) Add(t *RequestTrace) {
	if b == nil || t == nil {
		return
	}
	b.mu.Lock()
	b.recent[b.next] = t
	b.next = (b.next + 1) % len(b.recent)
	t.mu.Lock()
	slow := t.slow
	t.mu.Unlock()
	if slow {
		b.slow[b.nextSl] = t
		b.nextSl = (b.nextSl + 1) % len(b.slow)
	}
	b.mu.Unlock()
}

// Get returns the retained trace with the given ID, or nil.
func (b *TraceBuffer) Get(id string) *RequestTrace {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, t := range b.recent {
		if t != nil && t.id == id {
			return t
		}
	}
	for _, t := range b.slow {
		if t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// Traces returns every retained trace, newest first, slow-pinned
// traces included once.
func (b *TraceBuffer) Traces() []*RequestTrace {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[string]bool, len(b.recent)+len(b.slow))
	out := make([]*RequestTrace, 0, len(b.recent)+len(b.slow))
	add := func(ring []*RequestTrace, next int) {
		for i := 0; i < len(ring); i++ {
			t := ring[(next-1-i+2*len(ring))%len(ring)]
			if t != nil && !seen[t.id] {
				seen[t.id] = true
				out = append(out, t)
			}
		}
	}
	add(b.recent, b.next)
	add(b.slow, b.nextSl)
	return out
}

// SlowLogEntry is one slow-query record. Stages is the per-stage
// millisecond breakdown when the request was also sampled (nil for
// slow-but-unsampled requests, which still log endpoint + latency).
type SlowLogEntry struct {
	ID          string             `json:"id,omitempty"`
	Endpoint    string             `json:"endpoint"`
	Query       string             `json:"query,omitempty"`
	StartUnixMs int64              `json:"start_unix_ms"`
	DurMs       float64            `json:"dur_ms"`
	Status      int                `json:"status"`
	Err         string             `json:"err,omitempty"`
	Stages      map[string]float64 `json:"stages,omitempty"`
}

// SlowLog is a fixed-size ring of slow-query entries.
type SlowLog struct {
	mu      sync.Mutex
	entries []SlowLogEntry
	next    int
	total   uint64
}

// NewSlowLog retains the most recent size entries.
func NewSlowLog(size int) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{entries: make([]SlowLogEntry, size)}
}

// Add records one slow query.
func (l *SlowLog) Add(e SlowLogEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries[l.next] = e
	l.next = (l.next + 1) % len(l.entries)
	l.total++
	l.mu.Unlock()
}

// Total returns the number of slow queries ever logged.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns retained entries, newest first.
func (l *SlowLog) Entries() []SlowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowLogEntry, 0, len(l.entries))
	for i := 0; i < len(l.entries); i++ {
		e := l.entries[(l.next-1-i+2*len(l.entries))%len(l.entries)]
		if e.Endpoint != "" {
			out = append(out, e)
		}
	}
	return out
}

// ReqTraceWriter streams finished request traces as JSON lines,
// mirroring TraceWriter for build traces. Safe for concurrent use.
type ReqTraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewReqTraceWriter wraps w; if w is also an io.Closer, Close closes it.
func NewReqTraceWriter(w io.Writer) *ReqTraceWriter {
	t := &ReqTraceWriter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// CreateReqTraceFile creates path and returns a writer over it.
func CreateReqTraceFile(path string) (*ReqTraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: create request trace: %w", err)
	}
	return NewReqTraceWriter(f), nil
}

// Write appends one finished trace. Encoding errors are sticky and
// surfaced by Close.
func (w *ReqTraceWriter) Write(t *RequestTrace) {
	if w == nil || t == nil {
		return
	}
	rec := t.Snapshot()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(append(b, '\n')); err != nil {
		w.err = err
	}
}

// Close flushes and closes the underlying writer.
func (w *ReqTraceWriter) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.c != nil {
		if err := w.c.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// ReqTraceStats summarizes a validated request-trace stream.
type ReqTraceStats struct {
	Traces    int            // total reqtrace records
	Spans     int            // total spans across traces
	Slow      int            // traces flagged slow
	Errors    int            // traces carrying an error
	Endpoints map[string]int // traces per endpoint
	StageMs   map[string]float64
	// MaxQueryStages is the largest count of distinct query stages
	// observed in any single trace — the tracecheck -min-stages gate.
	MaxQueryStages int
}

// spanEps absorbs float rounding when comparing child-span sums
// against parent wall time (milliseconds).
const spanEps = 0.05

// ValidateRequestTraces reads a request-trace JSONL stream and
// enforces the schema plus the structural invariants every consumer
// relies on: known stages, parent indices pointing backwards, spans
// inside the trace window, and — the big one — the sum of children's
// wall time never exceeding the parent span's (nesting means children
// run within the parent, so a violation is double-counted time).
func ValidateRequestTraces(r io.Reader) (*ReqTraceStats, error) {
	st := &ReqTraceStats{
		Endpoints: make(map[string]int),
		StageMs:   make(map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec ReqTraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("line %d: bad JSON: %w", line, err)
		}
		if rec.Ev != "reqtrace" {
			return nil, fmt.Errorf("line %d: ev %q, want \"reqtrace\"", line, rec.Ev)
		}
		if rec.ID == "" {
			return nil, fmt.Errorf("line %d: empty trace id", line)
		}
		if rec.Endpoint == "" {
			return nil, fmt.Errorf("line %d: empty endpoint", line)
		}
		if rec.DurMs < 0 {
			return nil, fmt.Errorf("line %d: negative duration %g", line, rec.DurMs)
		}
		if len(rec.Spans) == 0 {
			return nil, fmt.Errorf("line %d: trace %s has no spans", line, rec.ID)
		}
		if rec.Spans[0].Par != -1 || rec.Spans[0].Stage != ReqStageHandler {
			return nil, fmt.Errorf("line %d: trace %s: span 0 must be the root %q span",
				line, rec.ID, ReqStageHandler)
		}
		childSum := make([]float64, len(rec.Spans))
		distinct := make(map[string]bool, 8)
		for i, sp := range rec.Spans {
			if !reqStages[sp.Stage] {
				return nil, fmt.Errorf("line %d: trace %s span %d: unknown stage %q",
					line, rec.ID, i, sp.Stage)
			}
			if i > 0 && (sp.Par < 0 || sp.Par >= i) {
				return nil, fmt.Errorf("line %d: trace %s span %d: parent %d out of range",
					line, rec.ID, i, sp.Par)
			}
			if sp.StartMs < 0 || sp.DurMs < 0 {
				return nil, fmt.Errorf("line %d: trace %s span %d: negative time", line, rec.ID, i)
			}
			if sp.StartMs+sp.DurMs > rec.DurMs+spanEps {
				return nil, fmt.Errorf("line %d: trace %s span %d (%s): ends %.3fms after the trace (%.3fms)",
					line, rec.ID, i, sp.Stage, sp.StartMs+sp.DurMs-rec.DurMs, rec.DurMs)
			}
			if sp.Par >= 0 {
				childSum[sp.Par] += sp.DurMs
			}
			if queryStages[sp.Stage] {
				distinct[sp.Stage] = true
			}
			st.StageMs[sp.Stage] += sp.DurMs
			st.Spans++
		}
		for i, sp := range rec.Spans {
			if childSum[i] > sp.DurMs+spanEps {
				return nil, fmt.Errorf(
					"line %d: trace %s span %d (%s): children sum %.3fms exceeds span %.3fms",
					line, rec.ID, i, sp.Stage, childSum[i], sp.DurMs)
			}
		}
		st.Traces++
		st.Endpoints[rec.Endpoint]++
		if rec.Slow {
			st.Slow++
		}
		if rec.Err != "" {
			st.Errors++
		}
		if len(distinct) > st.MaxQueryStages {
			st.MaxQueryStages = len(distinct)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read request trace: %w", err)
	}
	if st.Traces == 0 {
		return nil, fmt.Errorf("telemetry: request trace stream is empty")
	}
	return st, nil
}

// ValidateRequestTraceFile opens path and validates it.
func ValidateRequestTraceFile(path string) (*ReqTraceStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open request trace: %w", err)
	}
	defer f.Close()
	return ValidateRequestTraces(f)
}
