package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

// TestCollectorDerivesStalls feeds hand-built spans through the
// Collector and checks that it derives the idle gaps: a stall span per
// gap in each parse/index worker stream plus a tail stall at BuildEnd,
// so that busy+stall tiles the whole build window.
func TestCollectorDerivesStalls(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	reg := NewRegistry()
	c := NewCollector(reg, tw)

	c.BuildStart(2, map[string]any{"files": 2})
	base := time.Now() // ≈ the collector's epoch, within microseconds
	ms := time.Millisecond
	c.StageSpan(StageRead, -1, 0, base, 2*ms, 1<<20, 0, 0)
	c.StageSpan(StageParse, 0, 0, base.Add(10*ms), 5*ms, 4096, 100, 4)
	c.StageSpan(StageParse, 0, 1, base.Add(25*ms), 5*ms, 4096, 150, 6)
	c.StageSpan(StageIndex, 0, 0, base.Add(16*ms), 4*ms, 0, 100, 0)
	c.StageSpan(StageFlush, -1, 0, base.Add(30*ms), 2*ms, 0, 0, 0)
	c.StageSpan(StageFlush, -1, 1, base.Add(33*ms), 2*ms, 0, 0, 0)
	c.Sample("parsed_queue_depth", 0, 2)
	c.Total("collection_tokens", map[string]string{"coll": "a", "kind": "cpu"}, 100)
	c.Total("collection_tokens", map[string]string{"coll": "b", "kind": "cpu"}, 150)

	p := c.Progress()
	if p.FilesDone != 2 || p.FilesTotal != 2 {
		t.Errorf("progress files = %d/%d, want 2/2", p.FilesDone, p.FilesTotal)
	}
	if p.Docs != 10 || p.Tokens != 250 {
		t.Errorf("progress docs/tokens = %d/%d, want 10/250", p.Docs, p.Tokens)
	}
	if p.ReadBytes != 1<<20 || p.ParsedBytes != 8192 {
		t.Errorf("progress bytes = %d/%d, want %d/8192", p.ReadBytes, p.ParsedBytes, 1<<20)
	}

	// Let real wall-clock pass the last span end so BuildEnd has a tail
	// gap to close for each worker stream.
	time.Sleep(60 * ms)
	c.BuildEnd(map[string]any{"docs": 10})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := ValidateTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The spans above were fed with microsecond-level skew between the
	// collector's epoch and base; stage sums are exact span durations.
	approx(t, "parse busy", st.StageSec[StageParse], 0.010, 1e-9)
	approx(t, "index busy", st.StageSec[StageIndex], 0.004, 1e-9)
	// parse/0 gaps: [0,10ms) before the first span, (15ms,25ms) between
	// spans, plus the tail from 30ms to the wall clock.
	wantParseStall := st.WallSec - 0.010
	approx(t, "parse stall", st.StageSec["stall:"+StageParse], wantParseStall, 2e-3)
	wantIndexStall := st.WallSec - 0.004
	approx(t, "index stall", st.StageSec["stall:"+StageIndex], wantIndexStall, 2e-3)
	// Busy+stall tiles each stream → coverage ≈ 1.
	if st.BusyStallCoverage < 0.95 || st.BusyStallCoverage > 1.05 {
		t.Errorf("busy+stall coverage = %v, want ~1.0", st.BusyStallCoverage)
	}

	// Registry side: totals and the aggregated (coll label dropped)
	// collection_tokens counter.
	approx(t, "docs_total", reg.Counter("fastinvert_build_docs_total", "").Value(), 10, 0)
	approx(t, "tokens_total", reg.Counter("fastinvert_build_tokens_total", "").Value(), 250, 0)
	approx(t, "collection_tokens{kind=cpu}",
		reg.Counter("fastinvert_build_collection_tokens", "", L("kind", "cpu")).Value(), 250, 0)
	approx(t, "stage_seconds{parse}",
		reg.Counter("fastinvert_build_stage_seconds_total", "", L("stage", "parse")).Value(), 0.010, 1e-9)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fastinvert_build_stage_seconds_total{stage=\"parse\"}",
		"fastinvert_build_stage_seconds_total{stage=\"stall_parse\"}",
		"fastinvert_build_span_seconds_bucket",
		"fastinvert_build_wall_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestCollectorNilSinks: a collector with neither registry nor trace
// must still accumulate StageSeconds and Progress without panicking —
// benchrunner uses exactly this shape.
func TestCollectorNilSinks(t *testing.T) {
	c := NewCollector(nil, nil)
	c.BuildStart(1, nil)
	base := time.Now()
	c.StageSpan(StageParse, 0, 0, base, time.Millisecond, 10, 20, 1)
	c.Sample("x", 0, 1)
	c.Total("collection_tokens", map[string]string{"kind": "gpu"}, 20)
	c.BuildEnd(nil)
	approx(t, "StageSeconds[parse]", c.StageSeconds()[StageParse], 0.001, 1e-9)
	if c.Progress().Tokens != 20 {
		t.Errorf("tokens = %d, want 20", c.Progress().Tokens)
	}
}
