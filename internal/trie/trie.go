// Package trie implements the paper's height-3 trie (§III.B, Table I),
// flattened into a constant lookup table: each term maps to one of
// 17,613 trie-collection indices, and terms sharing an index share a
// prefix that the dictionary strips before B-tree insertion.
//
// The index layout reproduces Table I exactly:
//
//	0                 special terms ("-80", "3d", "česky")
//	1 .. 10           pure numbers, by first digit '0'..'9'
//	11 .. 36          terms starting 'a'..'z' that have <= 3 letters
//	                  or a special byte among the first 3
//	37 .. 17612       terms with > 3 letters and a pure a-z 3-prefix:
//	                  37 + (c0-'a')*676 + (c1-'a')*26 + (c2-'a')
package trie

// NumCollections is the total number of trie-collection indices
// (1 special + 10 numeric + 26 short/special + 26^3 three-letter).
const NumCollections = 1 + 10 + 26 + 26*26*26 // 17613

// Boundaries of the index categories (Table I).
const (
	IndexSpecial     = 0  // terms that fit no other category
	FirstNumeric     = 1  // numbers starting with '0'
	LastNumeric      = 10 // numbers starting with '9'
	FirstShortLetter = 11 // 'a': short terms or special byte in prefix
	LastShortLetter  = 36 // 'z'
	FirstThreeLetter = 37 // "aaa"
	LastThreeLetter  = NumCollections - 1
)

// Index maps a term to its trie-collection index. Terms are raw token
// bytes after case folding; letters are 'a'..'z', digits '0'..'9', and
// anything else is "special". Empty terms map to IndexSpecial.
func Index(term []byte) int {
	if len(term) == 0 {
		return IndexSpecial
	}
	c0 := term[0]
	switch {
	case c0 >= '0' && c0 <= '9':
		for _, c := range term[1:] {
			if c < '0' || c > '9' {
				return IndexSpecial
			}
		}
		return FirstNumeric + int(c0-'0')
	case c0 >= 'a' && c0 <= 'z':
		if len(term) <= 3 {
			return FirstShortLetter + int(c0-'a')
		}
		c1, c2 := term[1], term[2]
		if c1 < 'a' || c1 > 'z' || c2 < 'a' || c2 > 'z' {
			return FirstShortLetter + int(c0-'a')
		}
		return FirstThreeLetter +
			int(c0-'a')*26*26 + int(c1-'a')*26 + int(c2-'a')
	default:
		return IndexSpecial
	}
}

// IndexString is the string-keyed variant of Index.
func IndexString(term string) int { return Index([]byte(term)) }

// StripLen reports how many leading bytes of a term in collection idx
// are captured by the trie and therefore omitted from dictionary
// storage (§III.B.1): 3 for three-letter collections, 1 for numeric
// and short-letter collections (shared first byte), 0 for the special
// collection whose members share nothing.
func StripLen(idx int) int {
	switch {
	case idx >= FirstThreeLetter:
		return 3
	case idx >= FirstNumeric:
		return 1
	default:
		return 0
	}
}

// Prefix reconstructs the prefix bytes implied by a collection index,
// the inverse of the strip performed on insertion. It returns an empty
// slice for IndexSpecial.
func Prefix(idx int) []byte {
	switch {
	case idx >= FirstThreeLetter:
		v := idx - FirstThreeLetter
		return []byte{
			byte('a' + v/(26*26)),
			byte('a' + v/26%26),
			byte('a' + v%26),
		}
	case idx >= FirstShortLetter:
		return []byte{byte('a' + idx - FirstShortLetter)}
	case idx >= FirstNumeric:
		return []byte{byte('0' + idx - FirstNumeric)}
	default:
		return nil
	}
}

// Strip removes the trie-captured prefix from term for storage in
// collection idx. The result aliases term's backing array.
func Strip(idx int, term []byte) []byte {
	n := StripLen(idx)
	if n > len(term) {
		n = len(term)
	}
	return term[n:]
}

// Restore prepends the trie prefix of idx to a stripped term, yielding
// the original term. It allocates the result.
func Restore(idx int, stripped []byte) []byte {
	return RestoreAppend(idx, nil, stripped)
}

// RestoreAppend is Restore appending into dst, so bulk dictionary
// walks can reuse one scratch buffer per term instead of allocating.
func RestoreAppend(idx int, dst, stripped []byte) []byte {
	dst = append(dst, Prefix(idx)...)
	return append(dst, stripped...)
}

// CategoryName describes the Table I row an index belongs to, for
// diagnostics and reports.
func CategoryName(idx int) string {
	switch {
	case !Valid(idx):
		return "invalid"
	case idx == IndexSpecial:
		return "special"
	case idx <= LastNumeric:
		return "numeric"
	case idx <= LastShortLetter:
		return "short-or-special-letter"
	case idx <= LastThreeLetter:
		return "three-letter"
	default:
		return "invalid"
	}
}

// Valid reports whether idx is a legal trie-collection index.
func Valid(idx int) bool { return idx >= 0 && idx < NumCollections }
