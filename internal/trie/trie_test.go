package trie

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestTableIExamples checks every example row of Table I.
func TestTableIExamples(t *testing.T) {
	cases := []struct {
		term string
		want int
	}{
		{"-80", IndexSpecial},
		{"3d", IndexSpecial},
		{"\xc4\x8cesky", IndexSpecial}, // "Česky" lowercased, multi-byte first rune
		{"01", 1},
		{"0195", 1},
		{"9", 10},
		{"954", 10},
		{"a", 11},
		{"at", 11},
		{"act", 11},
		{"afonuevo", 11}, // special letter (ñ) in first 3 letters... see below
		{"z", 36},
		{"zoo", 36},
		{"zo\xc3\xa9", 36}, // "zoé"
		{"aaat", 37},
		{"aaa\xc3\xa9", 37}, // "aaaé"
		{"aabomycin", 38},
		{"zzzy", 17612},
	}
	for _, c := range cases {
		// Table I writes "añonuevo" with ñ in position 2; encode that.
		term := c.term
		if term == "afonuevo" {
			term = "a\xc3\xb1onuevo"
		}
		if got := IndexString(term); got != c.want {
			t.Errorf("Index(%q) = %d, want %d", term, got, c.want)
		}
	}
}

func TestNumCollections(t *testing.T) {
	if NumCollections != 17613 {
		t.Fatalf("NumCollections = %d, want 17613 (Table I)", NumCollections)
	}
	if LastThreeLetter != 17612 {
		t.Fatalf("LastThreeLetter = %d, want 17612", LastThreeLetter)
	}
}

func TestIndexCategories(t *testing.T) {
	cases := []struct {
		term     string
		category string
	}{
		{"", "special"},
		{"-", "special"},
		{"12a", "special"}, // digit first but not a pure number
		{"7", "numeric"},
		{"00", "numeric"},
		{"cat", "short-or-special-letter"},
		{"c4po", "short-or-special-letter"}, // >3 bytes, digit inside prefix
		{"down", "three-letter"},
		{"zzzz", "three-letter"},
	}
	for _, c := range cases {
		idx := IndexString(c.term)
		if got := CategoryName(idx); got != c.category {
			t.Errorf("CategoryName(Index(%q)=%d) = %q, want %q",
				c.term, idx, got, c.category)
		}
	}
	if CategoryName(-1) != "invalid" || CategoryName(NumCollections) != "invalid" {
		t.Error("out-of-range indices must be invalid")
	}
}

func TestThreeLetterIndexFormula(t *testing.T) {
	// Spot-check the arithmetic across the range.
	if got := IndexString("aaaa"); got != 37 {
		t.Errorf("aaaa -> %d, want 37", got)
	}
	if got := IndexString("aaba"); got != 38 {
		t.Errorf("aab* -> %d, want 38", got)
	}
	if got := IndexString("abaa"); got != 37+26 {
		t.Errorf("aba* -> %d, want %d", got, 37+26)
	}
	if got := IndexString("baaa"); got != 37+676 {
		t.Errorf("baa* -> %d, want %d", got, 37+676)
	}
	if got := IndexString("theory"); got != 37+(int('t'-'a'))*676+(int('h'-'a'))*26+int('e'-'a') {
		t.Errorf("theory index mismatch: %d", got)
	}
}

func TestIndexAlwaysValidQuick(t *testing.T) {
	f := func(term []byte) bool { return Valid(Index(term)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripRestoreRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		// Build plausible token bytes: letters, digits, occasional junk.
		term := make([]byte, 0, len(raw))
		for _, c := range raw {
			switch c % 4 {
			case 0, 1:
				term = append(term, 'a'+c%26)
			case 2:
				term = append(term, '0'+c%10)
			default:
				term = append(term, c)
			}
		}
		idx := Index(term)
		stripped := Strip(idx, term)
		restored := Restore(idx, stripped)
		return bytes.Equal(restored, term)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripLenPerCategory(t *testing.T) {
	if StripLen(IndexSpecial) != 0 {
		t.Error("special collection must strip nothing")
	}
	for idx := FirstNumeric; idx <= LastShortLetter; idx++ {
		if StripLen(idx) != 1 {
			t.Fatalf("StripLen(%d) = %d, want 1", idx, StripLen(idx))
		}
	}
	if StripLen(FirstThreeLetter) != 3 || StripLen(LastThreeLetter) != 3 {
		t.Error("three-letter collections must strip 3 bytes")
	}
}

func TestPrefixMatchesIndex(t *testing.T) {
	// For every index, Prefix must map back into the same index when a
	// long suffix is appended (three-letter) or be consistent for the
	// single-byte categories.
	for idx := FirstThreeLetter; idx < NumCollections; idx += 997 {
		term := append(Prefix(idx), 'q', 'q')
		if got := Index(term); got != idx {
			t.Errorf("Prefix(%d)+qq -> index %d", idx, got)
		}
	}
	for idx := FirstNumeric; idx <= LastNumeric; idx++ {
		term := append(Prefix(idx), '7')
		if got := Index(term); got != idx {
			t.Errorf("numeric Prefix(%d)+7 -> %d", idx, got)
		}
	}
	for idx := FirstShortLetter; idx <= LastShortLetter; idx++ {
		if got := Index(Prefix(idx)); got != idx {
			t.Errorf("letter Prefix(%d) -> %d", idx, got)
		}
	}
}

// TestExhaustivePrefixRoundTrip covers every one of the 17,613
// indices: the prefix implied by each index maps back to that index
// when extended into its category, and StripLen never exceeds the
// prefix length.
func TestExhaustivePrefixRoundTrip(t *testing.T) {
	for idx := 0; idx < NumCollections; idx++ {
		p := Prefix(idx)
		if len(p) != StripLen(idx) && idx != IndexSpecial {
			t.Fatalf("index %d: prefix %q vs StripLen %d", idx, p, StripLen(idx))
		}
		switch {
		case idx == IndexSpecial:
			if len(p) != 0 {
				t.Fatalf("special prefix %q", p)
			}
		case idx <= LastNumeric:
			term := append(append([]byte{}, p...), '4', '2')
			if got := Index(term); got != idx {
				t.Fatalf("numeric %d: %q -> %d", idx, term, got)
			}
		case idx <= LastShortLetter:
			if got := Index(p); got != idx {
				t.Fatalf("short %d: %q -> %d", idx, p, got)
			}
		default:
			term := append(append([]byte{}, p...), 'q')
			if got := Index(term); got != idx {
				t.Fatalf("three-letter %d: %q -> %d", idx, term, got)
			}
		}
	}
}

// TestPaperStripExample verifies §III.B.2's "application" example:
// the trie captures "app" and the node cache would hold "lica".
func TestPaperStripExample(t *testing.T) {
	term := []byte("application")
	idx := Index(term)
	stripped := Strip(idx, term)
	if string(stripped) != "lication" {
		t.Fatalf("stripped = %q, want %q", stripped, "lication")
	}
	if string(stripped[:4]) != "lica" {
		t.Fatalf("cache bytes = %q, want %q", stripped[:4], "lica")
	}
}

func TestIndexDeterministicAndDisjoint(t *testing.T) {
	// A term always maps to exactly one index (determinism) and the
	// category boundaries partition the space.
	terms := []string{"", "the", "a", "0", "99x", "zzzzzz", "-", "ab1cd"}
	for _, s := range terms {
		a, b := IndexString(s), IndexString(s)
		if a != b {
			t.Errorf("Index(%q) nondeterministic: %d vs %d", s, a, b)
		}
	}
}

func BenchmarkIndex(b *testing.B) {
	terms := [][]byte{
		[]byte("the"), []byte("application"), []byte("0195"),
		[]byte("zzzy"), []byte("-80"), []byte("parallel"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Index(terms[i%len(terms)])
	}
}
