package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"fastinvert/internal/search"
)

// TestServerBlockRankedPath checks the static server serves /search
// topk through the block evaluators once the index is merged: results
// agree with the exhaustive scorer, the rank counters advance, and a
// re-query resolved from the postings cache (after exhaustive scoring
// populated it) still answers through pseudo-blocks.
func TestServerBlockRankedPath(t *testing.T) {
	idx := buildIndex(t)
	if _, err := idx.Merge(); err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	words := pickWords(t, idx, 3)
	q := strings.Join(words, "+")

	got := getJSON(t, ts, "/search?mode=topk&k=5&q="+q, 200)
	st := srv.searcher.RankStats()
	if st.BlockQueries != 1 {
		t.Fatalf("block queries = %d, want 1 (stats %+v)", st.BlockQueries, st)
	}

	// The exhaustive scorer must agree exactly (it also warms the cache).
	srv.searcher.SetRankMode(search.RankExhaustive)
	want := getJSON(t, ts, "/search?mode=topk&k=5&q="+q, 200)
	if fmt.Sprint(got["ranked"]) != fmt.Sprint(want["ranked"]) {
		t.Fatalf("block ranked = %v\nexhaustive = %v", got["ranked"], want["ranked"])
	}

	// Back to auto: cached lists serve as exact pseudo-blocks.
	srv.searcher.SetRankMode(search.RankAuto)
	again := getJSON(t, ts, "/search?mode=topk&k=5&q="+q, 200)
	if fmt.Sprint(again["ranked"]) != fmt.Sprint(want["ranked"]) {
		t.Fatalf("cached block ranked = %v\nexhaustive = %v", again["ranked"], want["ranked"])
	}
	if st := srv.searcher.RankStats(); st.BlockQueries != 2 {
		t.Fatalf("block queries after cache warm = %d, want 2 (%+v)", st.BlockQueries, st)
	}
}

// TestServerRankParam checks the per-request evaluator override: every
// rank= value answers identically on the same query, the explicit
// evaluators advance the block counters, exhaustive does not, and a
// junk value is a 400.
func TestServerRankParam(t *testing.T) {
	idx := buildIndex(t)
	if _, err := idx.Merge(); err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	words := pickWords(t, idx, 3)
	q := strings.Join(words, "+")

	want := getJSON(t, ts, "/search?mode=topk&k=5&rank=exhaustive&q="+q, 200)
	if st := srv.searcher.RankStats(); st.BlockQueries != 0 {
		t.Fatalf("exhaustive override ran a block evaluator (%+v)", st)
	}
	for i, rank := range []string{"auto", "maxscore", "bmw"} {
		got := getJSON(t, ts, "/search?mode=topk&k=5&rank="+rank+"&q="+q, 200)
		if fmt.Sprint(got["ranked"]) != fmt.Sprint(want["ranked"]) {
			t.Fatalf("rank=%s: %v\nexhaustive: %v", rank, got["ranked"], want["ranked"])
		}
		if st := srv.searcher.RankStats(); st.BlockQueries != uint64(i+1) {
			t.Fatalf("rank=%s: block queries = %d, want %d", rank, st.BlockQueries, i+1)
		}
	}
	getJSON(t, ts, "/search?mode=topk&k=5&rank=wand&q="+q, 400)
}
