package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fastinvert/internal/segment"
)

// newLiveServer opens a segment manager in a temp dir and mounts a
// live Server on it.
func newLiveServer(t *testing.T, opts segment.Options) (*segment.Manager, *httptest.Server) {
	t.Helper()
	m, err := segment.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewLive(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		m.Close()
	})
	return m, ts
}

// post sends a POST with the given body and decodes the JSON response.
func post(t *testing.T, ts *httptest.Server, path, body string, status int) map[string]any {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("POST %s = %d, want %d; body: %s", path, resp.StatusCode, status, raw)
	}
	return decodeJSON(t, path, raw)
}

func decodeJSON(t *testing.T, path string, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: bad JSON %v: %s", path, err, raw)
	}
	return m
}

// TestLiveServerLifecycle walks a document through the whole pipeline
// over HTTP: ingest → search from the memtable → delete → seal →
// compact → the deleted doc is gone and the survivor still answers.
func TestLiveServerLifecycle(t *testing.T) {
	_, ts := newLiveServer(t, segment.Options{})

	// Ingest three documents; docIDs are assigned in order.
	for i, text := range []string{
		"alpha beta beta",
		"alpha gamma",
		"gamma delta",
	} {
		got := post(t, ts, "/ingest", text, http.StatusOK)
		if doc := int(got["doc"].(float64)); doc != i {
			t.Fatalf("ingest #%d assigned doc %d", i, doc)
		}
	}

	// Queryable straight from the memtable.
	res := getJSON(t, ts, "/search?q=alpha&mode=and", http.StatusOK)
	if int(res["count"].(float64)) != 2 {
		t.Fatalf("and(alpha) = %v, want 2 docs", res)
	}

	// Delete doc 1; alpha drops to one hit, idempotent second delete.
	post(t, ts, "/delete?doc=1", "", http.StatusOK)
	post(t, ts, "/delete?doc=1", "", http.StatusOK)
	res = getJSON(t, ts, "/search?q=alpha&mode=and", http.StatusOK)
	if int(res["count"].(float64)) != 1 {
		t.Fatalf("and(alpha) after delete = %v, want 1 doc", res)
	}

	// Unknown doc is 404; junk doc parameter is 400.
	post(t, ts, "/delete?doc=99", "", http.StatusNotFound)
	post(t, ts, "/delete?doc=zzz", "", http.StatusBadRequest)

	// Seal, then compact: the tombstone is purged physically.
	post(t, ts, "/seal", "", http.StatusOK)
	got := post(t, ts, "/compact", "", http.StatusOK)
	if int(got["purged"].(float64)) != 1 {
		t.Fatalf("compact reported %v, want purged=1", got)
	}

	// Postings for a surviving term: gamma was in docs 1 and 2, and the
	// purge stripped doc 1. 404 for a term that never existed.
	pres := getJSON(t, ts, "/postings?term=gamma", http.StatusOK)
	if int(pres["df"].(float64)) != 1 {
		t.Fatalf("postings(gamma) = %v, want df 1", pres)
	}
	getJSON(t, ts, "/postings?term=zebra", http.StatusNotFound)

	// Health reports live mode with the post-compaction shape.
	h := getJSON(t, ts, "/healthz", http.StatusOK)
	if h["mode"] != "live" || int(h["docs"].(float64)) != 2 {
		t.Fatalf("healthz = %v, want live mode with 2 docs", h)
	}

	// GET on mutating endpoints is rejected.
	resp, err := ts.Client().Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest = %d, want 405", resp.StatusCode)
	}
}

// TestLiveServerCacheGeneration checks that cached postings never
// survive a mutation: the cache key carries the generation, so a
// search after an ingest must see the new document even though the
// previous result was cached.
func TestLiveServerCacheGeneration(t *testing.T) {
	_, ts := newLiveServer(t, segment.Options{})

	post(t, ts, "/ingest", "omega alpha", http.StatusOK)
	for i := 0; i < 3; i++ { // populate + hit the cache
		res := getJSON(t, ts, "/search?q=omega&mode=and", http.StatusOK)
		if int(res["count"].(float64)) != 1 {
			t.Fatalf("round %d: %v, want 1 doc", i, res)
		}
	}
	post(t, ts, "/ingest", "omega beta", http.StatusOK)
	res := getJSON(t, ts, "/search?q=omega&mode=and", http.StatusOK)
	if int(res["count"].(float64)) != 2 {
		t.Fatalf("stale cache after ingest: %v, want 2 docs", res)
	}
	post(t, ts, "/delete?doc=0", "", http.StatusOK)
	res = getJSON(t, ts, "/search?q=omega&mode=and", http.StatusOK)
	if int(res["count"].(float64)) != 1 {
		t.Fatalf("stale cache after delete: %v, want 1 doc", res)
	}
}

// TestLiveServerMetrics scrapes /metrics and checks the live gauges
// are published and track the manager.
func TestLiveServerMetrics(t *testing.T) {
	_, ts := newLiveServer(t, segment.Options{SealEvery: 2})
	for i := 0; i < 5; i++ {
		post(t, ts, "/ingest", fmt.Sprintf("alpha beta w%dx", i), http.StatusOK)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"hetserve_live_docs 5",
		"hetserve_live_seals_total 2",
		"hetserve_live_segments 2",
		"hetserve_live_memtable_docs 1",
		"hetserve_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestLiveServerConcurrentIngestAndSearch races HTTP ingests, deletes
// and searches against background seals — the end-to-end version of
// the manager-level race tests (run with -race).
func TestLiveServerConcurrentIngestAndSearch(t *testing.T) {
	m, ts := newLiveServer(t, segment.Options{SealEvery: 4, CompactAt: 3})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got := post(t, ts, "/ingest",
					fmt.Sprintf("alpha g%dn%dx", g, i), http.StatusOK)
				if i%6 == 3 {
					doc := int(got["doc"].(float64))
					post(t, ts, fmt.Sprintf("/delete?doc=%d", doc), "", http.StatusOK)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := ts.Client().Get(ts.URL + "/search?q=alpha&mode=and")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search during ingest = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := m.LastCompactionError(); err != nil {
		t.Fatal(err)
	}
	res := getJSON(t, ts, "/search?q=alpha&mode=and", http.StatusOK)
	want := 4*25 - 4*4 // 4 writers × 25 docs, 4 deletes each (i%6==3)
	if got := int(res["count"].(float64)); got != want {
		t.Fatalf("final and(alpha) = %d docs, want %d", got, want)
	}
}
