package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/search"
	"fastinvert/internal/store"
)

// buildIndex persists a small positional index and opens it.
func buildIndex(t testing.TB) *store.IndexReader {
	t.Helper()
	p := corpus.ClueWeb09(1)
	p.VocabSize = 2000
	p.DocsPerFile = 10
	p.MeanDocTokens = 50
	src := corpus.NewMemSource(corpus.NewGenerator(p), 3)

	cfg := core.DefaultConfig()
	cfg.Parsers = 2
	cfg.CPUIndexers = 1
	cfg.GPUs = 1
	g := gpu.TeslaC1060()
	g.SMs = 4
	g.DeviceMemBytes = 64 << 20
	cfg.GPU = g
	cfg.GPUThreadBlocks = 8
	cfg.Sampling.Ratio = 0.2
	cfg.Positional = true
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Build(src); err != nil {
		t.Fatal(err)
	}
	idx, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// pickWords returns up to n dictionary terms that survive query
// normalization unchanged (stemming is not idempotent for every term),
// so querying them is guaranteed to hit the index.
func pickWords(t testing.TB, idx *store.IndexReader, n int) []string {
	t.Helper()
	s := search.New(idx)
	var out []string
	for _, e := range idx.Dictionary() {
		if len(e.Term) < 3 {
			continue
		}
		norm, stop := s.Normalize(e.Term)
		if stop || norm != e.Term {
			continue
		}
		out = append(out, e.Term)
		if len(out) == n {
			break
		}
	}
	if len(out) == 0 {
		t.Fatal("no usable dictionary term")
	}
	return out
}

func indexedWord(t testing.TB, idx *store.IndexReader) string {
	return pickWords(t, idx, 1)[0]
}

func getJSON(t *testing.T, ts *httptest.Server, path string, status int) map[string]any {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("GET %s = %d, want %d; body: %s", path, resp.StatusCode, status, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: bad JSON %v: %s", path, err, body)
	}
	return m
}

func TestServerEndpoints(t *testing.T) {
	idx := buildIndex(t)
	srv := New(idx, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	word := indexedWord(t, idx)

	// /healthz
	h := getJSON(t, ts, "/healthz", http.StatusOK)
	if h["status"] != "ok" || h["terms"].(float64) <= 0 {
		t.Fatalf("healthz = %v", h)
	}

	// /search in every mode
	for _, mode := range []string{"and", "or", "topk", "phrase"} {
		m := getJSON(t, ts, "/search?q="+word+"&mode="+mode+"&k=5", http.StatusOK)
		if m["mode"] != mode {
			t.Fatalf("mode = %v, want %s", m["mode"], mode)
		}
		if m["count"].(float64) <= 0 {
			t.Fatalf("mode %s found no docs for indexed word %q: %v", mode, word, m)
		}
	}

	// /search errors
	getJSON(t, ts, "/search?q=", http.StatusBadRequest)
	getJSON(t, ts, "/search?q=x&mode=bogus", http.StatusBadRequest)
	getJSON(t, ts, "/search?q=x&k=-3", http.StatusBadRequest)

	// /postings: known term, then 404s
	pm := getJSON(t, ts, "/postings?term="+word+"&limit=5", http.StatusOK)
	if pm["df"].(float64) <= 0 {
		t.Fatalf("postings df = %v", pm["df"])
	}
	if docs := pm["docs"].([]any); len(docs) > 5 {
		t.Fatalf("limit ignored: %d docs", len(docs))
	}
	getJSON(t, ts, "/postings?term=zzzzunindexedzzz", http.StatusNotFound)
	getJSON(t, ts, "/postings?term=the", http.StatusNotFound) // stop word
	getJSON(t, ts, "/postings", http.StatusBadRequest)
}

// TestServerConcurrentSearch hammers /search from 16 goroutines with
// mixed modes (race detector exercises reader, cache and metrics) and
// then checks /debug/vars reports the traffic.
func TestServerConcurrentSearch(t *testing.T) {
	idx := buildIndex(t)
	srv := New(idx, Config{CacheShards: 4, CacheBytes: 1 << 20, Workers: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	words := pickWords(t, idx, 8)
	modes := []string{"and", "or", "topk"}

	const goroutines = 16
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w := words[(g+i)%len(words)]
				var path string
				if i%3 == 0 {
					path = "/postings?term=" + w
				} else {
					path = "/search?q=" + w + "&mode=" + modes[(g+i)%len(modes)]
				}
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Repeated terms must have produced cache hits.
	st := srv.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits after %d repeated queries: %+v", goroutines*perG, st)
	}

	// /debug/vars carries the metrics snapshot.
	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		Hetserve varsSnapshot `json:"hetserve"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars: %v: %s", err, body)
	}
	hs := vars.Hetserve
	if hs.Queries != goroutines*perG {
		t.Errorf("queries = %d, want %d", hs.Queries, goroutines*perG)
	}
	if hs.QPS <= 0 || hs.P50Ms < 0 || hs.P99Ms < hs.P50Ms {
		t.Errorf("implausible latency stats: %+v", hs)
	}
	if hs.CacheHitRate <= 0 {
		t.Errorf("cache hit rate = %v, want > 0", hs.CacheHitRate)
	}
	if !strings.Contains(string(body), "memstats") {
		t.Error("/debug/vars lost the global expvar registry")
	}
}

// TestServerQueryTimeout forces an immediate deadline and expects 503.
func TestServerQueryTimeout(t *testing.T) {
	idx := buildIndex(t)
	srv := New(idx, Config{QueryTimeout: time.Nanosecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	word := indexedWord(t, idx)
	getJSON(t, ts, "/search?q="+word, http.StatusServiceUnavailable)
}

// TestServerAfterIndexClose verifies ErrClosed maps to 503 rather
// than a hang or crash.
func TestServerAfterIndexClose(t *testing.T) {
	idx := buildIndex(t)
	srv := New(idx, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	word := indexedWord(t, idx)
	getJSON(t, ts, "/search?q="+word+"&mode=and", http.StatusOK)
	idx.Close()
	// The term just queried is cached, so pick a different one to force
	// a reader touch; with the whole cache bypassed the reader must
	// report ErrClosed.
	srvCold := New(idx, Config{})
	defer srvCold.Close()
	tsCold := httptest.NewServer(srvCold.Handler())
	defer tsCold.Close()
	getJSON(t, tsCold, "/search?q="+word+"&mode=and", http.StatusServiceUnavailable)
}
