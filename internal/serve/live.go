package serve

import (
	"errors"
	"io"
	"net/http"
	"strconv"

	"fastinvert/internal/segment"
	"fastinvert/internal/store"
)

// maxIngestBytes bounds one /ingest request body. Documents in the
// paper's workloads are web pages, well under a megabyte; the limit
// exists so a single malformed upload cannot balloon the memtable.
const maxIngestBytes = 8 << 20

// handleIngest adds one document — the raw request body is the
// document text — and returns its assigned docID:
//
//	POST /ingest            body: document text
//	→ {"doc": 42, "generation": 17}
//
// Parsing and indexing run synchronously on the request goroutine; a
// 200 means the document is queryable (from the memtable) before the
// response is written.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxIngestBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			"document exceeds "+strconv.Itoa(maxIngestBytes)+" bytes")
		return
	}
	doc, err := s.live.AddDocument(body)
	if err != nil {
		writeLiveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"doc":        doc,
		"generation": s.live.Gen(),
	})
}

// handleDelete tombstones one document:
//
//	POST /delete?doc=42
//
// Deleting an already-deleted document is idempotent (200 both times);
// a docID that was never assigned is 404.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ds := r.URL.Query().Get("doc")
	if ds == "" {
		httpError(w, http.StatusBadRequest, "missing doc parameter")
		return
	}
	v, err := strconv.ParseUint(ds, 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, "doc must be a uint32")
		return
	}
	if err := s.live.Delete(uint32(v)); err != nil {
		writeLiveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"doc":        uint32(v),
		"deleted":    true,
		"generation": s.live.Gen(),
	})
}

// handleSeal forces the memtable to seal into an on-disk segment:
//
//	POST /seal
//
// Normally sealing happens automatically every SealEvery documents;
// the endpoint exists for checkpointing (sealed documents survive a
// crash, memtable documents do not) and for tests.
func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.live.Seal(); err != nil {
		writeLiveError(w, err)
		return
	}
	st := s.live.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"segments":   st.Segments,
		"seals":      st.Seals,
		"generation": st.Generation,
	})
}

// handleCompact synchronously folds all sealed segments into one,
// purging tombstoned documents:
//
//	POST /compact
//
// Queries keep answering from the pre-compaction view until the swap;
// only the caller waits. Background compactions triggered by CompactAt
// use the same code path.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.live.Compact(r.Context()); err != nil {
		writeLiveError(w, err)
		return
	}
	st := s.live.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"segments":    st.Segments,
		"compactions": st.Compactions,
		"purged":      st.Purged,
		"generation":  st.Generation,
	})
}

// writeLiveError maps segment-manager failures to HTTP statuses.
func writeLiveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, segment.ErrUnknownDoc):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, store.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, store.ErrCorruptIndex):
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		writeQueryError(w, err)
	}
}
