package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fastinvert/internal/segment"
	"fastinvert/internal/telemetry"
)

// TestServerRequestTracing drives a live server with tracing fully on
// (sample everything, treat everything as slow) and checks the whole
// observability surface: the trace stream validates, a /search trace
// covers the five query stages, /debug/trace serves span trees,
// /debug/slowlog carries stage breakdowns, and background seal and
// compaction operations land in the same trace stream.
func TestServerRequestTracing(t *testing.T) {
	dir := t.TempDir()
	m, err := segment.Open(filepath.Join(dir, "seg"), segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	tracePath := filepath.Join(dir, "req.jsonl")
	tw, err := telemetry.CreateReqTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewLive(m, Config{
		SampleEvery: 1,
		SlowQuery:   -1,
		ReqTraces:   tw,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	for _, text := range []string{
		"alpha beta gamma",
		"alpha delta",
		"beta gamma epsilon",
	} {
		post(t, ts, "/ingest", text, http.StatusOK)
	}
	post(t, ts, "/delete?doc=1", "", http.StatusOK)
	post(t, ts, "/seal", "", http.StatusOK)
	post(t, ts, "/compact", "", http.StatusOK)

	// Sealed-segment search: the cache miss fans out to the segment
	// (dict, pread, decode under a merge span) plus the memtable.
	res := getJSON(t, ts, "/search?q=alpha+beta&mode=and", http.StatusOK)
	if int(res["count"].(float64)) != 1 {
		t.Fatalf("and(alpha beta) = %v, want 1 doc", res)
	}
	getJSON(t, ts, "/search?q=gamma&mode=topk&k=3", http.StatusOK)
	getJSON(t, ts, "/postings?term=beta", http.StatusOK)

	// /debug/trace with no id lists retained traces; every request above
	// was sampled, and the seal and compaction ops joined the ring.
	dump := getJSON(t, ts, "/debug/trace", http.StatusOK)
	list := dump["traces"].([]any)
	endpoints := map[string]bool{}
	var searchID string
	for _, v := range list {
		rec := v.(map[string]any)
		endpoints[rec["endpoint"].(string)] = true
		if rec["endpoint"] == "search" && searchID == "" {
			searchID = rec["id"].(string)
		}
	}
	for _, want := range []string{"ingest", "seal", "compact", "search", "postings"} {
		if !endpoints[want] {
			t.Errorf("no retained trace for endpoint %q (got %v)", want, endpoints)
		}
	}
	if searchID == "" {
		t.Fatal("no search trace retained")
	}

	// The full span dump for one search trace.
	full := getJSON(t, ts, "/debug/trace?id="+searchID, http.StatusOK)
	spans := full["spans"].([]any)
	if len(spans) < 6 {
		t.Fatalf("search trace has %d spans, want >= 6: %v", len(spans), full)
	}
	if root := spans[0].(map[string]any); root["stage"] != "handler" || root["par"].(float64) != -1 {
		t.Fatalf("span 0 = %v, want root handler", root)
	}
	getJSON(t, ts, "/debug/trace?id=nosuchtrace", http.StatusNotFound)

	// Slow log: with SlowQuery < 0 every request is logged, with stage
	// breakdowns because they were also sampled.
	slow := getJSON(t, ts, "/debug/slowlog", http.StatusOK)
	if slow["total"].(float64) == 0 {
		t.Fatalf("slowlog empty under log-everything threshold: %v", slow)
	}
	foundStages := false
	for _, v := range slow["entries"].([]any) {
		e := v.(map[string]any)
		if e["endpoint"] == "search" {
			if st, ok := e["stages"].(map[string]any); ok && len(st) >= 5 {
				foundStages = true
			}
		}
	}
	if !foundStages {
		t.Errorf("no search slowlog entry with >= 5 stages: %v", slow["entries"])
	}

	// The JSONL stream must pass the same validator cmd/tracecheck runs
	// in CI — including the span-sum invariant — and must show a search
	// covering at least five distinct query stages.
	srv.Close()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := telemetry.ValidateRequestTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxQueryStages < 5 {
		t.Errorf("max query stages = %d, want >= 5 (stage ms: %v)",
			stats.MaxQueryStages, stats.StageMs)
	}
	for _, ep := range []string{"search", "postings", "ingest", "seal", "compact"} {
		if stats.Endpoints[ep] == 0 {
			t.Errorf("trace stream has no %q traces: %v", ep, stats.Endpoints)
		}
	}
}

// TestServerMetricsLiveGolden is the schema-drift gate for live-mode
// /metrics: after traced traffic, the set of hetserve_* families the
// endpoint renders must match the golden list exactly — a missing
// family is a broken dashboard, an unexpected one is an unreviewed
// schema change.
func TestServerMetricsLiveGolden(t *testing.T) {
	m, err := segment.Open(t.TempDir(), segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := NewLive(m, Config{SampleEvery: 1, SlowQuery: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, "/ingest", "alpha beta", http.StatusOK)
	post(t, ts, "/seal", "", http.StatusOK)
	// Sampled searches populate the per-stage histograms (lazily
	// registered); the repeat warms the cache.
	getJSON(t, ts, "/search?q=alpha&mode=and", http.StatusOK)
	getJSON(t, ts, "/search?q=alpha&mode=and", http.StatusOK)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	got := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "# TYPE hetserve_") {
			continue
		}
		got[strings.Fields(line)[2]] = true
	}

	golden, err := os.ReadFile(filepath.Join("testdata", "metrics_live_families.golden"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, name := range strings.Fields(string(golden)) {
		want[name] = true
	}
	var missing, extra []string
	for name := range want {
		if !got[name] {
			missing = append(missing, name)
		}
	}
	for name := range got {
		if !want[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("/metrics missing families %v", missing)
	}
	if len(extra) > 0 {
		t.Errorf("/metrics renders families not in golden (update testdata/metrics_live_families.golden): %v", extra)
	}

	// Spot-check the series the families stand for actually carry data.
	text := string(body)
	for _, want := range []string{
		`hetserve_endpoint_seconds_bucket{endpoint="search",le="+Inf"} 2`,
		`hetserve_stage_seconds_bucket{endpoint="search",stage="cache",le="+Inf"} 2`,
		`hetserve_stage_seconds_bucket{endpoint="search",stage="pread"`,
		`hetserve_stage_seconds_bucket{endpoint="search",stage="decode"`,
		"hetserve_store_decode_", // at least one per-codec counter
		"hetserve_slow_queries_total 4",
		"hetserve_inflight_requests 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerShutdownDrain closes the server under 16-goroutine load
// (run with -race): every response must be a clean 200 or a 503 —
// never a hang or a torn write — and once Close returns no request is
// inside a handler.
func TestServerShutdownDrain(t *testing.T) {
	m, err := segment.Open(t.TempDir(), segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := NewLive(m, Config{Workers: 4, DrainTimeout: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, "/ingest", "alpha beta gamma", http.StatusOK)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := ts.Client().Get(ts.URL + "/search?q=alpha&mode=and")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusServiceUnavailable {
					errs <- &httpStatusError{resp.StatusCode}
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the load ramp up
	srv.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := srv.Inflight(); n != 0 {
		t.Errorf("inflight = %d after Close, want 0", n)
	}
	// The closing gate refuses new work outright.
	getJSON(t, ts, "/search?q=alpha&mode=and", http.StatusServiceUnavailable)
}

type httpStatusError struct{ status int }

func (e *httpStatusError) Error() string {
	return "unexpected status " + http.StatusText(e.status)
}

// TestTracingZeroAllocFastPath is the acceptance gate for unsampled
// requests: with sampling off, the full instrumentation wrapper and
// the context-aware cache read path must not allocate.
func TestTracingZeroAllocFastPath(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	s := newServer(cfg)
	defer s.pool.Close()
	h := s.instrument("bench", func(w http.ResponseWriter, r *http.Request) {})
	req := httptest.NewRequest(http.MethodGet, "/bench?q=x", nil)
	w := &nopResponseWriter{hdr: make(http.Header)}
	if n := testing.AllocsPerRun(500, func() { h(w, req) }); n != 0 {
		t.Errorf("unsampled instrumented request allocates %.1f per call, want 0", n)
	}

	cs := &cachedSource{cache: NewPostingsCache(2, 1<<20)}
	cs.cache.Put("term", listOfLen(16))
	ctx := context.Background()
	if n := testing.AllocsPerRun(500, func() {
		if _, err := cs.PostingsCtx(ctx, "term"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("untraced warm PostingsCtx allocates %.1f per call, want 0", n)
	}
}

type nopResponseWriter struct{ hdr http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.hdr }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}
