// Package serve is the query-serving layer: it makes an opened index
// fast and safe under concurrent traffic. A sharded, size-bounded LRU
// postings cache fronts store.IndexReader term access, a bounded
// worker pool executes queries under per-query deadlines, and Server
// exposes the whole thing over HTTP/JSON with expvar metrics.
//
// The construction pipeline (internal/core) optimizes for build
// throughput; this package optimizes for the other half of the
// paper's story — the index being read "by a large number of users"
// — where the bottleneck is concurrent in-memory postings access.
package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"fastinvert/internal/postings"
	"fastinvert/internal/telemetry"
)

// CacheStats is a point-in-time aggregate over all shards.
type CacheStats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	EvictedBytes uint64 `json:"evicted_bytes"`
	Entries      int    `json:"entries"`
	Bytes        int64  `json:"bytes"`
}

// HitRate is hits/(hits+misses), 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PostingsCache is a sharded, size-bounded LRU cache of decoded
// postings lists keyed by normalized term. Sharding by term hash
// spreads lock contention: a Get or Put touches exactly one shard
// mutex, so goroutines querying different terms rarely collide.
//
// Cached *postings.List values are shared between all readers and
// MUST be treated as immutable — the search layer already only reads
// them.
type PostingsCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recently used
	bytes   int64

	hits         atomic.Uint64
	misses       atomic.Uint64
	evictions    atomic.Uint64
	evictedBytes atomic.Uint64
}

type cacheEntry struct {
	term  string
	list  *postings.List
	size  int64
	added time.Time
}

// NewPostingsCache builds a cache with the given shard count (rounded
// up to a power of two, min 1) holding at most maxBytes of decoded
// postings across all shards. maxBytes <= 0 selects a 64 MiB default.
func NewPostingsCache(shards int, maxBytes int64) *PostingsCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &PostingsCache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.maxBytes = per
		s.entries = make(map[string]*list.Element)
	}
	return c
}

// Shards reports the shard count.
func (c *PostingsCache) Shards() int { return len(c.shards) }

// shard picks the owning shard by FNV-1a over the term.
func (c *PostingsCache) shard(term string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(term); i++ {
		h ^= uint32(term[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// Get returns the cached list for term, marking it most recently used.
func (c *PostingsCache) Get(term string) (*postings.List, bool) {
	s := c.shard(term)
	s.mu.Lock()
	el, ok := s.entries[term]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	l := el.Value.(*cacheEntry).list
	s.mu.Unlock()
	s.hits.Add(1)
	return l, true
}

// Put inserts (or refreshes) a term's list, evicting least recently
// used entries until the shard fits its byte budget. Lists larger than
// a whole shard are not cached at all — admitting one would flush the
// entire shard for a single entry. The budget is charged the decoded
// in-memory estimate (ListBytes).
func (c *PostingsCache) Put(term string, l *postings.List) {
	c.put(term, l, ListBytes(l))
}

// PutSized inserts like Put but charges size bytes against the shard
// budget instead of the decoded estimate. The serving layer passes the
// encoded (at-rest) size reported by the store, so under the codec
// registry a budget of N bytes admits as many lists as N bytes of
// index actually hold — denser codecs fit proportionally more terms.
// A non-positive size charges one byte, keeping even empty
// (negative-lookup) entries accountable to the LRU.
func (c *PostingsCache) PutSized(term string, l *postings.List, size int64) {
	if size < 1 {
		size = 1
	}
	c.put(term, l, size)
}

func (c *PostingsCache) put(term string, l *postings.List, size int64) {
	s := c.shard(term)
	if size > s.maxBytes {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if el, ok := s.entries[term]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += size - e.size
		e.list, e.size, e.added = l, size, now
		s.lru.MoveToFront(el)
	} else {
		s.entries[term] = s.lru.PushFront(&cacheEntry{term: term, list: l, size: size, added: now})
		s.bytes += size
	}
	evicted, evictedBytes := uint64(0), uint64(0)
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		e := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.entries, e.term)
		s.bytes -= e.size
		evicted++
		evictedBytes += uint64(e.size)
	}
	s.mu.Unlock()
	if evicted > 0 {
		s.evictions.Add(evicted)
		s.evictedBytes.Add(evictedBytes)
	}
}

// Hits sums the hit counters across shards without taking any shard
// lock — safe to call at metrics-scrape frequency.
func (c *PostingsCache) Hits() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].hits.Load()
	}
	return n
}

// Misses sums the miss counters across shards, lock-free.
func (c *PostingsCache) Misses() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].misses.Load()
	}
	return n
}

// Evictions sums the eviction counters across shards, lock-free.
func (c *PostingsCache) Evictions() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].evictions.Load()
	}
	return n
}

// EvictedBytes sums the bytes charged for evicted entries, lock-free.
func (c *PostingsCache) EvictedBytes() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].evictedBytes.Load()
	}
	return n
}

// Stats aggregates counters and occupancy across shards.
func (c *PostingsCache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		st.EvictedBytes += s.evictedBytes.Load()
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// AgeHist walks every resident entry and buckets its age in seconds
// against bounds, producing a point-in-time histogram snapshot for a
// func-backed /metrics series. Runs under the shard locks — scrape
// frequency, not query frequency.
func (c *PostingsCache) AgeHist(bounds []float64) telemetry.HistSnapshot {
	now := time.Now()
	return c.histOver(bounds, func(e *cacheEntry) float64 {
		return now.Sub(e.added).Seconds()
	})
}

// SizeHist buckets each resident entry's charged size in bytes against
// bounds, like AgeHist a scrape-time snapshot.
func (c *PostingsCache) SizeHist(bounds []float64) telemetry.HistSnapshot {
	return c.histOver(bounds, func(e *cacheEntry) float64 {
		return float64(e.size)
	})
}

func (c *PostingsCache) histOver(bounds []float64, val func(*cacheEntry) float64) telemetry.HistSnapshot {
	snap := telemetry.HistSnapshot{Counts: make([]uint64, len(bounds))}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			v := val(el.Value.(*cacheEntry))
			snap.Sum += v
			snap.Count++
			for b, ub := range bounds {
				if v <= ub {
					snap.Counts[b]++
					break
				}
			}
		}
		s.mu.Unlock()
	}
	return snap
}

// ListBytes estimates the resident size of a decoded postings list:
// 4 bytes per docID and per TF, 4 per position, plus slice headers.
func ListBytes(l *postings.List) int64 {
	const sliceHdr = 24
	size := int64(3*sliceHdr) + int64(len(l.DocIDs))*4 + int64(len(l.TFs))*4
	for _, ps := range l.Positions {
		size += sliceHdr + int64(len(ps))*4
	}
	return size
}
