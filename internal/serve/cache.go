// Package serve is the query-serving layer: it makes an opened index
// fast and safe under concurrent traffic. A sharded, size-bounded LRU
// postings cache fronts store.IndexReader term access, a bounded
// worker pool executes queries under per-query deadlines, and Server
// exposes the whole thing over HTTP/JSON with expvar metrics.
//
// The construction pipeline (internal/core) optimizes for build
// throughput; this package optimizes for the other half of the
// paper's story — the index being read "by a large number of users"
// — where the bottleneck is concurrent in-memory postings access.
package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fastinvert/internal/postings"
)

// CacheStats is a point-in-time aggregate over all shards.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// HitRate is hits/(hits+misses), 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PostingsCache is a sharded, size-bounded LRU cache of decoded
// postings lists keyed by normalized term. Sharding by term hash
// spreads lock contention: a Get or Put touches exactly one shard
// mutex, so goroutines querying different terms rarely collide.
//
// Cached *postings.List values are shared between all readers and
// MUST be treated as immutable — the search layer already only reads
// them.
type PostingsCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recently used
	bytes   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	term string
	list *postings.List
	size int64
}

// NewPostingsCache builds a cache with the given shard count (rounded
// up to a power of two, min 1) holding at most maxBytes of decoded
// postings across all shards. maxBytes <= 0 selects a 64 MiB default.
func NewPostingsCache(shards int, maxBytes int64) *PostingsCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &PostingsCache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.maxBytes = per
		s.entries = make(map[string]*list.Element)
	}
	return c
}

// Shards reports the shard count.
func (c *PostingsCache) Shards() int { return len(c.shards) }

// shard picks the owning shard by FNV-1a over the term.
func (c *PostingsCache) shard(term string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(term); i++ {
		h ^= uint32(term[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// Get returns the cached list for term, marking it most recently used.
func (c *PostingsCache) Get(term string) (*postings.List, bool) {
	s := c.shard(term)
	s.mu.Lock()
	el, ok := s.entries[term]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	l := el.Value.(*cacheEntry).list
	s.mu.Unlock()
	s.hits.Add(1)
	return l, true
}

// Put inserts (or refreshes) a term's list, evicting least recently
// used entries until the shard fits its byte budget. Lists larger than
// a whole shard are not cached at all — admitting one would flush the
// entire shard for a single entry. The budget is charged the decoded
// in-memory estimate (ListBytes).
func (c *PostingsCache) Put(term string, l *postings.List) {
	c.put(term, l, ListBytes(l))
}

// PutSized inserts like Put but charges size bytes against the shard
// budget instead of the decoded estimate. The serving layer passes the
// encoded (at-rest) size reported by the store, so under the codec
// registry a budget of N bytes admits as many lists as N bytes of
// index actually hold — denser codecs fit proportionally more terms.
// A non-positive size charges one byte, keeping even empty
// (negative-lookup) entries accountable to the LRU.
func (c *PostingsCache) PutSized(term string, l *postings.List, size int64) {
	if size < 1 {
		size = 1
	}
	c.put(term, l, size)
}

func (c *PostingsCache) put(term string, l *postings.List, size int64) {
	s := c.shard(term)
	if size > s.maxBytes {
		return
	}
	s.mu.Lock()
	if el, ok := s.entries[term]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += size - e.size
		e.list, e.size = l, size
		s.lru.MoveToFront(el)
	} else {
		s.entries[term] = s.lru.PushFront(&cacheEntry{term: term, list: l, size: size})
		s.bytes += size
	}
	evicted := uint64(0)
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		e := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.entries, e.term)
		s.bytes -= e.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		s.evictions.Add(evicted)
	}
}

// Hits sums the hit counters across shards without taking any shard
// lock — safe to call at metrics-scrape frequency.
func (c *PostingsCache) Hits() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].hits.Load()
	}
	return n
}

// Misses sums the miss counters across shards, lock-free.
func (c *PostingsCache) Misses() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].misses.Load()
	}
	return n
}

// Evictions sums the eviction counters across shards, lock-free.
func (c *PostingsCache) Evictions() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].evictions.Load()
	}
	return n
}

// Stats aggregates counters and occupancy across shards.
func (c *PostingsCache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// ListBytes estimates the resident size of a decoded postings list:
// 4 bytes per docID and per TF, 4 per position, plus slice headers.
func ListBytes(l *postings.List) int64 {
	const sliceHdr = 24
	size := int64(3*sliceHdr) + int64(len(l.DocIDs))*4 + int64(len(l.TFs))*4
	for _, ps := range l.Positions {
		size += sliceHdr + int64(len(ps))*4
	}
	return size
}
