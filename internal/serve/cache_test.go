package serve

import (
	"fmt"
	"sync"
	"testing"

	"fastinvert/internal/postings"
)

// listOfLen builds a postings list with n entries.
func listOfLen(n int) *postings.List {
	l := &postings.List{}
	for i := 0; i < n; i++ {
		l.DocIDs = append(l.DocIDs, uint32(i))
		l.TFs = append(l.TFs, 1)
	}
	return l
}

func TestCacheHitMiss(t *testing.T) {
	c := NewPostingsCache(4, 1<<20)
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on empty cache")
	}
	l := listOfLen(3)
	c.Put("term", l)
	got, ok := c.Get("term")
	if !ok || got != l {
		t.Fatalf("Get = %v, %v; want the cached list", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

// TestCacheEvictionBoundary fills one shard to exactly its budget,
// then crosses it by one entry and checks the LRU victim is the
// oldest untouched term.
func TestCacheEvictionBoundary(t *testing.T) {
	entrySize := ListBytes(listOfLen(10))
	// Single shard so the boundary is deterministic; room for exactly 4.
	c := NewPostingsCache(1, 4*entrySize)

	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("t%d", i), listOfLen(10))
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 4 {
		t.Fatalf("at boundary: %+v; want 4 entries, 0 evictions", st)
	}

	// Touch t0 so t1 becomes the LRU victim.
	c.Get("t0")
	c.Put("t4", listOfLen(10))
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("past boundary: %+v; want 4 entries, 1 eviction", st)
	}
	if _, ok := c.Get("t1"); ok {
		t.Fatal("t1 should have been the LRU victim")
	}
	for _, term := range []string{"t0", "t2", "t3", "t4"} {
		if _, ok := c.Get(term); !ok {
			t.Fatalf("%s should have survived", term)
		}
	}
	if st := c.Stats(); st.Bytes > 4*entrySize {
		t.Fatalf("bytes = %d exceeds budget %d", st.Bytes, 4*entrySize)
	}
}

func TestCacheRefreshSameTerm(t *testing.T) {
	c := NewPostingsCache(1, 1<<20)
	c.Put("t", listOfLen(5))
	c.Put("t", listOfLen(50))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.Bytes != ListBytes(listOfLen(50)) {
		t.Fatalf("bytes = %d, want size of refreshed list", st.Bytes)
	}
}

// TestPutSizedBudgetBoundary exercises the encoded-size accounting the
// serving layer uses under the codec registry: the budget is charged
// exactly the size passed in — not the decoded estimate — so the
// boundary sits wherever the encoded bytes say it does.
func TestPutSizedBudgetBoundary(t *testing.T) {
	c := NewPostingsCache(1, 100)

	// Three lists whose decoded estimates are identical but whose
	// encoded charges sum to exactly the budget: all must be resident.
	c.PutSized("a", listOfLen(10), 40)
	c.PutSized("b", listOfLen(10), 40)
	c.PutSized("c", listOfLen(10), 20)
	if st := c.Stats(); st.Entries != 3 || st.Bytes != 100 || st.Evictions != 0 {
		t.Fatalf("at boundary: %+v; want 3 entries, 100 bytes, 0 evictions", st)
	}

	// One more byte crosses the boundary; "a" is the LRU victim.
	c.PutSized("d", listOfLen(10), 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted at budget+1")
	}
	if st := c.Stats(); st.Entries != 3 || st.Bytes != 61 {
		t.Fatalf("past boundary: %+v; want 3 entries, 61 bytes", st)
	}

	// An encoded size larger than the whole shard is never admitted,
	// however small the decoded list.
	c.PutSized("huge", listOfLen(1), 101)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("size > shard budget must not be admitted")
	}

	// Non-positive sizes charge one byte so empty lists stay evictable.
	before := c.Stats().Bytes
	c.PutSized("empty", &postings.List{}, 0)
	if got := c.Stats().Bytes - before; got != 1 {
		t.Fatalf("zero-size entry charged %d bytes, want 1", got)
	}

	// Refreshing a term with a different encoded size re-charges the
	// delta: b(40) + c(20) + empty(1) + d(1→30) = 91.
	c.PutSized("d", listOfLen(10), 30)
	if st := c.Stats(); st.Bytes != 91 {
		t.Fatalf("refresh accounting: %+v; want 91 bytes", st)
	}
}

func TestCacheRejectsOversizeList(t *testing.T) {
	c := NewPostingsCache(1, 128)
	c.Put("huge", listOfLen(1000))
	if st := c.Stats(); st.Entries != 0 || st.Evictions != 0 {
		t.Fatalf("oversize list must not be admitted: %+v", st)
	}
}

// TestCacheConcurrent hammers all shards from 16 goroutines under a
// tight budget so evictions race with lookups (run with -race).
func TestCacheConcurrent(t *testing.T) {
	c := NewPostingsCache(8, 64*ListBytes(listOfLen(10)))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				term := fmt.Sprintf("t%d", (g*31+i)%128)
				if _, ok := c.Get(term); !ok {
					c.Put(term, listOfLen(10))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 16*500 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 16*500)
	}
	if st.Entries == 0 {
		t.Fatal("cache ended empty")
	}
}

// TestCacheConcurrentBudgetBoundary races Put/Get/Stats right at the
// per-shard byte budget, where every insert can evict: list sizes vary
// so entries straddle the boundary, one list is bigger than a whole
// shard and must never be admitted, and some goroutines refresh the
// same hot terms with different sizes. Afterwards every shard must
// satisfy its structural invariants exactly (run with -race).
func TestCacheConcurrentBudgetBoundary(t *testing.T) {
	const shards = 4
	// Budget: about 6 ten-entry lists per shard, so the working set of
	// 64 terms cannot fit and evictions run continuously.
	c := NewPostingsCache(shards, shards*6*ListBytes(listOfLen(10)))
	perShard := c.shards[0].maxBytes
	oversize := listOfLen(int(perShard)) // > perShard bytes by construction

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				switch term := fmt.Sprintf("t%d", (g*17+i)%64); i % 5 {
				case 0:
					c.Put(term, listOfLen(1+i%20)) // straddles the boundary
				case 1:
					c.Put("hot", listOfLen(1+i%30)) // same-term refresh, varying size
				case 2:
					c.Put("giant", oversize) // must be rejected, never evict others
				case 3:
					c.Get(term)
					c.Get("giant")
				case 4:
					c.Stats() // walks every shard while others mutate
				}
			}
		}(g)
	}
	wg.Wait()

	if _, ok := c.Get("giant"); ok {
		t.Error("oversize list was admitted")
	}
	var wantBytes int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if s.bytes > s.maxBytes {
			t.Errorf("shard %d over budget: %d > %d", i, s.bytes, s.maxBytes)
		}
		if len(s.entries) != s.lru.Len() {
			t.Errorf("shard %d map/LRU out of sync: %d entries, %d LRU nodes",
				i, len(s.entries), s.lru.Len())
		}
		var sum int64
		for el := s.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			sum += e.size
			if s.entries[e.term] != el {
				t.Errorf("shard %d: LRU node for %q not indexed by the map", i, e.term)
			}
		}
		if sum != s.bytes {
			t.Errorf("shard %d byte accounting drifted: tracked %d, actual %d", i, s.bytes, sum)
		}
		wantBytes += s.bytes
		s.mu.Unlock()
	}
	if st := c.Stats(); st.Bytes != wantBytes {
		t.Errorf("Stats.Bytes = %d, want %d", st.Bytes, wantBytes)
	}
}
