package serve

import (
	"context"
	"net/http"
	rpprof "runtime/pprof"
	"strconv"
	"sync"
	"time"

	"fastinvert/internal/telemetry"
)

// statusWriter captures the response status the wrapped handler wrote
// so the instrumentation after it can label the trace and slow-log
// entry. Pooled: the unsampled fast path must not allocate per request.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// stageBuckets spans 10µs..40s in powers of four — wide enough for a
// cache probe and a cold compaction-sized merge on the same axis.
var stageBuckets = telemetry.ExpBuckets(1e-5, 4, 12)

type stageKey struct{ endpoint, stage string }

// stageHist lazily registers the per-(endpoint,stage) latency
// histogram. Only sampled requests reach it, so the map lock is off
// the unsampled fast path entirely.
func (s *Server) stageHist(endpoint, stage string) *telemetry.Histogram {
	k := stageKey{endpoint, stage}
	s.stageMu.Lock()
	h := s.stageHists[k]
	if h == nil {
		h = s.cfg.Registry.Histogram("hetserve_stage_seconds",
			"Per-stage latency breakdown of sampled requests.",
			stageBuckets,
			telemetry.L("endpoint", endpoint), telemetry.L("stage", stage))
		s.stageHists[k] = h
	}
	s.stageMu.Unlock()
	return h
}

// instrument wraps an endpoint handler with the serving observability
// layer: in-flight accounting (shutdown drains on it), the closing
// gate, head sampling into a request trace carried on the context,
// pprof goroutine labels, the per-endpoint latency histogram, and —
// for sampled or slow requests only — trace retention, per-stage
// histograms and the slow-query log. The unsampled path touches two
// atomics, a pooled status writer and one histogram observe: zero
// allocations.
//
// The per-endpoint histogram is resolved once, at registration, so a
// request never looks anything up in the registry.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.cfg.Registry.Histogram("hetserve_endpoint_seconds",
		"Request latency by endpoint.", telemetry.DefBuckets,
		telemetry.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.closing.Load() {
			httpError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}

		var tr *telemetry.RequestTrace
		r2 := r
		if s.sampler.Sample() {
			tr = telemetry.NewRequestTrace(endpoint)
			tr.SetQuery(r.URL.RawQuery)
			r2 = r.WithContext(telemetry.ContextWithTrace(r.Context(), tr))
		}

		sw := swPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, 0
		start := time.Now()
		if s.cfg.EnablePprof {
			// Label query goroutines so CPU profiles split by endpoint and
			// index generation. Allocates; gated behind the pprof flag.
			labels := rpprof.Labels("endpoint", endpoint, "generation", s.genLabel())
			rpprof.Do(r2.Context(), labels, func(ctx context.Context) {
				h(sw, r2.WithContext(ctx))
			})
		} else {
			h(sw, r2)
		}
		took := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sw.ResponseWriter = nil
		swPool.Put(sw)

		hist.Observe(took.Seconds())
		slow := s.sampler.Slow(took)
		if tr == nil && !slow {
			return
		}
		errMsg := ""
		if status >= 400 {
			errMsg = http.StatusText(status)
		}
		if tr != nil {
			if slow {
				tr.MarkSlow()
			}
			tr.Finish(status, errMsg)
			for stage, ms := range tr.StageDurations() {
				s.stageHist(endpoint, stage).Observe(ms / 1e3)
			}
			s.traces.Add(tr)
			s.cfg.ReqTraces.Write(tr) // nil-safe; errors are sticky until Close

		}
		if slow {
			s.slowQueries.Add(1)
			e := telemetry.SlowLogEntry{
				Endpoint:    endpoint,
				Query:       r.URL.RawQuery,
				StartUnixMs: start.UnixMilli(),
				DurMs:       float64(took) / float64(time.Millisecond),
				Status:      status,
				Err:         errMsg,
			}
			if tr != nil {
				e.ID = tr.ID()
				e.Stages = tr.StageDurations()
			}
			s.slowlog.Add(e)
		}
	}
}

// genLabel renders the current index generation for pprof labels
// ("static" when serving an immutable index).
func (s *Server) genLabel() string {
	if s.live == nil {
		return "static"
	}
	return strconv.FormatUint(s.live.Gen(), 10)
}

// slowlogResponse is the /debug/slowlog JSON shape.
type slowlogResponse struct {
	ThresholdMs float64                  `json:"threshold_ms"`
	Total       uint64                   `json:"total"`
	Entries     []telemetry.SlowLogEntry `json:"entries"`
}

// handleSlowlog dumps the ring-buffered slow-query log, newest first:
//
//	GET /debug/slowlog
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, slowlogResponse{
		ThresholdMs: float64(s.sampler.SlowThreshold()) / float64(time.Millisecond),
		Total:       s.slowlog.Total(),
		Entries:     s.slowlog.Entries(),
	})
}

// traceSummary is one row of the /debug/trace listing.
type traceSummary struct {
	ID       string  `json:"id"`
	Endpoint string  `json:"endpoint"`
	Query    string  `json:"query,omitempty"`
	DurMs    float64 `json:"dur_ms"`
	Status   int     `json:"status"`
	Slow     bool    `json:"slow,omitempty"`
	Spans    int     `json:"spans"`
}

// handleTraceDump serves retained request traces:
//
//	GET /debug/trace        — summaries of every retained trace
//	GET /debug/trace?id=X   — the full span tree of one trace
func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		all := s.traces.Traces()
		out := make([]traceSummary, 0, len(all))
		for _, t := range all {
			rec := t.Snapshot()
			out = append(out, traceSummary{
				ID:       rec.ID,
				Endpoint: rec.Endpoint,
				Query:    rec.Query,
				DurMs:    rec.DurMs,
				Status:   rec.Status,
				Slow:     rec.Slow,
				Spans:    len(rec.Spans),
			})
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": out})
		return
	}
	t := s.traces.Get(id)
	if t == nil {
		httpError(w, http.StatusNotFound, "trace "+id+" not retained")
		return
	}
	writeJSON(w, http.StatusOK, t.Snapshot())
}
