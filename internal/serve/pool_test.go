package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(context.Context) error {
				ran.Add(1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 64 {
		t.Fatalf("ran %d jobs, want 64", ran.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Do(context.Background(), func(context.Context) error {
				n := inflight.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inflight.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestPoolContextCancellation(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	// Occupy the only worker.
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started

	// A queued submitter must fail with its context's error, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, func(context.Context) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want DeadlineExceeded", err)
	}

	// A running job's fn sees cancellation through its own ctx.
	close(release)
	ctx2, cancel2 := context.WithCancel(context.Background())
	err = p.Do(ctx2, func(ctx context.Context) error {
		cancel2()
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want Canceled", err)
	}
}

func TestPoolGracefulClose(t *testing.T) {
	p := NewPool(2)
	finished := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error {
		close(started)
		time.Sleep(10 * time.Millisecond)
		close(finished)
		return nil
	})
	<-started
	p.Close() // must wait for the in-flight job
	select {
	case <-finished:
	default:
		t.Fatal("Close returned before in-flight job finished")
	}
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}
