package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed reports a submission to a pool after Close.
var ErrPoolClosed = errors.New("serve: worker pool is closed")

// Pool is a bounded worker pool: at most `workers` queries execute at
// once, and the job channel is unbuffered, so excess submitters wait
// in Do until a worker frees up or their context expires — natural
// backpressure instead of an unbounded queue.
type Pool struct {
	jobs chan poolJob
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	workers   int
	inFlight  atomic.Int64
	completed atomic.Int64
}

type poolJob struct {
	ctx  context.Context
	fn   func(context.Context) error
	done chan error
}

// NewPool starts a pool with the given worker count (min 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		jobs:    make(chan poolJob),
		quit:    make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case j := <-p.jobs:
			if err := j.ctx.Err(); err != nil {
				j.done <- err
				continue
			}
			p.inFlight.Add(1)
			err := j.fn(j.ctx)
			p.inFlight.Add(-1)
			p.completed.Add(1)
			j.done <- err
		case <-p.quit:
			return
		}
	}
}

// Do runs fn on a pool worker and waits for it, returning fn's error.
// If ctx expires before a worker picks the job up — or while fn runs —
// Do returns ctx.Err() immediately (fn itself is expected to observe
// the same ctx and abort). After Close, Do returns ErrPoolClosed.
func (p *Pool) Do(ctx context.Context, fn func(context.Context) error) error {
	j := poolJob{ctx: ctx, fn: fn, done: make(chan error, 1)}
	select {
	case p.jobs <- j:
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return ErrPoolClosed
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts the pool down gracefully: in-flight jobs run to
// completion, waiting submitters fail with ErrPoolClosed, and Close
// returns once every worker has exited. Idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}

// PoolStats is a point-in-time view of the pool's load, published at
// /debug/vars and /metrics.
type PoolStats struct {
	Workers   int   `json:"workers"`
	InFlight  int64 `json:"in_flight"`
	Completed int64 `json:"completed"`
}

// Stats reads the pool counters (lock-free).
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		InFlight:  p.inFlight.Load(),
		Completed: p.completed.Load(),
	}
}
