package serve

import (
	"sort"
	"sync"
	"time"

	"fastinvert/internal/telemetry"
)

// latencyWindow is how many recent query latencies feed the
// percentile estimates.
const latencyWindow = 4096

// Metrics tracks the server's query counters and latency distribution.
// The counters and the latency histogram live in a telemetry.Registry
// (so /metrics exposes them in Prometheus format); a sliding window of
// raw latencies is kept alongside for the exact percentiles served at
// /debug/vars. All methods are safe for concurrent use; Observe is a
// handful of atomic adds plus one short critical section on the ring —
// no allocations on the query hot path.
type Metrics struct {
	start   time.Time
	queries *telemetry.Counter
	errors  *telemetry.Counter
	latency *telemetry.Histogram

	mu   sync.Mutex
	ring [latencyWindow]float64 // milliseconds
	next int
	n    int // filled entries, <= latencyWindow
}

// NewMetrics starts the uptime clock on a private registry (tests,
// embedded use). Servers share their registry via NewMetricsOn.
func NewMetrics() *Metrics { return NewMetricsOn(telemetry.NewRegistry()) }

// NewMetricsOn registers the query metric families on reg and starts
// the uptime clock.
func NewMetricsOn(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		start: time.Now(),
		queries: reg.Counter("hetserve_queries_total",
			"Queries executed (all endpoints, including failed)."),
		errors: reg.Counter("hetserve_query_errors_total",
			"Queries that returned an error (timeouts, bad input, corrupt index)."),
		latency: reg.Histogram("hetserve_query_seconds",
			"Query latency distribution in seconds.", telemetry.DefBuckets),
	}
	reg.GaugeFunc("hetserve_uptime_seconds",
		"Seconds since the server's metrics were initialized.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// Observe records one completed query.
func (m *Metrics) Observe(d time.Duration, err error) {
	m.queries.Inc()
	if err != nil {
		m.errors.Inc()
	}
	m.latency.Observe(d.Seconds())
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.ring[m.next] = ms
	m.next = (m.next + 1) % latencyWindow
	if m.n < latencyWindow {
		m.n++
	}
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape published at /debug/vars.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Queries   int64   `json:"queries"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// Snapshot computes percentiles over the latency window and overall
// QPS since start.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	lat := append([]float64(nil), m.ring[:m.n]...)
	m.mu.Unlock()
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	up := time.Since(m.start).Seconds()
	q := int64(m.queries.Value())
	qps := 0.0
	if up > 0 {
		qps = float64(q) / up
	}
	return MetricsSnapshot{
		UptimeSec: up,
		Queries:   q,
		Errors:    int64(m.errors.Value()),
		QPS:       qps,
		P50Ms:     pct(0.50),
		P90Ms:     pct(0.90),
		P99Ms:     pct(0.99),
	}
}
