package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent query latencies feed the
// percentile estimates.
const latencyWindow = 4096

// Metrics tracks the server's query counters and a sliding window of
// latencies for percentile reporting. All methods are safe for
// concurrent use; Observe is two atomic adds plus one short
// critical section on the ring.
type Metrics struct {
	start   time.Time
	queries atomic.Int64
	errors  atomic.Int64

	mu   sync.Mutex
	ring [latencyWindow]float64 // milliseconds
	next int
	n    int // filled entries, <= latencyWindow
}

// NewMetrics starts the uptime clock.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// Observe records one completed query.
func (m *Metrics) Observe(d time.Duration, err error) {
	m.queries.Add(1)
	if err != nil {
		m.errors.Add(1)
	}
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.ring[m.next] = ms
	m.next = (m.next + 1) % latencyWindow
	if m.n < latencyWindow {
		m.n++
	}
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape published at /debug/vars.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Queries   int64   `json:"queries"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// Snapshot computes percentiles over the latency window and overall
// QPS since start.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	lat := append([]float64(nil), m.ring[:m.n]...)
	m.mu.Unlock()
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	up := time.Since(m.start).Seconds()
	q := m.queries.Load()
	qps := 0.0
	if up > 0 {
		qps = float64(q) / up
	}
	return MetricsSnapshot{
		UptimeSec: up,
		Queries:   q,
		Errors:    m.errors.Load(),
		QPS:       qps,
		P50Ms:     pct(0.50),
		P90Ms:     pct(0.90),
		P99Ms:     pct(0.99),
	}
}
