package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/search"
	"fastinvert/internal/segment"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// CacheBytes bounds the decoded-postings cache (default 64 MiB).
	CacheBytes int64
	// CacheShards is the lock-striping factor (default 16, rounded up
	// to a power of two).
	CacheShards int
	// Workers bounds concurrent query execution (default GOMAXPROCS).
	Workers int
	// QueryTimeout is the per-query deadline applied on top of the
	// request context (default 2s).
	QueryTimeout time.Duration
	// MaxK caps the k parameter of ranked queries (default 1000).
	MaxK int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ and labels
	// query goroutines with pprof labels (endpoint, generation).
	EnablePprof bool
	// SampleEvery head-samples one request in N into a full request
	// trace (span tree, per-stage histograms, /debug/trace retention).
	// 0 disables request tracing; 1 traces everything.
	SampleEvery int
	// SlowQuery is the tail-sampling latency threshold: requests at or
	// above it enter the slow-query log (and, when also head-sampled,
	// their traces are pinned against ring eviction). 0 selects 250ms;
	// negative treats every request as slow — useful for trace-capture
	// harnesses.
	SlowQuery time.Duration
	// TraceBufferSize bounds the in-memory trace retention ring served
	// by /debug/trace (default 256).
	TraceBufferSize int
	// SlowLogSize bounds the slow-query ring served by /debug/slowlog
	// (default 128).
	SlowLogSize int
	// DrainTimeout bounds how long Close waits for in-flight requests
	// to finish before closing the worker pool (default 5s).
	DrainTimeout time.Duration
	// ReqTraces, when non-nil, additionally streams every sampled trace
	// as a JSON line — the format cmd/tracecheck -requests validates.
	// The writer's lifetime belongs to the caller.
	ReqTraces *telemetry.ReqTraceWriter
	// Registry receives the server's metric families and is served at
	// /metrics in Prometheus text format. nil allocates a private one;
	// pass a shared registry to co-publish with other subsystems. Cache
	// and pool series are func-backed — they read the existing atomic
	// counters at scrape time, adding nothing to the query hot path.
	Registry *telemetry.Registry
}

func (c *Config) fill() {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 2 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 250 * time.Millisecond
	}
	if c.TraceBufferSize <= 0 {
		c.TraceBufferSize = 256
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
}

// cachedSource fronts an IndexReader with the sharded postings cache;
// it is the search.PostingsSource the server's Searcher reads through,
// so every query path — /search and /postings alike — shares one
// cache. The cache budget is charged each list's encoded (at-rest)
// size, so N MiB of budget admits what N MiB of index holds regardless
// of which registered codec encoded each list.
type cachedSource struct {
	idx   *store.IndexReader
	cache *PostingsCache
}

func (cs *cachedSource) Postings(term string) (*postings.List, error) {
	if l, ok := cs.cache.Get(term); ok {
		return l, nil
	}
	l, enc, err := cs.idx.PostingsEncoded(term)
	if err != nil {
		return nil, err
	}
	cs.cache.PutSized(term, l, enc)
	return l, nil
}

// PostingsCtx is Postings under a traced context: the cache probe gets
// a cache span noting hit/miss, and a miss flows through the reader's
// context-aware path so its dict/pread/decode spans land in the same
// trace. An untraced context takes the exact allocation-free path
// Postings does.
func (cs *cachedSource) PostingsCtx(ctx context.Context, term string) (*postings.List, error) {
	tr := telemetry.TraceFrom(ctx)
	if tr == nil {
		return cs.Postings(term)
	}
	csp := tr.StartSpan(telemetry.ReqStageCache)
	if l, ok := cs.cache.Get(term); ok {
		csp.SetNote("hit")
		csp.End()
		return l, nil
	}
	csp.SetNote("miss")
	csp.End()
	l, enc, err := cs.idx.PostingsEncodedCtx(ctx, term)
	if err != nil {
		return nil, err
	}
	cs.cache.PutSized(term, l, enc)
	return l, nil
}

// BlockPostingsCtx serves the block evaluators: a term already
// resident in the decoded-postings cache is wrapped as one exact
// pseudo-block (same scores, zero I/O); anything else flows to the
// reader's skip-table path, which deliberately bypasses the cache —
// the whole point of block evaluation is not materializing long lists.
func (cs *cachedSource) BlockPostingsCtx(ctx context.Context, term string) (*store.TermBlocks, error) {
	if l, ok := cs.cache.Get(term); ok {
		if bl := store.BlockListFromList(l); bl != nil {
			return &store.TermBlocks{Lists: []*store.BlockList{bl}}, nil
		}
		return &store.TermBlocks{}, nil
	}
	return cs.idx.BlockPostingsCtx(ctx, term)
}

func (cs *cachedSource) DocLens() []uint32             { return cs.idx.DocLens() }
func (cs *cachedSource) Runs() []store.RunMeta         { return cs.idx.Runs() }
func (cs *cachedSource) Dictionary() []store.DictEntry { return cs.idx.Dictionary() }

// liveSource reads through the cache against a segment.Manager. Cache
// keys carry the manager's generation, which advances on every add,
// delete, seal and compaction: a cached list can therefore never serve
// a state it was not computed from, and queries never block on the
// swap itself — a superseded generation simply stops getting hits and
// ages out of the LRU. The size check after the fetch keeps a list
// computed under a newer generation from being filed under an older
// key.
type liveSource struct {
	mgr   *segment.Manager
	cache *PostingsCache
}

func (ls *liveSource) Postings(term string) (*postings.List, error) {
	gen := ls.mgr.Gen()
	key := term + "#" + strconv.FormatUint(gen, 10)
	if l, ok := ls.cache.Get(key); ok {
		return l, nil
	}
	l, enc, err := ls.mgr.PostingsSized(term)
	if err != nil {
		return nil, err
	}
	if ls.mgr.Gen() == gen {
		ls.cache.PutSized(key, l, enc)
	}
	return l, nil
}

// PostingsCtx mirrors cachedSource.PostingsCtx for the live index: a
// cache span around the generation-keyed probe, then the manager's
// traced fan-out (memtable + sealed segments) on a miss.
func (ls *liveSource) PostingsCtx(ctx context.Context, term string) (*postings.List, error) {
	tr := telemetry.TraceFrom(ctx)
	if tr == nil {
		return ls.Postings(term)
	}
	gen := ls.mgr.Gen()
	tr.SetGeneration(gen)
	key := term + "#" + strconv.FormatUint(gen, 10)
	csp := tr.StartSpan(telemetry.ReqStageCache)
	if l, ok := ls.cache.Get(key); ok {
		csp.SetNote("hit")
		csp.End()
		return l, nil
	}
	csp.SetNote("miss")
	csp.End()
	l, enc, err := ls.mgr.PostingsSizedCtx(ctx, term)
	if err != nil {
		return nil, err
	}
	if ls.mgr.Gen() == gen {
		ls.cache.PutSized(key, l, enc)
	}
	return l, nil
}

// BlockPostingsCtx serves the block evaluators from the live index: a
// generation-keyed cache hit becomes one exact pseudo-block, otherwise
// the manager assembles the per-segment skip tables (or reports block
// evaluation unavailable while tombstones are live).
func (ls *liveSource) BlockPostingsCtx(ctx context.Context, term string) (*store.TermBlocks, error) {
	gen := ls.mgr.Gen()
	key := term + "#" + strconv.FormatUint(gen, 10)
	if l, ok := ls.cache.Get(key); ok {
		if bl := store.BlockListFromList(l); bl != nil {
			return &store.TermBlocks{Lists: []*store.BlockList{bl}}, nil
		}
		return &store.TermBlocks{}, nil
	}
	return ls.mgr.BlockPostingsCtx(ctx, term)
}

func (ls *liveSource) DocLens() []uint32             { return ls.mgr.DocLens() }
func (ls *liveSource) Runs() []store.RunMeta         { return ls.mgr.Runs() }
func (ls *liveSource) Dictionary() []store.DictEntry { return ls.mgr.Dictionary() }
func (ls *liveSource) LiveDocs() int64               { return ls.mgr.LiveDocs() }

// Server serves Boolean, phrase and ranked queries over one opened
// index. Construct with New, mount Handler on an http.Server, and
// Close on shutdown (the index itself stays open; its lifetime belongs
// to the caller).
type Server struct {
	idx      *store.IndexReader // nil in live mode
	live     *segment.Manager   // nil in static mode
	cache    *PostingsCache
	searcher *search.Searcher
	pool     *Pool
	metrics  *Metrics
	cfg      Config
	mux      *http.ServeMux

	// Observability layer (see trace.go): head/tail sampler, retained
	// traces, the slow-query ring, and lazily-registered per-stage
	// histograms. inflight/closing implement drain-on-Close.
	sampler     *telemetry.Sampler
	traces      *telemetry.TraceBuffer
	slowlog     *telemetry.SlowLog
	slowQueries atomic.Uint64
	inflight    atomic.Int64
	closing     atomic.Bool
	stageMu     sync.Mutex
	stageHists  map[stageKey]*telemetry.Histogram
}

// newServer builds the parts common to both modes.
func newServer(cfg Config) *Server {
	cache := NewPostingsCache(cfg.CacheShards, cfg.CacheBytes)
	return &Server{
		cache:      cache,
		pool:       NewPool(cfg.Workers),
		metrics:    NewMetricsOn(cfg.Registry),
		cfg:        cfg,
		mux:        http.NewServeMux(),
		sampler:    telemetry.NewSampler(cfg.SampleEvery, cfg.SlowQuery),
		traces:     telemetry.NewTraceBuffer(cfg.TraceBufferSize),
		slowlog:    telemetry.NewSlowLog(cfg.SlowLogSize),
		stageHists: make(map[stageKey]*telemetry.Histogram),
	}
}

// New wires the cache, worker pool and HTTP routes around an opened
// index.
func New(idx *store.IndexReader, cfg Config) *Server {
	cfg.fill()
	s := newServer(cfg)
	s.idx = idx
	s.searcher = search.NewWithSource(&cachedSource{idx: idx, cache: s.cache})
	s.registerCommonMetrics(cfg.Registry)
	s.registerStaticMetrics(cfg.Registry)
	s.registerRoutes()
	return s
}

// NewLive wires the same cache, pool and HTTP surface around a
// segment.Manager, adding the ingestion endpoints: documents stream in
// over /ingest while /search and /postings answer from the live
// segment views. The manager's lifetime belongs to the caller, exactly
// like the static reader's.
func NewLive(mgr *segment.Manager, cfg Config) *Server {
	cfg.fill()
	s := newServer(cfg)
	s.live = mgr
	s.searcher = search.NewWithSource(&liveSource{mgr: mgr, cache: s.cache})
	s.registerCommonMetrics(cfg.Registry)
	s.registerLiveMetrics(cfg.Registry)
	s.registerRoutes()
	s.mux.HandleFunc("/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("/delete", s.instrument("delete", s.handleDelete))
	s.mux.HandleFunc("/seal", s.instrument("seal", s.handleSeal))
	s.mux.HandleFunc("/compact", s.instrument("compact", s.handleCompact))
	if s.sampler.Enabled() {
		// Background seals and compactions report their own operation
		// traces through the same retention ring and trace stream, so a
		// slow query can be correlated with the maintenance work that
		// ran beside it.
		mgr.SetTraceSink(func(t *telemetry.RequestTrace) {
			s.traces.Add(t)
			s.cfg.ReqTraces.Write(t)
		})
	}
	return s
}

func (s *Server) registerRoutes() {
	s.mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	s.mux.HandleFunc("/postings", s.instrument("postings", s.handlePostings))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	s.mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	s.mux.HandleFunc("/debug/trace", s.handleTraceDump)
	s.mux.Handle("/metrics", s.cfg.Registry.Handler())
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// registerCommonMetrics publishes the cache and pool series shared by
// both modes as func-backed metrics: values are read from the
// subsystems' own atomic counters only when /metrics is scraped.
func (s *Server) registerCommonMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("hetserve_cache_hits_total",
		"Postings cache hits across all shards.",
		func() float64 { return float64(s.cache.Hits()) })
	reg.CounterFunc("hetserve_cache_misses_total",
		"Postings cache misses across all shards.",
		func() float64 { return float64(s.cache.Misses()) })
	reg.CounterFunc("hetserve_cache_evictions_total",
		"Postings cache LRU evictions across all shards.",
		func() float64 { return float64(s.cache.Evictions()) })
	reg.GaugeFunc("hetserve_cache_entries",
		"Cached postings lists currently resident.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("hetserve_cache_bytes",
		"Estimated bytes of decoded postings currently cached.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.Gauge("hetserve_pool_workers",
		"Size of the bounded query worker pool.").Set(float64(s.cfg.Workers))
	reg.GaugeFunc("hetserve_pool_in_flight",
		"Queries executing on pool workers right now.",
		func() float64 { return float64(s.pool.Stats().InFlight) })
	reg.CounterFunc("hetserve_pool_completed_total",
		"Queries completed by the worker pool.",
		func() float64 { return float64(s.pool.Stats().Completed) })
	reg.CounterFunc("hetserve_cache_evicted_bytes_total",
		"Bytes charged for entries evicted from the postings cache.",
		func() float64 { return float64(s.cache.EvictedBytes()) })
	// Resident-entry shape, walked under the shard locks only when
	// /metrics is scraped: how old and how large the cached lists are.
	ageBounds := telemetry.ExpBuckets(1, 4, 8)
	reg.HistogramFunc("hetserve_cache_entry_age_seconds",
		"Age distribution of resident postings-cache entries.",
		ageBounds, func() telemetry.HistSnapshot { return s.cache.AgeHist(ageBounds) })
	sizeBounds := telemetry.ExpBuckets(64, 4, 8)
	reg.HistogramFunc("hetserve_cache_entry_bytes",
		"Charged-size distribution of resident postings-cache entries.",
		sizeBounds, func() telemetry.HistSnapshot { return s.cache.SizeHist(sizeBounds) })
	// Block-max ranked-retrieval counters, read off the searcher's
	// atomics at scrape time: how many TopK calls the block evaluators
	// served versus fell back from, and how effective block skipping is.
	reg.CounterFunc("hetserve_rank_block_queries_total",
		"Ranked queries served by a block-max evaluator (MaxScore/BMW).",
		func() float64 { return float64(s.searcher.RankStats().BlockQueries) })
	reg.CounterFunc("hetserve_rank_fallback_queries_total",
		"Ranked queries that fell back to the exhaustive scorer.",
		func() float64 { return float64(s.searcher.RankStats().FallbackQueries) })
	reg.CounterFunc("hetserve_rank_blocks_decoded_total",
		"Postings blocks decoded by the block-max evaluators.",
		func() float64 { return float64(s.searcher.RankStats().BlocksDecoded) })
	reg.CounterFunc("hetserve_rank_blocks_skipped_total",
		"Postings blocks skipped via their impact upper bound.",
		func() float64 { return float64(s.searcher.RankStats().BlocksSkipped) })
	reg.GaugeFunc("hetserve_inflight_requests",
		"HTTP requests currently inside an instrumented handler.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.CounterFunc("hetserve_slow_queries_total",
		"Requests at or above the slow-query threshold.",
		func() float64 { return float64(s.slowQueries.Load()) })
}

// registerStaticMetrics publishes the static reader's index-shape and
// store read-path series.
func (s *Server) registerStaticMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("hetserve_index_terms",
		"Distinct terms in the served index.",
		func() float64 { return float64(s.idx.Terms()) })
	reg.GaugeFunc("hetserve_index_runs",
		"Run files in the served index.",
		func() float64 { return float64(len(s.idx.Runs())) })
	// Store read-path series: whether lookups hit the monolithic merged
	// file or fell back to per-run assembly, and the raw list I/O both
	// paths performed. These come from the reader's own atomic counters
	// (a tier below the term-level cache above).
	reg.GaugeFunc("hetserve_store_merged_active",
		"1 when term lookups are served from a validated merged.post, else 0.",
		func() float64 {
			if s.idx.MergedActive() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("hetserve_store_merged_hits_total",
		"Term lookups answered from the merged postings file.",
		func() float64 { return float64(s.idx.Stats().MergedHits) })
	reg.CounterFunc("hetserve_store_run_fallbacks_total",
		"Term lookups assembled from per-run partial lists.",
		func() float64 { return float64(s.idx.Stats().RunFallbacks) })
	reg.CounterFunc("hetserve_store_list_bytes_read_total",
		"Compressed postings bytes fetched from disk by the reader.",
		func() float64 { return float64(s.idx.Stats().ListBytesRead) })
	reg.GaugeFunc("hetserve_store_cache_bytes",
		"Decoded postings bytes resident in the reader's byte-budgeted LRU.",
		func() float64 { return float64(s.idx.Stats().CacheBytes) })
	// Per-codec decode counters: which registered postings codecs the
	// read path actually exercised. A self-tuned merged file shows a mix;
	// a legacy index counts only varbyte.
	for _, c := range encoding.Codecs() {
		name := c.Name()
		reg.CounterFunc("hetserve_store_decode_"+name+"_total",
			"Postings lists decoded with the "+name+" codec.",
			func() float64 { return float64(s.idx.Stats().CodecDecodes[name]) })
	}
}

// registerLiveMetrics publishes the segment manager's shape and
// lifecycle series, all func-backed off its atomic counters.
func (s *Server) registerLiveMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("hetserve_live_docs",
		"Non-deleted documents in the live index.",
		func() float64 { return float64(s.live.LiveDocs()) })
	reg.GaugeFunc("hetserve_live_deleted",
		"Documents currently tombstoned (not yet purged).",
		func() float64 { return float64(s.live.Stats().Deleted) })
	reg.GaugeFunc("hetserve_live_segments",
		"Sealed immutable segments on disk.",
		func() float64 { return float64(s.live.Stats().Segments) })
	reg.GaugeFunc("hetserve_live_segment_bytes",
		"Total run-file bytes across sealed segments.",
		func() float64 { return float64(s.live.Stats().SegmentBytes) })
	reg.GaugeFunc("hetserve_live_memtable_docs",
		"Documents buffered in the in-memory write segment.",
		func() float64 { return float64(s.live.Stats().MemtableDocs) })
	reg.GaugeFunc("hetserve_live_memtable_terms",
		"Distinct terms in the in-memory write segment.",
		func() float64 { return float64(s.live.Stats().MemtableTerms) })
	reg.CounterFunc("hetserve_live_seals_total",
		"Memtable seals since the manager opened.",
		func() float64 { return float64(s.live.Stats().Seals) })
	reg.CounterFunc("hetserve_live_compactions_total",
		"Segment compactions since the manager opened.",
		func() float64 { return float64(s.live.Stats().Compactions) })
	reg.GaugeFunc("hetserve_live_generation",
		"Current index generation (advances on every visible mutation).",
		func() float64 { return float64(s.live.Gen()) })
	// Per-codec decode counters, mirroring the static reader's set: which
	// registered codecs the sealed-segment read path actually exercised.
	for _, c := range encoding.Codecs() {
		name := c.Name()
		reg.CounterFunc("hetserve_store_decode_"+name+"_total",
			"Postings lists decoded with the "+name+" codec.",
			func() float64 { return float64(s.live.CodecDecodes()[name]) })
	}
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry (the one passed in
// Config.Registry, or the private default).
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// CacheStats exposes the postings-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Close shuts the server down gracefully: new requests are refused
// with 503, in-flight ones get up to DrainTimeout to finish, then the
// worker pool closes (which itself lets running queries complete).
// Idempotent; concurrent calls all wait for the pool to drain.
func (s *Server) Close() {
	if !s.closing.Swap(true) {
		deadline := time.Now().Add(s.cfg.DrainTimeout)
		for s.inflight.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	s.pool.Close()
}

// Inflight reports the requests currently inside instrumented handlers.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// searchResponse is the /search JSON shape.
type searchResponse struct {
	Query  string      `json:"query"`
	Mode   string      `json:"mode"`
	K      int         `json:"k,omitempty"`
	Count  int         `json:"count"`
	Docs   []uint32    `json:"docs,omitempty"`
	Ranked []rankedDoc `json:"ranked,omitempty"`
	TookMs float64     `json:"took_ms"`
}

type rankedDoc struct {
	Doc   uint32  `json:"doc"`
	Score float64 `json:"score"`
}

// handleSearch evaluates q under the configured mode:
//
//	GET /search?q=parallel+inverted&mode=and|or|phrase|topk&k=10
//	    [&rank=auto|exhaustive|maxscore|bmw]   topk evaluator override
//
// The query runs on a pool worker under the per-query deadline; a
// saturated pool makes callers wait here (backpressure), and an
// expired deadline aborts with 503.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "topk"
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = v
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	rankMode := s.searcher.GetRankMode()
	if v := r.URL.Query().Get("rank"); v != "" {
		m, ok := parseRankMode(v)
		if !ok {
			httpError(w, http.StatusBadRequest, "rank must be one of auto, exhaustive, maxscore, bmw")
			return
		}
		rankMode = m
	}
	words := strings.Fields(q)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	resp := searchResponse{Query: q, Mode: mode}
	t0 := time.Now()
	// The wait span measures time spent queued behind the bounded pool:
	// it opens before submission and the worker's first act is to close
	// it, so everything after nests as its siblings.
	wsp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageWait)
	err := s.pool.Do(ctx, func(ctx context.Context) error {
		wsp.End()
		switch mode {
		case "and":
			docs, err := s.searcher.AndCtx(ctx, words...)
			resp.Docs, resp.Count = docs, len(docs)
			return err
		case "or":
			docs, err := s.searcher.OrCtx(ctx, words...)
			resp.Docs, resp.Count = docs, len(docs)
			return err
		case "phrase":
			docs, err := s.searcher.PhraseCtx(ctx, words...)
			resp.Docs, resp.Count = docs, len(docs)
			return err
		case "topk":
			resp.K = k
			ranked, err := s.searcher.TopKModeCtx(ctx, rankMode, k, words...)
			resp.Ranked = make([]rankedDoc, len(ranked))
			for i, d := range ranked {
				resp.Ranked[i] = rankedDoc{Doc: d.Doc, Score: d.Score}
			}
			resp.Count = len(ranked)
			return err
		default:
			return errBadMode
		}
	})
	took := time.Since(t0)
	s.metrics.Observe(took, err)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	resp.TookMs = float64(took) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

var errBadMode = errors.New("serve: mode must be one of and, or, phrase, topk")

// parseRankMode maps a non-empty rank query parameter onto the topk
// evaluation strategy (an absent parameter defers to the searcher's
// configured mode instead). Auto means Block-Max-WAND whenever the
// index state can serve blocks, exhaustive otherwise.
func parseRankMode(v string) (search.RankMode, bool) {
	switch v {
	case "auto":
		return search.RankAuto, true
	case "exhaustive":
		return search.RankExhaustive, true
	case "maxscore":
		return search.RankMaxScore, true
	case "bmw":
		return search.RankBlockMax, true
	}
	return 0, false
}

// postingsResponse is the /postings JSON shape.
type postingsResponse struct {
	Term       string   `json:"term"`
	Normalized string   `json:"normalized"`
	DF         int      `json:"df"`
	Docs       []uint32 `json:"docs"`
	TFs        []uint32 `json:"tfs"`
	Truncated  bool     `json:"truncated,omitempty"`
}

// handlePostings returns one term's postings, 404 for unknown terms:
//
//	GET /postings?term=parallel&limit=100
func (s *Server) handlePostings(w http.ResponseWriter, r *http.Request) {
	word := r.URL.Query().Get("term")
	if word == "" {
		httpError(w, http.StatusBadRequest, "missing term parameter")
		return
	}
	limit := 100
	if ls := r.URL.Query().Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = v
	}
	norm, stop := s.searcher.Normalize(word)
	if stop || norm == "" {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%q is a stop word", word))
		return
	}
	// The static reader can reject unknown terms before scheduling any
	// work; the live index has no stable dictionary to pre-check against
	// (a concurrent ingest could add the term mid-request), so there an
	// empty result below becomes the 404.
	if s.idx != nil {
		if _, err := s.idx.LookupTerm(norm); err != nil {
			if errors.Is(err, store.ErrTermNotFound) {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			writeQueryError(w, err)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	resp := postingsResponse{Term: word, Normalized: norm}
	t0 := time.Now()
	wsp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageWait)
	err := s.pool.Do(ctx, func(ctx context.Context) error {
		wsp.End()
		l, err := s.searcher.PostingsCtx(ctx, word)
		if err != nil {
			return err
		}
		resp.DF = l.Len()
		n := l.Len()
		if n > limit {
			n, resp.Truncated = limit, true
		}
		resp.Docs = l.DocIDs[:n]
		resp.TFs = l.TFs[:n]
		return nil
	})
	s.metrics.Observe(time.Since(t0), err)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if s.live != nil && resp.DF == 0 {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("store: term %q not found", norm))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus basic index shape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.live != nil {
		st := s.live.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"mode":          "live",
			"docs":          s.live.LiveDocs(),
			"deleted":       st.Deleted,
			"segments":      st.Segments,
			"memtable_docs": st.MemtableDocs,
			"generation":    st.Generation,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"mode":   "static",
		"terms":  s.idx.Terms(),
		"docs":   s.searcher.NumDocs(),
		"runs":   len(s.idx.Runs()),
	})
}

// varsSnapshot is the "hetserve" object at /debug/vars: query
// percentiles, the full cache counter set (hits, misses, evictions,
// occupancy) and the pool's live load.
type varsSnapshot struct {
	MetricsSnapshot
	Cache        CacheStats `json:"cache"`
	CacheHitRate float64    `json:"cache_hit_rate"`
	Pool         PoolStats  `json:"pool"`
	Workers      int        `json:"workers"`
}

// handleVars renders the process-global expvar registry (memstats,
// cmdline, anything else published) plus this server's own metrics
// under the "hetserve" key. Rendering our vars per-server instead of
// expvar.Publish-ing them keeps multiple Servers in one process (and
// in tests) from colliding in the global registry.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value)
	})
	cache := s.cache.Stats()
	snap := varsSnapshot{
		MetricsSnapshot: s.metrics.Snapshot(),
		Cache:           cache,
		CacheHitRate:    cache.HitRate(),
		Pool:            s.pool.Stats(),
		Workers:         s.cfg.Workers,
	}
	b, err := json.Marshal(snap)
	if err != nil {
		b = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "hetserve", b)
}

// writeQueryError maps query failures to HTTP statuses.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusServiceUnavailable, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusServiceUnavailable, "query canceled")
	case errors.Is(err, ErrPoolClosed), errors.Is(err, store.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errBadMode), errors.Is(err, search.ErrInvalidK),
		errors.Is(err, search.ErrNotPositional):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, store.ErrCorruptIndex):
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
