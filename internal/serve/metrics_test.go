package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsEndpoint drives a few queries and checks /metrics serves
// a Prometheus snapshot covering the query, cache, pool and index
// families the dashboard depends on.
func TestMetricsEndpoint(t *testing.T) {
	idx := buildIndex(t)
	srv := New(idx, Config{CacheShards: 4, CacheBytes: 1 << 20})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	word := indexedWord(t, idx)
	// Two searches: the repeat warms the postings cache so the hit
	// counter moves too.
	getJSON(t, ts, "/search?q="+word+"&mode=and", http.StatusOK)
	getJSON(t, ts, "/search?q="+word+"&mode=and", http.StatusOK)
	// A bad mode passes the input checks and fails inside the query
	// path, so it lands in both the query and error counters.
	getJSON(t, ts, "/search?q="+word+"&mode=bogus", http.StatusBadRequest)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	for _, want := range []string{
		"# TYPE hetserve_queries_total counter",
		"# TYPE hetserve_query_seconds histogram",
		"hetserve_query_seconds_bucket{le=\"+Inf\"} 3",
		"hetserve_queries_total 3",
		"hetserve_query_errors_total 1",
		"hetserve_cache_hits_total",
		"hetserve_cache_misses_total",
		"hetserve_cache_evictions_total",
		"hetserve_cache_entries",
		"hetserve_pool_workers",
		"hetserve_pool_completed_total",
		"hetserve_index_terms",
		"hetserve_store_decode_varbyte_total",
		"hetserve_store_decode_bitpack_total",
		"hetserve_store_decode_eliasfano_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The func-backed cache counters must track the shard atomics: the
	// repeated query above hit the postings cache at least once.
	if srv.cache != nil && srv.cache.Hits() == 0 {
		t.Error("repeat query did not register a cache hit")
	}
}

// TestHotPathZeroAllocs is the acceptance gate for the instrumented
// query path: recording a query into the registry-backed metrics and
// reading a cached postings list must not allocate.
func TestHotPathZeroAllocs(t *testing.T) {
	m := NewMetrics()
	if n := testing.AllocsPerRun(200, func() {
		m.Observe(3*time.Millisecond, nil)
	}); n != 0 {
		t.Errorf("Metrics.Observe allocates %.1f per call, want 0", n)
	}

	c := NewPostingsCache(4, 1<<20)
	c.Put("term", listOfLen(16))
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get("term"); !ok {
			t.Fatal("cache lost its entry")
		}
	}); n != 0 {
		t.Errorf("PostingsCache.Get allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = c.Hits() + c.Misses() + c.Evictions()
	}); n != 0 {
		t.Errorf("cache counter reads allocate %.1f per call, want 0", n)
	}
}

// TestPoolStats checks the pool's gauge counters move with traffic.
func TestPoolStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	st := p.Stats()
	if st.Workers != 2 || st.InFlight != 0 || st.Completed != 0 {
		t.Fatalf("fresh pool stats = %+v", st)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Do returns only after the worker bumped the completed counter.
	if got := p.Stats().Completed; got != 4 {
		t.Errorf("completed = %d, want 4", got)
	}
	if got := p.Stats().InFlight; got != 0 {
		t.Errorf("in-flight = %d, want 0 after drain", got)
	}
}
