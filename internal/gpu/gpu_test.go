package gpu

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := TeslaC1060()
	cfg.SMs = 4
	cfg.DeviceMemBytes = 16 << 20
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDevice(Config{}); err == nil {
		t.Error("zero config must be rejected")
	}
	if _, err := NewDevice(TeslaC1060()); err != nil {
		t.Errorf("TeslaC1060 config invalid: %v", err)
	}
}

func TestMallocAndCopy(t *testing.T) {
	d := MustDevice(testConfig())
	p := d.Malloc(128)
	q := d.Malloc(64)
	if p == q {
		t.Fatal("allocations overlap")
	}
	src := make([]byte, 128)
	for i := range src {
		src[i] = byte(i)
	}
	sec := d.CopyHtoD(p, src)
	if sec <= 0 {
		t.Error("HtoD must take simulated time")
	}
	dst := make([]byte, 128)
	d.CopyDtoH(dst, p)
	for i := range dst {
		if dst[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, dst[i])
		}
	}
	st := d.Stats()
	if st.HtoDBytes != 128 || st.DtoHBytes != 128 {
		t.Errorf("transfer stats = %d/%d, want 128/128", st.HtoDBytes, st.DtoHBytes)
	}
}

func TestResetZeroesAndReuses(t *testing.T) {
	d := MustDevice(testConfig())
	p := d.Malloc(16)
	d.CopyHtoD(p, []byte{1, 2, 3, 4})
	d.Reset()
	if d.Allocated() != 0 {
		t.Fatal("Reset must release allocations")
	}
	p2 := d.Malloc(16)
	buf := make([]byte, 4)
	d.CopyDtoH(buf, p2)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("memory not zeroed after Reset")
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := MustDevice(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range copy must panic")
		}
	}()
	d.CopyHtoD(Ptr(d.cfg.DeviceMemBytes-4), make([]byte, 8))
}

func TestTransientRegion(t *testing.T) {
	d := MustDevice(testConfig())
	persistent := d.Malloc(64)
	tp := d.MallocTransient(128)
	if int64(tp) < d.Allocated() {
		t.Fatal("transient allocation overlaps persistent region")
	}
	d.CopyHtoD(tp, []byte{9, 9, 9})
	if d.TransientBytes() != 128 {
		t.Errorf("TransientBytes = %d, want 128", d.TransientBytes())
	}
	d.FreeTransients()
	if d.TransientBytes() != 0 {
		t.Error("FreeTransients did not release")
	}
	// Persistent data survives transient churn; region is re-zeroed
	// on reuse.
	d.CopyHtoD(persistent, []byte{1})
	tp2 := d.MallocTransient(128)
	buf := make([]byte, 3)
	d.CopyDtoH(buf, tp2)
	if buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
		t.Error("transient region not zeroed on reuse")
	}
}

func TestMallocExhaustionPanics(t *testing.T) {
	cfg := testConfig()
	cfg.DeviceMemBytes = 1 << 10
	d := MustDevice(cfg)
	defer func() {
		if recover() == nil {
			t.Error("exhausted device must panic like cudaMalloc failure")
		}
	}()
	d.Malloc(2 << 10)
}

func TestLaunchExecutesAllBlocks(t *testing.T) {
	d := MustDevice(testConfig())
	var ran int64
	st := d.Launch(100, func(b *Block) {
		atomic.AddInt64(&ran, 1)
		b.ChargeInstr(10)
	})
	if ran != 100 || st.Blocks != 100 {
		t.Fatalf("ran %d blocks, stats %d, want 100", ran, st.Blocks)
	}
	if st.TotalCycles != 100*10*d.cfg.InstrCycles {
		t.Errorf("TotalCycles = %d", st.TotalCycles)
	}
	if st.SimSeconds <= 0 {
		t.Error("simulated time must be positive")
	}
	if st.MaxSMCycles > st.TotalCycles {
		t.Errorf("critical path %d exceeds total %d", st.MaxSMCycles, st.TotalCycles)
	}
}

func TestLaunchSpreadsOverSMs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 CPU for real SM parallelism; timing model covers 1-CPU hosts")
	}
	d := MustDevice(testConfig())
	sink := make([]int64, 256)
	st := d.Launch(100, func(b *Block) {
		// Enough real work per block (~100us) that all four SM
		// goroutines demonstrably participate.
		var acc int64
		for i := 0; i < 200_000; i++ {
			acc += int64(i ^ b.BlockIdx)
		}
		sink[b.BlockIdx%256] = acc
		b.ChargeInstr(100)
	})
	if st.MaxSMCycles >= st.TotalCycles {
		t.Errorf("no parallelism: max %d vs total %d cycles", st.MaxSMCycles, st.TotalCycles)
	}
}

func TestLaunchSharedMemoryIsolated(t *testing.T) {
	d := MustDevice(testConfig())
	p := d.Malloc(4 * 64)
	d.Launch(64, func(b *Block) {
		// Each block writes its index into shared then stores to its
		// own device slot; cross-block leakage would corrupt values.
		b.PutSharedI32(0, int32(b.BlockIdx))
		b.StoreGlobal(p+Ptr(4*b.BlockIdx), 0, 4)
	})
	out := make([]byte, 4*64)
	d.CopyDtoH(out, p)
	for i := 0; i < 64; i++ {
		got := int32(out[4*i]) | int32(out[4*i+1])<<8 | int32(out[4*i+2])<<16 | int32(out[4*i+3])<<24
		if got != int32(i) {
			t.Fatalf("block %d wrote %d", i, got)
		}
	}
}

func TestCoalescedTransactionCount(t *testing.T) {
	d := MustDevice(testConfig())
	p := d.Malloc(1024)
	st := d.Launch(1, func(b *Block) {
		b.LoadShared(0, p, 512) // aligned: 512/64 = 8 segments
	})
	if st.GlobalTxns != 8 {
		t.Errorf("aligned 512B load = %d txns, want 8", st.GlobalTxns)
	}
	st = d.Launch(1, func(b *Block) {
		b.LoadShared(0, p+32, 512) // misaligned: spans 9 segments
	})
	if st.GlobalTxns != 9 {
		t.Errorf("misaligned 512B load = %d txns, want 9", st.GlobalTxns)
	}
}

func TestScatteredCostsMore(t *testing.T) {
	d := MustDevice(testConfig())
	p := d.Malloc(512)
	co := d.Launch(1, func(b *Block) { b.LoadShared(0, p, 512) })
	buf := make([]byte, 512)
	sc := d.Launch(1, func(b *Block) { b.GlobalReadScattered(buf, p) })
	if sc.GlobalTxns <= co.GlobalTxns {
		t.Errorf("scattered %d txns not > coalesced %d", sc.GlobalTxns, co.GlobalTxns)
	}
	if sc.MaxSMCycles <= co.MaxSMCycles {
		t.Errorf("scattered %d cycles not > coalesced %d", sc.MaxSMCycles, co.MaxSMCycles)
	}
}

func TestBankConflictAccounting(t *testing.T) {
	d := MustDevice(testConfig())
	d.Malloc(4)
	d.Launch(1, func(b *Block) {
		// Conflict-free: lanes hit distinct banks.
		words := make([]int, 32)
		for i := range words {
			words[i] = i
		}
		if deg := b.ChargeSharedAccess(words); deg != 1 {
			t.Errorf("distinct banks: degree %d, want 1", deg)
		}
		// Broadcast: all lanes read the same word — still conflict-free.
		for i := range words {
			words[i] = 5
		}
		if deg := b.ChargeSharedAccess(words); deg != 1 {
			t.Errorf("broadcast: degree %d, want 1", deg)
		}
		// Worst case: all lanes hit bank 0 with distinct addresses.
		for i := range words {
			words[i] = i * 16
		}
		if deg := b.ChargeSharedAccess(words); deg != 16 {
			t.Errorf("same-bank distinct: degree %d, want 16", deg)
		}
	})
	if d.Stats().BankConflicts == 0 {
		t.Error("conflicts not recorded")
	}
}

func TestParallelMinMatchesLinear(t *testing.T) {
	d := MustDevice(testConfig())
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		var got int32
		var gotLane int
		d.Launch(1, func(b *Block) {
			got, gotLane = b.ParallelMin(raw)
		})
		want := raw[0]
		for _, v := range raw {
			if v < want {
				want = v
			}
		}
		return got == want && raw[gotLane] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivergenceAccounting(t *testing.T) {
	d := MustDevice(testConfig())
	st := d.Launch(1, func(b *Block) {
		before := b.Cycles()
		b.ChargeDivergentLanes(0) // no-op
		if b.Cycles() != before {
			t.Error("zero divergence must not charge")
		}
		b.ChargeDivergentLanes(5)
		if b.Cycles() <= before {
			t.Error("divergence must charge cycles")
		}
	})
	if st.Divergent != 5 {
		t.Errorf("launch divergence = %d, want 5", st.Divergent)
	}
	if d.Stats().DivergentLanes != 5 {
		t.Errorf("device divergence = %d, want 5", d.Stats().DivergentLanes)
	}
}

func TestSharedI32RoundTrip(t *testing.T) {
	d := MustDevice(testConfig())
	d.Launch(1, func(b *Block) {
		b.PutSharedI32(40, -123456789)
		if v := b.SharedI32(40); v != -123456789 {
			t.Errorf("SharedI32 = %d", v)
		}
	})
}

func TestLoadSharedBoundsPanic(t *testing.T) {
	d := MustDevice(testConfig())
	p := d.Malloc(64)
	defer func() {
		if recover() == nil {
			t.Error("shared overflow must panic")
		}
	}()
	d.Launch(1, func(b *Block) {
		b.LoadShared(len(b.Shared)-8, p, 64)
	})
}

func BenchmarkKernelNodeLoad(b *testing.B) {
	cfg := TeslaC1060()
	cfg.DeviceMemBytes = 64 << 20
	d := MustDevice(cfg)
	p := d.Malloc(512 * 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch(32, func(blk *Block) {
			off := Ptr((blk.BlockIdx % 1024) * 512)
			blk.LoadShared(0, p+off, 512)
		})
	}
}

// TestTrimTransientsBoundsResident: FreeTransients (per run) must keep
// the backing chunks materialized so runs reuse them without
// re-allocation, while TrimTransients (build end) drops the chunks
// above the persistent break, so a long-lived engine's resident memory
// between builds is bounded by its persistent footprint — with
// persistent data surviving and reused transient memory still reading
// as zeros.
func TestTrimTransientsBoundsResident(t *testing.T) {
	cfg := testConfig()
	cfg.DeviceMemBytes = 64 << 20
	d := MustDevice(cfg)
	persistent := d.Malloc(1 << 10)
	d.CopyHtoD(persistent, []byte{7, 8, 9})

	payload := make([]byte, 16<<20)
	for i := range payload {
		payload[i] = 0xaa
	}
	var resident int64
	for run := 0; run < 5; run++ {
		tp := d.MallocTransient(len(payload))
		buf := make([]byte, 8)
		d.CopyDtoH(buf, tp)
		for _, b := range buf {
			if b != 0 {
				t.Fatal("transient region not zero on allocation")
			}
		}
		d.CopyHtoD(tp, payload)
		d.FreeTransients()
		if resident == 0 {
			resident = d.ResidentBytes()
			if resident < int64(len(payload)) {
				t.Fatalf("resident %d bytes after first run, want >= payload (chunks must stay for reuse)", resident)
			}
		} else if got := d.ResidentBytes(); got != resident {
			t.Fatalf("run %d: resident %d bytes, first run left %d (FreeTransients must not churn chunks)", run, got, resident)
		}
	}
	// Build end: only the chunk holding the persistent kilobyte may
	// survive the trim.
	d.TrimTransients()
	if got := d.ResidentBytes(); got > chunkSize {
		t.Fatalf("resident %d bytes after TrimTransients, want <= one chunk (%d)", got, chunkSize)
	}
	buf := make([]byte, 3)
	d.CopyDtoH(buf, persistent)
	if buf[0] != 7 || buf[1] != 8 || buf[2] != 9 {
		t.Fatal("persistent data lost by transient trim")
	}
	// A post-trim allocation must see zeroed memory again.
	tp := d.MallocTransient(1 << 20)
	d.CopyDtoH(buf, tp)
	if buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
		t.Fatal("post-trim transient region not zero")
	}
	d.Reset()
	if d.ResidentBytes() != 0 {
		t.Fatal("Reset must drop all materialized chunks")
	}
}
