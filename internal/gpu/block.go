package gpu

import "fmt"

// Block is the execution context of one thread block (one warp in the
// paper's configuration). Kernels express warp-lockstep computation
// through ForLanes sections and explicit shared/global memory motion;
// every operation charges the block's cycle counter according to the
// device cost model.
//
// A Block is owned by a single SM goroutine; kernels must not share a
// Block across goroutines. Distinct blocks may freely access disjoint
// device-memory regions concurrently.
type Block struct {
	dev      *Device
	BlockIdx int
	Dim      int    // lanes per block (warp size)
	Shared   []byte // per-block shared memory, zeroed at block start

	ctr blockCounters

	// Cost-model scratch, reused across charges. A Block is owned by a
	// single SM goroutine, so plain fields need no synchronization;
	// recycling them keeps the simulated-hardware accounting off the
	// allocator's hot path (it runs once per modeled half-warp access).
	bankCounts []int
	minVals    []int32
	minLanes   []int
	minWords   []int
}

// Device returns the owning device (for configuration lookups).
func (b *Block) Device() *Device { return b.dev }

// Cycles reports the cycles charged to this block so far.
func (b *Block) Cycles() int64 { return b.ctr.cycles }

// ChargeInstr charges n warp instructions (arithmetic, compare,
// branch). Kernels call this for the lane work inside ForLanes
// sections; helpers in this package charge automatically.
func (b *Block) ChargeInstr(n int64) {
	b.ctr.instructions += n
	b.ctr.cycles += n * b.dev.cfg.InstrCycles
}

// ForLanes executes fn once per lane, modeling one lockstep SIMT
// region: all lanes run the same code and an implicit barrier follows.
// One warp instruction is charged per call; kernels charge additional
// instructions explicitly where a lane body does nontrivial work.
func (b *Block) ForLanes(fn func(lane int)) {
	for lane := 0; lane < b.Dim; lane++ {
		fn(lane)
	}
	b.ChargeInstr(1)
}

// SyncThreads models __syncthreads(); within this sequential-lockstep
// simulation it only charges the barrier instruction.
func (b *Block) SyncThreads() { b.ChargeInstr(1) }

// transactions counts the coalesced segments covering [addr, addr+n).
func (b *Block) transactions(addr Ptr, n int) int64 {
	if n <= 0 {
		return 0
	}
	seg := int64(b.dev.cfg.SegmentBytes)
	first := int64(addr) / seg
	last := (int64(addr) + int64(n) - 1) / seg
	return last - first + 1
}

func (b *Block) chargeGlobal(txns int64, bytes int) {
	b.ctr.globalTxns += txns
	b.ctr.globalBytes += int64(bytes)
	lat := b.dev.cfg.MemLatencyCycles
	if r := b.dev.cfg.ResidentBlocksPerSM; r > 1 {
		lat = (lat + r - 1) / r // hidden behind other resident warps
	}
	b.ctr.cycles += lat + txns*b.dev.cfg.SegmentCycles
}

// LoadShared copies n bytes from device memory at src into shared
// memory at dst, modeling a coalesced cooperative load: the warp's
// lanes stream contiguous segments, so the cost is one latency plus
// one transaction per 64-byte segment (Fig. 6's 512 B string chunks
// and the 512 B node loads are 8 transactions each).
func (b *Block) LoadShared(dst int, src Ptr, n int) {
	b.dev.checkRange(src, n)
	if dst < 0 || dst+n > len(b.Shared) {
		panic(fmt.Sprintf("gpu: shared store [%d,%d) outside %d-byte shared memory",
			dst, dst+n, len(b.Shared)))
	}
	b.dev.read(src, b.Shared[dst:dst+n])
	b.chargeGlobal(b.transactions(src, n), n)
}

// StoreGlobal copies n bytes from shared memory at src to device
// memory at dst as a coalesced cooperative store.
func (b *Block) StoreGlobal(dst Ptr, src int, n int) {
	b.dev.checkRange(dst, n)
	if src < 0 || src+n > len(b.Shared) {
		panic("gpu: shared load out of range")
	}
	b.dev.write(dst, b.Shared[src:src+n])
	b.chargeGlobal(b.transactions(dst, n), n)
}

// GlobalRead copies n device bytes to a host-side scratch slice
// without shared-memory staging, modeling an uncoalesced per-lane
// gather: one transaction per WarpSize/2-lane half-warp element group,
// i.e. one per 4-byte word group touched. It is deliberately expensive
// and exists for the coalescing ablation.
func (b *Block) GlobalReadScattered(dst []byte, src Ptr) {
	n := len(dst)
	b.dev.checkRange(src, n)
	b.dev.read(src, dst)
	// Each 4-byte element from a distinct segment: charge one
	// transaction per element group of 4 bytes.
	txns := int64((n + 3) / 4)
	b.chargeGlobal(txns, n)
}

// ChargeDivergentLanes accounts warp divergence: n lanes of the warp
// took a different path than the rest, so the SM executes both sides
// serially. Charges one extra instruction issue per divergent lane
// group and records the event for the divergence statistics.
func (b *Block) ChargeDivergentLanes(n int) {
	if n <= 0 {
		return
	}
	b.ctr.divergent += int64(n)
	b.ctr.cycles += b.dev.cfg.InstrCycles
}

// ChargeScatteredRead accounts the cost of an uncoalesced read of n
// bytes without performing it, for cost-model ablations that disable
// an optimization semantically but keep execution identical.
func (b *Block) ChargeScatteredRead(n int) {
	b.chargeGlobal(int64((n+3)/4), n)
}

// GlobalWriteScattered is the store counterpart of GlobalReadScattered.
func (b *Block) GlobalWriteScattered(dst Ptr, src []byte) {
	n := len(src)
	b.dev.checkRange(dst, n)
	b.dev.write(dst, src)
	txns := int64((n + 3) / 4)
	b.chargeGlobal(txns, n)
}

// SharedI32 reads a little-endian int32 from shared memory.
func (b *Block) SharedI32(off int) int32 {
	s := b.Shared[off : off+4]
	return int32(s[0]) | int32(s[1])<<8 | int32(s[2])<<16 | int32(s[3])<<24
}

// PutSharedI32 writes a little-endian int32 into shared memory.
func (b *Block) PutSharedI32(off int, v int32) {
	s := b.Shared[off : off+4]
	s[0], s[1], s[2], s[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// ChargeSharedAccess charges one half-warp shared-memory access where
// laneWords[i] is the word address touched by lane i. Lanes hitting
// the same bank with different addresses serialize; lanes reading the
// same address broadcast. Returns the conflict degree charged (1 =
// conflict-free).
func (b *Block) ChargeSharedAccess(laneWords []int) int {
	banks := b.dev.cfg.SharedBanks
	half := b.Dim / 2
	if half == 0 {
		half = len(laneWords)
	}
	if cap(b.bankCounts) < banks {
		b.bankCounts = make([]int, banks)
	}
	counts := b.bankCounts[:banks]
	worst := 1
	for start := 0; start < len(laneWords); start += half {
		end := start + half
		if end > len(laneWords) {
			end = len(laneWords)
		}
		seg := laneWords[start:end]
		for i := range counts {
			counts[i] = 0
		}
		// Count distinct addresses per bank: a repeated address within
		// the half-warp broadcasts (counted once), distinct addresses on
		// the same bank serialize. Segments are half-warp sized, so the
		// quadratic dedup scan beats any map-based set.
		degree := 1
		for i, w := range seg {
			dup := false
			for _, prev := range seg[:i] {
				if prev == w {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			bank := w % banks
			counts[bank]++
			if counts[bank] > degree {
				degree = counts[bank]
			}
		}
		b.ctr.sharedAcc++
		b.ctr.cycles += int64(degree) * b.dev.cfg.SharedAccessCycles
		if degree > 1 {
			b.ctr.conflicts += int64(degree - 1)
		}
		if degree > worst {
			worst = degree
		}
	}
	return worst
}

// ParallelMin performs a warp parallel reduction (Harris-style, the
// paper's Fig. 7 position search) over vals, returning the minimum
// value and its lane. It charges log2(warp) steps of compare
// instructions plus the shared traffic of the exchanged values.
func (b *Block) ParallelMin(vals []int32) (min int32, lane int) {
	n := len(vals)
	if n == 0 {
		return 0, -1
	}
	if cap(b.minVals) < n {
		b.minVals = make([]int32, n)
		b.minLanes = make([]int, n)
		b.minWords = make([]int, n/2+1)
	}
	v := b.minVals[:n]
	l := b.minLanes[:n]
	copy(v, vals)
	for i := range l {
		l[i] = i
	}
	for stride := n / 2; stride > 0; stride /= 2 {
		words := b.minWords[:0]
		for i := 0; i < stride; i++ {
			if v[i+stride] < v[i] {
				v[i] = v[i+stride]
				l[i] = l[i+stride]
			}
			words = append(words, i)
		}
		b.ChargeInstr(1) // one comparison instruction per step
		b.ChargeSharedAccess(words)
	}
	// Odd tail (n not a power of two): fold linearly.
	for i := 1; i < n; i++ {
		if v[i] < v[0] {
			v[0], l[0] = v[i], l[i]
		}
	}
	return v[0], l[0]
}
