// Package gpu provides a CUDA-like SIMT execution substrate in pure Go.
//
// The paper's GPU indexer runs on two NVIDIA Tesla C1060 cards; Go has
// no usable CUDA bindings, so this package substitutes a simulator
// that (a) actually executes warp-style kernels with real parallelism
// — thread blocks are scheduled dynamically onto goroutine-backed
// streaming multiprocessors — and (b) charges a cycle-level cost model
// for exactly the effects the paper optimizes: coalesced versus
// scattered device-memory transactions, shared-memory staging and bank
// conflicts, warp instruction issue, and PCIe transfers.
//
// Kernels are written against the Block API: lane-parallel sections
// (ForLanes) model one warp's lockstep execution, explicit LoadShared /
// StoreGlobal calls model data movement, and every operation updates
// the block's cycle counter. Launch returns aggregate Stats including
// the simulated kernel time on the modeled hardware.
package gpu

// Config describes the simulated GPU.
type Config struct {
	// Name identifies the modeled part in reports.
	Name string

	// SMs is the number of streaming multiprocessors; each executes
	// one thread block at a time in this model (the paper's indexer
	// uses 32-thread blocks, far below the SM occupancy limits, and
	// its throughput is bounded by memory behaviour, not occupancy).
	SMs int

	// CoresPerSM is the number of scalar cores (SPs) per SM.
	CoresPerSM int

	// WarpSize is the number of lanes that execute in lockstep.
	WarpSize int

	// SharedMemPerBlock is the shared memory available to one block.
	SharedMemPerBlock int

	// ClockHz is the SP clock used to convert cycles to seconds.
	ClockHz float64

	// MemLatencyCycles is the device-memory access latency charged
	// once per dependent transaction batch (400-600 on the C1060).
	MemLatencyCycles int64

	// ResidentBlocksPerSM models latency hiding: with R blocks
	// resident per SM (8 on the C1060, and the paper's 480 blocks on
	// 30 SMs give 16 queued), a stalled warp's memory latency
	// overlaps with other warps' execution, so each block is charged
	// MemLatencyCycles/R per dependent access. 1 disables hiding.
	ResidentBlocksPerSM int64

	// SegmentBytes is the coalescing granularity: simultaneous
	// accesses within one segment fuse into one transaction
	// ("contiguous 16-word lines" = 64 bytes on the C1060).
	SegmentBytes int

	// SegmentCycles is the issue cost per 64-byte transaction, the
	// bandwidth term of the model.
	SegmentCycles int64

	// SharedBanks is the number of shared-memory banks (16 on the
	// C1060, addressed per 4-byte word per half-warp).
	SharedBanks int

	// SharedAccessCycles is the cost of one conflict-free shared
	// access by a half-warp.
	SharedAccessCycles int64

	// InstrCycles is the issue cost of one warp instruction
	// (32 lanes over 8 cores = 4 clocks on the C1060).
	InstrCycles int64

	// PCIeBytesPerSec models host<->device copies.
	PCIeBytesPerSec float64

	// PCIeLatencySec is the fixed per-copy overhead.
	PCIeLatencySec float64

	// DeviceMemBytes is the device memory capacity, allocated in full
	// at creation (virtual memory: pages commit on first touch).
	DeviceMemBytes int
}

// TeslaC1060 returns the configuration of the paper's GPU: 30 SMs of
// 8 cores at 1.296 GHz, 16 KB shared memory, 102 GB/s device memory,
// PCIe 2.0 x16 host link.
func TeslaC1060() Config {
	return Config{
		Name:                "Tesla C1060",
		SMs:                 30,
		CoresPerSM:          8,
		WarpSize:            32,
		SharedMemPerBlock:   16 << 10,
		ClockHz:             1.296e9,
		MemLatencyCycles:    500,
		ResidentBlocksPerSM: 4,
		SegmentBytes:        64,
		SegmentCycles:       16,
		SharedBanks:         16,
		SharedAccessCycles:  2,
		InstrCycles:         4,
		PCIeBytesPerSec:     5.5e9,
		PCIeLatencySec:      10e-6,
		DeviceMemBytes:      4 << 30,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) validate() error {
	switch {
	case c.SMs <= 0:
		return errConfig("SMs")
	case c.WarpSize <= 0:
		return errConfig("WarpSize")
	case c.SharedMemPerBlock <= 0:
		return errConfig("SharedMemPerBlock")
	case c.ClockHz <= 0:
		return errConfig("ClockHz")
	case c.SegmentBytes <= 0:
		return errConfig("SegmentBytes")
	case c.SharedBanks <= 0:
		return errConfig("SharedBanks")
	case c.DeviceMemBytes <= 0:
		return errConfig("DeviceMemBytes")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "gpu: invalid config field " + string(e) }
