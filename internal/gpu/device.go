package gpu

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Ptr is a device-memory address (byte offset).
type Ptr int64

// Nil is the null device pointer.
const Nil Ptr = -1

// Device is one simulated GPU: a fixed-size device address space, bump
// allocators, and transfer/launch entry points.
//
// The address space is fixed at creation and addresses never move, so
// kernels may call Malloc/MallocTransient concurrently with other
// blocks' memory traffic — exactly like device-side allocation on real
// hardware. Persistent allocations (Malloc) grow from the bottom;
// per-run transient buffers (MallocTransient) grow from the top and
// are released wholesale by FreeTransients, mirroring the paper's
// per-run cudaMalloc/cudaFree of input and output regions while the
// dictionary stays resident.
//
// Backing storage is chunked and lazily materialized: a 4 GiB device
// costs only the chunks actually touched, so creating a device (one
// per simulated GPU per engine) never zeroes gigabytes up front. A
// chunk pointer is published atomically exactly once; never-touched
// chunks read as zeros without being allocated.
type Device struct {
	cfg Config

	size    int64 // address-space bytes (cfg.DeviceMemBytes)
	chunks  []atomic.Pointer[memChunk]
	chunkMu sync.Mutex // serializes chunk materialization

	mu  sync.Mutex
	brk int64 // bottom break (persistent)
	top int64 // top break (transient); allocations live in [top, size)

	stats DeviceStats
}

// chunkShift sizes the lazy backing chunks (4 MiB): large enough that
// streaming copies cross few boundaries, small enough that a tiny
// working set stays tiny.
const chunkShift = 22

const chunkSize = 1 << chunkShift

type memChunk [chunkSize]byte

// chunk returns chunk i, materializing it (zeroed) on first touch.
func (d *Device) chunk(i int64) *memChunk {
	if c := d.chunks[i].Load(); c != nil {
		return c
	}
	d.chunkMu.Lock()
	defer d.chunkMu.Unlock()
	if c := d.chunks[i].Load(); c != nil {
		return c
	}
	c := new(memChunk)
	d.chunks[i].Store(c)
	return c
}

// read copies device bytes [p, p+len(dst)) into dst. Untouched chunks
// read as zeros without being materialized.
func (d *Device) read(p Ptr, dst []byte) {
	off := int64(p)
	for len(dst) > 0 {
		ci, co := off>>chunkShift, off&(chunkSize-1)
		n := chunkSize - co
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		if c := d.chunks[ci].Load(); c != nil {
			copy(dst[:n], c[co:co+n])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		off += n
	}
}

// write copies src into device memory at p.
func (d *Device) write(p Ptr, src []byte) {
	off := int64(p)
	for len(src) > 0 {
		ci, co := off>>chunkShift, off&(chunkSize-1)
		n := copy(d.chunk(ci)[co:], src)
		src = src[n:]
		off += int64(n)
	}
}

// zeroRange clears [p, p+n); chunks never materialized are already
// zero and stay unmaterialized.
func (d *Device) zeroRange(p Ptr, n int64) {
	off, end := int64(p), int64(p)+n
	for off < end {
		ci, co := off>>chunkShift, off&(chunkSize-1)
		m := chunkSize - co
		if m > end-off {
			m = end - off
		}
		if c := d.chunks[ci].Load(); c != nil {
			clear(c[co : co+m])
		}
		off += m
	}
}

// DeviceStats aggregates simulated activity over the device lifetime.
type DeviceStats struct {
	KernelsLaunched int64
	BlocksExecuted  int64
	Instructions    int64
	GlobalTxns      int64 // coalesced device-memory transactions
	GlobalBytes     int64
	SharedAccesses  int64
	BankConflicts   int64 // excess cycles lost to conflicts
	DivergentLanes  int64
	HtoDBytes       int64
	DtoHBytes       int64
	SimSeconds      float64 // simulated kernel + transfer time
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	d.size = int64(cfg.DeviceMemBytes)
	d.chunks = make([]atomic.Pointer[memChunk], (d.size+chunkSize-1)>>chunkShift)
	d.top = d.size
	return d, nil
}

// MustDevice is NewDevice for tests and examples with a known-good config.
func MustDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Malloc allocates n bytes of persistent device memory (zeroed). It is
// safe to call from kernels; it panics when device memory is exhausted,
// the analogue of a cudaMalloc failure.
func (d *Device) Malloc(n int) Ptr {
	if n < 0 {
		panic("gpu: negative allocation")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.brk+int64(n) > d.top {
		panic(fmt.Sprintf("gpu: out of device memory (%d persistent + %d requested, %d transient, %d total)",
			d.brk, n, d.size-d.top, d.size))
	}
	p := d.brk
	d.brk += int64(n)
	return Ptr(p)
}

// MallocTransient allocates n bytes from the transient (per-run)
// region at the top of device memory.
func (d *Device) MallocTransient(n int) Ptr {
	if n < 0 {
		panic("gpu: negative allocation")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.top-int64(n) < d.brk {
		panic(fmt.Sprintf("gpu: out of device memory for %d-byte transient", n))
	}
	d.top -= int64(n)
	d.zeroRange(Ptr(d.top), int64(n))
	return Ptr(d.top)
}

// FreeTransients releases every transient allocation (end of run).
// The backing chunks stay materialized so the next run reuses them
// without re-allocating; TrimTransients drops them when a build ends.
func (d *Device) FreeTransients() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.top = d.size
}

// TrimTransients releases every transient allocation and drops the
// backing chunks that held only transient data, bounding a long-lived
// engine's resident memory between builds by the persistent footprint
// (without it, every device keeps every chunk its largest build ever
// touched). Called at build end, not per run — re-materializing
// chunks on the hot path costs more than it saves. Dropping is
// invisible to later builds: dropped chunks read as zeros, fresh
// chunks materialize zeroed, and MallocTransient zeroes its range
// anyway. Chunks at or below the persistent break are never dropped.
func (d *Device) TrimTransients() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.top = d.size
	d.chunkMu.Lock()
	for i := (d.brk + chunkSize - 1) >> chunkShift; i < int64(len(d.chunks)); i++ {
		d.chunks[i].Store(nil)
	}
	d.chunkMu.Unlock()
}

// Reset releases all allocations, persistent and transient. The
// backing chunks are dropped wholesale — the next touches start from
// fresh zeroed chunks.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chunkMu.Lock()
	for i := range d.chunks {
		d.chunks[i].Store(nil)
	}
	d.chunkMu.Unlock()
	d.brk = 0
	d.top = d.size
}

// Allocated reports the persistent allocation break.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.brk
}

// TransientBytes reports the size of the live transient region.
func (d *Device) TransientBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size - d.top
}

// ResidentBytes reports how much backing memory is actually
// materialized — the simulator-host cost of the device, as opposed to
// the simulated address-space size.
func (d *Device) ResidentBytes() int64 {
	d.chunkMu.Lock()
	defer d.chunkMu.Unlock()
	var n int64
	for i := range d.chunks {
		if d.chunks[i].Load() != nil {
			n += chunkSize
		}
	}
	return n
}

// CopyHtoD copies host bytes into device memory and accounts the PCIe
// transfer time. It returns the simulated seconds the copy took.
func (d *Device) CopyHtoD(dst Ptr, src []byte) float64 {
	d.checkRange(dst, len(src))
	d.write(dst, src)
	sec := d.cfg.PCIeLatencySec + float64(len(src))/d.cfg.PCIeBytesPerSec
	d.mu.Lock()
	d.stats.HtoDBytes += int64(len(src))
	d.stats.SimSeconds += sec
	d.mu.Unlock()
	return sec
}

// CopyDtoH copies device bytes back to the host, returning simulated
// seconds.
func (d *Device) CopyDtoH(dst []byte, src Ptr) float64 {
	d.checkRange(src, len(dst))
	d.read(src, dst)
	sec := d.cfg.PCIeLatencySec + float64(len(dst))/d.cfg.PCIeBytesPerSec
	d.mu.Lock()
	d.stats.DtoHBytes += int64(len(dst))
	d.stats.SimSeconds += sec
	d.mu.Unlock()
	return sec
}

// Stats returns a snapshot of accumulated device statistics.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// checkRange validates [p, p+n) against device memory bounds. Bounds
// are the full memory: allocation discipline is the allocator's job,
// while this guards against wild pointers.
func (d *Device) checkRange(p Ptr, n int) {
	if p < 0 || n < 0 || int64(p)+int64(n) > d.size {
		panic(fmt.Sprintf("gpu: access [%d,%d) outside %d-byte device memory", p, int64(p)+int64(n), d.size))
	}
}

// LaunchStats summarizes one kernel launch.
type LaunchStats struct {
	Blocks       int
	Instructions int64
	GlobalTxns   int64
	GlobalBytes  int64
	SharedAcc    int64
	Conflicts    int64
	Divergent    int64   // lanes that took a divergent warp path
	MaxSMCycles  int64   // critical-path cycles across SMs
	TotalCycles  int64   // sum over blocks (work metric)
	SimSeconds   float64 // MaxSMCycles / clock
}

// Launch executes a grid of nBlocks thread blocks running kernel.
// Blocks are scheduled dynamically onto the configured number of SMs
// (the paper's round-robin "next available trie collection" strategy):
// each SM is a goroutine pulling the next unstarted block index. The
// call blocks until the grid completes, like a synchronous CUDA launch,
// and returns the launch statistics. A panic inside a kernel is
// re-raised on the calling goroutine.
func (d *Device) Launch(nBlocks int, kernel func(b *Block)) LaunchStats {
	if nBlocks <= 0 {
		return LaunchStats{}
	}
	var next int64 = -1
	var wg sync.WaitGroup
	var panicked atomic.Value // first kernel panic, re-raised on the host
	sms := d.cfg.SMs
	if sms > nBlocks {
		sms = nBlocks
	}
	smCycles := make([]int64, sms)
	blockStats := make([]blockCounters, sms)
	for sm := 0; sm < sms; sm++ {
		wg.Add(1)
		go func(sm int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, r)
				}
			}()
			// One Block per SM goroutine, re-armed per block index:
			// kernels may not retain it past their return, so reusing
			// it (and its cost-model scratch) across the SM's blocks
			// is safe and keeps the launch loop allocation-free.
			shared := make([]byte, d.cfg.SharedMemPerBlock)
			b := &Block{
				dev:    d,
				Dim:    d.cfg.WarpSize,
				Shared: shared,
			}
			for {
				bi := int(atomic.AddInt64(&next, 1))
				if bi >= nBlocks || panicked.Load() != nil {
					return
				}
				for i := range shared {
					shared[i] = 0
				}
				b.BlockIdx = bi
				b.ctr = blockCounters{}
				kernel(b)
				smCycles[sm] += b.ctr.cycles
				blockStats[sm].add(&b.ctr)
			}
		}(sm)
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r) // kernel fault surfaces at the synchronous launch, like CUDA
	}

	var ls LaunchStats
	ls.Blocks = nBlocks
	for sm := 0; sm < sms; sm++ {
		if smCycles[sm] > ls.MaxSMCycles {
			ls.MaxSMCycles = smCycles[sm]
		}
		ls.TotalCycles += smCycles[sm]
		ls.Instructions += blockStats[sm].instructions
		ls.GlobalTxns += blockStats[sm].globalTxns
		ls.GlobalBytes += blockStats[sm].globalBytes
		ls.SharedAcc += blockStats[sm].sharedAcc
		ls.Conflicts += blockStats[sm].conflicts
		ls.Divergent += blockStats[sm].divergent
	}
	ls.SimSeconds = float64(ls.MaxSMCycles) / d.cfg.ClockHz

	d.mu.Lock()
	d.stats.KernelsLaunched++
	d.stats.BlocksExecuted += int64(nBlocks)
	d.stats.Instructions += ls.Instructions
	d.stats.GlobalTxns += ls.GlobalTxns
	d.stats.GlobalBytes += ls.GlobalBytes
	d.stats.SharedAccesses += ls.SharedAcc
	d.stats.BankConflicts += ls.Conflicts
	d.stats.DivergentLanes += ls.Divergent
	d.stats.SimSeconds += ls.SimSeconds
	d.mu.Unlock()
	return ls
}

type blockCounters struct {
	cycles       int64
	instructions int64
	globalTxns   int64
	globalBytes  int64
	sharedAcc    int64
	conflicts    int64
	divergent    int64
}

func (c *blockCounters) add(o *blockCounters) {
	c.instructions += o.instructions
	c.globalTxns += o.globalTxns
	c.globalBytes += o.globalBytes
	c.sharedAcc += o.sharedAcc
	c.conflicts += o.conflicts
	c.divergent += o.divergent
}
