package experiments

import (
	"fmt"
	"io"
	"time"

	"fastinvert/internal/encoding"
	"fastinvert/internal/reference"
)

// CompressionRow compares one postings codec over a whole collection's
// final postings lists (§II: "variable byte encoding, gamma encoding
// and Golomb compression" over docID gaps).
type CompressionRow struct {
	Codec          string
	BitsPerPosting float64
	EncodeMBps     float64 // postings encoded per second, in raw MB of (docID,tf) pairs
	DecodeMBps     float64
}

// CompressionComparison builds the reference postings for the
// ClueWeb-like collection and measures size and speed of the three
// codecs on the gap-transformed lists. Every codec's output is decoded
// and verified against the input.
func CompressionComparison(s Scale) ([]CompressionRow, error) {
	ref, err := reference.BuildFromSource(ClueWebSource(s))
	if err != nil {
		return nil, err
	}
	// Flatten postings into per-list gap+tf sequences.
	type list struct {
		gaps []uint64
		tfs  []uint64
		n    int
	}
	var lists []list
	totalPostings := 0
	for _, l := range ref.Lists {
		gl := list{n: l.Len()}
		prev := uint32(0)
		for i, d := range l.DocIDs {
			gl.gaps = append(gl.gaps, uint64(d-prev))
			gl.tfs = append(gl.tfs, uint64(l.TFs[i]))
			prev = d
		}
		lists = append(lists, gl)
		totalPostings += l.Len()
	}
	rawMB := float64(totalPostings*8) / (1 << 20)

	type codec struct {
		name   string
		encode func(gaps, tfs []uint64) ([]byte, int)
		decode func(buf []byte, n int) bool
	}
	codecs := []codec{
		{
			name: "varbyte",
			encode: func(gaps, tfs []uint64) ([]byte, int) {
				var out []byte
				for i := range gaps {
					out = encoding.PutUvarByte(out, gaps[i])
					out = encoding.PutUvarByte(out, tfs[i])
				}
				return out, len(out) * 8
			},
			decode: func(buf []byte, n int) bool {
				pos := 0
				for i := 0; i < 2*n; i++ {
					_, m := encoding.UvarByte(buf[pos:])
					if m <= 0 {
						return false
					}
					pos += m
				}
				return true
			},
		},
		{
			name: "gamma",
			encode: func(gaps, tfs []uint64) ([]byte, int) {
				w := encoding.NewBitWriter(nil)
				for i := range gaps {
					encoding.PutGamma(w, gaps[i]+1)
					encoding.PutGamma(w, tfs[i]+1)
				}
				bits := w.BitLen()
				return w.Bytes(), bits
			},
			decode: func(buf []byte, n int) bool {
				r := encoding.NewBitReader(buf)
				for i := 0; i < 2*n; i++ {
					if _, ok := encoding.Gamma(r); !ok {
						return false
					}
				}
				return true
			},
		},
	}
	// Golomb needs the per-list parameter; close over the doc count.
	totalDocs := uint64(ref.Docs)
	codecs = append(codecs, codec{
		name: "golomb",
		encode: func(gaps, tfs []uint64) ([]byte, int) {
			b := encoding.GolombParam(totalDocs, uint64(len(gaps)))
			w := encoding.NewBitWriter(nil)
			for i := range gaps {
				encoding.PutGolomb(w, gaps[i], b)
				encoding.PutGamma(w, tfs[i]+1)
			}
			bits := w.BitLen()
			return w.Bytes(), bits
		},
		decode: func(buf []byte, n int) bool {
			// Decode golomb with the same parameter reconstruction.
			return true // verified inside the encode pass below
		},
	})

	var rows []CompressionRow
	for _, c := range codecs {
		totalBits := 0
		t0 := time.Now()
		type enc struct {
			buf []byte
			n   int
		}
		encoded := make([]enc, len(lists))
		for i, l := range lists {
			buf, bits := c.encode(l.gaps, l.tfs)
			totalBits += bits
			encoded[i] = enc{buf, l.n}
		}
		encSec := time.Since(t0).Seconds()

		t0 = time.Now()
		for i, e := range encoded {
			if c.name == "golomb" {
				b := encoding.GolombParam(totalDocs, uint64(lists[i].n))
				r := encoding.NewBitReader(e.buf)
				for j := 0; j < e.n; j++ {
					g, ok := encoding.Golomb(r, b)
					if !ok || g != lists[i].gaps[j] {
						return nil, fmt.Errorf("compression: golomb round-trip failed")
					}
					tf, ok := encoding.Gamma(r)
					if !ok || tf-1 != lists[i].tfs[j] {
						return nil, fmt.Errorf("compression: golomb tf round-trip failed")
					}
				}
			} else if !c.decode(e.buf, e.n) {
				return nil, fmt.Errorf("compression: %s round-trip failed", c.name)
			}
		}
		decSec := time.Since(t0).Seconds()

		rows = append(rows, CompressionRow{
			Codec:          c.name,
			BitsPerPosting: float64(totalBits) / float64(totalPostings),
			EncodeMBps:     rawMB / encSec,
			DecodeMBps:     rawMB / decSec,
		})
	}
	return rows, nil
}

// FprintCompression renders the codec comparison.
func FprintCompression(w io.Writer, rows []CompressionRow) {
	fmt.Fprintln(w, "POSTINGS COMPRESSION (gap-transformed docIDs + tf, whole collection)")
	fmt.Fprintf(w, "%-10s %16s %12s %12s\n", "codec", "bits/posting", "enc MB/s", "dec MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %16.2f %12.1f %12.1f\n",
			r.Codec, r.BitsPerPosting, r.EncodeMBps, r.DecodeMBps)
	}
}
