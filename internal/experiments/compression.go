package experiments

import (
	"fmt"
	"io"
	"time"

	"fastinvert/internal/encoding"
	"fastinvert/internal/reference"
)

// CompressionRow compares one postings codec over a whole collection's
// final postings lists (§II names variable byte, gamma and Golomb; the
// codec registry adds bit-packed blocks and Elias-Fano).
type CompressionRow struct {
	Codec          string
	BitsPerPosting float64
	EncodeMBps     float64 // postings encoded per second, in raw MB of (docID,tf) pairs
	DecodeMBps     float64
}

// CompressionComparison builds the reference postings for the
// ClueWeb-like collection and measures size and speed of every
// registered codec on the real lists. Every codec's output is decoded
// and verified against the input.
func CompressionComparison(s Scale) ([]CompressionRow, error) {
	ref, err := reference.BuildFromSource(ClueWebSource(s))
	if err != nil {
		return nil, err
	}
	type list struct {
		docs []uint32
		tfs  []uint32
	}
	var lists []list
	totalPostings := 0
	for _, l := range ref.Lists {
		lists = append(lists, list{docs: l.DocIDs, tfs: l.TFs})
		totalPostings += l.Len()
	}
	rawMB := float64(totalPostings*8) / (1 << 20)

	var rows []CompressionRow
	for _, c := range encoding.Codecs() {
		totalBytes := 0
		t0 := time.Now()
		encoded := make([][]byte, len(lists))
		for i, l := range lists {
			buf, err := c.Encode(nil, l.docs, l.tfs, nil)
			if err != nil {
				return nil, fmt.Errorf("compression: %s encode: %w", c.Name(), err)
			}
			totalBytes += len(buf)
			encoded[i] = buf
		}
		encSec := time.Since(t0).Seconds()

		t0 = time.Now()
		for i, buf := range encoded {
			docs, tfs, _, err := c.Decode(buf, len(lists[i].docs), false)
			if err != nil {
				return nil, fmt.Errorf("compression: %s decode: %w", c.Name(), err)
			}
			for j := range docs {
				if docs[j] != lists[i].docs[j] || tfs[j] != lists[i].tfs[j] {
					return nil, fmt.Errorf("compression: %s round-trip failed", c.Name())
				}
			}
		}
		decSec := time.Since(t0).Seconds()

		rows = append(rows, CompressionRow{
			Codec:          c.Name(),
			BitsPerPosting: float64(totalBytes*8) / float64(totalPostings),
			EncodeMBps:     rawMB / encSec,
			DecodeMBps:     rawMB / decSec,
		})
	}
	return rows, nil
}

// FprintCompression renders the codec comparison.
func FprintCompression(w io.Writer, rows []CompressionRow) {
	fmt.Fprintln(w, "POSTINGS COMPRESSION (whole-collection postings lists, every registered codec)")
	fmt.Fprintf(w, "%-10s %16s %12s %12s\n", "codec", "bits/posting", "enc MB/s", "dec MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %16.2f %12.1f %12.1f\n",
			r.Codec, r.BitsPerPosting, r.EncodeMBps, r.DecodeMBps)
	}
}
