package experiments

import (
	"io"
	"strings"
	"testing"

	"fastinvert/internal/encoding"
)

// tinyScale keeps experiment tests fast; shape assertions that need
// more signal use testScale.
func tinyScale() Scale { return Scale{Files: 6, Factor: 0.5} }

func TestTableIIIShapes(t *testing.T) {
	rows, err := TableIII(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Documents <= 0 || r.Tokens <= 0 || r.Terms <= 0 {
			t.Errorf("%s: degenerate stats %+v", r.Name, r)
		}
		if r.Terms >= r.Tokens {
			t.Errorf("%s: terms >= tokens", r.Name)
		}
	}
	// ClueWeb-like is the compressed web crawl; Wikipedia-like is not
	// compressed (stored == plain).
	if rows[0].CompressedSize >= rows[0].UncompressedSize {
		t.Error("ClueWeb-like should compress")
	}
	if rows[1].CompressedSize != rows[1].UncompressedSize {
		t.Error("Wikipedia-like should be stored uncompressed")
	}
	var sb strings.Builder
	FprintTableIII(&sb, rows)
	if !strings.Contains(sb.String(), "TABLE III") {
		t.Error("rendering broken")
	}
}

// TestTableIVOrdering pins the paper's qualitative result: two CPU
// indexers beat one, and adding the GPUs improves on two CPUs.
func TestTableIVOrdering(t *testing.T) {
	if raceEnabled {
		t.Skip("measured-time orderings are unreliable under the race detector")
	}
	gpuOnly, oneCPU, twoCPU, hybrid, err := TableIVReports(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Compare pure indexing critical paths: the pipeline span hits
	// the parser-bound floor at tiny scale for every configuration.
	if twoCPU.IndexingSec >= oneCPU.IndexingSec {
		t.Errorf("2 CPU (%.4f) not faster than 1 CPU (%.4f)",
			twoCPU.IndexingSec, oneCPU.IndexingSec)
	}
	if hybrid.IndexingSec >= twoCPU.IndexingSec {
		t.Errorf("hybrid (%.4f) not faster than 2 CPU (%.4f)",
			hybrid.IndexingSec, twoCPU.IndexingSec)
	}
	if gpuOnly.IndexingSec <= 0 {
		t.Error("GPU-only run missing")
	}
	// §IV.B's superlinear observation: hybrid indexing throughput
	// exceeds the sum of the CPU-only and GPU-only throughputs.
	sum := 1/twoCPU.IndexingSec + 1/gpuOnly.IndexingSec
	if 1/hybrid.IndexingSec < sum*0.85 {
		t.Errorf("no superlinear effect: hybrid rate %.1f vs parts sum %.1f",
			1/hybrid.IndexingSec, sum)
	}
	rows, err := TableIV(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("TableIV rows = %d", len(rows))
	}
	var sb strings.Builder
	FprintTableIV(&sb, rows)
	if !strings.Contains(sb.String(), "TABLE IV") {
		t.Error("rendering broken")
	}
}

// TestTableVShape pins Table V's qualitative split: the GPU tail holds
// far more distinct terms and characters than the CPU head.
func TestTableVShape(t *testing.T) {
	r, err := TableV(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUTerms <= r.CPUTerms {
		t.Errorf("GPU terms %d <= CPU terms %d", r.GPUTerms, r.CPUTerms)
	}
	if r.CPUTokens == 0 || r.GPUTokens == 0 {
		t.Error("degenerate token split")
	}
	FprintTableV(io.Discard, r)
}

func TestTableVIRows(t *testing.T) {
	rows, err := TableVI(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalSec <= 0 || r.ThroughputMBps <= 0 {
			t.Errorf("%s: degenerate %+v", r.Name, r)
		}
		approxTotal := r.SamplingSec + r.IndexersSec + r.DictCombineSec + r.DictWriteSec
		if r.TotalSec < approxTotal*0.99 {
			t.Errorf("%s: total %.4f below component sum %.4f", r.Name, r.TotalSec, approxTotal)
		}
	}
	// Paper: ClueWeb with GPUs beats ClueWeb without. At tiny scale
	// both configurations hit the parser-bound pipeline floor, so the
	// robust signal is the pure indexing critical path; the total
	// must at least stay in the same ballpark.
	if rows[0].IndexingSec >= rows[1].IndexingSec {
		t.Errorf("GPU indexing path (%.4f) not below no-GPU (%.4f)",
			rows[0].IndexingSec, rows[1].IndexingSec)
	}
	if rows[0].ThroughputMBps < rows[1].ThroughputMBps*0.8 {
		t.Errorf("GPU total throughput (%.2f) regressed vs no-GPU (%.2f)",
			rows[0].ThroughputMBps, rows[1].ThroughputMBps)
	}
	FprintTableVI(io.Discard, rows)
}

func TestFig10Shape(t *testing.T) {
	pts, err := Fig10(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	// Parse-only throughput must grow with parsers early on (Fig. 10's
	// near-linear region).
	if pts[2].ParseOnly <= pts[0].ParseOnly {
		t.Errorf("parse-only not scaling: M=1 %.2f, M=3 %.2f",
			pts[0].ParseOnly, pts[2].ParseOnly)
	}
	// With GPUs, high parser counts must not collapse below the
	// CPU-only scenario (loose bound: at tiny scale both scenarios
	// are parser-bound and differ only by measurement noise).
	if pts[6].WithGPUs < pts[6].CPUOnly*0.8 {
		t.Errorf("M=7: GPUs made things worse (%.2f vs %.2f)",
			pts[6].WithGPUs, pts[6].CPUOnly)
	}
	FprintFig10(io.Discard, pts)
}

func TestFig11Shape(t *testing.T) {
	series, shiftAt, err := Fig11(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	n := len(series[0].Throughput)
	if n != tinyScale().Files+shiftAtFiles(tinyScale()) {
		t.Errorf("series length %d", n)
	}
	for _, s := range series {
		if len(s.Throughput) != n {
			t.Errorf("%s: ragged series", s.Name)
		}
		for i, v := range s.Throughput {
			if v <= 0 {
				t.Errorf("%s[%d] = %f", s.Name, i, v)
			}
		}
	}
	if shiftAt != tinyScale().Files {
		t.Errorf("shiftAt = %d", shiftAt)
	}
	FprintFig11(io.Discard, series, shiftAt)
}

func shiftAtFiles(s Scale) int {
	w := s.Files / 4
	if w < 1 {
		w = 1
	}
	return w
}

// TestFig12Shape pins the paper's headline in its scale-robust form:
// this system's per-core throughput exceeds both MapReduce baselines
// by a wide margin (the paper's single node beats a 99-node cluster,
// i.e. >20x per core).
func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	ours := rows[0].PerCoreMBps
	for _, r := range rows[2:] {
		if ours <= 2*r.PerCoreMBps {
			t.Errorf("ours per-core (%.3f) not well above %s (%.3f)",
				ours, r.Name, r.PerCoreMBps)
		}
	}
	FprintFig12(io.Discard, rows)
}

func TestAblationRegroupFaster(t *testing.T) {
	if raceEnabled {
		t.Skip("measured-time orderings are unreliable under the race detector")
	}
	a, err := AblationRegroup(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup() < 1.0 {
		t.Errorf("regrouping slowed indexing: %.2fx", a.Speedup())
	}
	FprintAblation(io.Discard, a)
}

func TestAblationStringCacheHelps(t *testing.T) {
	a, err := AblationStringCache(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Without the caches every warp comparison pays a scattered
	// arena fetch; the modeled speedup must be substantial.
	if a.Speedup() < 1.5 {
		t.Errorf("string-cache speedup only %.2fx", a.Speedup())
	}
	FprintAblation(io.Discard, a)
}

func TestAblationCoalescing(t *testing.T) {
	a, err := AblationCoalescing()
	if err != nil {
		t.Fatal(err)
	}
	// Scattered reads of 512 B cost 128 transactions vs 8: the
	// simulated speedup must be large.
	if a.Speedup() < 4 {
		t.Errorf("coalescing speedup only %.2fx", a.Speedup())
	}
}

func TestAblationTrieHeight(t *testing.T) {
	rows, err := AblationTrieHeight(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More height -> more, smaller collections (monotone counts and
	// decreasing top-collection dominance).
	for i := 1; i < 3; i++ {
		if rows[i].Collections <= rows[i-1].Collections {
			t.Errorf("height %d collections %d not above height %d's %d",
				rows[i].Height, rows[i].Collections, rows[i-1].Height, rows[i-1].Collections)
		}
		if rows[i].TopShare > rows[i-1].TopShare {
			t.Errorf("top share grew with height: %.3f -> %.3f",
				rows[i-1].TopShare, rows[i].TopShare)
		}
	}
	FprintTrieHeight(io.Discard, rows)
}

func TestAblationDecompressShape(t *testing.T) {
	rows, err := AblationDecompress(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At high parser counts scheme 2 (separate decompression) must not
	// be slower: holding the serialized file access through
	// decompression throttles the other parsers — the paper's reason
	// for choosing scheme 2.
	last := rows[6]
	if last.Scheme2Sec > last.Scheme1Sec*1.05 {
		t.Errorf("scheme2 (%.4f) worse than scheme1 (%.4f) at 7 parsers",
			last.Scheme2Sec, last.Scheme1Sec)
	}
	FprintDecompress(io.Discard, rows)
}

func TestCompressionComparisonShape(t *testing.T) {
	rows, err := CompressionComparison(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != int(encoding.NumCodecs) {
		t.Fatalf("rows = %d, want one per registered codec (%d)", len(rows), encoding.NumCodecs)
	}
	byName := map[string]CompressionRow{}
	for _, r := range rows {
		byName[r.Codec] = r
		if r.BitsPerPosting <= 0 || r.EncodeMBps <= 0 || r.DecodeMBps <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Codec, r)
		}
	}
	// The textbook ordering on Zipf postings: bit-aligned codecs beat
	// byte-aligned varbyte on size; varbyte wins on speed.
	if byName["gamma"].BitsPerPosting >= byName["varbyte"].BitsPerPosting {
		t.Errorf("gamma (%.2f bits) not smaller than varbyte (%.2f bits)",
			byName["gamma"].BitsPerPosting, byName["varbyte"].BitsPerPosting)
	}
	if byName["golomb"].BitsPerPosting >= byName["varbyte"].BitsPerPosting {
		t.Errorf("golomb (%.2f bits) not smaller than varbyte (%.2f bits)",
			byName["golomb"].BitsPerPosting, byName["varbyte"].BitsPerPosting)
	}
	if byName["varbyte"].EncodeMBps <= byName["gamma"].EncodeMBps {
		t.Errorf("varbyte encode (%.1f MB/s) not faster than gamma (%.1f MB/s)",
			byName["varbyte"].EncodeMBps, byName["gamma"].EncodeMBps)
	}
	// The new codecs must earn their place: at least one of bitpack /
	// eliasfano beats varbyte on whole-collection bits/posting.
	if byName["bitpack"].BitsPerPosting >= byName["varbyte"].BitsPerPosting &&
		byName["eliasfano"].BitsPerPosting >= byName["varbyte"].BitsPerPosting {
		t.Errorf("neither bitpack (%.2f bits) nor eliasfano (%.2f bits) beats varbyte (%.2f bits)",
			byName["bitpack"].BitsPerPosting, byName["eliasfano"].BitsPerPosting,
			byName["varbyte"].BitsPerPosting)
	}
	FprintCompression(io.Discard, rows)
}

// TestCodecBenchShape runs the codec ablation's size pass (the timed
// pass is skipped: testing.Benchmark pays a second per measurement)
// and pins the headline the committed BENCH_PR6.json must show: the
// new codecs beat varbyte on bytes/posting for at least one class.
func TestCodecBenchShape(t *testing.T) {
	doc, err := codecBenchRun(codecBenchClasses(true), false)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(codecBenchClasses(true)) * int(encoding.NumCodecs)
	if len(doc.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d (codecs x classes)", len(doc.Rows), wantRows)
	}
	bpp := map[string]map[string]float64{}
	for _, r := range doc.Rows {
		if r.BytesPerPosting <= 0 || r.CompressionRatio <= 0 {
			t.Errorf("%s/%s: degenerate row %+v", r.Codec, r.Class, r)
		}
		if bpp[r.Class] == nil {
			bpp[r.Class] = map[string]float64{}
		}
		bpp[r.Class][r.Codec] = r.BytesPerPosting
	}
	// The acceptance headline: bitpack wins the dense class and
	// Elias-Fano beats varbyte on the sparse class.
	if bpp["dense"]["bitpack"] >= bpp["dense"]["varbyte"] {
		t.Errorf("dense: bitpack (%.2f B) not below varbyte (%.2f B)",
			bpp["dense"]["bitpack"], bpp["dense"]["varbyte"])
	}
	if bpp["sparse"]["eliasfano"] >= bpp["sparse"]["varbyte"] {
		t.Errorf("sparse: eliasfano (%.2f B) not below varbyte (%.2f B)",
			bpp["sparse"]["eliasfano"], bpp["sparse"]["varbyte"])
	}
	for _, class := range doc.Classes {
		best, ok := doc.BestByClass[class]
		if !ok {
			t.Errorf("%s: no best codec recorded", class)
			continue
		}
		for codec, v := range bpp[class] {
			if v < bpp[class][best] {
				t.Errorf("%s: best %s (%.2f B) beaten by %s (%.2f B)",
					class, best, bpp[class][best], codec, v)
			}
		}
	}
	FprintCodecBench(io.Discard, doc)
}

func TestExtGPUSweepShape(t *testing.T) {
	pts, err := ExtGPUSweep(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// GPUs must shorten the indexing critical path (two GPUs split the
	// tail, a robust signal even at tiny noisy scales); further GPUs
	// must never lengthen it beyond noise.
	if pts[2].IndexingSec >= pts[0].IndexingSec {
		t.Errorf("2 GPUs (%.4f) not below 0 GPUs (%.4f)",
			pts[2].IndexingSec, pts[0].IndexingSec)
	}
	if pts[4].IndexingSec > pts[1].IndexingSec*1.3 {
		t.Errorf("4 GPUs (%.4f) much worse than 1 (%.4f)",
			pts[4].IndexingSec, pts[1].IndexingSec)
	}
	FprintGPUSweep(io.Discard, pts)
}

func TestExtDictionaryMemoryShape(t *testing.T) {
	rows, err := ExtDictionaryMemory(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	hybrid, naive, disk := rows[0].Bytes, rows[1].Bytes, rows[2].Bytes
	if hybrid <= 0 || naive <= 0 || disk <= 0 {
		t.Fatal("degenerate sizes")
	}
	// Front coding must crush both in-memory forms; the hybrid's
	// 512 B nodes trade some space for parallelism and cache lines,
	// so only sanity-bound it against naive.
	if disk >= naive || disk >= hybrid {
		t.Errorf("front-coded (%d) should be smallest (hybrid %d, naive %d)",
			disk, hybrid, naive)
	}
	if hybrid > naive*6 {
		t.Errorf("hybrid dictionary (%d) unreasonably larger than naive (%d)", hybrid, naive)
	}
	FprintDictMemory(io.Discard, rows)
}

func TestExtPositionalCostShape(t *testing.T) {
	rows, err := ExtPositionalCost(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	plain, positional := rows[0], rows[1]
	// Positions must grow the output; both arms must produce data.
	if positional.PostingsBytes <= plain.PostingsBytes {
		t.Errorf("positional output (%d) not larger than plain (%d)",
			positional.PostingsBytes, plain.PostingsBytes)
	}
	if plain.IndexingSec <= 0 || positional.IndexingSec <= 0 {
		t.Error("missing timings")
	}
	FprintPositionalCost(io.Discard, rows)
}

func TestExtTransferOverlapShape(t *testing.T) {
	rows, err := ExtTransferOverlap(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At a constrained bus (50 MB/s) overlap must pay substantially;
	// at the paper's 5.5 GB/s transfers are negligible and the gain
	// small. The gain must shrink as bandwidth grows.
	if rows[0].SpeedupPct < 10 {
		t.Errorf("constrained-bus overlap gain only %.1f%%", rows[0].SpeedupPct)
	}
	if rows[0].SpeedupPct <= rows[2].SpeedupPct {
		t.Errorf("gain should shrink with bandwidth: %.1f%% -> %.1f%%",
			rows[0].SpeedupPct, rows[2].SpeedupPct)
	}
	FprintTransferOverlap(io.Discard, rows)
}

func TestConcatSources(t *testing.T) {
	a := ClueWebSource(Scale{Files: 2, Factor: 0.5})
	b := WikipediaSource(Scale{Files: 3, Factor: 0.5})
	m := ConcatSources(a, b)
	if m.NumFiles() != 5 {
		t.Fatalf("NumFiles = %d", m.NumFiles())
	}
	if m.FileName(0) != a.FileName(0) || m.FileName(2) != b.FileName(0) {
		t.Error("file name routing broken")
	}
	if _, _, err := m.ReadFile(4); err != nil {
		t.Errorf("ReadFile(4): %v", err)
	}
	if _, _, err := m.ReadFile(5); err == nil {
		t.Error("out-of-range must fail")
	}
}
