package experiments

import (
	"fmt"
	"io"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/cpuindexer"
	"fastinvert/internal/parser"
	"fastinvert/internal/store"
	"fastinvert/internal/trie"
)

// Extension experiments beyond the paper's evaluation: the paper fixed
// N=2 GPUs ("we use a simple method of splitting the unpopular trie
// collections among the N GPUs") and described the dictionary's
// compactness qualitatively; these quantify both.

// GPUSweepPoint is one point of the GPU-count scaling extension.
type GPUSweepPoint struct {
	GPUs        int
	IndexingSec float64
	SpanSec     float64
}

// ExtGPUSweep scales the GPU count at the paper's 6-parser, 2-CPU
// operating point. Returns one point per GPU count 0..4.
func ExtGPUSweep(s Scale) ([]GPUSweepPoint, error) {
	src := ClueWebSource(s)
	var out []GPUSweepPoint
	for g := 0; g <= 4; g++ {
		rep, err := buildWith(src, 6, 2, g)
		if err != nil {
			return nil, err
		}
		out = append(out, GPUSweepPoint{
			GPUs:        g,
			IndexingSec: rep.IndexingSec,
			SpanSec:     rep.IndexersSpanSec,
		})
	}
	return out, nil
}

// FprintGPUSweep renders the sweep.
func FprintGPUSweep(w io.Writer, pts []GPUSweepPoint) {
	fmt.Fprintln(w, "EXTENSION: GPU COUNT SWEEP (6 parsers + 2 CPU indexers, modeled seconds)")
	fmt.Fprintf(w, "%6s %12s %12s\n", "GPUs", "indexing", "span")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %12.4f %12.4f\n", p.GPUs, p.IndexingSec, p.SpanSec)
	}
}

// PositionalCostRow compares plain and positional builds.
type PositionalCostRow struct {
	Mode          string
	IndexingSec   float64
	PostingsBytes int64
}

// ExtPositionalCost quantifies the price of positional postings — the
// overhead the paper waves at when comparing against Ivory's
// positional output (§IV.D: "positional postings lists ... will add
// some extra cost").
func ExtPositionalCost(s Scale) ([]PositionalCostRow, error) {
	src := ClueWebSource(s)
	var rows []PositionalCostRow
	for _, positional := range []bool{false, true} {
		cfg := EngineConfig(6, 2, 2)
		cfg.Positional = positional
		var best *core.Report
		for i := 0; i < Trials; i++ {
			eng, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			rep, err := eng.Build(src)
			if err != nil {
				return nil, err
			}
			if best == nil || rep.IndexingSec < best.IndexingSec {
				best = rep
			}
		}
		mode := "plain"
		if positional {
			mode = "positional"
		}
		rows = append(rows, PositionalCostRow{
			Mode:          mode,
			IndexingSec:   best.IndexingSec,
			PostingsBytes: best.PostingsBytes,
		})
	}
	return rows, nil
}

// FprintPositionalCost renders the comparison.
func FprintPositionalCost(w io.Writer, rows []PositionalCostRow) {
	fmt.Fprintln(w, "EXTENSION: POSITIONAL POSTINGS COST (6 parsers + 2 CPU + 2 GPU)")
	fmt.Fprintf(w, "%-12s %12s %14s\n", "mode", "indexing(s)", "postings(KB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12.4f %14.1f\n", r.Mode, r.IndexingSec, float64(r.PostingsBytes)/1024)
	}
}

// TransferOverlapRow is one PCIe-bandwidth point of the stream-overlap
// extension.
type TransferOverlapRow struct {
	PCIeGBps   float64
	SerialSec  float64 // transfer + kernel + copy-back in sequence
	OverlapSec float64 // input transfer hidden behind the kernel
	SpeedupPct float64
}

// ExtTransferOverlap quantifies §IV.B's observation that "the
// performance of multiple GPU indexers is limited by the time it takes
// to transfer the parsed input": a GPU-only configuration is timed
// with and without double-buffered transfer overlap across PCIe
// bandwidths from a constrained bus to the paper's PCIe 2.0 x16.
func ExtTransferOverlap(s Scale) ([]TransferOverlapRow, error) {
	src := ClueWebSource(s)
	var rows []TransferOverlapRow
	for _, gbps := range []float64{0.05, 0.5, 5.5} {
		var pair [2]float64
		for i, overlap := range []bool{false, true} {
			cfg := EngineConfig(6, 0, 2)
			cfg.GPU.PCIeBytesPerSec = gbps * 1e9
			cfg.OverlapGPUTransfers = overlap
			best := 0.0
			for tr := 0; tr < Trials; tr++ {
				eng, err := core.New(cfg)
				if err != nil {
					return nil, err
				}
				rep, err := eng.Build(src)
				if err != nil {
					return nil, err
				}
				if tr == 0 || rep.IndexingSec < best {
					best = rep.IndexingSec
				}
			}
			pair[i] = best
		}
		rows = append(rows, TransferOverlapRow{
			PCIeGBps:   gbps,
			SerialSec:  pair[0],
			OverlapSec: pair[1],
			SpeedupPct: (pair[0]/pair[1] - 1) * 100,
		})
	}
	return rows, nil
}

// FprintTransferOverlap renders the comparison.
func FprintTransferOverlap(w io.Writer, rows []TransferOverlapRow) {
	fmt.Fprintln(w, "EXTENSION: GPU TRANSFER OVERLAP (6 parsers + 2 GPU indexers)")
	fmt.Fprintf(w, "%12s %12s %12s %10s\n", "PCIe GB/s", "serial(s)", "overlap(s)", "gain %")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.2f %12.4f %12.4f %10.1f\n",
			r.PCIeGBps, r.SerialSec, r.OverlapSec, r.SpeedupPct)
	}
}

// DictMemoryRow quantifies one dictionary representation's footprint.
type DictMemoryRow struct {
	Name  string
	Bytes int64
}

// ExtDictionaryMemory compares the hybrid trie + cached-B-tree
// dictionary's in-memory footprint (nodes + stripped-string arenas)
// against a naive full-string hash dictionary, and against the
// front-coded on-disk form (§III.B's space argument: the trie absorbs
// shared prefixes, the caches inline short strings).
func ExtDictionaryMemory(s Scale) ([]DictMemoryRow, error) {
	src := ClueWebSource(s)
	p := parser.New(nil)
	ix := cpuindexer.New()
	var docBase uint32
	for f := 0; f < src.NumFiles(); f++ {
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return nil, err
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, err
		}
		blk := parser.NewBlock(0)
		docs := corpus.SplitDocs(plain)
		for d, doc := range docs {
			p.ParseDoc(uint32(d), doc, blk)
		}
		groups := make([]*parser.Group, 0, len(blk.Groups))
		for _, g := range blk.Groups {
			groups = append(groups, g)
		}
		if _, err := ix.IndexRun(groups, docBase); err != nil {
			return nil, err
		}
		ix.ResetRunPostings()
		docBase += uint32(len(docs))
	}

	hybrid := int64(ix.DictionaryMemory())

	// Naive dictionary: full term strings in a hash map. Charge the
	// string bytes plus Go's map/header overhead (~48 B per entry:
	// bucket share, string header, slot value).
	var naive int64
	var entries []store.DictEntry
	for _, coll := range ix.Collections() {
		ix.WalkDictionary(coll, func(stripped []byte, slot int32) bool {
			term := trie.Restore(coll, stripped)
			naive += int64(len(term)) + 48
			entries = append(entries, store.DictEntry{
				Term:       string(term),
				Collection: int32(coll),
				Slot:       slot,
			})
			return true
		})
	}
	store.SortDictEntries(entries)
	frontCoded := int64(store.FrontCodedSize(entries))

	return []DictMemoryRow{
		{"hybrid trie + cached B-trees (in-memory)", hybrid},
		{"naive full-string hash map (in-memory)", naive},
		{"front-coded dictionary file (on-disk)", frontCoded},
	}, nil
}

// FprintDictMemory renders the comparison.
func FprintDictMemory(w io.Writer, rows []DictMemoryRow) {
	fmt.Fprintln(w, "EXTENSION: DICTIONARY MEMORY FOOTPRINT")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-44s %10.2f KB\n", r.Name, float64(r.Bytes)/1024)
	}
}
