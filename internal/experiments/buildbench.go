package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/cpuindexer"
	"fastinvert/internal/parser"
	"fastinvert/internal/store"
)

// The build benchmark ("benchrunner -buildbench") is the perf gate for
// the construction hot path: it measures ns/op, allocs/op and MB/s for
// the tokenizer, the parser, the CPU indexer inner loop, the
// end-to-end pipelined build and the post-processing merge, and emits
// the machine-readable BENCH_PR5.json document that CI compares
// against. Micro numbers use testing.Benchmark so the methodology is
// identical to `go test -bench`.

// BuildBenchMetric is one benchmark's result.
type BuildBenchMetric struct {
	N               int     `json:"n"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	AllocBytesPerOp int64   `json:"alloc_bytes_per_op"`
	MBPerSec        float64 `json:"mb_per_s,omitempty"`
}

func metricOf(r testing.BenchmarkResult) BuildBenchMetric {
	m := BuildBenchMetric{
		N:               r.N,
		NsPerOp:         r.NsPerOp(),
		AllocsPerOp:     r.AllocsPerOp(),
		AllocBytesPerOp: r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		m.MBPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / (1 << 20)
	}
	return m
}

// BuildBenchDoc is the top-level BENCH_PR5.json document. Benchmarks
// holds the run's own numbers; Baseline carries the pre-optimization
// reference the deltas are computed against (recorded once, then kept
// in the committed file); QuickReference is the quick-mode end-to-end
// number CI's bench-smoke job compares a fresh quick run against.
type BuildBenchDoc struct {
	Mode            string                      `json:"mode"` // "full" or "quick"
	Files           int                         `json:"files"`
	ScaleFactor     float64                     `json:"scale_factor"`
	GOMAXPROCS      int                         `json:"gomaxprocs"`
	GoVersion       string                      `json:"go_version"`
	Benchmarks      map[string]BuildBenchMetric `json:"benchmarks"`
	QuickReference  *BuildBenchMetric           `json:"quick_reference,omitempty"`
	Baseline        map[string]BuildBenchMetric `json:"baseline,omitempty"`
	DeltaVsBaseline map[string]string           `json:"delta_vs_baseline,omitempty"`
}

// buildBenchScale picks the corpus sizes: quick mode is CI-friendly
// (seconds), full mode is the committed reference.
func buildBenchScale(quick bool) Scale {
	if quick {
		return Scale{Files: 2, Factor: 0.25}
	}
	return Scale{Files: 8, Factor: 0.5}
}

// benchCorpus freezes one generated container file so the micro
// benchmarks run over fixed bytes with no generation cost in the loop.
func benchCorpus(s Scale) (plain []byte, docs [][]byte) {
	gen := corpus.NewGenerator(corpus.ClueWeb09(s.Factor))
	plain = gen.GeneratePlain(0)
	docs = corpus.SplitDocs(plain)
	return plain, docs
}

// frozenSource serves pre-materialized stored bytes, keeping corpus
// generation out of the measured end-to-end build.
type frozenSource struct {
	names []string
	files [][]byte
	gz    bool
}

func freezeSource(src corpus.Source) (*frozenSource, error) {
	fs := &frozenSource{}
	for i := 0; i < src.NumFiles(); i++ {
		stored, gz, err := src.ReadFile(i)
		if err != nil {
			return nil, err
		}
		fs.names = append(fs.names, src.FileName(i))
		fs.files = append(fs.files, stored)
		fs.gz = gz
	}
	return fs, nil
}

func (s *frozenSource) NumFiles() int         { return len(s.files) }
func (s *frozenSource) FileName(i int) string { return s.names[i] }
func (s *frozenSource) ReadFile(i int) ([]byte, bool, error) {
	if i < 0 || i >= len(s.files) {
		return nil, false, fmt.Errorf("frozen source: file %d out of range", i)
	}
	return s.files[i], s.gz, nil
}

func benchTokenizer(plain []byte) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(plain)))
		b.ReportAllocs()
		var tok parser.Tokenizer
		for i := 0; i < b.N; i++ {
			off := 0
			for {
				_, next, ok := tok.Next(plain, off)
				if !ok {
					break
				}
				off = next
			}
		}
	})
}

func benchParser(plain []byte, docs [][]byte) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(plain)))
		b.ReportAllocs()
		p := parser.New(nil)
		pool := parser.NewBlockPool()
		for i := 0; i < b.N; i++ {
			blk := pool.Get(0)
			for d, doc := range docs {
				p.ParseDoc(uint32(d), doc, blk)
			}
			pool.Put(blk)
		}
	})
}

func benchIndexRun(plain []byte, docs [][]byte) testing.BenchmarkResult {
	p := parser.New(nil)
	blk := parser.NewBlock(0)
	for d, doc := range docs {
		p.ParseDoc(uint32(d), doc, blk)
	}
	groups := make([]*parser.Group, 0, len(blk.Groups))
	for _, g := range blk.Groups {
		groups = append(groups, g)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(plain)))
		b.ReportAllocs()
		ix := cpuindexer.New()
		for i := 0; i < b.N; i++ {
			if _, err := ix.IndexRun(groups, 0); err != nil {
				b.Fatal(err)
			}
			ix.ResetRunPostings()
		}
	})
}

func benchBuildE2E(src corpus.Source, tmpParent string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dir := filepath.Join(tmpParent, fmt.Sprintf("e2e%d", i))
			cfg := EngineConfig(6, 2, 2)
			cfg.OutDir = dir
			eng, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := eng.BuildConcurrent(src)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(rep.UncompressedBytes)
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})
}

func benchMerge(src corpus.Source, tmpParent string) (testing.BenchmarkResult, error) {
	dir := filepath.Join(tmpParent, "mergesrc")
	cfg := EngineConfig(6, 2, 2)
	cfg.OutDir = dir
	eng, err := core.New(cfg)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	if _, err := eng.BuildConcurrent(src); err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			os.Remove(filepath.Join(dir, "merged.post"))
			os.Remove(filepath.Join(dir, "merged.json"))
			r, err := store.OpenIndexWith(dir, store.ReaderOptions{CacheBytes: 1})
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			b.StartTimer()
			ms, err := r.Merge()
			b.StopTimer()
			r.Close()
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			b.SetBytes(ms.Bytes)
			b.StartTimer()
		}
	})
	return res, benchErr
}

// BuildBenchRun executes the build benchmark suite. In full mode it
// additionally runs a quick-mode end-to-end pass whose number becomes
// the committed QuickReference that CI gates against.
func BuildBenchRun(quick bool) (*BuildBenchDoc, error) {
	s := buildBenchScale(quick)
	doc := &BuildBenchDoc{
		Mode:        "full",
		Files:       s.Files,
		ScaleFactor: s.Factor,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Benchmarks:  map[string]BuildBenchMetric{},
	}
	if quick {
		doc.Mode = "quick"
	}

	plain, docs := benchCorpus(s)
	doc.Benchmarks["tokenizer"] = metricOf(benchTokenizer(plain))
	doc.Benchmarks["parser"] = metricOf(benchParser(plain, docs))
	doc.Benchmarks["index_run"] = metricOf(benchIndexRun(plain, docs))

	tmpParent, err := os.MkdirTemp("", "buildbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpParent)

	src, err := freezeSource(ClueWebSource(s))
	if err != nil {
		return nil, err
	}
	doc.Benchmarks["build_e2e"] = metricOf(benchBuildE2E(src, tmpParent))
	mr, err := benchMerge(src, tmpParent)
	if err != nil {
		return nil, err
	}
	doc.Benchmarks["merge"] = metricOf(mr)

	if !quick {
		qs := buildBenchScale(true)
		qsrc, err := freezeSource(ClueWebSource(qs))
		if err != nil {
			return nil, err
		}
		qm := metricOf(benchBuildE2E(qsrc, tmpParent))
		doc.QuickReference = &qm
	}
	return doc, nil
}

// EmbedBaseline copies a previous run's benchmarks into doc.Baseline
// and computes the per-benchmark deltas. The previous run may itself
// carry a baseline (re-running the suite keeps the original pre-PR
// reference rather than resetting it).
func (doc *BuildBenchDoc) EmbedBaseline(prev *BuildBenchDoc) {
	base := prev.Benchmarks
	if len(prev.Baseline) > 0 {
		base = prev.Baseline
	}
	doc.Baseline = base
	doc.DeltaVsBaseline = map[string]string{}
	for name, cur := range doc.Benchmarks {
		b, ok := base[name]
		if !ok {
			continue
		}
		var allocs, mbps string
		if b.AllocsPerOp > 0 {
			allocs = fmt.Sprintf("allocs %+.1f%%",
				100*(float64(cur.AllocsPerOp)-float64(b.AllocsPerOp))/float64(b.AllocsPerOp))
		}
		if b.MBPerSec > 0 && cur.MBPerSec > 0 {
			mbps = fmt.Sprintf("throughput %+.1f%%", 100*(cur.MBPerSec-b.MBPerSec)/b.MBPerSec)
		}
		switch {
		case allocs != "" && mbps != "":
			doc.DeltaVsBaseline[name] = allocs + ", " + mbps
		case allocs != "":
			doc.DeltaVsBaseline[name] = allocs
		case mbps != "":
			doc.DeltaVsBaseline[name] = mbps
		}
	}
}

// ReadBuildBenchDoc loads a committed BENCH_*.json document.
func ReadBuildBenchDoc(path string) (*BuildBenchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BuildBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("buildbench: %s: %w", path, err)
	}
	return &doc, nil
}

// WriteBuildBenchDoc writes the document as indented JSON.
func WriteBuildBenchDoc(w io.Writer, doc *BuildBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// CompareBuildBench gates a fresh quick run against the committed
// document's quick reference: it returns an error when end-to-end
// build throughput dropped by more than tolerance (e.g. 0.2 = 20%), or
// when allocations per op grew by more than allocTolerance (e.g. 0.3 =
// 30%; <=0 skips the allocation gate). Allocation counts are far more
// stable than wall-clock throughput on noisy shared runners, so the
// alloc gate catches churn regressions the throughput gate lets slide.
// Used by CI's bench-smoke job to make hot-path regressions visible on
// every PR.
func CompareBuildBench(committed *BuildBenchDoc, current *BuildBenchDoc, tolerance, allocTolerance float64) error {
	ref := committed.QuickReference
	if ref == nil {
		if m, ok := committed.Benchmarks["build_e2e"]; ok && committed.Mode == "quick" {
			ref = &m
		}
	}
	if ref == nil || ref.MBPerSec <= 0 {
		return fmt.Errorf("buildbench: committed document carries no quick end-to-end reference")
	}
	cur, ok := current.Benchmarks["build_e2e"]
	if !ok || cur.MBPerSec <= 0 {
		return fmt.Errorf("buildbench: current run carries no end-to-end result")
	}
	floor := ref.MBPerSec * (1 - tolerance)
	if cur.MBPerSec < floor {
		return fmt.Errorf("buildbench: end-to-end build throughput %.2f MB/s is below %.2f MB/s (committed %.2f MB/s - %.0f%%)",
			cur.MBPerSec, floor, ref.MBPerSec, tolerance*100)
	}
	if allocTolerance > 0 && ref.AllocsPerOp > 0 && cur.AllocsPerOp > 0 {
		ceil := float64(ref.AllocsPerOp) * (1 + allocTolerance)
		if float64(cur.AllocsPerOp) > ceil {
			return fmt.Errorf("buildbench: end-to-end build allocations %d/op exceed %.0f/op (committed %d/op + %.0f%%)",
				cur.AllocsPerOp, ceil, ref.AllocsPerOp, allocTolerance*100)
		}
	}
	return nil
}
