package experiments

import (
	"fmt"
	"io"

	"fastinvert/internal/baselines"
	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/pipesim"
)

// Fig10Point is one (parser count, scenario) sample of Fig. 10.
type Fig10Point struct {
	Parsers int
	// Throughputs in MB/s over uncompressed bytes for the three
	// scenarios: (a) M parsers + (8-M) CPU indexers, (b) the same
	// plus 2 GPU indexers, (c) parsers only.
	CPUOnly   float64
	WithGPUs  float64
	ParseOnly float64
}

// Fig10 sweeps the parser count from 1 to 7 under the paper's three
// scenarios.
func Fig10(s Scale) ([]Fig10Point, error) {
	src := ClueWebSource(s)
	var out []Fig10Point
	for m := 1; m <= 7; m++ {
		pt := Fig10Point{Parsers: m}
		rep, err := buildWith(src, m, 8-m, 0)
		if err != nil {
			return nil, err
		}
		pt.CPUOnly = rep.ThroughputMBps
		rep, err = buildWith(src, m, 8-m, 2)
		if err != nil {
			return nil, err
		}
		pt.WithGPUs = rep.ThroughputMBps
		eng, err := core.New(EngineConfig(m, 1, 0))
		if err != nil {
			return nil, err
		}
		po, err := eng.ParseOnly(src)
		if err != nil {
			return nil, err
		}
		pt.ParseOnly = po.ThroughputMBps
		out = append(out, pt)
	}
	return out, nil
}

// FprintFig10 renders the Fig. 10 series.
func FprintFig10(w io.Writer, pts []Fig10Point) {
	fmt.Fprintln(w, "FIGURE 10. THROUGHPUT vs NUMBER OF PARALLEL PARSERS (MB/s, modeled)")
	fmt.Fprintf(w, "%8s %18s %18s %14s\n", "Parsers", "M + (8-M) CPU idx", "M + (8-M) + 2GPU", "Parsers only")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %18.2f %18.2f %14.2f\n", p.Parsers, p.CPUOnly, p.WithGPUs, p.ParseOnly)
	}
}

// Fig11Series is the per-file indexing throughput of one scenario.
type Fig11Series struct {
	Name       string
	Throughput []float64 // MB/s per file index
}

// Fig11 tracks per-file indexing throughput under scenarios (ii) one
// CPU indexer, (iii) two CPU indexers, (iv) two CPU + two GPU. The
// collection is ClueWeb-like with a Wikipedia-like tail appended,
// reproducing the paper's distribution shift at the last file indices.
func Fig11(s Scale) ([]Fig11Series, int, error) {
	cwFiles := s.Files
	wikiFiles := s.Files / 4
	if wikiFiles < 1 {
		wikiFiles = 1
	}
	src := ConcatSources(
		ClueWebSource(Scale{Files: cwFiles, Factor: s.Factor}),
		WikipediaSource(Scale{Files: wikiFiles, Factor: s.Factor}),
	)
	configs := []struct {
		name     string
		cpu, gpu int
	}{
		{"(ii) 1 CPU indexer", 1, 0},
		{"(iii) 2 CPU indexers", 2, 0},
		{"(iv) 2 CPU + 2 GPU", 2, 2},
	}
	var out []Fig11Series
	for _, c := range configs {
		rep, err := buildWith(src, 6, c.cpu, c.gpu)
		if err != nil {
			return nil, 0, err
		}
		ser := Fig11Series{Name: c.name}
		for _, f := range rep.PerFile {
			ser.Throughput = append(ser.Throughput, f.ThroughputMBps)
		}
		out = append(out, ser)
	}
	return out, cwFiles, nil
}

// FprintFig11 renders the per-file series; shiftAt marks the first
// Wikipedia-like file.
func FprintFig11(w io.Writer, series []Fig11Series, shiftAt int) {
	fmt.Fprintln(w, "FIGURE 11. PER-FILE INDEXING THROUGHPUT (MB/s, modeled)")
	fmt.Fprintf(w, "%6s", "file")
	for _, s := range series {
		fmt.Fprintf(w, " %22s", s.Name)
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return
	}
	for i := range series[0].Throughput {
		marker := " "
		if i == shiftAt {
			marker = "*" // distribution shift (paper's Wikipedia tail)
		}
		fmt.Fprintf(w, "%5d%s", i, marker)
		for _, s := range series {
			fmt.Fprintf(w, " %22.2f", s.Throughput[i])
		}
		fmt.Fprintln(w)
	}
}

// Fig12Row is one system's throughput in the cross-system comparison.
type Fig12Row struct {
	Name           string
	Platform       string
	Cores          int
	ThroughputMBps float64
	PerCoreMBps    float64
}

// Fig12 compares this system (with and without GPUs) against the
// Ivory MapReduce and Single-Pass MapReduce baselines. The baselines'
// measured map/reduce durations are scheduled onto their papers'
// clusters (Table VII): Ivory on 99 nodes x 2 cores, SP-MR on 8 nodes
// x 3 usable cores, both with ~1 Gb Ethernet per node of aggregate
// shuffle bandwidth.
func Fig12(s Scale) ([]Fig12Row, error) {
	src := ClueWebSource(s)
	var rows []Fig12Row

	st, err := corpus.ComputeStats(src)
	if err != nil {
		return nil, err
	}
	bytes := st.UncompressedSize

	add := func(name, platform string, cores int, sec float64) {
		t := pipesim.Throughput(bytes, sec)
		rows = append(rows, Fig12Row{name, platform, cores, t, t / float64(cores)})
	}

	rep, err := buildWith(src, 6, 2, 2)
	if err != nil {
		return nil, err
	}
	add("This system (2 CPU + 2 GPU)", "1 node, 8 cores + 2 GPUs", 8, rep.TotalSec)

	rep, err = buildWith(src, 6, 2, 0)
	if err != nil {
		return nil, err
	}
	add("This system (no GPUs)", "1 node, 8 cores", 8, rep.TotalSec)

	ivory, err := baselines.IvoryMR(src, 8)
	if err != nil {
		return nil, err
	}
	add("Ivory MapReduce", "99 nodes, 198 cores", 198,
		ivory.Stats.ModelMakespan(baselines.ClusterModel{
			MapWorkers: 198, ReduceWorkers: 198,
			ShuffleBytesPerSec: 99 * 60e6,
			TaskOverheadSec:    1.0,
		}))

	sp, err := baselines.SinglePassMR(src, 8)
	if err != nil {
		return nil, err
	}
	add("Single-Pass MapReduce", "8 nodes, 24 cores", 24,
		sp.Stats.ModelMakespan(baselines.ClusterModel{
			MapWorkers: 24, ReduceWorkers: 24,
			ShuffleBytesPerSec: 8 * 60e6,
			TaskOverheadSec:    1.0,
		}))
	return rows, nil
}

// FprintFig12 renders the comparison. The cluster model covers only
// compute and shuffle (no HDFS I/O, job startup, or stragglers), so at
// synthetic scale the absolute cluster numbers flatter the baselines;
// the per-core column is the scale-robust comparison and carries the
// paper's conclusion.
func FprintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintln(w, "FIGURE 12. COMPARISON TO MAPREDUCE IMPLEMENTATIONS (modeled)")
	fmt.Fprintf(w, "%-30s %-28s %10s %14s\n", "System", "Platform", "MB/s", "MB/s per core")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %-28s %10.2f %14.3f\n", r.Name, r.Platform, r.ThroughputMBps, r.PerCoreMBps)
	}
}
