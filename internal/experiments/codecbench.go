package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"fastinvert/internal/encoding"
)

// The codec benchmark ("benchrunner -codecbench") is the compression
// ablation behind the pluggable codec registry: for every registered
// codec and every list class it measures bytes per posting, the
// compression ratio against the raw 8-byte (docID, tf) pair, and
// encode/decode speed. The classes mirror what the self-tuning
// selector distinguishes: tiny lists it leaves on varbyte, dense
// low-gap lists it bit-packs, and sparse high-gap lists it hands to
// Elias-Fano. Micro numbers use testing.Benchmark so the methodology
// matches `go test -bench`.

// CodecBenchRow is one (codec, list class) measurement.
type CodecBenchRow struct {
	Codec            string  `json:"codec"`
	Class            string  `json:"class"`
	Lists            int     `json:"lists"`
	Postings         int     `json:"postings"`
	BytesPerPosting  float64 `json:"bytes_per_posting"`
	CompressionRatio float64 `json:"compression_ratio"` // raw 8 B/posting over encoded bytes
	EncodeNsPerPost  float64 `json:"encode_ns_per_posting"`
	DecodeNsPerPost  float64 `json:"decode_ns_per_posting"`
	DecodeMBps       float64 `json:"decode_mb_per_s"` // raw (docID,tf) MB decoded per second
}

// CodecBenchDoc is the top-level BENCH_PR6.json document.
type CodecBenchDoc struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	GoVersion  string          `json:"go_version"`
	Classes    []string        `json:"classes"`
	Rows       []CodecBenchRow `json:"rows"`
	// BestByClass maps each class to the codec with the fewest bytes
	// per posting, matching what the auto selector should converge to.
	BestByClass map[string]string `json:"best_by_class"`
}

// codecBenchClass is one synthetic list population with a fixed gap
// and length profile.
type codecBenchClass struct {
	name     string
	lists    int
	listLen  int
	gapRange int // docID gaps drawn uniformly from [1, gapRange]
	tfRange  int // term frequencies drawn uniformly from [1, tfRange]
}

// codecBenchClasses are the list populations, chosen to straddle the
// selector's decision boundaries (length floor at 32, density cut at
// mean gap 8).
func codecBenchClasses(quick bool) []codecBenchClass {
	scale := 1
	if quick {
		scale = 4
	}
	return []codecBenchClass{
		{name: "tiny", lists: 2048 / scale, listLen: 8, gapRange: 1 << 16, tfRange: 3},
		{name: "dense", lists: 128 / scale, listLen: 4096, gapRange: 3, tfRange: 4},
		{name: "medium", lists: 256 / scale, listLen: 1024, gapRange: 256, tfRange: 6},
		{name: "sparse", lists: 128 / scale, listLen: 4096, gapRange: 1 << 16, tfRange: 2},
	}
}

type codecBenchList struct {
	docs []uint32
	tfs  []uint32
}

func genCodecBenchLists(cl codecBenchClass, rng *rand.Rand) []codecBenchList {
	lists := make([]codecBenchList, cl.lists)
	for i := range lists {
		docs := make([]uint32, cl.listLen)
		tfs := make([]uint32, cl.listLen)
		id := uint32(0)
		for j := range docs {
			id += 1 + uint32(rng.Intn(cl.gapRange))
			docs[j] = id
			tfs[j] = 1 + uint32(rng.Intn(cl.tfRange))
		}
		lists[i] = codecBenchList{docs: docs, tfs: tfs}
	}
	return lists
}

// CodecBenchRun measures every registered codec over every list class.
// Quick mode shrinks the populations for CI.
func CodecBenchRun(quick bool) (*CodecBenchDoc, error) {
	return codecBenchRun(codecBenchClasses(quick), true)
}

// codecBenchRun does the work; measureSpeed false skips the timed
// encode/decode passes (tests assert the size columns without paying
// testing.Benchmark's per-measurement second).
func codecBenchRun(classes []codecBenchClass, measureSpeed bool) (*CodecBenchDoc, error) {
	doc := &CodecBenchDoc{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		BestByClass: make(map[string]string),
	}
	for _, cl := range classes {
		doc.Classes = append(doc.Classes, cl.name)
		lists := genCodecBenchLists(cl, rand.New(rand.NewSource(0x1F6)))
		postings := cl.lists * cl.listLen
		rawBytes := int64(postings) * 8

		bestCodec, bestBpp := "", 0.0
		for _, c := range encoding.Codecs() {
			// Size pass, with a round-trip check so the numbers can
			// never come from a codec that corrupts its input.
			totalBytes := 0
			encoded := make([][]byte, len(lists))
			for i, l := range lists {
				buf, err := c.Encode(nil, l.docs, l.tfs, nil)
				if err != nil {
					return nil, fmt.Errorf("codecbench: %s/%s encode: %w", c.Name(), cl.name, err)
				}
				docs, tfs, _, err := c.Decode(buf, len(l.docs), false)
				if err != nil {
					return nil, fmt.Errorf("codecbench: %s/%s decode: %w", c.Name(), cl.name, err)
				}
				for j := range docs {
					if docs[j] != l.docs[j] || tfs[j] != l.tfs[j] {
						return nil, fmt.Errorf("codecbench: %s/%s round-trip failed", c.Name(), cl.name)
					}
				}
				totalBytes += len(buf)
				encoded[i] = buf
			}

			row := CodecBenchRow{
				Codec:            c.Name(),
				Class:            cl.name,
				Lists:            cl.lists,
				Postings:         postings,
				BytesPerPosting:  float64(totalBytes) / float64(postings),
				CompressionRatio: float64(rawBytes) / float64(totalBytes),
			}
			if measureSpeed {
				encRes := testing.Benchmark(func(b *testing.B) {
					b.SetBytes(rawBytes)
					var dst []byte
					for i := 0; i < b.N; i++ {
						for _, l := range lists {
							dst, _ = c.Encode(dst[:0], l.docs, l.tfs, nil)
						}
					}
				})
				decRes := testing.Benchmark(func(b *testing.B) {
					b.SetBytes(rawBytes)
					for i := 0; i < b.N; i++ {
						for j, buf := range encoded {
							if _, _, _, err := c.Decode(buf, len(lists[j].docs), false); err != nil {
								b.Fatal(err)
							}
						}
					}
				})
				row.EncodeNsPerPost = float64(encRes.NsPerOp()) / float64(postings)
				row.DecodeNsPerPost = float64(decRes.NsPerOp()) / float64(postings)
				if decRes.T > 0 {
					row.DecodeMBps = float64(rawBytes) * float64(decRes.N) / decRes.T.Seconds() / (1 << 20)
				}
			}
			doc.Rows = append(doc.Rows, row)
			if bestCodec == "" || row.BytesPerPosting < bestBpp {
				bestCodec, bestBpp = c.Name(), row.BytesPerPosting
			}
		}
		doc.BestByClass[cl.name] = bestCodec
	}
	return doc, nil
}

// WriteCodecBenchDoc writes the document as indented JSON.
func WriteCodecBenchDoc(w io.Writer, doc *CodecBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// FprintCodecBench renders the ablation as a per-class table.
func FprintCodecBench(w io.Writer, doc *CodecBenchDoc) {
	fmt.Fprintln(w, "CODEC ABLATION (bytes/posting, ratio vs raw 8 B, decode speed per codec and list class)")
	for _, class := range doc.Classes {
		fmt.Fprintf(w, "class %-8s %12s %8s %10s %10s %10s\n",
			class, "B/posting", "ratio", "enc ns/p", "dec ns/p", "dec MB/s")
		rows := make([]CodecBenchRow, 0, len(doc.Rows))
		for _, r := range doc.Rows {
			if r.Class == class {
				rows = append(rows, r)
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].BytesPerPosting < rows[j].BytesPerPosting })
		for _, r := range rows {
			best := " "
			if doc.BestByClass[class] == r.Codec {
				best = "*"
			}
			fmt.Fprintf(w, "  %s %-10s %10.2f %8.2fx %10.2f %10.2f %10.1f\n",
				best, r.Codec, r.BytesPerPosting, r.CompressionRatio,
				r.EncodeNsPerPost, r.DecodeNsPerPost, r.DecodeMBps)
		}
	}
}
