package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/search"
	"fastinvert/internal/store"
)

// The rank benchmark ("benchrunner -rankbench") is the perf gate for
// block-max top-k retrieval: it measures the exhaustive scorer against
// MaxScore and Block-Max-WAND over a merged Zipf corpus whose head
// lists are genuinely blocked, reports skipped/decoded block counters
// proving the pruning is active, re-measures the warm-dictionary
// IndexRun microbenchmark, and emits the BENCH_PR10.json document CI
// compares against. Every evaluator result is checked for exact
// agreement with the exhaustive scorer before timing begins.

// RankBenchEntry is one (evaluator, k) measurement.
type RankBenchEntry struct {
	BuildBenchMetric
	SpeedupVsExhaustive   float64 `json:"speedup_vs_exhaustive,omitempty"`
	BlocksDecodedPerQuery float64 `json:"blocks_decoded_per_query,omitempty"`
	BlocksSkippedPerQuery float64 `json:"blocks_skipped_per_query,omitempty"`
}

// RankBenchDoc is the top-level BENCH_PR10.json document.
type RankBenchDoc struct {
	Mode       string                    `json:"mode"` // "full" or "quick"
	Docs       int64                     `json:"docs"`
	Terms      int                       `json:"terms"`
	Queries    int                       `json:"queries"`
	GOMAXPROCS int                       `json:"gomaxprocs"`
	GoVersion  string                    `json:"go_version"`
	TopK       map[string]RankBenchEntry `json:"topk"` // "<mode>_k<k>"

	// IndexRun re-measures the warm-dictionary CPU indexing
	// microbenchmark (the index_run regression BENCH_PR5.json recorded);
	// IndexRunBaseline/IndexRunDelta carry the comparison against a
	// committed BENCH document passed via -baseline.
	IndexRun         *BuildBenchMetric `json:"index_run,omitempty"`
	IndexRunBaseline *BuildBenchMetric `json:"index_run_baseline,omitempty"`
	IndexRunDelta    string            `json:"index_run_delta,omitempty"`
}

// rankBenchScale picks corpus sizes: long Zipf-head lists need enough
// documents that blocking (>= 256 postings) kicks in well past one
// block per list.
func rankBenchScale(quick bool) (files int, p corpus.Profile) {
	p = corpus.ClueWeb09(1)
	if quick {
		p.VocabSize = 2000
		p.DocsPerFile = 500
		p.MeanDocTokens = 120
		return 10, p
	}
	p.VocabSize = 8000
	p.DocsPerFile = 400
	p.MeanDocTokens = 150
	return 30, p
}

// rankQuerySet builds the long-list query mix: every query pairs a
// Zipf-head term (a long, heavily blocked list) with a selective
// companion. The companions are chosen by document frequency, not
// rank: df must exceed k so theta fills from companion-bearing
// documents (whose scores dwarf the head term's near-zero idf), yet
// stay under numDocs/128 so consecutive companion postings usually sit
// more than one 128-posting head block apart — the regime where the
// evaluators leap whole undecoded blocks between candidates. That is
// the workload block-max pruning exists for; pure head-only queries
// must visit every block of the only list and are covered by the
// exhaustive baseline instead.
func rankQuerySet(s *search.Searcher, idx *store.IndexReader, numDocs int64) ([][]string, error) {
	type tdf struct {
		term string
		df   int
	}
	var cands []tdf
	for _, e := range idx.Dictionary() {
		if norm, stop := s.Normalize(e.Term); stop || norm != e.Term {
			continue
		}
		l, err := idx.Postings(e.Term)
		if err != nil {
			return nil, err
		}
		cands = append(cands, tdf{e.Term, l.Len()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].df != cands[j].df {
			return cands[i].df > cands[j].df
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) < 12 {
		return nil, fmt.Errorf("rankbench: only %d usable terms", len(cands))
	}
	head := cands[:6]

	// Selective companions: nearest unused term to each df target
	// inside the [dfMin, dfMax] window.
	dfMax := int(numDocs / 128)
	dfMin := 12
	if dfMax <= dfMin {
		return nil, fmt.Errorf("rankbench: %d docs leave no selective-df window (max %d, min %d)",
			numDocs, dfMax, dfMin)
	}
	targets := []int{dfMax / 3, dfMax / 2, 2 * dfMax / 3, dfMax}
	used := map[string]bool{}
	var sels []string
	for _, want := range targets {
		if want < dfMin {
			want = dfMin
		}
		best, bestDist := "", -1
		for _, c := range cands {
			if used[c.term] || c.df < dfMin || c.df > dfMax {
				continue
			}
			d := c.df - want
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist {
				best, bestDist = c.term, d
			}
		}
		if best == "" {
			return nil, fmt.Errorf("rankbench: no unused term with df in [%d,%d]", dfMin, dfMax)
		}
		used[best] = true
		sels = append(sels, best)
	}
	return [][]string{
		{head[0].term, sels[0]},
		{head[1].term, sels[1]},
		{head[2].term, sels[2]},
		{head[0].term, head[1].term, sels[0]},
		{head[3].term, sels[3]},
		{head[4].term, sels[1]},
		{head[0].term, head[5].term, sels[2]},
	}, nil
}

// benchRank times one evaluator over the query cycle and returns the
// metric plus per-query block counters (decoded/skipped deltas divided
// by queries actually executed, warmup rounds included).
func benchRank(s *search.Searcher, mode search.RankMode, k int, queries [][]string) (RankBenchEntry, error) {
	s.SetRankMode(mode)
	before := s.RankStats()
	var executed int64
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := s.TopK(k, q...); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
		executed += int64(b.N)
	})
	if benchErr != nil {
		return RankBenchEntry{}, benchErr
	}
	e := RankBenchEntry{BuildBenchMetric: metricOf(r)}
	after := s.RankStats()
	if executed > 0 && mode != search.RankExhaustive {
		e.BlocksDecodedPerQuery = float64(after.BlocksDecoded-before.BlocksDecoded) / float64(executed)
		e.BlocksSkippedPerQuery = float64(after.BlocksSkipped-before.BlocksSkipped) / float64(executed)
	}
	return e, nil
}

// checkRankAgreement pins exactness before timing: every evaluator
// must return the exhaustive scorer's results bitwise.
func checkRankAgreement(s *search.Searcher, queries [][]string, ks []int) error {
	for _, q := range queries {
		for _, k := range ks {
			s.SetRankMode(search.RankExhaustive)
			want, err := s.TopK(k, q...)
			if err != nil {
				return err
			}
			for _, mode := range []search.RankMode{search.RankMaxScore, search.RankBlockMax} {
				s.SetRankMode(mode)
				got, err := s.TopK(k, q...)
				if err != nil {
					return err
				}
				if len(got) != len(want) {
					return fmt.Errorf("rankbench: %s %v k=%d: %d results, exhaustive %d",
						mode, q, k, len(got), len(want))
				}
				for i := range want {
					if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
						return fmt.Errorf("rankbench: %s %v k=%d: result %d diverges from exhaustive",
							mode, q, k, i)
					}
				}
			}
		}
	}
	s.SetRankMode(search.RankExhaustive)
	return nil
}

// RankBenchRun executes the rank benchmark suite.
func RankBenchRun(quick bool) (*RankBenchDoc, error) {
	files, p := rankBenchScale(quick)
	doc := &RankBenchDoc{
		Mode:       "full",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		TopK:       map[string]RankBenchEntry{},
	}
	if quick {
		doc.Mode = "quick"
	}

	tmp, err := os.MkdirTemp("", "rankbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	src := corpus.NewMemSource(corpus.NewGenerator(p), files)
	cfg := EngineConfig(4, 2, 1)
	cfg.OutDir = filepath.Join(tmp, "idx")
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := eng.BuildConcurrent(src)
	if err != nil {
		return nil, err
	}
	doc.Docs = rep.Docs

	idx, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		return nil, err
	}
	defer idx.Close()
	ms, err := idx.Merge()
	if err != nil {
		return nil, err
	}
	if ms.Blocked == 0 {
		return nil, fmt.Errorf("rankbench: merge produced no blocked lists (corpus too small)")
	}
	doc.Terms = idx.Terms()

	s := search.New(idx)
	queries, err := rankQuerySet(s, idx, rep.Docs)
	if err != nil {
		return nil, err
	}
	doc.Queries = len(queries)
	ks := []int{10, 100}
	if err := checkRankAgreement(s, queries, ks); err != nil {
		return nil, err
	}

	for _, k := range ks {
		exh, err := benchRank(s, search.RankExhaustive, k, queries)
		if err != nil {
			return nil, err
		}
		doc.TopK[fmt.Sprintf("exhaustive_k%d", k)] = exh
		for name, mode := range map[string]search.RankMode{
			"maxscore": search.RankMaxScore,
			"bmw":      search.RankBlockMax,
		} {
			e, err := benchRank(s, mode, k, queries)
			if err != nil {
				return nil, err
			}
			if e.NsPerOp > 0 {
				e.SpeedupVsExhaustive = float64(exh.NsPerOp) / float64(e.NsPerOp)
			}
			doc.TopK[fmt.Sprintf("%s_k%d", name, k)] = e
		}
	}

	// Warm-dictionary IndexRun recovery measurement, same methodology
	// and scale as the BENCH_PR5.json index_run number.
	plain, docs := benchCorpus(buildBenchScale(quick))
	ir := metricOf(benchIndexRun(plain, docs))
	doc.IndexRun = &ir
	return doc, nil
}

// EmbedIndexRunBaseline records a committed build-bench document's
// index_run number (e.g. BENCH_PR5.json's) and the delta against it.
func (doc *RankBenchDoc) EmbedIndexRunBaseline(prev *BuildBenchDoc) {
	b, ok := prev.Benchmarks["index_run"]
	if !ok || doc.IndexRun == nil {
		return
	}
	doc.IndexRunBaseline = &b
	if b.MBPerSec > 0 && doc.IndexRun.MBPerSec > 0 {
		doc.IndexRunDelta = fmt.Sprintf("throughput %+.1f%%",
			100*(doc.IndexRun.MBPerSec-b.MBPerSec)/b.MBPerSec)
	}
}

// ReadRankBenchDoc loads a committed BENCH_PR10.json document.
func ReadRankBenchDoc(path string) (*RankBenchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc RankBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("rankbench: %s: %w", path, err)
	}
	return &doc, nil
}

// WriteRankBenchDoc writes the document as indented JSON.
func WriteRankBenchDoc(w io.Writer, doc *RankBenchDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// CompareRankBench gates a fresh run: Block-Max-WAND at k=10 must be
// at least minSpeedup times faster than the exhaustive scorer in the
// CURRENT run (a machine-relative ratio, so noisy runners don't flake
// it), its pruning counters must show real skipping, and its allocs/op
// must not have grown more than allocTolerance over the committed
// document (<=0 skips the allocation gate).
func CompareRankBench(committed, current *RankBenchDoc, minSpeedup, allocTolerance float64) error {
	cur, ok := current.TopK["bmw_k10"]
	if !ok {
		return fmt.Errorf("rankbench: current run carries no bmw_k10 result")
	}
	if cur.SpeedupVsExhaustive < minSpeedup {
		return fmt.Errorf("rankbench: bmw k=10 speedup %.2fx is below the %.2fx floor",
			cur.SpeedupVsExhaustive, minSpeedup)
	}
	if cur.BlocksSkippedPerQuery <= 0 {
		return fmt.Errorf("rankbench: bmw k=10 skipped no blocks; pruning inactive")
	}
	if allocTolerance > 0 && committed != nil {
		if ref, ok := committed.TopK["bmw_k10"]; ok && ref.AllocsPerOp > 0 && cur.AllocsPerOp > 0 {
			ceil := float64(ref.AllocsPerOp) * (1 + allocTolerance)
			if float64(cur.AllocsPerOp) > ceil {
				return fmt.Errorf("rankbench: bmw k=10 allocations %d/op exceed %.0f/op (committed %d/op + %.0f%%)",
					cur.AllocsPerOp, ceil, ref.AllocsPerOp, allocTolerance*100)
			}
		}
	}
	return nil
}
