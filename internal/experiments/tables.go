package experiments

import (
	"fmt"
	"io"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
)

// TableIIIRow is one collection's statistics (paper Table III).
type TableIIIRow struct {
	Name             string
	CompressedSize   int64
	UncompressedSize int64
	Documents        int64
	Terms            int64
	Tokens           int64
}

// TableIII computes collection statistics for the three synthetic
// collections.
func TableIII(s Scale) ([]TableIIIRow, error) {
	srcs := []struct {
		name string
		src  corpus.Source
	}{
		{"ClueWeb09-like", ClueWebSource(s)},
		{"Wikipedia01-07-like", WikipediaSource(s)},
		{"LibraryOfCongress-like", LibraryOfCongressSource(s)},
	}
	var rows []TableIIIRow
	for _, c := range srcs {
		st, err := corpus.ComputeStats(c.src)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIIRow{
			Name:             c.name,
			CompressedSize:   st.CompressedSize,
			UncompressedSize: st.UncompressedSize,
			Documents:        st.Documents,
			Terms:            st.Terms,
			Tokens:           st.Tokens,
		})
	}
	return rows, nil
}

// FprintTableIII renders Table III.
func FprintTableIII(w io.Writer, rows []TableIIIRow) {
	fmt.Fprintf(w, "TABLE III. STATISTICS OF DOCUMENT COLLECTIONS (synthetic)\n")
	fmt.Fprintf(w, "%-24s %12s %14s %10s %10s %12s\n",
		"Collection", "Compressed", "Uncompressed", "Documents", "Terms", "Tokens")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10.2fMB %12.2fMB %10d %10d %12d\n",
			r.Name, mb(r.CompressedSize), mb(r.UncompressedSize),
			r.Documents, r.Terms, r.Tokens)
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// TableIVRow is one indexer-configuration column of paper Table IV.
type TableIVRow struct {
	Name             string
	PreSec           float64
	IndexSec         float64
	PostSec          float64
	SumSec           float64
	TotalIndexerSec  float64
	IndexTputMBps    float64
	TotalIndexerTput float64
}

// TableIV times the four indexer configurations of §IV.B on the
// ClueWeb-like collection with six parsers.
func TableIV(s Scale) ([]TableIVRow, error) {
	src := ClueWebSource(s)
	configs := []struct {
		name              string
		parsers, cpu, gpu int
	}{
		{"6 parsers + 2 GPU indexers", 6, 0, 2},
		{"6 parsers + 1 CPU indexer", 6, 1, 0},
		{"6 parsers + 2 CPU indexers", 6, 2, 0},
		{"6 parsers + 2 CPU + 2 GPU", 6, 2, 2},
	}
	var rows []TableIVRow
	for _, c := range configs {
		rep, err := buildWith(src, c.parsers, c.cpu, c.gpu)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		sum := rep.PreProcessingSec + rep.IndexingSec + rep.PostProcessingSec
		rows = append(rows, TableIVRow{
			Name:             c.name,
			PreSec:           rep.PreProcessingSec,
			IndexSec:         rep.IndexingSec,
			PostSec:          rep.PostProcessingSec,
			SumSec:           sum,
			TotalIndexerSec:  rep.IndexersSpanSec,
			IndexTputMBps:    float64(rep.UncompressedBytes) / (1 << 20) / rep.IndexingSec,
			TotalIndexerTput: rep.IndexingThroughputMBps,
		})
	}
	return rows, nil
}

// FprintTableIV renders Table IV.
func FprintTableIV(w io.Writer, rows []TableIVRow) {
	fmt.Fprintln(w, "TABLE IV. RUNNING TIMES OF INDEXER CONFIGURATIONS (modeled seconds)")
	fmt.Fprintf(w, "%-28s %9s %9s %9s %9s %9s %10s %10s\n",
		"Configuration", "Pre", "Indexing", "Post", "Sum", "Total", "Idx MB/s", "Tot MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %9.4f %9.4f %9.4f %9.4f %9.4f %10.2f %10.2f\n",
			r.Name, r.PreSec, r.IndexSec, r.PostSec, r.SumSec,
			r.TotalIndexerSec, r.IndexTputMBps, r.TotalIndexerTput)
	}
}

// TableVRow is the CPU/GPU workload split (paper Table V).
type TableVRow struct {
	CPUTokens, GPUTokens int64
	CPUTerms, GPUTerms   int64
	CPUChars, GPUChars   int64
}

// TableV reports the workload split of the 2 CPU + 2 GPU configuration.
func TableV(s Scale) (*TableVRow, error) {
	rep, err := buildWith(ClueWebSource(s), 6, 2, 2)
	if err != nil {
		return nil, err
	}
	return &TableVRow{
		CPUTokens: rep.CPUTokens, GPUTokens: rep.GPUTokens,
		CPUTerms: rep.CPUTerms, GPUTerms: rep.GPUTerms,
		CPUChars: rep.CPUChars, GPUChars: rep.GPUChars,
	}, nil
}

// FprintTableV renders Table V.
func FprintTableV(w io.Writer, r *TableVRow) {
	fmt.Fprintln(w, "TABLE V. WORK LOAD BETWEEN CPU AND GPU")
	fmt.Fprintf(w, "%-18s %16s %16s %8s\n", "", "CPU Indexers", "GPU Indexers", "GPU/CPU")
	ratio := func(a, b int64) float64 {
		if a == 0 {
			return 0
		}
		return float64(b) / float64(a)
	}
	fmt.Fprintf(w, "%-18s %16d %16d %8.2f\n", "Token Number", r.CPUTokens, r.GPUTokens, ratio(r.CPUTokens, r.GPUTokens))
	fmt.Fprintf(w, "%-18s %16d %16d %8.2f\n", "Term Number", r.CPUTerms, r.GPUTerms, ratio(r.CPUTerms, r.GPUTerms))
	fmt.Fprintf(w, "%-18s %16d %16d %8.2f\n", "Character Number", r.CPUChars, r.GPUChars, ratio(r.CPUChars, r.GPUChars))
}

// TableVIRow is one collection's end-to-end timing (paper Table VI).
type TableVIRow struct {
	Name           string
	SamplingSec    float64
	ParsersSec     float64
	IndexersSec    float64
	DictCombineSec float64
	DictWriteSec   float64
	TotalSec       float64
	ThroughputMBps float64

	// IndexingSec is the pure indexing critical path (not a paper
	// row; kept for shape assertions that must be independent of the
	// parser-bound pipeline floor).
	IndexingSec float64
}

// TableVI times the best configuration on the three collections plus
// ClueWeb without GPUs.
func TableVI(s Scale) ([]TableVIRow, error) {
	runs := []struct {
		name     string
		src      corpus.Source
		cpu, gpu int
	}{
		{"ClueWeb09-like", ClueWebSource(s), 2, 2},
		{"ClueWeb09-like w/o GPUs", ClueWebSource(s), 2, 0},
		{"Wikipedia01-07-like", WikipediaSource(s), 2, 2},
		{"LibraryOfCongress-like", LibraryOfCongressSource(s), 2, 2},
	}
	var rows []TableVIRow
	for _, c := range runs {
		rep, err := buildWith(c.src, 6, c.cpu, c.gpu)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, TableVIRow{
			Name:           c.name,
			SamplingSec:    rep.SamplingSec,
			ParsersSec:     rep.ParsersSpanSec,
			IndexersSec:    rep.IndexersSpanSec,
			DictCombineSec: rep.DictCombineSec,
			DictWriteSec:   rep.DictWriteSec,
			TotalSec:       rep.TotalSec,
			ThroughputMBps: rep.ThroughputMBps,
			IndexingSec:    rep.IndexingSec,
		})
	}
	return rows, nil
}

// FprintTableVI renders Table VI.
func FprintTableVI(w io.Writer, rows []TableVIRow) {
	fmt.Fprintln(w, "TABLE VI. PERFORMANCE ON DIFFERENT DOCUMENT COLLECTIONS (modeled seconds)")
	fmt.Fprintf(w, "%-26s %9s %9s %9s %9s %9s %9s %9s\n",
		"Collection", "Sampling", "Parsers", "Indexers", "DictComb", "DictWr", "Total", "MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.2f\n",
			r.Name, r.SamplingSec, r.ParsersSec, r.IndexersSec,
			r.DictCombineSec, r.DictWriteSec, r.TotalSec, r.ThroughputMBps)
	}
}

// TableIVReports exposes the underlying reports for Table IV shapes
// (used by tests asserting the paper's orderings).
func TableIVReports(s Scale) (gpuOnly, oneCPU, twoCPU, hybrid *core.Report, err error) {
	src := ClueWebSource(s)
	if gpuOnly, err = buildWith(src, 6, 0, 2); err != nil {
		return
	}
	if oneCPU, err = buildWith(src, 6, 1, 0); err != nil {
		return
	}
	if twoCPU, err = buildWith(src, 6, 2, 0); err != nil {
		return
	}
	hybrid, err = buildWith(src, 6, 2, 2)
	return
}
