package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fastinvert/internal/core"
	"fastinvert/internal/store"
)

// MergeBenchResult compares query latency before and after the
// post-processing merge (§III.F): the same term sweep served by
// per-run assembly versus the monolithic merged file.
type MergeBenchResult struct {
	Terms int // dictionary terms swept
	Runs  int // run files in the index

	MergeTime   time.Duration // streaming merge wall time
	MergedBytes int64         // merged.post size

	PerRunPerTerm time.Duration // mean lookup latency, per-run assembly
	MergedPerTerm time.Duration // mean lookup latency, merged file
	PerRunBytes   uint64        // compressed bytes read during the per-run sweep
	MergedBytes2  uint64        // compressed bytes read during the merged sweep
	Speedup       float64       // PerRunPerTerm / MergedPerTerm
}

// MergeBench builds the ClueWeb-like collection to disk, sweeps every
// dictionary term through the per-run read path, runs the streaming
// merge, and repeats the sweep through the merged path. Both sweeps
// disable the decoded-list cache so each lookup pays its real I/O.
func MergeBench(s Scale) (*MergeBenchResult, error) {
	dir, err := os.MkdirTemp("", "hetmergebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	outDir := filepath.Join(dir, "idx")

	cfg := EngineConfig(2, 2, 0)
	cfg.OutDir = outDir
	cfg.Concurrent = true
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := eng.BuildConcurrentContext(context.Background(), ClueWebSource(s)); err != nil {
		return nil, err
	}

	res := &MergeBenchResult{}

	// Per-run sweep on an uncached reader.
	pre, err := store.OpenIndexWith(outDir, store.ReaderOptions{CacheBytes: 1})
	if err != nil {
		return nil, err
	}
	res.Runs = len(pre.Runs())
	terms := termNames(pre.Dictionary())
	res.Terms = len(terms)
	perRun, err := sweep(pre, terms)
	if err != nil {
		pre.Close()
		return nil, err
	}
	res.PerRunPerTerm = perRun
	res.PerRunBytes = pre.Stats().ListBytesRead
	pre.Close()

	// Streaming merge.
	merger, err := store.OpenIndex(outDir)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stats, err := merger.Merge()
	merger.Close()
	if err != nil {
		return nil, err
	}
	res.MergeTime = time.Since(t0)
	res.MergedBytes = stats.Bytes

	// Merged sweep on a fresh uncached reader.
	post, err := store.OpenIndexWith(outDir, store.ReaderOptions{CacheBytes: 1})
	if err != nil {
		return nil, err
	}
	defer post.Close()
	if !post.MergedActive() {
		return nil, fmt.Errorf("experiments: merged file not active after merge")
	}
	merged, err := sweep(post, terms)
	if err != nil {
		return nil, err
	}
	res.MergedPerTerm = merged
	res.MergedBytes2 = post.Stats().ListBytesRead
	if st := post.Stats(); st.RunFallbacks != 0 {
		return nil, fmt.Errorf("experiments: merged sweep fell back to runs (%+v)", st)
	}
	if merged > 0 {
		res.Speedup = float64(perRun) / float64(merged)
	}
	return res, nil
}

// sweep fetches every term once and returns the mean per-term latency.
func sweep(idx *store.IndexReader, terms []string) (time.Duration, error) {
	if len(terms) == 0 {
		return 0, fmt.Errorf("experiments: empty dictionary")
	}
	t0 := time.Now()
	for _, term := range terms {
		l, err := idx.Postings(term)
		if err != nil {
			return 0, fmt.Errorf("experiments: %q: %w", term, err)
		}
		if l.Len() == 0 {
			return 0, fmt.Errorf("experiments: %q: empty postings for dictionary term", term)
		}
	}
	return time.Since(t0) / time.Duration(len(terms)), nil
}

func termNames(dict []store.DictEntry) []string {
	out := make([]string, len(dict))
	for i, e := range dict {
		out[i] = e.Term
	}
	return out
}

// FprintMergeBench renders the comparison.
func FprintMergeBench(w io.Writer, r *MergeBenchResult) {
	fmt.Fprintf(w, "Post-processing merge: query latency, per-run assembly vs merged file\n")
	fmt.Fprintf(w, "(%d terms, %d runs; decoded-list cache disabled)\n\n", r.Terms, r.Runs)
	fmt.Fprintf(w, "  merge wall time        %12v  (%.2f MB merged file)\n",
		r.MergeTime.Round(time.Millisecond), float64(r.MergedBytes)/(1<<20))
	fmt.Fprintf(w, "  per-run lookup         %12v/term  (%.2f MB read)\n",
		r.PerRunPerTerm.Round(time.Nanosecond), float64(r.PerRunBytes)/(1<<20))
	fmt.Fprintf(w, "  merged lookup          %12v/term  (%.2f MB read)\n",
		r.MergedPerTerm.Round(time.Nanosecond), float64(r.MergedBytes2)/(1<<20))
	fmt.Fprintf(w, "  speedup                %11.2fx\n", r.Speedup)
}
