package experiments

import (
	"fmt"
	"io"
	"time"

	"fastinvert/internal/btree"
	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/gpuindexer"
	"fastinvert/internal/parser"
	"fastinvert/internal/pipesim"
	"fastinvert/internal/postings"
	"fastinvert/internal/stem"
	"fastinvert/internal/stopwords"
	"fastinvert/internal/trie"
)

// AblationResult is a generic two-arm comparison.
type AblationResult struct {
	Name     string
	Baseline string
	Variant  string
	BaseSec  float64
	VarSec   float64
}

// Speedup reports BaseSec/VarSec (variant speedup over baseline).
func (a AblationResult) Speedup() float64 {
	if a.VarSec == 0 {
		return 0
	}
	return a.BaseSec / a.VarSec
}

// FprintAblation renders one comparison.
func FprintAblation(w io.Writer, a AblationResult) {
	fmt.Fprintf(w, "ABLATION %-14s %s=%.4fs %s=%.4fs speedup=%.2fx\n",
		a.Name, a.Baseline, a.BaseSec, a.Variant, a.VarSec, a.Speedup())
}

// AblationRegroup measures §III.C's claim that regrouping terms by
// trie collection before serial indexing yields a large speedup from
// temporal locality: the baseline inserts every document's terms in
// document order (trees touched in arbitrary order), the variant
// processes one collection's whole stream at a time.
func AblationRegroup(s Scale) (AblationResult, error) {
	res := AblationResult{Name: "regroup", Baseline: "doc-order", Variant: "regrouped"}
	src := ClueWebSource(s)
	p := parser.New(nil)

	// Parse everything up front (parsing cost excluded from both arms).
	type docGroups struct {
		doc    uint32
		groups map[int][][]byte // collection -> stripped terms of this doc
	}
	var stream []docGroups
	blk := parser.NewBlock(0) // regrouped arm input (whole batch)
	var nextDoc uint32
	for f := 0; f < src.NumFiles(); f++ {
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return res, err
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return res, err
		}
		for _, doc := range corpus.SplitDocs(plain) {
			id := nextDoc
			nextDoc++
			one := parser.NewBlock(0)
			p.ParseDoc(id, doc, one)
			p.ParseDoc(id, doc, blk)
			dg := docGroups{doc: id, groups: map[int][][]byte{}}
			for gi, g := range one.Groups {
				g.ForEach(func(_ uint32, stripped []byte) error {
					dg.groups[gi] = append(dg.groups[gi], append([]byte(nil), stripped...))
					return nil
				})
			}
			stream = append(stream, dg)
		}
	}

	// Baseline: document order, trees touched interleaved.
	trees := map[int]*btree.Tree{}
	stores := map[int]*postings.Store{}
	t0 := time.Now()
	for _, dg := range stream {
		for gi, terms := range dg.groups {
			tr := trees[gi]
			if tr == nil {
				tr = btree.New()
				trees[gi] = tr
				stores[gi] = postings.NewStore()
			}
			for _, term := range terms {
				slot, _ := tr.Insert(term)
				if err := stores[gi].Add(slot, dg.doc); err != nil {
					return res, err
				}
			}
		}
	}
	res.BaseSec = time.Since(t0).Seconds()

	// Variant: regrouped streams, one collection at a time.
	trees2 := map[int]*btree.Tree{}
	stores2 := map[int]*postings.Store{}
	t0 = time.Now()
	for gi, g := range blk.Groups {
		tr := btree.New()
		st := postings.NewStore()
		trees2[gi] = tr
		stores2[gi] = st
		err := g.ForEach(func(doc uint32, stripped []byte) error {
			slot, _ := tr.Insert(stripped)
			return st.Add(slot, doc)
		})
		if err != nil {
			return res, err
		}
	}
	res.VarSec = time.Since(t0).Seconds()

	// Sanity: both arms built the same dictionaries.
	for gi, tr := range trees {
		if tr.Terms() != trees2[gi].Terms() {
			return res, fmt.Errorf("regroup ablation diverged in collection %d", gi)
		}
	}
	return res, nil
}

// AblationStringCache measures §III.B.2's node string caches where
// their effect is architectural: in the GPU cost model, a comparison
// the cache resolves in shared memory otherwise costs a scattered
// device-memory fetch of the key bytes. Both arms run the identical
// kernel on the same parsed stream; only the charged traffic differs.
// (On the host CPU at megabyte scale the caches are cost-neutral —
// the arena fits in L2 and there is no pointer-chase miss to avoid —
// so the host-side arms are not meaningful and are not reported.)
func AblationStringCache(s Scale) (AblationResult, error) {
	res := AblationResult{Name: "string-cache", Baseline: "no-cache", Variant: "cached"}
	src := ClueWebSource(s)
	p := parser.New(nil)
	blk := parser.NewBlock(0)
	var docBase uint32
	for f := 0; f < src.NumFiles(); f++ {
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return res, err
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return res, err
		}
		for d, doc := range corpus.SplitDocs(plain) {
			p.ParseDoc(docBase+uint32(d), doc, blk)
		}
		docBase += uint32(1 << 16)
	}
	groups := make([]*parser.Group, 0, len(blk.Groups))
	for _, g := range blk.Groups {
		groups = append(groups, g)
	}

	run := func(noCache bool) (float64, error) {
		g := gpu.TeslaC1060()
		g.DeviceMemBytes = 256 << 20
		dev, err := gpu.NewDevice(g)
		if err != nil {
			return 0, err
		}
		ix := gpuindexer.New(dev, gpuindexer.Config{ThreadBlocks: 480, NoStringCache: noCache})
		rs, err := ix.IndexRun(groups, 0)
		if err != nil {
			return 0, err
		}
		return rs.KernelSec, nil
	}
	var err error
	if res.BaseSec, err = run(true); err != nil {
		return res, err
	}
	if res.VarSec, err = run(false); err != nil {
		return res, err
	}
	return res, nil
}

// TrieHeightRow is one arm of the trie-height ablation (§III.B.1:
// "the height of three seems to work best").
type TrieHeightRow struct {
	Height      int
	Collections int     // distinct non-empty collections
	TopShare    float64 // token share of the largest collection
	IndexSec    float64 // serial insert time over per-collection trees
}

// AblationTrieHeight regroups the same token stream by prefix heights
// 1, 2 and 3 and measures serial indexing time and collection balance.
func AblationTrieHeight(s Scale) ([]TrieHeightRow, error) {
	src := ClueWebSource(s)
	p := parser.New(nil)
	// Materialize the stemmed, stop-filtered token stream.
	var terms [][]byte
	var docs []uint32
	var docBase uint32
	for f := 0; f < src.NumFiles(); f++ {
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return nil, err
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, err
		}
		for d, doc := range corpus.SplitDocs(plain) {
			blk := parser.NewBlock(0)
			p.ParseDoc(docBase+uint32(d), doc, blk)
			for gi, g := range blk.Groups {
				g.ForEach(func(dID uint32, stripped []byte) error {
					terms = append(terms, trie.Restore(gi, stripped))
					docs = append(docs, dID)
					return nil
				})
			}
		}
		docBase += 1 << 16 // keep doc ids distinct per file (ample)
	}

	var rows []TrieHeightRow
	for h := 1; h <= 3; h++ {
		groups := map[string][]int{} // prefix -> term indices
		for i, term := range terms {
			n := h
			if len(term) < n {
				n = len(term)
			}
			groups[string(term[:n])] = append(groups[string(term[:n])], i)
		}
		top := 0
		for _, g := range groups {
			if len(g) > top {
				top = len(g)
			}
		}
		t0 := time.Now()
		for _, idxs := range groups {
			tr := btree.New()
			st := postings.NewStore()
			for _, i := range idxs {
				key := terms[i]
				if len(key) > h {
					key = key[h:]
				} else {
					key = key[:0]
				}
				slot, _ := tr.Insert(key)
				st.Add(slot, docs[i]) //nolint:errcheck // docs unsorted across groups is fine here
			}
		}
		rows = append(rows, TrieHeightRow{
			Height:      h,
			Collections: len(groups),
			TopShare:    float64(top) / float64(len(terms)),
			IndexSec:    time.Since(t0).Seconds(),
		})
	}
	return rows, nil
}

// FprintTrieHeight renders the trie-height ablation.
func FprintTrieHeight(w io.Writer, rows []TrieHeightRow) {
	fmt.Fprintln(w, "ABLATION trie-height (serial insert over per-collection trees)")
	fmt.Fprintf(w, "%8s %12s %10s %10s\n", "height", "collections", "top-share", "sec")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12d %10.3f %10.4f\n", r.Height, r.Collections, r.TopShare, r.IndexSec)
	}
}

// AblationCoalescing compares simulated GPU time for coalesced
// 512-byte node loads against per-word scattered reads of the same
// data (§III.D.2's key optimization).
func AblationCoalescing() (AblationResult, error) {
	res := AblationResult{Name: "coalescing", Baseline: "scattered", Variant: "coalesced"}
	cfg := gpu.TeslaC1060()
	cfg.DeviceMemBytes = 64 << 20
	dev, err := gpu.NewDevice(cfg)
	if err != nil {
		return res, err
	}
	const nodes = 4096
	p := dev.Malloc(nodes * btree.NodeSize)
	sc := dev.Launch(480, func(b *gpu.Block) {
		// Per-block scratch: Launch runs blocks on parallel goroutines,
		// so a shared slice would be written concurrently.
		scratch := make([]byte, btree.NodeSize)
		for i := b.BlockIdx; i < nodes; i += 480 {
			b.GlobalReadScattered(scratch, p+gpu.Ptr(i*btree.NodeSize))
		}
	})
	co := dev.Launch(480, func(b *gpu.Block) {
		for i := b.BlockIdx; i < nodes; i += 480 {
			b.LoadShared(0, p+gpu.Ptr(i*btree.NodeSize), btree.NodeSize)
		}
	})
	res.BaseSec = sc.SimSeconds
	res.VarSec = co.SimSeconds
	return res, nil
}

// AblationSplit compares the popularity-based CPU/GPU split against a
// random split of equal popular-set size (§III.E).
func AblationSplit(s Scale) (AblationResult, error) {
	res := AblationResult{Name: "cpu-gpu-split", Baseline: "random-split", Variant: "popular-split"}
	src := ClueWebSource(s)
	cfg := EngineConfig(6, 2, 2)
	cfg.RandomSplit = true
	cfg.RandomSplitSeed = 7
	eng, err := core.New(cfg)
	if err != nil {
		return res, err
	}
	rep, err := eng.Build(src)
	if err != nil {
		return res, err
	}
	res.BaseSec = rep.IndexersSpanSec

	cfg.RandomSplit = false
	eng, err = core.New(cfg)
	if err != nil {
		return res, err
	}
	rep, err = eng.Build(src)
	if err != nil {
		return res, err
	}
	res.VarSec = rep.IndexersSpanSec
	return res, nil
}

// DecompressRow is one arm of the read/decompress scheduling ablation
// (§IV.A): folding decompression into the serialized read (scheme 1)
// versus decompressing on the parser after the full transfer
// (scheme 2, the paper's choice).
type DecompressRow struct {
	Parsers    int
	Scheme1Sec float64
	Scheme2Sec float64
}

// AblationDecompress replays one measured ClueWeb run through pipesim
// under both schemes across parser counts. Scheme 1 overlaps ~half the
// decompression with the transfer but holds the (serialized) file
// access for the whole combined duration.
func AblationDecompress(s Scale) ([]DecompressRow, error) {
	src := ClueWebSource(s)
	eng, err := core.New(EngineConfig(1, 1, 0))
	if err != nil {
		return nil, err
	}
	rep, err := eng.ParseOnly(src)
	if err != nil {
		return nil, err
	}
	// Rebuild items from the schedule's inputs: ParseOnly used them
	// all; re-derive from the measured report by re-running pipesim.
	// The engine does not expose raw items, so reconstruct: measure a
	// fresh pass.
	_ = rep
	items, err := measureItems(src)
	if err != nil {
		return nil, err
	}
	var rows []DecompressRow
	for m := 1; m <= 7; m++ {
		s2 := pipesim.Simulate(pipesim.Config{Parsers: m, Indexers: 0}, items)
		folded := make([]pipesim.Item, len(items))
		for i, it := range items {
			folded[i] = it
			folded[i].ReadSec = it.ReadSec + 0.5*it.DecompressSec
			folded[i].DecompressSec = 0
		}
		s1 := pipesim.Simulate(pipesim.Config{Parsers: m, Indexers: 0}, folded)
		rows = append(rows, DecompressRow{
			Parsers:    m,
			Scheme1Sec: s1.MakespanSec,
			Scheme2Sec: s2.MakespanSec,
		})
	}
	return rows, nil
}

// measureItems measures read/decompress/parse durations per file with
// the standard disk model.
func measureItems(src corpus.Source) ([]pipesim.Item, error) {
	cfg := EngineConfig(1, 1, 0)
	p := parser.New(nil)
	var items []pipesim.Item
	for f := 0; f < src.NumFiles(); f++ {
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return nil, err
		}
		it := pipesim.Item{
			ReadSec: cfg.DiskLatencySec + float64(len(stored))/cfg.DiskBytesPerSec,
		}
		t0 := time.Now()
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, err
		}
		if compressed {
			it.DecompressSec = time.Since(t0).Seconds()
		}
		t0 = time.Now()
		blk := parser.NewBlock(0)
		for d, doc := range corpus.SplitDocs(plain) {
			p.ParseDoc(uint32(d), doc, blk)
		}
		it.ParseSec = time.Since(t0).Seconds()
		items = append(items, it)
	}
	return items, nil
}

// FprintDecompress renders the scheme comparison.
func FprintDecompress(w io.Writer, rows []DecompressRow) {
	fmt.Fprintln(w, "ABLATION decompress scheduling (parse-only makespan, modeled seconds)")
	fmt.Fprintf(w, "%8s %14s %14s\n", "parsers", "scheme1(fold)", "scheme2(sep)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %14.4f %14.4f\n", r.Parsers, r.Scheme1Sec, r.Scheme2Sec)
	}
}

// Normalize is re-exported for ablation callers needing the pipeline's
// term normalization.
func Normalize(word string) string {
	b := []byte(word)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	if stopwords.Default().Contains(b) {
		return ""
	}
	return string(stem.Stem(b))
}
