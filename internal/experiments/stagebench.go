package experiments

import (
	"encoding/json"
	"io"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/telemetry"
)

// StageUtilization is the modeled per-stage busy/utilization view of
// one build, derived from the pipesim schedule: how much of the
// makespan each pipeline actor spent working.
type StageUtilization struct {
	MakespanSec    float64   `json:"makespan_sec"`
	DiskBusySec    float64   `json:"disk_busy_sec"`
	DiskUtil       float64   `json:"disk_util"`
	ParserBusySec  []float64 `json:"parser_busy_sec"`
	ParserUtil     []float64 `json:"parser_util"`
	IndexerBusySec []float64 `json:"indexer_busy_sec"`
	IndexerUtil    []float64 `json:"indexer_util"`
}

// StageBenchRow is one collection's build with both throughput numbers
// and per-stage breakdowns: the modeled utilization from the pipeline
// schedule and the measured wall-clock stage seconds from the
// telemetry collector (stall rows keyed "stall:<stage>").
type StageBenchRow struct {
	Collection             string             `json:"collection"`
	Files                  int                `json:"files"`
	Docs                   int64              `json:"docs"`
	Tokens                 int64              `json:"tokens"`
	Terms                  int64              `json:"terms"`
	UncompressedMB         float64            `json:"uncompressed_mb"`
	ThroughputMBps         float64            `json:"throughput_mbps"`
	IndexingThroughputMBps float64            `json:"indexing_throughput_mbps"`
	SamplingSec            float64            `json:"sampling_sec"`
	DictCombineSec         float64            `json:"dict_combine_sec"`
	DictWriteSec           float64            `json:"dict_write_sec"`
	Modeled                StageUtilization   `json:"modeled"`
	MeasuredStageSec       map[string]float64 `json:"measured_stage_sec"`
}

// utilization derives per-actor utilization from a report's schedule.
func utilization(rep *core.Report) StageUtilization {
	u := StageUtilization{}
	if rep.Schedule == nil {
		return u
	}
	res := rep.Schedule
	u.MakespanSec = res.MakespanSec
	u.DiskBusySec = res.DiskBusySec
	if res.MakespanSec > 0 {
		u.DiskUtil = res.DiskBusySec / res.MakespanSec
	}
	for _, b := range res.ParserBusySec {
		u.ParserBusySec = append(u.ParserBusySec, b)
		if res.MakespanSec > 0 {
			u.ParserUtil = append(u.ParserUtil, b/res.MakespanSec)
		}
	}
	for _, b := range res.IndexerBusySec {
		u.IndexerBusySec = append(u.IndexerBusySec, b)
		if res.MakespanSec > 0 {
			u.IndexerUtil = append(u.IndexerUtil, b/res.MakespanSec)
		}
	}
	return u
}

// stageBenchOne builds one collection with a telemetry collector
// attached and folds the report plus stage metrics into a row.
func stageBenchOne(name string, src corpus.Source, parsers, cpus, gpus int) (StageBenchRow, error) {
	col := telemetry.NewCollector(telemetry.NewRegistry(), nil)
	cfg := EngineConfig(parsers, cpus, gpus)
	cfg.Observer = col
	eng, err := core.New(cfg)
	if err != nil {
		return StageBenchRow{}, err
	}
	rep, err := eng.Build(src)
	if err != nil {
		return StageBenchRow{}, err
	}
	return StageBenchRow{
		Collection:             name,
		Files:                  rep.Files,
		Docs:                   rep.Docs,
		Tokens:                 rep.Tokens,
		Terms:                  rep.Terms,
		UncompressedMB:         float64(rep.UncompressedBytes) / (1 << 20),
		ThroughputMBps:         rep.ThroughputMBps,
		IndexingThroughputMBps: rep.IndexingThroughputMBps,
		SamplingSec:            rep.SamplingSec,
		DictCombineSec:         rep.DictCombineSec,
		DictWriteSec:           rep.DictWriteSec,
		Modeled:                utilization(rep),
		MeasuredStageSec:       col.StageSeconds(),
	}, nil
}

// StageBench builds the three synthetic collections under the standard
// 6P+2C+2G shape, returning throughput plus per-stage breakdowns for
// BENCH_*.json machine-readable output.
func StageBench(s Scale) ([]StageBenchRow, error) {
	srcs := []struct {
		name string
		src  corpus.Source
	}{
		{"clueweb09", ClueWebSource(s)},
		{"wikipedia01-07", WikipediaSource(s)},
		{"library-of-congress", LibraryOfCongressSource(s)},
	}
	rows := make([]StageBenchRow, 0, len(srcs))
	for _, c := range srcs {
		row, err := stageBenchOne(c.name, c.src, 6, 2, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// StageBenchDoc is the top-level BENCH_*.json document.
type StageBenchDoc struct {
	Files       int             `json:"files"`
	ScaleFactor float64         `json:"scale_factor"`
	Collections []StageBenchRow `json:"collections"`
}

// WriteStageBenchJSON runs StageBench and writes the indented JSON
// document to w.
func WriteStageBenchJSON(w io.Writer, s Scale) error {
	rows, err := StageBench(s)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(StageBenchDoc{
		Files:       s.Files,
		ScaleFactor: s.Factor,
		Collections: rows,
	})
}
