//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. Timing
// assertions that compare measured wall-clock durations are skipped
// under -race: instrumentation slows stages by different factors and
// scrambles the orderings the tests pin.
const raceEnabled = true
