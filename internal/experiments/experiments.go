// Package experiments regenerates every table and figure of the
// paper's evaluation (§IV) on the synthetic collections, shared by the
// benchrunner CLI and the root bench suite. Each experiment returns
// structured rows plus a paper-style text rendering.
//
// Absolute numbers come from this host's measured stage durations fed
// through the pipeline/GPU/cluster models; the paper's testbed (two
// Xeon X5560, two Tesla C1060, 1 Gb Ethernet disk) produced different
// absolute values. The comparisons in EXPERIMENTS.md track the shape:
// who wins, by what factor, and where the crossovers fall.
package experiments

import (
	"fmt"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
)

// Scale sizes the synthetic collections. Factor multiplies document
// counts and lengths; Files is the container-file count per
// collection.
type Scale struct {
	Files  int
	Factor float64
}

// DefaultScale keeps every experiment in the seconds-to-a-minute range.
func DefaultScale() Scale { return Scale{Files: 16, Factor: 1} }

// ClueWebSource builds the ClueWeb09-like collection.
func ClueWebSource(s Scale) corpus.Source {
	return corpus.NewMemSource(corpus.NewGenerator(corpus.ClueWeb09(s.Factor)), s.Files)
}

// WikipediaSource builds the Wikipedia01-07-like collection.
func WikipediaSource(s Scale) corpus.Source {
	return corpus.NewMemSource(corpus.NewGenerator(corpus.Wikipedia0107(s.Factor)), s.Files)
}

// LibraryOfCongressSource builds the LoC-like collection.
func LibraryOfCongressSource(s Scale) corpus.Source {
	return corpus.NewMemSource(corpus.NewGenerator(corpus.LibraryOfCongress(s.Factor)), s.Files)
}

// EngineConfig returns the standard experiment engine configuration
// for a pipeline shape.
func EngineConfig(parsers, cpus, gpus int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Parsers = parsers
	cfg.CPUIndexers = cpus
	cfg.GPUs = gpus
	g := gpu.TeslaC1060()
	g.DeviceMemBytes = 256 << 20
	cfg.GPU = g
	cfg.Sampling.Ratio = 0.02
	return cfg
}

// Trials is the number of repetitions per measured configuration; the
// best run is kept (the paper reports 3-trial averages with <2%
// spread; the minimum is the steadiest statistic on a shared host).
var Trials = 2

func buildWith(src corpus.Source, parsers, cpus, gpus int) (*core.Report, error) {
	var best *core.Report
	for i := 0; i < Trials; i++ {
		eng, err := core.New(EngineConfig(parsers, cpus, gpus))
		if err != nil {
			return nil, err
		}
		rep, err := eng.Build(src)
		if err != nil {
			return nil, err
		}
		if best == nil || rep.IndexersSpanSec < best.IndexersSpanSec {
			best = rep
		}
	}
	return best, nil
}

// multiSource concatenates sources, used by Fig. 11 to append
// Wikipedia-like files after the ClueWeb-like body (the paper's
// behavior shift at file index 1200).
type multiSource struct {
	parts []corpus.Source
}

// ConcatSources joins sources end to end.
func ConcatSources(parts ...corpus.Source) corpus.Source {
	return &multiSource{parts: parts}
}

func (m *multiSource) NumFiles() int {
	n := 0
	for _, p := range m.parts {
		n += p.NumFiles()
	}
	return n
}

func (m *multiSource) locate(i int) (corpus.Source, int) {
	for _, p := range m.parts {
		if i < p.NumFiles() {
			return p, i
		}
		i -= p.NumFiles()
	}
	return nil, -1
}

func (m *multiSource) FileName(i int) string {
	p, j := m.locate(i)
	if p == nil {
		return fmt.Sprintf("out-of-range-%d", i)
	}
	return p.FileName(j)
}

func (m *multiSource) ReadFile(i int) ([]byte, bool, error) {
	p, j := m.locate(i)
	if p == nil {
		return nil, false, fmt.Errorf("experiments: file %d out of range", i)
	}
	return p.ReadFile(j)
}
