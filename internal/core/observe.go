package core

import (
	"strconv"
	"time"

	"fastinvert/internal/parser"
	"fastinvert/internal/sampling"
	"fastinvert/internal/telemetry"
)

// spanObserver is the engine's nil-safe view of Config.Observer: every
// method is a no-op when no observer is installed, so the uninstrumented
// build pays only a nil check per stage boundary. It generalizes the
// Hooks seam — Hooks inject faults at stage boundaries, the observer
// reports what actually happened at the same boundaries.
//
// All durations passed through are real wall-clock (time.Since), never
// scaled by CPUThroughputScale: telemetry answers "where did this build
// spend its time on this host", while Report keeps answering "what
// would the paper's platform have done".
type spanObserver struct {
	o telemetry.Observer
}

func (s spanObserver) active() bool { return s.o != nil }

func (s spanObserver) buildStart(files int, attrs map[string]any) {
	if s.o != nil {
		s.o.BuildStart(files, attrs)
	}
}

// span reports a stage busy span that started at t0 and ends now.
func (s spanObserver) span(stage string, worker, file int, t0 time.Time,
	bytes, tokens, docs int64) {
	if s.o != nil {
		s.o.StageSpan(stage, worker, file, t0, time.Since(t0), bytes, tokens, docs)
	}
}

func (s spanObserver) sample(name string, worker int, value float64) {
	if s.o != nil {
		s.o.Sample(name, worker, value)
	}
}

func (s spanObserver) total(name string, labels map[string]string, value float64) {
	if s.o != nil {
		s.o.Total(name, labels, value)
	}
}

func (s spanObserver) buildEnd(attrs map[string]any) {
	if s.o != nil {
		s.o.BuildEnd(attrs)
	}
}

// buildAttrs describes the pipeline shape for the trace meta event.
func (e *Engine) buildAttrs(files int, concurrent bool) map[string]any {
	return map[string]any{
		"files":      files,
		"parsers":    e.cfg.Parsers,
		"cpu":        e.cfg.CPUIndexers,
		"gpu":        e.cfg.GPUs,
		"concurrent": concurrent,
		"positional": e.cfg.Positional,
	}
}

// beginObserve arms the observer for one build.
func (e *Engine) beginObserve(files int, concurrent bool) {
	e.obs = spanObserver{e.cfg.Observer}
	e.collTokens = nil
	if e.obs.active() {
		e.collTokens = make(map[int]int64)
		e.obs.buildStart(files, e.buildAttrs(files, concurrent))
	}
}

// accountShares records per-trie-collection token counts while the
// sequencer splits a block, feeding the CPU/GPU split-skew totals.
// Called from the (serialized) sequencer only.
func (e *Engine) accountShares(blk *parser.Block) {
	if e.collTokens == nil {
		return
	}
	for gi, g := range blk.Groups {
		e.collTokens[gi] += int64(g.Tokens)
	}
}

// shareTokens sums the token count of one indexer's share of a block.
func shareTokens(groups []*parser.Group) int64 {
	var n int64
	for _, g := range groups {
		n += int64(g.Tokens)
	}
	return n
}

// endObserve emits the split-skew totals and the build summary.
func (e *Engine) endObserve(rep *Report) {
	if !e.obs.active() {
		return
	}
	for coll, tokens := range e.collTokens {
		kind := "cpu"
		if k, _ := e.assign.Owner(coll); k == sampling.KindGPU {
			kind = "gpu"
		}
		e.obs.total("collection_tokens", map[string]string{
			"coll": strconv.Itoa(coll),
			"kind": kind,
		}, float64(tokens))
	}
	e.obs.buildEnd(map[string]any{
		"files":              rep.Files,
		"docs":               rep.Docs,
		"tokens":             rep.Tokens,
		"terms":              rep.Terms,
		"uncompressed_bytes": rep.UncompressedBytes,
		"postings_bytes":     rep.PostingsBytes,
		"dictionary_bytes":   rep.DictionaryBytes,
	})
}
