package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"fastinvert/internal/corpus"
	"fastinvert/internal/reference"
)

// TestRandomConfigsMatchReference drives the engine under randomized
// pipeline shapes, corpus profiles and executors, always requiring the
// persisted index to equal the serial reference indexer — the
// workhorse property of the whole system.
func TestRandomConfigsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20110516)) // IPDPS 2011 conference date
	profiles := []func(float64) corpus.Profile{
		corpus.ClueWeb09, corpus.Wikipedia0107, corpus.LibraryOfCongress,
	}
	for trial := 0; trial < 6; trial++ {
		prof := profiles[rng.Intn(len(profiles))](0.5)
		prof.VocabSize = 2000 + rng.Intn(4000)
		prof.DocsPerFile = 4 + rng.Intn(8)
		prof.MeanDocTokens = 30 + rng.Intn(60)
		prof.Seed = rng.Int63()
		files := 2 + rng.Intn(4)
		src := corpus.NewMemSource(corpus.NewGenerator(prof), files)

		parsers := 1 + rng.Intn(4)
		cpus := rng.Intn(3)
		gpus := rng.Intn(3)
		if cpus+gpus == 0 {
			cpus = 1
		}
		concurrent := rng.Intn(2) == 1

		ref, err := reference.BuildFromSource(src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(parsers, cpus, gpus)
		cfg.BufferPerParser = 1 + rng.Intn(3)
		cfg.Sampling.PopularCount = 20 + rng.Intn(150)
		cfg.OutDir = filepath.Join(t.TempDir(), "idx")
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buildErr error
		if concurrent {
			_, buildErr = eng.BuildConcurrent(src)
		} else {
			_, buildErr = eng.Build(src)
		}
		if buildErr != nil {
			t.Fatalf("trial %d (%dp/%dc/%dg conc=%v): %v",
				trial, parsers, cpus, gpus, concurrent, buildErr)
		}
		got := indexFromDisk(t, cfg.OutDir)
		if ok, diff := ref.Equal(got); !ok {
			t.Fatalf("trial %d (%dp/%dc/%dg conc=%v %s): postings differ at %q",
				trial, parsers, cpus, gpus, concurrent, prof.Name, diff)
		}
	}
}
