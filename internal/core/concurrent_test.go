package core

import (
	"os"
	"path/filepath"
	"testing"

	"fastinvert/internal/reference"
)

// TestConcurrentMatchesSerial pins the concurrent executor's output
// against the serial executor's: identical dictionary and run files
// (modulo the docmap's non-deterministic JSON timing fields, which it
// doesn't have — so byte-for-byte).
func TestConcurrentMatchesSerial(t *testing.T) {
	src := testSource(5)
	shapes := []struct {
		name              string
		parsers, cpu, gpu int
	}{
		{"3p-2cpu", 3, 2, 0},
		{"2p-1cpu-2gpu", 2, 1, 2},
		{"4p-2gpu", 4, 0, 2},
	}
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			serialDir := filepath.Join(t.TempDir(), "serial")
			concDir := filepath.Join(t.TempDir(), "conc")

			cfg := testConfig(s.parsers, s.cpu, s.gpu)
			cfg.OutDir = serialDir
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			repS, err := eng.Build(src)
			if err != nil {
				t.Fatal(err)
			}

			cfg.OutDir = concDir
			eng, err = New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			repC, err := eng.BuildConcurrent(src)
			if err != nil {
				t.Fatal(err)
			}

			if repS.Docs != repC.Docs || repS.Tokens != repC.Tokens || repS.Terms != repC.Terms {
				t.Fatalf("counters differ: serial %d/%d/%d vs concurrent %d/%d/%d",
					repS.Docs, repS.Tokens, repS.Terms, repC.Docs, repC.Tokens, repC.Terms)
			}
			if repS.CPUTokens != repC.CPUTokens || repS.GPUTokens != repC.GPUTokens {
				t.Fatalf("split differs: %d/%d vs %d/%d",
					repS.CPUTokens, repS.GPUTokens, repC.CPUTokens, repC.GPUTokens)
			}

			// Every persisted artifact must match byte for byte
			// except docmap.json (identical here too) — compare all.
			entries, err := os.ReadDir(serialDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range entries {
				a, err := os.ReadFile(filepath.Join(serialDir, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				b, err := os.ReadFile(filepath.Join(concDir, ent.Name()))
				if err != nil {
					t.Fatalf("concurrent output missing %s: %v", ent.Name(), err)
				}
				if string(a) != string(b) {
					t.Fatalf("%s differs between executors", ent.Name())
				}
			}
		})
	}
}

// TestConcurrentMatchesReference checks the concurrent executor
// end-to-end against the serial reference indexer.
func TestConcurrentMatchesReference(t *testing.T) {
	src := testSource(4)
	ref, err := reference.BuildFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(3, 2, 2)
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.BuildConcurrent(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terms != int64(ref.Terms()) {
		t.Fatalf("terms %d, want %d", rep.Terms, ref.Terms())
	}
	got := indexFromDisk(t, cfg.OutDir)
	if ok, diff := ref.Equal(got); !ok {
		t.Fatalf("concurrent postings differ from reference at %q", diff)
	}
}
