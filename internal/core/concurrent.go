package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fastinvert/internal/corpus"
	"fastinvert/internal/parser"
	"fastinvert/internal/pipesim"
	"fastinvert/internal/sampling"
	"fastinvert/internal/stopwords"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

// Concurrent execution of the pipeline with real goroutines, mirroring
// Fig. 9's dataflow:
//
//   - a disk goroutine reads container files strictly in order (the
//     paper's read scheduler serializes disk access);
//   - M parser goroutines each own the files with f mod M == p,
//     receiving raw bytes over a depth-1 channel (the parser buffer)
//     and emitting parsed blocks;
//   - a sequencer consumes blocks in file order — preserving the
//     round-robin consumption that keeps postings document-sorted —
//     fans each block's shares out to the CPU and GPU indexers in
//     parallel, then runs the serialized post-processing.
//
// The result is bit-identical to the serial executor: identical run
// files, dictionary and report counters. Stage durations are measured
// the same way and feed the same pipesim schedule, so modeled timings
// remain comparable across executors; on a multicore host the
// concurrent executor additionally delivers real wall-clock overlap.

// parsedFile is one file after the parser stage.
type parsedFile struct {
	f        int
	blk      *parser.Block
	docs     int
	offsets  []int // per-doc byte offsets within the uncompressed file
	byteLens []int // per-doc byte lengths
	item     pipesim.Item
	stored   int
	plain    int
	err      error

	scr *fileScratch // recyclable backing for offsets/byteLens
}

// BuildConcurrent runs the full pipeline with goroutine parallelism.
func (e *Engine) BuildConcurrent(src corpus.Source) (*Report, error) {
	return e.BuildConcurrentContext(context.Background(), src)
}

// BuildConcurrentContext is BuildConcurrent under a context. On
// cancellation the disk reader stops feeding the parsers, every stage
// goroutine drains to completion (no leaks), and the build returns
// ctx.Err(); a partially written OutDir may remain.
func (e *Engine) BuildConcurrentContext(ctx context.Context, src corpus.Source) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A derived context lets the sequencer tear the whole pipeline
	// down on ANY terminal error — not just caller cancellation — so
	// a failed build never strands the disk or parser goroutines.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rep := &Report{Files: src.NumFiles()}
	e.docLens = e.docLens[:0]
	e.docFiles = e.docFiles[:0]
	e.docLocs = e.docLocs[:0]
	e.beginObserve(src.NumFiles(), true)

	t0 := time.Now()
	counts, err := sampling.Sample(src, e.cfg.Sampling)
	if err != nil {
		return nil, err
	}
	if e.cfg.RandomSplit {
		e.assign, err = sampling.AssignRandom(counts, e.cfg.CPUIndexers, e.cfg.GPUs,
			e.cfg.Sampling.PopularCount, e.cfg.RandomSplitSeed)
	} else {
		e.assign, err = sampling.Assign(counts, e.cfg.CPUIndexers, e.cfg.GPUs,
			e.cfg.Sampling.PopularCount)
	}
	if err != nil {
		return nil, err
	}
	rep.SamplingSec = e.measure(t0)
	e.obs.span(telemetry.StageSampling, -1, -1, t0, 0, 0, 0)

	var writer *store.IndexWriter
	if e.cfg.OutDir != "" {
		writer, err = store.NewIndexWriter(e.cfg.OutDir)
		if err != nil {
			return nil, err
		}
	}

	n := src.NumFiles()
	m := e.cfg.Parsers
	nIdx := e.cfg.CPUIndexers + e.cfg.GPUs

	// Disk goroutine: serialized in-order reads, routed to the owning
	// parser. Channel depth 1 per parser = one raw file in flight.
	type rawFile struct {
		f      int
		stored []byte
		gz     bool
		err    error
	}
	parserIn := make([]chan rawFile, m)
	for p := range parserIn {
		parserIn[p] = make(chan rawFile, 1)
	}
	go func() {
		defer func() {
			for _, ch := range parserIn {
				close(ch)
			}
		}()
		for f := 0; f < n; f++ {
			tRead := time.Now()
			stored, gz, err := src.ReadFile(f)
			if err == nil {
				e.obs.span(telemetry.StageRead, -1, f, tRead, int64(len(stored)), 0, 0)
			}
			// Occupancy of the target parser's depth-1 buffer just
			// before the send: 1 means the disk is about to block on
			// that parser (backpressure).
			e.obs.sample("parser_buffer_depth", f%m, float64(len(parserIn[f%m])))
			select {
			case parserIn[f%m] <- rawFile{f: f, stored: stored, gz: gz, err: err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	// Parser goroutines.
	results := make(chan parsedFile, m)
	var wg sync.WaitGroup
	for p := 0; p < m; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			psr := e.newParser()
			for raw := range parserIn[p] {
				results <- e.parseOne(psr, raw.f, raw.stored, raw.gz, raw.err)
			}
		}(p)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// fail tears the pipeline down before surfacing err: canceling the
	// derived context makes the disk goroutine exit and close the
	// parser inputs, so draining results until close guarantees no
	// stage goroutine is left blocked on a send. Every terminal error
	// path — caller cancellation, read/parse faults, indexer or writer
	// failures — funnels through here.
	fail := func(err error) error {
		cancel()
		for range results {
		}
		return err
	}

	// Sequencer: consume blocks in file order, index shares in
	// parallel, post-process serially.
	pending := make(map[int]parsedFile)
	items := make([]pipesim.Item, 0, n)
	var docBase uint32
	next := 0
	for next < n {
		if ctx.Err() != nil {
			return nil, fail(ctx.Err())
		}
		pf, ok := pending[next]
		if !ok {
			select {
			case r, open := <-results:
				if !open {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					return nil, fmt.Errorf("core: parser stage ended early at file %d", next)
				}
				pending[r.f] = r
				// Parsed blocks queued ahead of the sequencer: high
				// occupancy means the indexers are the bottleneck.
				e.obs.sample("parsed_queue_depth", -1, float64(len(results)+len(pending)))
			case <-ctx.Done():
				return nil, fail(ctx.Err())
			}
			continue
		}
		delete(pending, next)
		if pf.err != nil {
			return nil, fail(pf.err)
		}
		rep.CompressedBytes += int64(pf.stored)
		rep.UncompressedBytes += int64(pf.plain)
		rep.Docs += int64(pf.docs)
		rep.Tokens += int64(pf.blk.Tokens)

		if err := e.cfg.Hooks.beforeIndex(pf.f); err != nil {
			return nil, fail(err)
		}
		if err := e.indexBlockConcurrent(pf.blk, pf.f, docBase, &pf.item, rep); err != nil {
			return nil, fail(err)
		}
		if err := e.postProcessBlock(&pf, docBase, src.FileName(pf.f), rep, writer); err != nil {
			return nil, fail(err)
		}
		e.releaseParsed(&pf)
		docBase += uint32(pf.docs)
		items = append(items, pf.item)
		next++
		if e.cfg.Progress != nil {
			e.cfg.Progress(next, n)
		}
	}

	return e.finishReport(rep, items, nIdx, writer)
}

// newParser builds a parser honoring the configured stop-word list
// and positional mode.
func (e *Engine) newParser() *parser.Parser {
	var p *parser.Parser
	if e.cfg.StopWords == nil {
		p = parser.New(nil)
	} else {
		p = parser.New(stopwords.NewSet(e.cfg.StopWords))
	}
	p.Positional = e.cfg.Positional
	return p
}

// parseOne executes the parser stage (read modeling, decompression,
// parse) for one file.
func (e *Engine) parseOne(psr *parser.Parser, f int, stored []byte, gz bool, readErr error) parsedFile {
	pf := parsedFile{f: f, stored: len(stored)}
	if readErr != nil {
		pf.err = fmt.Errorf("core: read file %d: %w", f, readErr)
		return pf
	}
	tSpan := time.Now()
	pf.item = pipesim.Item{
		ReadSec:  e.cfg.DiskLatencySec + float64(len(stored))/e.cfg.DiskBytesPerSec,
		IndexSec: make([]float64, e.cfg.CPUIndexers+e.cfg.GPUs),
	}
	t := time.Now()
	plain, err := corpus.Decompress(stored, gz)
	if err != nil {
		pf.err = fmt.Errorf("core: decompress file %d: %w", f, err)
		return pf
	}
	if gz {
		pf.item.DecompressSec = e.measure(t)
	}
	pf.plain = len(plain)

	t = time.Now()
	blk := e.blocks.Get(f % e.cfg.Parsers)
	scr := e.scratch.Get().(*fileScratch)
	scr.docs, scr.offsets = corpus.SplitDocsOffsetsAppend(plain, scr.docs[:0], scr.offsets[:0])
	docs := scr.docs
	for d, doc := range docs {
		psr.ParseDoc(uint32(d), doc, blk)
	}
	pf.item.ParseSec = e.measure(t)
	pf.blk = blk
	pf.docs = len(docs)
	pf.offsets = scr.offsets
	scr.byteLens = scr.byteLens[:0]
	for _, doc := range docs {
		scr.byteLens = append(scr.byteLens, len(doc))
	}
	pf.byteLens = scr.byteLens
	pf.scr = scr
	e.obs.span(telemetry.StageParse, f%e.cfg.Parsers, f, tSpan,
		int64(len(plain)), int64(blk.Tokens), int64(len(docs)))
	if err := e.cfg.Hooks.afterParse(f); err != nil {
		pf.err = err
	}
	return pf
}

// indexBlockConcurrent fans the block's shares out to all indexers in
// parallel and records their measured/modeled durations.
func (e *Engine) indexBlockConcurrent(blk *parser.Block, file int, docBase uint32, item *pipesim.Item, rep *Report) error {
	cpuShares, gpuShares := e.splitShares(blk)
	e.accountShares(blk)
	var wg sync.WaitGroup
	errs := make([]error, e.cfg.CPUIndexers+e.cfg.GPUs)
	var mu sync.Mutex // guards rep's GPU pre/post accumulators
	for i := range e.cpuIxs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := time.Now()
			if _, err := e.cpuIxs[i].IndexRun(cpuShares[i], docBase); err != nil {
				errs[i] = err
				return
			}
			item.IndexSec[i] = e.measure(t)
			e.obs.span(telemetry.StageIndex, i, file, t, 0, shareTokens(cpuShares[i]), 0)
		}(i)
	}
	for j := range e.gpuIxs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			t := time.Now()
			rs, err := e.gpuIxs[j].IndexRun(gpuShares[j], docBase)
			if err != nil {
				errs[e.cfg.CPUIndexers+j] = err
				return
			}
			item.IndexSec[e.cfg.CPUIndexers+j] = e.gpuShare(rs.PreSec, rs.KernelSec, rs.PostSec)
			e.obs.span(telemetry.StageIndex, e.cfg.CPUIndexers+j, file, t,
				0, shareTokens(gpuShares[j]), 0)
			mu.Lock()
			rep.PreProcessingSec += rs.PreSec
			rep.PostProcessingSec += rs.PostSec
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitShares partitions a block's groups by indexer owner in
// deterministic collection order. The returned slices are engine-owned
// scratch, valid until the next splitShares call: both executors call
// it from the (serial) sequencing loop and wait for every indexer to
// finish the block before moving on.
func (e *Engine) splitShares(blk *parser.Block) (cpuShares, gpuShares [][]*parser.Group) {
	s := &e.shares
	if len(s.cpu) != e.cfg.CPUIndexers {
		s.cpu = make([][]*parser.Group, e.cfg.CPUIndexers)
	}
	if len(s.gpu) != e.cfg.GPUs {
		s.gpu = make([][]*parser.Group, e.cfg.GPUs)
	}
	for i := range s.cpu {
		s.cpu[i] = s.cpu[i][:0]
	}
	for j := range s.gpu {
		s.gpu[j] = s.gpu[j][:0]
	}
	s.idxs = s.idxs[:0]
	for gi := range blk.Groups {
		s.idxs = append(s.idxs, gi)
	}
	sort.Ints(s.idxs)
	for _, gi := range s.idxs {
		kind, owner := e.assign.Owner(gi)
		if kind == sampling.KindCPU {
			s.cpu[owner] = append(s.cpu[owner], blk.Groups[gi])
		} else {
			s.gpu[owner] = append(s.gpu[owner], blk.Groups[gi])
		}
	}
	return s.cpu, s.gpu
}

// releaseParsed returns a fully post-processed file's block and scratch
// to their pools. Error paths skip it — a leaked buffer just falls back
// to the GC.
func (e *Engine) releaseParsed(pf *parsedFile) {
	e.blocks.Put(pf.blk)
	pf.blk = nil
	if pf.scr != nil {
		scr := pf.scr
		pf.scr = nil
		pf.offsets = nil
		pf.byteLens = nil
		e.scratch.Put(scr)
	}
}

// postProcessBlock runs the serialized per-run post-processing:
// combine postings, compress, write the run file, account stats.
func (e *Engine) postProcessBlock(pf *parsedFile, docBase uint32,
	fileName string, rep *Report, writer *store.IndexWriter) error {
	if err := e.cfg.Hooks.beforeWriteRun(pf.f); err != nil {
		return err
	}
	blk, docs, plainLen, item := pf.blk, pf.docs, pf.plain, &pf.item

	// Record document lengths (BM25 normalization) and the Step 1
	// <docID, location on disk> table (§III.C).
	fileIdx := uint32(len(e.docFiles))
	e.docFiles = append(e.docFiles, fileName)
	for d := 0; d < docs; d++ {
		e.docLens = append(e.docLens, uint32(blk.DocTokens[uint32(d)]))
		e.docLocs = append(e.docLocs, store.DocLocation{
			FileIdx: fileIdx,
			Offset:  uint32(pf.offsets[d]),
			Length:  uint32(pf.byteLens[d]),
		})
	}

	t := time.Now()
	rb := store.NewRunBuilderCodec(e.runSel)
	if err := e.flushRun(rb); err != nil {
		return err
	}
	firstDoc := docBase
	lastDoc := docBase
	if docs > 0 {
		lastDoc = docBase + uint32(docs) - 1
	}
	var runBytes int64
	if writer != nil {
		if err := writer.WriteRun(rb, firstDoc, lastDoc); err != nil {
			return err
		}
		runBytes = writer.Runs()[len(writer.Runs())-1].Bytes
	} else {
		runBytes = int64(len(rb.Finalize(firstDoc, lastDoc)))
	}
	rep.PostingsBytes += runBytes
	flushSec := e.measure(t)
	e.obs.span(telemetry.StageFlush, -1, pf.f, t, runBytes, 0, 0)
	item.PostSec = flushSec
	rep.PostProcessingSec += flushSec

	maxShare := 0.0
	for _, s := range item.IndexSec {
		if s > maxShare {
			maxShare = s
		}
	}
	rep.IndexingSec += maxShare
	if e.cfg.KeepPerFileStats {
		span := maxShare + flushSec
		rep.PerFile = append(rep.PerFile, FileStat{
			Name:              fileName,
			UncompressedBytes: int64(plainLen),
			IndexSec:          span,
			ThroughputMBps:    pipesim.Throughput(int64(plainLen), span),
		})
	}
	return nil
}

// finishReport runs the dictionary phases, Table V accounting and the
// pipeline schedule — shared by both executors.
func (e *Engine) finishReport(rep *Report, items []pipesim.Item, nIdx int, writer *store.IndexWriter) (*Report, error) {
	t := time.Now()
	dict := e.collectDictionary()
	rep.DictCombineSec = e.measure(t)
	rep.Terms = int64(len(dict))
	e.obs.span(telemetry.StageDictCombine, -1, -1, t, 0, 0, 0)

	t = time.Now()
	if writer != nil {
		if err := writer.WriteDocLens(e.docLens); err != nil {
			return nil, err
		}
		if err := writer.WriteDocTable(e.docFiles, e.docLocs); err != nil {
			return nil, err
		}
		if err := writer.Finish(dict); err != nil {
			return nil, err
		}
	}
	rep.DictionaryBytes = int64(store.FrontCodedSize(dict))
	rep.DictWriteSec = e.measure(t)
	e.obs.span(telemetry.StageDictWrite, -1, -1, t, rep.DictionaryBytes, 0, 0)

	for _, ix := range e.cpuIxs {
		st := ix.Stats()
		rep.CPUTokens += st.Tokens
		rep.CPUTerms += st.NewTerms
		rep.CPUChars += st.Chars
	}
	for _, ix := range e.gpuIxs {
		st := ix.Stats()
		rep.GPUTokens += st.Tokens
		rep.GPUTerms += st.NewTerms
		rep.GPUChars += st.Chars
		// Bound resident simulator memory between builds: drop the
		// device chunks that backed only this build's transient data.
		ix.Device().TrimTransients()
	}

	res := pipesim.Simulate(pipesim.Config{
		Parsers:         e.cfg.Parsers,
		Indexers:        nIdx,
		BufferPerParser: e.cfg.BufferPerParser,
	}, items)
	rep.Schedule = &res
	rep.ParsersSpanSec = res.ParsersOnlyMakespan
	rep.IndexersSpanSec = res.MakespanSec
	rep.TotalSec = rep.SamplingSec + res.MakespanSec + rep.DictCombineSec + rep.DictWriteSec
	rep.ThroughputMBps = pipesim.Throughput(rep.UncompressedBytes, rep.TotalSec)
	rep.IndexingThroughputMBps = pipesim.Throughput(rep.UncompressedBytes, rep.IndexersSpanSec)
	e.endObserve(rep)
	return rep, nil
}
