package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fastinvert/internal/corpus"
	"fastinvert/internal/cpuindexer"
	"fastinvert/internal/encoding"
	"fastinvert/internal/gpu"
	"fastinvert/internal/gpuindexer"
	"fastinvert/internal/parser"
	"fastinvert/internal/pipesim"
	"fastinvert/internal/postings"
	"fastinvert/internal/sampling"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
	"fastinvert/internal/trie"
)

// Engine builds inverted files from a corpus source using the paper's
// pipelined CPU+GPU strategy.
type Engine struct {
	cfg Config

	cpuIxs []*cpuindexer.Indexer
	gpuIxs []*gpuindexer.Indexer
	assign *sampling.Assignment

	docLens  []uint32 // per-document token counts, in global docID order
	docFiles []string // container-file names, one per processed file
	docLocs  []store.DocLocation

	// Buffer recycling (the paper's fixed pipeline buffers, Fig. 8):
	// blocks and per-file scratch circulate between the parser stage and
	// the sequencer instead of being reallocated per container file, and
	// the share partitions are engine-owned because the sequencer is the
	// only caller of splitShares and waits for every indexer before the
	// next block.
	blocks  *parser.BlockPool
	scratch sync.Pool // *fileScratch
	shares  shareScratch

	// Telemetry state for the current build (observe.go): the nil-safe
	// observer seam and the per-trie-collection token accumulator.
	obs        spanObserver
	collTokens map[int]int64

	// runSel is the per-list codec selector resolved from
	// Config.RunCodec at New; nil keeps the legacy varbyte run format.
	runSel encoding.Selector
}

// fileScratch is the recyclable per-file parser-stage scratch: the doc
// split and the offset/length columns that postProcessBlock copies into
// the document-location table. It travels inside parsedFile and returns
// to the pool via releaseParsed.
type fileScratch struct {
	docs     [][]byte
	offsets  []int
	byteLens []int
}

// shareScratch holds splitShares' reusable output slices.
type shareScratch struct {
	cpu  [][]*parser.Group
	gpu  [][]*parser.Group
	idxs []int
}

// New validates the configuration and allocates the indexers.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CPUThroughputScale <= 0 {
		cfg.CPUThroughputScale = 1
	}
	e := &Engine{cfg: cfg, blocks: parser.NewBlockPool()}
	e.scratch.New = func() any { return &fileScratch{} }
	if cfg.RunCodec != "" {
		sel, err := encoding.SelectorFor(cfg.RunCodec)
		if err != nil {
			return nil, fmt.Errorf("core: run codec: %w", err)
		}
		e.runSel = sel
	}
	for i := 0; i < cfg.CPUIndexers; i++ {
		ix := cpuindexer.New()
		ix.NoCache = cfg.NoCacheDictionary
		e.cpuIxs = append(e.cpuIxs, ix)
	}
	for j := 0; j < cfg.GPUs; j++ {
		dev, err := gpu.NewDevice(cfg.GPU)
		if err != nil {
			return nil, err
		}
		e.gpuIxs = append(e.gpuIxs, gpuindexer.New(dev, gpuindexer.Config{
			ThreadBlocks: cfg.GPUThreadBlocks,
		}))
	}
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) measure(t0 time.Time) float64 {
	return time.Since(t0).Seconds() * e.cfg.CPUThroughputScale
}

// Build runs the complete pipeline over src and returns the report.
// When cfg.OutDir is set the run files, docmap and dictionary are
// persisted there.
func (e *Engine) Build(src corpus.Source) (*Report, error) {
	return e.BuildContext(context.Background(), src)
}

// BuildContext is Build under a context: cancellation or deadline
// expiry is observed between files and aborts the build with ctx.Err().
// A canceled build leaves any partially written OutDir behind; rerun
// to completion (or remove it) before opening.
func (e *Engine) BuildContext(ctx context.Context, src corpus.Source) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &Report{Files: src.NumFiles()}
	e.docLens = e.docLens[:0]
	e.docFiles = e.docFiles[:0]
	e.docLocs = e.docLocs[:0]
	e.beginObserve(src.NumFiles(), false)

	// Sampling phase (§III.E) — serialized before the pipeline.
	t0 := time.Now()
	counts, err := sampling.Sample(src, e.cfg.Sampling)
	if err != nil {
		return nil, err
	}
	if e.cfg.RandomSplit {
		e.assign, err = sampling.AssignRandom(counts, e.cfg.CPUIndexers, e.cfg.GPUs,
			e.cfg.Sampling.PopularCount, e.cfg.RandomSplitSeed)
	} else {
		e.assign, err = sampling.Assign(counts, e.cfg.CPUIndexers, e.cfg.GPUs,
			e.cfg.Sampling.PopularCount)
	}
	if err != nil {
		return nil, err
	}
	rep.SamplingSec = e.measure(t0)
	e.obs.span(telemetry.StageSampling, -1, -1, t0, 0, 0, 0)

	var writer *store.IndexWriter
	if e.cfg.OutDir != "" {
		writer, err = store.NewIndexWriter(e.cfg.OutDir)
		if err != nil {
			return nil, err
		}
	}

	nIdx := e.cfg.CPUIndexers + e.cfg.GPUs
	items := make([]pipesim.Item, 0, src.NumFiles())
	var docBase uint32
	p := e.newParser()

	for f := 0; f < src.NumFiles(); f++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tRead := time.Now()
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("core: read %s: %w", src.FileName(f), err)
		}
		e.obs.span(telemetry.StageRead, -1, f, tRead, int64(len(stored)), 0, 0)
		pf := e.parseOne(p, f, stored, compressed, nil)
		if pf.err != nil {
			return nil, pf.err
		}
		rep.CompressedBytes += int64(pf.stored)
		rep.UncompressedBytes += int64(pf.plain)
		rep.Docs += int64(pf.docs)
		rep.Tokens += int64(pf.blk.Tokens)

		// Index: every indexer consumes its share of this block,
		// serially here (BuildConcurrent overlaps them).
		if err := e.cfg.Hooks.beforeIndex(f); err != nil {
			return nil, err
		}
		cpuShares, gpuShares := e.splitShares(pf.blk)
		e.accountShares(pf.blk)
		for i, ix := range e.cpuIxs {
			t := time.Now()
			if _, err := ix.IndexRun(cpuShares[i], docBase); err != nil {
				return nil, err
			}
			pf.item.IndexSec[i] = e.measure(t)
			e.obs.span(telemetry.StageIndex, i, f, t, 0, shareTokens(cpuShares[i]), 0)
		}
		for j, ix := range e.gpuIxs {
			t := time.Now()
			rs, err := ix.IndexRun(gpuShares[j], docBase)
			if err != nil {
				return nil, err
			}
			pf.item.IndexSec[e.cfg.CPUIndexers+j] = e.gpuShare(rs.PreSec, rs.KernelSec, rs.PostSec)
			rep.PreProcessingSec += rs.PreSec
			rep.PostProcessingSec += rs.PostSec
			e.obs.span(telemetry.StageIndex, e.cfg.CPUIndexers+j, f, t,
				0, shareTokens(gpuShares[j]), 0)
		}

		if err := e.postProcessBlock(&pf, docBase, src.FileName(f), rep, writer); err != nil {
			return nil, err
		}
		e.releaseParsed(&pf)
		docBase += uint32(pf.docs)
		items = append(items, pf.item)
		if e.cfg.Progress != nil {
			e.cfg.Progress(f+1, src.NumFiles())
		}
	}
	return e.finishReport(rep, items, nIdx, writer)
}

// gpuShare converts one GPU run's phase times into its pipeline share,
// optionally hiding the input transfer behind the kernel (double-
// buffered streams).
func (e *Engine) gpuShare(pre, kernel, post float64) float64 {
	if e.cfg.OverlapGPUTransfers {
		if kernel > pre {
			return kernel + post
		}
		return pre + post
	}
	return pre + kernel + post
}

// flushRun drains every indexer's per-run postings into the builder in
// deterministic (indexer, collection, slot) order.
func (e *Engine) flushRun(rb *store.RunBuilder) error {
	addList := func(coll int, slot int32, l *postings.List) error {
		if l.Positional() {
			return rb.AddPositionalList(coll, slot, l.DocIDs, l.TFs, l.Positions)
		}
		return rb.AddList(coll, slot, l.DocIDs, l.TFs)
	}
	for _, ix := range e.cpuIxs {
		for _, coll := range ix.Collections() {
			st := ix.Store(coll)
			for slot := 0; slot < st.NumSlots(); slot++ {
				if err := addList(coll, int32(slot), st.List(int32(slot))); err != nil {
					return err
				}
			}
		}
		ix.ResetRunPostings()
	}
	for _, ix := range e.gpuIxs {
		if e.runSel != nil {
			// Non-varbyte codecs: the GPU indexer encodes its own lists
			// and ships compressed bytes (byte-identical output, see
			// gpuindexer.EncodeRun; resets run postings itself).
			if err := ix.EncodeRun(e.runSel, rb); err != nil {
				return err
			}
			continue
		}
		for _, coll := range ix.Collections() {
			st := ix.Store(coll)
			for slot := 0; slot < st.NumSlots(); slot++ {
				if err := addList(coll, int32(slot), st.List(int32(slot))); err != nil {
					return err
				}
			}
		}
		ix.ResetRunPostings()
	}
	return nil
}

// collectDictionary walks every indexer's dictionaries into one sorted
// entry list with full terms restored from the trie prefixes. The
// entry slice is pre-sized from the indexer term counters and prefix
// restoration reuses one scratch buffer, so the combine step costs one
// allocation per term (the entry's string) plus the slice itself.
func (e *Engine) collectDictionary() []store.DictEntry {
	terms := int64(0)
	for _, ix := range e.cpuIxs {
		terms += ix.Stats().NewTerms
	}
	for _, ix := range e.gpuIxs {
		terms += ix.Stats().NewTerms
	}
	dict := make([]store.DictEntry, 0, terms)
	var scratch []byte
	appendEntry := func(coll int, stripped []byte, slot int32) {
		scratch = trie.RestoreAppend(coll, scratch[:0], stripped)
		dict = append(dict, store.DictEntry{
			Term:       string(scratch),
			Collection: int32(coll),
			Slot:       slot,
		})
	}
	for _, ix := range e.cpuIxs {
		for _, coll := range ix.Collections() {
			coll := coll
			ix.WalkDictionary(coll, func(stripped []byte, slot int32) bool {
				appendEntry(coll, stripped, slot)
				return true
			})
		}
	}
	for _, ix := range e.gpuIxs {
		// Bulk export: one arena snapshot per device (the paper's
		// final dictionary move to host memory).
		ix.ExportDictionary(func(coll int, stripped []byte, slot int32) bool {
			appendEntry(coll, stripped, slot)
			return true
		})
	}
	store.SortDictEntries(dict)
	return dict
}

// ParseOnly measures Fig. 10's scenario (3): the parsing pipeline with
// no indexers consuming it.
func (e *Engine) ParseOnly(src corpus.Source) (*Report, error) {
	rep := &Report{Files: src.NumFiles()}
	p := e.newParser()
	items := make([]pipesim.Item, 0, src.NumFiles())
	for f := 0; f < src.NumFiles(); f++ {
		stored, compressed, err := src.ReadFile(f)
		if err != nil {
			return nil, err
		}
		rep.CompressedBytes += int64(len(stored))
		item := pipesim.Item{
			ReadSec: e.cfg.DiskLatencySec + float64(len(stored))/e.cfg.DiskBytesPerSec,
		}
		t := time.Now()
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, err
		}
		if compressed {
			item.DecompressSec = e.measure(t)
		}
		rep.UncompressedBytes += int64(len(plain))
		t = time.Now()
		blk := e.blocks.Get(f % e.cfg.Parsers)
		docs := corpus.SplitDocs(plain)
		for d, doc := range docs {
			p.ParseDoc(uint32(d), doc, blk)
		}
		item.ParseSec = e.measure(t)
		rep.Docs += int64(len(docs))
		rep.Tokens += int64(blk.Tokens)
		e.blocks.Put(blk)
		items = append(items, item)
	}
	res := pipesim.Simulate(pipesim.Config{
		Parsers:         e.cfg.Parsers,
		Indexers:        0,
		BufferPerParser: e.cfg.BufferPerParser,
	}, items)
	rep.Schedule = &res
	rep.ParsersSpanSec = res.ParsersOnlyMakespan
	rep.TotalSec = res.MakespanSec
	rep.ThroughputMBps = pipesim.Throughput(rep.UncompressedBytes, rep.TotalSec)
	return rep, nil
}
