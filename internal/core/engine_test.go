package core

import (
	"path/filepath"
	"testing"

	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/postings"
	"fastinvert/internal/reference"
	"fastinvert/internal/store"
)

func testSource(files int) *corpus.MemSource {
	p := corpus.ClueWeb09(1)
	p.VocabSize = 6000
	p.DocsPerFile = 10
	p.MeanDocTokens = 70
	return corpus.NewMemSource(corpus.NewGenerator(p), files)
}

func testConfig(parsers, cpus, gpus int) Config {
	cfg := DefaultConfig()
	cfg.Parsers = parsers
	cfg.CPUIndexers = cpus
	cfg.GPUs = gpus
	g := gpu.TeslaC1060()
	g.SMs = 4
	g.DeviceMemBytes = 64 << 20
	cfg.GPU = g
	cfg.GPUThreadBlocks = 16
	cfg.Sampling.Ratio = 0.2
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(0, 1, 0)
	if _, err := New(cfg); err == nil {
		t.Error("zero parsers must fail")
	}
	cfg = testConfig(1, 0, 0)
	if _, err := New(cfg); err == nil {
		t.Error("zero indexers must fail")
	}
	cfg = testConfig(2, 1, 1)
	if _, err := New(cfg); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// indexFromDisk rebuilds term -> postings from the persisted index.
func indexFromDisk(t *testing.T, dir string) map[string]*postings.List {
	t.Helper()
	r, err := store.OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*postings.List, r.Terms())
	for _, e := range r.Dictionary() {
		l, err := r.Postings(e.Term)
		if err != nil {
			t.Fatalf("postings(%q): %v", e.Term, err)
		}
		out[e.Term] = l
	}
	return out
}

// TestBuildMatchesReference is the end-to-end correctness pin: for
// several pipeline shapes (CPU-only, GPU-only, hybrid), the persisted
// index equals the serial reference indexer, postings and all.
func TestBuildMatchesReference(t *testing.T) {
	src := testSource(4)
	ref, err := reference.BuildFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		name              string
		parsers, cpu, gpu int
	}{
		{"1p-1cpu", 1, 1, 0},
		{"3p-2cpu", 3, 2, 0},
		{"2p-2gpu", 2, 0, 2},
		{"2p-2cpu-2gpu", 2, 2, 2},
	}
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := testConfig(s.parsers, s.cpu, s.gpu)
			cfg.OutDir = filepath.Join(t.TempDir(), "idx")
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := eng.Build(src)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Docs != ref.Docs || rep.Tokens != ref.Tokens {
				t.Fatalf("docs/tokens %d/%d, want %d/%d",
					rep.Docs, rep.Tokens, ref.Docs, ref.Tokens)
			}
			if rep.Terms != int64(ref.Terms()) {
				t.Fatalf("terms %d, want %d", rep.Terms, ref.Terms())
			}
			got := indexFromDisk(t, cfg.OutDir)
			if ok, diff := ref.Equal(got); !ok {
				t.Fatalf("postings differ from reference at %q", diff)
			}
		})
	}
}

func TestReportAccounting(t *testing.T) {
	src := testSource(4)
	cfg := testConfig(2, 1, 1)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SamplingSec <= 0 || rep.TotalSec <= 0 {
		t.Errorf("missing times: %+v", rep)
	}
	if rep.IndexersSpanSec < rep.IndexingSec {
		t.Errorf("span %.4f below serialized indexing %.4f",
			rep.IndexersSpanSec, rep.IndexingSec)
	}
	if rep.ThroughputMBps <= 0 || rep.IndexingThroughputMBps < rep.ThroughputMBps {
		t.Errorf("throughputs inconsistent: total=%.2f indexing=%.2f",
			rep.ThroughputMBps, rep.IndexingThroughputMBps)
	}
	if rep.UncompressedBytes <= rep.CompressedBytes {
		t.Error("compression accounting wrong")
	}
	if len(rep.PerFile) != 4 {
		t.Errorf("PerFile = %d entries", len(rep.PerFile))
	}
	// Both indexer classes did work (Table V nonzero).
	if rep.CPUTokens == 0 || rep.GPUTokens == 0 {
		t.Errorf("workload split degenerate: cpu=%d gpu=%d", rep.CPUTokens, rep.GPUTokens)
	}
	if rep.CPUTokens+rep.GPUTokens != rep.Tokens {
		t.Errorf("token split %d+%d != %d", rep.CPUTokens, rep.GPUTokens, rep.Tokens)
	}
	if rep.PreProcessingSec <= 0 || rep.PostProcessingSec <= 0 {
		t.Error("GPU pre/post times missing")
	}
	if rep.DictionaryBytes <= 0 || rep.PostingsBytes <= 0 {
		t.Error("output sizes missing")
	}
}

// TestGPUGetsManyMoreTermsThanCPU reproduces Table V's shape: the GPU
// (Zipf tail) sees far more distinct terms, the CPU (Zipf head)
// comparable token counts.
func TestGPUGetsManyMoreTermsThanCPU(t *testing.T) {
	src := testSource(6)
	eng, err := New(testConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUTerms <= rep.CPUTerms {
		t.Errorf("GPU terms %d should exceed CPU terms %d (Zipf tail)",
			rep.GPUTerms, rep.CPUTerms)
	}
	ratio := float64(rep.CPUTokens) / float64(rep.GPUTokens+1)
	if ratio < 0.15 {
		t.Errorf("CPU tokens (%d) vanishingly small next to GPU (%d): popular split broken",
			rep.CPUTokens, rep.GPUTokens)
	}
}

func TestParseOnlyScenario(t *testing.T) {
	src := testSource(4)
	eng, err := New(testConfig(3, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.ParseOnly(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSec <= 0 || rep.Docs <= 0 {
		t.Fatalf("degenerate parse-only report: %+v", rep)
	}
	if rep.IndexersSpanSec != 0 {
		t.Error("parse-only must not report indexer span")
	}
}

func TestMoreParsersImproveParseSpan(t *testing.T) {
	src := testSource(6)
	span := func(parsers int) float64 {
		eng, err := New(testConfig(parsers, 1, 0))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.ParseOnly(src)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalSec
	}
	one, four := span(1), span(4)
	if four >= one {
		t.Errorf("4 parsers (%.4f) not faster than 1 (%.4f) in the model", four, one)
	}
}

// TestDocTableLocatesSources verifies the Step 1 <docID, location on
// disk> table (§III.C): every docID resolves to its container file and
// byte range, and re-reading that range yields the document.
func TestDocTableLocatesSources(t *testing.T) {
	src := testSource(3)
	cfg := testConfig(2, 1, 1)
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the expected doc list from the source.
	var wantDocs [][]byte
	var wantFiles []string
	for f := 0; f < src.NumFiles(); f++ {
		stored, gz, err := src.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := corpus.Decompress(stored, gz)
		if err != nil {
			t.Fatal(err)
		}
		docs := corpus.SplitDocs(plain)
		for range docs {
			wantFiles = append(wantFiles, src.FileName(f))
		}
		wantDocs = append(wantDocs, docs...)
	}
	if int64(len(wantDocs)) != rep.Docs {
		t.Fatalf("expected %d docs, report says %d", len(wantDocs), rep.Docs)
	}
	// Decompress each file once for verification.
	plains := map[string][]byte{}
	for f := 0; f < src.NumFiles(); f++ {
		stored, gz, _ := src.ReadFile(f)
		plain, _ := corpus.Decompress(stored, gz)
		plains[src.FileName(f)] = plain
	}
	for doc := uint32(0); doc < uint32(rep.Docs); doc++ {
		file, off, n, ok := r.DocLocation(doc)
		if !ok {
			t.Fatalf("doc %d missing from doc table", doc)
		}
		if file != wantFiles[doc] {
			t.Fatalf("doc %d in file %q, want %q", doc, file, wantFiles[doc])
		}
		got := plains[file][off : off+n]
		if string(got) != string(wantDocs[doc]) {
			t.Fatalf("doc %d bytes do not round-trip through the doc table", doc)
		}
	}
	if _, _, _, ok := r.DocLocation(uint32(rep.Docs)); ok {
		t.Error("out-of-range docID must not resolve")
	}
}

func TestCustomStopWords(t *testing.T) {
	src := testSource(2)
	cfg := testConfig(2, 1, 1)
	cfg.StopWords = []string{"water", "people"} // drop two content stems
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Build(src); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	hasThe, hasWater := false, false
	for _, e := range r.Dictionary() {
		switch e.Term {
		case "the":
			hasThe = true
		case "water":
			hasWater = true
		}
	}
	if hasWater {
		t.Error("custom stop word 'water' was indexed")
	}
	if !hasThe {
		t.Error("'the' should be indexed when the default list is replaced")
	}

	// Empty non-nil list disables stop-word removal entirely.
	cfg2 := testConfig(2, 1, 0)
	cfg2.StopWords = []string{}
	cfg2.OutDir = filepath.Join(t.TempDir(), "idx2")
	eng2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Build(src); err != nil {
		t.Fatal(err)
	}
	r2, err := store.OpenIndex(cfg2.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Terms() <= r.Terms() {
		t.Errorf("no-stop-word index (%d terms) should exceed filtered (%d)",
			r2.Terms(), r.Terms())
	}
}

func TestProgressCallback(t *testing.T) {
	src := testSource(3)
	for _, concurrent := range []bool{false, true} {
		var calls []int
		cfg := testConfig(2, 1, 0)
		cfg.Progress = func(done, total int) {
			if total != 3 {
				t.Errorf("total = %d, want 3", total)
			}
			calls = append(calls, done)
		}
		cfg.Concurrent = concurrent
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if concurrent {
			_, err = eng.BuildConcurrent(src)
		} else {
			_, err = eng.Build(src)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != 3 || calls[0] != 1 || calls[2] != 3 {
			t.Errorf("concurrent=%v: progress calls = %v", concurrent, calls)
		}
	}
}

func TestBuiltIndexPassesVerify(t *testing.T) {
	src := testSource(3)
	cfg := testConfig(2, 1, 1)
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := store.Verify(cfg.OutDir)
	if err != nil {
		t.Fatalf("engine-built index failed verification: %v", err)
	}
	if vr.Terms != int(rep.Terms) || vr.Docs != int(rep.Docs) {
		t.Errorf("verify report %+v disagrees with build report", vr)
	}
	if !vr.HasDocLens || !vr.HasDocTable {
		t.Error("engine index must carry doc lengths and doc table")
	}
}

func TestDeterministicDictionary(t *testing.T) {
	src := testSource(3)
	build := func() int64 {
		cfg := testConfig(2, 1, 1)
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Build(src)
		if err != nil {
			t.Fatal(err)
		}
		return rep.DictionaryBytes
	}
	if a, b := build(), build(); a != b {
		t.Errorf("dictionary bytes differ across identical builds: %d vs %d", a, b)
	}
}
