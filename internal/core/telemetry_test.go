package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"fastinvert/internal/telemetry"
)

// traceLine mirrors the JSONL event envelope for test-side decoding.
type traceLine struct {
	Ev     string            `json:"ev"`
	Span   *telemetry.Span   `json:"span"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
	Attrs  map[string]any    `json:"attrs"`
}

// TestPipelineTelemetry runs both executors with a Collector attached
// and checks the resulting trace end-to-end: it validates (spans nest,
// schema shape), busy+stall accounts for ≥90% of wall-clock, per-stage
// span payloads sum to the build report's totals, and the
// per-collection token counters reproduce the CPU/GPU split.
func TestPipelineTelemetry(t *testing.T) {
	const files = 4
	for _, mode := range []string{"serial", "concurrent"} {
		t.Run(mode, func(t *testing.T) {
			src := testSource(files)
			var buf bytes.Buffer
			tw := telemetry.NewTraceWriter(&buf)
			reg := telemetry.NewRegistry()
			col := telemetry.NewCollector(reg, tw)

			cfg := testConfig(2, 1, 2)
			cfg.OutDir = filepath.Join(t.TempDir(), "idx")
			cfg.Observer = col
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var rep *Report
			if mode == "serial" {
				rep, err = eng.Build(src)
			} else {
				rep, err = eng.BuildConcurrent(src)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := tw.Close(); err != nil {
				t.Fatal(err)
			}

			st, err := telemetry.ValidateTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			if st.WallSec <= 0 {
				t.Fatalf("summary wall_sec = %v, want > 0", st.WallSec)
			}
			// The acceptance gate: derived stalls close every worker's
			// timeline, so busy+stall sums to wall-clock within 10%.
			if st.BusyStallCoverage < 0.9 {
				t.Errorf("busy+stall coverage = %.1f%%, want >= 90%%", 100*st.BusyStallCoverage)
			}
			for wk, cov := range st.WorkerCoverage {
				if cov < 0.99 {
					t.Errorf("worker %s busy+stall covers %.1f%% of its window", wk, 100*cov)
				}
			}

			// Re-read the raw events and sum span payloads against the
			// build report.
			var parseTokens, parseDocs, indexTokens int64
			var flushes, reads int
			var collCPU, collGPU float64
			sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
			sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
			for sc.Scan() {
				var ev traceLine
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Fatal(err)
				}
				switch {
				case ev.Ev == "span" && ev.Span.Stage == telemetry.StageParse:
					parseTokens += ev.Span.Tokens
					parseDocs += ev.Span.Docs
				case ev.Ev == "span" && ev.Span.Stage == telemetry.StageIndex:
					indexTokens += ev.Span.Tokens
				case ev.Ev == "span" && ev.Span.Stage == telemetry.StageFlush:
					flushes++
				case ev.Ev == "span" && ev.Span.Stage == telemetry.StageRead:
					reads++
				case ev.Ev == "counter" && ev.Name == "collection_tokens":
					if ev.Labels["kind"] == "gpu" {
						collGPU += ev.Value
					} else {
						collCPU += ev.Value
					}
				}
			}
			if parseTokens != rep.Tokens || parseDocs != rep.Docs {
				t.Errorf("parse spans sum to %d tokens / %d docs, report says %d / %d",
					parseTokens, parseDocs, rep.Tokens, rep.Docs)
			}
			if indexTokens != rep.Tokens {
				t.Errorf("index spans sum to %d tokens, report says %d", indexTokens, rep.Tokens)
			}
			if flushes != files || reads != files {
				t.Errorf("flush/read spans = %d/%d, want %d each", flushes, reads, files)
			}
			if int64(collCPU) != rep.CPUTokens || int64(collGPU) != rep.GPUTokens {
				t.Errorf("collection_tokens split %v/%v, report %d/%d",
					collCPU, collGPU, rep.CPUTokens, rep.GPUTokens)
			}

			// Registry view must agree with the report too.
			if v := reg.Counter("fastinvert_build_docs_total", "").Value(); int64(v) != rep.Docs {
				t.Errorf("registry docs = %v, report %d", v, rep.Docs)
			}
			if v := reg.Counter("fastinvert_build_tokens_total", "").Value(); int64(v) != rep.Tokens {
				t.Errorf("registry tokens = %v, report %d", v, rep.Tokens)
			}
		})
	}
}

// TestObserverOffByDefault: a nil Observer must leave the engine's
// observation path completely inert (no collTokens allocation).
func TestObserverOffByDefault(t *testing.T) {
	src := testSource(2)
	cfg := testConfig(2, 1, 0)
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Build(src); err != nil {
		t.Fatal(err)
	}
	if eng.collTokens != nil {
		t.Error("collTokens allocated without an observer")
	}
}
