// Package core implements the paper's complete pipelined indexing
// system (§III, Fig. 1/8/9): parallel parsers fed by a serialized disk
// scheduler, the sampling-driven CPU/GPU collection split, CPU and GPU
// indexers consuming parsed blocks in strict order, per-run postings
// output, and the final dictionary combine/write.
//
// The engine executes the full computation — every document is parsed,
// every term inserted into a real dictionary, every posting emitted and
// optionally written to disk — while the parallel timing of the paper's
// hardware is obtained from the pipesim schedule fed with measured
// per-stage serial durations (CPU stages), the GPU simulator's cycle
// model (GPU shares), and the disk bandwidth model (reads). This split
// keeps results correct everywhere and timing shapes reproducible even
// on single-core hosts.
package core

import (
	"fmt"

	"fastinvert/internal/encoding"
	"fastinvert/internal/gpu"
	"fastinvert/internal/sampling"
	"fastinvert/internal/telemetry"
)

// Config selects the pipeline shape and models.
type Config struct {
	// Parsers is M, the number of parser threads (Fig. 10 sweeps 1-7).
	Parsers int

	// CPUIndexers is N1; CPUIndexers+Parsers is bounded by the
	// modeled core count on the paper's machine, but the engine does
	// not enforce that — Fig. 10 needs the full sweep.
	CPUIndexers int

	// GPUs is N2, the number of simulated GPU devices.
	GPUs int

	// GPU is the device model for each GPU (TeslaC1060 by default,
	// with a smaller memory for test scale).
	GPU gpu.Config

	// GPUThreadBlocks is the grid size per kernel launch (480 in the
	// paper's tuning).
	GPUThreadBlocks int

	// Sampling tunes the popularity sample (§III.E).
	Sampling sampling.Config

	// DiskBytesPerSec and DiskLatencySec model the serialized
	// container-file reads; the paper's source is a remote disk over
	// 1 Gb Ethernet (~117 MB/s).
	DiskBytesPerSec float64
	DiskLatencySec  float64

	// CPUThroughputScale scales measured CPU stage durations to the
	// modeled platform. 1.0 reports this host's own speeds.
	CPUThroughputScale float64

	// BufferPerParser is the parsed-block buffer depth per parser.
	BufferPerParser int

	// OutDir, when non-empty, receives run files, the docmap and the
	// dictionary. When empty the postings are still built and
	// compressed (so post-processing cost is real) but not persisted.
	OutDir string

	// NoCacheDictionary disables the B-tree string caches (ablation).
	NoCacheDictionary bool

	// RandomSplit replaces the popularity-based CPU/GPU collection
	// split with a seeded random popular set (ablation of §III.E).
	RandomSplit     bool
	RandomSplitSeed int64

	// KeepPerFileStats retains Fig. 11's per-file series.
	KeepPerFileStats bool

	// OverlapGPUTransfers models double-buffered CUDA streams: the
	// next run's host-to-device input transfer overlaps the current
	// kernel, so a GPU's per-run share becomes max(transfer, kernel)
	// plus the output copy, instead of their sum. The paper's §IV.B
	// identifies input transfer as a limit on multi-GPU indexing.
	OverlapGPUTransfers bool

	// Positional builds positional postings: every occurrence carries
	// its in-document token position through the parsed streams, both
	// indexer classes, and into the run files — enabling phrase
	// queries (the paper's Ivory comparison notes positional postings
	// as the heavier-output variant, §IV.D).
	Positional bool

	// StopWords overrides the default English stop-word list (nil
	// keeps the default; an empty non-nil slice disables stop-word
	// removal entirely).
	StopWords []string

	// RunCodec selects how run files encode postings lists: "auto"
	// for per-list self-tuning selection, a codec name ("varbyte",
	// "gamma", "golomb", "bitpack", "eliasfano") to force one codec,
	// or empty for the legacy varbyte format (version-3 run files,
	// byte-identical to pre-codec builds).
	RunCodec string

	// Progress, when non-nil, is invoked after each container file
	// completes its run (done of total files). Called from the build
	// goroutine; keep it fast.
	Progress func(done, total int)

	// Concurrent runs the pipeline with real goroutine parallelism
	// (disk reader, M parsers, parallel indexer fan-out) instead of
	// the serial executor. Output is bit-identical either way; on a
	// multicore host the concurrent executor overlaps the stages the
	// way the paper's threads do. Timing reports are modeled
	// identically in both modes.
	Concurrent bool

	// Hooks exposes fault-injection points inside the pipeline stages,
	// used by the differential verification harness (internal/verify)
	// to prove the build either completes correctly or fails cleanly.
	// nil (the normal case) is a no-op.
	Hooks *Hooks

	// Observer receives stage-level telemetry from the same pipeline
	// boundaries the Hooks fire at — read/parse/index/flush spans with
	// bytes/tokens/docs, buffer-occupancy samples from the sequencer,
	// and per-trie-collection token totals for CPU/GPU split-skew
	// analysis. telemetry.NewCollector is the standard implementation
	// (registry metrics, JSONL trace, live progress); nil disables
	// observation at the cost of one nil check per boundary. Observer
	// methods run on stage goroutines in the concurrent executor and
	// must be safe for concurrent use.
	Observer telemetry.Observer
}

// Hooks are optional callbacks fired at the pipeline's stage
// boundaries. A hook returning a non-nil error aborts the build with
// that error after the stage goroutines drain — no goroutine may be
// left behind. Hooks run on stage goroutines in the concurrent
// executor and must be safe for concurrent use.
type Hooks struct {
	// AfterParse fires in the parser stage once file f is parsed,
	// before its block is handed to the sequencer.
	AfterParse func(file int) error

	// BeforeIndex fires in the sequencer before file f's block fans
	// out to the indexers (the indexer-buffer boundary).
	BeforeIndex func(file int) error

	// BeforeWriteRun fires before file f's run is combined,
	// compressed and written (the store-writer boundary).
	BeforeWriteRun func(file int) error
}

func (h *Hooks) afterParse(f int) error {
	if h == nil || h.AfterParse == nil {
		return nil
	}
	return h.AfterParse(f)
}

func (h *Hooks) beforeIndex(f int) error {
	if h == nil || h.BeforeIndex == nil {
		return nil
	}
	return h.BeforeIndex(f)
}

func (h *Hooks) beforeWriteRun(f int) error {
	if h == nil || h.BeforeWriteRun == nil {
		return nil
	}
	return h.BeforeWriteRun(f)
}

// DefaultConfig mirrors the paper's best configuration (§IV.C): six
// parsers, two CPU indexers, two GPUs.
func DefaultConfig() Config {
	g := gpu.TeslaC1060()
	g.DeviceMemBytes = 256 << 20
	return Config{
		Parsers:            6,
		CPUIndexers:        2,
		GPUs:               2,
		GPU:                g,
		GPUThreadBlocks:    480,
		Sampling:           sampling.DefaultConfig(),
		DiskBytesPerSec:    117e6, // 1 Gb Ethernet payload rate
		DiskLatencySec:     2e-3,
		CPUThroughputScale: 1.0,
		BufferPerParser:    1,
		KeepPerFileStats:   true,
	}
}

func (c Config) validate() error {
	if c.Parsers < 1 {
		return fmt.Errorf("core: need at least one parser")
	}
	if c.CPUIndexers < 0 || c.GPUs < 0 {
		return fmt.Errorf("core: negative indexer counts")
	}
	if c.CPUIndexers+c.GPUs == 0 {
		return fmt.Errorf("core: need at least one indexer (Fig. 10's parser-only scenario is ParseOnly)")
	}
	if c.DiskBytesPerSec <= 0 {
		return fmt.Errorf("core: disk bandwidth must be positive")
	}
	if c.RunCodec != "" {
		if _, err := encoding.SelectorFor(c.RunCodec); err != nil {
			return fmt.Errorf("core: run codec: %w", err)
		}
	}
	return nil
}
