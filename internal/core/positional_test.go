package core

import (
	"path/filepath"
	"testing"

	"fastinvert/internal/reference"
	"fastinvert/internal/store"
)

// TestPositionalBuildMatchesReference pins the positional pipeline end
// to end: the persisted positional index (both executors, CPU+GPU mix)
// equals the positional reference indexer including every position
// list.
func TestPositionalBuildMatchesReference(t *testing.T) {
	src := testSource(4)
	ref, err := reference.BuildPositionalFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, concurrent := range []bool{false, true} {
		cfg := testConfig(3, 2, 2)
		cfg.Positional = true
		cfg.OutDir = filepath.Join(t.TempDir(), "idx")
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if concurrent {
			_, err = eng.BuildConcurrent(src)
		} else {
			_, err = eng.Build(src)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := indexFromDisk(t, cfg.OutDir)
		// Spot-check positions exist at all.
		anyPositions := false
		for _, l := range got {
			if l.Positional() {
				anyPositions = true
				break
			}
		}
		if !anyPositions {
			t.Fatal("positional build produced no positions")
		}
		if ok, diff := ref.Equal(got); !ok {
			t.Fatalf("concurrent=%v: positional postings differ at %q", concurrent, diff)
		}
		if _, err := store.Verify(cfg.OutDir); err != nil {
			t.Fatalf("positional index fails verification: %v", err)
		}
	}
}
