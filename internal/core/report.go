package core

import "fastinvert/internal/pipesim"

// Report is the engine's full accounting of one Build, structured to
// regenerate the paper's tables directly.
type Report struct {
	// Collection totals.
	Files             int
	Docs              int64
	Tokens            int64
	Terms             int64
	CompressedBytes   int64
	UncompressedBytes int64

	// Table VI rows (modeled seconds).
	SamplingSec     float64
	ParsersSpanSec  float64 // completion of the last parse
	IndexersSpanSec float64 // completion of the last indexed block
	DictCombineSec  float64
	DictWriteSec    float64
	TotalSec        float64

	// Table IV decomposition (sums over runs, modeled seconds).
	PreProcessingSec  float64 // GPU HtoD transfers
	IndexingSec       float64 // indexer busy time critical path
	PostProcessingSec float64 // DtoH + combine + compress + write

	// Throughputs in MB/s over uncompressed bytes.
	ThroughputMBps         float64 // uncompressed / TotalSec
	IndexingThroughputMBps float64 // uncompressed / IndexersSpanSec

	// Table V workload split.
	CPUTokens int64
	CPUTerms  int64
	CPUChars  int64
	GPUTokens int64
	GPUTerms  int64
	GPUChars  int64

	// Fig. 11 series (KeepPerFileStats).
	PerFile []FileStat

	// Dictionary/postings output sizes.
	DictionaryBytes int64
	PostingsBytes   int64

	// Schedule is the raw pipesim result for deeper analysis.
	Schedule *pipesim.Result
}

// FileStat is one Fig. 11 sample: the indexing throughput of one
// container file.
type FileStat struct {
	Name              string
	UncompressedBytes int64
	IndexSec          float64 // span the indexers spent on this block
	ThroughputMBps    float64
}
