package core

import (
	"context"
	"errors"
	"testing"

	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
)

func contextTestConfig(concurrent bool) Config {
	cfg := DefaultConfig()
	cfg.Parsers = 2
	cfg.CPUIndexers = 1
	cfg.GPUs = 1
	g := gpu.TeslaC1060()
	g.SMs = 2
	g.DeviceMemBytes = 32 << 20
	cfg.GPU = g
	cfg.GPUThreadBlocks = 4
	cfg.Sampling.Ratio = 0.2
	cfg.Concurrent = concurrent
	return cfg
}

func contextTestSource() corpus.Source {
	p := corpus.ClueWeb09(1)
	p.VocabSize = 1000
	p.DocsPerFile = 5
	p.MeanDocTokens = 30
	return corpus.NewMemSource(corpus.NewGenerator(p), 6)
}

// TestBuildContextCanceledUpfront: a pre-canceled context aborts both
// executors before any file is indexed.
func TestBuildContextCanceledUpfront(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		eng, err := New(contextTestConfig(concurrent))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var rep interface{}
		if concurrent {
			rep, err = eng.BuildConcurrentContext(ctx, contextTestSource())
		} else {
			rep, err = eng.BuildContext(ctx, contextTestSource())
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("concurrent=%v: err = %v, want context.Canceled", concurrent, err)
		}
		if rep != nil && !isNilReport(rep) {
			t.Errorf("concurrent=%v: canceled build returned a report", concurrent)
		}
	}
}

func isNilReport(v interface{}) bool {
	r, ok := v.(*Report)
	return ok && r == nil
}

// TestBuildContextCanceledMidway cancels from the Progress callback
// after the first file completes: the pipeline must drain its stage
// goroutines and return ctx.Err() instead of finishing all files.
func TestBuildContextCanceledMidway(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		cfg := contextTestConfig(concurrent)
		ctx, cancel := context.WithCancel(context.Background())
		done := 0
		cfg.Progress = func(doneFiles, total int) {
			done = doneFiles
			if doneFiles == 1 {
				cancel()
			}
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if concurrent {
			_, err = eng.BuildConcurrentContext(ctx, contextTestSource())
		} else {
			_, err = eng.BuildContext(ctx, contextTestSource())
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("concurrent=%v: err = %v, want context.Canceled", concurrent, err)
		}
		if done >= 6 {
			t.Errorf("concurrent=%v: all %d files processed despite cancellation", concurrent, done)
		}
		cancel()
	}
}

// TestBuildContextBackground: a background context changes nothing —
// the build completes and matches the plain Build result shape.
func TestBuildContextBackground(t *testing.T) {
	eng, err := New(contextTestConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.BuildConcurrentContext(context.Background(), contextTestSource())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 6 || rep.Docs == 0 || rep.Terms == 0 {
		t.Fatalf("unexpected report: files=%d docs=%d terms=%d", rep.Files, rep.Docs, rep.Terms)
	}
}
