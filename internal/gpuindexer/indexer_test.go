package gpuindexer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fastinvert/internal/cpuindexer"
	"fastinvert/internal/gpu"
	"fastinvert/internal/parser"
	"fastinvert/internal/trie"
)

func testDevice() *gpu.Device {
	cfg := gpu.TeslaC1060()
	cfg.SMs = 4
	cfg.DeviceMemBytes = 64 << 20
	return gpu.MustDevice(cfg)
}

func parseBlock(t *testing.T, text string, docs int, seedDoc uint32) *parser.Block {
	t.Helper()
	p := parser.New(nil)
	blk := parser.NewBlock(0)
	for d := 0; d < docs; d++ {
		p.ParseDoc(seedDoc+uint32(d), []byte(text), blk)
	}
	if err := blk.Validate(); err != nil {
		t.Fatal(err)
	}
	return blk
}

func groupsOf(blk *parser.Block) []*parser.Group {
	out := make([]*parser.Group, 0, len(blk.Groups))
	for _, g := range blk.Groups {
		out = append(out, g)
	}
	return out
}

func TestGPUIndexRunBasic(t *testing.T) {
	ix := New(testDevice(), Config{ThreadBlocks: 8})
	blk := parseBlock(t, "zebra zebra lion", 1, 0)
	rs, err := ix.IndexRun(groupsOf(blk), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tokens != 3 || rs.NewTerms != 2 {
		t.Fatalf("stats = %+v", rs)
	}
	if rs.PreSec <= 0 || rs.KernelSec <= 0 || rs.PostSec <= 0 {
		t.Errorf("phase times must be positive: %+v", rs)
	}
	coll := trie.IndexString("zebra")
	store := ix.Store(coll)
	found := false
	ix.WalkDictionary(coll, func(stripped []byte, slot int32) bool {
		if string(stripped) == "ra" {
			l := store.List(slot)
			if l.Len() != 1 || l.DocIDs[0] != 1000 || l.TFs[0] != 2 {
				t.Errorf("zebra list = %v/%v", l.DocIDs, l.TFs)
			}
			found = true
		}
		return true
	})
	if !found {
		t.Error("zebra not in GPU dictionary")
	}
}

func TestGPUDuplicateCollectionRejected(t *testing.T) {
	ix := New(testDevice(), Config{ThreadBlocks: 4})
	blk := parseBlock(t, "zebra", 1, 0)
	gs := groupsOf(blk)
	gs = append(gs, gs[0])
	if _, err := ix.IndexRun(gs, 0); err == nil {
		t.Error("duplicate collection must error")
	}
}

// synthText builds deterministic multi-collection text with heavy
// duplicate terms to force splits, cache ties, and empty strips.
func synthText(rng *rand.Rand, words int) string {
	var sb strings.Builder
	for i := 0; i < words; i++ {
		switch rng.Intn(10) {
		case 0:
			fmt.Fprintf(&sb, "%d ", rng.Intn(1000))
		case 1:
			sb.WriteString("z ") // strips to empty
		case 2:
			// shared long prefix, arena tie-breaking
			fmt.Fprintf(&sb, "prefixsharedlong%c ", 'a'+rng.Intn(4))
		default:
			n := 1 + rng.Intn(10)
			for j := 0; j < n; j++ {
				sb.WriteByte(byte('a' + rng.Intn(6)))
			}
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// TestCPUGPUEquivalence is the central property: for identical parsed
// runs, the GPU kernel and the CPU indexer must produce identical
// dictionaries (key -> slot) and identical postings lists.
func TestCPUGPUEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gpuIx := New(testDevice(), Config{ThreadBlocks: 16})
	cpuIx := cpuindexer.New()

	docBase := uint32(0)
	for run := 0; run < 5; run++ {
		p := parser.New(nil)
		blk := parser.NewBlock(0)
		docs := 3 + rng.Intn(4)
		for d := 0; d < docs; d++ {
			p.ParseDoc(uint32(d), []byte(synthText(rng, 300)), blk)
		}
		gs := groupsOf(blk)
		if _, err := gpuIx.IndexRun(gs, docBase); err != nil {
			t.Fatalf("run %d gpu: %v", run, err)
		}
		if _, err := cpuIx.IndexRun(gs, docBase); err != nil {
			t.Fatalf("run %d cpu: %v", run, err)
		}
		docBase += uint32(docs)
	}

	cpuColls := cpuIx.Collections()
	gpuColls := gpuIx.Collections()
	if len(cpuColls) != len(gpuColls) {
		t.Fatalf("collection counts differ: %d vs %d", len(cpuColls), len(gpuColls))
	}
	for i := range cpuColls {
		if cpuColls[i] != gpuColls[i] {
			t.Fatalf("collection sets differ at %d: %d vs %d", i, cpuColls[i], gpuColls[i])
		}
	}
	for _, coll := range cpuColls {
		type entry struct {
			key  string
			slot int32
		}
		var ce, ge []entry
		cpuIx.WalkDictionary(coll, func(k []byte, s int32) bool {
			ce = append(ce, entry{string(k), s})
			return true
		})
		gpuIx.WalkDictionary(coll, func(k []byte, s int32) bool {
			ge = append(ge, entry{string(k), s})
			return true
		})
		if len(ce) != len(ge) {
			t.Fatalf("collection %d: %d vs %d terms", coll, len(ce), len(ge))
		}
		cs, gs := cpuIx.Store(coll), gpuIx.Store(coll)
		for i := range ce {
			if ce[i] != ge[i] {
				t.Fatalf("collection %d term %d: %+v vs %+v", coll, i, ce[i], ge[i])
			}
			cl, gl := cs.List(ce[i].slot), gs.List(ge[i].slot)
			if cl.Len() != gl.Len() {
				t.Fatalf("collection %d slot %d: postings %d vs %d",
					coll, ce[i].slot, cl.Len(), gl.Len())
			}
			for j := range cl.DocIDs {
				if cl.DocIDs[j] != gl.DocIDs[j] || cl.TFs[j] != gl.TFs[j] {
					t.Fatalf("collection %d slot %d posting %d: (%d,%d) vs (%d,%d)",
						coll, ce[i].slot, j,
						cl.DocIDs[j], cl.TFs[j], gl.DocIDs[j], gl.TFs[j])
				}
			}
		}
	}
}

func TestGPUManyRunsPostingsResetAndStats(t *testing.T) {
	ix := New(testDevice(), Config{ThreadBlocks: 8})
	var wantTokens int64
	for run := 0; run < 3; run++ {
		blk := parseBlock(t, "alpha beta gamma delta", 2, 0)
		rs, err := ix.IndexRun(groupsOf(blk), uint32(run*2))
		if err != nil {
			t.Fatal(err)
		}
		wantTokens += rs.Tokens
		ix.ResetRunPostings()
	}
	st := ix.Stats()
	if st.Runs != 3 || st.Tokens != wantTokens {
		t.Errorf("stats = %+v, want 3 runs %d tokens", st, wantTokens)
	}
	if st.SimSec <= 0 {
		t.Error("simulated time missing")
	}
	// Dictionary persists: alpha et al. known, so no new terms now.
	blk := parseBlock(t, "alpha beta", 1, 0)
	rs, err := ix.IndexRun(groupsOf(blk), 100)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NewTerms != 0 {
		t.Errorf("NewTerms = %d after dictionary warm", rs.NewTerms)
	}
}

// TestNoStringCacheSameOutputHigherCost pins the string-cache
// ablation's contract: identical dictionaries and postings, strictly
// more charged device traffic.
func TestNoStringCacheSameOutputHigherCost(t *testing.T) {
	blk := parseBlock(t, strings.Repeat("prefixsharedalpha prefixsharedbeta gamma delta epsilon ", 30), 4, 0)
	gs := groupsOf(blk)

	run := func(noCache bool) (*Indexer, gpu.LaunchStats) {
		ix := New(testDevice(), Config{ThreadBlocks: 8, NoStringCache: noCache})
		rs, err := ix.IndexRun(gs, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ix, rs.Launch
	}
	cached, cachedStats := run(false)
	plain, plainStats := run(true)

	for _, coll := range cached.Collections() {
		var a, b []string
		cached.WalkDictionary(coll, func(k []byte, s int32) bool {
			a = append(a, fmt.Sprintf("%s/%d", k, s))
			return true
		})
		plain.WalkDictionary(coll, func(k []byte, s int32) bool {
			b = append(b, fmt.Sprintf("%s/%d", k, s))
			return true
		})
		if len(a) != len(b) {
			t.Fatalf("collection %d: %d vs %d terms", coll, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("collection %d entry %d: %s vs %s", coll, i, a[i], b[i])
			}
		}
	}
	if plainStats.GlobalTxns <= cachedStats.GlobalTxns {
		t.Errorf("no-cache txns (%d) not above cached (%d)",
			plainStats.GlobalTxns, cachedStats.GlobalTxns)
	}
	if plainStats.MaxSMCycles <= cachedStats.MaxSMCycles {
		t.Errorf("no-cache cycles (%d) not above cached (%d)",
			plainStats.MaxSMCycles, cachedStats.MaxSMCycles)
	}
}

func TestGPUCoalescingDominatesScattered(t *testing.T) {
	// The kernel's traffic should be mostly coalesced: scattered
	// transactions (arena tie-breaks) must be a small fraction of
	// total transactions on ordinary text.
	dev := testDevice()
	ix := New(dev, Config{ThreadBlocks: 8})
	blk := parseBlock(t, strings.Repeat("document indexing throughput on heterogeneous platforms ", 40), 5, 0)
	if _, err := ix.IndexRun(groupsOf(blk), 0); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.GlobalTxns == 0 || st.GlobalBytes == 0 {
		t.Fatal("no device traffic recorded")
	}
	// 512 B node loads/stores are 8 txns each; scattered arena reads
	// (1 byte per transaction) must not dominate the mix.
	avg := float64(st.GlobalBytes) / float64(st.GlobalTxns)
	if avg < 8 {
		t.Errorf("avg bytes/transaction %.1f: traffic mostly scattered", avg)
	}
}

// TestDivergenceTracked checks that cache ties (shared long prefixes)
// register as warp divergence while distinct short terms do not.
func TestDivergenceTracked(t *testing.T) {
	dev := testDevice()
	ix := New(dev, Config{ThreadBlocks: 4})
	// Heavy shared 4-byte-prefix collisions after trie stripping:
	// all in one collection with identical cache bytes.
	blk := parseBlock(t, strings.Repeat(
		"prefixsharedalpha prefixsharedbeta prefixsharedgamma ", 20), 2, 0)
	if _, err := ix.IndexRun(groupsOf(blk), 0); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().DivergentLanes == 0 {
		t.Error("shared-prefix workload should record divergence")
	}

	dev2 := testDevice()
	ix2 := New(dev2, Config{ThreadBlocks: 4})
	blk2 := parseBlock(t, "cat dog bird fish lion wolf bear deer", 1, 0)
	if _, err := ix2.IndexRun(groupsOf(blk2), 0); err != nil {
		t.Fatal(err)
	}
	if d := dev2.Stats().DivergentLanes; d > 4 {
		t.Errorf("distinct short terms recorded %d divergent lanes", d)
	}
}

func BenchmarkGPUIndexRun(b *testing.B) {
	dev := testDevice()
	ix := New(dev, DefaultConfig())
	p := parser.New(nil)
	blk := parser.NewBlock(0)
	rng := rand.New(rand.NewSource(9))
	for d := 0; d < 20; d++ {
		p.ParseDoc(uint32(d), []byte(synthText(rng, 500)), blk)
	}
	gs := groupsOf(blk)
	var bytes int64
	for _, g := range gs {
		bytes += int64(len(g.Stream))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.IndexRun(gs, uint32(i*20)); err != nil {
			b.Fatal(err)
		}
		ix.ResetRunPostings()
	}
}
