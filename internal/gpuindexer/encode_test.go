package gpuindexer

import (
	"bytes"
	"math/rand"
	"testing"

	"fastinvert/internal/encoding"
	"fastinvert/internal/parser"
	"fastinvert/internal/store"
)

// buildEncodeFixture indexes a few randomized runs (optionally
// positional) and returns the indexer with run postings still pending.
func buildEncodeFixture(t *testing.T, seed int64, positional bool) *Indexer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ix := New(testDevice(), Config{ThreadBlocks: 16})
	p := parser.New(nil)
	p.Positional = positional
	blk := parser.NewBlock(0)
	docs := 6 + rng.Intn(4)
	for d := 0; d < docs; d++ {
		p.ParseDoc(uint32(d), []byte(synthText(rng, 500)), blk)
	}
	if _, err := ix.IndexRun(groupsOf(blk), 100); err != nil {
		t.Fatal(err)
	}
	return ix
}

// drainRaw replays the engine's legacy raw-postings drain into rb,
// without resetting the run postings.
func drainRaw(t *testing.T, ix *Indexer, rb *store.RunBuilder) {
	t.Helper()
	for _, coll := range ix.Collections() {
		st := ix.Store(coll)
		for slot := 0; slot < st.NumSlots(); slot++ {
			l := st.List(int32(slot))
			var err error
			if l.Positional() {
				err = rb.AddPositionalList(coll, int32(slot), l.DocIDs, l.TFs, l.Positions)
			} else {
				err = rb.AddList(coll, int32(slot), l.DocIDs, l.TFs)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEncodeRunByteIdentical pins the central property of the encoded
// drain: for the same pending postings and the same selector, the run
// file EncodeRun produces is byte-for-byte the file the raw-postings
// path produces — entry tables, codec choices, blob, version, CRC.
func TestEncodeRunByteIdentical(t *testing.T) {
	sel, err := encoding.SelectorFor("auto")
	if err != nil {
		t.Fatal(err)
	}
	for _, positional := range []bool{false, true} {
		ix := buildEncodeFixture(t, 99, positional)

		raw := store.NewRunBuilderCodec(sel)
		drainRaw(t, ix, raw)
		enc := store.NewRunBuilder()
		if err := ix.EncodeRun(sel, enc); err != nil {
			t.Fatal(err)
		}
		want := raw.Finalize(100, 200)
		got := enc.Finalize(100, 200)
		if !bytes.Equal(got, want) {
			t.Fatalf("positional=%v: encoded run differs from raw run (%d vs %d bytes)",
				positional, len(got), len(want))
		}
		if st := ix.Stats(); st.EncodedLists != int64(raw.Lists()) || st.EncodedBytes == 0 {
			t.Fatalf("positional=%v: stats = %+v, want %d encoded lists", positional, st, raw.Lists())
		}

		// EncodeRun resets the per-run postings like the engine's drain.
		empty := store.NewRunBuilder()
		if err := ix.EncodeRun(sel, empty); err != nil {
			t.Fatal(err)
		}
		if empty.Lists() != 0 {
			t.Fatalf("positional=%v: second drain found %d lists, want 0", positional, empty.Lists())
		}
	}
}

// TestAddEncodedListValidation checks the builder rejects blobs that
// could not have come from a well-formed encoder.
func TestAddEncodedListValidation(t *testing.T) {
	good, err := encoding.VarByteCodec.Encode(nil, []uint32{1, 5}, []uint32{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vb := store.EncodedFlags(encoding.CodecVarByte, false)
	cases := []struct {
		name  string
		count uint32
		flags uint32
		blob  []byte
	}{
		{"blocked layout", 2, vb | store.FlagBlocks, good},
		{"unknown flag bit", 2, vb | 1<<2, good},
		{"unknown codec", 2, store.EncodedFlags(encoding.CodecID(0xee), false), good},
		{"undersized blob", 200, vb, good},
	}
	for _, tc := range cases {
		rb := store.NewRunBuilder()
		if err := rb.AddEncodedList(3, 0, tc.count, tc.flags, tc.blob); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	rb := store.NewRunBuilder()
	if err := rb.AddEncodedList(3, 0, 2, vb, good); err != nil {
		t.Errorf("valid blob rejected: %v", err)
	}
	if err := rb.AddEncodedList(3, 1, 0, vb, nil); err != nil {
		t.Errorf("empty list must be skipped, got %v", err)
	}
	if rb.Lists() != 1 {
		t.Errorf("lists = %d, want 1", rb.Lists())
	}
}
