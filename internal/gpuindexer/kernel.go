package gpuindexer

import (
	"bytes"
	"sync/atomic"

	"fastinvert/internal/btree"
	"fastinvert/internal/gpu"
	"fastinvert/internal/parser"
)

// Shared-memory layout for one thread block (16 KB available; the
// kernel uses just over 2.5 KB, leaving room for the occupancy the
// paper tunes with 480 blocks/GPU).
const (
	shRoot    = 0                  // write-back cache of the collection's root
	shNodeA   = btree.NodeSize     // node image (descent buffer A)
	shNodeB   = 2 * btree.NodeSize // node image (descent buffer B)
	shNodeC   = 3 * btree.NodeSize // split-right construction buffer
	shInput   = 4 * btree.NodeSize // 512 B input string chunk (Fig. 6)
	shStage   = 5 * btree.NodeSize // postings record staging (64 x 8 B)
	shScratch = 6 * btree.NodeSize // string-arena write staging (256 B)

	inputChunk = 512
	stageBytes = 512
)

// kernelCtx is the per-block state of the indexing kernel. The scratch
// slices model lane registers; all device traffic flows through the
// charged gpu.Block primitives.
type kernelCtx struct {
	ix      *Indexer
	b       *gpu.Block
	docBase uint32

	term      []byte // current term (assembled from the input chunk)
	rest      []byte // arena read scratch
	cmp       [btree.MaxKeys]int8
	laneWords [btree.MaxKeys]int

	stageN    int
	recSize   int // 8, or 12 when the current group is positional
	outCursor gpu.Ptr

	// Root write-back cache: every insert starts at the collection's
	// root, so the kernel keeps it resident in shared memory across a
	// group and stores it back once (or when evicted). cachedRoot is
	// the node index in shRoot, -1 when empty.
	cachedRoot int32
	rootDirty  bool
}

func newKernelCtx(ix *Indexer, b *gpu.Block, docBase uint32) *kernelCtx {
	k := &kernelCtx{
		ix:         ix,
		b:          b,
		docBase:    docBase,
		term:       make([]byte, 0, 256),
		rest:       make([]byte, 256),
		cachedRoot: -1,
	}
	for i := range k.laneWords {
		k.laneWords[i] = (btree.OffCache + 4*i) / 4
	}
	return k
}

// getKernelCtx checks a kernel context out of the indexer's pool,
// re-armed for a new block, falling back to a fresh allocation.
func (ix *Indexer) getKernelCtx(b *gpu.Block, docBase uint32) *kernelCtx {
	v := ix.ctxs.Get()
	if v == nil {
		return newKernelCtx(ix, b, docBase)
	}
	k := v.(*kernelCtx)
	k.b = b
	k.docBase = docBase
	k.term = k.term[:0]
	k.stageN = 0
	k.recSize = 0
	k.outCursor = 0
	k.cachedRoot = -1
	k.rootDirty = false
	return k
}

// putKernelCtx returns a retired block's context to the pool.
func (ix *Indexer) putKernelCtx(k *kernelCtx) {
	k.b = nil
	ix.ctxs.Put(k)
}

// --- node image accessors over shared memory -------------------------

func (k *kernelCtx) valid(base int) int32 { return k.b.SharedI32(base + btree.OffValidCount) }
func (k *kernelCtx) setValid(base int, v int32) {
	k.b.PutSharedI32(base+btree.OffValidCount, v)
}
func (k *kernelCtx) leaf(base int) int32       { return k.b.SharedI32(base + btree.OffLeaf) }
func (k *kernelCtx) setLeaf(base int, v int32) { k.b.PutSharedI32(base+btree.OffLeaf, v) }

func (k *kernelCtx) sptr(base, i int) int32 { return k.b.SharedI32(base + btree.OffStringPtr + 4*i) }
func (k *kernelCtx) setSptr(base, i int, v int32) {
	k.b.PutSharedI32(base+btree.OffStringPtr+4*i, v)
}
func (k *kernelCtx) pptr(base, i int) int32 { return k.b.SharedI32(base + btree.OffPostingsPtr + 4*i) }
func (k *kernelCtx) setPptr(base, i int, v int32) {
	k.b.PutSharedI32(base+btree.OffPostingsPtr+4*i, v)
}
func (k *kernelCtx) child(base, i int) int32 { return k.b.SharedI32(base + btree.OffChildren + 4*i) }
func (k *kernelCtx) setChild(base, i int, v int32) {
	k.b.PutSharedI32(base+btree.OffChildren+4*i, v)
}
func (k *kernelCtx) cache(base, i int) []byte {
	off := base + btree.OffCache + btree.CacheBytes*i
	return k.b.Shared[off : off+btree.CacheBytes]
}

func (k *kernelCtx) loadNode(base int, idx int32) {
	k.b.LoadShared(base, k.ix.nodePtr(idx), btree.NodeSize)
}

func (k *kernelCtx) storeNode(base int, idx int32) {
	k.b.StoreGlobal(k.ix.nodePtr(idx), base, btree.NodeSize)
}

// buildEmptyNode writes a fresh node image (no keys, all pointers nil)
// into the shared buffer at base.
func (k *kernelCtx) buildEmptyNode(base int, leaf int32) {
	k.setValid(base, 0)
	k.setLeaf(base, leaf)
	for i := 0; i < btree.MaxKeys; i++ {
		k.setSptr(base, i, btree.NilPtr)
		k.setPptr(base, i, btree.NilPtr)
		for c := 0; c < btree.CacheBytes; c++ {
			k.cache(base, i)[c] = 0
		}
	}
	for i := 0; i < btree.MaxChildren; i++ {
		k.setChild(base, i, btree.NilPtr)
	}
	k.b.PutSharedI32(base+btree.OffPadding, 0)
	k.b.ChargeInstr(4) // lane-parallel clear of the 128-word image
}

// readArenaRest fetches a key's arena remainder into the scratch
// buffer: one scattered read for the length byte and record — the
// divergent, expensive path the node caches exist to avoid.
func (k *kernelCtx) readArenaRest(sptr int32) []byte {
	p := k.ix.arenaPtr(sptr)
	k.b.GlobalReadScattered(k.rest[:1], p)
	n := int(k.rest[0])
	if n == 0 {
		return k.rest[:0]
	}
	k.b.GlobalReadScattered(k.rest[:n], p+1)
	return k.rest[:n]
}

// cacheTies reports whether the 4-byte caches alone cannot decide the
// comparison of term against key i (the divergent arena path).
func (k *kernelCtx) cacheTies(base, i int, term []byte) bool {
	var tc [btree.CacheBytes]byte
	copy(tc[:], term)
	if !bytes.Equal(tc[:], k.cache(base, i)) {
		return false
	}
	return len(term) > btree.CacheBytes || k.sptr(base, i) != btree.NilPtr
}

// compareAt orders term against key i of the node image at base,
// replicating btree.Tree.compareAt: the 4-byte cache decides unless
// the caches tie and a remainder exists.
func (k *kernelCtx) compareAt(base, i int, term []byte) int {
	if k.ix.cfg.NoStringCache {
		// Without the cache the key's bytes live only in the arena:
		// charge the scattered fetch the cache would have avoided.
		if sp := k.sptr(base, i); sp != btree.NilPtr {
			k.readArenaRest(sp)
		} else {
			k.b.ChargeScatteredRead(btree.CacheBytes)
		}
	}
	var tc [btree.CacheBytes]byte
	copy(tc[:], term)
	if c := bytes.Compare(tc[:], k.cache(base, i)); c != 0 {
		return c
	}
	var termRest []byte
	if len(term) > btree.CacheBytes {
		termRest = term[btree.CacheBytes:]
	}
	var nodeRest []byte
	if sp := k.sptr(base, i); sp != btree.NilPtr {
		nodeRest = k.readArenaRest(sp)
	}
	return bytes.Compare(termRest, nodeRest)
}

// findInNode is the paper's Fig. 7 warp search: all lanes compare term
// against their key in parallel (one shared access over the cache
// words), then a parallel reduction locates the insert position and
// any exact match.
func (k *kernelCtx) findInNode(base int, term []byte) (pos int, found bool) {
	valid := int(k.valid(base))
	divergent := 0
	k.b.ForLanes(func(lane int) {
		if lane >= valid || lane >= btree.MaxKeys {
			return
		}
		// A cache tie forces this lane onto the slow arena path while
		// the rest of the warp waits — warp divergence.
		if k.cacheTies(base, lane, term) {
			divergent++
		}
		switch c := k.compareAt(base, lane, term); {
		case c < 0:
			k.cmp[lane] = -1
		case c > 0:
			k.cmp[lane] = 1
		default:
			k.cmp[lane] = 0
		}
	})
	k.b.ChargeDivergentLanes(divergent)
	k.b.ChargeSharedAccess(k.laneWords[:max(valid, 1)])
	// Parallel reduction (log2 32 = 5 steps): count keys below term
	// and detect equality.
	k.b.ChargeInstr(5)
	pos = 0
	for i := 0; i < valid; i++ {
		if k.cmp[i] > 0 { // term > key i
			pos++
		} else if k.cmp[i] == 0 {
			return i, true
		}
	}
	return pos, false
}

// insertAt performs the paper's "Inserting" step on a leaf image:
// lanes shift the larger keys right in parallel, then the new key's
// cache bytes, arena remainder and postings slot are written.
func (k *kernelCtx) insertAt(base, pos int, term []byte, coll *collection) int32 {
	valid := int(k.valid(base))
	for i := valid; i > pos; i-- {
		copy(k.cache(base, i), k.cache(base, i-1))
		k.setSptr(base, i, k.sptr(base, i-1))
		k.setPptr(base, i, k.pptr(base, i-1))
	}
	// Lane-parallel shift of three arrays plus the cache words.
	k.b.ChargeInstr(3)
	k.b.ChargeSharedAccess(k.laneWords[:max(valid-pos, 1)])

	cc := k.cache(base, pos)
	for c := 0; c < btree.CacheBytes; c++ {
		cc[c] = 0
	}
	copy(cc, term)
	if len(term) > btree.CacheBytes {
		rest := term[btree.CacheBytes:]
		sptr := k.ix.allocArena(1 + len(rest))
		k.b.Shared[shScratch] = byte(len(rest))
		copy(k.b.Shared[shScratch+1:shScratch+1+len(rest)], rest)
		k.b.StoreGlobal(k.ix.arenaPtr(sptr), shScratch, 1+len(rest))
		k.setSptr(base, pos, sptr)
	} else {
		k.setSptr(base, pos, btree.NilPtr)
	}
	slot := coll.terms
	coll.terms++
	k.setPptr(base, pos, slot)
	k.setValid(base, int32(valid+1))
	return slot
}

// bindRoot makes the collection's root resident in shRoot, writing
// back any previously cached dirty root.
func (k *kernelCtx) bindRoot(coll *collection) {
	if k.cachedRoot == coll.root {
		return
	}
	k.flushRoot()
	k.loadNode(shRoot, coll.root)
	k.cachedRoot = coll.root
}

// flushRoot writes the cached root back to device memory if dirty and
// empties the cache.
func (k *kernelCtx) flushRoot() {
	if k.cachedRoot >= 0 && k.rootDirty {
		k.storeNode(shRoot, k.cachedRoot)
	}
	k.cachedRoot = -1
	k.rootDirty = false
}

// splitChild is the paper's "Splitting" step: the full child image at
// childBase splits around its median into a new right node built at
// shNodeC; the parent image at parentBase gains the median key. The
// child and right images are stored back with coalesced writes; the
// parent is stored unless it is the cached root (parentIsRoot), which
// is just marked dirty.
func (k *kernelCtx) splitChild(parentBase int, parentIdx int32, parentIsRoot bool, childBase int, childIdx int32, childPos int) {
	rightIdx := k.ix.allocNode()
	k.buildEmptyNode(shNodeC, k.leaf(childBase))
	k.setValid(shNodeC, btree.Degree-1)
	for i := 0; i < btree.Degree-1; i++ {
		copy(k.cache(shNodeC, i), k.cache(childBase, btree.Degree+i))
		k.setSptr(shNodeC, i, k.sptr(childBase, btree.Degree+i))
		k.setPptr(shNodeC, i, k.pptr(childBase, btree.Degree+i))
	}
	if k.leaf(childBase) == 0 {
		for i := 0; i < btree.Degree; i++ {
			k.setChild(shNodeC, i, k.child(childBase, btree.Degree+i))
			k.setChild(childBase, btree.Degree+i, btree.NilPtr)
		}
	}
	k.b.ChargeInstr(4) // lane-parallel move of the upper half

	// Parent: open a slot at childPos for the hoisted median.
	pv := int(k.valid(parentBase))
	for i := pv; i > childPos; i-- {
		copy(k.cache(parentBase, i), k.cache(parentBase, i-1))
		k.setSptr(parentBase, i, k.sptr(parentBase, i-1))
		k.setPptr(parentBase, i, k.pptr(parentBase, i-1))
		k.setChild(parentBase, i+1, k.child(parentBase, i))
	}
	copy(k.cache(parentBase, childPos), k.cache(childBase, btree.Degree-1))
	k.setSptr(parentBase, childPos, k.sptr(childBase, btree.Degree-1))
	k.setPptr(parentBase, childPos, k.pptr(childBase, btree.Degree-1))
	k.setChild(parentBase, childPos+1, rightIdx)
	k.setValid(parentBase, int32(pv+1))
	k.b.ChargeInstr(4)

	// Child keeps the lower half; scrub the moved-out entries.
	k.setValid(childBase, btree.Degree-1)
	for i := btree.Degree - 1; i < btree.MaxKeys; i++ {
		cc := k.cache(childBase, i)
		for c := 0; c < btree.CacheBytes; c++ {
			cc[c] = 0
		}
		k.setSptr(childBase, i, btree.NilPtr)
		k.setPptr(childBase, i, btree.NilPtr)
	}
	k.b.ChargeInstr(2)

	k.storeNode(shNodeC, rightIdx)
	k.storeNode(childBase, childIdx)
	if parentIsRoot {
		k.rootDirty = true
	} else {
		k.storeNode(parentBase, parentIdx)
	}
}

// insert locates or creates term in the collection's device B-tree,
// returning its postings slot, mirroring btree.Tree.Insert node for
// node so CPU and GPU dictionaries match exactly. The root is read
// from (and mutated in) the shared-memory write-back cache.
func (k *kernelCtx) insert(coll *collection, term []byte) (slot int32, created bool) {
	if len(term) > btree.MaxKeyLen {
		term = term[:btree.MaxKeyLen]
	}
	k.bindRoot(coll)
	if k.valid(shRoot) == btree.MaxKeys {
		// Grow upward: the old root leaves the cache (stored back as
		// a regular child) and a fresh internal root replaces it.
		newRoot := k.ix.allocNode()
		oldRoot := k.cachedRoot
		k.storeNode(shRoot, oldRoot)
		k.buildEmptyNode(shRoot, 0)
		k.setChild(shRoot, 0, oldRoot)
		coll.root = newRoot
		k.cachedRoot = newRoot
		k.rootDirty = true
		// The descent below will split the old (full) root.
	}
	curBase := shRoot
	curIdx := coll.root
	isRoot := true
	nextBuf := shNodeA
	for {
		pos, found := k.findInNode(curBase, term)
		if found {
			return k.pptr(curBase, pos), false
		}
		if k.leaf(curBase) == 1 {
			slot = k.insertAt(curBase, pos, term, coll)
			if isRoot {
				k.rootDirty = true
			} else {
				k.storeNode(curBase, curIdx)
			}
			return slot, true
		}
		childIdx := k.child(curBase, pos)
		childBase := nextBuf
		k.loadNode(childBase, childIdx)
		if k.valid(childBase) == btree.MaxKeys {
			k.splitChild(curBase, curIdx, isRoot, childBase, childIdx, pos)
			continue // re-scan the updated parent image
		}
		curBase, curIdx, isRoot = childBase, childIdx, false
		if nextBuf == shNodeA {
			nextBuf = shNodeB
		} else {
			nextBuf = shNodeA
		}
	}
}

// emit stages one postings record (slot, global docID, and the token
// position for positional groups); full stages flush to the group's
// output region with a coalesced store.
func (k *kernelCtx) emit(slot int32, doc, pos uint32) {
	o := shStage + k.stageN*k.recSize
	s := k.b.Shared[o : o+k.recSize]
	s[0], s[1], s[2], s[3] = byte(slot), byte(slot>>8), byte(slot>>16), byte(slot>>24)
	s[4], s[5], s[6], s[7] = byte(doc), byte(doc>>8), byte(doc>>16), byte(doc>>24)
	if k.recSize == 12 {
		s[8], s[9], s[10], s[11] = byte(pos), byte(pos>>8), byte(pos>>16), byte(pos>>24)
	}
	k.stageN++
	if (k.stageN+1)*k.recSize > stageBytes {
		k.flushStage()
	}
}

func (k *kernelCtx) flushStage() {
	if k.stageN == 0 {
		return
	}
	n := k.stageN * k.recSize
	k.b.StoreGlobal(k.outCursor, shStage, n)
	k.outCursor += gpu.Ptr(n)
	k.stageN = 0
}

// streamReader decodes a group's parsed stream from device memory
// through 512 B coalesced chunk loads into shared memory.
type streamReader struct {
	k          *kernelCtx
	base       gpu.Ptr
	n          int
	pos        int
	chunkStart int
	chunkLen   int
}

func (r *streamReader) readByte() (byte, bool) {
	if r.pos >= r.n {
		return 0, false
	}
	if r.chunkLen == 0 || r.pos >= r.chunkStart+r.chunkLen {
		r.chunkStart = r.pos
		r.chunkLen = inputChunk
		if rem := r.n - r.pos; r.chunkLen > rem {
			r.chunkLen = rem
		}
		r.k.b.LoadShared(shInput, r.base+gpu.Ptr(r.pos), r.chunkLen)
	}
	c := r.k.b.Shared[shInput+r.pos-r.chunkStart]
	r.pos++
	return c, true
}

// processGroup runs the full per-collection kernel: decode the parsed
// stream, insert every term, and emit its postings record.
func (k *kernelCtx) processGroup(w *groupWork, newTerms *int64) {
	coll := k.ix.collections[w.coll]
	if coll.root < 0 {
		root := k.ix.allocNode()
		k.flushRoot()
		k.buildEmptyNode(shRoot, 1)
		coll.root = root
		k.cachedRoot = root
		k.rootDirty = true
	}
	k.outCursor = w.outPtr
	k.stageN = 0
	k.recSize = w.recSize()
	sr := streamReader{k: k, base: w.streamPtr, n: w.streamLen}
	var doc uint32
	haveDoc := false
	for {
		c, ok := sr.readByte()
		if !ok {
			break
		}
		if c == parser.DocMarker {
			var id uint32
			for shift := 0; shift < 32; shift += 8 {
				b, ok := sr.readByte()
				if !ok {
					panic("gpuindexer: truncated doc marker")
				}
				id |= uint32(b) << shift
			}
			doc = id + k.docBase
			haveDoc = true
			k.b.ChargeInstr(1)
			continue
		}
		if !haveDoc {
			panic("gpuindexer: term before document marker")
		}
		n := int(c)
		k.term = k.term[:0]
		for i := 0; i < n; i++ {
			b, ok := sr.readByte()
			if !ok {
				panic("gpuindexer: truncated term record")
			}
			k.term = append(k.term, b)
		}
		var pos uint32
		if w.positional {
			var shift uint
			for {
				b, ok := sr.readByte()
				if !ok || shift > 28 {
					panic("gpuindexer: truncated position")
				}
				pos |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
				shift += 7
			}
		}
		k.b.ChargeInstr(2) // record decode
		slot, created := k.insert(coll, k.term)
		if created {
			atomic.AddInt64(newTerms, 1)
		}
		k.emit(slot, doc, pos)
	}
	k.flushStage()
	k.flushRoot()
}
