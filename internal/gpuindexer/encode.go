package gpuindexer

import (
	"fmt"

	"fastinvert/internal/encoding"
	"fastinvert/internal/store"
)

// EncodeRun drains this indexer's per-run postings into rb as
// pre-encoded blobs: each list is compressed with the codec sel picks
// and handed to the builder bytes-first via AddEncodedList, instead of
// shipping raw postings for the builder to re-encode. This models the
// device encoding its own output before the DtoH copy — the host-side
// run writer touches compressed bytes only. Collections are visited in
// sorted order and slots sequentially, the exact order Engine.flushRun
// uses, and the codec choice is the same pure function of
// (n, first, last, positional), so the run file is byte-identical to
// the raw-postings path. Per-run postings are reset afterwards, like
// the engine's legacy drain.
func (ix *Indexer) EncodeRun(sel encoding.Selector, rb *store.RunBuilder) error {
	for _, coll := range ix.Collections() {
		st := ix.stores[coll]
		for slot := 0; slot < st.NumSlots(); slot++ {
			l := st.List(int32(slot))
			n := len(l.DocIDs)
			if n == 0 {
				continue
			}
			positions := l.Positions
			if l.Positional() && positions == nil {
				positions = make([][]uint32, n)
			}
			codec := encoding.VarByteCodec
			if sel != nil {
				codec = sel(n, l.DocIDs[0], l.DocIDs[n-1], positions != nil)
			}
			blob, err := codec.Encode(ix.encBuf[:0], l.DocIDs, l.TFs, positions)
			if err != nil {
				return fmt.Errorf("gpuindexer: encode collection %d slot %d: %w", coll, slot, err)
			}
			ix.encBuf = blob[:0]
			flags := store.EncodedFlags(codec.ID(), positions != nil)
			if err := rb.AddEncodedList(coll, int32(slot), uint32(n), flags, blob); err != nil {
				return fmt.Errorf("gpuindexer: %w", err)
			}
			ix.stats.EncodedLists++
			ix.stats.EncodedBytes += int64(len(blob))
		}
	}
	ix.ResetRunPostings()
	return nil
}
