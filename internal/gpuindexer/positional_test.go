package gpuindexer

import (
	"math/rand"
	"testing"

	"fastinvert/internal/cpuindexer"
	"fastinvert/internal/parser"
)

// TestCPUGPUPositionalEquivalence extends the central equivalence
// property to positional postings: identical dictionaries, postings,
// and per-posting position lists.
func TestCPUGPUPositionalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	gpuIx := New(testDevice(), Config{ThreadBlocks: 16})
	cpuIx := cpuindexer.New()

	docBase := uint32(0)
	for run := 0; run < 3; run++ {
		p := parser.New(nil)
		p.Positional = true
		blk := parser.NewBlock(0)
		docs := 2 + rng.Intn(3)
		for d := 0; d < docs; d++ {
			p.ParseDoc(uint32(d), []byte(synthText(rng, 400)), blk)
		}
		gs := groupsOf(blk)
		if _, err := gpuIx.IndexRun(gs, docBase); err != nil {
			t.Fatalf("run %d gpu: %v", run, err)
		}
		if _, err := cpuIx.IndexRun(gs, docBase); err != nil {
			t.Fatalf("run %d cpu: %v", run, err)
		}
		docBase += uint32(docs)
	}

	for _, coll := range cpuIx.Collections() {
		cs, gs := cpuIx.Store(coll), gpuIx.Store(coll)
		if cs.NumSlots() != gs.NumSlots() {
			t.Fatalf("collection %d slot counts differ", coll)
		}
		for slot := 0; slot < cs.NumSlots(); slot++ {
			cl, gl := cs.List(int32(slot)), gs.List(int32(slot))
			if cl.Len() != gl.Len() || cl.Positional() != gl.Positional() {
				t.Fatalf("collection %d slot %d shape differs", coll, slot)
			}
			for i := range cl.DocIDs {
				if cl.DocIDs[i] != gl.DocIDs[i] || cl.TFs[i] != gl.TFs[i] {
					t.Fatalf("collection %d slot %d posting %d differs", coll, slot, i)
				}
				cp, gp := cl.Positions[i], gl.Positions[i]
				if len(cp) != len(gp) {
					t.Fatalf("collection %d slot %d positions differ in count", coll, slot)
				}
				for j := range cp {
					if cp[j] != gp[j] {
						t.Fatalf("collection %d slot %d position %d: %d vs %d",
							coll, slot, j, cp[j], gp[j])
					}
				}
			}
		}
	}
}
