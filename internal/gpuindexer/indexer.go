// Package gpuindexer implements the paper's GPU indexer (§III.D.2) on
// the gpu simulation substrate: one 32-thread block builds the B-tree
// and postings of one trie collection, with 512-byte coalesced loads
// of nodes and input string chunks into shared memory, warp-parallel
// key comparison with a parallel-reduction position search (Fig. 7),
// parallel shifts and splits, and dynamic round-robin scheduling of
// collections onto thread blocks.
//
// The device-resident dictionary uses exactly the btree package's
// 512-byte node layout (Table II), and the kernel replicates the CPU
// indexer's preemptive-split insertion, so the two produce bitwise-
// identical dictionaries and postings for the same parsed stream —
// a property the equivalence tests pin down.
package gpuindexer

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fastinvert/internal/btree"
	"fastinvert/internal/gpu"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// Config tunes the indexer.
type Config struct {
	// ThreadBlocks is the grid size per kernel launch; the paper found
	// 480 blocks per Tesla C1060 optimal (§IV.B).
	ThreadBlocks int

	// NodeExtentNodes is the number of 512 B nodes per device node
	// extent (extents are allocated on demand, device-side).
	NodeExtentNodes int

	// ArenaExtentBytes is the size of each device string-arena extent.
	ArenaExtentBytes int

	// NoStringCache is a cost-model ablation of the node string
	// caches (§III.B.2): execution is unchanged, but every key
	// comparison is charged the scattered arena read the cache would
	// have avoided.
	NoStringCache bool
}

// DefaultConfig returns the paper's tuned configuration.
func DefaultConfig() Config {
	return Config{
		ThreadBlocks:     480,
		NodeExtentNodes:  1024,
		ArenaExtentBytes: arenaExtentSize,
	}
}

const (
	// arenaExtentSize fixes the arena extent so string pointers pack
	// extent index and offset into an int32: off < 2^17, ext < 2^14.
	arenaExtentSize = 128 << 10
	arenaOffBits    = 17
	arenaOffMask    = 1<<arenaOffBits - 1
)

// RunStats reports one IndexRun's simulated and accounting results.
type RunStats struct {
	Groups     int
	Tokens     int64
	NewTerms   int64
	Chars      int64
	PreSec     float64 // HtoD transfer (pre-processing share)
	KernelSec  float64 // simulated kernel time
	PostSec    float64 // DtoH transfer (post-processing share)
	Launch     gpu.LaunchStats
	InputBytes int
}

// Stats accumulates over the indexer lifetime (Table V's workload
// split numbers).
type Stats struct {
	Tokens   int64
	NewTerms int64
	Chars    int64
	Runs     int64
	SimSec   float64

	// EncodedLists/EncodedBytes count the device-encoded run output
	// shipped through EncodeRun (zero when the engine drains raw
	// postings instead).
	EncodedLists int64
	EncodedBytes int64
}

type collection struct {
	root  int32 // node index, -1 before first insert
	terms int32 // slots assigned so far (dense, per collection)
}

// Indexer is one GPU indexer instance (one device).
type Indexer struct {
	dev *gpu.Device
	cfg Config

	mu           sync.Mutex
	nodeExtents  []gpu.Ptr
	nodeNext     int64 // atomic: next free node index
	arenaExtents []gpu.Ptr
	arenaExt     int // current extent
	arenaOff     int // offset within current extent

	collections map[int]*collection
	stores      map[int]*postings.Store

	// ctxs recycles kernel contexts across launches: one is checked out
	// per thread block and returned when the block retires, so steady-
	// state launches allocate nothing per block.
	ctxs sync.Pool

	// Per-run scratch reused across IndexRun calls (the engine drives
	// each indexer from a single goroutine, so no locking is needed).
	work   []groupWork
	packed []byte
	recs   []byte
	seen   map[int]bool
	encBuf []byte // EncodeRun's reused codec output buffer

	stats Stats
}

// New creates an indexer on dev.
func New(dev *gpu.Device, cfg Config) *Indexer {
	if cfg.ThreadBlocks <= 0 {
		cfg.ThreadBlocks = DefaultConfig().ThreadBlocks
	}
	if cfg.NodeExtentNodes <= 0 {
		cfg.NodeExtentNodes = DefaultConfig().NodeExtentNodes
	}
	cfg.ArenaExtentBytes = arenaExtentSize
	return &Indexer{
		dev:         dev,
		cfg:         cfg,
		collections: make(map[int]*collection),
		stores:      make(map[int]*postings.Store),
	}
}

// Device returns the underlying simulated device.
func (ix *Indexer) Device() *gpu.Device { return ix.dev }

// Stats returns lifetime statistics.
func (ix *Indexer) Stats() Stats { return ix.stats }

// Collections returns the sorted trie indices this indexer has seen.
func (ix *Indexer) Collections() []int {
	out := make([]int, 0, len(ix.collections))
	for idx := range ix.collections {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Store returns the postings store of a collection (nil if unseen).
func (ix *Indexer) Store(coll int) *postings.Store { return ix.stores[coll] }

// TermCount reports the number of distinct terms in a collection's
// device dictionary.
func (ix *Indexer) TermCount(coll int) int {
	c := ix.collections[coll]
	if c == nil {
		return 0
	}
	return int(c.terms)
}

// allocNode reserves one node index, growing the extent list on demand
// (device-side allocation: safe mid-kernel because device memory never
// moves).
func (ix *Indexer) allocNode() int32 {
	idx := atomic.AddInt64(&ix.nodeNext, 1) - 1
	ext := int(idx) / ix.cfg.NodeExtentNodes
	for {
		ix.mu.Lock()
		if ext < len(ix.nodeExtents) {
			ix.mu.Unlock()
			return int32(idx)
		}
		ix.nodeExtents = append(ix.nodeExtents,
			ix.dev.Malloc(ix.cfg.NodeExtentNodes*btree.NodeSize))
		ix.mu.Unlock()
	}
}

// nodePtr converts a node index to its device address.
func (ix *Indexer) nodePtr(idx int32) gpu.Ptr {
	ext := int(idx) / ix.cfg.NodeExtentNodes
	ix.mu.Lock()
	base := ix.nodeExtents[ext]
	ix.mu.Unlock()
	return base + gpu.Ptr((int(idx)%ix.cfg.NodeExtentNodes)*btree.NodeSize)
}

// allocArena reserves n contiguous arena bytes (a record never
// straddles extents) and returns the packed string pointer.
func (ix *Indexer) allocArena(n int) int32 {
	if n > arenaExtentSize {
		panic("gpuindexer: arena record too large")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.arenaExtents) == 0 || ix.arenaOff+n > arenaExtentSize {
		ix.arenaExtents = append(ix.arenaExtents, ix.dev.Malloc(arenaExtentSize))
		ix.arenaExt = len(ix.arenaExtents) - 1
		ix.arenaOff = 0
	}
	off := ix.arenaOff
	ix.arenaOff += n
	return int32(ix.arenaExt)<<arenaOffBits | int32(off)
}

// arenaPtr converts a packed string pointer to its device address.
func (ix *Indexer) arenaPtr(sptr int32) gpu.Ptr {
	ext := int(sptr >> arenaOffBits)
	off := int(sptr & arenaOffMask)
	ix.mu.Lock()
	base := ix.arenaExtents[ext]
	ix.mu.Unlock()
	return base + gpu.Ptr(off)
}

// groupWork is one scheduled collection within a run.
type groupWork struct {
	coll       int
	streamPtr  gpu.Ptr // device address of the group stream
	streamLen  int
	outPtr     gpu.Ptr // device address of the postings record region
	records    int     // exactly group.Tokens records
	positional bool    // 12-byte (slot,doc,pos) records instead of 8-byte
}

func (w *groupWork) recSize() int {
	if w.positional {
		return 12
	}
	return 8
}

// IndexRun processes one run's parsed groups (§III.E, Fig. 8):
// pre-processing copies the streams to device memory, the kernel
// builds B-trees and emits postings records, post-processing copies
// the records back and aggregates them into per-collection postings.
// Local document IDs are rebased by docBase.
func (ix *Indexer) IndexRun(groups []*parser.Group, docBase uint32) (RunStats, error) {
	var rs RunStats
	if len(groups) == 0 {
		return rs, nil
	}

	// Pre-processing: pack streams, allocate transient IO regions.
	totalIn := 0
	totalRecBytes := 0
	for _, g := range groups {
		totalIn += len(g.Stream)
		rs := 8
		if g.Positional {
			rs = 12
		}
		totalRecBytes += g.Tokens * rs
	}
	inPtr := ix.dev.MallocTransient(totalIn)
	outPtr := ix.dev.MallocTransient(totalRecBytes)
	if ix.seen == nil {
		ix.seen = make(map[int]bool, len(groups))
	} else {
		clear(ix.seen)
	}
	ix.work = ix.work[:0]
	ix.packed = ix.packed[:0]
	inOff, recOff := 0, 0
	for _, g := range groups {
		if ix.seen[g.Index] {
			return rs, fmt.Errorf("gpuindexer: duplicate collection %d in run", g.Index)
		}
		ix.seen[g.Index] = true
		if ix.collections[g.Index] == nil {
			ix.collections[g.Index] = &collection{root: -1}
			ix.stores[g.Index] = postings.NewStore()
		}
		w := groupWork{
			coll:       g.Index,
			streamPtr:  inPtr + gpu.Ptr(inOff),
			streamLen:  len(g.Stream),
			outPtr:     outPtr + gpu.Ptr(recOff),
			records:    g.Tokens,
			positional: g.Positional,
		}
		ix.work = append(ix.work, w)
		ix.packed = append(ix.packed, g.Stream...)
		inOff += len(g.Stream)
		recOff += g.Tokens * w.recSize()
		rs.Tokens += int64(g.Tokens)
		rs.Chars += int64(g.Chars)
	}
	work, packed := ix.work, ix.packed
	rs.Groups = len(groups)
	rs.InputBytes = totalIn
	rs.PreSec = ix.dev.CopyHtoD(inPtr, packed)

	// Kernel: dynamic round-robin of groups onto thread blocks.
	var nextGroup int64 = -1
	var newTerms int64
	blocks := ix.cfg.ThreadBlocks
	if blocks > len(work) {
		blocks = len(work)
	}
	rs.Launch = ix.dev.Launch(blocks, func(b *gpu.Block) {
		k := ix.getKernelCtx(b, docBase)
		defer ix.putKernelCtx(k)
		for {
			gi := int(atomic.AddInt64(&nextGroup, 1))
			if gi >= len(work) {
				return
			}
			k.processGroup(&work[gi], &newTerms)
		}
	})
	rs.KernelSec = rs.Launch.SimSeconds
	rs.NewTerms = newTerms

	// Post-processing: copy records back, aggregate into postings.
	if cap(ix.recs) < totalRecBytes {
		ix.recs = make([]byte, totalRecBytes)
	}
	recs := ix.recs[:totalRecBytes]
	rs.PostSec = ix.dev.CopyDtoH(recs, outPtr)
	for i := range work {
		w := &work[i]
		base := int(w.outPtr - outPtr)
		store := ix.stores[w.coll]
		sz := w.recSize()
		for r := 0; r < w.records; r++ {
			o := base + r*sz
			slot := int32(recs[o]) | int32(recs[o+1])<<8 | int32(recs[o+2])<<16 | int32(recs[o+3])<<24
			doc := uint32(recs[o+4]) | uint32(recs[o+5])<<8 | uint32(recs[o+6])<<16 | uint32(recs[o+7])<<24
			var err error
			if w.positional {
				pos := uint32(recs[o+8]) | uint32(recs[o+9])<<8 | uint32(recs[o+10])<<16 | uint32(recs[o+11])<<24
				err = store.AddPos(slot, doc, pos)
			} else {
				err = store.Add(slot, doc)
			}
			if err != nil {
				return rs, fmt.Errorf("gpuindexer: collection %d: %w", w.coll, err)
			}
		}
	}
	ix.dev.FreeTransients()

	ix.stats.Tokens += rs.Tokens
	ix.stats.NewTerms += rs.NewTerms
	ix.stats.Chars += rs.Chars
	ix.stats.Runs++
	ix.stats.SimSec += rs.PreSec + rs.KernelSec + rs.PostSec
	return rs, nil
}

// ResetRunPostings clears per-run postings (after the engine flushes
// them to a run file) while the device dictionary persists.
func (ix *Indexer) ResetRunPostings() {
	for _, s := range ix.stores {
		s.ResetRun()
	}
}

// snapshotArena copies every arena extent to the host once — the
// dictionary's string storage moving to main memory at the end of the
// program (§III.F: "the dictionary is kept in main memory until the
// last batch of documents is processed, after which it is moved").
func (ix *Indexer) snapshotArena() func(sptr int32) []byte {
	ix.mu.Lock()
	extPtrs := append([]gpu.Ptr(nil), ix.arenaExtents...)
	ix.mu.Unlock()
	arenaBytes := make([][]byte, len(extPtrs))
	for i, p := range extPtrs {
		buf := make([]byte, arenaExtentSize)
		ix.dev.CopyDtoH(buf, p)
		arenaBytes[i] = buf
	}
	return func(sptr int32) []byte {
		ext := int(sptr >> arenaOffBits)
		off := int(sptr & arenaOffMask)
		b := arenaBytes[ext]
		n := int(b[off])
		return b[off+1 : off+1+n]
	}
}

// ExportDictionary walks every collection's device-resident B-tree in
// (collection, key) order with a single arena snapshot, for the final
// dictionary-combine step.
func (ix *Indexer) ExportDictionary(fn func(coll int, stripped []byte, slot int32) bool) {
	readRest := ix.snapshotArena()
	for _, coll := range ix.Collections() {
		c := ix.collections[coll]
		if c == nil || c.root < 0 {
			continue
		}
		if !ix.walkTree(c.root, readRest, func(key []byte, slot int32) bool {
			return fn(coll, key, slot)
		}) {
			return
		}
	}
}

// WalkDictionary walks one collection's device-resident B-tree in key
// order, invoking fn with each stripped key and postings slot.
func (ix *Indexer) WalkDictionary(coll int, fn func(stripped []byte, slot int32) bool) {
	c := ix.collections[coll]
	if c == nil || c.root < 0 {
		return
	}
	readRest := ix.snapshotArena()
	ix.walkTree(c.root, readRest, fn)
}

// walkTree walks one device tree in key order. The key slice passed to
// fn is a shared scratch buffer, valid only for the duration of the
// call.
func (ix *Indexer) walkTree(root int32, readRest func(int32) []byte, fn func(key []byte, slot int32) bool) bool {
	nodeBuf := make([]byte, btree.NodeSize)
	key := make([]byte, 0, btree.MaxKeyLen)
	var walk func(idx int32) bool
	walk = func(idx int32) bool {
		var n btree.Node
		ix.dev.CopyDtoH(nodeBuf, ix.nodePtr(idx))
		n.Unmarshal(nodeBuf)
		for i := 0; i < int(n.ValidCount); i++ {
			if n.Leaf == 0 {
				if !walk(n.Children[i]) {
					return false
				}
			}
			key = key[:0]
			for _, ch := range n.Cache[i] {
				if ch == 0 {
					break
				}
				key = append(key, ch)
			}
			if n.StringPtr[i] != btree.NilPtr {
				key = append(key, readRest(n.StringPtr[i])...)
			}
			if !fn(key, n.PostingsPtr[i]) {
				return false
			}
		}
		if n.Leaf == 0 && n.ValidCount > 0 {
			return walk(n.Children[n.ValidCount])
		}
		return true
	}
	return walk(root)
}
