//go:build race

package parser

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops items in race mode, so allocation-budget
// assertions that depend on pool hits are skipped.
const raceEnabled = true
