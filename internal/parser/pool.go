package parser

import "sync"

// BlockPool recycles Blocks across pipeline files, mirroring the
// paper's fixed per-parser buffers (Fig. 1/Fig. 8): instead of
// GC-churning a fresh Block (with hundreds of per-collection Groups,
// stream slices and doc maps) per container file, the executor gets a
// block here before parsing and puts it back once the sequencer has
// finished post-processing it.
//
// A BlockPool is safe for concurrent use: parser goroutines Get while
// the sequencer Puts. The zero ownership rule is strict — after Put,
// no Group pointer or stream subslice taken from the block may be
// touched again (the allocation-budget tests under -race enforce
// this).
type BlockPool struct {
	p sync.Pool
}

// NewBlockPool returns an empty pool.
func NewBlockPool() *BlockPool {
	bp := &BlockPool{}
	bp.p.New = func() any { return NewBlock(0) }
	return bp
}

// Get returns a clean block tagged with parserID. The block is either
// recycled (retaining group and map capacity from earlier files) or
// freshly allocated.
func (bp *BlockPool) Get(parserID int) *Block {
	b := bp.p.Get().(*Block)
	b.ParserID = parserID
	return b
}

// Put resets b and returns it to the pool. Put(nil) is a no-op.
func (bp *BlockPool) Put(b *Block) {
	if b == nil {
		return
	}
	b.Reset()
	bp.p.Put(b)
}
