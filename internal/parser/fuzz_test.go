package parser

import (
	"testing"

	"fastinvert/internal/trie"
)

// FuzzParseDoc feeds arbitrary document bytes through the full parse
// pipeline and checks the block invariants hold for any input.
func FuzzParseDoc(f *testing.F) {
	f.Add([]byte("The quick brown fox"))
	f.Add([]byte(""))
	f.Add([]byte("zo\xc3\xa9 0195 -80 <html> aaat"))
	f.Add([]byte{0xFF, 0x00, 0x80, 'a'})
	f.Fuzz(func(t *testing.T, doc []byte) {
		p := New(nil)
		blk := NewBlock(0)
		p.ParseDoc(7, doc, blk)
		if err := blk.Validate(); err != nil {
			t.Fatalf("invalid block from %q: %v", doc, err)
		}
		total := 0
		for idx, g := range blk.Groups {
			if !trie.Valid(idx) {
				t.Fatalf("invalid collection %d", idx)
			}
			err := g.ForEach(func(docID uint32, stripped []byte) error {
				if docID != 7 {
					t.Fatalf("docID %d, want 7", docID)
				}
				if len(stripped) > MaxTokenLen {
					t.Fatalf("stripped term too long: %d", len(stripped))
				}
				total++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if total != blk.Tokens {
			t.Fatalf("stream holds %d tokens, block says %d", total, blk.Tokens)
		}
		if blk.DocTokens[7] != blk.Tokens {
			t.Fatalf("doc length %d, want %d", blk.DocTokens[7], blk.Tokens)
		}
	})
}

// FuzzGroupForEach hardens the group-stream decoder against arbitrary
// bytes: parse or reject, never panic, never read out of bounds.
func FuzzGroupForEach(f *testing.F) {
	p := New(nil)
	blk := NewBlock(0)
	p.ParseDoc(1, []byte("hello world zebra"), blk)
	for _, g := range blk.Groups {
		f.Add(g.Stream)
	}
	f.Add([]byte{DocMarker, 1, 0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{DocMarker})
	f.Fuzz(func(t *testing.T, stream []byte) {
		g := &Group{Stream: stream}
		g.ForEach(func(uint32, []byte) error { return nil }) //nolint:errcheck
	})
}
