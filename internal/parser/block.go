package parser

import (
	"errors"
	"fmt"

	"fastinvert/internal/trie"
)

// DocMarker introduces a document boundary inside a group stream: the
// sentinel byte followed by a 4-byte little-endian local document ID.
// Term records use a length byte in [0, MaxTokenLen], so the sentinel
// (255) can never be confused with a term. The GPU indexer decodes
// this format on-device.
const DocMarker = 0xFF

const docMarker = DocMarker

// Group is the parsed stream of one trie collection within a block
// (§III.C): "(Doc_ID1, term1, term2, ...), (Doc_ID2, ...)" encoded as
// Fig. 6 length-prefixed stripped strings with docMarker boundaries.
// In positional mode each term record carries a trailing varbyte token
// position.
type Group struct {
	Index      int    // trie-collection index
	Stream     []byte // docMarker-delimited, length-prefixed stripped terms
	Tokens     int    // term occurrences in this group
	Chars      int    // stripped bytes in this group
	Positional bool   // term records carry positions

	lastDoc   uint32 // last document marked in the stream
	hasAnyDoc bool
}

// reset clears the group for reuse, retaining the stream's capacity.
func (g *Group) reset() {
	g.Index = 0
	g.Stream = g.Stream[:0]
	g.Tokens = 0
	g.Chars = 0
	g.Positional = false
	g.lastDoc = 0
	g.hasAnyDoc = false
}

// append adds one stripped term occurrence for doc.
func (g *Group) append(doc uint32, stripped []byte) {
	if !g.hasAnyDoc || g.lastDoc != doc {
		g.Stream = append(g.Stream, docMarker,
			byte(doc), byte(doc>>8), byte(doc>>16), byte(doc>>24))
		g.lastDoc = doc
		g.hasAnyDoc = true
	}
	g.Stream = append(g.Stream, byte(len(stripped)))
	g.Stream = append(g.Stream, stripped...)
	g.Tokens++
	g.Chars += len(stripped)
}

// appendPos adds one positional occurrence (varbyte position after the
// term bytes).
func (g *Group) appendPos(doc, pos uint32, stripped []byte) {
	g.append(doc, stripped)
	for pos >= 0x80 {
		g.Stream = append(g.Stream, byte(pos)|0x80)
		pos >>= 7
	}
	g.Stream = append(g.Stream, byte(pos))
}

// ErrCorruptStream reports a malformed group stream.
var ErrCorruptStream = errors.New("parser: corrupt group stream")

// ForEach decodes the stream, invoking fn for every term occurrence
// with its local document ID and stripped term bytes (valid only for
// the duration of the call). Positions, if present, are skipped.
func (g *Group) ForEach(fn func(doc uint32, stripped []byte) error) error {
	return g.ForEachPos(func(doc, _ uint32, stripped []byte) error {
		return fn(doc, stripped)
	})
}

// ForEachPos decodes the stream with token positions (always 0 for
// non-positional groups).
func (g *Group) ForEachPos(fn func(doc, pos uint32, stripped []byte) error) error {
	s := g.Stream
	i := 0
	var doc uint32
	seenDoc := false
	for i < len(s) {
		if s[i] == docMarker {
			if i+5 > len(s) {
				return ErrCorruptStream
			}
			doc = uint32(s[i+1]) | uint32(s[i+2])<<8 | uint32(s[i+3])<<16 | uint32(s[i+4])<<24
			seenDoc = true
			i += 5
			continue
		}
		if !seenDoc {
			return ErrCorruptStream
		}
		n := int(s[i])
		i++
		if i+n > len(s) {
			return ErrCorruptStream
		}
		term := s[i : i+n]
		i += n
		var pos uint32
		if g.Positional {
			var shift uint
			for {
				if i >= len(s) || shift > 28 {
					return ErrCorruptStream
				}
				b := s[i]
				i++
				pos |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
				shift += 7
			}
		}
		if err := fn(doc, pos, term); err != nil {
			return err
		}
	}
	return nil
}

// Block is the parsed output of one batch of documents from a single
// parser: term occurrences regrouped by trie-collection index. Blocks
// flow from parsers to indexers through the pipeline buffers.
type Block struct {
	ParserID int
	Seq      uint64 // global block sequence used for round-robin ordering

	// DocBase is added to local document IDs by the indexers to form
	// global IDs (§III.C: "a global document ID offset will be
	// calculated by the indexer").
	DocBase uint32

	Groups map[int]*Group // trie index -> parsed stream

	NumDocs    int  // documents parsed into this block
	Tokens     int  // term occurrences after stop-word removal
	Bytes      int  // raw input bytes represented
	Positional bool // term records carry token positions

	// DocTokens maps local docID -> surviving token count, the
	// document lengths used by ranked retrieval (BM25 normalization).
	DocTokens map[uint32]int

	docCounted map[uint32]struct{}

	// freeGroups recycles this block's Group structures (and their
	// stream capacity) across Reset cycles, so a pooled block's steady
	// state allocates nothing per file.
	freeGroups []*Group
}

// NewBlock returns an empty block for the given parser.
func NewBlock(parserID int) *Block {
	return &Block{
		ParserID:   parserID,
		Groups:     make(map[int]*Group),
		DocTokens:  make(map[uint32]int),
		docCounted: make(map[uint32]struct{}),
	}
}

func (b *Block) add(idx int, doc uint32, stripped []byte) {
	b.group(idx).append(doc, stripped)
	b.Tokens++
	b.DocTokens[doc]++
}

func (b *Block) addPos(idx int, doc, pos uint32, stripped []byte) {
	b.group(idx).appendPos(doc, pos, stripped)
	b.Tokens++
	b.DocTokens[doc]++
}

func (b *Block) group(idx int) *Group {
	g := b.Groups[idx]
	if g == nil {
		if n := len(b.freeGroups); n > 0 {
			g = b.freeGroups[n-1]
			b.freeGroups[n-1] = nil
			b.freeGroups = b.freeGroups[:n-1]
			g.Index = idx
			g.Positional = b.Positional
		} else {
			g = &Group{Index: idx, Positional: b.Positional}
		}
		b.Groups[idx] = g
	}
	return g
}

// Reset clears the block for reuse: all counters and maps are emptied,
// and the groups (with their stream capacity) move to an internal free
// list that the next parse draws from. The caller must be done with
// every Group pointer and stream subslice taken from this block —
// after Reset they will be overwritten by the next file's data.
func (b *Block) Reset() {
	for _, g := range b.Groups {
		g.reset()
		b.freeGroups = append(b.freeGroups, g)
	}
	clear(b.Groups)
	clear(b.DocTokens)
	clear(b.docCounted)
	b.ParserID = 0
	b.Seq = 0
	b.DocBase = 0
	b.NumDocs = 0
	b.Tokens = 0
	b.Bytes = 0
	b.Positional = false
}

func (b *Block) docSeen(doc uint32) {
	if _, ok := b.docCounted[doc]; !ok {
		b.docCounted[doc] = struct{}{}
		b.NumDocs++
	}
}

// AddRawBytes accounts raw (uncompressed) input size for throughput
// reporting.
func (b *Block) AddRawBytes(n int) { b.Bytes += n }

// Validate checks stream well-formedness and that group statistics
// match the streams — used by tests and the pipeline's debug mode.
func (b *Block) Validate() error {
	for idx, g := range b.Groups {
		if idx != g.Index || !trie.Valid(idx) {
			return fmt.Errorf("parser: group index mismatch %d vs %d", idx, g.Index)
		}
		tokens, chars := 0, 0
		err := g.ForEach(func(_ uint32, stripped []byte) error {
			tokens++
			chars += len(stripped)
			return nil
		})
		if err != nil {
			return err
		}
		if tokens != g.Tokens || chars != g.Chars {
			return fmt.Errorf("parser: group %d stats %d/%d, stream %d/%d",
				idx, g.Tokens, g.Chars, tokens, chars)
		}
	}
	return nil
}
