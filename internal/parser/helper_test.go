package parser

import "fastinvert/internal/stem"

// stemHelper wraps stem.Stem for test reference implementations.
func stemHelper(term []byte) []byte { return stem.Stem(term) }
