package parser

import (
	"sync"
	"testing"
)

// allocDocs is a small but non-trivial corpus: repeated vocabulary so
// steady-state structures stop growing, plus digits and multi-byte
// content to cover every tokenizer class.
func allocDocs() [][]byte {
	return [][]byte{
		[]byte("The quick brown fox jumps over the lazy dog 42 times; zoé watched."),
		[]byte("Indexing pipelines recycle buffers: parsing, stemming, grouping, indexing."),
		[]byte("quick foxes and lazy dogs reappear, so dictionaries and groups repeat."),
		[]byte("Buffers, buffers, buffers — the 3rd document repeats terms on purpose."),
	}
}

// TestTokenizerNextSteadyStateAllocs pins Tokenizer.Next at zero
// steady-state allocations: the token buffer is reused across calls, so
// scanning a document must not touch the heap after the first token.
func TestTokenizerNextSteadyStateAllocs(t *testing.T) {
	var tok Tokenizer
	text := allocDocs()[0]
	scan := func() {
		off := 0
		for {
			_, next, ok := tok.Next(text, off)
			if !ok {
				break
			}
			off = next
		}
	}
	scan() // warm the token buffer
	if avg := testing.AllocsPerRun(200, scan); avg != 0 {
		t.Errorf("Tokenizer.Next allocates %.1f objects per document scan, want 0", avg)
	}
}

// TestParseDocSteadyStateAllocs pins the pooled parse path: once a
// recycled Block has seen the vocabulary, parsing the same corpus again
// must not allocate — group structures, stream capacity and map buckets
// all survive the Get/Put cycle.
func TestParseDocSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; budget is meaningless")
	}
	p := New(nil)
	pool := NewBlockPool()
	docs := allocDocs()
	parseAll := func() {
		blk := pool.Get(0)
		for i, d := range docs {
			p.ParseDoc(uint32(i), d, blk)
		}
		pool.Put(blk)
	}
	// Warm until capacities stabilize (map growth, stream doubling).
	for i := 0; i < 4; i++ {
		parseAll()
	}
	if avg := testing.AllocsPerRun(100, parseAll); avg > 0.5 {
		t.Errorf("pooled ParseDoc allocates %.1f objects per file, want ~0", avg)
	}
}

// TestPooledBlockRoundTripConcurrent drives the pipeline's ownership
// protocol under the race detector: parser goroutines Get and fill
// blocks, a sequencer goroutine drains, reads and Puts them. Any
// aliasing between a recycled block's streams and a reader still
// holding old subslices is a -race failure here.
func TestPooledBlockRoundTripConcurrent(t *testing.T) {
	pool := NewBlockPool()
	docs := allocDocs()
	const parsers, rounds = 4, 50
	ch := make(chan *Block, parsers)
	var wg sync.WaitGroup
	for w := 0; w < parsers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := New(nil)
			p.Positional = id%2 == 1
			for i := 0; i < rounds; i++ {
				blk := pool.Get(id)
				for d, text := range docs {
					p.ParseDoc(uint32(d), text, blk)
				}
				ch <- blk
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	tokens := 0
	for blk := range ch {
		if err := blk.Validate(); err != nil {
			t.Errorf("recycled block failed validation: %v", err)
		}
		for _, g := range blk.Groups {
			err := g.ForEachPos(func(_, _ uint32, stripped []byte) error {
				if len(stripped) > MaxTokenLen {
					t.Errorf("term record longer than MaxTokenLen: %d", len(stripped))
				}
				tokens++
				return nil
			})
			if err != nil {
				t.Errorf("group walk: %v", err)
			}
		}
		pool.Put(blk)
	}
	if tokens == 0 {
		t.Fatal("no tokens observed across pooled round-trips")
	}
}
