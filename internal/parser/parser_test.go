package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"fastinvert/internal/stopwords"
	"fastinvert/internal/trie"
)

func collectTokens(text string) []string {
	var tok Tokenizer
	var out []string
	off := 0
	for {
		t, next, ok := tok.Next([]byte(text), off)
		if !ok {
			break
		}
		out = append(out, string(t))
		off = next
	}
	return out
}

func TestTokenizerBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"  <p>GPU-accelerated indexing</p> ", []string{"p", "gpu", "accelerated", "indexing", "p"}},
		{"x86_64 and -80 meters", []string{"x86", "64", "and", "80", "meters"}},
		{"", nil},
		{"...!!!", nil},
		{"caf\xc3\xa9 zo\xc3\xa9", []string{"caf\xc3\xa9", "zo\xc3\xa9"}},
		{"0195", []string{"0195"}},
	}
	for _, c := range cases {
		got := collectTokens(c.in)
		if len(got) != len(c.want) {
			t.Errorf("tokens(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("tokens(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestTokenizerTruncatesLongRuns(t *testing.T) {
	long := strings.Repeat("a", 5000)
	got := collectTokens(long + " next")
	if len(got) != 2 {
		t.Fatalf("got %d tokens, want 2", len(got))
	}
	if len(got[0]) != MaxTokenLen {
		t.Errorf("long token length %d, want %d", len(got[0]), MaxTokenLen)
	}
	if got[1] != "next" {
		t.Errorf("following token = %q", got[1])
	}
}

func TestParseDocPipeline(t *testing.T) {
	p := New(nil)
	blk := NewBlock(0)
	// "the" is a stop word; "parallelize"/"parallelism" stem together.
	p.ParseDoc(1, []byte("The parallelize and parallelism of application"), blk)
	if blk.NumDocs != 1 {
		t.Fatalf("NumDocs = %d, want 1", blk.NumDocs)
	}
	// Surviving terms: parallel, parallel, applic (stems of application).
	if blk.Tokens != 3 {
		t.Fatalf("Tokens = %d, want 3", blk.Tokens)
	}
	idxPar := trie.IndexString("parallel")
	g := blk.Groups[idxPar]
	if g == nil || g.Tokens != 2 {
		t.Fatalf("parallel group missing or wrong: %+v", g)
	}
	var seen []string
	g.ForEach(func(doc uint32, s []byte) error {
		if doc != 1 {
			t.Errorf("doc = %d, want 1", doc)
		}
		seen = append(seen, string(s))
		return nil
	})
	// "parallel" stripped of "par" -> "allel".
	if len(seen) != 2 || seen[0] != "allel" || seen[1] != "allel" {
		t.Errorf("stripped terms = %v, want [allel allel]", seen)
	}
}

func TestParseDocAblationFlags(t *testing.T) {
	p := New(nil)
	p.DisableStem = true
	p.DisableStop = true
	blk := NewBlock(0)
	p.ParseDoc(1, []byte("the cats"), blk)
	if blk.Tokens != 2 {
		t.Fatalf("with stem+stop disabled: Tokens = %d, want 2", blk.Tokens)
	}
	idx := trie.IndexString("cats")
	if blk.Groups[idx] == nil {
		t.Error("unstemmed 'cats' group missing")
	}
}

func TestCustomStopSet(t *testing.T) {
	p := New(stopwords.NewSet([]string{"gpu"}))
	blk := NewBlock(0)
	p.ParseDoc(1, []byte("gpu the indexer"), blk)
	// "gpu" dropped by the custom list; "the" survives (stems to "the"),
	// "indexer" stems to "index".
	if blk.Tokens != 2 {
		t.Fatalf("Tokens = %d, want 2", blk.Tokens)
	}
}

func TestBlockMultipleDocsAndMarkers(t *testing.T) {
	p := New(nil)
	blk := NewBlock(3)
	p.ParseDoc(10, []byte("zebra zebra"), blk)
	p.ParseDoc(11, []byte("zebra"), blk)
	idx := trie.IndexString("zebra")
	g := blk.Groups[idx]
	if g == nil {
		t.Fatal("zebra group missing")
	}
	type occ struct {
		doc  uint32
		term string
	}
	var occs []occ
	g.ForEach(func(doc uint32, s []byte) error {
		occs = append(occs, occ{doc, string(s)})
		return nil
	})
	want := []occ{{10, "ra"}, {10, "ra"}, {11, "ra"}}
	if len(occs) != len(want) {
		t.Fatalf("occurrences = %v, want %v", occs, want)
	}
	for i := range want {
		if occs[i] != want[i] {
			t.Errorf("occ[%d] = %v, want %v", i, occs[i], want[i])
		}
	}
	if err := blk.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEmptyStrippedTermsSurvive(t *testing.T) {
	// Terms equal to their trie prefix strip to the empty string and
	// must round-trip through the stream format (e.g. "z" in the 'z'
	// short-letter collection strips to "").
	p := New(nil)
	blk := NewBlock(0)
	p.ParseDoc(5, []byte("z z 7"), blk)
	idxZ := trie.IndexString("z")
	g := blk.Groups[idxZ]
	if g == nil {
		t.Fatal("z group missing")
	}
	count := 0
	g.ForEach(func(doc uint32, s []byte) error {
		if len(s) != 0 {
			t.Errorf("stripped = %q, want empty", s)
		}
		count++
		return nil
	})
	if count != 2 {
		t.Errorf("occurrences = %d, want 2", count)
	}
	idx7 := trie.IndexString("7")
	if blk.Groups[idx7] == nil {
		t.Error("numeric group missing")
	}
}

func TestGroupStreamCorruption(t *testing.T) {
	g := &Group{Stream: []byte{docMarker, 1, 0}} // truncated doc marker
	if err := g.ForEach(func(uint32, []byte) error { return nil }); err != ErrCorruptStream {
		t.Errorf("truncated marker: err = %v", err)
	}
	g = &Group{Stream: []byte{3, 'a'}} // term before any doc marker
	if err := g.ForEach(func(uint32, []byte) error { return nil }); err != ErrCorruptStream {
		t.Errorf("missing marker: err = %v", err)
	}
	g = &Group{Stream: []byte{docMarker, 1, 0, 0, 0, 10, 'a'}} // short term
	if err := g.ForEach(func(uint32, []byte) error { return nil }); err != ErrCorruptStream {
		t.Errorf("short term: err = %v", err)
	}
}

// TestRegroupPreservesEverything is the Step 5 invariant: regrouping
// reorders but neither drops nor duplicates occurrences, and restoring
// each group's trie prefix recovers the stemmed, stop-filtered terms.
func TestRegroupPreservesEverything(t *testing.T) {
	f := func(words []uint16) bool {
		var sb strings.Builder
		for _, w := range words {
			n := int(w%8) + 1
			for i := 0; i < n; i++ {
				sb.WriteByte(byte('a' + (int(w)+i*7)%26))
			}
			sb.WriteByte(' ')
		}
		text := []byte(sb.String())

		// Reference: run Steps 2-4 only, counting term multiset.
		ref := map[string]int{}
		refCount := 0
		p0 := New(nil)
		var tok Tokenizer
		off := 0
		for {
			tkn, next, ok := tok.Next(text, off)
			if !ok {
				break
			}
			off = next
			term := append([]byte(nil), tkn...)
			term = stemCopy(term)
			if p0.stop.Contains(term) || len(term) == 0 {
				continue
			}
			ref[string(term)]++
			refCount++
		}

		// Regrouped parse.
		blk := NewBlock(0)
		New(nil).ParseDoc(1, text, blk)
		if blk.Tokens != refCount {
			return false
		}
		got := map[string]int{}
		for idx, g := range blk.Groups {
			err := g.ForEach(func(_ uint32, s []byte) error {
				got[string(trie.Restore(idx, s))]++
				return nil
			})
			if err != nil {
				return false
			}
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func stemCopy(term []byte) []byte {
	return append([]byte(nil), stemHelper(term)...)
}

func BenchmarkParseDoc(b *testing.B) {
	text := []byte(strings.Repeat(
		"The quick brown foxes are jumping over lazy dogs while parallel GPU indexers process documents. ", 50))
	p := New(nil)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := NewBlock(0)
		p.ParseDoc(uint32(i), text, blk)
	}
}
