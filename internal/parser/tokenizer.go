// Package parser implements the paper's parser stage (§III.C, Fig. 3):
// tokenization, Porter stemming, stop-word removal, and the regrouping
// step that reorders a document batch's terms by trie-collection index
// and strips the trie-captured prefix. Its output, a Block, is the
// parsed stream consumed by the CPU and GPU indexers.
package parser

import (
	"fastinvert/internal/stem"
	"fastinvert/internal/stopwords"
	"fastinvert/internal/trie"
)

// MaxTokenLen bounds raw token length. The paper assumes no term
// exceeds 255 bytes (Fig. 6's one-byte length); we clamp earlier so
// that even after prefix stripping a term record's length byte can
// never equal the docMarker sentinel.
const MaxTokenLen = 200

// Tokenizer splits document bytes into lowercase tokens. Token bytes
// are ASCII letters (case-folded), digits, and any byte >= 0x80
// (multi-byte UTF-8 content such as "zoé" stays a single token, giving
// Table I's "special letter" terms); everything else separates tokens.
type Tokenizer struct {
	buf []byte
}

// tokenByte classifies c and returns its folded form.
func tokenByte(c byte) (byte, bool) {
	switch {
	case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c >= 0x80:
		return c, true
	case c >= 'A' && c <= 'Z':
		return c + 'a' - 'A', true
	}
	return 0, false
}

// Next scans text from offset off and returns the next token (valid
// until the following call), the offset to resume at, and ok=false at
// end of input. Over-long runs are truncated to MaxTokenLen with the
// remainder of the run consumed.
func (t *Tokenizer) Next(text []byte, off int) (tok []byte, next int, ok bool) {
	n := len(text)
	for off < n {
		if _, isTok := tokenByte(text[off]); isTok {
			break
		}
		off++
	}
	if off >= n {
		return nil, n, false
	}
	t.buf = t.buf[:0]
	for off < n {
		c, isTok := tokenByte(text[off])
		if !isTok {
			break
		}
		if len(t.buf) < MaxTokenLen {
			t.buf = append(t.buf, c)
		}
		off++
	}
	return t.buf, off, true
}

// Parser executes Steps 2-5 of Fig. 3 for successive documents. It is
// not safe for concurrent use; the pipeline runs one Parser per parser
// thread.
type Parser struct {
	tok  Tokenizer
	stop *stopwords.Set

	// DisableStem and DisableStop support ablation benches.
	DisableStem bool
	DisableStop bool

	// Positional records each surviving term's token position within
	// its document (the raw token ordinal, so removed stop words
	// leave gaps — the convention phrase queries expect).
	Positional bool
}

// New returns a Parser using the given stop-word set (nil means the
// default English list).
func New(stop *stopwords.Set) *Parser {
	if stop == nil {
		stop = stopwords.Default()
	}
	return &Parser{stop: stop}
}

// ParseDoc tokenizes, stems and filters one document and appends its
// terms to the block under local document ID docID (Steps 2-4), routed
// to per-trie-collection groups with prefixes stripped (Step 5).
//
// The trie index is computed on the final stemmed term rather than
// during the raw scan: stemming only rewrites suffixes but can shorten
// a term across Table I's three-letter boundary (e.g. "cats" -> "cat"),
// and the dictionary must see a consistent index for a given stored
// term. The added cost is a few byte inspections per term, matching
// the paper's "minimal additional effort" claim.
func (p *Parser) ParseDoc(docID uint32, text []byte, blk *Block) {
	if p.Positional {
		blk.Positional = true
	}
	off := 0
	pos := uint32(0)
	for {
		tok, next, ok := p.tok.Next(text, off)
		if !ok {
			break
		}
		off = next
		tokenPos := pos
		pos++
		term := tok
		if !p.DisableStem {
			term = stem.Stem(term)
		}
		if !p.DisableStop && p.stop.Contains(term) {
			continue
		}
		if len(term) == 0 {
			continue
		}
		idx := trie.Index(term)
		if p.Positional {
			blk.addPos(idx, docID, tokenPos, trie.Strip(idx, term))
		} else {
			blk.add(idx, docID, trie.Strip(idx, term))
		}
	}
	blk.docSeen(docID)
}
