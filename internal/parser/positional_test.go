package parser

import (
	"testing"

	"fastinvert/internal/trie"
)

func TestPositionalParseRecordsTokenOrdinals(t *testing.T) {
	p := New(nil)
	p.Positional = true
	blk := NewBlock(0)
	// Token positions: the=0 quick=1 fox=2 jumped=3 over=4 the=5 dog=6.
	// Stop words ("the", "over") are dropped but keep their ordinals.
	p.ParseDoc(3, []byte("the quick fox jumped over the dog"), blk)
	if !blk.Positional {
		t.Fatal("block not marked positional")
	}
	want := map[string]uint32{
		"quick": 1, "fox": 2, "jump": 3, "dog": 6,
	}
	got := map[string]uint32{}
	for gi, g := range blk.Groups {
		if !g.Positional {
			t.Fatalf("group %d not positional", gi)
		}
		err := g.ForEachPos(func(doc, pos uint32, stripped []byte) error {
			if doc != 3 {
				t.Errorf("doc = %d", doc)
			}
			got[string(trie.Restore(gi, stripped))] = pos
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("terms = %v, want %v", got, want)
	}
	for term, pos := range want {
		if got[term] != pos {
			t.Errorf("position of %q = %d, want %d", term, got[term], pos)
		}
	}
}

func TestPositionalLargePositionsVarbyte(t *testing.T) {
	p := New(nil)
	p.Positional = true
	blk := NewBlock(0)
	// Build a document long enough that positions exceed one varbyte.
	doc := make([]byte, 0, 4096)
	for i := 0; i < 300; i++ {
		doc = append(doc, "filler "...)
	}
	doc = append(doc, "zzzuniquez"...)
	p.ParseDoc(1, doc, blk)
	idx := trie.IndexString("zzzuniquez")
	g := blk.Groups[idx]
	if g == nil {
		t.Fatal("target group missing")
	}
	found := false
	g.ForEachPos(func(_, pos uint32, stripped []byte) error {
		if string(stripped) == "uniquez" {
			if pos != 300 {
				t.Errorf("position = %d, want 300", pos)
			}
			found = true
		}
		return nil
	})
	if !found {
		t.Fatal("unique term not found")
	}
	if err := blk.Validate(); err != nil {
		t.Fatalf("Validate on positional block: %v", err)
	}
}

func TestNonPositionalForEachPosYieldsZero(t *testing.T) {
	p := New(nil)
	blk := NewBlock(0)
	p.ParseDoc(1, []byte("alpha beta"), blk)
	for _, g := range blk.Groups {
		g.ForEachPos(func(_, pos uint32, _ []byte) error {
			if pos != 0 {
				t.Errorf("non-positional group yielded pos %d", pos)
			}
			return nil
		})
	}
}
