package search

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// FuzzSearchQueries throws random and/or/phrase/topk/prefix queries at
// a small fixed index: no input may panic, and any error must be one
// of the package's typed sentinels (or a context error). Two searchers
// cover both sides of the positional split, so phrase queries exercise
// the position-decoding path and the ErrNotPositional path.
func FuzzSearchQueries(f *testing.F) {
	positional := buildPositionalIndex(f, []string{
		"gpu indexing accelerates inverted files",
		"the quick brown fox jumps over the lazy dog",
		"indexing gpu systems differ wildly",
		"",
		"héllo 日本語 data 42 a_b-c.d running runner",
	})
	idx, _ := buildIndex(f)
	flat := New(idx)

	f.Add("gpu indexing", byte(0), 5)
	f.Add("the and of", byte(1), 1)
	f.Add("quick brown fox", byte(2), 3)
	f.Add("", byte(3), 0)
	f.Add("héllo\x00\xff 日本", byte(4), -7)
	f.Add(strings.Repeat("z", 400), byte(5), 1<<20)
	f.Add("missing terms only here", byte(2), 10)

	f.Fuzz(func(t *testing.T, query string, op byte, k int) {
		words := strings.Fields(query)
		if len(words) > 8 {
			words = words[:8] // bound cost, not behavior
		}
		for _, s := range []*Searcher{positional, flat} {
			var err error
			switch op % 6 {
			case 0:
				_, err = s.And(words...)
			case 1:
				_, err = s.Or(words...)
			case 2:
				_, err = s.Phrase(words...)
			case 3:
				_, err = s.TopK(k, words...)
			case 4:
				if len(words) > 0 {
					_, err = s.Postings(words[0])
				}
			case 5:
				s.MatchPrefix(query, k)
			}
			if err != nil &&
				!errors.Is(err, ErrNotPositional) &&
				!errors.Is(err, ErrInvalidK) &&
				!errors.Is(err, context.Canceled) &&
				!errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("untyped error from op %d on %q: %v", op%6, words, err)
			}
		}
	})
}
