package search

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestSearcherConcurrentQueries hammers one Searcher (and therefore
// one IndexReader) from 16 goroutines with mixed Postings/And/TopK —
// the documented concurrency guarantee, checked under -race.
func TestSearcherConcurrentQueries(t *testing.T) {
	idx, ref := buildIndex(t)
	defer idx.Close()
	s := New(idx)
	frequent, rare := pickTerms(ref)
	words := []string{frequent, rare}

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w := words[(g+i)%len(words)]
				var err error
				switch i % 3 {
				case 0:
					var l interface{ Len() int }
					l, err = s.Postings(w)
					if err == nil && l.Len() == 0 {
						err = errors.New("empty postings for indexed term " + w)
					}
				case 1:
					_, err = s.And(frequent, rare)
				case 2:
					_, err = s.TopK(5, frequent, rare)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestContextCancellation verifies every Ctx query method observes a
// canceled context and returns its error.
func TestContextCancellation(t *testing.T) {
	idx, ref := buildIndex(t)
	defer idx.Close()
	s := New(idx)
	frequent, _ := pickTerms(ref)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := s.PostingsCtx(ctx, frequent); !errors.Is(err, context.Canceled) {
		t.Errorf("PostingsCtx = %v, want Canceled", err)
	}
	if _, err := s.AndCtx(ctx, frequent); !errors.Is(err, context.Canceled) {
		t.Errorf("AndCtx = %v, want Canceled", err)
	}
	if _, err := s.OrCtx(ctx, frequent); !errors.Is(err, context.Canceled) {
		t.Errorf("OrCtx = %v, want Canceled", err)
	}
	if _, err := s.PhraseCtx(ctx, frequent); !errors.Is(err, context.Canceled) {
		t.Errorf("PhraseCtx = %v, want Canceled", err)
	}
	if _, err := s.TopKCtx(ctx, 5, frequent); !errors.Is(err, context.Canceled) {
		t.Errorf("TopKCtx = %v, want Canceled", err)
	}
}

func TestTypedQueryErrors(t *testing.T) {
	idx, ref := buildIndex(t) // non-positional index
	defer idx.Close()
	s := New(idx)
	frequent, rare := pickTerms(ref)

	if _, err := s.TopK(0, frequent); !errors.Is(err, ErrInvalidK) {
		t.Errorf("TopK(0) = %v, want ErrInvalidK", err)
	}
	if _, err := s.Phrase(frequent, rare); !errors.Is(err, ErrNotPositional) {
		t.Errorf("Phrase on non-positional index = %v, want ErrNotPositional", err)
	}
}
