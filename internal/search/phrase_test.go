package search

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/store"
)

// literalSource serves hand-written documents as one container file.
type literalSource struct {
	docs []string
}

func (s *literalSource) NumFiles() int       { return 1 }
func (s *literalSource) FileName(int) string { return "crafted-00000.txt" }
func (s *literalSource) ReadFile(int) ([]byte, bool, error) {
	var sb strings.Builder
	for _, d := range s.docs {
		sb.WriteString(corpus.DocDelim)
		sb.WriteString(d)
	}
	return []byte(sb.String()), false, nil
}

func buildPositionalIndex(t testing.TB, docs []string) *Searcher {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Parsers = 1
	cfg.CPUIndexers = 1
	cfg.GPUs = 1
	g := gpu.TeslaC1060()
	g.SMs = 2
	g.DeviceMemBytes = 32 << 20
	cfg.GPU = g
	cfg.GPUThreadBlocks = 4
	cfg.Positional = true
	cfg.Sampling.Ratio = 1
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Build(&literalSource{docs: docs}); err != nil {
		t.Fatal(err)
	}
	idx, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	return New(idx)
}

func TestPhraseQueries(t *testing.T) {
	s := buildPositionalIndex(t, []string{
		"gpu indexing accelerates inverted files",        // doc 0
		"indexing gpu systems differ",                    // doc 1: reversed order
		"gpu fast indexing here",                         // doc 2: gap between words
		"nothing relevant whatsoever",                    // doc 3
		"more text then gpu indexing again gpu indexing", // doc 4: twice
	})

	cases := []struct {
		words []string
		want  []uint32
	}{
		{[]string{"gpu", "indexing"}, []uint32{0, 4}},
		{[]string{"indexing", "gpu"}, []uint32{1}},
		{[]string{"inverted", "files"}, []uint32{0}},
		{[]string{"gpu", "fast", "indexing"}, []uint32{2}},
		{[]string{"gpu", "systems"}, []uint32{1}},
		{[]string{"gpu", "whatsoever"}, nil},
		{[]string{"missingword", "gpu"}, nil},
	}
	for _, c := range cases {
		got, err := s.Phrase(c.words...)
		if err != nil {
			t.Fatalf("Phrase(%v): %v", c.words, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("Phrase(%v) = %v, want %v", c.words, got, c.want)
		}
	}
}

func TestPhraseWithInteriorStopWord(t *testing.T) {
	s := buildPositionalIndex(t, []string{
		"speed of light measured", // "of" is a stop word but holds position 1
		"speed light measured",    // adjacent: different shape
		"light speed of measured", // wrong order
	})
	got, err := s.Phrase("speed", "of", "light")
	if err != nil {
		t.Fatal(err)
	}
	// Only doc 0 has speed@0 ... light@2 with the stop word occupying
	// position 1; doc 1 has light directly adjacent (offset 1, not 2).
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Phrase(speed of light) = %v, want [0]", got)
	}
	// Single surviving word degenerates to a term query.
	got, err = s.Phrase("the", "measured")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("degenerate phrase = %v, want all three docs", got)
	}
}

func TestPhraseNeedsPositionalIndex(t *testing.T) {
	idx, _ := buildIndex(t) // non-positional fixture
	s := New(idx)
	if _, err := s.Phrase("water", "people"); err == nil {
		t.Error("phrase on non-positional index must error")
	}
}
