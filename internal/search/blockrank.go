package search

// Block-max top-k evaluation (PR 10): MaxScore and Block-Max-WAND over
// the blocked postings layout (store run format v5). Both evaluators
// return results identical to the exhaustive TopK scorer — same docs,
// same ranks, bitwise-identical scores — while decoding only the
// blocks their pruning bounds cannot rule out.
//
// Exactness rests on three invariants, mirrored from the exhaustive
// path:
//
//  1. A surviving document's final score is recomputed by summing the
//     per-term contributions in query-word order with the exact same
//     floating-point expressions the exhaustive scorer uses, so the
//     rounded sums agree bit for bit.
//
//  2. Document-at-a-time traversal visits docIDs in ascending order,
//     so every heap-resident document has a smaller docID than any new
//     candidate. The exhaustive heap breaks score ties by keeping the
//     smaller docID, which means a candidate scoring exactly theta
//     (the current k-th best) can never displace anything — pruning at
//     bound <= theta and admitting only on score > theta is exact, not
//     approximate.
//
//  3. Bounds are compared through boundExceeds, which inflates the
//     bound by a relative slack before comparing. Upper bounds are
//     exact over the reals but individually rounded, and partial sums
//     accumulate in a different order than the exhaustive scorer's —
//     the slack absorbs those few-ulp discrepancies so a bound can
//     never round below a score it mathematically dominates.

import (
	"cmp"
	"container/heap"
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync/atomic"

	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

// RankMode selects the top-k evaluation strategy.
type RankMode int32

const (
	// RankAuto uses Block-Max-WAND whenever the source serves block
	// metadata, falling back to the exhaustive scorer otherwise. The
	// default.
	RankAuto RankMode = iota
	// RankExhaustive forces the whole-list scorer.
	RankExhaustive
	// RankMaxScore forces the MaxScore evaluator.
	RankMaxScore
	// RankBlockMax forces the Block-Max-WAND evaluator.
	RankBlockMax
)

func (m RankMode) String() string {
	switch m {
	case RankAuto:
		return "auto"
	case RankExhaustive:
		return "exhaustive"
	case RankMaxScore:
		return "maxscore"
	case RankBlockMax:
		return "bmw"
	}
	return fmt.Sprintf("RankMode(%d)", int32(m))
}

// BlockSource is the optional PostingsSource extension serving the
// block-at-a-time view: the parsed skip tables with codec bodies left
// undecoded. (nil, nil) means block evaluation is unavailable for the
// current index state (no merged file, live tombstones) and the caller
// must fall back to exhaustive scoring; a non-nil empty TermBlocks
// means the term does not occur. store.IndexReader and segment.Manager
// both implement it.
type BlockSource interface {
	BlockPostingsCtx(ctx context.Context, term string) (*store.TermBlocks, error)
}

// boundSlack is the relative margin bound comparisons concede to
// floating-point rounding: around 1e5 ulps, orders of magnitude above
// the drift a realistic query's summation reordering can produce, and
// far too small to blunt pruning.
const boundSlack = 1e-9

// boundExceeds reports whether an upper bound b may exceed theta,
// erring toward true so rounding can never prune a document the
// exhaustive scorer would keep.
func boundExceeds(b, theta float64) bool {
	return b*(1+boundSlack) > theta
}

// RankStats counts block-evaluator work since the Searcher was built.
type RankStats struct {
	BlockQueries    uint64 // TopK calls served by a block evaluator
	FallbackQueries uint64 // TopK calls that fell back to exhaustive
	BlocksDecoded   uint64 // postings blocks decoded
	BlocksSkipped   uint64 // postings blocks skipped via their bound
}

// rankCounters is the atomic backing store for RankStats.
type rankCounters struct {
	blockQueries    atomic.Uint64
	fallbackQueries atomic.Uint64
	blocksDecoded   atomic.Uint64
	blocksSkipped   atomic.Uint64
}

// RankStats snapshots the block-evaluator counters.
func (s *Searcher) RankStats() RankStats {
	return RankStats{
		BlockQueries:    s.rankStats.blockQueries.Load(),
		FallbackQueries: s.rankStats.fallbackQueries.Load(),
		BlocksDecoded:   s.rankStats.blocksDecoded.Load(),
		BlocksSkipped:   s.rankStats.blocksSkipped.Load(),
	}
}

// SetRankMode selects the top-k evaluation strategy. Safe to call
// concurrently with queries; each TopK call reads the mode once.
func (s *Searcher) SetRankMode(m RankMode) { s.rankMode.Store(int32(m)) }

// GetRankMode reports the current strategy.
func (s *Searcher) GetRankMode() RankMode { return RankMode(s.rankMode.Load()) }

// impactBound is the largest contribution a posting with term
// frequency maxTF can make to any document's score — the per-block and
// per-term upper bound. BM25's contribution is increasing in tf and
// decreasing in the length norm, so evaluating it at (maxTF, minNorm)
// dominates every posting the bound covers; the TF-IDF fallback is
// exactly maxTF*idf.
func (s *Searcher) impactBound(idf float64, maxTF uint32) float64 {
	tf := float64(maxTF)
	if s.UsesBM25() {
		return idf * tf * (bm25K1 + 1) / (tf + bm25K1*s.minNorm)
	}
	return tf * idf
}

// contribution is one positioned cursor's score contribution at doc,
// spelled with the exact expressions of the exhaustive scorer so
// recomputed sums match it bitwise.
func (s *Searcher) contribution(c *blockCursor, doc uint32) float64 {
	tf := float64(c.curTF)
	if s.UsesBM25() {
		norm := 1 - bm25B
		if int(doc) < len(s.docLens) {
			norm += bm25B * float64(s.docLens[doc]) / s.avgLen
		} else {
			norm += bm25B
		}
		return c.idf * tf * (bm25K1 + 1) / (tf + bm25K1*norm)
	}
	return tf * c.idf
}

// blockCursor iterates one term's postings block-at-a-time across the
// term's sources (merged file, or sealed segments plus memtable),
// whose doc ranges are disjoint and ascending; the flattened skip
// table is therefore globally sorted and a block is only decoded when
// the traversal actually enters it.
type blockCursor struct {
	ti  int     // term index: preserves query-word summation order
	idf float64 // this term's idf, shared by bounds and contributions
	ub  float64 // term-level score upper bound (max block bound)

	lists []*store.BlockList
	skips []store.BlockSkip // flattened across lists
	ubs   []float64         // per-block score bound, parallel to skips
	li    []int32           // owning list index, parallel to skips
	bi    []int32           // block index within the owning list

	cur      int // current block (index into skips)
	dec      int // block currently decoded into docs/tfs, -1 none
	docs     []uint32
	tfs      []uint32
	pi       int // position within the decoded block
	curDoc   uint32
	curTF    uint32
	done     bool
	nDecoded uint64
	nSkipped uint64
}

// newBlockCursor flattens a term's block view and positions the cursor
// on its first posting. The idf expression matches the exhaustive
// scorer's exactly, with df = the term's total postings — equal to the
// exhaustive document frequency because block sources refuse to serve
// when tombstones would hide postings.
func (s *Searcher) newBlockCursor(ti int, tb *store.TermBlocks, numDocs int64) (*blockCursor, error) {
	df := float64(tb.Len())
	var idf float64
	if s.UsesBM25() {
		idf = math.Log(1 + (float64(numDocs)-df+0.5)/(df+0.5))
	} else {
		idf = math.Log(1 + float64(numDocs)/df)
	}
	n := 0
	for _, l := range tb.Lists {
		n += l.NumBlocks()
	}
	c := &blockCursor{
		ti:    ti,
		idf:   idf,
		lists: tb.Lists,
		skips: make([]store.BlockSkip, 0, n),
		ubs:   make([]float64, 0, n),
		li:    make([]int32, 0, n),
		bi:    make([]int32, 0, n),
		dec:   -1,
	}
	for liIdx, l := range tb.Lists {
		for b := 0; b < l.NumBlocks(); b++ {
			sk := l.Skip(b)
			ub := s.impactBound(idf, sk.MaxTF)
			c.skips = append(c.skips, sk)
			c.ubs = append(c.ubs, ub)
			c.li = append(c.li, int32(liIdx))
			c.bi = append(c.bi, int32(b))
			if ub > c.ub {
				c.ub = ub
			}
		}
	}
	if err := c.nextGEQ(0); err != nil {
		return nil, err
	}
	return c, nil
}

// loadBlock decodes the current block unless it already is decoded.
func (c *blockCursor) loadBlock() error {
	if c.dec == c.cur {
		return nil
	}
	var err error
	c.docs, c.tfs, err = c.lists[c.li[c.cur]].DecodeBlock(int(c.bi[c.cur]))
	if err != nil {
		return err
	}
	c.dec = c.cur
	c.pi = 0
	c.nDecoded++
	return nil
}

// nextGEQ advances the cursor to the first posting with docID >=
// target, skipping whole blocks by their lastDoc without decoding.
func (c *blockCursor) nextGEQ(target uint32) error {
	for c.cur < len(c.skips) && c.skips[c.cur].LastDoc < target {
		if c.dec != c.cur {
			c.nSkipped++
		}
		c.cur++
	}
	if c.cur >= len(c.skips) {
		c.done = true
		return nil
	}
	if err := c.loadBlock(); err != nil {
		return err
	}
	// The block's lastDoc is >= target, so the scan stays in bounds.
	d := c.docs[c.pi:]
	c.pi += sort.Search(len(d), func(i int) bool { return d[i] >= target })
	c.curDoc = c.docs[c.pi]
	c.curTF = c.tfs[c.pi]
	return nil
}

// next advances the cursor one posting.
func (c *blockCursor) next() error {
	c.pi++
	if c.pi < len(c.docs) {
		c.curDoc = c.docs[c.pi]
		c.curTF = c.tfs[c.pi]
		return nil
	}
	c.cur++
	if c.cur >= len(c.skips) {
		c.done = true
		return nil
	}
	if err := c.loadBlock(); err != nil {
		return err
	}
	c.curDoc = c.docs[0]
	c.curTF = c.tfs[0]
	return nil
}

// shallow finds the block that would contain target (the first block
// with lastDoc >= target) without decoding or moving the cursor, and
// returns that block's score bound and lastDoc. A cursor with no
// postings at or beyond target contributes nothing there and must not
// constrain the skip frontier, hence (0, MaxUint32).
func (c *blockCursor) shallow(target uint32) (ub float64, blockLast uint32) {
	sk := c.skips[c.cur:]
	j := sort.Search(len(sk), func(i int) bool { return sk[i].LastDoc >= target })
	if j == len(sk) {
		return 0, math.MaxUint32
	}
	return c.ubs[c.cur+j], sk[j].LastDoc
}

// topKBlocks is the block-at-a-time TopK driver: it builds one cursor
// per scoring query word and runs the selected evaluator. The second
// return is false when the source cannot serve blocks right now and
// the caller must fall back to the exhaustive scorer.
func (s *Searcher) topKBlocks(ctx context.Context, k int, mode RankMode, words []string) ([]ScoredDoc, bool, error) {
	numDocs := s.NumDocs()
	cursors := make([]*blockCursor, 0, len(words))
	for _, w := range words {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		term, stop := s.Normalize(w)
		if stop || term == "" {
			continue
		}
		tb, err := s.blockSrc.BlockPostingsCtx(ctx, term)
		if err != nil {
			return nil, false, err
		}
		if tb == nil {
			return nil, false, nil
		}
		if tb.Len() == 0 {
			continue
		}
		c, err := s.newBlockCursor(len(cursors), tb, numDocs)
		if err != nil {
			return nil, false, err
		}
		if !c.done {
			cursors = append(cursors, c)
		}
	}
	rsp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageRank)
	var out []ScoredDoc
	var err error
	if mode == RankMaxScore {
		out, err = s.topKMaxScore(k, cursors)
	} else {
		out, err = s.topKBMW(k, cursors)
	}
	if err != nil {
		rsp.End()
		return nil, false, err
	}
	var dec, skp uint64
	for _, c := range cursors {
		dec += c.nDecoded
		skp += c.nSkipped
	}
	rsp.AddItems(int64(len(out)))
	rsp.SetNote(fmt.Sprintf("%s decoded=%d skipped=%d", mode, dec, skp))
	rsp.End()
	s.rankStats.blockQueries.Add(1)
	s.rankStats.blocksDecoded.Add(dec)
	s.rankStats.blocksSkipped.Add(skp)
	return out, true, nil
}

// admit pushes a scored doc into the bounded heap and returns the new
// theta. The strict > test is exact (invariant 2 above): a candidate
// tying the current k-th best always has the larger docID and loses
// the exhaustive tie-break anyway.
func admit(h *docHeap, k int, d ScoredDoc, theta float64) float64 {
	if h.Len() < k {
		heap.Push(h, d)
		if h.Len() == k {
			return (*h)[0].Score
		}
		return theta
	}
	if d.Score > theta {
		heap.Push(h, d)
		heap.Pop(h)
		return (*h)[0].Score
	}
	return theta
}

// heapResults drains the bounded heap into descending-score (ties:
// ascending docID) order, the exhaustive scorer's output shape.
func heapResults(h *docHeap) []ScoredDoc {
	out := make([]ScoredDoc, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(ScoredDoc)
	}
	return out
}

// topKBMW is Block-Max-WAND: cursors sorted by current docID, a pivot
// chosen as the first prefix whose term-level bounds can beat theta,
// then the pivot's block-level bounds consulted before any decode — if
// even the blocks containing the pivot cannot beat theta, every cursor
// in the prefix leaps past the shallowest block boundary without
// decoding anything.
func (s *Searcher) topKBMW(k int, cursors []*blockCursor) ([]ScoredDoc, error) {
	h := &docHeap{}
	heap.Init(h)
	theta := math.Inf(-1)
	order := make([]*blockCursor, len(cursors))
	copy(order, cursors)
	for len(order) > 0 {
		// Re-sorted every round; slices.SortFunc (not sort.Slice) keeps
		// the hot loop allocation-free, and the mostly-sorted input
		// (only advanced cursors moved) makes it nearly linear.
		slices.SortFunc(order, func(a, b *blockCursor) int {
			if a.curDoc != b.curDoc {
				return cmp.Compare(a.curDoc, b.curDoc)
			}
			return a.ti - b.ti
		})
		// Pivot: docs before it appear only in cursors whose combined
		// term bounds cannot reach theta.
		acc := 0.0
		p := -1
		for i, c := range order {
			acc += c.ub
			if boundExceeds(acc, theta) {
				p = i
				break
			}
		}
		if p < 0 {
			break // no remaining doc can beat theta
		}
		pivot := order[p].curDoc
		for p+1 < len(order) && order[p+1].curDoc == pivot {
			p++
		}
		// Block-max refinement: tighten the prefix bound to the blocks
		// actually containing the pivot.
		var bmSum float64
		minLast := uint32(math.MaxUint32)
		for _, c := range order[:p+1] {
			ub, last := c.shallow(pivot)
			bmSum += ub
			if last < minLast {
				minLast = last
			}
		}
		if boundExceeds(bmSum, theta) {
			// Score the pivot. Docs skipped between a prefix cursor's
			// position and the pivot appear only in prefix cursors
			// excluding p, whose bound sum failed the theta test.
			for _, c := range order[:p+1] {
				if c.curDoc < pivot {
					if err := c.nextGEQ(pivot); err != nil {
						return nil, err
					}
				}
			}
			var score float64
			for _, c := range cursors { // term order: bitwise-exact sum
				if !c.done && c.curDoc == pivot {
					score += s.contribution(c, pivot)
				}
			}
			theta = admit(h, k, ScoredDoc{pivot, score}, theta)
			for _, c := range order[:p+1] {
				if !c.done && c.curDoc == pivot {
					if err := c.next(); err != nil {
						return nil, err
					}
				}
			}
		} else {
			// Cursor p sits inside a block covering the pivot, so
			// minLast >= pivot and the skip target strictly advances.
			target := minLast
			if target != math.MaxUint32 {
				target++
			}
			if p+1 < len(order) && order[p+1].curDoc < target {
				target = order[p+1].curDoc
			}
			for _, c := range order[:p+1] {
				if !c.done && c.curDoc < target {
					if err := c.nextGEQ(target); err != nil {
						return nil, err
					}
				}
			}
		}
		live := order[:0]
		for _, c := range order {
			if !c.done {
				live = append(live, c)
			}
		}
		order = live
	}
	return heapResults(h), nil
}

// topKMaxScore is the MaxScore evaluator: terms sorted by their bound,
// the weakest prefix (whose combined bounds cannot reach theta) turned
// non-essential — candidates come only from essential cursors, and
// non-essential lists are probed per candidate, strongest first, with
// early abandonment once even the remaining bounds cannot lift the
// partial score past theta. Non-essential lists are only entered via
// nextGEQ, so their blocks are skipped wholesale.
func (s *Searcher) topKMaxScore(k int, cursors []*blockCursor) ([]ScoredDoc, error) {
	byUB := make([]*blockCursor, len(cursors))
	copy(byUB, cursors)
	slices.SortFunc(byUB, func(a, b *blockCursor) int {
		if a.ub != b.ub {
			return cmp.Compare(a.ub, b.ub)
		}
		return a.ti - b.ti
	})
	ubacc := make([]float64, len(byUB))
	acc := 0.0
	for i, c := range byUB {
		acc += c.ub
		ubacc[i] = acc
	}
	h := &docHeap{}
	heap.Init(h)
	theta := math.Inf(-1)
	e := 0 // byUB[:e] are non-essential
	for {
		var cand uint32
		found := false
		for _, c := range byUB[e:] {
			if !c.done && (!found || c.curDoc < cand) {
				cand = c.curDoc
				found = true
			}
		}
		if !found {
			break
		}
		partial := 0.0
		for _, c := range byUB[e:] {
			if !c.done && c.curDoc == cand {
				partial += s.contribution(c, cand)
			}
		}
		alive := true
		for i := e - 1; i >= 0; i-- {
			if !boundExceeds(partial+ubacc[i], theta) {
				alive = false
				break
			}
			c := byUB[i]
			if !c.done && c.curDoc < cand {
				if err := c.nextGEQ(cand); err != nil {
					return nil, err
				}
			}
			if !c.done && c.curDoc == cand {
				partial += s.contribution(c, cand)
			}
		}
		if alive {
			// The abandonment sums above ran in bound order; recompute
			// the survivor's score in term order for bitwise equality
			// with the exhaustive scorer (every cursor containing cand
			// is positioned on it now).
			var score float64
			for _, c := range cursors {
				if !c.done && c.curDoc == cand {
					score += s.contribution(c, cand)
				}
			}
			theta = admit(h, k, ScoredDoc{cand, score}, theta)
			for e < len(byUB) && !boundExceeds(ubacc[e], theta) {
				e++
			}
		}
		for _, c := range byUB[e:] {
			if !c.done && c.curDoc == cand {
				if err := c.next(); err != nil {
					return nil, err
				}
			}
		}
		if e >= len(byUB) {
			break // every term is non-essential: nothing can beat theta
		}
	}
	return heapResults(h), nil
}
