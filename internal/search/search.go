// Package search provides query evaluation over indexes built by the
// engine: normalized term lookup, Boolean conjunction and disjunction
// over postings lists, and TF-IDF ranked retrieval. It is the
// downstream-consumer layer the inverted files exist for, and doubles
// as an end-to-end exerciser of the run-file format.
package search

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"sort"
	"sync/atomic"

	"fastinvert/internal/postings"
	"fastinvert/internal/stem"
	"fastinvert/internal/stopwords"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

// BM25 parameters (standard Robertson defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Typed query errors, matchable with errors.Is.
var (
	// ErrNotPositional reports a phrase query against an index built
	// without positions (Options.Positional).
	ErrNotPositional = errors.New("search: phrase queries need a positional index")

	// ErrInvalidK reports a non-positive k passed to ranked retrieval.
	ErrInvalidK = errors.New("search: k must be positive")
)

// PostingsSource is what a Searcher needs from an index: postings
// lookup plus the immutable metadata driving IDF and BM25. It is the
// seam where a caching layer (internal/serve) slots in front of
// *store.IndexReader, which satisfies it directly.
type PostingsSource interface {
	Postings(term string) (*postings.List, error)
	DocLens() []uint32
	Runs() []store.RunMeta
	Dictionary() []store.DictEntry
}

// LiveSource is the optional extension a mutable index implements
// (internal/segment's manager and serve's live wrapper): LiveDocs is
// consulted on every NumDocs call, so IDF tracks the collection as
// documents are added and deleted instead of freezing at construction.
type LiveSource interface {
	LiveDocs() int64
}

// CtxPostingsSource is the optional context-aware extension of
// PostingsSource. Sources that implement it receive the query context
// on every per-term fetch, so a telemetry.RequestTrace carried by the
// context flows down to the cache/pread/decode leaves. The searcher
// type-asserts once at construction; sources without it keep working
// through plain Postings.
type CtxPostingsSource interface {
	PostingsCtx(ctx context.Context, term string) (*postings.List, error)
}

// Searcher evaluates queries against one opened index.
//
// Concurrency: a Searcher is immutable after construction and safe for
// concurrent use, provided its PostingsSource is (store.IndexReader
// and serve's cached wrapper both are).
type Searcher struct {
	idx      PostingsSource
	ctxSrc   CtxPostingsSource // idx's context-aware face, when it has one
	blockSrc BlockSource       // idx's block-at-a-time face, when it has one
	stop     *stopwords.Set
	numDocs  int64
	docLens  []uint32 // optional, enables BM25 length normalization
	avgLen   float64
	minNorm  float64 // smallest BM25 length norm any doc can have

	rankMode  atomic.Int32 // RankMode, read once per TopK call
	rankStats rankCounters
}

// New wraps an opened index. The document count for IDF comes from the
// index's docID-range map; when the index carries document lengths,
// ranked retrieval uses BM25 instead of plain TF-IDF.
func New(idx *store.IndexReader) *Searcher { return NewWithSource(idx) }

// NewWithSource wraps any PostingsSource — typically a *store.IndexReader,
// or serve's sharded postings cache fronting one.
func NewWithSource(idx PostingsSource) *Searcher {
	var maxDoc uint32
	any := false
	for _, r := range idx.Runs() {
		if r.LastDoc >= maxDoc {
			maxDoc = r.LastDoc
			any = true
		}
	}
	n := int64(0)
	if any {
		n = int64(maxDoc) + 1
	}
	s := &Searcher{idx: idx, stop: stopwords.Default(), numDocs: n}
	if cs, ok := idx.(CtxPostingsSource); ok {
		s.ctxSrc = cs
	}
	if bs, ok := idx.(BlockSource); ok {
		s.blockSrc = bs
	}
	if lens := idx.DocLens(); len(lens) > 0 {
		s.docLens = lens
		var sum float64
		minLen := lens[0]
		for _, l := range lens {
			sum += float64(l)
			if l < minLen {
				minLen = l
			}
		}
		s.avgLen = sum / float64(len(lens))
		// Docs beyond docLens get norm exactly 1, and minLen <= avgLen
		// keeps minNorm <= 1, so minNorm lower-bounds every norm.
		s.minNorm = 1 - bm25B + bm25B*float64(minLen)/s.avgLen
	}
	return s
}

// UsesBM25 reports whether ranked retrieval applies BM25 length
// normalization (requires an index written with document lengths).
func (s *Searcher) UsesBM25() bool { return s.avgLen > 0 }

// NumDocs reports the collection size used for IDF. Static indexes
// answer from the docID-range map captured at construction; a source
// implementing LiveSource is consulted on every call.
func (s *Searcher) NumDocs() int64 {
	if ls, ok := s.idx.(LiveSource); ok {
		return ls.LiveDocs()
	}
	return s.numDocs
}

// Normalize applies the indexing pipeline's normalization to a query
// word; stop reports whether the word is a stop word (and therefore
// unindexed).
func (s *Searcher) Normalize(word string) (term string, stop bool) {
	b := make([]byte, 0, len(word))
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	b = stem.Stem(b)
	return string(b), s.stop.Contains(b)
}

// Postings fetches the normalized word's postings list (empty for stop
// words and unknown terms).
func (s *Searcher) Postings(word string) (*postings.List, error) {
	return s.PostingsCtx(context.Background(), word)
}

// PostingsCtx is Postings honoring ctx cancellation.
func (s *Searcher) PostingsCtx(ctx context.Context, word string) (*postings.List, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	term, stop := s.Normalize(word)
	if stop || term == "" {
		return &postings.List{}, nil
	}
	return s.fetch(ctx, term)
}

// fetch routes a normalized term to the context-aware source when the
// index offers one, so request traces reach the storage layer.
func (s *Searcher) fetch(ctx context.Context, term string) (*postings.List, error) {
	if s.ctxSrc != nil {
		return s.ctxSrc.PostingsCtx(ctx, term)
	}
	return s.idx.Postings(term)
}

// And returns the docIDs containing every word (stop words are
// ignored; if all words are stop words the result is empty).
func (s *Searcher) And(words ...string) ([]uint32, error) {
	return s.AndCtx(context.Background(), words...)
}

// AndCtx is And honoring ctx: cancellation or deadline expiry between
// per-term postings fetches aborts the query with ctx.Err().
func (s *Searcher) AndCtx(ctx context.Context, words ...string) ([]uint32, error) {
	var lists []*postings.List
	for _, w := range words {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		term, stop := s.Normalize(w)
		if stop || term == "" {
			continue
		}
		l, err := s.fetch(ctx, term)
		if err != nil {
			return nil, err
		}
		if l.Len() == 0 {
			return nil, nil
		}
		lists = append(lists, l)
	}
	if len(lists) == 0 {
		return nil, nil
	}
	msp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageMerge)
	msp.AddItems(int64(len(lists)))
	defer msp.End()
	// Intersect smallest-first to keep the candidate set minimal.
	sort.Slice(lists, func(i, j int) bool { return lists[i].Len() < lists[j].Len() })
	out := append([]uint32(nil), lists[0].DocIDs...)
	for _, l := range lists[1:] {
		out = intersect(out, l.DocIDs)
		if len(out) == 0 {
			return nil, nil
		}
	}
	return out, nil
}

// intersect merges two sorted docID slices, galloping through the
// longer one.
func intersect(a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := a[:0]
	for _, doc := range a {
		i := sort.Search(len(b), func(i int) bool { return b[i] >= doc })
		if i < len(b) && b[i] == doc {
			out = append(out, doc)
		}
		b = b[i:]
	}
	return out
}

// Or returns the docIDs containing any word, in ascending order.
func (s *Searcher) Or(words ...string) ([]uint32, error) {
	return s.OrCtx(context.Background(), words...)
}

// OrCtx is Or honoring ctx cancellation between per-term fetches.
func (s *Searcher) OrCtx(ctx context.Context, words ...string) ([]uint32, error) {
	seen := map[uint32]struct{}{}
	for _, w := range words {
		l, err := s.PostingsCtx(ctx, w)
		if err != nil {
			return nil, err
		}
		for _, doc := range l.DocIDs {
			seen[doc] = struct{}{}
		}
	}
	msp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageMerge)
	out := make([]uint32, 0, len(seen))
	for doc := range seen {
		out = append(out, doc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	msp.AddItems(int64(len(out)))
	msp.End()
	return out, nil
}

// Phrase returns the docIDs containing the words as a phrase: each
// non-stop word at its original token offset relative to the others
// (stop words inside the phrase are skipped but still occupy a
// position, the standard convention). Requires a positional index.
func (s *Searcher) Phrase(words ...string) ([]uint32, error) {
	return s.PhraseCtx(context.Background(), words...)
}

// PhraseCtx is Phrase honoring ctx cancellation between per-term
// fetches.
func (s *Searcher) PhraseCtx(ctx context.Context, words ...string) ([]uint32, error) {
	type part struct {
		offset uint32
		list   *postings.List
	}
	var parts []part
	for i, w := range words {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		term, stop := s.Normalize(w)
		if stop || term == "" {
			continue
		}
		l, err := s.fetch(ctx, term)
		if err != nil {
			return nil, err
		}
		if l.Len() == 0 {
			return nil, nil
		}
		if !l.Positional() {
			return nil, ErrNotPositional
		}
		parts = append(parts, part{uint32(i), l})
	}
	if len(parts) == 0 {
		return nil, nil
	}
	if len(parts) == 1 {
		return append([]uint32(nil), parts[0].list.DocIDs...), nil
	}
	msp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageMerge)
	msp.AddItems(int64(len(parts)))
	defer msp.End()

	// Anchor on the first part; every candidate position p must have
	// p + (offset_k - offset_0) present in part k's positions.
	anchor := parts[0]
	var out []uint32
	for i, doc := range anchor.list.DocIDs {
		otherPos := make([][]uint32, 0, len(parts)-1)
		ok := true
		for _, pk := range parts[1:] {
			j := sort.Search(len(pk.list.DocIDs), func(j int) bool {
				return pk.list.DocIDs[j] >= doc
			})
			if j >= len(pk.list.DocIDs) || pk.list.DocIDs[j] != doc {
				ok = false
				break
			}
			otherPos = append(otherPos, pk.list.Positions[j])
		}
		if !ok {
			continue
		}
	scan:
		for _, p := range anchor.list.Positions[i] {
			for k, pk := range parts[1:] {
				want := p + pk.offset - anchor.offset
				ps := otherPos[k]
				j := sort.Search(len(ps), func(j int) bool { return ps[j] >= want })
				if j >= len(ps) || ps[j] != want {
					continue scan
				}
			}
			out = append(out, doc)
			break
		}
	}
	return out, nil
}

// MatchPrefix returns up to limit indexed terms starting with the
// given prefix, in lexicographic order — the dictionary's front-coded
// (collection, term) layout keeps same-prefix terms adjacent, so the
// scan is a binary search per candidate collection.
func (s *Searcher) MatchPrefix(prefix string, limit int) []string {
	if limit <= 0 {
		return nil
	}
	var out []string
	seen := map[string]struct{}{}
	for _, e := range s.idx.Dictionary() {
		if len(e.Term) >= len(prefix) && e.Term[:len(prefix)] == prefix {
			if _, dup := seen[e.Term]; dup {
				continue
			}
			seen[e.Term] = struct{}{}
			out = append(out, e.Term)
		}
	}
	sort.Strings(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// ScoredDoc is one ranked result.
type ScoredDoc struct {
	Doc   uint32
	Score float64
}

// TopK ranks documents matching any query word. With document lengths
// in the index, the score is BM25:
//
//	idf(t) * tf*(k1+1) / (tf + k1*(1-b+b*len(d)/avglen))
//
// otherwise plain TF-IDF (tf * ln(1+N/df)). Results are sorted by
// descending score, ties by ascending docID.
func (s *Searcher) TopK(k int, words ...string) ([]ScoredDoc, error) {
	return s.TopKCtx(context.Background(), k, words...)
}

// TopKCtx is TopK honoring ctx cancellation between per-term fetches.
func (s *Searcher) TopKCtx(ctx context.Context, k int, words ...string) ([]ScoredDoc, error) {
	return s.TopKModeCtx(ctx, RankMode(s.rankMode.Load()), k, words...)
}

// TopKModeCtx is TopKCtx under an explicit evaluation strategy,
// overriding the Searcher-level mode for this call only — the
// per-request escape hatch concurrent servers need, since SetRankMode
// is shared state.
func (s *Searcher) TopKModeCtx(ctx context.Context, mode RankMode, k int, words ...string) ([]ScoredDoc, error) {
	if k <= 0 {
		return nil, ErrInvalidK
	}
	if mode != RankExhaustive && s.blockSrc != nil {
		out, ok, err := s.topKBlocks(ctx, k, mode, words)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
		s.rankStats.fallbackQueries.Add(1)
	}
	scores := map[uint32]float64{}
	numDocs := s.NumDocs()
	for _, w := range words {
		l, err := s.PostingsCtx(ctx, w)
		if err != nil {
			return nil, err
		}
		if l.Len() == 0 {
			continue
		}
		df := float64(l.Len())
		if s.UsesBM25() {
			idf := math.Log(1 + (float64(numDocs)-df+0.5)/(df+0.5))
			for i, doc := range l.DocIDs {
				tf := float64(l.TFs[i])
				norm := 1 - bm25B
				if int(doc) < len(s.docLens) {
					norm += bm25B * float64(s.docLens[doc]) / s.avgLen
				} else {
					norm += bm25B
				}
				scores[doc] += idf * tf * (bm25K1 + 1) / (tf + bm25K1*norm)
			}
			continue
		}
		idf := math.Log(1 + float64(numDocs)/df)
		for i, doc := range l.DocIDs {
			scores[doc] += float64(l.TFs[i]) * idf
		}
	}
	rsp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageRank)
	rsp.AddItems(int64(len(scores)))
	h := &docHeap{}
	heap.Init(h)
	for doc, score := range scores {
		heap.Push(h, ScoredDoc{doc, score})
		if h.Len() > k {
			heap.Pop(h)
		}
	}
	out := make([]ScoredDoc, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(ScoredDoc)
	}
	rsp.End()
	return out, nil
}

// docHeap is a min-heap by (score, then reversed docID) so the weakest
// kept result is on top and pops yield ascending relevance.
type docHeap []ScoredDoc

func (h docHeap) Len() int { return len(h) }
func (h docHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h docHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *docHeap) Push(x interface{}) { *h = append(*h, x.(ScoredDoc)) }
func (h *docHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
