package search

import "testing"

func benchSearcher(b *testing.B) (*Searcher, string, string) {
	b.Helper()
	idx, ref := buildIndex(b)
	freq, rare := pickTerms(ref)
	return New(idx), freq, rare
}

func BenchmarkPostingsLookup(b *testing.B) {
	s, freq, _ := benchSearcher(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Postings(freq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAndQuery(b *testing.B) {
	s, freq, rare := benchSearcher(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.And(freq, rare); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	s, freq, rare := benchSearcher(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(10, freq, rare); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPostingsLookupMerged measures the same lookup after the
// post-processing merge: the reader answers from merged.post with one
// binary-searched table hit, one pread and one decode.
func BenchmarkPostingsLookupMerged(b *testing.B) {
	idx, ref := buildIndex(b)
	if _, err := idx.Merge(); err != nil {
		b.Fatal(err)
	}
	s := New(idx)
	freq, _ := pickTerms(ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Postings(freq); err != nil {
			b.Fatal(err)
		}
	}
}
