package search

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/reference"
	"fastinvert/internal/segment"
	"fastinvert/internal/store"
)

// buildBlockedIndex builds a corpus large enough that Zipf-head terms
// exceed the blocking threshold, merges it (which writes the blocked
// layout for those lists), and returns the reader plus the reference
// index.
func buildBlockedIndex(t testing.TB) (*store.IndexReader, *reference.Index) {
	t.Helper()
	p := corpus.ClueWeb09(1)
	p.VocabSize = 1000
	p.DocsPerFile = 60
	p.MeanDocTokens = 120
	src := corpus.NewMemSource(corpus.NewGenerator(p), 20)

	ref, err := reference.BuildFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Parsers = 2
	cfg.CPUIndexers = 2
	cfg.GPUs = 1
	g := gpu.TeslaC1060()
	g.SMs = 4
	g.DeviceMemBytes = 64 << 20
	cfg.GPU = g
	cfg.GPUThreadBlocks = 8
	cfg.Sampling.Ratio = 0.2
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Build(src); err != nil {
		t.Fatal(err)
	}
	idx, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	stats, err := idx.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocked == 0 {
		t.Fatalf("merge of %d lists produced no blocked lists", stats.Lists)
	}
	return idx, ref
}

// topTerms returns the n most frequent indexed terms.
func topTerms(ref *reference.Index, n int) []string {
	type tf struct {
		term string
		df   int
	}
	all := make([]tf, 0, len(ref.Lists))
	for term, l := range ref.Lists {
		all = append(all, tf{term, l.Len()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].term < all[j].term
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.term
	}
	return out
}

// rankQueries builds a diverse query mix from the reference index:
// single terms, head+tail combinations, duplicates, unknowns.
func rankQueries(ref *reference.Index) [][]string {
	top := topTerms(ref, 8)
	_, rare := pickTerms(ref)
	qs := [][]string{
		{top[0]},
		{rare},
		{top[0], top[1]},
		{top[0], rare},
		{top[0], top[1], top[2], top[3]},
		{top[0], top[0]}, // duplicate word: contributes twice
		{top[0], "zzzunknownzzz"},
		{"the", top[1]}, // stop word dropped
		top,
	}
	return qs
}

// assertSameResults requires bitwise-identical ranked results.
func assertSameResults(t *testing.T, label string, got, want []ScoredDoc) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d = (%d, %v), want (%d, %v)",
				label, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
		}
	}
}

// TestBlockTopKMatchesExhaustiveStatic checks that MaxScore and
// Block-Max-WAND return exactly the exhaustive scorer's results —
// same docs, same order, bitwise-equal scores — over a merged static
// index with genuinely blocked Zipf-head lists, across a spread of k.
func TestBlockTopKMatchesExhaustiveStatic(t *testing.T) {
	idx, ref := buildBlockedIndex(t)
	s := New(idx)
	if !s.UsesBM25() {
		t.Fatal("static index should carry doc lengths (BM25)")
	}
	for qi, q := range rankQueries(ref) {
		for _, k := range []int{1, 3, 10, 100} {
			s.SetRankMode(RankExhaustive)
			want, err := s.TopK(k, q...)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []RankMode{RankAuto, RankBlockMax, RankMaxScore} {
				s.SetRankMode(mode)
				got, err := s.TopK(k, q...)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t,
					fmt.Sprintf("query %d %v k=%d mode=%s", qi, q, k, mode), got, want)
			}
		}
	}
	st := s.RankStats()
	if st.BlockQueries == 0 {
		t.Fatal("no queries took the block path")
	}
	if st.BlocksSkipped == 0 {
		t.Error("expected block-max pruning to skip at least one block")
	}
	if st.FallbackQueries != 0 {
		t.Errorf("unexpected fallbacks: %d", st.FallbackQueries)
	}
}

// TestBlockTopKUnmergedFallsBack checks that a reader without a merged
// file serves TopK through the exhaustive path transparently.
func TestBlockTopKUnmergedFallsBack(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	freq, rare := pickTerms(ref)
	s.SetRankMode(RankExhaustive)
	want, err := s.TopK(10, freq, rare)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRankMode(RankAuto)
	got, err := s.TopK(10, freq, rare)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "unmerged fallback", got, want)
	if st := s.RankStats(); st.FallbackQueries == 0 || st.BlockQueries != 0 {
		t.Errorf("stats = %+v, want pure fallback", st)
	}
}

// liveManager builds a live index with several sealed segments (each
// holding blocked Zipf-head lists) plus a memtable tail.
func liveManager(t testing.TB, dir string) (*segment.Manager, int) {
	t.Helper()
	m, err := segment.Open(dir, segment.Options{SealEvery: 300})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	const nDocs = 1000
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1.0, 400)
	var sb strings.Builder
	for d := 0; d < nDocs; d++ {
		sb.Reset()
		for w := 0; w < 40; w++ {
			fmt.Fprintf(&sb, "w%dx ", zipf.Uint64())
		}
		if _, err := m.AddDocument([]byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}
	return m, nDocs
}

// TestBlockTopKMatchesExhaustiveLive runs the same differential over a
// live manager — sealed segments with blocked lists, short lists, and
// the memtable pseudo-block — then deletes a document and checks the
// evaluators fall back (tombstones make block counts lie about df)
// while still agreeing with the exhaustive scorer.
func TestBlockTopKMatchesExhaustiveLive(t *testing.T) {
	m, _ := liveManager(t, t.TempDir())
	s := NewWithSource(m)
	if s.UsesBM25() {
		t.Fatal("live indexes rank with TF-IDF")
	}
	queries := [][]string{
		{"w0x"},
		{"w0x", "w1x"},
		{"w0x", "w7x", "w123x"},
		{"w399x"},
		{"w0x", "w0x"},
		{"w1x", "zzzunknownzzz"},
	}
	check := func(label string) {
		t.Helper()
		for qi, q := range queries {
			for _, k := range []int{1, 10, 100} {
				s.SetRankMode(RankExhaustive)
				want, err := s.TopK(k, q...)
				if err != nil {
					t.Fatal(err)
				}
				for _, mode := range []RankMode{RankAuto, RankMaxScore} {
					s.SetRankMode(mode)
					got, err := s.TopK(k, q...)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t,
						fmt.Sprintf("%s query %d %v k=%d mode=%s", label, qi, q, k, mode),
						got, want)
				}
			}
		}
	}
	check("live")
	st := s.RankStats()
	if st.BlockQueries == 0 || st.BlocksSkipped == 0 {
		t.Fatalf("live block path inactive: %+v", st)
	}

	// A tombstone disables the block path until compaction purges it.
	if err := m.Delete(3); err != nil {
		t.Fatal(err)
	}
	check("tombstoned")
	if st2 := s.RankStats(); st2.FallbackQueries == 0 {
		t.Error("expected fallbacks while a tombstone is live")
	}
}

// TestBlockBoundsProperty is the impact-bound property test: for every
// blocked list in a merged index, each block's stored MaxTF must
// upper-bound every term frequency in the block, and the score bound
// derived from it must upper-bound the exhaustive contribution of
// every posting in the block.
func TestBlockBoundsProperty(t *testing.T) {
	idx, ref := buildBlockedIndex(t)
	s := New(idx)
	numDocs := s.NumDocs()
	blocked := 0
	for term := range ref.Lists {
		tb, err := idx.BlockPostingsCtx(t.Context(), term)
		if err != nil {
			t.Fatal(err)
		}
		if tb == nil || tb.Len() == 0 {
			t.Fatalf("%q: no block view", term)
		}
		df := float64(tb.Len())
		idf := 0.0
		if s.UsesBM25() {
			idf = math.Log(1 + (float64(numDocs)-df+0.5)/(df+0.5))
		} else {
			idf = math.Log(1 + float64(numDocs)/df)
		}
		for _, bl := range tb.Lists {
			if bl.NumBlocks() > 1 {
				blocked++
			}
			for b := 0; b < bl.NumBlocks(); b++ {
				sk := bl.Skip(b)
				docs, tfs, err := bl.DecodeBlock(b)
				if err != nil {
					t.Fatal(err)
				}
				if len(docs) != int(sk.Count) {
					t.Fatalf("%q block %d: %d postings, skip says %d", term, b, len(docs), sk.Count)
				}
				bound := s.impactBound(idf, sk.MaxTF)
				c := blockCursor{idf: idf}
				for i, doc := range docs {
					if tfs[i] > sk.MaxTF {
						t.Fatalf("%q block %d: tf %d exceeds stored MaxTF %d", term, b, tfs[i], sk.MaxTF)
					}
					c.curTF = tfs[i]
					if contrib := s.contribution(&c, doc); !boundExceeds(bound, contrib) && contrib > bound {
						t.Fatalf("%q block %d doc %d: contribution %v exceeds bound %v",
							term, b, doc, contrib, bound)
					}
				}
			}
		}
	}
	if blocked == 0 {
		t.Fatal("property test never saw a multi-block list")
	}
}
