package search

import (
	"path/filepath"
	"sort"
	"testing"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/reference"
	"fastinvert/internal/store"
)

// buildIndex constructs a small persisted index plus the reference
// term->postings map for brute-force comparison.
func buildIndex(t testing.TB) (*store.IndexReader, *reference.Index) {
	t.Helper()
	p := corpus.ClueWeb09(1)
	p.VocabSize = 3000
	p.DocsPerFile = 10
	p.MeanDocTokens = 60
	src := corpus.NewMemSource(corpus.NewGenerator(p), 3)

	ref, err := reference.BuildFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Parsers = 2
	cfg.CPUIndexers = 1
	cfg.GPUs = 1
	g := gpu.TeslaC1060()
	g.SMs = 4
	g.DeviceMemBytes = 64 << 20
	cfg.GPU = g
	cfg.GPUThreadBlocks = 8
	cfg.Sampling.Ratio = 0.2
	cfg.OutDir = filepath.Join(t.TempDir(), "idx")
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Build(src); err != nil {
		t.Fatal(err)
	}
	idx, err := store.OpenIndex(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	return idx, ref
}

// pickTerms returns frequent and rare indexed terms for querying.
func pickTerms(ref *reference.Index) (frequent, rare string) {
	best, worst := 0, 1<<30
	for term, l := range ref.Lists {
		if l.Len() > best {
			best, frequent = l.Len(), term
		}
		if l.Len() < worst && l.Len() > 0 {
			worst, rare = l.Len(), term
		}
	}
	return frequent, rare
}

func TestNormalizeMatchesIndexing(t *testing.T) {
	idx, _ := buildIndex(t)
	s := New(idx)
	term, stop := s.Normalize("Parallelized")
	if term != "parallel" || stop {
		t.Errorf("Normalize = %q stop=%v", term, stop)
	}
	if _, stop := s.Normalize("The"); !stop {
		t.Error("'the' must be a stop word")
	}
}

func TestPostingsMatchReference(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	freq, rare := pickTerms(ref)
	for _, term := range []string{freq, rare} {
		l, err := s.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Lists[term]
		if l.Len() != want.Len() {
			t.Fatalf("%q: %d postings, want %d", term, l.Len(), want.Len())
		}
		for i := range want.DocIDs {
			if l.DocIDs[i] != want.DocIDs[i] || l.TFs[i] != want.TFs[i] {
				t.Fatalf("%q posting %d mismatch", term, i)
			}
		}
	}
}

func TestAndAgainstBruteForce(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	freq, rare := pickTerms(ref)
	got, err := s.And(freq, rare)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteAnd(ref, freq, rare)
	if !equalU32(got, want) {
		t.Fatalf("And = %v, want %v", got, want)
	}
	// AND with an unknown word is empty.
	got, err = s.And(freq, "zzzunknownzzz")
	if err != nil || got != nil {
		t.Fatalf("And with unknown = %v, %v", got, err)
	}
	// AND of only stop words is empty.
	got, err = s.And("the", "and")
	if err != nil || got != nil {
		t.Fatalf("And of stop words = %v, %v", got, err)
	}
}

func TestOrAgainstBruteForce(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	freq, rare := pickTerms(ref)
	got, err := s.Or(freq, rare)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteOr(ref, freq, rare)
	if !equalU32(got, want) {
		t.Fatalf("Or lengths: got %d want %d", len(got), len(want))
	}
}

func TestTopKProperties(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	freq, rare := pickTerms(ref)
	res, err := s.TopK(5, freq, rare)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(res) > 5 {
		t.Fatalf("TopK returned %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("results not descending at %d", i)
		}
	}
	// The top result must score at least as high as every scored doc.
	all, err := s.TopK(1<<20, freq, rare)
	if err != nil {
		t.Fatal(err)
	}
	if all[0].Score != res[0].Score || all[0].Doc != res[0].Doc {
		t.Error("TopK(5) head differs from full ranking head")
	}
	if _, err := s.TopK(0, freq); err == nil {
		t.Error("k=0 must error")
	}
}

func TestBM25Active(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	if !s.UsesBM25() {
		t.Fatal("engine-built index must carry document lengths for BM25")
	}
	if got := len(idx.DocLens()); got != int(ref.Docs) {
		t.Fatalf("DocLens has %d entries, want %d", got, ref.Docs)
	}
	// Length sums must equal total surviving tokens.
	var sum int64
	for _, l := range idx.DocLens() {
		sum += int64(l)
	}
	if sum != ref.Tokens {
		t.Errorf("doc length sum %d, want %d tokens", sum, ref.Tokens)
	}
	// BM25 saturates tf: a doc's score contribution is bounded by
	// idf*(k1+1), so scores stay finite and ordered.
	freq, _ := pickTerms(ref)
	res, err := s.TopK(3, freq)
	if err != nil || len(res) == 0 {
		t.Fatalf("TopK: %v (%d results)", err, len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Error("BM25 results not descending")
		}
	}
}

func TestMatchPrefix(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	freq, _ := pickTerms(ref)
	prefix := freq[:2]
	got := s.MatchPrefix(prefix, 50)
	if len(got) == 0 {
		t.Fatalf("no terms match prefix %q", prefix)
	}
	// Results sorted, unique, all prefixed, and complete vs brute force.
	want := 0
	for term := range ref.Lists {
		if len(term) >= len(prefix) && term[:len(prefix)] == prefix {
			want++
		}
	}
	if want > 50 {
		want = 50
	}
	if len(got) != want {
		t.Errorf("MatchPrefix found %d terms, want %d", len(got), want)
	}
	for i, term := range got {
		if term[:len(prefix)] != prefix {
			t.Errorf("result %q lacks prefix", term)
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Error("results not strictly sorted")
		}
	}
	if s.MatchPrefix(prefix, 0) != nil {
		t.Error("limit 0 must return nil")
	}
	if s.MatchPrefix("zzzzzzzz", 10) != nil {
		t.Error("unmatched prefix must return nil")
	}
}

func TestNumDocs(t *testing.T) {
	idx, ref := buildIndex(t)
	s := New(idx)
	if s.NumDocs() != ref.Docs {
		t.Errorf("NumDocs = %d, want %d", s.NumDocs(), ref.Docs)
	}
}

func bruteAnd(ref *reference.Index, terms ...string) []uint32 {
	counts := map[uint32]int{}
	for _, term := range terms {
		if l := ref.Lists[term]; l != nil {
			for _, d := range l.DocIDs {
				counts[d]++
			}
		}
	}
	var out []uint32
	for d, c := range counts {
		if c == len(terms) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteOr(ref *reference.Index, terms ...string) []uint32 {
	seen := map[uint32]struct{}{}
	for _, term := range terms {
		if l := ref.Lists[term]; l != nil {
			for _, d := range l.DocIDs {
				seen[d] = struct{}{}
			}
		}
	}
	out := make([]uint32, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
