// Package pipesim is a discrete-event simulator of the paper's
// pipelined dataflow (Fig. 9): M parser threads fed by a serialized
// disk, per-parser output buffers, and a set of indexer workers (CPU
// threads and GPUs) that consume parsed blocks in strict global order
// so postings stay document-sorted (§III.F).
//
// The simulator exists because parallel wall-clock speedups require
// physical cores, while this reproduction must run anywhere (including
// single-CPU hosts): the engine executes the full computation for
// correctness, measures each item's serial durations, and feeds them
// here to obtain the parallel schedule the paper's hardware would
// exhibit. All scheduling rules match §III.F/§IV.A:
//
//   - one file read at a time (the disk scheduler), in file order;
//   - a parser handles read, decompress (after the full read — the
//     paper's chosen scheme 2), and parse for its file;
//   - files go to parsers round-robin, and each parser's block must
//     wait for a free buffer slot before the parser takes new work;
//   - every indexer consumes its share of every block, in block order;
//     a block's buffer slot frees when all indexers finish it.
package pipesim

// Item is one container file moving through the pipeline with its
// measured (or modeled) stage durations in seconds.
type Item struct {
	ReadSec       float64
	DecompressSec float64
	ParseSec      float64
	// IndexSec[i] is indexer i's share of this item (0 when the
	// indexer owns no collection present in the block).
	IndexSec []float64

	// PostSec is the serialized post-processing after all shares
	// complete: combining the run's postings lists, compressing them
	// and writing the run file (§III.E: "these two steps are
	// serialized").
	PostSec float64
}

// Config shapes the pipeline.
type Config struct {
	Parsers         int
	Indexers        int
	BufferPerParser int // parsed blocks a parser may hold; default 1
}

// Result reports the simulated schedule.
type Result struct {
	MakespanSec float64

	// Per-item timestamps (seconds from start).
	ReadDone  []float64
	ParseDone []float64 // block emission (after any buffer wait)
	IndexDone []float64 // all indexer shares complete

	// Busy-time accounting for utilization analysis.
	DiskBusySec    float64
	ParserBusySec  []float64
	IndexerBusySec []float64

	// ParsersOnlyMakespan is the completion time of the last parse,
	// Fig. 10's scenario (3) when Indexers == 0.
	ParsersOnlyMakespan float64
}

// Simulate runs the schedule and returns its timing.
func Simulate(cfg Config, items []Item) Result {
	if cfg.Parsers < 1 {
		cfg.Parsers = 1
	}
	if cfg.BufferPerParser < 1 {
		cfg.BufferPerParser = 1
	}
	n := len(items)
	res := Result{
		ReadDone:       make([]float64, n),
		ParseDone:      make([]float64, n),
		IndexDone:      make([]float64, n),
		ParserBusySec:  make([]float64, cfg.Parsers),
		IndexerBusySec: make([]float64, cfg.Indexers),
	}

	diskFree := 0.0
	parserFree := make([]float64, cfg.Parsers)
	indexerFree := make([]float64, cfg.Indexers)
	// outstanding[p] holds the consumption times of parser p's
	// emitted-but-unconsumed blocks, oldest first.
	outstanding := make([][]float64, cfg.Parsers)

	for f := 0; f < n; f++ {
		it := items[f]
		p := f % cfg.Parsers

		// Read: parser and disk must both be free; reads stay in
		// file order because f is ascending and diskFree only grows.
		start := parserFree[p]
		if diskFree > start {
			start = diskFree
		}
		readDone := start + it.ReadSec
		diskFree = readDone
		res.DiskBusySec += it.ReadSec
		res.ReadDone[f] = readDone

		// Decompress + parse on the parser thread.
		parsed := readDone + it.DecompressSec + it.ParseSec
		res.ParserBusySec[p] += it.ReadSec + it.DecompressSec + it.ParseSec

		// Buffer: wait until a slot frees (oldest block consumed).
		for len(outstanding[p]) >= cfg.BufferPerParser {
			if outstanding[p][0] > parsed {
				parsed = outstanding[p][0]
			}
			outstanding[p] = outstanding[p][1:]
		}
		res.ParseDone[f] = parsed
		parserFree[p] = parsed
		if parsed > res.ParsersOnlyMakespan {
			res.ParsersOnlyMakespan = parsed
		}

		// Indexers consume block f in order; block done when the
		// slowest share finishes.
		blockDone := parsed
		for i := 0; i < cfg.Indexers; i++ {
			var share float64
			if i < len(it.IndexSec) {
				share = it.IndexSec[i]
			}
			s := indexerFree[i]
			if parsed > s {
				s = parsed
			}
			done := s + share
			indexerFree[i] = done
			res.IndexerBusySec[i] += share
			if done > blockDone {
				blockDone = done
			}
		}
		// Post-processing is a per-run barrier (Fig. 8): the combiner
		// runs after every share and the next run's indexing starts
		// after it completes.
		blockDone += it.PostSec
		if it.PostSec > 0 {
			for i := range indexerFree {
				if blockDone > indexerFree[i] {
					indexerFree[i] = blockDone
				}
			}
		}
		res.IndexDone[f] = blockDone
		outstanding[p] = append(outstanding[p], blockDone)

		if blockDone > res.MakespanSec {
			res.MakespanSec = blockDone
		}
	}
	if res.ParsersOnlyMakespan > res.MakespanSec {
		res.MakespanSec = res.ParsersOnlyMakespan
	}
	return res
}

// Throughput converts processed bytes and a duration into MB/s, the
// paper's reporting unit (uncompressed bytes / total time).
func Throughput(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / seconds
}
