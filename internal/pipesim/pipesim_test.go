package pipesim

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestSingleItemSerialChain(t *testing.T) {
	items := []Item{{ReadSec: 1, DecompressSec: 2, ParseSec: 3, IndexSec: []float64{4}}}
	r := Simulate(Config{Parsers: 1, Indexers: 1}, items)
	approx(t, "ReadDone", r.ReadDone[0], 1)
	approx(t, "ParseDone", r.ParseDone[0], 6)
	approx(t, "IndexDone", r.IndexDone[0], 10)
	approx(t, "Makespan", r.MakespanSec, 10)
}

func TestSerializedDiskBlocksParsers(t *testing.T) {
	// Two parsers, two items: reads serialize, so parser 1 starts its
	// read only after parser 0's read completes.
	items := []Item{
		{ReadSec: 5, ParseSec: 1, IndexSec: []float64{0}},
		{ReadSec: 5, ParseSec: 1, IndexSec: []float64{0}},
	}
	r := Simulate(Config{Parsers: 2, Indexers: 1}, items)
	approx(t, "ReadDone[0]", r.ReadDone[0], 5)
	approx(t, "ReadDone[1]", r.ReadDone[1], 10)
	approx(t, "ParseDone[1]", r.ParseDone[1], 11)
	approx(t, "DiskBusy", r.DiskBusySec, 10)
}

func TestParallelParsersOverlapParsing(t *testing.T) {
	// Fast reads, slow parses: with 2 parsers the parses overlap.
	mk := func(parsers int) float64 {
		items := make([]Item, 4)
		for i := range items {
			items[i] = Item{ReadSec: 0.1, ParseSec: 10, IndexSec: []float64{0.1}}
		}
		return Simulate(Config{Parsers: parsers, Indexers: 1}, items).MakespanSec
	}
	one, two, four := mk(1), mk(2), mk(4)
	if two >= one*0.7 {
		t.Errorf("2 parsers (%.1f) should nearly halve 1 parser (%.1f)", two, one)
	}
	if four >= two*0.7 {
		t.Errorf("4 parsers (%.1f) should nearly halve 2 parsers (%.1f)", four, two)
	}
}

func TestIndexersBottleneck(t *testing.T) {
	// Indexing dominates: adding parsers beyond 1 cannot help, adding
	// indexers does (Fig. 10's crossover logic).
	// The same total indexing work per block, split across the
	// available indexers (the paper's collection partition).
	mk := func(shares []float64) []Item {
		items := make([]Item, 6)
		for i := range items {
			items[i] = Item{ReadSec: 0.1, ParseSec: 0.1, IndexSec: shares}
		}
		return items
	}
	oneIdx := Simulate(Config{Parsers: 2, Indexers: 1}, mk([]float64{20})).MakespanSec
	twoIdx := Simulate(Config{Parsers: 2, Indexers: 2}, mk([]float64{10, 10})).MakespanSec
	if twoIdx >= oneIdx*0.6 {
		t.Errorf("2 indexers (%.1f) should nearly halve 1 (%.1f)", twoIdx, oneIdx)
	}
	moreParsers := Simulate(Config{Parsers: 4, Indexers: 2}, mk([]float64{10, 10})).MakespanSec
	if moreParsers < twoIdx*0.95 {
		t.Errorf("extra parsers helped an indexer-bound pipeline: %.1f vs %.1f",
			moreParsers, twoIdx)
	}
}

func TestIndexerSharesRunConcurrently(t *testing.T) {
	// Two indexers split a block 6/4: block completes at the max.
	items := []Item{{ParseSec: 1, IndexSec: []float64{6, 4}}}
	r := Simulate(Config{Parsers: 1, Indexers: 2}, items)
	approx(t, "IndexDone", r.IndexDone[0], 7)
}

func TestBlockOrderPreserved(t *testing.T) {
	// A fast second file cannot be indexed before the first: the
	// indexer consumes blocks in order.
	items := []Item{
		{ReadSec: 1, ParseSec: 8, IndexSec: []float64{1}},
		{ReadSec: 1, ParseSec: 0.1, IndexSec: []float64{1}},
	}
	r := Simulate(Config{Parsers: 2, Indexers: 1}, items)
	if r.IndexDone[1] < r.IndexDone[0] {
		t.Errorf("block 1 indexed (%.2f) before block 0 (%.2f)",
			r.IndexDone[1], r.IndexDone[0])
	}
}

func TestBufferBackpressure(t *testing.T) {
	// Slow indexer, fast parser, buffer of 1: parser k+2's parse
	// completion is delayed by unconsumed block k.
	items := make([]Item, 5)
	for i := range items {
		items[i] = Item{ReadSec: 0.1, ParseSec: 0.1, IndexSec: []float64{10}}
	}
	small := Simulate(Config{Parsers: 1, Indexers: 1, BufferPerParser: 1}, items)
	big := Simulate(Config{Parsers: 1, Indexers: 1, BufferPerParser: 100}, items)
	// Total makespan identical (indexer-bound either way) ...
	approx(t, "makespans equal", small.MakespanSec, big.MakespanSec)
	// ... but with backpressure the parser's last emission is late.
	if small.ParseDone[4] <= big.ParseDone[4] {
		t.Errorf("no backpressure visible: %.1f vs %.1f",
			small.ParseDone[4], big.ParseDone[4])
	}
}

func TestParsersOnlyScenario(t *testing.T) {
	// Fig. 10 scenario (3): no indexers at all.
	items := make([]Item, 4)
	for i := range items {
		items[i] = Item{ReadSec: 1, ParseSec: 2}
	}
	r := Simulate(Config{Parsers: 2, Indexers: 0}, items)
	if r.MakespanSec != r.ParsersOnlyMakespan {
		t.Error("makespan should equal parser completion with no indexers")
	}
	// Timeline: reads serialize and each parser holds its thread
	// through the parse — p0: read[0,1] parse[1,3], p1: read[1,2]
	// parse[2,4], p0: read[3,4] parse[4,6], p1: read[4,5] parse[5,7].
	approx(t, "Makespan", r.MakespanSec, 7)
}

func TestMissingSharesTreatedAsZero(t *testing.T) {
	items := []Item{{ParseSec: 1, IndexSec: []float64{2}}} // indexer 1 share missing
	r := Simulate(Config{Parsers: 1, Indexers: 2}, items)
	approx(t, "IndexDone", r.IndexDone[0], 3)
	approx(t, "idle indexer busy", r.IndexerBusySec[1], 0)
}

func TestThroughputHelper(t *testing.T) {
	if got := Throughput(2<<20, 2); got != 1 {
		t.Errorf("Throughput = %v, want 1 MB/s", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Errorf("Throughput with zero time = %v", got)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	items := make([]Item, 4)
	for i := range items {
		items[i] = Item{ReadSec: 1, DecompressSec: 1, ParseSec: 2, IndexSec: []float64{3}}
	}
	r := Simulate(Config{Parsers: 2, Indexers: 1}, items)
	var parserTotal float64
	for _, b := range r.ParserBusySec {
		parserTotal += b
	}
	approx(t, "parser busy total", parserTotal, 4*(1+1+2))
	approx(t, "indexer busy", r.IndexerBusySec[0], 12)
	approx(t, "disk busy", r.DiskBusySec, 4)
	if r.MakespanSec < 12 {
		t.Errorf("makespan %.1f below indexer busy time", r.MakespanSec)
	}
}
