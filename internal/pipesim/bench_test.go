package pipesim

import (
	"math/rand"
	"testing"
)

func BenchmarkSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := make([]Item, 1500) // the paper's ClueWeb09 file count
	for i := range items {
		items[i] = Item{
			ReadSec:       0.5 + rng.Float64(),
			DecompressSec: 1 + rng.Float64(),
			ParseSec:      2 + rng.Float64()*2,
			IndexSec: []float64{
				1 + rng.Float64(), 1 + rng.Float64(),
				2 + rng.Float64(), 2 + rng.Float64(),
			},
			PostSec: 0.2 + rng.Float64()*0.1,
		}
	}
	cfg := Config{Parsers: 6, Indexers: 4, BufferPerParser: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(cfg, items)
	}
}
