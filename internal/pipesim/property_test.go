package pipesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomItems(rng *rand.Rand, n, indexers int) []Item {
	items := make([]Item, n)
	for i := range items {
		it := Item{
			ReadSec:       rng.Float64(),
			DecompressSec: rng.Float64(),
			ParseSec:      rng.Float64() * 2,
			PostSec:       rng.Float64() * 0.2,
		}
		for j := 0; j < indexers; j++ {
			it.IndexSec = append(it.IndexSec, rng.Float64())
		}
		items[i] = it
	}
	return items
}

// TestMakespanLowerBounds: the schedule can never beat its resource
// lower bounds — total disk time, any single indexer's busy time, or
// any single item's critical chain.
func TestMakespanLowerBounds(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, iRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		parsers := int(pRaw%6) + 1
		indexers := int(iRaw % 5)
		items := randomItems(rng, n, indexers)
		res := Simulate(Config{Parsers: parsers, Indexers: indexers}, items)

		if res.MakespanSec < res.DiskBusySec-1e-9 {
			return false
		}
		for _, b := range res.IndexerBusySec {
			if res.MakespanSec < b-1e-9 {
				return false
			}
		}
		for _, it := range items {
			chain := it.ReadSec + it.DecompressSec + it.ParseSec + it.PostSec
			maxShare := 0.0
			for _, s := range it.IndexSec {
				if s > maxShare {
					maxShare = s
				}
			}
			if res.MakespanSec < chain+maxShare-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMoreParsersNeverHurt: adding parsers (with everything else
// fixed) cannot lengthen the schedule.
func TestMoreParsersNeverHurt(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		items := randomItems(rng, n, 2)
		prev := Simulate(Config{Parsers: 1, Indexers: 2}, items).MakespanSec
		for p := 2; p <= 6; p++ {
			cur := Simulate(Config{Parsers: p, Indexers: 2}, items).MakespanSec
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBiggerBuffersNeverHurt: deeper parser buffers only relax a
// constraint.
func TestBiggerBuffersNeverHurt(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		items := randomItems(rng, n, 2)
		base := Simulate(Config{Parsers: 3, Indexers: 2, BufferPerParser: 1}, items).MakespanSec
		deep := Simulate(Config{Parsers: 3, Indexers: 2, BufferPerParser: 8}, items).MakespanSec
		return deep <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTimesMonotonicPerItem: each item's pipeline timestamps ascend.
func TestTimesMonotonicPerItem(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	items := randomItems(rng, 25, 3)
	res := Simulate(Config{Parsers: 4, Indexers: 3}, items)
	for i := range items {
		if res.ReadDone[i] > res.ParseDone[i]+1e-9 ||
			res.ParseDone[i] > res.IndexDone[i]+1e-9 {
			t.Fatalf("item %d timestamps not monotonic: %v %v %v",
				i, res.ReadDone[i], res.ParseDone[i], res.IndexDone[i])
		}
	}
}
