package stem

import (
	"testing"
	"testing/quick"
)

// Known input/output pairs from Porter's published examples and the
// reference implementation's vocabulary.
var porterCases = map[string]string{
	// The paper's own motivating example (§II): parallel variants.
	"parallelize":     "parallel",
	"parallelism":     "parallel",
	"parallel":        "parallel",
	"caresses":        "caress",
	"ponies":          "poni",
	"ties":            "ti",
	"caress":          "caress",
	"cats":            "cat",
	"feed":            "feed",
	"agreed":          "agre",
	"plastered":       "plaster",
	"bled":            "bled",
	"motoring":        "motor",
	"sing":            "sing",
	"conflated":       "conflat",
	"troubled":        "troubl",
	"sized":           "size",
	"hopping":         "hop",
	"tanned":          "tan",
	"falling":         "fall",
	"hissing":         "hiss",
	"fizzed":          "fizz",
	"failing":         "fail",
	"filing":          "file",
	"happy":           "happi",
	"sky":             "sky",
	"relational":      "relat",
	"conditional":     "condit",
	"rational":        "ration",
	"valenci":         "valenc",
	"hesitanci":       "hesit",
	"digitizer":       "digit",
	"conformabli":     "conform",
	"radicalli":       "radic",
	"differentli":     "differ",
	"vileli":          "vile",
	"analogousli":     "analog",
	"vietnamization":  "vietnam",
	"predication":     "predic",
	"operator":        "oper",
	"feudalism":       "feudal",
	"decisiveness":    "decis",
	"hopefulness":     "hope",
	"callousness":     "callous",
	"formaliti":       "formal",
	"sensitiviti":     "sensit",
	"sensibiliti":     "sensibl",
	"triplicate":      "triplic",
	"formative":       "form",
	"formalize":       "formal",
	"electriciti":     "electr",
	"electrical":      "electr",
	"hopeful":         "hope",
	"goodness":        "good",
	"revival":         "reviv",
	"allowance":       "allow",
	"inference":       "infer",
	"airliner":        "airlin",
	"gyroscopic":      "gyroscop",
	"adjustable":      "adjust",
	"defensible":      "defens",
	"irritant":        "irrit",
	"replacement":     "replac",
	"adjustment":      "adjust",
	"dependent":       "depend",
	"adoption":        "adopt",
	"homologou":       "homolog",
	"communism":       "commun",
	"activate":        "activ",
	"angulariti":      "angular",
	"homologous":      "homolog",
	"effective":       "effect",
	"bowdlerize":      "bowdler",
	"probate":         "probat",
	"rate":            "rate",
	"cease":           "ceas",
	"controll":        "control",
	"roll":            "roll",
	"generalizations": "gener",
	"oscillators":     "oscil",
}

func TestPorterKnownVocabulary(t *testing.T) {
	for in, want := range porterCases {
		if got := StemString(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterGuards(t *testing.T) {
	for _, w := range []string{"", "a", "at", "do"} {
		if got := StemString(w); got != w {
			t.Errorf("short word %q changed to %q", w, got)
		}
	}
	// Non-alphabetic content passes through untouched.
	for _, w := range []string{"c3po", "1234", "hello-world", "caf\xc3\xa9s"} {
		if got := StemString(w); got != w {
			t.Errorf("non-alpha %q changed to %q", w, got)
		}
	}
}

func TestPorterInPlaceNoAlloc(t *testing.T) {
	buf := []byte("generalizations")
	out := Stem(buf)
	if &buf[0] != &out[0] {
		t.Error("Stem must operate in place on the input buffer")
	}
	if string(out) != "gener" {
		t.Errorf("got %q", out)
	}
	allocs := testing.AllocsPerRun(100, func() {
		word := buf[:0]
		word = append(word, "parallelization"...)
		Stem(word)
	})
	if allocs > 0 {
		t.Errorf("Stem allocated %.1f times per run, want 0", allocs)
	}
}

func TestPorterIdempotentOnStems(t *testing.T) {
	// Stemming an already-stemmed token is usually a fixed point for
	// dictionary purposes; verify for our known stems that a second
	// application yields a stable result (double application equals
	// triple application).
	for _, want := range porterCases {
		twice := StemString(want)
		thrice := StemString(twice)
		if twice != thrice {
			t.Errorf("stem not stable: %q -> %q -> %q", want, twice, thrice)
		}
	}
}

func TestPorterNeverGrowsQuick(t *testing.T) {
	f := func(raw []byte) bool {
		word := make([]byte, 0, len(raw))
		for _, c := range raw {
			word = append(word, 'a'+c%26)
		}
		orig := string(word)
		out := Stem(word)
		return len(out) <= len(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPorterOutputAlphabeticQuick(t *testing.T) {
	f := func(raw []byte) bool {
		word := make([]byte, 0, len(raw))
		for _, c := range raw {
			word = append(word, 'a'+c%26)
		}
		out := Stem(word)
		for _, c := range out {
			if c < 'a' || c > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPorterStem(b *testing.B) {
	words := [][]byte{
		[]byte("parallelization"), []byte("generalizations"),
		[]byte("the"), []byte("indexing"), []byte("throughput"),
		[]byte("heterogeneous"), []byte("dictionaries"),
	}
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := words[i%len(words)]
		buf = append(buf[:0], w...)
		Stem(buf)
	}
}
