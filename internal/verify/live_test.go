package verify

import (
	"context"
	"testing"
)

// TestRunLiveSeeds drives the interleaved harness across several seeds
// in both positional modes; every seal/compact/final/reopen checkpoint
// must agree with the serial rebuild.
func TestRunLiveSeeds(t *testing.T) {
	for _, positional := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := RunLive(context.Background(), LiveConfig{
				Seed:       seed,
				Ops:        300,
				Positional: positional,
			})
			if err != nil {
				t.Fatalf("seed %d positional=%v: %v", seed, positional, err)
			}
			if !res.OK() {
				t.Errorf("seed %d positional=%v:\n%s", seed, positional, res.Summary())
			}
			if len(res.Checkpoints) < 2 {
				t.Errorf("seed %d: only %d checkpoints — schedule never sealed?",
					seed, len(res.Checkpoints))
			}
			if res.Inserts == 0 || res.Deletes == 0 || res.Queries == 0 {
				t.Errorf("seed %d: degenerate schedule %+v", seed, res)
			}
		}
	}
}

// TestRunLiveDeterministic re-runs one seed and checks the schedule
// shape is reproducible — the property that makes a failing seed a
// useful bug report.
func TestRunLiveDeterministic(t *testing.T) {
	run := func() *LiveResult {
		res, err := RunLive(context.Background(), LiveConfig{Seed: 42, Ops: 200})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Inserts != b.Inserts || a.Deletes != b.Deletes ||
		a.Queries != b.Queries || a.Seals != b.Seals ||
		len(a.Checkpoints) != len(b.Checkpoints) {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// TestRunLiveCancellation aborts mid-schedule; the harness must return
// the context error without wedging or leaking the manager.
func TestRunLiveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLive(ctx, LiveConfig{Seed: 7, Ops: 100}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
