// live.go is the interleaved differential harness for the LSM-style
// live index: a seeded schedule of inserts, deletes, queries, seals
// and compactions runs against a segment.Manager while a shadow copy
// of the surviving documents is kept on the side. At every seal and
// compaction boundary (and at the end, and again after a close/reopen
// cycle) the live index is read back term-for-term and diffed against
// a serial reference index rebuilt from scratch over exactly the
// surviving documents at their original docIDs — the same ground
// truth, and the same DiffLists comparator, the batch pipeline is
// verified with.
package verify

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"

	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
	"fastinvert/internal/reference"
	"fastinvert/internal/segment"
)

// LiveConfig shapes one interleaved differential run.
type LiveConfig struct {
	// Seed drives the whole schedule: document contents, operation
	// mix, and delete/query targets.
	Seed int64

	// Ops is the schedule length (<=0: 400).
	Ops int

	// Positional indexes per-occurrence positions; the reference then
	// pins them.
	Positional bool

	// SealEvery/CompactAt are passed to the manager so automatic seals
	// and background compactions interleave with the scheduled ones
	// (<=0: 25 and 4).
	SealEvery int
	CompactAt int

	// Dir receives the segment directory; empty selects a temp dir
	// removed when the run ends.
	Dir string

	// MaxDiffs caps recorded disagreements per checkpoint (<=0: 8).
	MaxDiffs int
}

// LiveCheckpoint is one boundary comparison against the serial
// rebuild.
type LiveCheckpoint struct {
	Op      int    // schedule position
	Trigger string // "seal" | "compact" | "final" | "reopen"
	Docs    int64  // surviving documents at the boundary
	Diff    *DiffReport
}

// LiveResult is the outcome of one interleaved run.
type LiveResult struct {
	Seed        int64
	Ops         int
	Inserts     int
	Deletes     int
	Queries     int
	Seals       int
	Compactions int
	QueryErrs   []string // errors observed by scheduled queries (must be empty)
	Leaked      int      // goroutines that never drained after Close
	Checkpoints []LiveCheckpoint
}

// OK reports whether every checkpoint agreed, no query errored, and
// no goroutine leaked.
func (r *LiveResult) OK() bool {
	if len(r.QueryErrs) > 0 || r.Leaked > 0 {
		return false
	}
	for _, c := range r.Checkpoints {
		if !c.Diff.OK() {
			return false
		}
	}
	return true
}

// Summary renders a one-run report, diff details included on failure.
func (r *LiveResult) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %d: %d ops (%d ins, %d del, %d qry), %d seals, %d compactions, %d checkpoints",
		r.Seed, r.Ops, r.Inserts, r.Deletes, r.Queries, r.Seals, r.Compactions, len(r.Checkpoints))
	for _, e := range r.QueryErrs {
		fmt.Fprintf(&sb, "\n  query error: %s", e)
	}
	if r.Leaked > 0 {
		fmt.Fprintf(&sb, "\n  %d goroutines leaked", r.Leaked)
	}
	for _, c := range r.Checkpoints {
		if !c.Diff.OK() {
			fmt.Fprintf(&sb, "\n  op %d (%s, %d docs): %s", c.Op, c.Trigger, c.Docs, c.Diff.String())
		}
	}
	if r.OK() {
		sb.WriteString(" — all OK")
	}
	return sb.String()
}

// liveVocab builds the seeded vocabulary. Terms are synthetic
// ("w<i>q<j>z") so the Porter stemmer leaves them alone and both
// sides of the diff normalize identically.
func liveVocab(rng *rand.Rand, n int) []string {
	vocab := make([]string, n)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%dq%dz", i, rng.Intn(97))
	}
	return vocab
}

// liveDoc samples one document: 3..14 tokens over the vocabulary,
// space-separated, with occasional repeats so TFs exceed 1.
func liveDoc(rng *rand.Rand, vocab []string) []byte {
	n := 3 + rng.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(vocab[rng.Intn(len(vocab))])
	}
	return []byte(sb.String())
}

// RunLive executes one interleaved differential round.
func RunLive(ctx context.Context, cfg LiveConfig) (*LiveResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.SealEvery <= 0 {
		cfg.SealEvery = 25
	}
	if cfg.CompactAt <= 0 {
		cfg.CompactAt = 4
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "hetverify-live-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	baseline := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := liveVocab(rng, 40)
	res := &LiveResult{Seed: cfg.Seed, Ops: cfg.Ops}

	m, err := segment.Open(dir, segment.Options{
		Positional: cfg.Positional,
		SealEvery:  cfg.SealEvery,
		CompactAt:  cfg.CompactAt,
	})
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			m.Close()
		}
	}()

	// shadow holds the text of every surviving document by docID; ids
	// tracks insertion order for O(1) random victim selection.
	shadow := make(map[uint32][]byte)
	var ids []uint32

	checkpoint := func(op int, trigger string) error {
		live, err := liveLists(m)
		if err != nil {
			return fmt.Errorf("verify: live read-back at op %d (%s): %w", op, trigger, err)
		}
		want, err := rebuildReference(shadow, cfg.Positional)
		if err != nil {
			return fmt.Errorf("verify: serial rebuild at op %d (%s): %w", op, trigger, err)
		}
		diff := DiffLists(trigger, live, want, cfg.MaxDiffs)
		// Ranked differential at the same boundary: the block evaluators
		// (sealed segments + memtable pseudo-block, tombstone fallback)
		// must match the exhaustive scorer query-for-query.
		diff.Diffs = append(diff.Diffs, liveRankDiffs(m, live, cfg.MaxDiffs)...)
		res.Checkpoints = append(res.Checkpoints, LiveCheckpoint{
			Op:      op,
			Trigger: trigger,
			Docs:    int64(len(shadow)),
			Diff:    diff,
		})
		return nil
	}

	for op := 0; op < cfg.Ops; op++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch p := rng.Intn(100); {
		case p < 50: // insert
			text := liveDoc(rng, vocab)
			id, err := m.AddDocument(text)
			if err != nil {
				return nil, fmt.Errorf("verify: add at op %d: %w", op, err)
			}
			shadow[id] = text
			ids = append(ids, id)
			res.Inserts++
		case p < 65: // delete a random survivor (no-op when empty)
			if len(ids) == 0 {
				continue
			}
			i := rng.Intn(len(ids))
			id := ids[i]
			if _, alive := shadow[id]; !alive {
				continue // already deleted through another slot
			}
			if err := m.Delete(id); err != nil {
				return nil, fmt.Errorf("verify: delete doc %d at op %d: %w", id, op, err)
			}
			delete(shadow, id)
			res.Deletes++
		case p < 90: // query a random vocabulary term
			term := vocab[rng.Intn(len(vocab))]
			l, err := m.Postings(term)
			if err != nil {
				res.QueryErrs = append(res.QueryErrs,
					fmt.Sprintf("op %d: Postings(%q): %v", op, term, err))
				continue
			}
			for j := 1; j < l.Len(); j++ {
				if l.DocIDs[j] <= l.DocIDs[j-1] {
					res.QueryErrs = append(res.QueryErrs,
						fmt.Sprintf("op %d: disordered postings for %q", op, term))
					break
				}
			}
			res.Queries++
		case p < 97: // seal boundary
			if err := m.Seal(); err != nil {
				return nil, fmt.Errorf("verify: seal at op %d: %w", op, err)
			}
			res.Seals++
			if err := checkpoint(op, "seal"); err != nil {
				return nil, err
			}
		default: // compaction boundary
			if err := m.Compact(ctx); err != nil {
				return nil, fmt.Errorf("verify: compact at op %d: %w", op, err)
			}
			res.Compactions++
			if err := checkpoint(op, "compact"); err != nil {
				return nil, err
			}
		}
	}
	if err := m.LastCompactionError(); err != nil {
		return nil, fmt.Errorf("verify: background compaction: %w", err)
	}
	if err := checkpoint(cfg.Ops, "final"); err != nil {
		return nil, err
	}

	// Close seals the memtable; everything must survive a cold reopen.
	if err := m.Close(); err != nil {
		return nil, fmt.Errorf("verify: close: %w", err)
	}
	closed = true
	res.Leaked = settleGoroutines(baseline)

	m2, err := segment.Open(dir, segment.Options{Positional: cfg.Positional})
	if err != nil {
		return nil, fmt.Errorf("verify: reopen: %w", err)
	}
	m = m2
	closed = false
	if err := checkpoint(cfg.Ops, "reopen"); err != nil {
		return nil, err
	}
	if err := m.Close(); err != nil {
		return nil, fmt.Errorf("verify: close after reopen: %w", err)
	}
	closed = true
	return res, nil
}

// liveLists reads every non-empty postings list out of the live index
// through the same path queries take.
func liveLists(m *segment.Manager) (map[string]*postings.List, error) {
	out := make(map[string]*postings.List)
	for _, e := range m.Dictionary() {
		l, err := m.Postings(e.Term)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", e.Term, err)
		}
		if l.Len() == 0 {
			// Fully-deleted term not yet purged by a compaction; the
			// serial rebuild has no entry for it.
			continue
		}
		out[e.Term] = l
	}
	return out, nil
}

// rebuildReference indexes the surviving documents from scratch with
// the serial reference indexer, each at its original docID, so docID
// gaps left by deletions are preserved on both sides.
func rebuildReference(shadow map[uint32][]byte, positional bool) (map[string]*postings.List, error) {
	ids := make([]uint32, 0, len(shadow))
	for id := range shadow {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	ref := &reference.Index{Lists: make(map[string]*postings.List)}
	p := parser.New(nil)
	p.Positional = positional
	for _, id := range ids {
		blk := parser.NewBlock(0)
		p.ParseDoc(0, shadow[id], blk)
		if err := ref.AddBlock(blk, id); err != nil {
			return nil, err
		}
	}
	return ref.Lists, nil
}
