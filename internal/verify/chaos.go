package verify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/reference"
	"fastinvert/internal/store"
)

// ErrInjected marks a fault introduced by the chaos layer. A build hit
// by an injected stage fault must surface an error wrapping this
// sentinel — anything else (a different error, a success, a hang, a
// leaked goroutine) is a harness failure.
var ErrInjected = errors.New("verify: injected fault")

// Fault selects what the chaos layer breaks.
type Fault int

const (
	// FaultNone runs the pipeline untouched; the outcome must be a
	// verified-correct index (the chaos control group).
	FaultNone Fault = iota

	// FaultSlowRead delays every container-file read by Delay without
	// corrupting anything; the build must still complete correctly
	// (the pipeline may reorder internally but not its output).
	FaultSlowRead

	// FaultReadError fails the source read of file At.
	FaultReadError

	// FaultParseError fails the parser stage at file At.
	FaultParseError

	// FaultIndexError fails the indexer hand-off at file At.
	FaultIndexError

	// FaultWriteError fails the store writer at file At.
	FaultWriteError

	// FaultCancel cancels the build context after At files are read.
	FaultCancel

	// FaultTruncateRun truncates a run file after a clean build; the
	// reopened index must fail with ErrCorruptIndex.
	FaultTruncateRun

	// FaultBitFlipRun flips one bit inside a run file's CRC-covered
	// region (table + blob) after a clean build.
	FaultBitFlipRun

	// FaultTruncateDict truncates the dictionary after a clean build.
	FaultTruncateDict

	// FaultGarbageDocmap overwrites docmap.json with invalid JSON
	// after a clean build.
	FaultGarbageDocmap

	// FaultTruncateMerged merges the index after a clean build, then
	// truncates merged.post (the torn state a crashed non-atomic write
	// would leave). Verify must flag it AND queries must fall back to
	// correct per-run assembly.
	FaultTruncateMerged

	// FaultBitFlipMerged merges, then flips one bit inside merged.post's
	// CRC-covered region; same requirements as FaultTruncateMerged.
	FaultBitFlipMerged
)

// String names the fault for reports.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSlowRead:
		return "slow-read"
	case FaultReadError:
		return "read-error"
	case FaultParseError:
		return "parse-error"
	case FaultIndexError:
		return "index-error"
	case FaultWriteError:
		return "write-error"
	case FaultCancel:
		return "cancel"
	case FaultTruncateRun:
		return "truncate-run"
	case FaultBitFlipRun:
		return "bitflip-run"
	case FaultTruncateDict:
		return "truncate-dict"
	case FaultGarbageDocmap:
		return "garbage-docmap"
	case FaultTruncateMerged:
		return "truncate-merged"
	case FaultBitFlipMerged:
		return "bitflip-merged"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ChaosConfig selects one injected fault.
type ChaosConfig struct {
	Fault Fault
	// At is the file index a stage fault fires on (read/parse/index/
	// write/cancel faults).
	At int
	// Delay is the per-read latency for FaultSlowRead.
	Delay time.Duration
	// Seed drives the corruption position for FaultBitFlipRun.
	Seed int64
}

// ChaosResult is the audited outcome of one chaos run.
type ChaosResult struct {
	Fault ChaosConfig

	// Err is the terminal error observed: the build error for stage
	// faults, the reopen/verify error for corruption faults, nil when
	// the pipeline completed (and was then verified correct).
	Err error

	// Correct is set when the run produced an index that passed the
	// structural check and matched the reference build.
	Correct bool

	// TypedError is set when Err matches an accepted sentinel:
	// ErrInjected, context.Canceled, context.DeadlineExceeded or
	// store.ErrCorruptIndex.
	TypedError bool

	// LeakedGoroutines counts goroutines still alive (beyond the
	// pre-run baseline) after a settle window; 0 is the requirement.
	LeakedGoroutines int
}

// OK reports the chaos invariant: a correct index or a typed error,
// and no goroutine leaks.
func (r *ChaosResult) OK() bool {
	return (r.Correct || r.TypedError) && r.LeakedGoroutines == 0
}

// String renders the outcome.
func (r *ChaosResult) String() string {
	state := "typed error"
	if r.Correct {
		state = "verified correct"
	} else if !r.TypedError {
		state = fmt.Sprintf("UNTYPED error: %v", r.Err)
	}
	return fmt.Sprintf("%s@%d: %s (err=%v, leaked=%d)",
		r.Fault.Fault, r.Fault.At, state, r.Err, r.LeakedGoroutines)
}

// chaosSource wraps the corpus to inject read-stage faults. ReadFile
// is called from the sampling phase and the disk goroutine; the
// injected behaviors must therefore be safe under either caller.
type chaosSource struct {
	corpus.Source
	chaos  ChaosConfig
	cancel context.CancelFunc
}

func (s *chaosSource) ReadFile(i int) ([]byte, bool, error) {
	switch s.chaos.Fault {
	case FaultSlowRead:
		time.Sleep(s.chaos.Delay)
	case FaultReadError:
		if i == s.chaos.At {
			return nil, false, fmt.Errorf("read file %d: %w", i, ErrInjected)
		}
	case FaultCancel:
		if i == s.chaos.At {
			s.cancel()
		}
	}
	return s.Source.ReadFile(i)
}

// RunChaos executes one build under an injected fault and audits the
// outcome: the pipeline must end in a verified-correct index or a
// typed error, with every stage goroutine drained.
func RunChaos(ctx context.Context, cfg Config, chaos ChaosConfig) (*ChaosResult, error) {
	if cfg.Gen == (GenConfig{}) {
		cfg.Gen = DefaultGenConfig(cfg.Seed)
	}
	cfg.Seed = cfg.Gen.Seed

	tmp, err := os.MkdirTemp("", "hetchaos-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	outDir := filepath.Join(tmp, "idx")

	res := &ChaosResult{Fault: chaos}
	before := runtime.NumGoroutine()

	buildCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	src := &chaosSource{Source: NewSource(cfg.Gen), chaos: chaos, cancel: cancel}

	stageFault := func(fault Fault) func(int) error {
		if chaos.Fault != fault {
			return nil
		}
		return func(f int) error {
			if f == chaos.At {
				return fmt.Errorf("%s at file %d: %w", fault, f, ErrInjected)
			}
			return nil
		}
	}
	hooks := &core.Hooks{
		AfterParse:     stageFault(FaultParseError),
		BeforeIndex:    stageFault(FaultIndexError),
		BeforeWriteRun: stageFault(FaultWriteError),
	}

	_, buildErr := buildPipeline(buildCtx, cfg, src, outDir, hooks)
	res.LeakedGoroutines = settleGoroutines(before)
	res.Err = buildErr

	if buildErr == nil {
		// The build survived (fault never fired, was benign, or was
		// post-build corruption). Corrupt now if asked, then audit.
		if err := injectCorruption(outDir, chaos); err != nil {
			return nil, err
		}
		if chaos.Fault == FaultTruncateMerged || chaos.Fault == FaultBitFlipMerged {
			res.Err = auditMergedFallback(outDir, cfg, src.Source)
		} else {
			res.Err = auditIndex(outDir, cfg, src.Source)
		}
		res.Correct = res.Err == nil
	}
	res.TypedError = res.Err != nil &&
		(errors.Is(res.Err, ErrInjected) ||
			errors.Is(res.Err, context.Canceled) ||
			errors.Is(res.Err, context.DeadlineExceeded) ||
			errors.Is(res.Err, store.ErrCorruptIndex))
	return res, nil
}

// auditIndex verifies structural invariants and reference equality of
// a completed build. nil means verified correct.
func auditIndex(outDir string, cfg Config, src corpus.Source) error {
	if _, err := store.Verify(outDir); err != nil {
		return err
	}
	got, err := readBack(outDir)
	if err != nil {
		return err
	}
	var ref *reference.Index
	if cfg.Positional {
		ref, err = reference.BuildPositionalFromSource(src)
	} else {
		ref, err = reference.BuildFromSource(src)
	}
	if err != nil {
		return fmt.Errorf("verify: reference build: %w", err)
	}
	if rep := DiffLists("reference", got, ref.Lists, 4); !rep.OK() {
		return fmt.Errorf("verify: completed index differs: %s", rep)
	}
	return nil
}

// settleGoroutines waits for the goroutine count to return to the
// pre-run baseline and reports the excess that never drained. The
// window is generous because parser goroutines may still be parsing a
// large block when the sequencer aborts.
func settleGoroutines(before int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before {
			return 0
		}
		if time.Now().After(deadline) {
			return n - before
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// auditMergedFallback audits a corrupt-merged-file fault: the
// corruption must be detected by Verify as a typed error, the reopened
// reader must refuse to serve the merged file, and per-run fallback
// queries must still match the reference build exactly. Any deviation
// returns an untyped error, failing the chaos invariant.
func auditMergedFallback(outDir string, cfg Config, src corpus.Source) error {
	if _, err := store.Verify(outDir); !errors.Is(err, store.ErrCorruptIndex) {
		return fmt.Errorf("verify: corrupt merged file not flagged (got %v)", err)
	}
	idx, err := store.OpenIndex(outDir)
	if err != nil {
		return fmt.Errorf("verify: reopen with corrupt merged file: %w", err)
	}
	active := idx.MergedActive()
	idx.Close()
	if active {
		return errors.New("verify: corrupt merged file still served")
	}
	got, err := readBack(outDir)
	if err != nil {
		return fmt.Errorf("verify: fallback read-back: %w", err)
	}
	var ref *reference.Index
	if cfg.Positional {
		ref, err = reference.BuildPositionalFromSource(src)
	} else {
		ref, err = reference.BuildFromSource(src)
	}
	if err != nil {
		return fmt.Errorf("verify: reference build: %w", err)
	}
	if rep := DiffLists("merged-fallback", got, ref.Lists, 4); !rep.OK() {
		return fmt.Errorf("verify: fallback results differ: %s", rep)
	}
	return nil
}

// mergeIndexDir merges an index directory through a throwaway reader.
func mergeIndexDir(dir string) error {
	idx, err := store.OpenIndex(dir)
	if err != nil {
		return err
	}
	defer idx.Close()
	_, err = idx.Merge()
	return err
}

// injectCorruption damages the persisted index per the fault kind.
func injectCorruption(dir string, chaos ChaosConfig) error {
	switch chaos.Fault {
	case FaultTruncateMerged, FaultBitFlipMerged:
		if err := mergeIndexDir(dir); err != nil {
			return err
		}
		path := filepath.Join(dir, "merged.post")
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if chaos.Fault == FaultTruncateMerged {
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		}
		const runHdr = 24
		if len(data) <= runHdr {
			return fmt.Errorf("verify: merged file too small to corrupt")
		}
		rng := rand.New(rand.NewSource(chaos.Seed ^ 0x5EED5EED))
		bit := runHdr*8 + rng.Intn((len(data)-runHdr)*8)
		data[bit/8] ^= 1 << (bit % 8)
		return os.WriteFile(path, data, 0o644)
	case FaultTruncateRun, FaultBitFlipRun:
		name, err := firstRunFile(dir)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if chaos.Fault == FaultTruncateRun {
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		}
		// Flip one bit inside the CRC-covered region (everything past
		// the 24-byte header); header fields like the doc range are
		// deliberately NOT covered by the checksum, so only this
		// region guarantees detection.
		const runHdr = 24
		if len(data) <= runHdr {
			return fmt.Errorf("verify: run file %s too small to corrupt", name)
		}
		rng := rand.New(rand.NewSource(chaos.Seed ^ 0xB17F11B))
		bit := runHdr*8 + rng.Intn((len(data)-runHdr)*8)
		data[bit/8] ^= 1 << (bit % 8)
		return os.WriteFile(path, data, 0o644)
	case FaultTruncateDict:
		path := filepath.Join(dir, "dictionary.fidc")
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data[:len(data)/2], 0o644)
	case FaultGarbageDocmap:
		return os.WriteFile(filepath.Join(dir, "docmap.json"), []byte("{not json"), 0o644)
	}
	return nil
}

// firstRunFile returns the lexically first run file in the index dir.
func firstRunFile(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var runs []string
	for _, e := range entries {
		// Match only per-run files — never merged.post.
		if !e.IsDir() && strings.HasPrefix(e.Name(), "run-") && filepath.Ext(e.Name()) == ".post" {
			runs = append(runs, e.Name())
		}
	}
	if len(runs) == 0 {
		return "", fmt.Errorf("verify: no run files in %s", dir)
	}
	sort.Strings(runs)
	return runs[0], nil
}
