package verify

import (
	"fmt"
	"sort"
	"strings"

	"fastinvert/internal/postings"
)

// TermDiff is one term-level disagreement between two indexes.
type TermDiff struct {
	Term   string
	Kind   string // "missing" | "extra" | "length" | "doc-ids" | "unsorted" | "tfs" | "positions"
	Detail string
}

// DiffReport is the structured result of comparing the pipeline's
// index ("got") against one trusted build ("want"). An empty Diffs
// slice means the indexes agree term-for-term.
type DiffReport struct {
	Name      string // the trusted build compared against
	GotTerms  int
	WantTerms int
	Diffs     []TermDiff
	Truncated bool // more diffs existed than the cap
}

// OK reports full agreement.
func (r *DiffReport) OK() bool { return len(r.Diffs) == 0 }

// String renders the report for logs and CLI output.
func (r *DiffReport) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: OK (%d terms)", r.Name, r.GotTerms)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d diffs (got %d terms, want %d)",
		r.Name, len(r.Diffs), r.GotTerms, r.WantTerms)
	for _, d := range r.Diffs {
		fmt.Fprintf(&sb, "\n  [%s] %q: %s", d.Kind, d.Term, d.Detail)
	}
	if r.Truncated {
		sb.WriteString("\n  ... (truncated)")
	}
	return sb.String()
}

// DiffLists compares two term -> postings mappings term-by-term:
// dictionary agreement both ways, strictly ascending docIDs in got
// (the round-robin ordering invariant), identical docID sequences and
// frequencies, and identical positional data when both sides carry
// positions (the baselines are non-positional, so positions are only
// pinned against the positional reference build). At most maxDiffs
// disagreements are recorded (<=0 selects 8).
func DiffLists(name string, got, want map[string]*postings.List, maxDiffs int) *DiffReport {
	if maxDiffs <= 0 {
		maxDiffs = 8
	}
	rep := &DiffReport{Name: name, GotTerms: len(got), WantTerms: len(want)}
	add := func(term, kind, detail string) bool {
		if len(rep.Diffs) >= maxDiffs {
			rep.Truncated = true
			return false
		}
		rep.Diffs = append(rep.Diffs, TermDiff{Term: term, Kind: kind, Detail: detail})
		return true
	}

	terms := make([]string, 0, len(want))
	for t := range want {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, term := range terms {
		w := want[term]
		g, ok := got[term]
		if !ok {
			if !add(term, "missing", fmt.Sprintf("%d postings absent from pipeline index", w.Len())) {
				return rep
			}
			continue
		}
		if d := diffTerm(g, w); d != nil {
			if !add(term, d.Kind, d.Detail) {
				return rep
			}
		}
	}
	extras := make([]string, 0)
	for t := range got {
		if _, ok := want[t]; !ok {
			extras = append(extras, t)
		}
	}
	sort.Strings(extras)
	for _, term := range extras {
		if !add(term, "extra", fmt.Sprintf("%d postings not in trusted index", got[term].Len())) {
			return rep
		}
	}
	return rep
}

// diffTerm compares one term's lists, returning nil on agreement.
func diffTerm(g, w *postings.List) *TermDiff {
	for i := 1; i < g.Len(); i++ {
		if g.DocIDs[i] <= g.DocIDs[i-1] {
			return &TermDiff{Kind: "unsorted",
				Detail: fmt.Sprintf("docID[%d]=%d after %d", i, g.DocIDs[i], g.DocIDs[i-1])}
		}
	}
	if g.Len() != w.Len() {
		return &TermDiff{Kind: "length",
			Detail: fmt.Sprintf("got %d postings, want %d", g.Len(), w.Len())}
	}
	for i := range w.DocIDs {
		if g.DocIDs[i] != w.DocIDs[i] {
			return &TermDiff{Kind: "doc-ids",
				Detail: fmt.Sprintf("docID[%d]=%d, want %d", i, g.DocIDs[i], w.DocIDs[i])}
		}
		if g.TFs[i] != w.TFs[i] {
			return &TermDiff{Kind: "tfs",
				Detail: fmt.Sprintf("tf[%d]=%d, want %d (doc %d)", i, g.TFs[i], w.TFs[i], w.DocIDs[i])}
		}
	}
	if !g.Positional() || !w.Positional() {
		return nil
	}
	for i := range w.Positions {
		gp, wp := g.Positions[i], w.Positions[i]
		if len(gp) != len(wp) {
			return &TermDiff{Kind: "positions",
				Detail: fmt.Sprintf("doc %d: %d positions, want %d", w.DocIDs[i], len(gp), len(wp))}
		}
		for j := range wp {
			if gp[j] != wp[j] {
				return &TermDiff{Kind: "positions",
					Detail: fmt.Sprintf("doc %d pos[%d]=%d, want %d", w.DocIDs[i], j, gp[j], wp[j])}
			}
		}
	}
	return nil
}
